# Empty dependencies file for profile_dimm.
# This may be replaced when dependencies are built.
