file(REMOVE_RECURSE
  "CMakeFiles/profile_dimm.dir/profile_dimm.cpp.o"
  "CMakeFiles/profile_dimm.dir/profile_dimm.cpp.o.d"
  "profile_dimm"
  "profile_dimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_dimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
