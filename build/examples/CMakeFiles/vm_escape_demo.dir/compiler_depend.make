# Empty compiler generated dependencies file for vm_escape_demo.
# This may be replaced when dependencies are built.
