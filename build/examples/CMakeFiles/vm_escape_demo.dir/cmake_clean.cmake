file(REMOVE_RECURSE
  "CMakeFiles/vm_escape_demo.dir/vm_escape_demo.cpp.o"
  "CMakeFiles/vm_escape_demo.dir/vm_escape_demo.cpp.o.d"
  "vm_escape_demo"
  "vm_escape_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_escape_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
