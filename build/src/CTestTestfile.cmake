# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("dram")
subdirs("mm")
subdirs("kvm")
subdirs("iommu")
subdirs("virtio")
subdirs("vm")
subdirs("sys")
subdirs("xen")
subdirs("attack")
subdirs("analysis")
