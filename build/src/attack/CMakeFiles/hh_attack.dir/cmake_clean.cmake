file(REMOVE_RECURSE
  "CMakeFiles/hh_attack.dir/exploit.cc.o"
  "CMakeFiles/hh_attack.dir/exploit.cc.o.d"
  "CMakeFiles/hh_attack.dir/orchestrator.cc.o"
  "CMakeFiles/hh_attack.dir/orchestrator.cc.o.d"
  "CMakeFiles/hh_attack.dir/page_steering.cc.o"
  "CMakeFiles/hh_attack.dir/page_steering.cc.o.d"
  "CMakeFiles/hh_attack.dir/profiler.cc.o"
  "CMakeFiles/hh_attack.dir/profiler.cc.o.d"
  "libhh_attack.a"
  "libhh_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
