
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/exploit.cc" "src/attack/CMakeFiles/hh_attack.dir/exploit.cc.o" "gcc" "src/attack/CMakeFiles/hh_attack.dir/exploit.cc.o.d"
  "/root/repo/src/attack/orchestrator.cc" "src/attack/CMakeFiles/hh_attack.dir/orchestrator.cc.o" "gcc" "src/attack/CMakeFiles/hh_attack.dir/orchestrator.cc.o.d"
  "/root/repo/src/attack/page_steering.cc" "src/attack/CMakeFiles/hh_attack.dir/page_steering.cc.o" "gcc" "src/attack/CMakeFiles/hh_attack.dir/page_steering.cc.o.d"
  "/root/repo/src/attack/profiler.cc" "src/attack/CMakeFiles/hh_attack.dir/profiler.cc.o" "gcc" "src/attack/CMakeFiles/hh_attack.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hh_base.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hh_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/hh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/kvm/CMakeFiles/hh_kvm.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/hh_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/hh_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/hh_sys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
