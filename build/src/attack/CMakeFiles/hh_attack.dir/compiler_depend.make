# Empty compiler generated dependencies file for hh_attack.
# This may be replaced when dependencies are built.
