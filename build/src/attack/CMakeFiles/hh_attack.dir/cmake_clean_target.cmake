file(REMOVE_RECURSE
  "libhh_attack.a"
)
