# Empty compiler generated dependencies file for hh_base.
# This may be replaced when dependencies are built.
