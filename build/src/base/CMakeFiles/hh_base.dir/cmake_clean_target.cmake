file(REMOVE_RECURSE
  "libhh_base.a"
)
