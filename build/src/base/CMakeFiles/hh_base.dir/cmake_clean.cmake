file(REMOVE_RECURSE
  "CMakeFiles/hh_base.dir/log.cc.o"
  "CMakeFiles/hh_base.dir/log.cc.o.d"
  "CMakeFiles/hh_base.dir/sim_clock.cc.o"
  "CMakeFiles/hh_base.dir/sim_clock.cc.o.d"
  "CMakeFiles/hh_base.dir/status.cc.o"
  "CMakeFiles/hh_base.dir/status.cc.o.d"
  "libhh_base.a"
  "libhh_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
