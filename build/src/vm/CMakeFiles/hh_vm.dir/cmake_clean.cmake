file(REMOVE_RECURSE
  "CMakeFiles/hh_vm.dir/guest_paging.cc.o"
  "CMakeFiles/hh_vm.dir/guest_paging.cc.o.d"
  "CMakeFiles/hh_vm.dir/virtual_machine.cc.o"
  "CMakeFiles/hh_vm.dir/virtual_machine.cc.o.d"
  "libhh_vm.a"
  "libhh_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
