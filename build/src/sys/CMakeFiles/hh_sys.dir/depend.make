# Empty dependencies file for hh_sys.
# This may be replaced when dependencies are built.
