file(REMOVE_RECURSE
  "CMakeFiles/hh_sys.dir/host_system.cc.o"
  "CMakeFiles/hh_sys.dir/host_system.cc.o.d"
  "CMakeFiles/hh_sys.dir/ksm.cc.o"
  "CMakeFiles/hh_sys.dir/ksm.cc.o.d"
  "libhh_sys.a"
  "libhh_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
