
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/host_system.cc" "src/sys/CMakeFiles/hh_sys.dir/host_system.cc.o" "gcc" "src/sys/CMakeFiles/hh_sys.dir/host_system.cc.o.d"
  "/root/repo/src/sys/ksm.cc" "src/sys/CMakeFiles/hh_sys.dir/ksm.cc.o" "gcc" "src/sys/CMakeFiles/hh_sys.dir/ksm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hh_base.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hh_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/hh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/hh_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/kvm/CMakeFiles/hh_kvm.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/hh_iommu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
