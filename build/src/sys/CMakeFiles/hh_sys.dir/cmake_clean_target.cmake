file(REMOVE_RECURSE
  "libhh_sys.a"
)
