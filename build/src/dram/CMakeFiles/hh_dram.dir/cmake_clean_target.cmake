file(REMOVE_RECURSE
  "libhh_dram.a"
)
