file(REMOVE_RECURSE
  "CMakeFiles/hh_dram.dir/address_mapping.cc.o"
  "CMakeFiles/hh_dram.dir/address_mapping.cc.o.d"
  "CMakeFiles/hh_dram.dir/dram_system.cc.o"
  "CMakeFiles/hh_dram.dir/dram_system.cc.o.d"
  "CMakeFiles/hh_dram.dir/fault_model.cc.o"
  "CMakeFiles/hh_dram.dir/fault_model.cc.o.d"
  "CMakeFiles/hh_dram.dir/memory_backend.cc.o"
  "CMakeFiles/hh_dram.dir/memory_backend.cc.o.d"
  "libhh_dram.a"
  "libhh_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
