# Empty compiler generated dependencies file for hh_dram.
# This may be replaced when dependencies are built.
