file(REMOVE_RECURSE
  "CMakeFiles/hh_iommu.dir/viommu.cc.o"
  "CMakeFiles/hh_iommu.dir/viommu.cc.o.d"
  "libhh_iommu.a"
  "libhh_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
