# Empty dependencies file for hh_iommu.
# This may be replaced when dependencies are built.
