file(REMOVE_RECURSE
  "libhh_iommu.a"
)
