# Empty compiler generated dependencies file for hh_iommu.
# This may be replaced when dependencies are built.
