file(REMOVE_RECURSE
  "CMakeFiles/hh_mm.dir/buddy_allocator.cc.o"
  "CMakeFiles/hh_mm.dir/buddy_allocator.cc.o.d"
  "libhh_mm.a"
  "libhh_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
