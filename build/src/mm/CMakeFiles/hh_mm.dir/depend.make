# Empty dependencies file for hh_mm.
# This may be replaced when dependencies are built.
