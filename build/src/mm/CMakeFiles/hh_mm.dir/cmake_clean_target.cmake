file(REMOVE_RECURSE
  "libhh_mm.a"
)
