# Empty dependencies file for hh_analysis.
# This may be replaced when dependencies are built.
