file(REMOVE_RECURSE
  "libhh_analysis.a"
)
