file(REMOVE_RECURSE
  "CMakeFiles/hh_analysis.dir/dramdig.cc.o"
  "CMakeFiles/hh_analysis.dir/dramdig.cc.o.d"
  "CMakeFiles/hh_analysis.dir/report.cc.o"
  "CMakeFiles/hh_analysis.dir/report.cc.o.d"
  "CMakeFiles/hh_analysis.dir/trrespass.cc.o"
  "CMakeFiles/hh_analysis.dir/trrespass.cc.o.d"
  "libhh_analysis.a"
  "libhh_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
