# Empty compiler generated dependencies file for hh_analysis.
# This may be replaced when dependencies are built.
