# Empty dependencies file for hh_xen.
# This may be replaced when dependencies are built.
