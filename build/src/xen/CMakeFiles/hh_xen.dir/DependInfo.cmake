
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xen/pv_domain.cc" "src/xen/CMakeFiles/hh_xen.dir/pv_domain.cc.o" "gcc" "src/xen/CMakeFiles/hh_xen.dir/pv_domain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hh_base.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hh_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/hh_mm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
