file(REMOVE_RECURSE
  "CMakeFiles/hh_xen.dir/pv_domain.cc.o"
  "CMakeFiles/hh_xen.dir/pv_domain.cc.o.d"
  "libhh_xen.a"
  "libhh_xen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_xen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
