file(REMOVE_RECURSE
  "libhh_xen.a"
)
