file(REMOVE_RECURSE
  "libhh_virtio.a"
)
