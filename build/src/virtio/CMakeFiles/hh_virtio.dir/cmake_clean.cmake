file(REMOVE_RECURSE
  "CMakeFiles/hh_virtio.dir/virtio_balloon.cc.o"
  "CMakeFiles/hh_virtio.dir/virtio_balloon.cc.o.d"
  "CMakeFiles/hh_virtio.dir/virtio_mem.cc.o"
  "CMakeFiles/hh_virtio.dir/virtio_mem.cc.o.d"
  "libhh_virtio.a"
  "libhh_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
