# Empty dependencies file for hh_virtio.
# This may be replaced when dependencies are built.
