file(REMOVE_RECURSE
  "CMakeFiles/hh_kvm.dir/mmu.cc.o"
  "CMakeFiles/hh_kvm.dir/mmu.cc.o.d"
  "libhh_kvm.a"
  "libhh_kvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_kvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
