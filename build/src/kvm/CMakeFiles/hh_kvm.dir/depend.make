# Empty dependencies file for hh_kvm.
# This may be replaced when dependencies are built.
