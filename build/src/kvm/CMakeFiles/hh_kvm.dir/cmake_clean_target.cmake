file(REMOVE_RECURSE
  "libhh_kvm.a"
)
