# Empty compiler generated dependencies file for bench_baseline_ffs.
# This may be replaced when dependencies are built.
