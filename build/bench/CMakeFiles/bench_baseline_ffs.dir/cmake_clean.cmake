file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_ffs.dir/bench_baseline_ffs.cc.o"
  "CMakeFiles/bench_baseline_ffs.dir/bench_baseline_ffs.cc.o.d"
  "bench_baseline_ffs"
  "bench_baseline_ffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
