file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_xen_pv.dir/bench_baseline_xen_pv.cc.o"
  "CMakeFiles/bench_baseline_xen_pv.dir/bench_baseline_xen_pv.cc.o.d"
  "bench_baseline_xen_pv"
  "bench_baseline_xen_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_xen_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
