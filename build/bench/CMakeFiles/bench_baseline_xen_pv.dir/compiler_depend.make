# Empty compiler generated dependencies file for bench_baseline_xen_pv.
# This may be replaced when dependencies are built.
