file(REMOVE_RECURSE
  "CMakeFiles/bench_end_to_end_estimate.dir/bench_end_to_end_estimate.cc.o"
  "CMakeFiles/bench_end_to_end_estimate.dir/bench_end_to_end_estimate.cc.o.d"
  "bench_end_to_end_estimate"
  "bench_end_to_end_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_end_to_end_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
