# Empty compiler generated dependencies file for bench_fig3_noise_pages.
# This may be replaced when dependencies are built.
