file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_profiling.dir/bench_ablation_profiling.cc.o"
  "CMakeFiles/bench_ablation_profiling.dir/bench_ablation_profiling.cc.o.d"
  "bench_ablation_profiling"
  "bench_ablation_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
