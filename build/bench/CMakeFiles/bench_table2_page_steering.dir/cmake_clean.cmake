file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_page_steering.dir/bench_table2_page_steering.cc.o"
  "CMakeFiles/bench_table2_page_steering.dir/bench_table2_page_steering.cc.o.d"
  "bench_table2_page_steering"
  "bench_table2_page_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_page_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
