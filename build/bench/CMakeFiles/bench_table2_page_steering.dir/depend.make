# Empty dependencies file for bench_table2_page_steering.
# This may be replaced when dependencies are built.
