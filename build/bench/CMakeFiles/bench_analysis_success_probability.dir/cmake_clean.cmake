file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_success_probability.dir/bench_analysis_success_probability.cc.o"
  "CMakeFiles/bench_analysis_success_probability.dir/bench_analysis_success_probability.cc.o.d"
  "bench_analysis_success_probability"
  "bench_analysis_success_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_success_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
