# Empty compiler generated dependencies file for bench_analysis_success_probability.
# This may be replaced when dependencies are built.
