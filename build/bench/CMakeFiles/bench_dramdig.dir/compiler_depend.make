# Empty compiler generated dependencies file for bench_dramdig.
# This may be replaced when dependencies are built.
