file(REMOVE_RECURSE
  "CMakeFiles/bench_dramdig.dir/bench_dramdig.cc.o"
  "CMakeFiles/bench_dramdig.dir/bench_dramdig.cc.o.d"
  "bench_dramdig"
  "bench_dramdig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dramdig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
