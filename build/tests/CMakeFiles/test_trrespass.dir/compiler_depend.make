# Empty compiler generated dependencies file for test_trrespass.
# This may be replaced when dependencies are built.
