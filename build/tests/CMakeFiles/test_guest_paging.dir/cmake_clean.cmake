file(REMOVE_RECURSE
  "CMakeFiles/test_guest_paging.dir/test_guest_paging.cc.o"
  "CMakeFiles/test_guest_paging.dir/test_guest_paging.cc.o.d"
  "test_guest_paging"
  "test_guest_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
