# Empty dependencies file for test_guest_paging.
# This may be replaced when dependencies are built.
