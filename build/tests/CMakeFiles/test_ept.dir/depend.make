# Empty dependencies file for test_ept.
# This may be replaced when dependencies are built.
