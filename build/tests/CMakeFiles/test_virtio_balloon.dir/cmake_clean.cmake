file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_balloon.dir/test_virtio_balloon.cc.o"
  "CMakeFiles/test_virtio_balloon.dir/test_virtio_balloon.cc.o.d"
  "test_virtio_balloon"
  "test_virtio_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
