# Empty compiler generated dependencies file for test_ksm.
# This may be replaced when dependencies are built.
