file(REMOVE_RECURSE
  "CMakeFiles/test_ksm.dir/test_ksm.cc.o"
  "CMakeFiles/test_ksm.dir/test_ksm.cc.o.d"
  "test_ksm"
  "test_ksm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
