# Empty compiler generated dependencies file for test_buddy_allocator.
# This may be replaced when dependencies are built.
