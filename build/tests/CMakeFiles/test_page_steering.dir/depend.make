# Empty dependencies file for test_page_steering.
# This may be replaced when dependencies are built.
