file(REMOVE_RECURSE
  "CMakeFiles/test_page_steering.dir/test_page_steering.cc.o"
  "CMakeFiles/test_page_steering.dir/test_page_steering.cc.o.d"
  "test_page_steering"
  "test_page_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
