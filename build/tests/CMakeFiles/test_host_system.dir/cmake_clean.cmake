file(REMOVE_RECURSE
  "CMakeFiles/test_host_system.dir/test_host_system.cc.o"
  "CMakeFiles/test_host_system.dir/test_host_system.cc.o.d"
  "test_host_system"
  "test_host_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
