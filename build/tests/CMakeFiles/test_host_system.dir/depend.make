# Empty dependencies file for test_host_system.
# This may be replaced when dependencies are built.
