file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_mem.dir/test_virtio_mem.cc.o"
  "CMakeFiles/test_virtio_mem.dir/test_virtio_mem.cc.o.d"
  "test_virtio_mem"
  "test_virtio_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
