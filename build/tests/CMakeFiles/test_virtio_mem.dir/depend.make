# Empty dependencies file for test_virtio_mem.
# This may be replaced when dependencies are built.
