file(REMOVE_RECURSE
  "CMakeFiles/test_disturbance_variants.dir/test_disturbance_variants.cc.o"
  "CMakeFiles/test_disturbance_variants.dir/test_disturbance_variants.cc.o.d"
  "test_disturbance_variants"
  "test_disturbance_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disturbance_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
