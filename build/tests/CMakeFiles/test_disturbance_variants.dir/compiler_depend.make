# Empty compiler generated dependencies file for test_disturbance_variants.
# This may be replaced when dependencies are built.
