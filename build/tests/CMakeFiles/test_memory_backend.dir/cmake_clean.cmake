file(REMOVE_RECURSE
  "CMakeFiles/test_memory_backend.dir/test_memory_backend.cc.o"
  "CMakeFiles/test_memory_backend.dir/test_memory_backend.cc.o.d"
  "test_memory_backend"
  "test_memory_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
