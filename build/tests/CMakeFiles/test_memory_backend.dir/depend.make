# Empty dependencies file for test_memory_backend.
# This may be replaced when dependencies are built.
