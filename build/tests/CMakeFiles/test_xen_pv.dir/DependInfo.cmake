
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_xen_pv.cc" "tests/CMakeFiles/test_xen_pv.dir/test_xen_pv.cc.o" "gcc" "tests/CMakeFiles/test_xen_pv.dir/test_xen_pv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/hh_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/hh_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/hh_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/kvm/CMakeFiles/hh_kvm.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/hh_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hh_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/xen/CMakeFiles/hh_xen.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hh_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/hh_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
