# Empty dependencies file for test_xen_pv.
# This may be replaced when dependencies are built.
