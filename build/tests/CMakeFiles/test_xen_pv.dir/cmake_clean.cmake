file(REMOVE_RECURSE
  "CMakeFiles/test_xen_pv.dir/test_xen_pv.cc.o"
  "CMakeFiles/test_xen_pv.dir/test_xen_pv.cc.o.d"
  "test_xen_pv"
  "test_xen_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xen_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
