file(REMOVE_RECURSE
  "CMakeFiles/test_address_mapping.dir/test_address_mapping.cc.o"
  "CMakeFiles/test_address_mapping.dir/test_address_mapping.cc.o.d"
  "test_address_mapping"
  "test_address_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_address_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
