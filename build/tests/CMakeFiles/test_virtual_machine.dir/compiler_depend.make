# Empty compiler generated dependencies file for test_virtual_machine.
# This may be replaced when dependencies are built.
