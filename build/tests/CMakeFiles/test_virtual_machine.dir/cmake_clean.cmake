file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_machine.dir/test_virtual_machine.cc.o"
  "CMakeFiles/test_virtual_machine.dir/test_virtual_machine.cc.o.d"
  "test_virtual_machine"
  "test_virtual_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
