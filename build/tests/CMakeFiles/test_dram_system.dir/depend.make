# Empty dependencies file for test_dram_system.
# This may be replaced when dependencies are built.
