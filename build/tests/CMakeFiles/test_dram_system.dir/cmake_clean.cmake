file(REMOVE_RECURSE
  "CMakeFiles/test_dram_system.dir/test_dram_system.cc.o"
  "CMakeFiles/test_dram_system.dir/test_dram_system.cc.o.d"
  "test_dram_system"
  "test_dram_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
