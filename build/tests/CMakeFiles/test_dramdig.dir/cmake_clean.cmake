file(REMOVE_RECURSE
  "CMakeFiles/test_dramdig.dir/test_dramdig.cc.o"
  "CMakeFiles/test_dramdig.dir/test_dramdig.cc.o.d"
  "test_dramdig"
  "test_dramdig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dramdig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
