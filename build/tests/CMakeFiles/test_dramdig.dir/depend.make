# Empty dependencies file for test_dramdig.
# This may be replaced when dependencies are built.
