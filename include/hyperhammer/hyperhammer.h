/**
 * @file
 * Umbrella header for the HyperHammer reproduction library.
 *
 * The library is layered bottom-up (see DESIGN.md):
 *   hh::base     -- clock, RNG, status, stats
 *   hh::fault    -- deterministic fault-injection plans/sites
 *   hh::dram     -- DIMM model with the Rowhammer fault model
 *   hh::mm       -- Linux-style buddy allocator
 *   hh::kvm      -- EPT MMU with the NX-hugepage countermeasure
 *   hh::iommu    -- vIOMMU / VFIO / IOPT
 *   hh::virtio   -- virtio-mem and virtio-balloon
 *   hh::vm       -- a guest VM and its guest-facing operations
 *   hh::sys      -- host assembly and the S1/S2/S3 presets
 *   hh::mitigate -- pluggable defenses and the evaluation matrix
 *   hh::attack   -- profiling, Page Steering, exploitation
 *   hh::snapshot -- crash-safe snapshots and campaign checkpoints
 *   hh::shard    -- sharded multi-process campaign sweeps
 *   hh::dispatch -- supervised fault-tolerant sweep dispatch
 *   hh::analysis -- DRAMDig, TRRespass, report formatting
 *
 * Typical use: build a host from a preset, create a VM, and drive the
 * attack stages (see examples/quickstart.cc).
 */

#ifndef HYPERHAMMER_HYPERHAMMER_H
#define HYPERHAMMER_HYPERHAMMER_H

#include "analysis/dramdig.h"
#include "analysis/report.h"
#include "analysis/trrespass.h"
#include "attack/exploit.h"
#include "attack/orchestrator.h"
#include "attack/page_steering.h"
#include "attack/profiler.h"
#include "attack/types.h"
#include "base/bitops.h"
#include "base/log.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/sim_clock.h"
#include "base/stats.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "base/types.h"
#include "dram/address_mapping.h"
#include "dram/dram_system.h"
#include "dram/ecc.h"
#include "dram/fault_model.h"
#include "dram/memory_backend.h"
#include "dispatch/dispatch.h"
#include "dispatch/supervisor.h"
#include "dispatch/wall.h"
#include "dram/trr.h"
#include "fault/fault.h"
#include "iommu/viommu.h"
#include "kvm/ept.h"
#include "kvm/mmu.h"
#include "mitigate/defense.h"
#include "mitigate/matrix.h"
#include "mm/buddy_allocator.h"
#include "mm/page.h"
#include "shard/shard.h"
#include "snapshot/checkpoint_policy.h"
#include "snapshot/resume_identity.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "sys/host_system.h"
#include "sys/ksm.h"
#include "virtio/virtio_balloon.h"
#include "virtio/virtio_mem.h"
#include "vm/guest_paging.h"
#include "vm/virtual_machine.h"
#include "xen/pv_domain.h"

#endif // HYPERHAMMER_HYPERHAMMER_H
