/**
 * @file
 * Tests of the read-disturbance variants the paper situates itself
 * among: RowPress amplification (Luo et al., cited in the paper's
 * introduction), Half-Double style distance-two coupling, and the
 * multi-VM consequences of flips (Section 4.3's "Improving Success
 * Rates": a flip may expose *another* VM's EPT page, which passes the
 * format check but fails validation).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "hyperhammer/hyperhammer.h"

namespace hh {
namespace {

dram::DramConfig
dimmConfig(uint32_t min_threshold, uint32_t max_threshold)
{
    dram::DramConfig cfg;
    cfg.totalBytes = 256_MiB;
    cfg.fault.weakCellsPerRow = 0.02;
    cfg.fault.stableFraction = 1.0;
    cfg.fault.minThreshold = min_threshold;
    cfg.fault.maxThreshold = max_threshold;
    return cfg;
}

/** First stable 1->0 weak spot at distance from row borders. */
struct Spot
{
    dram::BankId bank;
    dram::RowId row;
    dram::WeakCell cell;
};

std::optional<Spot>
findSpot(const dram::DramSystem &dram)
{
    const dram::AddressMapping &map = dram.mapping();
    const dram::RowId max_row = (dram.size() - 1) >> map.rowLoBit();
    for (dram::RowId row = 2; row + 3 < max_row; ++row) {
        for (dram::BankId bank = 0; bank < map.bankCount(); ++bank) {
            for (const auto &cell :
                 dram.faultModel().weakCellsInRow(bank, row)) {
                if (cell.direction == dram::FlipDirection::OneToZero
                    && cell.stable())
                    return Spot{bank, row, cell};
            }
        }
    }
    return std::nullopt;
}

HostPhysAddr
addrIn(const dram::AddressMapping &map, dram::BankId bank,
       dram::RowId row)
{
    const dram::BankId cls = bank ^ map.rowClass(row);
    return HostPhysAddr(
        (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(map.classOffsets(cls).front())
           << map.interleaveShift()));
}

void
fillRow(dram::DramSystem &dram, dram::RowId row, uint64_t pattern)
{
    const dram::AddressMapping &map = dram.mapping();
    const uint64_t base = static_cast<uint64_t>(row) << map.rowLoBit();
    for (uint64_t off = 0; off < map.rowStripeBytes(); off += kPageSize)
        dram.backend().fillPage((base + off) / kPageSize, pattern);
}

TEST(RowPress, AmplificationBeatsThresholdWithFewActivations)
{
    base::SimClock clock;
    // Thresholds no plain hammer burst can reach in one window.
    dram::DramSystem dram(dimmConfig(700'000, 900'000), clock);
    const auto spot = findSpot(dram);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const dram::AddressMapping &map = dram.mapping();
    const std::vector<HostPhysAddr> aggressors{
        addrIn(map, spot->bank, spot->row + 1),
        addrIn(map, spot->bank, spot->row + 2)};

    // Plain hammering cannot fire (window-capped below threshold).
    EXPECT_TRUE(dram.hammer(aggressors, 650'000).empty());

    // RowPress: 40k activations held open 30 us each amplify to an
    // effective disturbance far above the threshold.
    fillRow(dram, spot->row, ~0ull);
    const auto events =
        dram.press(aggressors, 40'000, 30 * base::kMicrosecond);
    bool fired = false;
    for (const auto &event : events) {
        fired |= event.bank == spot->bank && event.row == spot->row
            && event.bitInWord == spot->cell.bitInWord();
    }
    EXPECT_TRUE(fired);
}

TEST(RowPress, ZeroOpenTimeEqualsHammer)
{
    base::SimClock clock;
    dram::DramSystem dram(dimmConfig(50'000, 150'000), clock);
    const auto spot = findSpot(dram);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const dram::AddressMapping &map = dram.mapping();
    const auto events = dram.press(
        {addrIn(map, spot->bank, spot->row + 1),
         addrIn(map, spot->bank, spot->row + 2)},
        200'000, 0);
    EXPECT_FALSE(events.empty());
}

TEST(HalfDouble, DistanceTwoCouplingReachesPastTheGuardRow)
{
    base::SimClock clock;
    dram::DramConfig cfg = dimmConfig(50'000, 100'000);
    cfg.fault.distanceTwoFactor = 0.6;
    dram::DramSystem dram(cfg, clock);
    const auto spot = findSpot(dram);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const dram::AddressMapping &map = dram.mapping();
    // Aggressors two and three rows away: only the distance-two
    // coupling can reach the victim (row+2 is adjacent at distance
    // two, row+3 contributes nothing at distance three).
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row + 2),
         addrIn(map, spot->bank, spot->row + 3)},
        250'000);
    bool fired = false;
    for (const auto &event : events) {
        fired |= event.bank == spot->bank && event.row == spot->row
            && event.bitInWord == spot->cell.bitInWord();
    }
    EXPECT_TRUE(fired);

    // Without the coupling, the same pattern does nothing to it.
    dram::DramConfig plain_cfg = dimmConfig(50'000, 100'000);
    dram::DramSystem plain(plain_cfg, clock);
    fillRow(plain, spot->row, ~0ull);
    for (const auto &event : plain.hammer(
             {addrIn(map, spot->bank, spot->row + 2),
              addrIn(map, spot->bank, spot->row + 3)},
             250'000)) {
        EXPECT_FALSE(event.bank == spot->bank
                     && event.row == spot->row
                     && event.bitInWord == spot->cell.bitInWord());
    }
}

TEST(CoResidentVm, ForeignEptPagePassesFormatButFailsValidation)
{
    // Section 4.3: "for a simple VM escape, the attacker requires
    // that the EPT page it accesses describes the address space of
    // its own VM" -- a flip exposing another VM's EPT page is a
    // failed attempt, and validation is what tells the attacker so.
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 512_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 512_MiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);

    vm::VmConfig cfg;
    cfg.bootMemBytes = 16_MiB;
    cfg.virtioMemRegionSize = 128_MiB;
    cfg.virtioMemPlugged = 64_MiB;
    vm::VirtualMachine attacker(dram, buddy, cfg, 1);
    vm::VirtualMachine victim(dram, buddy, cfg, 2);

    // Spray both VMs so each has plenty of EPT pages.
    attack::PageSteering steer_a(attacker, clock,
                                 attack::SteeringConfig{});
    steer_a.sprayEptes(attacker.memorySize(), {});
    attack::PageSteering steer_v(victim, clock,
                                 attack::SteeringConfig{});
    steer_v.sprayEptes(victim.memorySize(), {});

    attack::Exploiter exploiter(attacker, clock,
                                attack::ExploitConfig{});
    exploiter.markPages(attacker.hugePageGpas());

    // Induce the unlucky flip: the attacker's EPTE now exposes the
    // VICTIM's last PT page.
    const Pfn own_pt =
        attacker.mmu().eptPageFrames()[attacker.mmu()
                                           .eptPageFrames()
                                           .size() - 2];
    const Pfn victim_pt = victim.mmu().eptPageFrames().back();
    dram.backend().write64(
        HostPhysAddr(own_pt * kPageSize + 3 * 8),
        kvm::EptEntry::leaf4k(victim_pt, false).raw());

    const auto changed = exploiter.detectMappingChanges();
    ASSERT_EQ(changed.size(), 1u);
    // It LOOKS like an EPT page...
    EXPECT_TRUE(exploiter.looksLikeEptPage(changed[0]));
    // ...but toggling its entries moves none of the attacker's own
    // magic markers: validation correctly rejects it.
    EXPECT_FALSE(exploiter.validateAndEscalate(changed[0]).ok());
    // And the victim VM is collaterally corrupted: some of its pages
    // now translate elsewhere. (The attacker restored the entries it
    // toggled, so in this controlled check the victim recovered --
    // the dangerous window existed while validation probed.)
    SUCCEED();
}

TEST(MultiVm, StressCreateDestroyKeepsHostConsistent)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 1_GiB;
    dram_cfg.fault.weakCellsPerRow = 0.001;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 1_GiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);
    buddy.drainPcp();
    const uint64_t free_before = buddy.freePages();

    base::Rng rng(77);
    std::vector<std::unique_ptr<vm::VirtualMachine>> machines;
    uint16_t next_id = 1;
    for (int step = 0; step < 60; ++step) {
        const bool create = machines.empty()
            || (machines.size() < 4 && rng.chance(0.5));
        if (create) {
            vm::VmConfig cfg;
            cfg.bootMemBytes = 16_MiB;
            cfg.virtioMemRegionSize = 256_MiB;
            cfg.virtioMemPlugged =
                (16 + rng.below(48)) * kHugePageSize;
            machines.push_back(
                std::make_unique<vm::VirtualMachine>(dram, buddy, cfg,
                                                     next_id++));
        } else {
            const size_t idx = rng.below(machines.size());
            // Exercise the machine a little before killing it.
            auto &machine = *machines[idx];
            (void)machine.execute(vm::kVirtioMemRegionStart);
            machine.memDriver().setSuppressAutoPlug(true);
            (void)machine.memDriver().unplugSpecific(
                machine.memDevice_().subBlockGpa(3));
            // hh-lint: allow(status-discard) -- churn fuzzing; some calls legitimately fail depending on prior steps
            (void)machine.iommuMap(0, IoVirtAddr(4_GiB),
                                   GuestPhysAddr(0));
            machines.erase(machines.begin() + idx);
        }
        if (step % 10 == 0)
            buddy.checkConsistency();
    }
    machines.clear();
    buddy.drainPcp();
    EXPECT_EQ(buddy.freePages(), free_before);
    buddy.checkConsistency();
}

} // namespace
} // namespace hh
