/**
 * @file
 * Tests of the DRAMDig-style bank-function recovery (Section 5.1):
 * timing-based conflict detection, GF(2) basis reduction, and full
 * recovery of both paper CPUs' functions from the simulated timing
 * side channel.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/dramdig.h"
#include "base/sim_clock.h"

namespace hh::analysis {
namespace {

std::unique_ptr<dram::DramSystem>
makeDram(dram::AddressMapping mapping, base::SimClock &clock)
{
    dram::DramConfig cfg;
    cfg.totalBytes = 1_GiB;
    cfg.mapping = std::move(mapping);
    cfg.fault.weakCellsPerRow = 0;
    return std::make_unique<dram::DramSystem>(cfg, clock);
}

TEST(GF2, ReduceToBasisDropsDependentMasks)
{
    const uint64_t a = (1ull << 6) | (1ull << 13);
    const uint64_t b = (1ull << 14) | (1ull << 18);
    const std::vector<uint64_t> masks{a, b, a ^ b, a, b ^ a};
    const auto basis = DramDig::reduceToBasis(masks);
    ASSERT_EQ(basis.size(), 2u);
    EXPECT_TRUE(DramDig::sameSpan(basis, {a, b}));
}

TEST(GF2, ReduceToBasisPrefersLowWeight)
{
    const uint64_t a = (1ull << 6) | (1ull << 13);
    const uint64_t b = (1ull << 14) | (1ull << 18);
    // Offer the heavy combination first; the light generators win.
    const std::vector<uint64_t> masks{a ^ b, a, b};
    const auto basis = DramDig::reduceToBasis(masks);
    ASSERT_EQ(basis.size(), 2u);
    EXPECT_EQ(std::popcount(basis[0]), 2);
    EXPECT_EQ(std::popcount(basis[1]), 2);
}

TEST(GF2, SameSpanDetectsEquivalence)
{
    const uint64_t a = 0b0110;
    const uint64_t b = 0b1010;
    EXPECT_TRUE(DramDig::sameSpan({a, b}, {a ^ b, b}));
    EXPECT_FALSE(DramDig::sameSpan({a}, {a, b}));
    EXPECT_FALSE(DramDig::sameSpan({a, b}, {a, 0b0001}));
    EXPECT_TRUE(DramDig::sameSpan({}, {}));
}

TEST(DramDig, ConflictDetection)
{
    base::SimClock clock;
    auto dram = makeDram(dram::AddressMapping::i3_10100(), clock);
    DramDig dig(*dram, DramDigConfig{});

    const dram::AddressMapping &map = dram->mapping();
    // Construct a same-bank different-row pair and a different-bank
    // pair from ground truth.
    const dram::BankId bank = 3;
    const auto addr_in = [&](dram::RowId row) {
        const dram::BankId cls = bank ^ map.rowClass(row);
        return HostPhysAddr(
            (static_cast<uint64_t>(row) << map.rowLoBit())
            | (static_cast<uint64_t>(map.classOffsets(cls).front())
               << map.interleaveShift()));
    };
    EXPECT_TRUE(dig.conflicts(addr_in(10), addr_in(99)));

    const HostPhysAddr other_bank(
        addr_in(10).value()
        ^ (1ull << map.interleaveShift())); // different bank class
    ASSERT_NE(map.bankOf(addr_in(10)), map.bankOf(other_bank));
    EXPECT_FALSE(dig.conflicts(addr_in(10), other_bank));
}

class DramDigRecovery
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(DramDigRecovery, RecoversConfiguredFunction)
{
    base::SimClock clock;
    const std::string name = GetParam();
    dram::AddressMapping mapping = name == "i3"
        ? dram::AddressMapping::i3_10100()
        : name == "xeon" ? dram::AddressMapping::xeonE3_2124()
                         : dram::AddressMapping::linear(5);
    auto dram_sys = makeDram(mapping, clock);

    DramDigConfig cfg;
    cfg.seed = 0xabc;
    DramDig dig(*dram_sys, cfg);
    const DramDigResult result = dig.run();
    ASSERT_TRUE(result.recovered());
    EXPECT_EQ(result.bankMasks.size(), mapping.bankMasks().size());
    EXPECT_TRUE(
        DramDig::sameSpan(result.bankMasks, mapping.bankMasks()))
        << "recovered function spans a different space";
    EXPECT_GT(result.timedAccesses, 0u);
    EXPECT_GT(result.latencyThreshold, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Mappings, DramDigRecovery,
                         ::testing::Values("i3", "xeon", "linear"));

TEST(DramDig, RecoveredFunctionPreservedByThp)
{
    // The attack's prerequisite check: the recovered function must
    // only use THP-preserved bits (Section 5.1).
    base::SimClock clock;
    auto dram_sys = makeDram(dram::AddressMapping::i3_10100(), clock);
    DramDig dig(*dram_sys, DramDigConfig{});
    const DramDigResult result = dig.run();
    ASSERT_TRUE(result.recovered());
    const dram::AddressMapping recovered(result.bankMasks, 18, 33);
    EXPECT_TRUE(recovered.bankBitsPreservedBy(21));
}

} // namespace
} // namespace hh::analysis
