/**
 * @file
 * Unit and property tests for the DRAM address mapping: the published
 * bank functions of both evaluation CPUs, the offset/row class
 * decomposition the fault model relies on, and the THP bit-preservation
 * property the attack depends on (Section 5.1).
 */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "dram/address_mapping.h"

namespace hh::dram {
namespace {

TEST(AddressMapping, I3Preset)
{
    const AddressMapping map = AddressMapping::i3_10100();
    EXPECT_EQ(map.bankBits(), 5u);
    EXPECT_EQ(map.bankCount(), 32u);
    EXPECT_EQ(map.rowLoBit(), 18u);
    EXPECT_EQ(map.rowHiBit(), 33u);
    EXPECT_EQ(map.rowStripeBytes(), 256u * 1024);
    EXPECT_EQ(map.rowBytesPerBank(), 8192u);
}

TEST(AddressMapping, XeonPreset)
{
    const AddressMapping map = AddressMapping::xeonE3_2124();
    EXPECT_EQ(map.bankCount(), 32u);
    EXPECT_EQ(map.rowLoBit(), 18u);
    // The 6-bit mask (8,9,12,13,18,19) must be present.
    bool has_wide_mask = false;
    for (uint64_t mask : map.bankMasks())
        has_wide_mask |= std::popcount(mask) == 6;
    EXPECT_TRUE(has_wide_mask);
}

TEST(AddressMapping, RowOfExtractsBits18To33)
{
    const AddressMapping map = AddressMapping::i3_10100();
    EXPECT_EQ(map.rowOf(HostPhysAddr(0)), 0u);
    EXPECT_EQ(map.rowOf(HostPhysAddr(1ull << 18)), 1u);
    EXPECT_EQ(map.rowOf(HostPhysAddr((1ull << 18) - 1)), 0u);
    EXPECT_EQ(map.rowOf(HostPhysAddr(7ull << 18)), 7u);
    // Bits above 33 do not contribute.
    EXPECT_EQ(map.rowOf(HostPhysAddr(1ull << 34)), 0u);
}

TEST(AddressMapping, BankOfMatchesPaperExample)
{
    const AddressMapping map = AddressMapping::i3_10100();
    // Bank bit 0 is parity of bits (6, 13).
    EXPECT_EQ(map.bankOf(HostPhysAddr(1ull << 6)) & 1u, 1u);
    EXPECT_EQ(map.bankOf(HostPhysAddr((1ull << 6) | (1ull << 13))) & 1u,
              0u);
    // Bank bit 4 is parity of bits (17, 21).
    EXPECT_EQ((map.bankOf(HostPhysAddr(1ull << 17)) >> 4) & 1u, 1u);
    EXPECT_EQ((map.bankOf(HostPhysAddr(1ull << 21)) >> 4) & 1u, 1u);
}

/** Property: bankOf(addr) == offsetClass(low bits) ^ rowClass(row). */
class MappingDecomposition
    : public ::testing::TestWithParam<const char *>
{
  protected:
    AddressMapping
    mapping() const
    {
        const std::string name = GetParam();
        if (name == "i3")
            return AddressMapping::i3_10100();
        if (name == "xeon")
            return AddressMapping::xeonE3_2124();
        return AddressMapping::linear(4);
    }
};

TEST_P(MappingDecomposition, ClassDecompositionHolds)
{
    const AddressMapping map = mapping();
    base::Rng rng(99);
    for (int i = 0; i < 5'000; ++i) {
        const HostPhysAddr addr(rng.below(16_GiB));
        const uint64_t low =
            addr.value() & (map.rowStripeBytes() - 1);
        const BankId expected =
            map.offsetClass(low) ^ map.rowClass(map.rowOf(addr));
        // rowClass only covers bits >= rowLo, but bits above rowHi
        // are not part of the row; mask them off for the check.
        const uint64_t masked = addr.value()
            & ((1ull << (map.rowHiBit() + 1)) - 1);
        EXPECT_EQ(map.bankOf(HostPhysAddr(masked)), expected);
    }
}

TEST_P(MappingDecomposition, ClassOffsetsPartitionTheStripe)
{
    const AddressMapping map = mapping();
    const uint64_t granules = map.rowStripeBytes()
        >> map.interleaveShift();
    std::set<uint32_t> all;
    for (BankId cls = 0; cls < map.bankCount(); ++cls) {
        for (uint32_t g : map.classOffsets(cls)) {
            EXPECT_TRUE(all.insert(g).second) << "duplicate granule";
            // The granule really belongs to this class.
            EXPECT_EQ(map.offsetClass(static_cast<uint64_t>(g)
                                      << map.interleaveShift()),
                      cls);
        }
    }
    EXPECT_EQ(all.size(), granules);
}

TEST_P(MappingDecomposition, ClassesBalanced)
{
    const AddressMapping map = mapping();
    const uint64_t granules = map.rowStripeBytes()
        >> map.interleaveShift();
    for (BankId cls = 0; cls < map.bankCount(); ++cls)
        EXPECT_EQ(map.classOffsets(cls).size(),
                  granules / map.bankCount());
}

INSTANTIATE_TEST_SUITE_P(Presets, MappingDecomposition,
                         ::testing::Values("i3", "xeon", "linear"));

TEST(AddressMapping, BankBitsPreservedByThp)
{
    // Both paper CPUs: every bank-function bit is either below 21 or a
    // row bit, so the attacker can reason about banks from hugepage
    // offsets (Section 5.1).
    EXPECT_TRUE(AddressMapping::i3_10100().bankBitsPreservedBy(21));
    EXPECT_TRUE(AddressMapping::xeonE3_2124().bankBitsPreservedBy(21));
}

TEST(AddressMapping, BankBitsNotPreservedForHighMask)
{
    // A function using bit 35 (neither low nor row bit) breaks the
    // THP trick.
    AddressMapping map({(1ull << 6) | (1ull << 35)}, 18, 33);
    EXPECT_FALSE(map.bankBitsPreservedBy(21));
}

TEST(AddressMapping, LinearMapping)
{
    const AddressMapping map = AddressMapping::linear(3);
    EXPECT_EQ(map.bankCount(), 8u);
    EXPECT_EQ(map.bankOf(HostPhysAddr(0)), 0u);
    EXPECT_EQ(map.bankOf(HostPhysAddr(0b111ull << 6)), 7u);
}

TEST(AddressMapping, EqualityIsMaskSetBased)
{
    EXPECT_TRUE(AddressMapping::i3_10100()
                == AddressMapping::i3_10100());
    EXPECT_FALSE(AddressMapping::i3_10100()
                 == AddressMapping::xeonE3_2124());
}

TEST(AddressMapping, DescribeMentionsGeometry)
{
    const std::string desc = AddressMapping::i3_10100().describe();
    EXPECT_NE(desc.find("32 banks"), std::string::npos);
    EXPECT_NE(desc.find("18..33"), std::string::npos);
}

TEST(AddressMapping, SameBankPairsExistAcrossAdjacentRows)
{
    // The profiler's core assumption: for any two adjacent rows there
    // is, within each bank, at least one address in each row.
    const AddressMapping map = AddressMapping::i3_10100();
    for (RowId row = 0; row < 16; ++row) {
        for (BankId bank = 0; bank < map.bankCount(); ++bank) {
            const BankId cls0 = bank ^ map.rowClass(row);
            const BankId cls1 = bank ^ map.rowClass(row + 1);
            EXPECT_FALSE(map.classOffsets(cls0).empty());
            EXPECT_FALSE(map.classOffsets(cls1).empty());
        }
    }
}

} // namespace
} // namespace hh::dram
