/**
 * @file
 * Cross-module property sweeps: determinism of the whole DRAM path,
 * profiler correctness on both CPU presets, EPT translation
 * roundtrips under random mapping mixes, virtio-mem accounting under
 * repeated resize cycles, steering under S3's background churn, and
 * mitigation monotonicity across a seed subsample.
 */

#include <gtest/gtest.h>

#include <memory>

#include "hyperhammer/hyperhammer.h"

namespace hh {
namespace {

TEST(Determinism, DramSystemsWithSameSeedAgree)
{
    const auto run = [](uint64_t seed) {
        base::SimClock clock;
        dram::DramConfig cfg;
        cfg.totalBytes = 256_MiB;
        cfg.seed = seed;
        cfg.fault.weakCellsPerRow = 0.02;
        dram::DramSystem dram(cfg, clock);
        const dram::AddressMapping &map = dram.mapping();
        std::vector<uint64_t> trace;
        for (dram::RowId row = 1; row < 200; row += 3) {
            const dram::BankId cls0 = 0u ^ map.rowClass(row);
            const dram::BankId cls1 = 0u ^ map.rowClass(row + 1);
            const uint64_t stripe =
                static_cast<uint64_t>(row) << map.rowLoBit();
            for (uint64_t off = 0; off < map.rowStripeBytes() * 3;
                 off += kPageSize) {
                dram.backend().fillPage((stripe + off) / kPageSize,
                                        ~0ull);
            }
            const HostPhysAddr a(
                stripe
                | (static_cast<uint64_t>(map.classOffsets(cls0)[0])
                   << map.interleaveShift()));
            const HostPhysAddr b(
                (stripe + map.rowStripeBytes())
                | (static_cast<uint64_t>(map.classOffsets(cls1)[0])
                   << map.interleaveShift()));
            for (const auto &event : dram.hammer({a, b}, 200'000))
                trace.push_back(event.bitAddr());
        }
        return trace;
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(run(99), run(100));
}

/** Profiler correctness on both evaluation CPUs' mappings. */
class ProfilerPresetSweep
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ProfilerPresetSweep, PairsShareBanksOnThisPreset)
{
    const std::string name = GetParam();
    sys::SystemConfig cfg = name == "s2"
        ? sys::SystemConfig::s2(5).withMemory(1_GiB)
        : sys::SystemConfig::s1(5).withMemory(1_GiB);
    sys::HostSystem host(cfg);
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 256_MiB;
    auto machine = host.createVm(vm_cfg);

    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(),
                                    attack::ProfilerConfig{});
    const dram::AddressMapping &map = host.dram().mapping();
    for (bool top : {false, true}) {
        for (const auto &pair : profiler.aggressorCandidates(
                 machine->memDevice_().subBlockGpa(3), top)) {
            auto a = machine->debugTranslate(pair[0]);
            auto b = machine->debugTranslate(pair[1]);
            ASSERT_TRUE(a.ok() && b.ok());
            EXPECT_EQ(map.bankOf(*a), map.bankOf(*b));
            EXPECT_EQ(map.rowOf(*a) + 1, map.rowOf(*b));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Presets, ProfilerPresetSweep,
                         ::testing::Values("s1", "s2"));

TEST(EptRoundTrip, RandomMappingMix)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 512_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 512_MiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);
    kvm::Mmu mmu(dram, buddy, kvm::MmuConfig{}, 1);

    base::Rng rng(17);
    struct Mapping
    {
        GuestPhysAddr gpa;
        HostPhysAddr hpa;
        bool huge;
    };
    std::vector<Mapping> mappings;
    for (int i = 0; i < 300; ++i) {
        const bool huge = rng.chance(0.4);
        if (huge) {
            auto block = buddy.allocPages(9, mm::MigrateType::Movable,
                                          mm::PageUse::GuestMemory, 1);
            ASSERT_TRUE(block.ok());
            const GuestPhysAddr gpa(
                rng.below(1u << 12) * kHugePageSize + 64_GiB);
            const HostPhysAddr hpa(*block * kPageSize);
            if (mmu.map2m(gpa, hpa).ok())
                mappings.push_back({gpa, hpa, true});
            else
                buddy.freePages(*block, 9);
        } else {
            auto page = buddy.allocPages(0, mm::MigrateType::Movable,
                                         mm::PageUse::GuestMemory, 1);
            ASSERT_TRUE(page.ok());
            const GuestPhysAddr gpa(rng.below(1u << 20) * kPageSize);
            const HostPhysAddr hpa(*page * kPageSize);
            if (mmu.map4k(gpa, hpa, rng.chance(0.5)).ok())
                mappings.push_back({gpa, hpa, false});
            else
                buddy.freePages(*page, 0);
        }
    }
    ASSERT_GT(mappings.size(), 200u);
    for (const Mapping &m : mappings) {
        const uint64_t span = m.huge ? kHugePageSize : kPageSize;
        const uint64_t offset = rng.below(span / 8) * 8;
        auto hpa = mmu.translate(m.gpa + offset);
        ASSERT_TRUE(hpa.ok());
        EXPECT_EQ(hpa->value(), m.hpa.value() + offset);
    }
}

TEST(VirtioMemCycles, RepeatedResizeKeepsAccountingExact)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 512_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 512_MiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);

    buddy.drainPcp();
    const uint64_t free_at_start = buddy.freePages();
    {
        vm::VmConfig cfg;
        cfg.bootMemBytes = 16_MiB;
        cfg.virtioMemRegionSize = 256_MiB;
        cfg.virtioMemPlugged = 64_MiB;
        vm::VirtualMachine machine(dram, buddy, cfg, 1);
        auto &device = machine.memDevice_();
        vm::VirtualMachine *vm_ptr = &machine;

        base::Rng rng(23);
        for (int cycle = 0; cycle < 40; ++cycle) {
            const uint64_t target =
                (8 + rng.below(120)) * kHugePageSize;
            device.setRequestedSize(target);
            machine.memDriver().converge();
            EXPECT_EQ(device.pluggedSize(), target);
            EXPECT_EQ(vm_ptr->memorySize(), 16_MiB + target);
            // Accounting: free + VM-held is conserved.
            const uint64_t held = (16_MiB + target) / kPageSize;
            EXPECT_GE(buddy.freePages() + held
                          + buddy.pcpCount() * 0,
                      free_at_start - 2'000); // tables + metadata
        }
    }
    buddy.drainPcp();
    EXPECT_EQ(buddy.freePages(), free_at_start);
}

TEST(ChurnResilience, SteeringWorksOnS3)
{
    // S3's background churn keeps regenerating noise pages while the
    // attack runs (Figure 3(b)); steering must still place EPT pages
    // on the released block when the spray is large enough.
    sys::HostSystem host(
        sys::SystemConfig::s3(31).withMemory(4_GiB));
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 256_MiB;
    vm_cfg.virtioMemRegionSize = 4_GiB;
    vm_cfg.virtioMemPlugged = 2_GiB + 768_MiB;
    auto machine = host.createVm(vm_cfg);

    attack::SteeringConfig steer_cfg;
    steer_cfg.exhaustMappings = 20'000;
    attack::PageSteering steering(*machine, host.clock(), steer_cfg);
    steering.exhaustNoisePages();
    for (int tick = 0; tick < 30; ++tick)
        host.noiseTick();

    machine->memDriver().setSuppressAutoPlug(true);
    auto &device = machine->memDevice_();
    const GuestPhysAddr victim = device.subBlockGpa(100);
    auto victim_hpa = machine->debugTranslate(victim);
    ASSERT_TRUE(victim_hpa.ok());
    ASSERT_TRUE(machine->memDriver().unplugSpecific(victim).ok());
    steering.sprayEptes(machine->memorySize(), {victim.value()});

    uint64_t consumed = 0;
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        const mm::PageFrame &frame =
            host.buddy().frame(victim_hpa->pfn() + i);
        if (!frame.free)
            ++consumed;
    }
    EXPECT_GT(consumed, 300u)
        << "churn prevented the spray from reaching the block";
}

TEST(WriteFault, HandlerInvokedOnProtectedPage)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 256_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 256_MiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);
    vm::VmConfig cfg;
    cfg.bootMemBytes = 16_MiB;
    cfg.virtioMemRegionSize = 64_MiB;
    cfg.virtioMemPlugged = 32_MiB;
    vm::VirtualMachine machine(dram, buddy, cfg, 1);

    const GuestPhysAddr page = vm::kVirtioMemRegionStart;
    ASSERT_TRUE(machine.mmu().splitHugePage(page).ok());
    ASSERT_TRUE(machine.mmu().setLeafWritable(page, false).ok());

    // Without a handler, the write is denied.
    EXPECT_EQ(machine.write64(page, 1).error(),
              base::ErrorCode::Denied);

    // The handler can repair (here: just re-enable the write).
    unsigned faults = 0;
    machine.setWriteFaultHandler(
        [&faults](vm::VirtualMachine &vm_ref, GuestPhysAddr gpa) {
            ++faults;
            return vm_ref.mmu().setLeafWritable(gpa, true);
        });
    EXPECT_TRUE(machine.write64(page, 2).ok());
    EXPECT_EQ(faults, 1u);
    EXPECT_EQ(machine.read64(page).valueOr(0), 2u);
    // Subsequent writes need no fault.
    EXPECT_TRUE(machine.write64(page, 3).ok());
    EXPECT_EQ(faults, 1u);
}

// ---------------------------------------------------------------------------
// Seed-sweep attack invariants (32 seeds; DESIGN.md section 3.3).

/** The 32 sweep seeds: distinct, deterministic, structure-free. */
std::vector<uint64_t>
sweepSeeds()
{
    std::vector<uint64_t> seeds;
    base::SeedSequence seq(0x5eedull);
    for (unsigned i = 0; i < 32; ++i)
        seeds.push_back(seq.seed(i));
    return seeds;
}

TEST(SeedSweep, NoFlipOutsideTheFaultMap)
{
    // Whatever the seed, a hammer pass may only flip bits the DIMM's
    // ground-truth fault map registers for that (bank, row) -- the
    // simulation invents no flips, under either stored polarity.
    uint64_t flips_checked = 0;
    for (uint64_t seed : sweepSeeds()) {
        base::SimClock clock;
        dram::DramConfig cfg;
        cfg.totalBytes = 256_MiB;
        cfg.seed = seed;
        cfg.fault.weakCellsPerRow = 0.05;
        dram::DramSystem dram(cfg, clock);
        const dram::AddressMapping &map = dram.mapping();

        for (uint64_t pattern : {~0ull, 0ull}) {
            const dram::FlipDirection expect_dir = pattern == ~0ull
                ? dram::FlipDirection::OneToZero
                : dram::FlipDirection::ZeroToOne;
            for (dram::RowId row = 2; row < 32; row += 4) {
                const uint64_t stripe = static_cast<uint64_t>(row)
                    << map.rowLoBit();
                for (uint64_t off = 0; off < map.rowStripeBytes() * 4;
                     off += kPageSize)
                    dram.backend().fillPage((stripe + off) / kPageSize,
                                            pattern);
                const dram::BankId cls1 = 0u ^ map.rowClass(row + 1);
                const dram::BankId cls2 = 0u ^ map.rowClass(row + 2);
                const HostPhysAddr a(
                    (stripe + map.rowStripeBytes())
                    | (static_cast<uint64_t>(map.classOffsets(cls1)[0])
                       << map.interleaveShift()));
                const HostPhysAddr b(
                    (stripe + 2 * map.rowStripeBytes())
                    | (static_cast<uint64_t>(map.classOffsets(cls2)[0])
                       << map.interleaveShift()));
                for (const dram::FlipEvent &event :
                     dram.hammer({a, b}, 200'000)) {
                    ++flips_checked;
                    EXPECT_EQ(event.direction, expect_dir);
                    bool registered = false;
                    for (const dram::WeakCell &cell :
                         dram.faultModel().weakCellsInRow(event.bank,
                                                          event.row)) {
                        if (cell.bitInWord() == event.bitInWord
                            && cell.direction == event.direction)
                            registered = true;
                    }
                    EXPECT_TRUE(registered)
                        << "seed " << seed << ": flip at bank "
                        << event.bank << " row " << event.row
                        << " bit " << event.bitInWord
                        << " is not in the fault map";
                }
            }
        }
    }
    EXPECT_GT(flips_checked, 0u) << "the sweep never saw a flip";
}

TEST(SeedSweep, WeakCellPopulationIsMonotoneInDensity)
{
    // The generator draws the weak gate before the cell identity, both
    // pure in (seed, bank, row): doubling the density only ever adds
    // cells. This nesting is what makes attack success monotone in the
    // exploitable-cell count -- a denser DIMM offers a superset of
    // targets.
    for (uint64_t seed : sweepSeeds()) {
        dram::FaultModelConfig lo;
        lo.weakCellsPerRow = 0.004;
        dram::FaultModelConfig hi = lo;
        hi.weakCellsPerRow = 0.008;
        dram::FaultModelConfig zero = lo;
        zero.weakCellsPerRow = 0.0;
        const uint64_t row_bytes = 8192;
        dram::FaultModel model_lo(lo, seed, row_bytes);
        dram::FaultModel model_hi(hi, seed, row_bytes);
        dram::FaultModel model_zero(zero, seed, row_bytes);

        uint64_t cells_lo = 0;
        uint64_t cells_hi = 0;
        for (dram::BankId bank = 0; bank < 8; ++bank) {
            for (dram::RowId row = 0; row < 512; ++row) {
                const auto in_lo = model_lo.weakCellsInRow(bank, row);
                const auto in_hi = model_hi.weakCellsInRow(bank, row);
                cells_lo += in_lo.size();
                cells_hi += in_hi.size();
                EXPECT_TRUE(model_zero.weakCellsInRow(bank, row).empty());
                ASSERT_LE(in_lo.size(), in_hi.size());
                for (size_t i = 0; i < in_lo.size(); ++i) {
                    // Nested, not merely smaller: same cells, in order.
                    EXPECT_EQ(in_lo[i].byteInRow, in_hi[i].byteInRow);
                    EXPECT_EQ(in_lo[i].bitInByte, in_hi[i].bitInByte);
                    EXPECT_EQ(in_lo[i].direction, in_hi[i].direction);
                }
            }
        }
        EXPECT_LE(cells_lo, cells_hi);
    }
    // Sanity: the sweep saw real cells at least somewhere.
}

TEST(SeedSweep, AttackSuccessIsMonotoneInExploitableCells)
{
    // End-to-end anchor on a seed subsample: a DIMM with no weak cells
    // can never be exploited (the attack degrades instead of lying),
    // and raising the density never loses profiled exploitable cells
    // or successes in aggregate.
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 640_MiB;
    attack::AttackConfig atk_cfg;
    atk_cfg.maxAttempts = 3;
    atk_cfg.steering.exhaustMappings = 2'500;

    const std::vector<uint64_t> seeds = sweepSeeds();
    uint64_t cells_low = 0;
    uint64_t cells_high = 0;
    unsigned success_low = 0;
    unsigned success_high = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const uint64_t seed = seeds[i];
        // Zero density: degraded NotFound, never success.
        {
            sys::SystemConfig cfg =
                sys::SystemConfig::s1(seed).withMemory(1_GiB);
            cfg.dram.fault.weakCellsPerRow = 0.0;
            sys::HostSystem host(cfg);
            attack::HyperHammerAttack attack(host, vm_cfg,
                                             host.dram().mapping(),
                                             atk_cfg);
            (void)attack.profilePhase();
            EXPECT_TRUE(attack.hostProfile().empty());
            const attack::AttackResult result = attack.run();
            EXPECT_FALSE(result.success);
            EXPECT_TRUE(result.degraded);
            EXPECT_EQ(result.status.error(), base::ErrorCode::NotFound);
        }
        for (double scale : {2.0, 8.0}) {
            sys::SystemConfig cfg =
                sys::SystemConfig::s1(seed).withMemory(1_GiB);
            cfg.dram.fault.weakCellsPerRow *= scale;
            sys::HostSystem host(cfg);
            attack::HyperHammerAttack attack(host, vm_cfg,
                                             host.dram().mapping(),
                                             atk_cfg);
            (void)attack.profilePhase();
            const attack::AttackResult result = attack.run();
            if (scale == 2.0) {
                cells_low += attack.hostProfile().size();
                success_low += result.success ? 1 : 0;
            } else {
                cells_high += attack.hostProfile().size();
                success_high += result.success ? 1 : 0;
            }
        }
    }
    EXPECT_LE(cells_low, cells_high)
        << "denser DIMMs must not lose exploitable cells";
    EXPECT_LE(success_low, success_high)
        << "success must be monotone in the exploitable-cell count";
    EXPECT_GT(cells_high, 0u);
}

TEST(SeedSweep, DefendedProgressNeverExceedsBaseline)
{
    // Mitigation monotonicity as a seed-sweep property: across a seed
    // subsample, no defense ever increases the attack's aggregate
    // graded progress, and the structural guarantees hold on every
    // seed -- quarantine leaves nothing for the spray to reclaim, and
    // Siloz keeps flips out of the sprayed mappings entirely. The
    // pinned-seed depth checks live in test_mitigation; this sweep
    // guards against a geometry where a defense backfires.
    const std::vector<uint64_t> seeds = sweepSeeds();
    uint64_t base_released = 0, base_flips = 0, base_cands = 0;
    uint64_t quar_released = 0, quar_flips = 0, quar_cands = 0;
    uint64_t silz_released = 0, silz_flips = 0, silz_cands = 0;
    for (unsigned i = 0; i < 3; ++i) {
        mitigate::MatrixSpec spec;
        sys::SystemConfig host =
            sys::SystemConfig::s1(seeds[i]).withMemory(1_GiB);
        host.dram.fault.weakCellsPerRow *= 8.0;
        spec.hosts = {host};
        spec.vm.bootMemBytes = 64_MiB;
        spec.vm.virtioMemRegionSize = 1_GiB;
        spec.vm.virtioMemPlugged = 640_MiB;
        spec.attack.steering.exhaustMappings = 2'500;
        spec.attack.profiler.stopAfterExploitable = 0;
        spec.trials = 12;
        spec.threads = 4;
        spec.defenses = {"none", "quarantine", "siloz"};
        auto matrix = mitigate::runMatrix(spec);
        ASSERT_TRUE(matrix.ok()) << "seed " << seeds[i];

        const mitigate::MatrixCell *base =
            matrix->find("S1", "none", "pairwise");
        const mitigate::MatrixCell *quar =
            matrix->find("S1", "quarantine", "pairwise");
        const mitigate::MatrixCell *silz =
            matrix->find("S1", "siloz", "pairwise");
        ASSERT_NE(base, nullptr);
        ASSERT_NE(quar, nullptr);
        ASSERT_NE(silz, nullptr);
        // Structural, so they must hold seed by seed.
        EXPECT_EQ(quar->releasedSubBlocks, 0u)
            << "seed " << seeds[i];
        EXPECT_EQ(silz->flippedMappings, 0u) << "seed " << seeds[i];
        base_released += base->releasedSubBlocks;
        base_flips += base->flippedMappings;
        base_cands += base->epteCandidates;
        quar_released += quar->releasedSubBlocks;
        quar_flips += quar->flippedMappings;
        quar_cands += quar->epteCandidates;
        silz_released += silz->releasedSubBlocks;
        silz_flips += silz->flippedMappings;
        silz_cands += silz->epteCandidates;
    }
    EXPECT_GT(base_released, 0u); // the baseline attack progressed
    EXPECT_LE(quar_released, base_released);
    EXPECT_LE(quar_flips, base_flips);
    EXPECT_LE(quar_cands, base_cands);
    EXPECT_LE(silz_released, base_released);
    EXPECT_LE(silz_flips, base_flips);
    EXPECT_LE(silz_cands, base_cands);
}

} // namespace
} // namespace hh
