/**
 * @file
 * Unit tests for the sparse memory backend: fill/override semantics,
 * bit flips, and the mismatch scanner the profiler relies on.
 */

#include <gtest/gtest.h>

#include "dram/memory_backend.h"

namespace hh::dram {
namespace {

TEST(MemoryBackend, UntouchedReadsZero)
{
    MemoryBackend mem(1_MiB);
    EXPECT_EQ(mem.read64(HostPhysAddr(0)), 0u);
    EXPECT_EQ(mem.read64(HostPhysAddr(1_MiB - 8)), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(MemoryBackend, WriteReadRoundTrip)
{
    MemoryBackend mem(1_MiB);
    mem.write64(HostPhysAddr(0x1008), 0xdeadbeef);
    EXPECT_EQ(mem.read64(HostPhysAddr(0x1008)), 0xdeadbeefu);
    EXPECT_EQ(mem.read64(HostPhysAddr(0x1000)), 0u);
    EXPECT_EQ(mem.touchedPages(), 1u);
}

TEST(MemoryBackend, UnalignedAddressHitsContainingWord)
{
    MemoryBackend mem(1_MiB);
    mem.write64(HostPhysAddr(0x1008), 42);
    EXPECT_EQ(mem.read64(HostPhysAddr(0x100b)), 42u);
}

TEST(MemoryBackend, FillPageSetsAllWords)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(3, 0x5555);
    EXPECT_EQ(mem.read64(HostPhysAddr(3 * kPageSize)), 0x5555u);
    EXPECT_EQ(mem.read64(HostPhysAddr(3 * kPageSize + 4088)), 0x5555u);
    EXPECT_EQ(mem.read64(HostPhysAddr(2 * kPageSize)), 0u);
}

TEST(MemoryBackend, FillZeroReclaimsMetadata)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(1, 0xff);
    EXPECT_EQ(mem.touchedPages(), 1u);
    mem.fillPage(1, 0);
    EXPECT_EQ(mem.touchedPages(), 0u);
    EXPECT_EQ(mem.read64(HostPhysAddr(kPageSize)), 0u);
}

TEST(MemoryBackend, WritingFillValueRemovesOverride)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0xaa);
    mem.write64(HostPhysAddr(8), 0xbb);
    EXPECT_EQ(mem.read64(HostPhysAddr(8)), 0xbbu);
    mem.write64(HostPhysAddr(8), 0xaa);
    EXPECT_EQ(mem.read64(HostPhysAddr(8)), 0xaau);
    // The scanner must see a perfectly uniform page again.
    EXPECT_TRUE(mem.mismatchedWords(0, 0xaa).empty());
}

TEST(MemoryBackend, FlipBit)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0);
    EXPECT_EQ(mem.flipBit(HostPhysAddr(16), 5), 32u);
    EXPECT_EQ(mem.read64(HostPhysAddr(16)), 32u);
    EXPECT_EQ(mem.flipBit(HostPhysAddr(16), 5), 0u);
}

TEST(MemoryBackend, ClearPage)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(2, 0x77);
    mem.clearPage(2);
    EXPECT_EQ(mem.read64(HostPhysAddr(2 * kPageSize)), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(MemoryBackend, MismatchAbsentPageExpectedZero)
{
    MemoryBackend mem(1_MiB);
    EXPECT_TRUE(mem.mismatchedWords(0, 0).empty());
}

TEST(MemoryBackend, MismatchAbsentPageExpectedNonZero)
{
    MemoryBackend mem(1_MiB);
    const auto words = mem.mismatchedWords(0, 0xff);
    EXPECT_EQ(words.size(), kPageSize / 8);
}

TEST(MemoryBackend, MismatchFillMatchesWithOverrides)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0xff);
    mem.write64(HostPhysAddr(24), 1);     // word 3
    mem.write64(HostPhysAddr(4000), 2);   // word 500
    const auto words = mem.mismatchedWords(0, 0xff);
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[0], 3u);
    EXPECT_EQ(words[1], 500u);
}

TEST(MemoryBackend, MismatchFillDiffers)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0xff);
    // Override one word back to the expected value.
    mem.write64(HostPhysAddr(64), 0xee);
    const auto words = mem.mismatchedWords(0, 0xee);
    // Everything mismatches except word 8.
    EXPECT_EQ(words.size(), kPageSize / 8 - 1);
    for (uint16_t w : words)
        EXPECT_NE(w, 8u);
}

TEST(MemoryBackend, ContainsBounds)
{
    MemoryBackend mem(1_MiB);
    EXPECT_TRUE(mem.contains(HostPhysAddr(0)));
    EXPECT_TRUE(mem.contains(HostPhysAddr(1_MiB - 1)));
    EXPECT_FALSE(mem.contains(HostPhysAddr(1_MiB)));
}

TEST(MemoryBackendDeath, OutOfRangeReadPanics)
{
    MemoryBackend mem(1_MiB);
    EXPECT_DEATH((void)mem.read64(HostPhysAddr(2_MiB)), "assertion");
}

TEST(MemoryBackend, ManyOverridesStaySorted)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0);
    // Write in reverse order; reads must still resolve correctly.
    for (int w = 511; w >= 0; --w)
        mem.write64(HostPhysAddr(static_cast<uint64_t>(w) * 8),
                    static_cast<uint64_t>(w) + 1);
    for (int w = 0; w < 512; ++w)
        EXPECT_EQ(mem.read64(HostPhysAddr(static_cast<uint64_t>(w) * 8)),
                  static_cast<uint64_t>(w) + 1);
    EXPECT_EQ(mem.mismatchedWords(0, 0).size(), 512u);
}

} // namespace
} // namespace hh::dram
