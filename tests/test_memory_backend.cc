/**
 * @file
 * Unit tests for the sparse memory backend: fill/override semantics,
 * bit flips, and the mismatch scanner the profiler relies on.
 */

#include <gtest/gtest.h>

#include <thread>

#include "dram/memory_backend.h"

namespace hh::dram {
namespace {

TEST(MemoryBackend, UntouchedReadsZero)
{
    MemoryBackend mem(1_MiB);
    EXPECT_EQ(mem.read64(HostPhysAddr(0)), 0u);
    EXPECT_EQ(mem.read64(HostPhysAddr(1_MiB - 8)), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(MemoryBackend, WriteReadRoundTrip)
{
    MemoryBackend mem(1_MiB);
    mem.write64(HostPhysAddr(0x1008), 0xdeadbeef);
    EXPECT_EQ(mem.read64(HostPhysAddr(0x1008)), 0xdeadbeefu);
    EXPECT_EQ(mem.read64(HostPhysAddr(0x1000)), 0u);
    EXPECT_EQ(mem.touchedPages(), 1u);
}

TEST(MemoryBackend, UnalignedAddressHitsContainingWord)
{
    MemoryBackend mem(1_MiB);
    mem.write64(HostPhysAddr(0x1008), 42);
    EXPECT_EQ(mem.read64(HostPhysAddr(0x100b)), 42u);
}

TEST(MemoryBackend, FillPageSetsAllWords)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(3, 0x5555);
    EXPECT_EQ(mem.read64(HostPhysAddr(3 * kPageSize)), 0x5555u);
    EXPECT_EQ(mem.read64(HostPhysAddr(3 * kPageSize + 4088)), 0x5555u);
    EXPECT_EQ(mem.read64(HostPhysAddr(2 * kPageSize)), 0u);
}

TEST(MemoryBackend, FillZeroReclaimsMetadata)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(1, 0xff);
    EXPECT_EQ(mem.touchedPages(), 1u);
    mem.fillPage(1, 0);
    EXPECT_EQ(mem.touchedPages(), 0u);
    EXPECT_EQ(mem.read64(HostPhysAddr(kPageSize)), 0u);
}

TEST(MemoryBackend, WritingFillValueRemovesOverride)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0xaa);
    mem.write64(HostPhysAddr(8), 0xbb);
    EXPECT_EQ(mem.read64(HostPhysAddr(8)), 0xbbu);
    mem.write64(HostPhysAddr(8), 0xaa);
    EXPECT_EQ(mem.read64(HostPhysAddr(8)), 0xaau);
    // The scanner must see a perfectly uniform page again.
    EXPECT_TRUE(mem.mismatchedWords(0, 0xaa).empty());
}

TEST(MemoryBackend, FlipBit)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0);
    EXPECT_EQ(mem.flipBit(HostPhysAddr(16), 5), 32u);
    EXPECT_EQ(mem.read64(HostPhysAddr(16)), 32u);
    EXPECT_EQ(mem.flipBit(HostPhysAddr(16), 5), 0u);
}

TEST(MemoryBackend, ClearPage)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(2, 0x77);
    mem.clearPage(2);
    EXPECT_EQ(mem.read64(HostPhysAddr(2 * kPageSize)), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(MemoryBackend, MismatchAbsentPageExpectedZero)
{
    MemoryBackend mem(1_MiB);
    EXPECT_TRUE(mem.mismatchedWords(0, 0).empty());
}

TEST(MemoryBackend, MismatchAbsentPageExpectedNonZero)
{
    MemoryBackend mem(1_MiB);
    const auto words = mem.mismatchedWords(0, 0xff);
    EXPECT_EQ(words.size(), kPageSize / 8);
}

TEST(MemoryBackend, MismatchFillMatchesWithOverrides)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0xff);
    mem.write64(HostPhysAddr(24), 1);     // word 3
    mem.write64(HostPhysAddr(4000), 2);   // word 500
    const auto words = mem.mismatchedWords(0, 0xff);
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[0], 3u);
    EXPECT_EQ(words[1], 500u);
}

TEST(MemoryBackend, MismatchFillDiffers)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0xff);
    // Override one word back to the expected value.
    mem.write64(HostPhysAddr(64), 0xee);
    const auto words = mem.mismatchedWords(0, 0xee);
    // Everything mismatches except word 8.
    EXPECT_EQ(words.size(), kPageSize / 8 - 1);
    for (uint16_t w : words)
        EXPECT_NE(w, 8u);
}

TEST(MemoryBackend, ContainsBounds)
{
    MemoryBackend mem(1_MiB);
    EXPECT_TRUE(mem.contains(HostPhysAddr(0)));
    EXPECT_TRUE(mem.contains(HostPhysAddr(1_MiB - 1)));
    EXPECT_FALSE(mem.contains(HostPhysAddr(1_MiB)));
}

TEST(MemoryBackendDeath, OutOfRangeReadPanics)
{
    MemoryBackend mem(1_MiB);
    EXPECT_DEATH((void)mem.read64(HostPhysAddr(2_MiB)), "assertion");
}

TEST(MemoryBackend, ManyOverridesStaySorted)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0);
    // Write in reverse order; reads must still resolve correctly.
    for (int w = 511; w >= 0; --w)
        mem.write64(HostPhysAddr(static_cast<uint64_t>(w) * 8),
                    static_cast<uint64_t>(w) + 1);
    for (int w = 0; w < 512; ++w)
        EXPECT_EQ(mem.read64(HostPhysAddr(static_cast<uint64_t>(w) * 8)),
                  static_cast<uint64_t>(w) + 1);
    EXPECT_EQ(mem.mismatchedWords(0, 0).size(), 512u);
}

std::vector<uint8_t>
stateBytes(const MemoryBackend &mem)
{
    base::ArchiveWriter w;
    mem.saveState(w);
    return w.buffer();
}

TEST(MemoryBackendCow, FreezePublishesTemplate)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0x11);
    mem.fillPage(5, 0x55);
    mem.write64(HostPhysAddr(5 * kPageSize + 8), 0x99);
    EXPECT_EQ(mem.touchedPages(), 2u);
    mem.freeze();
    // Contents unchanged, but now served from the shared template.
    EXPECT_EQ(mem.touchedPages(), 0u);
    EXPECT_EQ(mem.templatePages(), 2u);
    EXPECT_EQ(mem.read64(HostPhysAddr(0)), 0x11u);
    EXPECT_EQ(mem.read64(HostPhysAddr(5 * kPageSize + 8)), 0x99u);
    mem.freeze(); // idempotent
    EXPECT_EQ(mem.templatePages(), 2u);
}

TEST(MemoryBackendCow, ForkIsCheapAndEqual)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(1, 0xab);
    mem.write64(HostPhysAddr(kPageSize + 64), 7);
    mem.freeze();
    const MemoryBackend forked = mem.fork();
    EXPECT_EQ(forked.touchedPages(), 0u); // O(1): overlay empty
    EXPECT_EQ(forked.templatePages(), 1u);
    EXPECT_EQ(stateBytes(forked), stateBytes(mem));
}

TEST(MemoryBackendCow, WriteUnsharesOnePage)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0x11);
    mem.fillPage(1, 0x22);
    mem.freeze();
    MemoryBackend forked = mem.fork();
    forked.write64(HostPhysAddr(8), 0xff);
    // The fork copied up exactly the written page...
    EXPECT_EQ(forked.touchedPages(), 1u);
    EXPECT_EQ(forked.read64(HostPhysAddr(8)), 0xffu);
    EXPECT_EQ(forked.read64(HostPhysAddr(0)), 0x11u);
    // ...and the template (and its other reader) never saw the write.
    EXPECT_EQ(mem.read64(HostPhysAddr(8)), 0x11u);
    EXPECT_EQ(mem.touchedPages(), 0u);
}

TEST(MemoryBackendCow, ClearPageTombstonesTemplatePage)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(3, 0x77);
    mem.freeze();
    MemoryBackend forked = mem.fork();
    forked.clearPage(3);
    // Reads revert to zero; the tombstone is private overlay state.
    EXPECT_EQ(forked.read64(HostPhysAddr(3 * kPageSize)), 0u);
    EXPECT_EQ(forked.touchedPages(), 1u);
    EXPECT_EQ(mem.read64(HostPhysAddr(3 * kPageSize)), 0x77u);
    // saveState() skips the tombstoned page, exactly like a flat
    // backend that erased it.
    const MemoryBackend empty(1_MiB);
    EXPECT_EQ(stateBytes(forked), stateBytes(empty));
    // Re-filling revives the page without disturbing the template.
    forked.fillPage(3, 0x88);
    EXPECT_EQ(forked.read64(HostPhysAddr(3 * kPageSize)), 0x88u);
    EXPECT_EQ(mem.read64(HostPhysAddr(3 * kPageSize)), 0x77u);
}

TEST(MemoryBackendCow, ClearPageOnOverlayReclaimsMetadata)
{
    MemoryBackend mem(1_MiB);
    mem.freeze(); // empty template: clears must not tombstone
    MemoryBackend forked = mem.fork();
    forked.fillPage(2, 0x42);
    EXPECT_EQ(forked.touchedPages(), 1u);
    forked.clearPage(2);
    EXPECT_EQ(forked.touchedPages(), 0u);
}

TEST(MemoryBackendCow, SaveStateMatchesFlatBackend)
{
    // The same logical writes through a fork chain and through a flat
    // backend must serialize to identical bytes.
    MemoryBackend flat(1_MiB);
    MemoryBackend chain(1_MiB);
    chain.fillPage(0, 0x11);
    chain.freeze();
    MemoryBackend forked = chain.fork();
    for (MemoryBackend *mem : {&flat, &forked}) {
        if (mem == &flat)
            mem->fillPage(0, 0x11);
        mem->write64(HostPhysAddr(16), 0xaa);
        mem->fillPage(9, 0x99);
        mem->clearPage(9);
        mem->fillPage(4, 0x44);
    }
    EXPECT_EQ(stateBytes(forked), stateBytes(flat));
}

TEST(MemoryBackendCow, ConcurrentForksAreIndependent)
{
    MemoryBackend mem(1_MiB);
    mem.fillPage(0, 0x5a);
    mem.freeze();
    // Many forks mutate the SAME template page concurrently; each must
    // see only its own write (write-time unsharing is per fork).
    constexpr int kForks = 8;
    std::vector<MemoryBackend> forks;
    forks.reserve(kForks);
    for (int i = 0; i < kForks; ++i)
        forks.push_back(mem.fork());
    std::vector<std::thread> threads;
    threads.reserve(kForks);
    for (int i = 0; i < kForks; ++i) {
        threads.emplace_back([&forks, i] {
            forks[static_cast<size_t>(i)].write64(
                HostPhysAddr(8), static_cast<uint64_t>(i) + 1);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int i = 0; i < kForks; ++i) {
        EXPECT_EQ(forks[static_cast<size_t>(i)].read64(HostPhysAddr(8)),
                  static_cast<uint64_t>(i) + 1);
        EXPECT_EQ(forks[static_cast<size_t>(i)].read64(HostPhysAddr(0)),
                  0x5au);
    }
    EXPECT_EQ(mem.read64(HostPhysAddr(8)), 0x5au);
}

} // namespace
} // namespace hh::dram
