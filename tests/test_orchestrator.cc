/**
 * @file
 * Tests of the end-to-end orchestrator: the profiling phase and its
 * host-physical record conversion, the attempt loop with VM respawn,
 * the expected-time model (Section 5.3.3), and the countermeasure's
 * end-to-end effect.
 */

#include <gtest/gtest.h>

#include <memory>

#include "attack/orchestrator.h"

namespace hh::attack {
namespace {

sys::SystemConfig
hostConfig(uint64_t seed = 42, double density_scale = 4.0)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed)
        .withMemory(1_GiB);
    cfg.dram.fault.weakCellsPerRow *= density_scale;
    return cfg;
}

vm::VmConfig
vmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

AttackConfig
attackConfig(unsigned max_attempts = 4)
{
    AttackConfig cfg;
    cfg.maxAttempts = max_attempts;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

TEST(ExpectedTime, ModelMatchesPaperArithmetic)
{
    // Section 5.3.3 for S1: full profile 72 h finds 96 bits; needing
    // 12 per attempt gives 9 h per profile, and 512 attempts yield
    // 192 days.
    const base::SimTime full = 72 * base::kHour;
    const base::SimTime expected =
        expectedEndToEndTime(full, 96, 12, 512);
    EXPECT_NEAR(base::SimClock::toSeconds(expected),
                192.0 * 24 * 3600, 3600.0);
    // S2: 48 h, 90 bits, 512 attempts -> ~136.5 days.
    const base::SimTime s2 = expectedEndToEndTime(
        48 * base::kHour, 90, 12, 512);
    EXPECT_NEAR(base::SimClock::toSeconds(s2) / (24 * 3600), 136.5,
                1.0);
    EXPECT_EQ(expectedEndToEndTime(full, 0, 12, 512), 0u);
}

TEST(Orchestrator, ProfilePhaseBuildsHostRecords)
{
    sys::HostSystem host(hostConfig());
    HyperHammerAttack attack(host, vmConfig(),
                             host.dram().mapping(), attackConfig());
    const ProfileResult profile = attack.profilePhase();
    EXPECT_GT(profile.totalFlips(), 0u);

    // Records correspond to exploitable+releasable bits only, are in
    // host-physical terms, and are sorted stable-first.
    unsigned usable = 0;
    for (const VulnerableBit &bit : profile.bits)
        usable += bit.exploitable && bit.releasable;
    EXPECT_EQ(attack.hostProfile().size(), usable);
    bool seen_unstable = false;
    for (const HostVulnBit &record : attack.hostProfile()) {
        EXPECT_FALSE(record.aggressorHpas.empty());
        if (!record.stable)
            seen_unstable = true;
        else
            EXPECT_FALSE(seen_unstable) << "stable bits must sort first";
    }
}

TEST(Orchestrator, SecretPlantedInHostMemory)
{
    sys::HostSystem host(hostConfig());
    HyperHammerAttack attack(host, vmConfig(),
                             host.dram().mapping(), attackConfig());
    EXPECT_NE(attack.secretValue(), 0u);
    EXPECT_EQ(host.dram().backend().read64(attack.secretAddress()),
              attack.secretValue());
    // The secret page is host kernel memory, not guest-reachable.
    const mm::PageFrame &frame =
        host.buddy().frame(attack.secretAddress().pfn());
    EXPECT_EQ(frame.use, mm::PageUse::KernelData);
}

TEST(Orchestrator, RunExecutesAttemptsAndRespawns)
{
    sys::HostSystem host(hostConfig());
    HyperHammerAttack attack(host, vmConfig(),
                             host.dram().mapping(), attackConfig(3));
    (void)attack.profilePhase();
    const AttackResult result = attack.run();
    EXPECT_EQ(result.attempts, result.success ? result.attempts : 3u);
    EXPECT_EQ(result.outcomes.size(), result.attempts);
    // Every attempt after the first pays the VM respawn (the first
    // reuses the profiling VM, whose spawn was charged to profiling).
    for (size_t i = 1; i < result.outcomes.size(); ++i)
        EXPECT_GT(result.outcomes[i].duration, 10 * base::kSecond);
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_GT(result.avgAttemptSeconds(), 10.0);
}

TEST(Orchestrator, AttemptsReleaseAndSprayWhenTargetsRelocate)
{
    sys::HostSystem host(hostConfig(7, 8.0));
    HyperHammerAttack attack(host, vmConfig(),
                             host.dram().mapping(), attackConfig(6));
    (void)attack.profilePhase();
    ASSERT_GT(attack.hostProfile().size(), 0u);
    const AttackResult result = attack.run();
    uint64_t total_targeted = 0;
    uint64_t total_demotions = 0;
    for (const AttemptOutcome &outcome : result.outcomes) {
        total_targeted += outcome.bitsTargeted;
        total_demotions += outcome.demotions;
        EXPECT_EQ(outcome.releasedSubBlocks > 0,
                  outcome.bitsTargeted > 0);
    }
    EXPECT_GT(total_targeted, 0u) << "no attempt relocated any bit";
    EXPECT_GT(total_demotions, 0u);
}

TEST(Orchestrator, QuarantineStopsTheAttack)
{
    sys::HostSystem host(hostConfig(7, 8.0));
    vm::VmConfig vm_cfg = vmConfig();
    vm_cfg.quarantine.enabled = true;
    HyperHammerAttack attack(host, vm_cfg, host.dram().mapping(),
                             attackConfig(3));
    (void)attack.profilePhase();
    const AttackResult result = attack.run();
    EXPECT_FALSE(result.success);
    for (const AttemptOutcome &outcome : result.outcomes)
        EXPECT_EQ(outcome.releasedSubBlocks, 0u);
}

TEST(Orchestrator, BatchCappedBySprayBudget)
{
    // A VM with ~352 hugepages can afford at most 1 released bit per
    // attempt even if many more are profiled (Section 4.3's 1 GB per
    // bit rule, scaled).
    sys::HostSystem host(hostConfig(7, 16.0));
    AttackConfig cfg = attackConfig(2);
    cfg.bitsPerAttempt = 12;
    HyperHammerAttack attack(host, vmConfig(),
                             host.dram().mapping(), cfg);
    (void)attack.profilePhase();
    const AttackResult result = attack.run();
    for (const AttemptOutcome &outcome : result.outcomes)
        EXPECT_LE(outcome.bitsTargeted, 1u);
}

} // namespace
} // namespace hh::attack
