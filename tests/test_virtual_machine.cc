/**
 * @file
 * Tests of the assembled VirtualMachine: guest memory operations
 * through the EPT, the vIOMMU guest interface, hugepage enumeration,
 * demotion via execute(), fault behaviour on corrupted mappings, and
 * clean teardown.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"
#include "vm/virtual_machine.h"

namespace hh::vm {
namespace {

class VmTest : public ::testing::Test
{
  protected:
    VmTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 512_MiB;
        dram_cfg.fault.weakCellsPerRow = 0;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 512_MiB / kPageSize;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    }

    VmConfig
    smallConfig()
    {
        VmConfig cfg;
        cfg.bootMemBytes = 16_MiB;
        cfg.virtioMemRegionSize = 256_MiB;
        cfg.virtioMemPlugged = 128_MiB;
        return cfg;
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
};

TEST_F(VmTest, MemoryAccounting)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    EXPECT_EQ(machine.memorySize(), 16_MiB + 128_MiB);
    EXPECT_EQ(machine.hugePageGpas().size(), (16 + 128) / 2u);
    EXPECT_EQ(machine.id(), 1u);
    EXPECT_EQ(machine.hostMemoryBytes(), 512_MiB);
}

TEST_F(VmTest, ReadWriteThroughEpt)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const GuestPhysAddr gpa(kVirtioMemRegionStart + 0x1238);
    ASSERT_TRUE(machine.write64(gpa, 0xcafe).ok());
    auto value = machine.read64(gpa);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, 0xcafeu);
    // The value physically lives at the translated host address.
    auto hpa = machine.debugTranslate(gpa);
    ASSERT_TRUE(hpa.ok());
    EXPECT_EQ(dram->backend().read64(*hpa), 0xcafeu);
}

TEST_F(VmTest, UnmappedGpaFails)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    EXPECT_FALSE(machine.read64(GuestPhysAddr(2_GiB)).ok());
    EXPECT_FALSE(machine.write64(GuestPhysAddr(2_GiB), 1).ok());
}

TEST_F(VmTest, FillAndScanHugePage)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const GuestPhysAddr hp = kVirtioMemRegionStart;
    ASSERT_TRUE(machine.fillHugePage(hp, 0xffff).ok());
    auto clean = machine.scanHugePage(hp, 0xffff);
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean->empty());

    // Corrupt one word host-side (as Rowhammer would).
    auto hpa = machine.debugTranslate(hp + 5 * kPageSize + 80);
    ASSERT_TRUE(hpa.ok());
    dram->backend().flipBit(*hpa, 17);

    auto dirty = machine.scanHugePage(hp, 0xffff);
    ASSERT_TRUE(dirty.ok());
    ASSERT_EQ(dirty->size(), 1u);
    EXPECT_EQ((*dirty)[0].value(), (hp + 5 * kPageSize + 80).value());
}

TEST_F(VmTest, FillPage4k)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const GuestPhysAddr page = kVirtioMemRegionStart + 3 * kPageSize;
    ASSERT_TRUE(machine.fillPage(page, 0x1111).ok());
    EXPECT_EQ(machine.read64(page + 8).valueOr(0), 0x1111u);
    // Neighbouring page untouched.
    EXPECT_EQ(machine.read64(page + kPageSize).valueOr(1), 0u);
}

TEST_F(VmTest, ExecuteDemotesHugePage)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const uint64_t ept_before = machine.mmu().eptPageCount();
    const kvm::AccessResult result =
        machine.execute(kVirtioMemRegionStart);
    EXPECT_TRUE(result.status.ok());
    EXPECT_TRUE(result.demotedHugePage);
    EXPECT_EQ(machine.mmu().eptPageCount(), ept_before + 1);
}

TEST_F(VmTest, IommuMapConsumesUnmovablePages)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    ASSERT_EQ(machine.iommuGroupCount(), 1u);
    const uint64_t iopt_before = machine.vfio()->ioptPageCount();
    for (unsigned i = 0; i < 16; ++i) {
        ASSERT_TRUE(machine
                        .iommuMap(0,
                                  IoVirtAddr(4_GiB
                                             + i * kHugePageSize),
                                  GuestPhysAddr(0))
                        .ok());
    }
    EXPECT_GE(machine.vfio()->ioptPageCount() - iopt_before, 16u);
    ASSERT_TRUE(machine.iommuUnmap(0, IoVirtAddr(4_GiB)).ok());
}

TEST_F(VmTest, IommuMapWithoutDeviceFails)
{
    VmConfig cfg = smallConfig();
    cfg.passthroughDevices = 0;
    VirtualMachine machine(*dram, *buddy, cfg, 1);
    EXPECT_EQ(machine.iommuGroupCount(), 0u);
    EXPECT_FALSE(
        machine.iommuMap(0, IoVirtAddr(0), GuestPhysAddr(0)).ok());
}

TEST_F(VmTest, HammerTranslatesAggressors)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const std::vector<GuestPhysAddr> aggressors{
        kVirtioMemRegionStart, kVirtioMemRegionStart + kHugePageSize};
    EXPECT_EQ(machine.hammer(aggressors, 1'000), 2u);
    // Unmapped aggressors are skipped.
    EXPECT_EQ(machine.hammer({GuestPhysAddr(2_GiB)}, 1'000), 0u);
}

TEST_F(VmTest, PageWordBatchedOps)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const GuestPhysAddr hp = kVirtioMemRegionStart + 4 * kHugePageSize;
    ASSERT_TRUE(machine
                    .writePageWords(hp,
                                    [](GuestPhysAddr page) {
                                        return page.value() | 1;
                                    })
                    .ok());
    const auto words = machine.readPageWords(hp);
    ASSERT_EQ(words.size(), kPagesPerHugePage);
    for (const auto &word : words) {
        EXPECT_FALSE(word.fault);
        EXPECT_EQ(word.value, word.page.value() | 1);
    }
}

TEST_F(VmTest, CorruptedMappingBeyondMemoryFaults)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    const GuestPhysAddr hp = kVirtioMemRegionStart;
    // Demote, then corrupt the first PTE to point beyond DRAM.
    (void)machine.execute(hp);
    const Pfn pt = machine.mmu().eptPageFrames().back();
    const uint64_t pte = dram->backend().read64(
        HostPhysAddr(pt * kPageSize));
    dram->backend().write64(HostPhysAddr(pt * kPageSize),
                            pte | (1ull << 40)); // frame way out
    EXPECT_EQ(machine.read64(hp).error(), base::ErrorCode::Fault);
    const auto words = machine.readPageWords(hp);
    EXPECT_TRUE(words[0].fault);
}

TEST_F(VmTest, VoluntaryReleaseShrinksAddressSpace)
{
    VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
    machine.memDriver().setSuppressAutoPlug(true);
    const GuestPhysAddr victim = kVirtioMemRegionStart
        + 10 * kHugePageSize;
    ASSERT_TRUE(machine.memDriver().unplugSpecific(victim).ok());
    EXPECT_FALSE(machine.read64(victim).ok());
    EXPECT_EQ(machine.memorySize(), 16_MiB + 128_MiB - kHugePageSize);
    EXPECT_EQ(machine.hugePageGpas().size(), (16 + 128) / 2u - 1);
}

TEST_F(VmTest, TeardownLeavesNoAllocatedFrames)
{
    buddy->drainPcp();
    const uint64_t free_before = buddy->freePages();
    {
        VirtualMachine machine(*dram, *buddy, smallConfig(), 1);
        // Exercise everything that allocates host memory.
        (void)machine.execute(kVirtioMemRegionStart);
        // hh-lint: allow(status-discard) -- only the allocation side effect matters for the leak check
        (void)machine.iommuMap(0, IoVirtAddr(4_GiB), GuestPhysAddr(0));
        machine.memDriver().setSuppressAutoPlug(true);
        (void)machine.memDriver().unplugSpecific(
            kVirtioMemRegionStart + 2 * kHugePageSize);
        EXPECT_LT(buddy->freePages(), free_before);
    }
    buddy->drainPcp();
    EXPECT_EQ(buddy->freePages(), free_before);
}

} // namespace
} // namespace hh::vm
