/**
 * @file
 * Tests of the memory profiler (Section 4.1): aggressor-pair
 * construction from THP-visible bits, ground-truth agreement of the
 * discovered bits, classification quality, early exit, and the
 * brute-force fallback.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "attack/profiler.h"
#include "sys/host_system.h"

namespace hh::attack {
namespace {

class ProfilerTest : public ::testing::Test
{
  protected:
    void
    boot(uint64_t seed = 42, double density_scale = 1.0)
    {
        sys::SystemConfig cfg =
            sys::SystemConfig::s1(seed).withMemory(1_GiB);
        cfg.dram.fault.weakCellsPerRow *= density_scale;
        machine.reset(); // references the old host; drop it first
        host = std::make_unique<sys::HostSystem>(cfg);
        vm::VmConfig vm_cfg;
        vm_cfg.bootMemBytes = 64_MiB;
        vm_cfg.virtioMemRegionSize = 1_GiB;
        vm_cfg.virtioMemPlugged = 640_MiB;
        machine = host->createVm(vm_cfg);
    }

    std::vector<GuestPhysAddr>
    region() const
    {
        std::vector<GuestPhysAddr> out;
        for (GuestPhysAddr hp : machine->hugePageGpas()) {
            if (machine->memDevice_().contains(hp))
                out.push_back(hp);
        }
        return out;
    }

    std::unique_ptr<sys::HostSystem> host;
    std::unique_ptr<vm::VirtualMachine> machine;
};

TEST_F(ProfilerTest, AggressorPairsShareABank)
{
    boot();
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), ProfilerConfig{});
    const GuestPhysAddr hp = region().front();
    const auto candidates = profiler.aggressorCandidates(hp, false);
    // One pair per bank label.
    EXPECT_EQ(candidates.size(), host->dram().mapping().bankCount());

    const dram::AddressMapping &map = host->dram().mapping();
    std::set<dram::BankId> banks;
    for (const auto &pair : candidates) {
        ASSERT_EQ(pair.size(), 2u);
        // Translate both: the pair must land in the same REAL bank,
        // in adjacent rows.
        auto a = machine->debugTranslate(pair[0]);
        auto b = machine->debugTranslate(pair[1]);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_EQ(map.bankOf(*a), map.bankOf(*b));
        EXPECT_EQ(map.rowOf(*a) + 1, map.rowOf(*b));
        banks.insert(map.bankOf(*a));
    }
    // All banks are covered.
    EXPECT_EQ(banks.size(), map.bankCount());
}

TEST_F(ProfilerTest, TopBorderPairsUseLastRows)
{
    boot();
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), ProfilerConfig{});
    const GuestPhysAddr hp = region().front();
    const dram::AddressMapping &map = host->dram().mapping();
    for (const auto &pair : profiler.aggressorCandidates(hp, true)) {
        auto a = machine->debugTranslate(pair[0]);
        ASSERT_TRUE(a.ok());
        // Local row 6 of 8.
        EXPECT_EQ((a->hugePageOffset()) / map.rowStripeBytes(), 6u);
    }
}

TEST_F(ProfilerTest, BruteForceEnumeratesPagePairs)
{
    boot();
    ProfilerConfig cfg;
    cfg.bankFunctionKnown = false;
    cfg.bruteForcePairCap = 256;
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), cfg);
    const auto candidates =
        profiler.aggressorCandidates(region().front(), false);
    EXPECT_EQ(candidates.size(), 256u);
}

TEST_F(ProfilerTest, FindsGroundTruthBits)
{
    boot(42, /*density_scale=*/4.0);
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), ProfilerConfig{});
    const ProfileResult result = profiler.profile(region());
    ASSERT_GT(result.totalFlips(), 10u);

    const dram::FaultModel &truth = host->dram().faultModel();
    const dram::AddressMapping &map = host->dram().mapping();
    for (const VulnerableBit &bit : result.bits) {
        auto hpa = machine->debugTranslate(bit.wordGpa);
        ASSERT_TRUE(hpa.ok());
        bool matched = false;
        for (const dram::WeakCell &cell : truth.weakCellsInRow(
                 map.bankOf(*hpa), map.rowOf(*hpa))) {
            if (cell.bitInWord() == bit.bitInWord
                && cell.direction == bit.direction) {
                matched = true;
            }
        }
        EXPECT_TRUE(matched) << "profiled bit has no ground truth";
        // Bookkeeping invariants.
        EXPECT_EQ(bit.victimHugePage.value(),
                  bit.wordGpa.hugePageBase().value());
        EXPECT_EQ(bit.exploitable,
                  bit.bitInWord >= 20 && bit.bitInWord <= 30)
            << "1 GiB host: exploitable range is 20..30";
        EXPECT_EQ(bit.releasable,
                  bit.victimHugePage != bit.aggressorHugePage);
        EXPECT_EQ(bit.aggressors.size(), 2u);
    }

    // Both directions appear, and time passed.
    EXPECT_GT(result.countOneToZero(), 0u);
    EXPECT_GT(result.countZeroToOne(), 0u);
    EXPECT_GT(result.elapsed, base::kMinute);
    EXPECT_GT(result.combinations, 1'000u);
}

TEST_F(ProfilerTest, RepairsPatternAfterDetection)
{
    boot(42, 4.0);
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), ProfilerConfig{});
    const ProfileResult result = profiler.profile(region());
    ASSERT_GT(result.totalFlips(), 0u);
    // After profiling the region was last filled with zeros (second
    // pass); every discovered word was repaired to the pass pattern,
    // so re-reading gives the pattern unless re-flipped... stability
    // retests end by restoring the fill, so the word reads clean.
    for (const VulnerableBit &bit : result.bits) {
        if (bit.direction == dram::FlipDirection::ZeroToOne) {
            auto value = machine->read64(bit.wordGpa);
            ASSERT_TRUE(value.ok());
            EXPECT_EQ(*value, 0u);
        }
    }
}

TEST_F(ProfilerTest, StabilityClassificationMatchesTruth)
{
    boot(42, 4.0);
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), ProfilerConfig{});
    const ProfileResult result = profiler.profile(region());
    const dram::FaultModel &truth = host->dram().faultModel();
    const dram::AddressMapping &map = host->dram().mapping();

    unsigned classified_stable_truth_stable = 0;
    unsigned classified_stable = 0;
    for (const VulnerableBit &bit : result.bits) {
        if (!bit.stable)
            continue;
        ++classified_stable;
        auto hpa = machine->debugTranslate(bit.wordGpa);
        for (const dram::WeakCell &cell : truth.weakCellsInRow(
                 map.bankOf(*hpa), map.rowOf(*hpa))) {
            if (cell.bitInWord() == bit.bitInWord && cell.stable())
                ++classified_stable_truth_stable;
        }
    }
    ASSERT_GT(classified_stable, 5u);
    // An unstable cell sneaks through three retests ~4 % of the time.
    EXPECT_GE(classified_stable_truth_stable,
              classified_stable * 80 / 100);
}

TEST_F(ProfilerTest, EarlyStopAfterEnoughUsableBits)
{
    boot(42, 4.0);
    ProfilerConfig cfg;
    cfg.stopAfterExploitable = 2;
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), cfg);
    ProfilerConfig full_cfg;
    MemoryProfiler full(*machine, host->clock(),
                        host->dram().mapping(), full_cfg);

    const ProfileResult early = profiler.profile(region());
    unsigned usable = 0;
    for (const VulnerableBit &bit : early.bits)
        usable += bit.exploitable && bit.releasable;
    EXPECT_GE(usable, 2u);

    const ProfileResult complete = full.profile(region());
    EXPECT_LT(early.combinations, complete.combinations);
    EXPECT_LT(early.elapsed, complete.elapsed);
}

TEST_F(ProfilerTest, ExploitHiBitDerivedFromHostMemory)
{
    boot();
    ProfilerConfig cfg; // exploitHiBit = 0 -> auto
    MemoryProfiler profiler(*machine, host->clock(),
                            host->dram().mapping(), cfg);
    // 1 GiB host: ceil(log2) - 1 = 29. Checked indirectly through
    // FindsGroundTruthBits; here just ensure construction works and
    // profiles run.
    SUCCEED();
}

TEST_F(ProfilerTest, DeterministicAcrossRuns)
{
    boot(1234, 4.0);
    ProfilerConfig cfg;
    MemoryProfiler a(*machine, host->clock(), host->dram().mapping(),
                     cfg);
    const ProfileResult first = a.profile(region());

    // Reboot an identical world and profile again.
    boot(1234, 4.0);
    MemoryProfiler b(*machine, host->clock(), host->dram().mapping(),
                     cfg);
    const ProfileResult second = b.profile(region());

    EXPECT_EQ(first.totalFlips(), second.totalFlips());
    EXPECT_EQ(first.countStable(), second.countStable());
    EXPECT_EQ(first.countExploitable(), second.countExploitable());
}

} // namespace
} // namespace hh::attack
