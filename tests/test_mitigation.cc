/**
 * @file
 * Tests of the mitigation layer: the Defense factory/stack, the
 * structural isolation the domain defenses install, and the
 * attacks x defenses matrix properties -- monotonicity (a defense
 * never helps the attacker), separation, the CATTmew re-enablement
 * result, and the threads x shards identity of the whole sweep.
 *
 * The campaign cells run at the calibrated small-scale configuration
 * (1 GiB host, x8 flip density, 64 MiB boot + 640 MiB plugged VM,
 * 2,500 exhaustion mappings -- the same shape the orchestrator tests
 * and bench_mitigation_matrix's --quick mode use). Full escalation is
 * ~1e-3 per attempt even undefended, so the properties compare the
 * graded progress signals (released sub-blocks, flipped mappings,
 * EPT-entry-shaped candidates), which are exact, deterministic
 * counters at this scale.
 */

#include <gtest/gtest.h>

#include "mitigate/matrix.h"

namespace hh::mitigate {
namespace {

/**
 * Seeds chosen by sweeping bench_mitigation_matrix: the flip signal
 * is geometry-sensitive (roughly one seed in four at this scale), so
 * each property pins a seed where its baseline signal is nonzero.
 * kFlipSeed: undefended flips > 0. kHoleSeed: catt-hole flips > 0
 * (the defended layout shifts placement, so it needs its own seed).
 */
constexpr uint64_t kFlipSeed = 2;
constexpr uint64_t kHoleSeed = 3;
constexpr uint64_t kTrials = 48;

sys::SystemConfig
hostConfig(uint64_t seed)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed)
        .withMemory(1_GiB);
    cfg.dram.fault.weakCellsPerRow *= 8.0;
    return cfg;
}

MatrixSpec
calibratedSpec(uint64_t seed)
{
    MatrixSpec spec;
    spec.hosts = {hostConfig(seed)};
    spec.vm.bootMemBytes = 64_MiB;
    spec.vm.virtioMemRegionSize = 1_GiB;
    spec.vm.virtioMemPlugged = 640_MiB;
    spec.attack.steering.exhaustMappings = 2'500;
    spec.attack.profiler.stopAfterExploitable = 0;
    spec.trials = kTrials;
    spec.threads = 4;
    return spec;
}

TEST(DefenseFactory, NamesAndStacks)
{
    EXPECT_EQ(makeDefense("quarantine")->name(),
              std::string("quarantine"));
    EXPECT_EQ(makeDefense("catt-hole")->name(),
              std::string("catt-hole"));
    EXPECT_EQ(makeDefense("nope"), nullptr);
    EXPECT_EQ(makeDefense("none"), nullptr);

    auto none = makeDefenseSet("none");
    ASSERT_TRUE(none.ok());
    EXPECT_TRUE(none->empty());
    EXPECT_EQ(none->label(), "none");

    auto stacked = makeDefenseSet("siloz+trr-ecc");
    ASSERT_TRUE(stacked.ok());
    EXPECT_EQ(stacked->size(), 2u);
    EXPECT_EQ(stacked->label(), "siloz+trr-ecc");

    EXPECT_FALSE(makeDefenseSet("siloz+bogus").ok());
}

TEST(DefenseFactory, StacksChainConfigTransforms)
{
    auto set = makeDefenseSet("catt+trr-ecc");
    ASSERT_TRUE(set.ok());
    sys::SystemConfig cfg = hostConfig(1);
    set->applyHostConfig(cfg);
    // CATT installed its two partitions and the TRR sweep retuned the
    // DRAM mitigations -- both transforms visible on one config.
    EXPECT_EQ(cfg.domains.domains.size(), 2u);
    EXPECT_TRUE(cfg.dram.trr.enabled);
    EXPECT_TRUE(cfg.dram.ecc.enabled);
}

/** pfn -> owning domain, via the public census only. */
mm::DomainInfo
domainAt(const mm::BuddyAllocator &buddy, Pfn pfn)
{
    for (size_t i = 0; i < buddy.domainCount(); ++i) {
        const mm::DomainInfo dom = buddy.domainInfo(i);
        if (pfn >= dom.start && pfn < dom.end)
            return dom;
    }
    ADD_FAILURE() << "pfn " << pfn << " in no domain";
    return {};
}

// Siloz separation, checked structurally against the frame database
// rather than through campaign outcomes: after a defended world has
// spawned and profiled a VM, every EPT page sits in the dedicated Ept
// domain, every guest frame in a Guest domain, and the guard bands
// between them hold only sacrificial guard rows.
TEST(SilozSeparation, EptAndGuestFramesInDisjointDomains)
{
    auto set = makeDefenseSet("siloz");
    ASSERT_TRUE(set.ok());

    sys::SystemConfig host_cfg = hostConfig(kFlipSeed);
    set->applyHostConfig(host_cfg);
    sys::HostSystem host(host_cfg);
    ASSERT_TRUE(set->configure(host).ok());

    MatrixSpec spec = calibratedSpec(kFlipSeed);
    vm::VmConfig vm_cfg = spec.vm;
    set->applyVmConfig(vm_cfg);
    attack::HyperHammerAttack campaign(host, vm_cfg,
                                       host.dram().mapping(),
                                       spec.attack);
    campaign.attachDefenses(&*set);
    (void)campaign.profilePhase();

    const mm::BuddyAllocator &buddy = host.buddy();
    uint64_t ept_frames = 0;
    uint64_t guest_frames = 0;
    uint64_t guard_frames = 0;
    for (Pfn pfn = 0; pfn < buddy.totalPages(); ++pfn) {
        const mm::PageFrame &frame = buddy.frame(pfn);
        const mm::DomainInfo dom = domainAt(buddy, pfn);
        if (frame.use == mm::PageUse::EptPage
            || frame.use == mm::PageUse::IoptPage) {
            ++ept_frames;
            EXPECT_EQ(dom.cls, mm::DomainClass::Ept)
                << "EPT/IOPT frame " << pfn << " outside the EPT "
                << "domain (class " << domainClassName(dom.cls)
                << ")";
        } else if (frame.use == mm::PageUse::GuestMemory) {
            ++guest_frames;
            EXPECT_EQ(dom.cls, mm::DomainClass::Guest)
                << "guest frame " << pfn << " outside a guest domain";
        }
        if (pfn >= dom.usableEnd) {
            ++guard_frames;
            EXPECT_EQ(frame.use, mm::PageUse::GuardRow);
            EXPECT_FALSE(frame.free);
        }
    }
    // Non-vacuity: the spawned VM really put both kinds of frame on
    // the host, and the layout really reserved guard bands.
    EXPECT_GT(ept_frames, 0u);
    EXPECT_GT(guest_frames, 0u);
    EXPECT_GT(guard_frames, 0u);
}

// Per-seed monotonicity over the graded progress signals: a defense
// may be useless, but it must never help the attacker. At the
// calibrated flip seed the baseline signal is nonzero, so the
// defense-specific zeroes below are real suppression, not 0 <= 0.
TEST(MitigationMatrix, DefensesNeverHelpTheAttacker)
{
    MatrixSpec spec = calibratedSpec(kFlipSeed);
    spec.defenses = {"none", "quarantine", "siloz", "catt",
                     "trr-ecc"};
    auto matrix = runMatrix(spec);
    ASSERT_TRUE(matrix.ok());
    ASSERT_EQ(matrix->cells.size(), spec.defenses.size());

    const MatrixCell *base = matrix->find("S1", "none", "pairwise");
    ASSERT_NE(base, nullptr);
    EXPECT_GT(base->profiledBits, 0u);
    EXPECT_GT(base->releasedSubBlocks, 0u);
    EXPECT_GT(base->flippedMappings, 0u);
    EXPECT_GT(base->epteCandidates, 0u);

    for (const MatrixCell &cell : matrix->cells) {
        if (cell.defense == "none")
            continue;
        EXPECT_LE(cell.releasedSubBlocks, base->releasedSubBlocks)
            << cell.defense;
        EXPECT_LE(cell.flippedMappings, base->flippedMappings)
            << cell.defense;
        EXPECT_LE(cell.epteCandidates, base->epteCandidates)
            << cell.defense;
        EXPECT_LE(cell.success, base->success) << cell.defense;
    }

    // Each defense breaks its own link of the chain.
    const MatrixCell *quarantine =
        matrix->find("S1", "quarantine", "pairwise");
    ASSERT_NE(quarantine, nullptr);
    EXPECT_EQ(quarantine->releasedSubBlocks, 0u);

    const MatrixCell *siloz = matrix->find("S1", "siloz", "pairwise");
    ASSERT_NE(siloz, nullptr);
    EXPECT_EQ(siloz->flippedMappings, 0u);
    EXPECT_GT(siloz->overhead.reservedBytes, 0u);

    const MatrixCell *catt = matrix->find("S1", "catt", "pairwise");
    ASSERT_NE(catt, nullptr);
    EXPECT_EQ(catt->flippedMappings, 0u);

    const MatrixCell *trr = matrix->find("S1", "trr-ecc", "pairwise");
    ASSERT_NE(trr, nullptr);
    EXPECT_EQ(trr->profiledBits, 0u);
    EXPECT_GT(trr->overhead.slowdownFactor, 1.0);
}

// The CATTmew result as a property: CATT's partitioning pins the flip
// signal at zero, and re-opening the double-ownership hole brings it
// back -- same host seed, same trials, one flag apart.
TEST(MitigationMatrix, CattHoleReenablesTheAttack)
{
    MatrixSpec spec = calibratedSpec(kHoleSeed);
    spec.defenses = {"catt", "catt-hole"};
    auto matrix = runMatrix(spec);
    ASSERT_TRUE(matrix.ok());

    const MatrixCell *catt = matrix->find("S1", "catt", "pairwise");
    const MatrixCell *hole =
        matrix->find("S1", "catt-hole", "pairwise");
    ASSERT_NE(catt, nullptr);
    ASSERT_NE(hole, nullptr);
    EXPECT_EQ(catt->flippedMappings, 0u);
    EXPECT_GT(hole->flippedMappings, 0u);
    EXPECT_GT(hole->epteCandidates, 0u);
}

// The matrix inherits the sharded trial engine's identity guarantee:
// the same spec produces bitwise-identical cells -- one fingerprint --
// at any threads x shards combination.
TEST(MitigationMatrix, FingerprintInvariantAcrossThreadsAndShards)
{
    MatrixSpec spec = calibratedSpec(kFlipSeed);
    spec.trials = 6;
    spec.defenses = {"none", "quarantine"};

    spec.threads = 1;
    spec.shards = 1;
    auto serial = runMatrix(spec);
    ASSERT_TRUE(serial.ok());

    spec.threads = 3;
    spec.shards = 2;
    auto threaded = runMatrix(spec);
    ASSERT_TRUE(threaded.ok());

    spec.threads = 2;
    spec.shards = 3;
    auto sharded = runMatrix(spec);
    ASSERT_TRUE(sharded.ok());

    EXPECT_EQ(serial->fingerprint(), threaded->fingerprint());
    EXPECT_EQ(serial->fingerprint(), sharded->fingerprint());
}

TEST(MitigationMatrix, RejectsUnknownAxes)
{
    MatrixSpec spec = calibratedSpec(1);
    spec.defenses = {"bogus"};
    EXPECT_FALSE(runMatrix(spec).ok());

    spec.defenses = {"none"};
    spec.attacks = {"sideways"};
    EXPECT_FALSE(runMatrix(spec).ok());

    spec.attacks = {"pairwise"};
    spec.trials = 0;
    EXPECT_FALSE(runMatrix(spec).ok());
}

} // namespace
} // namespace hh::mitigate
