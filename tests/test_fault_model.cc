/**
 * @file
 * Tests of the Rowhammer fault model: determinism, density and
 * property distributions, and agreement between the cheap rowIsWeak()
 * gate and the full generator.
 */

#include <gtest/gtest.h>

#include "dram/fault_model.h"

namespace hh::dram {
namespace {

FaultModelConfig
denseConfig()
{
    FaultModelConfig cfg;
    cfg.weakCellsPerRow = 0.01;
    cfg.stableFraction = 0.4;
    cfg.oneToZeroFraction = 0.6;
    cfg.minThreshold = 50'000;
    cfg.maxThreshold = 150'000;
    return cfg;
}

TEST(FaultModel, Deterministic)
{
    const FaultModel a(denseConfig(), 42, 8192);
    const FaultModel b(denseConfig(), 42, 8192);
    for (RowId row = 0; row < 2'000; ++row) {
        const auto cells_a = a.weakCellsInRow(3, row);
        const auto cells_b = b.weakCellsInRow(3, row);
        ASSERT_EQ(cells_a.size(), cells_b.size());
        for (size_t i = 0; i < cells_a.size(); ++i) {
            EXPECT_EQ(cells_a[i].byteInRow, cells_b[i].byteInRow);
            EXPECT_EQ(cells_a[i].threshold, cells_b[i].threshold);
        }
    }
}

TEST(FaultModel, DifferentSeedsDiffer)
{
    const FaultModel a(denseConfig(), 1, 8192);
    const FaultModel b(denseConfig(), 2, 8192);
    unsigned same = 0;
    unsigned total = 0;
    for (RowId row = 0; row < 20'000; ++row) {
        const bool wa = a.rowIsWeak(0, row);
        const bool wb = b.rowIsWeak(0, row);
        total += wa || wb;
        same += wa && wb;
    }
    EXPECT_GT(total, 0u);
    EXPECT_LT(same, total / 4 + 2);
}

TEST(FaultModel, RowIsWeakAgreesWithGenerator)
{
    const FaultModel model(denseConfig(), 7, 8192);
    for (BankId bank = 0; bank < 8; ++bank) {
        for (RowId row = 0; row < 5'000; ++row) {
            EXPECT_EQ(model.rowIsWeak(bank, row),
                      !model.weakCellsInRow(bank, row).empty());
        }
    }
}

TEST(FaultModel, DensityMatchesConfig)
{
    const FaultModel model(denseConfig(), 11, 8192);
    uint64_t cells = 0;
    const uint64_t rows = 100'000;
    for (RowId row = 0; row < rows; ++row)
        cells += model.weakCellsInRow(1, row).size();
    const double rate = static_cast<double>(cells)
        / static_cast<double>(rows);
    // lambda + lambda^2/2 within 20 %.
    EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(FaultModel, CellPropertiesInBounds)
{
    const FaultModelConfig cfg = denseConfig();
    const FaultModel model(cfg, 13, 8192);
    unsigned one_to_zero = 0;
    unsigned stable = 0;
    unsigned total = 0;
    for (RowId row = 0; row < 300'000 && total < 2'000; ++row) {
        for (const WeakCell &cell : model.weakCellsInRow(2, row)) {
            ++total;
            EXPECT_LT(cell.byteInRow, 8192u);
            EXPECT_LT(cell.bitInByte, 8u);
            EXPECT_GE(cell.threshold, cfg.minThreshold);
            EXPECT_LE(cell.threshold, cfg.maxThreshold);
            EXPECT_LT(cell.bitInWord(), 64u);
            EXPECT_EQ(cell.bitInWord(),
                      (cell.byteInRow % 8) * 8 + cell.bitInByte);
            one_to_zero +=
                cell.direction == FlipDirection::OneToZero;
            stable += cell.stable();
            if (!cell.stable()) {
                EXPECT_DOUBLE_EQ(cell.flipProbability,
                                 cfg.unstableFlipProbability);
            }
        }
    }
    ASSERT_GT(total, 500u);
    const double d = static_cast<double>(total);
    EXPECT_NEAR(one_to_zero / d, cfg.oneToZeroFraction, 0.06);
    EXPECT_NEAR(stable / d, cfg.stableFraction, 0.06);
}

TEST(FaultModel, BitPositionsRoughlyUniform)
{
    // Regression for the structured-seed bug: bit positions within the
    // word must cover the whole 0..63 range, in particular the
    // exploitable 21..33 window.
    const FaultModel model(denseConfig(), 17, 8192);
    unsigned in_window = 0;
    unsigned total = 0;
    for (RowId row = 0; row < 200'000 && total < 1'500; ++row) {
        for (const WeakCell &cell : model.weakCellsInRow(5, row)) {
            ++total;
            const unsigned bit = cell.bitInWord();
            in_window += bit >= 21 && bit <= 33;
        }
    }
    ASSERT_GT(total, 500u);
    // 13/64 = 20.3 % expected.
    EXPECT_NEAR(static_cast<double>(in_window) / total, 0.203, 0.05);
}

TEST(FaultModel, ZeroDensityHasNoCells)
{
    FaultModelConfig cfg = denseConfig();
    cfg.weakCellsPerRow = 0.0;
    const FaultModel model(cfg, 3, 8192);
    for (RowId row = 0; row < 10'000; ++row)
        EXPECT_FALSE(model.rowIsWeak(0, row));
}

TEST(FaultModel, BanksIndependent)
{
    const FaultModel model(denseConfig(), 19, 8192);
    // Weak rows in bank 0 should not predict bank 1.
    unsigned both = 0;
    unsigned either = 0;
    for (RowId row = 0; row < 50'000; ++row) {
        const bool a = model.rowIsWeak(0, row);
        const bool b = model.rowIsWeak(1, row);
        both += a && b;
        either += a || b;
    }
    EXPECT_GT(either, 500u);
    EXPECT_LT(both, either / 10);
}

} // namespace
} // namespace hh::dram
