/**
 * @file
 * Tests of the EPT entry format and the attacker's format heuristic.
 */

#include <gtest/gtest.h>

#include "kvm/ept.h"

namespace hh::kvm {
namespace {

TEST(EptEntry, TableEntry)
{
    const EptEntry entry = EptEntry::table(0x1234);
    EXPECT_TRUE(entry.present());
    EXPECT_TRUE(entry.readable());
    EXPECT_TRUE(entry.writable());
    EXPECT_TRUE(entry.executable());
    EXPECT_FALSE(entry.largePage());
    EXPECT_EQ(entry.frame(), 0x1234u);
}

TEST(EptEntry, Leaf4k)
{
    const EptEntry nx = EptEntry::leaf4k(0xabcd, false);
    EXPECT_TRUE(nx.present());
    EXPECT_FALSE(nx.executable());
    EXPECT_EQ(nx.frame(), 0xabcdu);
    const EptEntry exec = EptEntry::leaf4k(0xabcd, true);
    EXPECT_TRUE(exec.executable());
}

TEST(EptEntry, Leaf2m)
{
    const EptEntry entry = EptEntry::leaf2m(0x200, false);
    EXPECT_TRUE(entry.largePage());
    EXPECT_TRUE(entry.present());
    EXPECT_FALSE(entry.executable());
    EXPECT_EQ(entry.frame(), 0x200u);
}

TEST(EptEntry, WithExecTogglesOnlyBit2)
{
    const EptEntry entry = EptEntry::leaf4k(0x77, false);
    const EptEntry exec = entry.withExec(true);
    EXPECT_TRUE(exec.executable());
    EXPECT_EQ(exec.raw() & ~uint64_t{kEptExec},
              entry.raw() & ~uint64_t{kEptExec});
    EXPECT_EQ(exec.withExec(false), entry);
}

TEST(EptEntry, NotPresentWhenPermissionsClear)
{
    EXPECT_FALSE(EptEntry(0).present());
    // Frame bits alone do not make an entry present.
    EXPECT_FALSE(EptEntry(0x1234ull << 12).present());
}

TEST(EptIndex, LevelExtraction)
{
    // GPA = PML4 index 1, PDPT index 2, PD index 3, PT index 4.
    const GuestPhysAddr gpa(
        (1ull << 39) | (2ull << 30) | (3ull << 21) | (4ull << 12));
    EXPECT_EQ(eptIndex(gpa, 4), 1u);
    EXPECT_EQ(eptIndex(gpa, 3), 2u);
    EXPECT_EQ(eptIndex(gpa, 2), 3u);
    EXPECT_EQ(eptIndex(gpa, 1), 4u);
}

TEST(EpteHeuristic, AcceptsZeroAndRealEntries)
{
    EXPECT_TRUE(wordLooksLikeEpte(0));
    EXPECT_TRUE(wordLooksLikeEpte(EptEntry::leaf4k(0x5000, true).raw()));
    EXPECT_TRUE(wordLooksLikeEpte(EptEntry::table(0x9999).raw()));
}

TEST(EpteHeuristic, RejectsNonEntries)
{
    // Low bits set but no frame: small integer.
    EXPECT_FALSE(wordLooksLikeEpte(7));
    // Frame but clear low 12 bits: page-aligned pointer, not an EPTE.
    EXPECT_FALSE(wordLooksLikeEpte(0x1234ull << 12));
}

} // namespace
} // namespace hh::kvm
