/**
 * @file
 * hh::shard unit and identity tests.
 *
 * Two halves. The synthetic half exercises planShards and the merge
 * validation matrix (uneven ranges, duplicates/overlaps, missing
 * shards, fingerprint mismatches, interrupted shards, ordering
 * independence) on hand-built ShardResults -- no worlds are
 * constructed, so these are fast. The SweepIdentityMatrix half is the
 * ISSUE 7 acceptance sweep: for 8 seeds, with and without a
 * randomized FaultPlan, a campaign split into {1, 2, 4} shards run at
 * {1, 4} threads and merged must be bitwise-identical to the
 * single-process runAttempts() result, field by field via
 * snapshot::diffAttackResults -- including a shard that is stopped
 * mid-range, resumed from its checkpoint, and then merged.
 *
 * Slow by design (the matrix runs whole campaigns); registered under
 * the tier2 label.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "shard/shard.h"
#include "snapshot/resume_identity.h"
#include "sys/host_system.h"

namespace hh {
namespace {

// ---------------------------------------------------------------- synthetic

attack::AttemptOutcome
syntheticOutcome(uint64_t trial, bool success = false)
{
    attack::AttemptOutcome outcome;
    outcome.success = success;
    outcome.bitsTargeted = static_cast<unsigned>(1 + trial % 12);
    outcome.releasedSubBlocks = trial * 3 + 1;
    outcome.demotions = trial * 5 + 2;
    outcome.changedPages = trial * 7 + 3;
    outcome.epteCandidates = trial % 4;
    outcome.duration = base::SimTime(1000 + trial * 17);
    outcome.retries = static_cast<unsigned>(trial % 3);
    outcome.backoffTime = base::SimTime(trial * 11);
    outcome.faultsFired = trial % 2;
    return outcome;
}

shard::ShardResult
syntheticShard(uint64_t fingerprint, uint64_t total, uint64_t begin,
               uint64_t end, uint64_t success_at = UINT64_MAX)
{
    shard::ShardResult shard;
    shard.manifest.campaignFingerprint = fingerprint;
    shard.manifest.totalTrials = total;
    shard.manifest.range = {begin, end};
    for (uint64_t trial = begin; trial < end; ++trial) {
        shard.outcomes.push_back(
            syntheticOutcome(trial, trial == success_at));
        if (trial == success_at)
            break; // a range stops at its own first success
    }
    return shard;
}

TEST(PlanShards, EvenSplitTilesTheCampaign)
{
    const auto ranges = shard::planShards(8, 4);
    ASSERT_EQ(ranges.size(), 4u);
    uint64_t expected = 0;
    for (const shard::ShardRange &range : ranges) {
        EXPECT_EQ(range.begin, expected);
        EXPECT_EQ(range.size(), 2u);
        expected = range.end;
    }
    EXPECT_EQ(expected, 8u);
}

TEST(PlanShards, UnevenSplitFrontLoadsTheRemainder)
{
    const auto ranges = shard::planShards(10, 4);
    ASSERT_EQ(ranges.size(), 4u);
    EXPECT_EQ(ranges[0].size(), 3u);
    EXPECT_EQ(ranges[1].size(), 3u);
    EXPECT_EQ(ranges[2].size(), 2u);
    EXPECT_EQ(ranges[3].size(), 2u);
    EXPECT_EQ(ranges[0].begin, 0u);
    EXPECT_EQ(ranges[3].end, 10u);
}

TEST(PlanShards, MoreShardsThanTrialsYieldsEmptyRanges)
{
    const auto ranges = shard::planShards(2, 5);
    ASSERT_EQ(ranges.size(), 5u);
    EXPECT_EQ(ranges[0].size(), 1u);
    EXPECT_EQ(ranges[1].size(), 1u);
    for (size_t i = 2; i < ranges.size(); ++i)
        EXPECT_TRUE(ranges[i].empty());
    EXPECT_EQ(ranges.back().end, 2u);
}

TEST(PlanShards, ZeroCountBehavesAsOne)
{
    const auto ranges = shard::planShards(6, 0);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].begin, 0u);
    EXPECT_EQ(ranges[0].end, 6u);
}

TEST(ShardArtifact, SaveLoadRoundTrips)
{
    const std::string path = ::testing::TempDir() + "shard_rt.bin";
    const shard::ShardResult shard =
        syntheticShard(0xf00d, 8, 2, 6, /*success_at=*/4);
    ASSERT_TRUE(shard::saveShard(path, shard).ok());
    const auto loaded = shard::loadShard(path);
    ASSERT_TRUE(loaded.ok()) << base::errorName(loaded.error());
    EXPECT_EQ(loaded->manifest.campaignFingerprint, 0xf00dull);
    EXPECT_EQ(loaded->manifest.totalTrials, 8u);
    EXPECT_EQ(loaded->manifest.range.begin, 2u);
    EXPECT_EQ(loaded->manifest.range.end, 6u);
    ASSERT_EQ(loaded->outcomes.size(), shard.outcomes.size());
    for (size_t i = 0; i < shard.outcomes.size(); ++i) {
        EXPECT_EQ(loaded->outcomes[i].duration,
                  shard.outcomes[i].duration);
        EXPECT_EQ(loaded->outcomes[i].success,
                  shard.outcomes[i].success);
    }
    EXPECT_TRUE(loaded->complete());
}

TEST(ShardArtifact, TruncatedFileIsRejected)
{
    const std::string path = ::testing::TempDir() + "shard_trunc.bin";
    ASSERT_TRUE(
        shard::saveShard(path, syntheticShard(1, 4, 0, 4)).ok());
    // Chop the tail off: framing (payload length + checksum) must
    // catch it.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good());
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 9u);
    bytes.resize(bytes.size() - 9);
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_FALSE(shard::loadShard(path).ok());
}

TEST(ShardArtifact, InconsistentManifestIsRejected)
{
    const std::string path = ::testing::TempDir() + "shard_incons.bin";
    shard::ShardResult shard = syntheticShard(1, 8, 2, 4);
    // More outcomes than the range holds.
    shard.outcomes.push_back(syntheticOutcome(9));
    ASSERT_TRUE(shard::saveShard(path, shard).ok());
    const auto loaded = shard::loadShard(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error(), base::ErrorCode::InvalidArgument);
}

TEST(MergeShards, NoShardsIsInvalid)
{
    const auto merged = shard::mergeShards({});
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::InvalidArgument);
}

TEST(MergeShards, FingerprintMismatchIsInvalid)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(2, 8, 4, 8));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::InvalidArgument);
}

TEST(MergeShards, CampaignSizeMismatchIsInvalid)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(1, 10, 4, 8));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::InvalidArgument);
}

TEST(MergeShards, OverlappingRangesAreRejected)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 5));
    shards.push_back(syntheticShard(1, 8, 3, 8));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::Exists);
}

TEST(MergeShards, DuplicateShardsAreRejected)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(1, 8, 4, 8));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::Exists);
}

TEST(MergeShards, CoverageGapIsMissingShard)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 3));
    shards.push_back(syntheticShard(1, 8, 5, 8));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::NotFound);
}

TEST(MergeShards, MissingTailShardIsDetected)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::NotFound);
}

TEST(MergeShards, InterruptedShardIsBusy)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shard::ShardResult cut = syntheticShard(1, 8, 4, 8);
    cut.outcomes.resize(2); // stopped mid-range, no success
    EXPECT_FALSE(cut.complete());
    shards.push_back(std::move(cut));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::Busy);
}

TEST(MergeShards, SuccessTerminatedShardMergesAndTruncates)
{
    // Shard [0, 4) succeeds at trial 2 and legally stops there; the
    // later shard ran to completion (its process cannot know). The
    // merged campaign must stop at trial 2, like a sequential run.
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4, /*success_at=*/2));
    shards.push_back(syntheticShard(1, 8, 4, 8));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_TRUE(merged.ok()) << base::errorName(merged.error());
    EXPECT_TRUE(merged->success);
    EXPECT_EQ(merged->attempts, 3u);
    EXPECT_TRUE(merged->outcomes.back().success);
    EXPECT_TRUE(merged->status.ok());
}

TEST(MergeShards, EmptyRangesAreAccepted)
{
    // planShards(2, 5): three of the five shards are empty.
    std::vector<shard::ShardResult> shards;
    for (const shard::ShardRange &range : shard::planShards(2, 5))
        shards.push_back(
            syntheticShard(1, 2, range.begin, range.end));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_TRUE(merged.ok()) << base::errorName(merged.error());
    EXPECT_EQ(merged->attempts, 2u);
}

TEST(MergeShards, ArrivalOrderIsIrrelevant)
{
    const auto build = [] {
        std::vector<shard::ShardResult> shards;
        shards.push_back(syntheticShard(7, 10, 0, 3));
        shards.push_back(syntheticShard(7, 10, 3, 6));
        shards.push_back(syntheticShard(7, 10, 6, 8));
        shards.push_back(syntheticShard(7, 10, 8, 10));
        return shards;
    };
    auto sorted = build();
    const auto reference = shard::mergeShards(std::move(sorted));
    ASSERT_TRUE(reference.ok());

    // Every rotation and the full reversal must merge identically.
    for (size_t rot = 1; rot < 4; ++rot) {
        auto rotated = build();
        std::rotate(rotated.begin(), rotated.begin() + rot,
                    rotated.end());
        const auto merged = shard::mergeShards(std::move(rotated));
        ASSERT_TRUE(merged.ok());
        EXPECT_TRUE(snapshot::diffAttackResults(*reference, *merged)
                        .empty())
            << "rotation " << rot;
    }
    auto reversed = build();
    std::reverse(reversed.begin(), reversed.end());
    const auto merged = shard::mergeShards(std::move(reversed));
    ASSERT_TRUE(merged.ok());
    EXPECT_TRUE(
        snapshot::diffAttackResults(*reference, *merged).empty());
}

// ----------------------------------------------------------- partial merge

shard::MergePolicy
partialPolicy()
{
    shard::MergePolicy policy;
    policy.allowPartial = true;
    return policy;
}

TEST(PartialMerge, CoverageGapBecomesMissingRange)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 3));
    shards.push_back(syntheticShard(1, 8, 5, 8));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    EXPECT_TRUE(report->partial());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 3u);
    EXPECT_EQ(report->missing[0].end, 5u);
    EXPECT_FALSE(report->exact); // no success before the hole
    EXPECT_EQ(report->result.attempts, 6u);
    EXPECT_EQ(report->campaignFingerprint, 1u);
    EXPECT_EQ(report->totalTrials, 8u);
}

TEST(PartialMerge, TailHoleIsReported)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 4u);
    EXPECT_EQ(report->missing[0].end, 8u);
}

TEST(PartialMerge, NonTerminalShardBecomesItsWholeRangeAsHole)
{
    // An abandoned worker's partial artifact contributes nothing: its
    // WHOLE range is a hole, so a later heal recomputes it from the
    // checkpoint and a re-merge cannot double-count its prefix.
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shard::ShardResult cut = syntheticShard(1, 8, 4, 8);
    cut.outcomes.resize(2);
    cut.terminal = false;
    shards.push_back(std::move(cut));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 4u);
    EXPECT_EQ(report->missing[0].end, 8u);
    EXPECT_EQ(report->result.attempts, 4u);
}

TEST(PartialMerge, NonTerminalCompleteShardIsStillAHole)
{
    // terminal=false with a full outcome vector (killed between the
    // last trial and the final save): the flag alone decides.
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shard::ShardResult cut = syntheticShard(1, 8, 4, 8);
    cut.terminal = false;
    shards.push_back(std::move(cut));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 4u);
}

TEST(PartialMerge, NonTerminalShardIsBusyInStrictMode)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shard::ShardResult cut = syntheticShard(1, 8, 4, 8);
    cut.terminal = false;
    shards.push_back(std::move(cut));
    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error(), base::ErrorCode::Busy);
}

TEST(PartialMerge, AdjacentHolesCoalesce)
{
    // A gap [2, 4) flows straight into a non-terminal shard's range
    // [4, 6): one hole [2, 6), not two.
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 2));
    shard::ShardResult cut = syntheticShard(1, 8, 4, 6);
    cut.terminal = false;
    shards.push_back(std::move(cut));
    shards.push_back(syntheticShard(1, 8, 6, 8));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 2u);
    EXPECT_EQ(report->missing[0].end, 6u);
}

TEST(PartialMerge, ExactWhenSuccessPrecedesTheFirstHole)
{
    // The campaign succeeded at trial 2, so the sequential run never
    // reaches the hole at [4, 8): the degraded fold IS the canonical
    // result, and must equal the strict merge of a tiling set.
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4, /*success_at=*/2));
    auto degraded =
        shard::mergeShards({shards[0]}, partialPolicy());
    ASSERT_TRUE(degraded.ok()) << base::errorName(degraded.error());
    EXPECT_TRUE(degraded->partial());
    EXPECT_TRUE(degraded->exact);

    shards.push_back(syntheticShard(1, 8, 4, 8));
    const auto full = shard::mergeShards(std::move(shards));
    ASSERT_TRUE(full.ok());
    EXPECT_TRUE(snapshot::diffAttackResults(degraded->result, *full)
                    .empty());
}

TEST(PartialMerge, NotExactWhenSuccessFollowsTheFirstHole)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 2));
    shards.push_back(syntheticShard(1, 8, 4, 8, /*success_at=*/5));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 2u);
    // A hole precedes the success: the real campaign might have
    // succeeded inside [2, 4) first, so this fold is not canonical.
    EXPECT_FALSE(report->exact);
}

TEST(PartialMerge, FullTilingIsExactAndNotPartial)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(1, 8, 4, 8));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    EXPECT_FALSE(report->partial());
    EXPECT_TRUE(report->exact);
    EXPECT_TRUE(report->missing.empty());
}

TEST(PartialMerge, DuplicatesAreStillRejected)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(1, 8, 0, 4));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error(), base::ErrorCode::Exists);
}

TEST(PartialMerge, OverlapsAreStillRejected)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 5));
    shards.push_back(syntheticShard(1, 8, 3, 8));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error(), base::ErrorCode::Exists);
}

TEST(PartialMerge, ForeignFingerprintIsStillRejected)
{
    std::vector<shard::ShardResult> shards;
    shards.push_back(syntheticShard(1, 8, 0, 4));
    shards.push_back(syntheticShard(2, 8, 4, 8));
    const auto report =
        shard::mergeShards(std::move(shards), partialPolicy());
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error(), base::ErrorCode::InvalidArgument);
}

TEST(PartialMerge, EmptyInputIsStillInvalid)
{
    const auto report =
        shard::mergeShards({}, partialPolicy());
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error(), base::ErrorCode::InvalidArgument);
}

TEST(ShardArtifact, TerminalFlagRoundTrips)
{
    const std::string path = ::testing::TempDir() + "shard_term.bin";
    shard::ShardResult cut = syntheticShard(1, 8, 4, 8);
    cut.outcomes.resize(2);
    cut.terminal = false;
    ASSERT_TRUE(shard::saveShard(path, cut).ok());
    const auto loaded = shard::loadShard(path);
    ASSERT_TRUE(loaded.ok()) << base::errorName(loaded.error());
    EXPECT_FALSE(loaded->terminal);
    EXPECT_FALSE(loaded->complete());
}

// ------------------------------------------------------- identity matrix

sys::SystemConfig
hostConfig(uint64_t seed, bool faulted)
{
    sys::SystemConfig cfg =
        sys::SystemConfig::s1(seed).withMemory(1_GiB);
    // Milder than the resume-identity matrix's 0.5: at 0.5 most
    // seeds lose profiling to injected faults and the cell turns
    // vacuous (no bits, nothing to shard). 0.35 keeps faults firing
    // during trials while most seeds still profile.
    if (faulted)
        cfg = cfg.withFaults(
            fault::FaultPlan::randomized(seed * 31 + 7, 0.35));
    // Denser weak cells so profiling finds bits in a 1 GiB host.
    cfg.dram.fault.weakCellsPerRow *= 4.0;
    return cfg;
}

vm::VmConfig
vmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

attack::AttackConfig
attackConfig(unsigned attempts)
{
    attack::AttackConfig cfg;
    cfg.maxAttempts = attempts;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

class SweepIdentityMatrix
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>>
{
};

// The ISSUE 7 acceptance sweep. Trials are pure functions of
// (campaign, trial index), so one attack object can serve as every
// "process": runTrialRange(begin, end) recomputes exactly what an
// independent OS process computes for that range (tools/hh_sweep and
// the sweep-identity CI leg prove the actual multi-process spelling;
// this matrix proves the algebra for 8 seeds x shard/thread shapes).
TEST_P(SweepIdentityMatrix, ShardedMergeEqualsSingleProcess)
{
    const uint64_t seed = std::get<0>(GetParam());
    const bool faulted = std::get<1>(GetParam());
    constexpr unsigned kAttempts = 4;

    sys::HostSystem host(hostConfig(seed, faulted));
    attack::HyperHammerAttack attack(host, vmConfig(),
                                     host.dram().mapping(),
                                     attackConfig(kAttempts));
    attack.profilePhase();
    if (attack.hostProfile().empty())
        GTEST_SKIP() << "no exploitable bits at seed " << seed;

    const attack::AttackResult reference = attack.runAttempts(
        kAttempts, 1, snapshot::CheckpointPolicy{});
    const uint64_t fingerprint = attack.campaignFingerprint();

    for (const unsigned shard_count : {1u, 2u, 4u}) {
        for (const unsigned threads : {1u, 4u}) {
            std::vector<shard::ShardResult> shards;
            for (const shard::ShardRange &range :
                 shard::planShards(kAttempts, shard_count)) {
                attack::TrialRangeResult ranged =
                    attack.runTrialRange(range.begin, range.end,
                                         threads,
                                         snapshot::CheckpointPolicy{});
                ASSERT_FALSE(ranged.stopped);
                shard::ShardResult one;
                one.manifest.campaignFingerprint = fingerprint;
                one.manifest.totalTrials = kAttempts;
                one.manifest.range = range;
                one.outcomes = std::move(ranged.outcomes);
                shards.push_back(std::move(one));
            }
            const auto merged = shard::mergeShards(std::move(shards));
            ASSERT_TRUE(merged.ok())
                << base::errorName(merged.error());
            const std::vector<std::string> mismatches =
                snapshot::diffAttackResults(reference, *merged);
            std::string joined;
            for (const std::string &field : mismatches)
                joined += " " + field;
            EXPECT_TRUE(mismatches.empty())
                << "seed " << seed << (faulted ? " faulted" : "")
                << ", " << shard_count << " shard(s) x " << threads
                << " thread(s): mismatched fields:" << joined;
        }
    }
}

// A shard that is stopped mid-range (the simulated SIGKILL hook),
// resumed from its checkpoint by a fresh attack object -- a stand-in
// for a fresh OS process -- and merged must leave no trace in the
// result.
TEST_P(SweepIdentityMatrix, KilledAndResumedShardMergesIdentically)
{
    const uint64_t seed = std::get<0>(GetParam());
    const bool faulted = std::get<1>(GetParam());
    constexpr unsigned kAttempts = 4;
    const sys::SystemConfig cfg = hostConfig(seed, faulted);

    sys::HostSystem host(cfg);
    attack::HyperHammerAttack attack(host, vmConfig(),
                                     host.dram().mapping(),
                                     attackConfig(kAttempts));
    attack.profilePhase();
    if (attack.hostProfile().empty())
        GTEST_SKIP() << "no exploitable bits at seed " << seed;

    const attack::AttackResult reference = attack.runAttempts(
        kAttempts, 1, snapshot::CheckpointPolicy{});
    const uint64_t fingerprint = attack.campaignFingerprint();
    const auto ranges = shard::planShards(kAttempts, 2);

    // Shard 0 runs to completion in the "first process".
    std::vector<shard::ShardResult> shards;
    {
        attack::TrialRangeResult ranged = attack.runTrialRange(
            ranges[0].begin, ranges[0].end, 1,
            snapshot::CheckpointPolicy{});
        shard::ShardResult one;
        one.manifest = {fingerprint, kAttempts, ranges[0]};
        one.outcomes = std::move(ranged.outcomes);
        shards.push_back(std::move(one));
    }

    // Shard 1 is killed after one trial...
    const std::string ckpt = ::testing::TempDir() + "shard_kill_s" +
        std::to_string(seed) + (faulted ? "_f" : "") + ".ckpt";
    std::remove(ckpt.c_str());
    std::remove((ckpt + snapshot::kCheckpointPrevSuffix).c_str());
    snapshot::CheckpointPolicy killer;
    killer.path = ckpt;
    killer.everyTrials = 1;
    killer.stopAfterTrials = 1;
    attack::TrialRangeResult cut = attack.runTrialRange(
        ranges[1].begin, ranges[1].end, 1, killer);
    if (!cut.stopped) {
        // The range's very first trial succeeded, so the shard
        // finished before the kill point; it still has to merge
        // identically.
        shard::ShardResult one;
        one.manifest = {fingerprint, kAttempts, ranges[1]};
        one.outcomes = std::move(cut.outcomes);
        shards.push_back(std::move(one));
    } else {
        ASSERT_LT(cut.outcomes.size(), ranges[1].size());

        // ...and resumed by a fresh attack object over a fresh host
        // (the "second process" re-derives the identical profile from
        // the same configuration).
        sys::HostSystem host2(cfg);
        attack::HyperHammerAttack attack2(host2, vmConfig(),
                                          host2.dram().mapping(),
                                          attackConfig(kAttempts));
        attack2.profilePhase();
        ASSERT_EQ(attack2.campaignFingerprint(), fingerprint);
        snapshot::CheckpointPolicy resumer;
        resumer.path = ckpt;
        resumer.everyTrials = 1;
        resumer.resume = true;
        attack::TrialRangeResult ranged = attack2.runTrialRange(
            ranges[1].begin, ranges[1].end, 1, resumer);
        ASSERT_FALSE(ranged.stopped);
        EXPECT_GT(ranged.resumedTrials, 0u);
        shard::ShardResult one;
        one.manifest = {fingerprint, kAttempts, ranges[1]};
        one.outcomes = std::move(ranged.outcomes);
        shards.push_back(std::move(one));
    }

    const auto merged = shard::mergeShards(std::move(shards));
    ASSERT_TRUE(merged.ok()) << base::errorName(merged.error());
    const std::vector<std::string> mismatches =
        snapshot::diffAttackResults(reference, *merged);
    std::string joined;
    for (const std::string &field : mismatches)
        joined += " " + field;
    EXPECT_TRUE(mismatches.empty())
        << "seed " << seed << (faulted ? " faulted" : "")
        << ": mismatched fields:" << joined;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SweepIdentityMatrix,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                         8u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, bool>>
           &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
            (std::get<1>(info.param) ? "_faulted" : "_clean");
    });

} // namespace
} // namespace hh
