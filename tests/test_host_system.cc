/**
 * @file
 * Tests of the host assembly: the S1/S2/S3 presets, boot-time noise
 * population, churn, scaling, and VM lifecycle accounting.
 */

#include <gtest/gtest.h>

#include "sys/host_system.h"

namespace hh::sys {
namespace {

TEST(SystemConfig, PresetsMatchPaperHardware)
{
    const SystemConfig s1 = SystemConfig::s1();
    EXPECT_EQ(s1.name, "S1");
    EXPECT_EQ(s1.dram.totalBytes, 16_GiB);
    EXPECT_TRUE(s1.dram.mapping == dram::AddressMapping::i3_10100());
    EXPECT_FALSE(s1.dram.trr.enabled);
    EXPECT_FALSE(s1.dram.ecc.enabled);

    const SystemConfig s2 = SystemConfig::s2();
    EXPECT_TRUE(s2.dram.mapping
                == dram::AddressMapping::xeonE3_2124());
    // Table 1: S2 flips more but far less stably.
    EXPECT_GT(s2.dram.fault.weakCellsPerRow,
              SystemConfig::s1().dram.fault.weakCellsPerRow);
    EXPECT_LT(s2.dram.fault.stableFraction,
              SystemConfig::s1().dram.fault.stableFraction);

    const SystemConfig s3 = SystemConfig::s3();
    // OpenStack host: more unmovable noise and ongoing churn.
    EXPECT_GT(s3.noise.unmovableFreePages,
              s1.noise.unmovableFreePages);
    EXPECT_GT(s3.noise.churnPagesPerTick, 0u);
}

TEST(SystemConfig, WithMemoryScalesNoise)
{
    SystemConfig cfg = SystemConfig::s1();
    const uint64_t noise_full = cfg.noise.unmovableFreePages;
    cfg.withMemory(2_GiB);
    EXPECT_EQ(cfg.dram.totalBytes, 2_GiB);
    EXPECT_NEAR(static_cast<double>(cfg.noise.unmovableFreePages),
                noise_full / 8.0, 2.0);
}

TEST(SystemConfig, WithSeedChangesDramSeed)
{
    SystemConfig a = SystemConfig::s1().withSeed(1);
    SystemConfig b = SystemConfig::s1().withSeed(2);
    EXPECT_NE(a.dram.seed, b.dram.seed);
}

TEST(HostSystem, BootLeavesConfiguredNoise)
{
    HostSystem host(SystemConfig::s1(7).withMemory(1_GiB));
    const uint64_t noise = host.noisePages();
    const uint64_t target = host.config().noise.unmovableFreePages;
    // The random interleave cannot be exact; 30 % tolerance.
    EXPECT_GT(noise, target * 7 / 10);
    EXPECT_LT(noise, target * 13 / 10);
    // Kernel pages are resident.
    EXPECT_NEAR(
        static_cast<double>(
            host.countFramesByUse(mm::PageUse::KernelData)),
        static_cast<double>(host.config().noise.kernelResidentPages),
        host.config().noise.kernelResidentPages * 0.02 + 8);
    EXPECT_EQ(host.countFramesByUse(mm::PageUse::PageCache),
              host.config().noise.pageCachePages);
}

TEST(HostSystem, BootChargesTime)
{
    HostSystem host(SystemConfig::s1(7).withMemory(1_GiB));
    EXPECT_GT(host.clock().now(), 0u);
}

TEST(HostSystem, NoiseTickKeepsPopulationSteady)
{
    HostSystem host(SystemConfig::s3(7).withMemory(1_GiB));
    const uint64_t kernel_before =
        host.countFramesByUse(mm::PageUse::KernelData);
    for (int i = 0; i < 50; ++i)
        host.noiseTick();
    const uint64_t kernel_after =
        host.countFramesByUse(mm::PageUse::KernelData);
    EXPECT_NEAR(static_cast<double>(kernel_after),
                static_cast<double>(kernel_before),
                kernel_before * 0.05);
    // Churn perturbs the free lists but keeps noise in the same band.
    EXPECT_GT(host.noisePages(), 0u);
}

TEST(HostSystem, NoiseTickNoOpWithoutChurn)
{
    HostSystem host(SystemConfig::s1(7).withMemory(1_GiB));
    const base::SimTime before = host.clock().now();
    host.noiseTick();
    EXPECT_EQ(host.clock().now(), before);
}

TEST(HostSystem, CreateVmChargesProvisioningTime)
{
    HostSystem host(SystemConfig::s1(7).withMemory(2_GiB));
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 512_MiB;
    const base::SimTime before = host.clock().now();
    auto machine = host.createVm(cfg);
    // At least the fixed boot cost plus per-byte preparation.
    EXPECT_GT(host.clock().now() - before, 20 * base::kSecond);
    EXPECT_EQ(machine->memorySize(), 64_MiB + 512_MiB);
}

TEST(HostSystem, VmIdsIncrease)
{
    HostSystem host(SystemConfig::s1(7).withMemory(2_GiB));
    vm::VmConfig cfg;
    cfg.bootMemBytes = 16_MiB;
    cfg.virtioMemRegionSize = 64_MiB;
    cfg.virtioMemPlugged = 32_MiB;
    auto a = host.createVm(cfg);
    auto b = host.createVm(cfg);
    EXPECT_NE(a->id(), b->id());
}

TEST(HostSystem, RespawnVariesGuestLayout)
{
    HostSystem host(SystemConfig::s1(7).withMemory(2_GiB));
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 2_GiB;
    cfg.virtioMemPlugged = 1_GiB;

    auto first = host.createVm(cfg);
    std::vector<uint64_t> layout_a;
    for (GuestPhysAddr hp : first->hugePageGpas())
        layout_a.push_back(first->debugTranslate(hp)->value());
    first.reset();

    auto second = host.createVm(cfg);
    std::vector<uint64_t> layout_b;
    for (GuestPhysAddr hp : second->hugePageGpas())
        layout_b.push_back(second->debugTranslate(hp)->value());

    EXPECT_NE(layout_a, layout_b);
}

TEST(HostSystem, PageCacheChurnPreservesCount)
{
    HostSystem host(SystemConfig::s1(7).withMemory(1_GiB));
    const uint64_t before =
        host.countFramesByUse(mm::PageUse::PageCache);
    host.pageCacheChurn(500);
    EXPECT_EQ(host.countFramesByUse(mm::PageUse::PageCache), before);
}

TEST(HostSystem, S3StartsWithMoreNoiseThanS1)
{
    HostSystem s1(SystemConfig::s1(7).withMemory(2_GiB));
    HostSystem s3(SystemConfig::s3(7).withMemory(2_GiB));
    EXPECT_GT(s3.noisePages(), s1.noisePages() * 2);
}

} // namespace
} // namespace hh::sys
