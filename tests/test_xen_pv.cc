/**
 * @file
 * Tests of the Xen PV direct-paging substrate and the Xiao et al.
 * baseline attack (Section 2.1): Xen's update validation holds
 * against hypercalls, and falls deterministically to one Rowhammer
 * flip in a guest-placed PMD.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"
#include "xen/pv_domain.h"

namespace hh::xen {
namespace {

class XenPvTest : public ::testing::Test
{
  protected:
    XenPvTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 256_MiB;
        dram_cfg.fault.weakCellsPerRow = 0.02;
        dram_cfg.fault.stableFraction = 1.0;
        dram_cfg.fault.minThreshold = 50'000;
        dram_cfg.fault.maxThreshold = 150'000;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 256_MiB / kPageSize;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
        domain = std::make_unique<PvDomain>(*dram, *buddy, 4'096, 1);
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
    std::unique_ptr<PvDomain> domain;
};

TEST_F(XenPvTest, DomainKnowsItsMachineFrames)
{
    ASSERT_EQ(domain->machineFrames().size(), 4'096u);
    for (Pfn frame : domain->machineFrames())
        EXPECT_TRUE(domain->owns(frame));
    // The domheap allocates from the top of memory; frame 0 belongs
    // to Xen.
    EXPECT_FALSE(domain->owns(0));
}

TEST_F(XenPvTest, PinValidatesAndProtects)
{
    const Pfn pt = domain->machineFrames()[0];
    const Pfn data = domain->machineFrames()[1];
    // An empty frame pins fine as a PT.
    ASSERT_TRUE(domain->pinPageTable(pt, PtLevel::Pt).ok());
    EXPECT_TRUE(domain->isPinned(pt));
    EXPECT_EQ(domain->pinPageTable(pt, PtLevel::Pt).error(),
              base::ErrorCode::Exists);

    // A frame with an entry pointing outside the domain (Xen's own
    // frame 0..7 range) is rejected.
    dram->backend().write64(HostPhysAddr(data * kPageSize),
                            (4ull << 12) | kPvPresent);
    EXPECT_EQ(domain->pinPageTable(data, PtLevel::Pt).error(),
              base::ErrorCode::Denied);
    EXPECT_GT(domain->rejectedUpdates(), 0u);
}

TEST_F(XenPvTest, MmuUpdateValidation)
{
    const Pfn pt = domain->machineFrames()[0];
    const Pfn owned_data = domain->machineFrames()[2];
    ASSERT_TRUE(domain->pinPageTable(pt, PtLevel::Pt).ok());

    // Mapping an owned frame is allowed.
    EXPECT_TRUE(domain
                    ->mmuUpdate(pt, 0,
                                (owned_data << 12) | kPvPresent
                                    | kPvWrite)
                    .ok());
    // Mapping a foreign frame (Xen's own memory) is denied.
    EXPECT_EQ(domain->mmuUpdate(pt, 1, (4ull << 12) | kPvPresent)
                  .error(),
              base::ErrorCode::Denied);
    // Writing an unpinned frame is invalid.
    EXPECT_EQ(domain->mmuUpdate(owned_data, 0, 0).error(),
              base::ErrorCode::InvalidArgument);
}

TEST_F(XenPvTest, PmdEntriesMustReferencePinnedPts)
{
    const Pfn pmd = domain->machineFrames()[0];
    const Pfn pt = domain->machineFrames()[1];
    ASSERT_TRUE(domain->pinPageTable(pmd, PtLevel::Pmd).ok());
    // PMD -> unpinned frame: denied.
    EXPECT_EQ(domain->mmuUpdate(pmd, 0, (pt << 12) | kPvPresent)
                  .error(),
              base::ErrorCode::Denied);
    ASSERT_TRUE(domain->pinPageTable(pt, PtLevel::Pt).ok());
    EXPECT_TRUE(
        domain->mmuUpdate(pmd, 0, (pt << 12) | kPvPresent).ok());
}

TEST_F(XenPvTest, DecreaseReservationReleasesToXenHeap)
{
    const Pfn frame = domain->machineFrames()[7];
    ASSERT_TRUE(domain->decreaseReservation(frame).ok());
    EXPECT_FALSE(domain->owns(frame));
    buddy->drainPcp(); // the free may be parked in the PCP
    EXPECT_TRUE(buddy->frame(frame).free);
    // Cannot release twice, cannot release pinned tables.
    EXPECT_FALSE(domain->decreaseReservation(frame).ok());
    const Pfn pt = domain->machineFrames()[0];
    ASSERT_TRUE(domain->pinPageTable(pt, PtLevel::Pt).ok());
    EXPECT_EQ(domain->decreaseReservation(pt).error(),
              base::ErrorCode::Busy);
}

TEST_F(XenPvTest, XiaoAttackIsDeterministic)
{
    // The 2016 baseline, end to end with real hammering:
    // 1. the PV guest knows machine addresses, so it finds a frame
    //    whose PMD-slot bit is vulnerable *by direct inspection of
    //    its own memory* (here: profile its frames with ground-truth
    //    hammering of adjacent rows it also owns -- determinism is
    //    the point, so use the fault oracle to pick the target);
    // Enumerate the domain's frames and the weak cells inside them:
    // the PV guest can do this because it sees machine addresses.
    const dram::AddressMapping &map = dram->mapping();
    const uint64_t granule = 1ull << map.interleaveShift();
    std::optional<dram::WeakCell> cell;
    Pfn pmd = kInvalidPfn;
    Pfn forged_pt = kInvalidPfn;
    dram::BankId bank = 0;
    dram::RowId row = 0;
    for (Pfn frame : domain->machineFrames()) {
        const HostPhysAddr frame_addr(frame * kPageSize);
        const dram::RowId frame_row = map.rowOf(frame_addr);
        for (dram::BankId b = 0; b < map.bankCount() && !cell; ++b) {
            if (!dram->faultModel().rowIsWeak(b, frame_row))
                continue;
            for (const auto &candidate :
                 dram->faultModel().weakCellsInRow(b, frame_row)) {
                if (candidate.bitInWord() < 12
                    || candidate.bitInWord() > 20
                    || candidate.direction
                        != dram::FlipDirection::ZeroToOne
                    || !candidate.stable()) {
                    continue;
                }
                // Does the cell's address fall inside this frame?
                const dram::BankId cls = b ^ map.rowClass(frame_row);
                const auto &offsets = map.classOffsets(cls);
                const HostPhysAddr addr(
                    (static_cast<uint64_t>(frame_row)
                     << map.rowLoBit())
                    | (static_cast<uint64_t>(
                           offsets[candidate.byteInRow / granule])
                       << map.interleaveShift())
                    | (candidate.byteInRow % granule));
                if (addr.pfn() != frame)
                    continue;
                // Find a forged-PT frame whose address differs from
                // an owned "reachable" frame in exactly the weak bit.
                const uint64_t bit = candidate.bitInWord() - 12;
                for (Pfn f : domain->machineFrames()) {
                    if (f == frame || !((f >> bit) & 1))
                        continue;
                    const Pfn reach = f & ~(1ull << bit);
                    if (reach != frame && domain->owns(reach)) {
                        cell = candidate;
                        pmd = frame;
                        forged_pt = f;
                        bank = b;
                        row = frame_row;
                        break;
                    }
                }
                if (cell)
                    break;
            }
        }
        if (cell)
            break;
    }
    if (!cell)
        GTEST_SKIP() << "no suitable weak cell among domain frames";

    const dram::BankId cls = bank ^ map.rowClass(row);
    const auto &offsets = map.classOffsets(cls);
    const HostPhysAddr cell_addr(
        (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(offsets[cell->byteInRow / granule])
           << map.interleaveShift())
        | (cell->byteInRow % granule));
    const unsigned slot =
        static_cast<unsigned>((cell_addr.value() % kPageSize) / 8);

    // 2. pin the vulnerable frame as a PMD, pin the pre-flip target
    //    as a legitimate PT, and write a forged PT (plain data from
    //    Xen's point of view) that maps Xen's secret frame.
    const Pfn secret = 4; // a Xen-owned frame the domain must not map
    const Pfn reachable =
        forged_pt & ~(1ull << (cell->bitInWord() - 12));
    ASSERT_TRUE(domain->pinPageTable(pmd, PtLevel::Pmd).ok());
    ASSERT_TRUE(domain->pinPageTable(reachable, PtLevel::Pt).ok());
    dram->backend().write64(HostPhysAddr(forged_pt * kPageSize),
                            (secret << 12) | kPvPresent | kPvWrite);
    ASSERT_TRUE(domain
                    ->mmuUpdate(pmd, slot,
                                (reachable << 12) | kPvPresent
                                    | kPvWrite)
                    .ok());

    // 3. hammer the adjacent rows (all attacker-owned knowledge) --
    //    deterministic: the stable cell fires on the first attempt.
    const auto addr_in = [&](dram::RowId r) {
        const dram::BankId c = bank ^ map.rowClass(r);
        return HostPhysAddr(
            (static_cast<uint64_t>(r) << map.rowLoBit())
            | (static_cast<uint64_t>(map.classOffsets(c).front())
               << map.interleaveShift()));
    };
    const auto events =
        dram->hammer({addr_in(row + 1), addr_in(row + 2)}, 200'000);
    bool flipped = false;
    for (const auto &event : events) {
        flipped |= event.wordAddr.value() == (cell_addr.value() & ~7ull)
            && event.bitInWord == cell->bitInWord();
    }
    ASSERT_TRUE(flipped) << "the stable cell must fire";

    // 4. the walk now reaches Xen's secret frame through the forged
    //    PT -- no hypercall ever saw the forged mapping.
    auto resolved = domain->resolve(pmd, slot, 0);
    ASSERT_TRUE(resolved.ok());
    EXPECT_EQ(*resolved, secret);
    EXPECT_FALSE(domain->owns(secret));
}

} // namespace
} // namespace hh::xen
