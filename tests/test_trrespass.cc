/**
 * @file
 * Tests of the TRRespass-style pattern finder (Section 5.1): on
 * TRR-less DIMMs the minimal effective pattern is the single-sided
 * two-row pair the paper uses; with a TRR sampler, only patterns
 * exceeding the tracker capacity flip.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/trrespass.h"
#include "base/sim_clock.h"

namespace hh::analysis {
namespace {

std::unique_ptr<dram::DramSystem>
makeDram(dram::TrrConfig trr, base::SimClock &clock, uint64_t seed = 3)
{
    dram::DramConfig cfg;
    cfg.totalBytes = 512_MiB;
    cfg.seed = seed;
    cfg.fault.weakCellsPerRow = 0.05; // dense: quick trials
    cfg.fault.stableFraction = 1.0;
    cfg.fault.minThreshold = 50'000;
    cfg.fault.maxThreshold = 150'000;
    cfg.trr = trr;
    return std::make_unique<dram::DramSystem>(cfg, clock);
}

TEST(Trrespass, NoTrrMeansOneOrTwoRowsSuffice)
{
    base::SimClock clock;
    auto dram = makeDram(dram::TrrConfig{}, clock);
    TrrespassConfig cfg;
    cfg.maxAggressorRows = 4;
    Trrespass finder(*dram, cfg);
    const TrrespassResult result = finder.run();
    ASSERT_TRUE(result.foundPattern());
    EXPECT_LE(result.effectiveAggressorRows, 2u);
    EXPECT_GT(result.flips, 0u);
}

TEST(Trrespass, TrrRaisesTheRequiredPatternSize)
{
    base::SimClock clock;
    dram::TrrConfig trr;
    trr.enabled = true;
    trr.trackerCapacity = 4;
    auto dram = makeDram(trr, clock);
    TrrespassConfig cfg;
    cfg.maxAggressorRows = 10;
    cfg.trialsPerSize = 32;
    Trrespass finder(*dram, cfg);
    const TrrespassResult result = finder.run();
    ASSERT_TRUE(result.foundPattern());
    // Patterns within the tracker capacity cannot flip anything.
    EXPECT_GT(result.effectiveAggressorRows, trr.trackerCapacity);
    for (unsigned size = 1; size <= trr.trackerCapacity; ++size)
        EXPECT_EQ(result.flipsBySize[size], 0u);
}

TEST(Trrespass, FlipsBySizeShapeWithoutTrr)
{
    base::SimClock clock;
    auto dram = makeDram(dram::TrrConfig{}, clock);
    TrrespassConfig cfg;
    cfg.maxAggressorRows = 6;
    Trrespass finder(*dram, cfg);
    const TrrespassResult result = finder.run();
    ASSERT_EQ(result.flipsBySize.size(), 7u);
    // More aggressor rows reach more victim rows: cumulative flips
    // must not be concentrated at the top only.
    uint64_t total = 0;
    for (uint64_t flips : result.flipsBySize)
        total += flips;
    EXPECT_GT(total, result.flipsBySize[6]);
}

TEST(Trrespass, TryPatternReportsFlips)
{
    base::SimClock clock;
    auto dram = makeDram(dram::TrrConfig{}, clock);
    Trrespass finder(*dram, TrrespassConfig{});
    uint64_t flips = 0;
    for (int trial = 0; trial < 40 && flips == 0; ++trial)
        flips = finder.tryPattern(2);
    EXPECT_GT(flips, 0u);
}

} // namespace
} // namespace hh::analysis
