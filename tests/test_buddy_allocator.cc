/**
 * @file
 * Tests of the buddy allocator: split/coalesce correctness, the
 * per-migratetype policies Page Steering depends on, the PCP
 * front-end, and a randomized consistency property sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "mm/buddy_allocator.h"

namespace hh::mm {
namespace {

BuddyConfig
config(uint64_t pages, unsigned pcp_high = 0)
{
    BuddyConfig cfg;
    cfg.totalPages = pages;
    cfg.pcp.highWatermark = pcp_high;
    cfg.pcp.batch = 63;
    return cfg;
}

TEST(Buddy, AllFreeAfterConstruction)
{
    BuddyAllocator buddy(config(4096));
    EXPECT_EQ(buddy.freePages(), 4096u);
    const PageTypeInfo info = buddy.pageTypeInfo();
    // Everything sits in max-order movable blocks.
    EXPECT_EQ(info.blockCount(MigrateType::Movable, kMaxOrder - 1), 4u);
    EXPECT_EQ(info.totalPages(MigrateType::Movable), 4096u);
    buddy.checkConsistency();
}

TEST(Buddy, AllocAndFreeRestoresEverything)
{
    BuddyAllocator buddy(config(4096));
    auto page = buddy.allocPages(0, MigrateType::Movable,
                                 PageUse::KernelData);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(buddy.freePages(), 4095u);
    EXPECT_FALSE(buddy.frame(*page).free);
    EXPECT_EQ(buddy.frame(*page).use, PageUse::KernelData);
    buddy.freePages(*page, 0);
    EXPECT_EQ(buddy.freePages(), 4096u);
    // Full coalescing back to a single max-order view.
    EXPECT_EQ(buddy.pageTypeInfo().blockCount(MigrateType::Movable,
                                              kMaxOrder - 1),
              4u);
    buddy.checkConsistency();
}

TEST(Buddy, SplitPrefersSmallestSufficientBlock)
{
    BuddyAllocator buddy(config(4096));
    // Allocate order-0: leaves remainders at orders 0..9.
    auto first = buddy.allocPages(0, MigrateType::Movable,
                                  PageUse::KernelData);
    ASSERT_TRUE(first.ok());
    const PageTypeInfo info = buddy.pageTypeInfo();
    for (unsigned order = 0; order < kMaxOrder - 1; ++order)
        EXPECT_EQ(info.blockCount(MigrateType::Movable, order), 1u)
            << "order " << order;
    // Next order-0 allocation must consume the order-0 remainder,
    // not split anything further.
    auto second = buddy.allocPages(0, MigrateType::Movable,
                                   PageUse::KernelData);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(buddy.pageTypeInfo().blockCount(MigrateType::Movable, 0),
              0u);
    EXPECT_EQ(*second, *first ^ 1u);
}

TEST(Buddy, HigherOrderAllocationAligned)
{
    BuddyAllocator buddy(config(4096));
    for (unsigned order = 1; order < kMaxOrder; ++order) {
        auto block = buddy.allocPages(order, MigrateType::Movable,
                                      PageUse::GuestMemory);
        ASSERT_TRUE(block.ok());
        EXPECT_EQ(*block & ((1ull << order) - 1), 0u);
        buddy.freePages(*block, order);
    }
    buddy.checkConsistency();
}

TEST(Buddy, MigrateTypesKeepSeparateLists)
{
    BuddyAllocator buddy(config(4096));
    auto unmovable = buddy.allocPages(0, MigrateType::Unmovable,
                                      PageUse::KernelData);
    ASSERT_TRUE(unmovable.ok());
    const PageTypeInfo info = buddy.pageTypeInfo();
    // The stolen block's remainders live on the unmovable lists now.
    EXPECT_GT(info.totalPages(MigrateType::Unmovable), 0u);
    EXPECT_EQ(buddy.frame(*unmovable).migrateType,
              MigrateType::Unmovable);
}

TEST(Buddy, StealTakesLargestBlock)
{
    BuddyAllocator buddy(config(4096));
    // Unmovable request with empty unmovable lists: steal a max-order
    // movable block and convert it.
    auto page = buddy.allocPages(0, MigrateType::Unmovable,
                                 PageUse::KernelData);
    ASSERT_TRUE(page.ok());
    const PageTypeInfo info = buddy.pageTypeInfo();
    EXPECT_EQ(info.blockCount(MigrateType::Movable, kMaxOrder - 1), 3u);
    EXPECT_EQ(info.totalPages(MigrateType::Unmovable), 1023u);
    buddy.checkConsistency();
}

TEST(Buddy, CoalescingRequiresSameMigrateType)
{
    BuddyAllocator buddy(config(4096));
    auto a = buddy.allocPages(0, MigrateType::Movable,
                              PageUse::KernelData);
    ASSERT_TRUE(a.ok());
    auto b = buddy.allocPages(0, MigrateType::Movable,
                              PageUse::KernelData);
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(*b, *a ^ 1u); // buddies
    // Free one as unmovable, one as movable: they must not merge.
    buddy.freePagesAs(*a, 0, MigrateType::Unmovable);
    buddy.freePagesAs(*b, 0, MigrateType::Movable);
    const PageTypeInfo info = buddy.pageTypeInfo();
    EXPECT_EQ(info.blockCount(MigrateType::Unmovable, 0), 1u);
    EXPECT_EQ(info.blockCount(MigrateType::Movable, 0), 1u);
    buddy.checkConsistency();
}

TEST(Buddy, FreePagesAsRetypesBlock)
{
    BuddyAllocator buddy(config(4096));
    auto block = buddy.allocPages(9, MigrateType::Movable,
                                  PageUse::GuestMemory);
    ASSERT_TRUE(block.ok());
    // The virtio-mem release path: VFIO-pinned guest memory frees as
    // an order-9 MIGRATE_UNMOVABLE block (Section 4.2.2).
    buddy.freePagesAs(*block, 9, MigrateType::Unmovable);
    const PageTypeInfo info = buddy.pageTypeInfo();
    EXPECT_GE(info.blockCount(MigrateType::Unmovable, 9), 1u);
    EXPECT_EQ(buddy.frame(*block).migrateType, MigrateType::Unmovable);
    buddy.checkConsistency();
}

TEST(Buddy, OutOfMemory)
{
    BuddyAllocator buddy(config(1024));
    std::vector<Pfn> pages;
    while (true) {
        auto page = buddy.allocPages(0, MigrateType::Movable,
                                     PageUse::KernelData);
        if (!page.ok()) {
            EXPECT_EQ(page.error(), base::ErrorCode::NoMemory);
            break;
        }
        pages.push_back(*page);
    }
    EXPECT_EQ(pages.size(), 1024u);
    EXPECT_EQ(buddy.freePages(), 0u);
    for (Pfn pfn : pages)
        buddy.freePages(pfn, 0);
    EXPECT_EQ(buddy.freePages(), 1024u);
    buddy.checkConsistency();
}

TEST(Buddy, PcpParksAndServesOrderZero)
{
    BuddyAllocator buddy(config(4096, /*pcp_high=*/186));
    auto page = buddy.allocPages(0, MigrateType::Movable,
                                 PageUse::KernelData);
    ASSERT_TRUE(page.ok());
    // The refill pulled a batch into the PCP.
    EXPECT_EQ(buddy.pcpCount(), 62u);
    // A free parks in the PCP rather than the buddy lists.
    buddy.freePages(*page, 0);
    EXPECT_EQ(buddy.pcpCount(), 63u);
    // The next allocation is served from the PCP (same page, LIFO).
    auto again = buddy.allocPages(0, MigrateType::Movable,
                                  PageUse::KernelData);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *page);
    buddy.freePages(*again, 0);
    buddy.drainPcp();
    EXPECT_EQ(buddy.pcpCount(), 0u);
    EXPECT_EQ(buddy.freePages(), 4096u);
    buddy.checkConsistency();
}

TEST(Buddy, PcpDrainsOnHighWatermark)
{
    BuddyAllocator buddy(config(4096, /*pcp_high=*/64));
    std::vector<Pfn> pages;
    for (int i = 0; i < 200; ++i) {
        auto page = buddy.allocPages(0, MigrateType::Movable,
                                     PageUse::KernelData);
        ASSERT_TRUE(page.ok());
        pages.push_back(*page);
    }
    for (Pfn pfn : pages)
        buddy.freePages(pfn, 0);
    EXPECT_LE(buddy.pcpCount(), 64u + 63u);
    buddy.checkConsistency();
}

TEST(Buddy, DrainOnAllocationPressure)
{
    // Allocate everything order-0 with PCP on, free it all (parking
    // some), then ask for a big block: the allocator must drain the
    // PCP to satisfy it.
    BuddyAllocator buddy(config(1024, /*pcp_high=*/186));
    std::vector<Pfn> pages;
    while (true) {
        auto page = buddy.allocPages(0, MigrateType::Movable,
                                     PageUse::KernelData);
        if (!page.ok())
            break;
        pages.push_back(*page);
    }
    for (Pfn pfn : pages)
        buddy.freePages(pfn, 0);
    ASSERT_GT(buddy.pcpCount(), 0u);
    auto block = buddy.allocPages(kMaxOrder - 1, MigrateType::Movable,
                                  PageUse::GuestMemory);
    EXPECT_TRUE(block.ok());
    buddy.checkConsistency();
}

TEST(Buddy, AnyTypeAllocationIgnoresMigrateTypes)
{
    BuddyAllocator buddy(config(4096));
    // Put a small unmovable block on the lists.
    auto unmovable = buddy.allocPages(0, MigrateType::Unmovable,
                                      PageUse::KernelData);
    ASSERT_TRUE(unmovable.ok());
    buddy.freePages(*unmovable, 0);
    // Xen-style allocation takes the smallest block anywhere -- the
    // order-0 unmovable one, not a split of a movable giant.
    auto page = buddy.allocPagesAnyType(0, PageUse::EptPage);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, *unmovable);
}

TEST(Buddy, SetUseAndPinning)
{
    BuddyAllocator buddy(config(4096));
    auto page = buddy.allocPages(0, MigrateType::Movable,
                                 PageUse::GuestMemory, /*owner=*/7);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(buddy.frame(*page).owner, 7u);
    buddy.setUse(*page, PageUse::DmaBuffer, 7);
    EXPECT_EQ(buddy.frame(*page).use, PageUse::DmaBuffer);
    buddy.setPinned(*page, true);
    EXPECT_TRUE(buddy.frame(*page).pinned);
    buddy.setPinned(*page, false);
    buddy.freePages(*page, 0);
}

TEST(BuddyDeath, FreeingPinnedPagePanics)
{
    BuddyAllocator buddy(config(4096));
    auto page = buddy.allocPages(0, MigrateType::Movable,
                                 PageUse::GuestMemory);
    ASSERT_TRUE(page.ok());
    buddy.setPinned(*page, true);
    EXPECT_DEATH(buddy.freePages(*page, 0), "assertion");
}

TEST(BuddyDeath, DoubleFreePanics)
{
    BuddyAllocator buddy(config(4096, /*pcp off*/ 0));
    auto page = buddy.allocPages(0, MigrateType::Movable,
                                 PageUse::GuestMemory);
    ASSERT_TRUE(page.ok());
    buddy.freePages(*page, 0);
    EXPECT_DEATH(buddy.freePages(*page, 0), "assertion");
}

TEST(Buddy, PagesBelowOrderMetric)
{
    BuddyAllocator buddy(config(4096));
    auto page = buddy.allocPages(0, MigrateType::Unmovable,
                                 PageUse::KernelData);
    ASSERT_TRUE(page.ok());
    // The steal left orders 0..9 remainders: 1023 pages, of which the
    // order-9 block (512 pages) is NOT below order 9.
    const PageTypeInfo info = buddy.pageTypeInfo();
    EXPECT_EQ(info.pagesBelowOrder(MigrateType::Unmovable, 9), 511u);
    EXPECT_EQ(info.totalPages(MigrateType::Unmovable), 1023u);
}

/** Randomized property sweep: invariants hold under arbitrary mixes. */
class BuddyRandomOps : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(BuddyRandomOps, ConsistencyUnderRandomAllocFree)
{
    base::Rng rng(GetParam());
    BuddyAllocator buddy(config(8192, /*pcp_high=*/128));
    struct Block
    {
        Pfn pfn;
        unsigned order;
    };
    std::vector<Block> live;
    uint64_t live_pages = 0;

    for (int step = 0; step < 4'000; ++step) {
        const bool do_alloc = live.empty()
            || (rng.chance(0.55) && live_pages < 7'000);
        if (do_alloc) {
            const unsigned order = rng.below(6);
            const auto mt = static_cast<MigrateType>(rng.below(3));
            auto block = buddy.allocPages(order, mt,
                                          PageUse::KernelData);
            if (block.ok()) {
                live.push_back({*block, order});
                live_pages += 1ull << order;
            }
        } else {
            const size_t idx = rng.below(live.size());
            std::swap(live[idx], live.back());
            buddy.freePages(live.back().pfn, live.back().order);
            live_pages -= 1ull << live.back().order;
            live.pop_back();
        }
        if (step % 500 == 0)
            buddy.checkConsistency();
    }
    for (const Block &block : live)
        buddy.freePages(block.pfn, block.order);
    buddy.drainPcp();
    EXPECT_EQ(buddy.freePages(), 8192u);
    buddy.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

} // namespace
} // namespace hh::mm
