/**
 * @file
 * Tests of the crash-safe snapshot layer: archive primitives, the
 * atomic file framing, whole-host and whole-world round trips,
 * per-subsystem deep equality, corruption rejection, and campaign
 * checkpointing with fallback to the rotated previous file.
 *
 * Deep equality is checked by re-serialization: two objects whose
 * saveState() byte streams match are bitwise-identical in every field
 * the snapshot covers (the streams encode all of them, maps in sorted
 * order).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "attack/orchestrator.h"
#include "base/archive.h"
#include "mitigate/defense.h"
#include "snapshot/checkpoint_policy.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "sys/host_system.h"
#include "sys/ksm.h"

namespace hh {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

sys::SystemConfig
smallHost(uint64_t seed = 42)
{
    return sys::SystemConfig::s1(seed).withMemory(128_MiB);
}

/** The full serialized host state, for byte-wise deep equality. */
std::vector<uint8_t>
hostBytes(const sys::HostSystem &host)
{
    base::ArchiveWriter w;
    host.saveState(w);
    return w.buffer();
}

// --- archive primitives ---------------------------------------------------

TEST(Archive, PrimitivesRoundTrip)
{
    base::ArchiveWriter w;
    w.u8(0xab);
    w.boolean(true);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.f64(3.14159265358979);
    w.str("snapshot");
    w.u64vec({1, 2, 3});
    w.rngState({4, 5, 6, 7});

    base::ArchiveReader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.14159265358979);
    EXPECT_EQ(r.str(), "snapshot");
    EXPECT_EQ(r.u64vec(), (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(r.rngState(), (std::array<uint64_t, 4>{4, 5, 6, 7}));
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(r.status().ok());
}

TEST(Archive, TruncatedReadLatchesStickyFailure)
{
    base::ArchiveWriter w;
    w.u64(7);
    base::ArchiveReader r(w.buffer().data(), 3); // cut mid-word
    (void)r.u64(); // may return the readable prefix; must latch
    EXPECT_FALSE(r.ok());
    // Every later read keeps failing and returns defaults: no UB.
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.u64vec().empty());
    EXPECT_FALSE(r.status().ok());
}

TEST(Archive, CountRejectsLengthBeyondBuffer)
{
    base::ArchiveWriter w;
    w.u64(~0ull); // a "length" no buffer can satisfy
    base::ArchiveReader r(w.buffer());
    EXPECT_EQ(r.count(8), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Archive, StringLengthBeyondBufferRejected)
{
    base::ArchiveWriter w;
    w.u64(1 << 20); // length prefix far past the end
    w.u8('x');
    base::ArchiveReader r(w.buffer());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

// --- archive files --------------------------------------------------------

TEST(ArchiveFile, RoundTrip)
{
    const std::string path = tempPath("archive_roundtrip.bin");
    base::ArchiveWriter w;
    w.u64(0x5eed);
    w.str("payload");
    ASSERT_TRUE(base::saveArchiveFile(path, 0x1234, 3, w.buffer()).ok());

    auto loaded = base::loadArchiveFile(path, 0x1234, 1, 3);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->version, 3u);
    base::ArchiveReader r(loaded->payload);
    EXPECT_EQ(r.u64(), 0x5eedu);
    EXPECT_EQ(r.str(), "payload");
    std::remove(path.c_str());
}

TEST(ArchiveFile, MissingFileIsNotFound)
{
    auto loaded = base::loadArchiveFile(
        tempPath("no_such_snapshot.bin"), 0x1234, 1, 1);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error(), base::ErrorCode::NotFound);
}

TEST(ArchiveFile, WrongMagicVersionChecksumTruncation)
{
    const std::string path = tempPath("archive_corrupt.bin");
    base::ArchiveWriter w;
    w.u64vec({1, 2, 3, 4, 5, 6, 7, 8});
    ASSERT_TRUE(base::saveArchiveFile(path, 0xfeed, 2, w.buffer()).ok());
    const std::vector<uint8_t> good = readFile(path);

    // Wrong magic (expected by the caller).
    EXPECT_FALSE(base::loadArchiveFile(path, 0xbeef, 1, 2).ok());
    // Version outside the accepted range (stale snapshot).
    EXPECT_FALSE(base::loadArchiveFile(path, 0xfeed, 3, 9).ok());

    // One flipped payload byte: checksum mismatch.
    std::vector<uint8_t> flipped = good;
    flipped[flipped.size() - 1] ^= 0x40;
    writeFile(path, flipped);
    EXPECT_FALSE(base::loadArchiveFile(path, 0xfeed, 1, 2).ok());

    // Truncation at every boundary class: inside the header and
    // inside the payload. Neither may crash.
    for (const size_t cut : {size_t{5}, good.size() - 3}) {
        writeFile(path, std::vector<uint8_t>(good.begin(),
                                             good.begin() + cut));
        EXPECT_FALSE(base::loadArchiveFile(path, 0xfeed, 1, 2).ok());
    }
    std::remove(path.c_str());
}

// --- per-subsystem round trips --------------------------------------------

TEST(SubsystemSnapshot, MemoryBackendRoundTripAndCorruption)
{
    sys::HostSystem host(smallHost());
    host.dram().write64(HostPhysAddr(0x1000), 0x1122334455667788ull);

    base::ArchiveWriter w;
    host.dram().backend().saveState(w);

    // Round trip into the same backend: byte-identical re-encoding.
    base::ArchiveReader r(w.buffer());
    ASSERT_TRUE(host.dram().backend().loadState(r).ok());
    base::ArchiveWriter w2;
    host.dram().backend().saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());

    // A PFN beyond the DIMM must be rejected and leave state alone.
    base::ArchiveWriter bad;
    bad.u64(1);                          // one page
    bad.u64(host.dram().pageCount());    // out of range
    bad.u64(0);                          // fill
    bad.u64(0);                          // no overrides
    base::ArchiveReader bad_r(bad.buffer());
    EXPECT_FALSE(host.dram().backend().loadState(bad_r).ok());
    base::ArchiveWriter w3;
    host.dram().backend().saveState(w3);
    EXPECT_EQ(w.buffer(), w3.buffer());
}

TEST(SubsystemSnapshot, BuddyRoundTripAndCorruptionKeepsState)
{
    sys::HostSystem host(smallHost());
    base::ArchiveWriter w;
    host.buddy().saveState(w);

    base::ArchiveReader r(w.buffer());
    ASSERT_TRUE(host.buddy().loadState(r).ok());
    base::ArchiveWriter w2;
    host.buddy().saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());

    // Flip one byte somewhere inside the frame records: the
    // non-panicking consistency walk must reject it -- never abort --
    // and leave the allocator untouched.
    std::vector<uint8_t> corrupt = w.buffer();
    corrupt[corrupt.size() / 2] ^= 0x04;
    base::ArchiveReader cr(corrupt);
    const base::Status st = host.buddy().loadState(cr);
    if (!st.ok()) {
        base::ArchiveWriter w3;
        host.buddy().saveState(w3);
        EXPECT_EQ(w.buffer(), w3.buffer());
    }
    // (A flip that survives the walk is itself a valid state; the
    // host-level snapshot catches it via the file checksum.)

    // The allocator must still work after all of the above.
    auto page = host.buddy().allocPages(0, mm::MigrateType::Movable,
                                        mm::PageUse::PageCache);
    ASSERT_TRUE(page.ok());
    host.buddy().freePages(*page, 0);
}

TEST(SubsystemSnapshot, FaultInjectorCursorsRoundTrip)
{
    const fault::FaultPlan plan = fault::FaultPlan::randomized(9, 0.5);
    sys::HostSystem host(smallHost(7).withFaults(plan));
    ASSERT_NE(host.faults(), nullptr);
    host.pageCacheChurn(500); // advance some per-site streams

    base::ArchiveWriter w;
    host.faults()->saveState(w);
    base::ArchiveReader r(w.buffer());
    ASSERT_TRUE(host.faults()->loadState(r).ok());
    base::ArchiveWriter w2;
    host.faults()->saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(SubsystemSnapshot, KsmMergeStateRoundTrip)
{
    sys::HostSystem host(smallHost());
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 16_MiB;
    vm_cfg.virtioMemRegionSize = 64_MiB;
    vm_cfg.virtioMemPlugged = 32_MiB;
    // No passthrough: VFIO DMA-pins guest frames and KSM skips them.
    vm_cfg.passthroughDevices = 0;
    auto machine = host.createVm(vm_cfg);

    sys::Ksm ksm(host.dram(), host.buddy(), /*enabled=*/true);
    ksm.attach(*machine);
    // Identical content in two plugged pages: the first pass registers
    // the content, the second pass merges the duplicate into it.
    const GuestPhysAddr page_a{vm::kVirtioMemRegionStart + 5 * kPageSize};
    const GuestPhysAddr page_b{vm::kVirtioMemRegionStart + 9 * kPageSize};
    ASSERT_TRUE(machine->fillPage(page_a, 0x5a5a5a5a5a5a5a5aull).ok());
    ASSERT_TRUE(machine->fillPage(page_b, 0x5a5a5a5a5a5a5a5aull).ok());
    (void)ksm.scanRange(*machine, page_a, 1);
    (void)ksm.scanRange(*machine, page_b, 1);
    ASSERT_GT(ksm.stats().pagesMerged, 0u);

    base::ArchiveWriter w;
    ksm.saveState(w);
    base::ArchiveReader r(w.buffer());
    ASSERT_TRUE(ksm.loadState(r).ok());
    base::ArchiveWriter w2;
    ksm.saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());

    // Ksm's destructor contract: tear the VM down first.
    machine.reset();
}

// --- whole-host snapshots -------------------------------------------------

TEST(HostSnapshot, RoundTripIsBitwiseIdentical)
{
    const std::string path = tempPath("host_snapshot.bin");
    sys::SystemConfig cfg = smallHost(11);

    sys::HostSystem original(cfg);
    original.pageCacheChurn(300);
    original.noiseTick();
    original.dram().write64(HostPhysAddr(0x2000), 0xfeedfaceull);
    ASSERT_TRUE(original.saveSnapshot(path).ok());

    sys::HostSystem restored(cfg);
    ASSERT_TRUE(restored.loadSnapshot(path).ok());

    EXPECT_EQ(hostBytes(original), hostBytes(restored));
    EXPECT_EQ(restored.clock().now(), original.clock().now());
    EXPECT_EQ(restored.noisePages(), original.noisePages());
    // DRAM reads advance the simulated clock, so mirror every access
    // on both hosts to keep them comparable afterwards.
    EXPECT_EQ(restored.dram().read64(HostPhysAddr(0x2000)),
              0xfeedfaceull);
    EXPECT_EQ(original.dram().read64(HostPhysAddr(0x2000)),
              0xfeedfaceull);

    // Determinism continues after restore: the same operation on both
    // hosts produces the same state evolution.
    original.pageCacheChurn(100);
    restored.pageCacheChurn(100);
    EXPECT_EQ(hostBytes(original), hostBytes(restored));
    std::remove(path.c_str());
}

TEST(HostSnapshot, ConfigFingerprintMismatchRejected)
{
    const std::string path = tempPath("host_fingerprint.bin");
    sys::HostSystem original(smallHost(11));
    ASSERT_TRUE(original.saveSnapshot(path).ok());

    // Different seed => different fingerprint => rejected.
    sys::HostSystem other(smallHost(12));
    const base::Status st = other.loadSnapshot(path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error(), base::ErrorCode::InvalidArgument);
    std::remove(path.c_str());
}

TEST(HostSnapshot, CorruptedAndStaleFilesRejected)
{
    const std::string path = tempPath("host_corrupt.bin");
    sys::SystemConfig cfg = smallHost(13);
    sys::HostSystem original(cfg);
    ASSERT_TRUE(original.saveSnapshot(path).ok());
    const std::vector<uint8_t> good = readFile(path);
    ASSERT_GT(good.size(), 64u);

    sys::HostSystem target(cfg);

    // Flipped byte mid-payload: checksum rejects before any parsing.
    std::vector<uint8_t> flipped = good;
    flipped[good.size() / 2] ^= 0x01;
    writeFile(path, flipped);
    EXPECT_FALSE(target.loadSnapshot(path).ok());

    // Truncated file.
    writeFile(path, std::vector<uint8_t>(good.begin(),
                                         good.begin() + good.size() / 2));
    EXPECT_FALSE(target.loadSnapshot(path).ok());

    // Stale format version (header field is not checksummed; bump it).
    std::vector<uint8_t> stale = good;
    stale[8] += 1; // little-endian version low byte
    writeFile(path, stale);
    EXPECT_FALSE(target.loadSnapshot(path).ok());

    // The untouched file still loads -- and the target host survived
    // every rejected attempt.
    writeFile(path, good);
    EXPECT_TRUE(target.loadSnapshot(path).ok());
    EXPECT_EQ(hostBytes(original), hostBytes(target));
    std::remove(path.c_str());
}

// --- whole-world snapshots (host + VMs) -----------------------------------

TEST(WorldSnapshot, HostAndVmRoundTrip)
{
    const std::string path = tempPath("world_snapshot.bin");
    sys::SystemConfig cfg = smallHost(21);
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 16_MiB;
    vm_cfg.virtioMemRegionSize = 64_MiB;
    vm_cfg.virtioMemPlugged = 32_MiB;

    sys::HostSystem original(cfg);
    auto machine = original.createVm(vm_cfg);
    ASSERT_TRUE(machine->write64(GuestPhysAddr(0x4008),
                                 0xc0ffee5ull).ok());
    ASSERT_TRUE(machine->iommuMap(0, IoVirtAddr(0x10000),
                                  GuestPhysAddr(0x4000)).ok());

    ASSERT_TRUE(
        snapshot::saveWorld(original, {machine.get()}, path).ok());

    sys::HostSystem restored_host(cfg);
    auto restored = snapshot::loadWorld(restored_host, {vm_cfg}, path);
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored->size(), 1u);
    vm::VirtualMachine &twin = *(*restored)[0];

    // Byte-wise deep equality first: guest reads advance the host's
    // simulated clock, so compare before touching memory.
    EXPECT_EQ(hostBytes(original), hostBytes(restored_host));
    base::ArchiveWriter wa;
    machine->saveState(wa);
    base::ArchiveWriter wb;
    twin.saveState(wb);
    EXPECT_EQ(wa.buffer(), wb.buffer());

    // Guest-visible state survived: same id, same memory word.
    EXPECT_EQ(twin.id(), machine->id());
    auto word = twin.read64(GuestPhysAddr(0x4008));
    ASSERT_TRUE(word.ok());
    EXPECT_EQ(*word, 0xc0ffee5ull);
    std::remove(path.c_str());
}

TEST(WorldSnapshot, VmCountMismatchRejected)
{
    const std::string path = tempPath("world_count.bin");
    sys::SystemConfig cfg = smallHost(22);
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 16_MiB;
    vm_cfg.virtioMemRegionSize = 64_MiB;
    vm_cfg.virtioMemPlugged = 32_MiB;

    sys::HostSystem original(cfg);
    auto machine = original.createVm(vm_cfg);
    ASSERT_TRUE(
        snapshot::saveWorld(original, {machine.get()}, path).ok());

    sys::HostSystem restored_host(cfg);
    auto restored = snapshot::loadWorld(restored_host,
                                        {vm_cfg, vm_cfg}, path);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.error(), base::ErrorCode::InvalidArgument);
    std::remove(path.c_str());
}

// --- campaign checkpoints -------------------------------------------------

sys::SystemConfig
campaignHost(uint64_t seed)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed)
        .withMemory(1_GiB);
    cfg.dram.fault.weakCellsPerRow *= 4.0;
    return cfg;
}

vm::VmConfig
campaignVm()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

attack::AttackConfig
campaignAttack()
{
    attack::AttackConfig cfg;
    cfg.maxAttempts = 4;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

TEST(Checkpoint, KillResumeMatchesStraightRunAndSurvivesCorruption)
{
    const std::string path = tempPath("campaign.ckpt");
    const std::string prev =
        path + snapshot::kCheckpointPrevSuffix;
    std::remove(path.c_str());
    std::remove(prev.c_str());
    const unsigned attempts = 4;

    // Control: the uncheckpointed campaign.
    attack::AttackResult straight;
    {
        sys::HostSystem host(campaignHost(5));
        attack::HyperHammerAttack attack(host, campaignVm(),
                                         host.dram().mapping(),
                                         campaignAttack());
        (void)attack.profilePhase();
        straight = attack.runAttempts(attempts, 2);
    }

    // Checkpoint every trial, "crash" after the second.
    {
        sys::HostSystem host(campaignHost(5));
        attack::HyperHammerAttack attack(host, campaignVm(),
                                         host.dram().mapping(),
                                         campaignAttack());
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.stopAfterTrials = 2;
        const attack::AttackResult partial =
            attack.runAttempts(attempts, 2, policy);
        if (partial.status == base::Status(base::ErrorCode::Busy)) {
            EXPECT_EQ(partial.attempts, 2u);
        }
    }

    // Corrupt the newest checkpoint: resume must fall back to the
    // rotated previous file and still finish identically.
    std::vector<uint8_t> newest = readFile(path);
    ASSERT_FALSE(newest.empty());
    newest[newest.size() / 2] ^= 0x10;
    writeFile(path, newest);

    attack::AttackResult resumed;
    {
        sys::HostSystem host(campaignHost(5));
        attack::HyperHammerAttack attack(host, campaignVm(),
                                         host.dram().mapping(),
                                         campaignAttack());
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.resume = true;
        resumed = attack.runAttempts(attempts, 2, policy);
    }
    EXPECT_GT(resumed.resumedTrials, 0u);

    EXPECT_EQ(straight.success, resumed.success);
    EXPECT_EQ(straight.attempts, resumed.attempts);
    EXPECT_EQ(straight.totalTime, resumed.totalTime);
    ASSERT_EQ(straight.outcomes.size(), resumed.outcomes.size());
    for (size_t i = 0; i < straight.outcomes.size(); ++i) {
        EXPECT_EQ(straight.outcomes[i].duration,
                  resumed.outcomes[i].duration)
            << "trial " << i;
    }
    EXPECT_TRUE(straight.stats.attemptSeconds.bitwiseEqual(
        resumed.stats.attemptSeconds));
    std::remove(path.c_str());
    std::remove(prev.c_str());
}

// --- defense persistence --------------------------------------------------

std::vector<uint8_t>
defenseSetBytes(const mitigate::DefenseSet &set)
{
    base::ArchiveWriter w;
    set.saveState(w);
    return w.buffer();
}

TEST(DefenseSnapshot, EveryStackRoundTripsByteIdentically)
{
    for (const char *spec :
         {"quarantine", "siloz", "trr-ecc", "catt", "catt-hole",
          "siloz+trr-ecc", "quarantine+catt"}) {
        auto saved = mitigate::makeDefenseSet(spec);
        ASSERT_TRUE(saved.ok()) << spec;
        const std::vector<uint8_t> bytes = defenseSetBytes(*saved);

        auto restored = mitigate::makeDefenseSet(spec);
        ASSERT_TRUE(restored.ok()) << spec;
        base::ArchiveReader r(bytes);
        ASSERT_TRUE(restored->loadState(r).ok()) << spec;
        EXPECT_TRUE(r.atEnd()) << spec;
        EXPECT_EQ(defenseSetBytes(*restored), bytes) << spec;
    }
}

TEST(DefenseSnapshot, TunedKnobsSurviveTheRoundTrip)
{
    mitigate::CattPartition tuned;
    tuned.kernelBytes = 123_MiB;
    tuned.doubleOwnershipHole = true;
    base::ArchiveWriter w;
    tuned.saveState(w);

    mitigate::CattPartition fresh;
    base::ArchiveReader r(w.buffer());
    ASSERT_TRUE(fresh.loadState(r).ok());
    EXPECT_EQ(fresh.kernelBytes, 123_MiB);
    EXPECT_TRUE(fresh.doubleOwnershipHole);
    base::ArchiveWriter w2;
    fresh.saveState(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(DefenseSnapshot, CorruptionMatrixRejectsEveryTruncation)
{
    // Truncation at every byte boundary must be rejected -- the
    // sticky-failure reader guarantees no prefix parses as a
    // complete stack -- and a failed load must not corrupt the
    // receiving stack.
    auto set = mitigate::makeDefenseSet("siloz+trr-ecc");
    ASSERT_TRUE(set.ok());
    const std::vector<uint8_t> bytes = defenseSetBytes(*set);
    for (size_t len = 0; len < bytes.size(); ++len) {
        auto victim = mitigate::makeDefenseSet("siloz+trr-ecc");
        ASSERT_TRUE(victim.ok());
        std::vector<uint8_t> prefix(bytes.begin(),
                                    bytes.begin() + len);
        base::ArchiveReader r(prefix);
        EXPECT_FALSE(victim->loadState(r).ok()) << "prefix " << len;
    }
}

TEST(DefenseSnapshot, ForeignStackStateRejected)
{
    // A payload whose defense names or stack length do not match the
    // receiving stack must be refused: resuming a siloz campaign from
    // a catt checkpoint would silently evaluate the wrong defense.
    auto siloz = mitigate::makeDefenseSet("siloz");
    auto catt = mitigate::makeDefenseSet("catt");
    auto stacked = mitigate::makeDefenseSet("siloz+trr-ecc");
    ASSERT_TRUE(siloz.ok());
    ASSERT_TRUE(catt.ok());
    ASSERT_TRUE(stacked.ok());

    const std::vector<uint8_t> siloz_bytes = defenseSetBytes(*siloz);
    base::ArchiveReader into_catt(siloz_bytes);
    EXPECT_FALSE(catt->loadState(into_catt).ok());

    base::ArchiveReader into_stacked(siloz_bytes);
    EXPECT_FALSE(stacked->loadState(into_stacked).ok());

    const std::vector<uint8_t> stacked_bytes =
        defenseSetBytes(*stacked);
    base::ArchiveReader into_siloz(stacked_bytes);
    EXPECT_FALSE(siloz->loadState(into_siloz).ok());
}

TEST(Checkpoint, DefenseAttachmentMismatchRejected)
{
    const std::string path = tempPath("campaign_defended.ckpt");
    const std::string prev =
        path + snapshot::kCheckpointPrevSuffix;
    std::remove(path.c_str());
    std::remove(prev.c_str());

    auto defenses = mitigate::makeDefenseSet("quarantine");
    ASSERT_TRUE(defenses.ok());
    sys::SystemConfig host_cfg = campaignHost(5);
    defenses->applyHostConfig(host_cfg);
    vm::VmConfig vm_cfg = campaignVm();
    defenses->applyVmConfig(vm_cfg);

    // Checkpoint one trial of the defended campaign.
    {
        sys::HostSystem host(host_cfg);
        attack::HyperHammerAttack attack(host, vm_cfg,
                                         host.dram().mapping(),
                                         campaignAttack());
        attack.attachDefenses(&*defenses);
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.stopAfterTrials = 1;
        (void)attack.runAttempts(3, 1, policy);
    }

    // With a fresh stack of the same spec attached the checkpoint is
    // accepted and the campaign picks up after the stored trial.
    {
        auto resumed_set = mitigate::makeDefenseSet("quarantine");
        ASSERT_TRUE(resumed_set.ok());
        sys::HostSystem host(host_cfg);
        attack::HyperHammerAttack attack(host, vm_cfg,
                                         host.dram().mapping(),
                                         campaignAttack());
        attack.attachDefenses(&*resumed_set);
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.resume = true;
        const attack::AttackResult result =
            attack.runAttempts(2, 1, policy);
        EXPECT_GT(result.resumedTrials, 0u);
    }

    // Resuming the same defended world WITHOUT the stack attached
    // must start over: a defended checkpoint never resumes into an
    // undefended campaign. (Runs last -- its campaign rewrites the
    // checkpoint file as undefended once the resume is refused.)
    {
        sys::HostSystem host(host_cfg);
        attack::HyperHammerAttack attack(host, vm_cfg,
                                         host.dram().mapping(),
                                         campaignAttack());
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.resume = true;
        const attack::AttackResult result =
            attack.runAttempts(2, 1, policy);
        EXPECT_EQ(result.resumedTrials, 0u);
    }
    std::remove(path.c_str());
    std::remove(prev.c_str());
}

TEST(Checkpoint, MismatchedCampaignCheckpointIgnored)
{
    const std::string path = tempPath("campaign_mismatch.ckpt");
    const std::string prev =
        path + snapshot::kCheckpointPrevSuffix;
    std::remove(path.c_str());
    std::remove(prev.c_str());

    // Write a checkpoint under seed 5...
    {
        sys::HostSystem host(campaignHost(5));
        attack::HyperHammerAttack attack(host, campaignVm(),
                                         host.dram().mapping(),
                                         campaignAttack());
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.stopAfterTrials = 1;
        (void)attack.runAttempts(3, 1, policy);
    }
    // ...and resume under seed 6: the fingerprint must reject it and
    // the campaign must start over rather than mix foreign outcomes.
    {
        sys::HostSystem host(campaignHost(6));
        attack::HyperHammerAttack attack(host, campaignVm(),
                                         host.dram().mapping(),
                                         campaignAttack());
        (void)attack.profilePhase();
        snapshot::CheckpointPolicy policy;
        policy.path = path;
        policy.everyTrials = 1;
        policy.resume = true;
        const attack::AttackResult result =
            attack.runAttempts(2, 1, policy);
        EXPECT_EQ(result.resumedTrials, 0u);
    }
    std::remove(path.c_str());
    std::remove(prev.c_str());
}

} // namespace
} // namespace hh
