/**
 * @file
 * Tests of guest-side paging: page-table walks through guest memory,
 * THP policy, and the end-to-end bit-preservation property that makes
 * the attack's virtual-address reasoning sound (Section 4.1):
 * GVA bits 0..20 == GPA bits 0..20 == HPA bits 0..20 under double THP.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"
#include "vm/guest_paging.h"
#include "vm/virtual_machine.h"

namespace hh::vm {
namespace {

class GuestPagingTest : public ::testing::Test
{
  protected:
    GuestPagingTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 512_MiB;
        dram_cfg.fault.weakCellsPerRow = 0;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 512_MiB / kPageSize;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);

        VmConfig vm_cfg;
        vm_cfg.bootMemBytes = 16_MiB;
        vm_cfg.virtioMemRegionSize = 256_MiB;
        vm_cfg.virtioMemPlugged = 128_MiB;
        machine = std::make_unique<VirtualMachine>(*dram, *buddy,
                                                   vm_cfg, 1);
    }

    /** Table pages live in the top 4 MiB of boot RAM. */
    std::unique_ptr<GuestPaging>
    paging(ThpPolicy policy)
    {
        return std::make_unique<GuestPaging>(
            *machine, GuestPhysAddr(12_MiB), 4_MiB, policy);
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
    std::unique_ptr<VirtualMachine> machine;
};

TEST_F(GuestPagingTest, Map4kTranslateReadWrite)
{
    auto mmu = paging(ThpPolicy::Never);
    const GuestVirtAddr gva(0x7f00'0000'0000ull);
    const GuestPhysAddr backing = kVirtioMemRegionStart;
    ASSERT_TRUE(mmu->mapAnonymous(gva, 16 * kPageSize, backing).ok());

    auto gpa = mmu->translate(gva + 5 * kPageSize + 0x123);
    ASSERT_TRUE(gpa.ok());
    EXPECT_EQ(gpa->value(),
              backing.value() + 5 * kPageSize + 0x123);

    ASSERT_TRUE(mmu->write64(gva + 0x10, 0xfeedface).ok());
    EXPECT_EQ(mmu->read64(gva + 0x10).valueOr(0), 0xfeedfaceu);
    // Visible at the GPA too (same memory).
    EXPECT_EQ(machine->read64(backing + 0x10).valueOr(0), 0xfeedfaceu);

    auto huge = mmu->backedByHugePage(gva);
    ASSERT_TRUE(huge.ok());
    EXPECT_FALSE(*huge);
}

TEST_F(GuestPagingTest, ThpAlwaysUsesHugePages)
{
    auto mmu = paging(ThpPolicy::Always);
    const GuestVirtAddr gva(0x7f00'0020'0000ull); // 2 MB aligned
    ASSERT_TRUE(gva.value() % kHugePageSize == 0);
    ASSERT_TRUE(
        mmu->mapAnonymous(gva, 2 * kHugePageSize,
                          kVirtioMemRegionStart).ok());
    auto huge = mmu->backedByHugePage(gva);
    ASSERT_TRUE(huge.ok());
    EXPECT_TRUE(*huge);
    // Few table pages: root + PDPT + PD, no PT at all.
    EXPECT_LE(mmu->tablePagesUsed(), 3u);
}

TEST_F(GuestPagingTest, MisalignedRangesFallBackTo4k)
{
    auto mmu = paging(ThpPolicy::Always);
    // GVA 2 MB aligned but backing is not: no hugepage possible.
    const GuestVirtAddr gva(0x7f00'0040'0000ull);
    ASSERT_TRUE(mmu->mapAnonymous(gva, kHugePageSize,
                                  kVirtioMemRegionStart + kPageSize)
                    .ok());
    auto huge = mmu->backedByHugePage(gva);
    ASSERT_TRUE(huge.ok());
    EXPECT_FALSE(*huge);
    // Translation is still correct page by page.
    auto gpa = mmu->translate(gva + 7 * kPageSize);
    ASSERT_TRUE(gpa.ok());
    EXPECT_EQ(gpa->value(),
              (kVirtioMemRegionStart + kPageSize + 7 * kPageSize)
                  .value());
}

TEST_F(GuestPagingTest, UnmapAndDoubleMap)
{
    auto mmu = paging(ThpPolicy::Never);
    const GuestVirtAddr gva(0x1000'0000ull);
    ASSERT_TRUE(mmu->mapAnonymous(gva, kPageSize,
                                  kVirtioMemRegionStart).ok());
    EXPECT_EQ(mmu->mapAnonymous(gva, kPageSize, kVirtioMemRegionStart)
                  .error(),
              base::ErrorCode::Exists);
    ASSERT_TRUE(mmu->unmap(gva).ok());
    EXPECT_FALSE(mmu->translate(gva).ok());
    EXPECT_TRUE(mmu->mapAnonymous(gva, kPageSize,
                                  kVirtioMemRegionStart).ok());
}

TEST_F(GuestPagingTest, TranslateUnmappedFails)
{
    auto mmu = paging(ThpPolicy::Never);
    EXPECT_FALSE(mmu->translate(GuestVirtAddr(0xdead'0000ull)).ok());
    EXPECT_FALSE(mmu->read64(GuestVirtAddr(0xdead'0000ull)).ok());
}

TEST_F(GuestPagingTest, TableSpaceExhaustion)
{
    // A tiny table region cannot map sparse 4 KB pages forever.
    GuestPaging tiny(*machine, GuestPhysAddr(12_MiB), 4 * kPageSize,
                     ThpPolicy::Never);
    base::Status last = base::Status::success();
    for (uint64_t i = 0; i < 64 && last.ok(); ++i) {
        last = tiny.mapAnonymous(
            GuestVirtAddr(1_GiB + i * 1_GiB), kPageSize,
            kVirtioMemRegionStart);
    }
    EXPECT_EQ(last.error(), base::ErrorCode::NoMemory);
}

TEST_F(GuestPagingTest, WalkChargesGuestMemoryTime)
{
    auto mmu = paging(ThpPolicy::Never);
    const GuestVirtAddr gva(0x2000'0000ull);
    ASSERT_TRUE(mmu->mapAnonymous(gva, kPageSize,
                                  kVirtioMemRegionStart).ok());
    const base::SimTime before = clock.now();
    EXPECT_TRUE(mmu->translate(gva).ok());
    EXPECT_GT(clock.now(), before);
}

TEST_F(GuestPagingTest, DoubleThpPreservesLow21Bits)
{
    // The Section 4.1 property, end to end: GVA -> GPA (guest THP)
    // -> HPA (host THP) preserves bits 0..20. This is what lets the
    // attacker compute same-bank relations from virtual addresses.
    auto mmu = paging(ThpPolicy::Always);
    const GuestVirtAddr gva(0x7f80'0000'0000ull);
    const uint64_t bytes = 8 * kHugePageSize;
    ASSERT_TRUE(
        mmu->mapAnonymous(gva, bytes, kVirtioMemRegionStart).ok());

    for (uint64_t off = 0; off < bytes; off += 0x1'2345) {
        const GuestVirtAddr va = gva + off;
        auto gpa = mmu->translate(va);
        ASSERT_TRUE(gpa.ok());
        auto hpa = machine->debugTranslate(*gpa);
        ASSERT_TRUE(hpa.ok());
        EXPECT_EQ(va.value() & (kHugePageSize - 1),
                  gpa->value() & (kHugePageSize - 1));
        EXPECT_EQ(gpa->value() & (kHugePageSize - 1),
                  hpa->value() & (kHugePageSize - 1));
    }
}

TEST_F(GuestPagingTest, Without4kThpNoPreservation)
{
    // Counter-property: with guest THP off, only bits 0..11 survive,
    // which is why the attack requires THP (Section 4.1).
    auto mmu = paging(ThpPolicy::Never);
    const GuestVirtAddr gva(0x7f80'0000'0000ull);
    // Back a 2 MB-aligned GVA with an intentionally skewed GPA.
    ASSERT_TRUE(mmu->mapAnonymous(gva, kPageSize,
                                  kVirtioMemRegionStart
                                      + 3 * kPageSize).ok());
    auto gpa = mmu->translate(gva);
    ASSERT_TRUE(gpa.ok());
    EXPECT_NE(gva.value() & (kHugePageSize - 1),
              gpa->value() & (kHugePageSize - 1));
    EXPECT_EQ(gva.value() & (kPageSize - 1),
              gpa->value() & (kPageSize - 1));
}

} // namespace
} // namespace hh::vm
