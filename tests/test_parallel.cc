/**
 * @file
 * Tests of the parallel Monte-Carlo trial engine: the thread pool and
 * parallelFor/parallelFindFirst loops, per-stream seed derivation,
 * mergeable statistics, and the determinism contract of
 * HyperHammerAttack::runAttempts -- the same root seed must produce
 * bitwise-identical merged results at 1, 2, and 8 threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "attack/orchestrator.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/thread_pool.h"

namespace hh {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob)
{
    base::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after a wait().
    for (int i = 0; i < 50; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    base::ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_GE(base::ThreadPool::defaultThreads(), 1u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        std::vector<std::atomic<int>> visits(1000);
        base::parallelFor(visits.size(), threads,
                          [&](uint64_t i) { ++visits[i]; });
        for (const std::atomic<int> &count : visits)
            EXPECT_EQ(count.load(), 1);
    }
}

TEST(ParallelFor, SlotWritesMatchSerialLoop)
{
    std::vector<uint64_t> serial(500), parallel(500);
    for (uint64_t i = 0; i < serial.size(); ++i)
        serial[i] = base::mix64(i, 17);
    base::parallelFor(parallel.size(), 8, [&](uint64_t i) {
        parallel[i] = base::mix64(i, 17);
    });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesBodyExceptions)
{
    EXPECT_THROW(
        base::parallelFor(64, 4,
                          [](uint64_t i) {
                              if (i == 13)
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

TEST(ParallelFindFirst, ReturnsSmallestHitAtAnyThreadCount)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        std::vector<std::atomic<int>> visits(200);
        const uint64_t first = base::parallelFindFirst(
            visits.size(), threads, [&](uint64_t i) {
                ++visits[i];
                return i == 37 || i == 73;
            });
        EXPECT_EQ(first, 37u);
        // The prefix up to the hit ran exactly once; speculative
        // trials past it at most once.
        for (uint64_t i = 0; i <= first; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "index " << i;
        for (uint64_t i = first + 1; i < visits.size(); ++i)
            EXPECT_LE(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFindFirst, NoHitReturnsN)
{
    const uint64_t n = 100;
    EXPECT_EQ(base::parallelFindFirst(n, 4,
                                      [](uint64_t) { return false; }),
              n);
    EXPECT_EQ(base::parallelFindFirst(0, 4,
                                      [](uint64_t) { return true; }),
              0u);
}

TEST(SeedSequence, StreamsAreIndexedNotDrawn)
{
    const base::SeedSequence seq(42);
    // Pure function of (root, index): order of queries is irrelevant.
    const uint64_t s3 = seq.seed(3);
    const uint64_t s0 = seq.seed(0);
    EXPECT_EQ(seq.seed(3), s3);
    EXPECT_EQ(seq.seed(0), s0);
    EXPECT_NE(s0, s3);
    // Stream 0 is not the root itself, and different roots diverge.
    EXPECT_NE(s0, 42u);
    EXPECT_NE(base::SeedSequence(43).seed(0), s0);
    // Adjacent streams produce uncorrelated draws.
    base::Rng a = seq.stream(1);
    base::Rng b = seq.stream(2);
    unsigned same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_EQ(same, 0u);
}

TEST(RunningStats, MergeMatchesSequentialAdds)
{
    base::RunningStats whole, left, right;
    base::Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(5.0, 2.0);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    // Sums agree up to float non-associativity (split vs one chain).
    EXPECT_NEAR(left.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()));
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmptySides)
{
    base::RunningStats filled, empty;
    filled.add(1.0);
    filled.add(3.0);

    base::RunningStats copy = filled;
    copy.merge(empty); // no-op
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_DOUBLE_EQ(copy.mean(), 2.0);

    empty.merge(filled); // adopt
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
    EXPECT_DOUBLE_EQ(empty.min(), 1.0);
    EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(Histogram, MergeSumsBucketsExactly)
{
    base::Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.add(1.5);
    a.add(-1.0); // underflow
    b.add(1.7);
    b.add(25.0); // overflow
    b.add(9.9);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.bucket(1), 2u);
    EXPECT_EQ(a.bucket(9), 1u);
    EXPECT_EQ(a.underflowCount(), 1u);
    EXPECT_EQ(a.overflowCount(), 1u);
}

TEST(Series, MergeAppendsPoints)
{
    base::Series a("a"), b("b");
    a.add(1.0, 2.0);
    b.add(3.0, 4.0);
    b.add(5.0, 6.0);
    a.merge(b);
    ASSERT_EQ(a.data().size(), 3u);
    EXPECT_EQ(a.data()[1].x, 3.0);
    EXPECT_EQ(a.data()[2].y, 6.0);
}

// --- Orchestrator batch engine ------------------------------------

sys::SystemConfig
trialHostConfig(uint64_t seed = 42)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed)
        .withMemory(512_MiB);
    cfg.dram.fault.weakCellsPerRow *= 6.0;
    return cfg;
}

vm::VmConfig
trialVmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 32_MiB;
    cfg.virtioMemRegionSize = 512_MiB;
    cfg.virtioMemPlugged = 320_MiB;
    return cfg;
}

attack::AttackConfig
trialAttackConfig()
{
    attack::AttackConfig cfg;
    cfg.steering.exhaustMappings = 1'200;
    return cfg;
}

void
expectSameOutcome(const attack::AttemptOutcome &a,
                  const attack::AttemptOutcome &b, size_t index)
{
    EXPECT_EQ(a.success, b.success) << "attempt " << index;
    EXPECT_EQ(a.bitsTargeted, b.bitsTargeted) << "attempt " << index;
    EXPECT_EQ(a.releasedSubBlocks, b.releasedSubBlocks)
        << "attempt " << index;
    EXPECT_EQ(a.demotions, b.demotions) << "attempt " << index;
    EXPECT_EQ(a.changedPages, b.changedPages) << "attempt " << index;
    EXPECT_EQ(a.epteCandidates, b.epteCandidates)
        << "attempt " << index;
    EXPECT_EQ(a.duration, b.duration) << "attempt " << index;
}

void
expectSameStats(const base::RunningStats &a, const base::RunningStats &b)
{
    // Bitwise-identical, not just close: the merge sequence must not
    // depend on the thread count.
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

TEST(RunAttempts, BitwiseIdenticalAcrossThreadCounts)
{
    sys::HostSystem host(trialHostConfig());
    attack::HyperHammerAttack attack(host, trialVmConfig(),
                                     host.dram().mapping(),
                                     trialAttackConfig());
    (void)attack.profilePhase();
    ASSERT_GT(attack.hostProfile().size(), 0u);

    const attack::AttackResult ref = attack.runAttempts(4, 1);
    EXPECT_EQ(ref.outcomes.size(), ref.attempts);
    for (unsigned threads : {2u, 8u}) {
        const attack::AttackResult got = attack.runAttempts(4, threads);
        EXPECT_EQ(got.success, ref.success) << threads << " threads";
        EXPECT_EQ(got.attempts, ref.attempts) << threads << " threads";
        EXPECT_EQ(got.totalTime, ref.totalTime) << threads << " threads";
        ASSERT_EQ(got.outcomes.size(), ref.outcomes.size());
        for (size_t i = 0; i < ref.outcomes.size(); ++i)
            expectSameOutcome(got.outcomes[i], ref.outcomes[i], i);
        expectSameStats(got.stats.attemptSeconds,
                        ref.stats.attemptSeconds);
        expectSameStats(got.stats.bitsTargeted, ref.stats.bitsTargeted);
        expectSameStats(got.stats.releasedSubBlocks,
                        ref.stats.releasedSubBlocks);
        expectSameStats(got.stats.demotions, ref.stats.demotions);
        expectSameStats(got.stats.changedPages, ref.stats.changedPages);
        expectSameStats(got.stats.epteCandidates,
                        ref.stats.epteCandidates);
    }
}

TEST(RunAttempts, TrialsAreIndependentSamples)
{
    sys::HostSystem host(trialHostConfig(7));
    attack::HyperHammerAttack attack(host, trialVmConfig(),
                                     host.dram().mapping(),
                                     trialAttackConfig());
    (void)attack.profilePhase();
    ASSERT_GT(attack.hostProfile().size(), 0u);

    const attack::AttackResult result = attack.runAttempts(3, 2);
    EXPECT_GE(result.attempts, 1u);
    EXPECT_LE(result.attempts, 3u);
    EXPECT_EQ(result.outcomes.size(), result.attempts);
    EXPECT_EQ(result.stats.attemptSeconds.count(), result.attempts);
    // Every trial pays its own VM spawn on its own cloned host.
    for (const attack::AttemptOutcome &outcome : result.outcomes)
        EXPECT_GT(outcome.duration, 10 * base::kSecond);
    // Aggregate time is the sum of per-trial durations.
    base::SimTime total = 0;
    for (const attack::AttemptOutcome &outcome : result.outcomes)
        total += outcome.duration;
    EXPECT_EQ(result.totalTime, total);
    // Success, if any, terminates the batch exactly there.
    for (size_t i = 0; i < result.outcomes.size(); ++i) {
        EXPECT_EQ(result.outcomes[i].success,
                  result.success && i + 1 == result.outcomes.size());
    }
}

TEST(RunAttempts, SerialRunAlsoPopulatesAggregates)
{
    sys::HostSystem host(trialHostConfig());
    attack::HyperHammerAttack attack(host, trialVmConfig(),
                                     host.dram().mapping(),
                                     trialAttackConfig());
    (void)attack.profilePhase();
    attack::AttackConfig cfg = trialAttackConfig();
    (void)cfg;
    const attack::AttackResult result = attack.run();
    EXPECT_EQ(result.stats.attemptSeconds.count(),
              result.outcomes.size());
}

} // namespace
} // namespace hh
