/**
 * @file
 * The ISSUE 5 acceptance matrix: resume-identity must hold for at
 * least 8 seeds x {1, 4} threads x a randomized FaultPlan. Each cell
 * kills a checkpointed campaign mid-run, resumes it in a fresh
 * process-equivalent, and requires the merged result to be bitwise
 * identical to a straight uncheckpointed run -- field by field via
 * snapshot::diffAttackResults, including the Welford statistics.
 *
 * Slow by design (each cell runs three campaigns); registered under
 * the tier2 label.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mitigate/defense.h"
#include "snapshot/resume_identity.h"
#include "sys/host_system.h"

namespace hh {
namespace {

sys::SystemConfig
hostConfig(uint64_t seed)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed)
        .withMemory(1_GiB)
        .withFaults(fault::FaultPlan::randomized(seed * 31 + 7, 0.5));
    // Denser weak cells so profiling finds bits in a 1 GiB host.
    cfg.dram.fault.weakCellsPerRow *= 4.0;
    return cfg;
}

vm::VmConfig
vmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

attack::AttackConfig
attackConfig()
{
    attack::AttackConfig cfg;
    cfg.maxAttempts = 4;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

std::vector<uint8_t>
worldBytes(const sys::HostSystem &host)
{
    base::ArchiveWriter w;
    host.saveState(w);
    return w.buffer();
}

// A CoW fork of a world and a snapshot-load of the same world must be
// the same world, bit for bit: fork() traverses the shared template
// without materializing it, and the resulting state stream has to be
// indistinguishable from the save/load path's.
TEST(WorldForkIdentity, ForkOfWorldEqualsLoadOfItsSnapshot)
{
    const sys::SystemConfig cfg = hostConfig(3);
    sys::HostSystem host(cfg);
    host.pageCacheChurn(64); // move past the pristine boot state
    const std::string path =
        ::testing::TempDir() + "fork_vs_load.snap";
    ASSERT_TRUE(host.saveSnapshot(path).ok());

    host.freezeMemory();
    const std::unique_ptr<sys::HostSystem> forked = host.fork();

    sys::HostSystem loaded(cfg);
    ASSERT_TRUE(loaded.loadSnapshot(path).ok());

    EXPECT_EQ(worldBytes(*forked), worldBytes(loaded));
}

// The identity the Monte-Carlo engine rests on: forking the pristine
// template with a trial seed reproduces a freshly constructed
// HostSystem bit for bit, for every trial seed derivation.
TEST(WorldForkIdentity, ForkTrialMatchesFreshConstruction)
{
    const sys::SystemConfig cfg = hostConfig(5);
    const std::unique_ptr<const sys::HostSystem> tmpl =
        sys::HostSystem::makeForkTemplate(cfg);
    ASSERT_TRUE(tmpl->isPristineTemplate());
    for (uint64_t trial = 0; trial < 4; ++trial) {
        sys::SystemConfig trial_cfg = cfg;
        trial_cfg.seed = base::SeedSequence(cfg.seed).seed(trial);
        sys::HostSystem fresh(trial_cfg);
        const std::unique_ptr<sys::HostSystem> forked =
            sys::HostSystem::forkTrial(*tmpl, trial_cfg);
        EXPECT_EQ(worldBytes(*forked), worldBytes(fresh))
            << "trial " << trial;
    }
}

class ResumeIdentityMatrix
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>>
{
};

TEST_P(ResumeIdentityMatrix, KillResumeIsBitwiseIdentical)
{
    const uint64_t seed = std::get<0>(GetParam());
    const unsigned threads = std::get<1>(GetParam());

    const sys::SystemConfig host_cfg = hostConfig(seed);

    snapshot::ResumeIdentityOptions options;
    options.attempts = 4;
    options.threads = threads;
    options.checkpointEvery = 1;
    options.killAfterTrials = 2;
    options.checkpointPath = ::testing::TempDir() + "resume_identity_s" +
        std::to_string(seed) + "_t" + std::to_string(threads) + ".ckpt";

    const snapshot::ResumeIdentityReport report =
        snapshot::verifyResumeIdentity(host_cfg, vmConfig(),
                                       host_cfg.dram.mapping,
                                       attackConfig(), options);

    std::string mismatch_list;
    for (const std::string &field : report.mismatches)
        mismatch_list += " " + field;
    EXPECT_TRUE(report.identical)
        << "seed " << seed << ", " << threads
        << " thread(s): mismatched fields:" << mismatch_list;
    // A campaign that finished before the kill point never exercises
    // resume; the matrix parameters are tuned so that most cells kill
    // midway, but identity must hold either way.
    if (report.killedMidway) {
        EXPECT_GT(report.resumedTrials, 0u)
            << "seed " << seed << ", " << threads << " thread(s)";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ResumeIdentityMatrix,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, unsigned>>
           &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
            "_threads" + std::to_string(std::get<1>(info.param));
    });

// Kill/resume identity on a defended world: SilozDomains installs a
// multi-domain buddy layout with pinned guard rows, so this cell
// drives the domained allocator's state through the whole
// checkpoint/restore pipeline -- the snapshot must reproduce domain
// free lists and guard reservations bit for bit.
TEST(ResumeIdentityDefended, SilozWorldKillResumeIsBitwiseIdentical)
{
    mitigate::SilozDomains siloz;
    sys::SystemConfig host_cfg = hostConfig(3);
    siloz.applyHostConfig(host_cfg);

    snapshot::ResumeIdentityOptions options;
    options.attempts = 4;
    options.threads = 2;
    options.checkpointEvery = 1;
    options.killAfterTrials = 2;
    options.checkpointPath =
        ::testing::TempDir() + "resume_identity_siloz.ckpt";

    const snapshot::ResumeIdentityReport report =
        snapshot::verifyResumeIdentity(host_cfg, vmConfig(),
                                       host_cfg.dram.mapping,
                                       attackConfig(), options);
    std::string mismatch_list;
    for (const std::string &field : report.mismatches)
        mismatch_list += " " + field;
    EXPECT_TRUE(report.identical)
        << "mismatched fields:" << mismatch_list;
}

} // namespace
} // namespace hh
