// hh-lint fixture: every line with an `// expect:` marker must produce
// exactly that finding, and nothing else in the file may fire.
// These files are never compiled; they only feed the linter self-test.
#include <cstdlib>
#include <random>

int
nondeterministicSample()
{
    std::random_device dev;     // expect: raw-rand
    std::mt19937 gen(dev());    // expect: raw-rand
    (void)gen;
    return rand();              // expect: raw-rand
}

int
mentionsAreFine()
{
    // rand() and mt19937 in comments or strings must not fire:
    const char *doc = "uses rand() internally";
    return doc[0];
}
