// hh-lint fixture: a properly justified waiver suppresses its rule --
// this file must produce zero findings (self-test treats any finding
// without an `// expect:` marker as a failure).

int *
justifiedWaiver()
{
    // hh-lint: allow(naked-new) -- fixture proving justified waivers work
    return new int(7);
}

int *
sameLineWaiver()
{
    return new int(9); // hh-lint: allow(naked-new) -- same-line form
}
