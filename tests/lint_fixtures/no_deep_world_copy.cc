// Fixture for the no-deep-world-copy rule: world-state types clone
// through their CoW fork paths (HostSystem::forkTrial,
// DramSystem::forkFrom, BuddyAllocator::forkFrom, FrameStore::fork);
// a copy constructor that is not `= delete`d reintroduces the
// per-trial deep world clone the forking refactor removed.

namespace hh::sys {

class HostSystem
{
  public:
    HostSystem(const HostSystem &other); // expect: no-deep-world-copy
    HostSystem &operator=(const HostSystem &) = delete;
};

class DramSystem
{
  public:
    DramSystem(const hh::sys::DramSystem &src); // expect: no-deep-world-copy
};

class BuddyAllocator
{
  public:
    // Deleted copies are the sanctioned spelling: no finding.
    BuddyAllocator(const BuddyAllocator &) = delete;
    // Tag-dispatched fork ctors take the source second: no finding.
    struct ForkTag
    {};
    BuddyAllocator(ForkTag, const BuddyAllocator &src);
};

// Near-miss: non-world value types may copy freely.
class RowStats
{
  public:
    RowStats(const RowStats &other);
};

} // namespace hh::sys
