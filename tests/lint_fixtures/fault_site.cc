// Fixture for the fault-site rule: every HH_FAULT_POINT must name a
// FaultSite registered in src/fault/fault_sites.def, and each site
// may be consumed by at most one injection point (site identity seeds
// the per-site fault stream, so two consumers would share a draw
// sequence and break determinism). Not compiled; linted only.

#include "fault/fault.h"

namespace {

void probes(hh::fault::FaultInjector *inj)
{
    // Registered, first consumer: clean.
    (void)HH_FAULT_POINT(inj, hh::fault::FaultSite::DramRead);
    // Second consumer of the same site.
    (void)HH_FAULT_POINT(inj, hh::fault::FaultSite::DramRead); // expect: fault-site
    // Identifier missing from fault_sites.def.
    (void)HH_FAULT_POINT(inj, hh::fault::FaultSite::Bogus); // expect: fault-site
    // A multi-line call is still one injection point.
    (void)HH_FAULT_POINT( // expect: fault-site
        inj, hh::fault::FaultSite::DramRead);
    // Waived duplicate: suppressed.
    // hh-lint: allow(fault-site) -- fixture demonstrating a waiver
    (void)HH_FAULT_POINT(inj, hh::fault::FaultSite::DramEcc);
    (void)HH_FAULT_POINT(inj, hh::fault::FaultSite::DramEcc); // hh-lint: allow(fault-site) -- fixture demonstrating a waiver
}

} // namespace
