// hh-lint fixture for unordered-iteration: range-for over an
// unordered container's implementation-defined order is banned.
#include <unordered_map>
#include <unordered_set>

int
hashOrderLeak()
{
    std::unordered_map<int, int> table;
    std::unordered_set<int> members;
    table[1] = 2;
    members.insert(3);
    int total = 0;
    for (const auto &entry : table)     // expect: unordered-iteration
        total += entry.second;
    for (int member : members)          // expect: unordered-iteration
        total += member;
    // O(1) lookups on the same containers are fine:
    total += static_cast<int>(table.count(1) + members.count(3));
    return total;
}
