// hh-lint fixture for naked-new: raw new/delete is banned; ownership
// must be RAII (make_unique, containers).

int *
leakyAlloc()
{
    int *scratch = new int(42);     // expect: naked-new
    delete scratch;                 // expect: naked-new
    return new int[8];              // expect: naked-new
}

struct NoCopy
{
    // Deleted special members must NOT fire:
    NoCopy(const NoCopy &) = delete;
    NoCopy &operator=(const NoCopy &) = delete;
};
