// Fixture for the shard-merge-only rule: campaign outcomes are
// folded through HyperHammerAttack::aggregateOutcomes (directly, or
// via shard::mergeShards), never by hand. A local BatchAggregates
// accumulator or a mutated AttackResult::stats forks the merge
// semantics, and the sharded result silently stops being
// bitwise-identical to the single-process run.

namespace hh::attack {

void
handRolledMerge(const AttackResult &partial, AttackResult &result)
{
    BatchAggregates agg;
    for (const AttemptOutcome &outcome : partial.outcomes) {
        agg.add(outcome); // expect: shard-merge-only
    }
    agg.merge(partial.stats); // expect: shard-merge-only
    result.stats.merge(agg); // expect: shard-merge-only
    result.stats.add(partial.outcomes.front()); // expect: shard-merge-only
}

double
readOnlyUsesAreFine(const AttackResult &result)
{
    // Reading merged statistics is not aggregation: no finding.
    return result.stats.demotions.sum()
        + result.stats.retries.mean();
}

AttackResult
sanctionedPath(std::vector<AttemptOutcome> outcomes)
{
    // The one true merge: no finding.
    return HyperHammerAttack::aggregateOutcomes(std::move(outcomes));
}

} // namespace hh::attack
