// hh-lint fixture for bad-waiver: a waiver without a `-- why` both
// reports bad-waiver and suppresses nothing.

int *
unjustifiedWaiver()
{
    return new int(7); // hh-lint: allow(naked-new) // expect: naked-new, bad-waiver
}
