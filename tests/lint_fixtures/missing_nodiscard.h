// hh-lint fixture for missing-nodiscard: header declarations returning
// Status/Expected must be [[nodiscard]] (a dropped Status is a
// swallowed error). Not compiled; the types need not resolve.
#ifndef HYPERHAMMER_TESTS_LINT_FIXTURES_MISSING_NODISCARD_H
#define HYPERHAMMER_TESTS_LINT_FIXTURES_MISSING_NODISCARD_H

namespace fixture {

struct Widget
{
    base::Status tryPlug(int sub_block);            // expect: missing-nodiscard
    base::Expected<int> translate(int addr) const;  // expect: missing-nodiscard

    [[nodiscard]] base::Status annotatedIsFine(int sub_block);

    // A plain data member is not a declaration-with-result:
    base::Status status;
};

} // namespace fixture

#endif // HYPERHAMMER_TESTS_LINT_FIXTURES_MISSING_NODISCARD_H
