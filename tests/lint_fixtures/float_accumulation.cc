// hh-lint fixture for float-accumulation: order-sensitive rounding
// belongs in base/stats.h (Welford/Chan), nowhere else.

double
unstableSum(const double *values, int count)
{
    double acc = 0.0;
    for (int i = 0; i < count; ++i)
        acc += values[i];       // expect: float-accumulation
    return acc;
}

unsigned long
integerSumsAreFine(const unsigned long *values, int count)
{
    unsigned long total = 0;
    for (int i = 0; i < count; ++i)
        total += values[i];
    return total;
}
