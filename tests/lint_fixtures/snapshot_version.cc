// Fixture for the snapshot-version rule: every saveState() definition
// is hashed and pinned in a snapshot_manifest.json (the real tree pins
// tools/snapshot_manifest.json; this fixture carries its own next to
// the sources, which the rule prefers when scanning a directory that
// contains one). The fixture manifest records, at version 1:
//   - Stable::saveState with its current hash   (clean)
//   - Drifted::saveState with an outdated hash  (fires at the def)
//   - Removed::saveState with no definition     (fires at the version)
// Unpinned::saveState is absent from the manifest (fires at the def),
// and Waived::saveState shows the inline escape hatch.
// Not compiled; linted only.

#include <cstdint>

namespace fixture {

class ArchiveWriter;

// Whole-manifest findings (gone structs, version mismatch) anchor to
// this line; per-struct findings anchor to their definitions.
constexpr uint32_t kSnapshotFormatVersion = 1; // expect: snapshot-version

class Stable
{
public:
    // Hash matches the manifest: no finding.
    void saveState(ArchiveWriter &w) const
    {
        (void)w;
    }
};

class Drifted
{
public:
    // The manifest pins an older body of this function.
    void saveState(ArchiveWriter &w) const // expect: snapshot-version
    {
        (void)w;
        (void)extra; // the layout change a version bump must cover
    }
    uint64_t extra = 0;
};

class Unpinned
{
public:
    // Not in the manifest at all: a new serialized struct.
    void saveState(ArchiveWriter &w) const // expect: snapshot-version
    {
        (void)w;
        (void)w;
    }
};

class Waived
{
public:
    // hh-lint: allow(snapshot-version) -- fixture demonstrating a waiver
    void saveState(ArchiveWriter &w) const
    {
        (void)w;
        (void)w;
        (void)w;
    }
};

} // namespace fixture
