// hh-lint fixture for the wall-clock rule: host time sources are
// banned outside base/sim_clock.*; virtual time only.
#include <chrono>
#include <ctime>

long
wallClockNow()
{
    const auto tick =
        std::chrono::steady_clock::now();       // expect: wall-clock
    const std::time_t stamp = time(nullptr);    // expect: wall-clock
    (void)tick;
    return static_cast<long>(stamp);
}

struct FakeHost
{
    int clockCalls = 0;
    // A member named clock() (the simulator's own accessor idiom)
    // must NOT fire:
    int clock() { return ++clockCalls; }
};

int
simulatorClockIsFine(FakeHost &host)
{
    return host.clock();
}
