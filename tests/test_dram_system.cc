/**
 * @file
 * Tests of the DramSystem facade: the timing side channel, the hammer
 * path against the ground-truth fault oracle, refresh-window capping,
 * and the TRR / ECC mitigation models.
 */

#include <gtest/gtest.h>

#include <optional>

#include "base/sim_clock.h"
#include "dram/dram_system.h"

namespace hh::dram {
namespace {

DramConfig
testConfig(uint64_t seed = 5)
{
    DramConfig cfg;
    cfg.totalBytes = 256_MiB;
    cfg.mapping = AddressMapping::i3_10100();
    cfg.seed = seed;
    cfg.fault.weakCellsPerRow = 0.02; // dense for testability
    cfg.fault.stableFraction = 1.0;   // deterministic flips
    cfg.fault.minThreshold = 50'000;
    cfg.fault.maxThreshold = 150'000;
    return cfg;
}

/** Address of the first granule of (bank, row). */
HostPhysAddr
addrIn(const AddressMapping &map, BankId bank, RowId row)
{
    const BankId cls = bank ^ map.rowClass(row);
    return HostPhysAddr(
        (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(map.classOffsets(cls).front())
           << map.interleaveShift()));
}

/** First weak (bank,row) with a given direction, plus its cell. */
struct WeakSpot
{
    BankId bank;
    RowId row;
    WeakCell cell;
};

std::optional<WeakSpot>
findWeakSpot(const DramSystem &dram, FlipDirection direction,
             RowId min_row = 2)
{
    const AddressMapping &map = dram.mapping();
    const RowId max_row = (dram.size() - 1) >> map.rowLoBit();
    for (RowId row = min_row; row + 3 < max_row; ++row) {
        for (BankId bank = 0; bank < map.bankCount(); ++bank) {
            for (const WeakCell &cell :
                 dram.faultModel().weakCellsInRow(bank, row)) {
                if (cell.direction == direction && cell.stable())
                    return WeakSpot{bank, row, cell};
            }
        }
    }
    return std::nullopt;
}

/** Fill the full row stripe of a row with a pattern. */
void
fillRow(DramSystem &dram, RowId row, uint64_t pattern)
{
    const AddressMapping &map = dram.mapping();
    const uint64_t base = static_cast<uint64_t>(row) << map.rowLoBit();
    for (uint64_t off = 0; off < map.rowStripeBytes(); off += kPageSize)
        dram.backend().fillPage((base + off) / kPageSize, pattern);
}

class DramSystemTest : public ::testing::Test
{
  protected:
    base::SimClock clock;
};

TEST_F(DramSystemTest, TimedAccessLatencies)
{
    DramSystem dram(testConfig(), clock);
    const TimingConfig &t = dram.config().timing;
    const AddressMapping &map = dram.mapping();

    const HostPhysAddr a = addrIn(map, 0, 10);
    const HostPhysAddr b = addrIn(map, 0, 20); // same bank, other row
    // First access to an idle bank: row miss.
    EXPECT_EQ(dram.timedAccess(a), t.rowMissLatency);
    // Same row again: hit.
    EXPECT_EQ(dram.timedAccess(a), t.rowHitLatency);
    // Different row, same bank: conflict.
    EXPECT_EQ(dram.timedAccess(b), t.rowConflictLatency);
    EXPECT_EQ(dram.timedAccess(a), t.rowConflictLatency);
}

TEST_F(DramSystemTest, DifferentBanksDoNotConflict)
{
    DramSystem dram(testConfig(), clock);
    const AddressMapping &map = dram.mapping();
    const HostPhysAddr a = addrIn(map, 0, 10);
    const HostPhysAddr b = addrIn(map, 1, 20);
    (void)dram.timedAccess(a);
    (void)dram.timedAccess(b);
    // Both rows stay open in their banks.
    EXPECT_EQ(dram.timedAccess(a), dram.config().timing.rowHitLatency);
    EXPECT_EQ(dram.timedAccess(b), dram.config().timing.rowHitLatency);
}

TEST_F(DramSystemTest, AccessChargesClock)
{
    DramSystem dram(testConfig(), clock);
    const base::SimTime before = clock.now();
    (void)dram.read64(HostPhysAddr(0));
    EXPECT_GT(clock.now(), before);
}

TEST_F(DramSystemTest, HammerFlipsGroundTruthCell)
{
    DramSystem dram(testConfig(), clock);
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());

    // Store the direction-matching value and hammer both neighbours.
    fillRow(dram, spot->row, ~0ull);
    const AddressMapping &map = dram.mapping();
    const std::vector<HostPhysAddr> aggressors{
        addrIn(map, spot->bank, spot->row + 1),
        addrIn(map, spot->bank, spot->row + 2)};
    const auto events = dram.hammer(aggressors, 200'000);

    bool found = false;
    for (const FlipEvent &event : events) {
        if (event.bank == spot->bank && event.row == spot->row
            && event.bitInWord == spot->cell.bitInWord()) {
            found = true;
            // The flip must be visible in memory.
            const uint64_t word = dram.backend().read64(event.wordAddr);
            EXPECT_EQ((word >> event.bitInWord) & 1, 0u);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_GT(dram.totalFlips(), 0u);
}

TEST_F(DramSystemTest, DirectionGateRespectsStoredValue)
{
    DramSystem dram(testConfig(), clock);
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());

    // Store zeros: a 1->0 cell cannot discharge further.
    fillRow(dram, spot->row, 0ull);
    const AddressMapping &map = dram.mapping();
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row + 1),
         addrIn(map, spot->bank, spot->row + 2)},
        200'000);
    for (const FlipEvent &event : events) {
        EXPECT_FALSE(event.bank == spot->bank && event.row == spot->row
                     && event.bitInWord == spot->cell.bitInWord());
    }
}

TEST_F(DramSystemTest, BelowThresholdNoFlips)
{
    DramSystem dram(testConfig(), clock);
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const AddressMapping &map = dram.mapping();
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row + 1),
         addrIn(map, spot->bank, spot->row + 2)},
        1'000); // far below minThreshold
    EXPECT_TRUE(events.empty());
}

TEST_F(DramSystemTest, AggressorRowsAreNotVictims)
{
    DramSystem dram(testConfig(), clock);
    // Find any weak row and hammer *it* together with a neighbour:
    // activated rows refresh themselves and must not flip.
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const AddressMapping &map = dram.mapping();
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row),
         addrIn(map, spot->bank, spot->row + 1)},
        200'000);
    for (const FlipEvent &event : events)
        EXPECT_FALSE(event.row == spot->row && event.bank == spot->bank);
}

TEST_F(DramSystemTest, RefreshWindowCapsDisturbance)
{
    // With many aggressor rows sharing the window, the per-row
    // activation budget falls below the flip threshold.
    DramConfig cfg = testConfig();
    cfg.fault.minThreshold = 700'000;
    cfg.fault.maxThreshold = 900'000;
    DramSystem dram(cfg, clock);
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const AddressMapping &map = dram.mapping();
    // Even 10 M rounds cannot beat a 700 k threshold: one refresh
    // window fits ~680 k activations of a two-row pattern, and the
    // counters reset across windows.
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row + 1),
         addrIn(map, spot->bank, spot->row + 2)},
        10'000'000);
    EXPECT_TRUE(events.empty());
}

TEST_F(DramSystemTest, HammerChargesRowCycles)
{
    DramSystem dram(testConfig(), clock);
    const AddressMapping &map = dram.mapping();
    const base::SimTime before = clock.now();
    (void)dram.hammer({addrIn(map, 0, 10), addrIn(map, 0, 11)},
                      100'000);
    const base::SimTime charged = clock.now() - before;
    EXPECT_EQ(charged, 2u * 100'000 * dram.config().timing.rowCycle);
}

TEST_F(DramSystemTest, TrrBlocksSmallPatterns)
{
    DramConfig cfg = testConfig();
    cfg.trr.enabled = true;
    cfg.trr.trackerCapacity = 4;
    DramSystem dram(cfg, clock);
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const AddressMapping &map = dram.mapping();
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row + 1),
         addrIn(map, spot->bank, spot->row + 2)},
        200'000);
    EXPECT_TRUE(events.empty());
    EXPECT_GT(dram.trrSuppressions(), 0u);
}

TEST_F(DramSystemTest, EccSuppressesSingleBitFlips)
{
    DramConfig cfg = testConfig();
    cfg.ecc.enabled = true;
    DramSystem dram(cfg, clock);
    const auto spot = findWeakSpot(dram, FlipDirection::OneToZero);
    ASSERT_TRUE(spot.has_value());
    fillRow(dram, spot->row, ~0ull);
    const AddressMapping &map = dram.mapping();
    const auto events = dram.hammer(
        {addrIn(map, spot->bank, spot->row + 1),
         addrIn(map, spot->bank, spot->row + 2)},
        200'000);
    EXPECT_TRUE(events.empty());
    EXPECT_GT(dram.eccCorrectedFlips(), 0u);
}

TEST_F(DramSystemTest, ScanPageFindsFlips)
{
    DramSystem dram(testConfig(), clock);
    dram.fillPage(7, 0xff);
    dram.write64(HostPhysAddr(7 * kPageSize + 16), 0xfe);
    const auto words = dram.scanPage(7, 0xff);
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0], 2u);
}

TEST(EccModel, Classification)
{
    EccModel off(EccConfig{false});
    EXPECT_EQ(off.classify(1), EccOutcome::NoEcc);
    EXPECT_TRUE(off.flipsVisible(1));

    EccModel on(EccConfig{true});
    EXPECT_EQ(on.classify(1), EccOutcome::Corrected);
    EXPECT_EQ(on.classify(2), EccOutcome::Detected);
    EXPECT_EQ(on.classify(3), EccOutcome::Uncorrectable);
    EXPECT_FALSE(on.flipsVisible(1));
    EXPECT_FALSE(on.flipsVisible(2));
    EXPECT_TRUE(on.flipsVisible(3));
}

TEST(TrrModel, SuppressionRules)
{
    TrrConfig cfg;
    cfg.enabled = true;
    cfg.trackerCapacity = 2;
    TrrModel trr(cfg);
    EXPECT_TRUE(trr.suppresses(1, 0.99));
    EXPECT_TRUE(trr.suppresses(2, 0.99));
    // Above capacity: probabilistic with p = capacity / aggressors.
    EXPECT_TRUE(trr.suppresses(4, 0.49));
    EXPECT_FALSE(trr.suppresses(4, 0.51));

    TrrModel disabled(TrrConfig{});
    EXPECT_FALSE(disabled.suppresses(1, 0.0));
}

} // namespace
} // namespace hh::dram
