/**
 * @file
 * Tests of Page Steering (Section 4.2): noise-page exhaustion via the
 * vIOMMU, voluntary releases, EPTE spraying via the NX-hugepage
 * demotion, and the end-to-end placement of EPT pages on released
 * frames -- checked against host-side ground truth.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "attack/page_steering.h"
#include "sys/host_system.h"

namespace hh::attack {
namespace {

class SteeringTest : public ::testing::Test
{
  protected:
    void
    boot(uint64_t seed = 9)
    {
        machine.reset();
        host = std::make_unique<sys::HostSystem>(
            sys::SystemConfig::s1(seed).withMemory(1_GiB));
        vm::VmConfig vm_cfg;
        vm_cfg.bootMemBytes = 64_MiB;
        vm_cfg.virtioMemRegionSize = 1_GiB;
        vm_cfg.virtioMemPlugged = 640_MiB;
        machine = host->createVm(vm_cfg);
    }

    SteeringConfig
    steeringConfig(uint32_t mappings = 4'000)
    {
        SteeringConfig cfg;
        cfg.exhaustMappings = mappings;
        return cfg;
    }

    /** A synthetic target in sub-block @p sb. */
    VulnerableBit
    fakeTarget(virtio::SubBlockId sb)
    {
        VulnerableBit bit;
        bit.victimHugePage = machine->memDevice_().subBlockGpa(sb);
        bit.wordGpa = bit.victimHugePage + 0x808;
        bit.bitInWord = 25;
        bit.exploitable = true;
        bit.releasable = true;
        bit.aggressorHugePage =
            machine->memDevice_().subBlockGpa(sb + 1);
        bit.aggressors = {bit.aggressorHugePage,
                          bit.aggressorHugePage + 256_KiB};
        return bit;
    }

    std::unique_ptr<sys::HostSystem> host;
    std::unique_ptr<vm::VirtualMachine> machine;
};

TEST_F(SteeringTest, ExhaustDropsNoiseBelowThreshold)
{
    boot();
    const uint64_t noise_before = host->noisePages();
    ASSERT_GT(noise_before, 1'024u);

    PageSteering steering(*machine, host->clock(), steeringConfig());
    uint64_t samples = 0;
    const uint64_t created = steering.exhaustNoisePages(
        [&](uint64_t) { ++samples; }, 500);
    EXPECT_GT(created, 0u);
    EXPECT_EQ(samples, created / 500);
    // Figure 3: the noise population falls below the 1,024 line.
    EXPECT_LT(host->noisePages(), 1'024u);
}

TEST_F(SteeringTest, ExhaustRespectsGroupLimits)
{
    boot();
    // Tiny per-group budget, one device: exhaust stops at the limit.
    machine.reset();
    host = std::make_unique<sys::HostSystem>(
        sys::SystemConfig::s1(9).withMemory(1_GiB));
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 256_MiB;
    vm_cfg.iommu.maxMappingsPerGroup = 100;
    machine = host->createVm(vm_cfg);

    PageSteering steering(*machine, host->clock(), steeringConfig());
    EXPECT_EQ(steering.exhaustNoisePages(), 100u);
}

TEST_F(SteeringTest, MultipleDevicesExtendTheBudget)
{
    machine.reset();
    host = std::make_unique<sys::HostSystem>(
        sys::SystemConfig::s1(9).withMemory(1_GiB));
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 256_MiB;
    vm_cfg.iommu.maxMappingsPerGroup = 100;
    vm_cfg.passthroughDevices = 3; // SR-IOV style (Section 4.2.1)
    machine = host->createVm(vm_cfg);

    PageSteering steering(*machine, host->clock(), steeringConfig());
    EXPECT_EQ(steering.exhaustNoisePages(), 300u);
}

TEST_F(SteeringTest, ReleaseUnplugsVictims)
{
    boot();
    PageSteering steering(*machine, host->clock(), steeringConfig());
    SteeringResult result;
    const std::vector<VulnerableBit> targets{fakeTarget(10),
                                             fakeTarget(20)};
    EXPECT_EQ(steering.releaseVulnerable(targets, result), 2u);
    EXPECT_FALSE(machine->memDevice_().isPlugged(10));
    EXPECT_FALSE(machine->memDevice_().isPlugged(20));
    EXPECT_TRUE(machine->memDriver().suppressAutoPlug());
    EXPECT_EQ(result.releasedHugePages.size(), 2u);
    // Duplicate victims release once.
    SteeringResult dup_result;
    const std::vector<VulnerableBit> dups{fakeTarget(30),
                                          fakeTarget(30)};
    EXPECT_EQ(steering.releaseVulnerable(dups, dup_result), 1u);
}

TEST_F(SteeringTest, SprayDemotesAndAllocatesEptPages)
{
    boot();
    PageSteering steering(*machine, host->clock(), steeringConfig());
    const uint64_t ept_before = machine->mmu().eptPageCount();
    const uint64_t demoted =
        steering.sprayEptes(64_MiB, /*excluded=*/{});
    EXPECT_EQ(demoted, 64_MiB / kHugePageSize);
    EXPECT_EQ(machine->mmu().eptPageCount(), ept_before + demoted);
    // The idling function was written to the sprayed pages.
    const auto first = machine->read64(GuestPhysAddr(0));
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(*first & 0xffffffffull, 0xe5894855u); // push rbp; mov
}

TEST_F(SteeringTest, SprayRespectsExclusions)
{
    boot();
    PageSteering steering(*machine, host->clock(), steeringConfig());
    std::unordered_set<uint64_t> excluded;
    for (GuestPhysAddr hp : machine->hugePageGpas())
        excluded.insert(hp.value());
    EXPECT_EQ(steering.sprayEptes(64_MiB, excluded), 0u);
}

TEST_F(SteeringTest, FullSteerPlacesEptesOnReleasedFrames)
{
    // The spray must out-size the small-block leftovers the exhaust
    // step regenerates (<= 511 + PCP), so use a VM with plenty of
    // hugepages relative to one released block (Section 4.2.3's
    // "512 x (N+2) EPT pages" rule).
    machine.reset();
    host = std::make_unique<sys::HostSystem>(
        sys::SystemConfig::s1(9).withMemory(4_GiB));
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 4_GiB;
    vm_cfg.virtioMemPlugged = 2_GiB + 256_MiB;
    machine = host->createVm(vm_cfg);

    // Ground truth: host frame backing the victim before release.
    const VulnerableBit target = fakeTarget(40);
    auto victim_hpa = machine->debugTranslate(target.victimHugePage);
    ASSERT_TRUE(victim_hpa.ok());
    const Pfn victim_block = victim_hpa->pfn();

    PageSteering steering(*machine, host->clock(),
                          steeringConfig(/*mappings=*/7'000));
    const SteeringResult result =
        steering.steer({target}, machine->memorySize());

    EXPECT_GT(result.iovaMappings, 0u);
    EXPECT_EQ(result.releasedSubBlocks, 1u);
    EXPECT_GT(result.demotions, 1'000u);
    EXPECT_GT(result.elapsed, 0u);

    // Host-side census: the released block must be consumed by the
    // spray -- partly as EPT pages, partly as the per-split kernel
    // metadata that interleaves with them (Table 2's R metric).
    uint64_t reused_ept = 0;
    uint64_t reused_meta = 0;
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        const mm::PageFrame &frame = host->buddy().frame(
            victim_block + i);
        if (frame.free)
            continue;
        if (frame.use == mm::PageUse::EptPage)
            ++reused_ept;
        else if (frame.use == mm::PageUse::KernelData)
            ++reused_meta;
    }
    EXPECT_GT(reused_ept, 64u)
        << "EPT spray missed the released vulnerable block";
    EXPECT_GT(reused_ept + reused_meta, 400u)
        << "the released block was not consumed by the spray";
    // EPT share ~ 1 / (1 + splitMetadataPages).
    EXPECT_NEAR(static_cast<double>(reused_ept)
                    / (reused_ept + reused_meta),
                0.25, 0.08);
}

TEST_F(SteeringTest, SteerWithoutIommuStillReleasesAndSprays)
{
    machine.reset();
    host = std::make_unique<sys::HostSystem>(
        sys::SystemConfig::s1(9).withMemory(1_GiB));
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 256_MiB;
    vm_cfg.passthroughDevices = 0;
    machine = host->createVm(vm_cfg);

    PageSteering steering(*machine, host->clock(), steeringConfig());
    const SteeringResult result = steering.steer(
        {fakeTarget(5)}, machine->memorySize());
    EXPECT_EQ(result.iovaMappings, 0u);
    EXPECT_EQ(result.releasedSubBlocks, 1u);
    EXPECT_GT(result.demotions, 0u);
}

TEST_F(SteeringTest, QuarantineDefeatsSteering)
{
    machine.reset();
    host = std::make_unique<sys::HostSystem>(
        sys::SystemConfig::s1(9).withMemory(1_GiB));
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 1_GiB;
    vm_cfg.virtioMemPlugged = 256_MiB;
    vm_cfg.quarantine.enabled = true;
    machine = host->createVm(vm_cfg);

    PageSteering steering(*machine, host->clock(), steeringConfig());
    const SteeringResult result = steering.steer(
        {fakeTarget(5)}, machine->memorySize());
    // The release step is NACKed: nothing to place EPTEs on.
    EXPECT_EQ(result.releasedSubBlocks, 0u);
    EXPECT_TRUE(machine->memDevice_().isPlugged(5));
    EXPECT_GT(machine->memDevice_().stats().nackedRequests, 0u);
}

} // namespace
} // namespace hh::attack
