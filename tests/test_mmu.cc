/**
 * @file
 * Tests of the KVM MMU: EPT construction and walking, the NX-hugepage
 * iTLB-Multihit countermeasure (the Page Steering primitive), and the
 * fact that translations honour Rowhammer-corrupted entries.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "kvm/mmu.h"
#include "mm/buddy_allocator.h"

namespace hh::kvm {
namespace {

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 256_MiB;
        dram_cfg.fault.weakCellsPerRow = 0; // no spurious flips
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 256_MiB / kPageSize;
        buddy_cfg.pcp.highWatermark = 0;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    }

    std::unique_ptr<Mmu>
    makeMmu(MmuConfig cfg = {})
    {
        return std::make_unique<Mmu>(*dram, *buddy, cfg, /*owner=*/1);
    }

    /** Allocate a 2 MB host block for backing. */
    HostPhysAddr
    hostBlock()
    {
        auto block = buddy->allocPages(9, mm::MigrateType::Movable,
                                       mm::PageUse::GuestMemory, 1);
        EXPECT_TRUE(block.ok());
        blocks.push_back(*block);
        return HostPhysAddr(*block * kPageSize);
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
    std::vector<Pfn> blocks;
};

TEST_F(MmuTest, RootAllocatedAsUnmovableEptPage)
{
    auto mmu = makeMmu();
    EXPECT_EQ(mmu->eptPageCount(), 1u);
    const mm::PageFrame &frame = buddy->frame(mmu->rootFrame());
    EXPECT_EQ(frame.use, mm::PageUse::EptPage);
    EXPECT_EQ(frame.migrateType, mm::MigrateType::Unmovable);
    EXPECT_EQ(frame.owner, 1u);
}

TEST_F(MmuTest, Map2mTranslates)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(4_GiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());
    // Walking created PML4->PDPT->PD: 3 pages beyond nothing (root
    // pre-exists), so 3 total table pages.
    EXPECT_EQ(mmu->eptPageCount(), 3u);

    auto hpa = mmu->translate(gpa + 0x1234);
    ASSERT_TRUE(hpa.ok());
    EXPECT_EQ(hpa->value(), backing.value() + 0x1234);
    // Offsets across the whole 2 MB leaf.
    auto last = mmu->translate(gpa + kHugePageSize - 8);
    ASSERT_TRUE(last.ok());
    EXPECT_EQ(last->value(), backing.value() + kHugePageSize - 8);
}

TEST_F(MmuTest, Map2mRejectsMisaligned)
{
    auto mmu = makeMmu();
    EXPECT_FALSE(mmu->map2m(GuestPhysAddr(kPageSize),
                            hostBlock()).ok());
    EXPECT_FALSE(mmu->map2m(GuestPhysAddr(0),
                            HostPhysAddr(kPageSize)).ok());
}

TEST_F(MmuTest, Map2mRejectsDouble)
{
    auto mmu = makeMmu();
    ASSERT_TRUE(mmu->map2m(GuestPhysAddr(0), hostBlock()).ok());
    EXPECT_EQ(mmu->map2m(GuestPhysAddr(0), hostBlock()).error(),
              base::ErrorCode::Exists);
}

TEST_F(MmuTest, Map4kAndUnmap)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(8_MiB);
    ASSERT_TRUE(mmu->map4k(gpa, backing, /*exec=*/true).ok());
    auto hpa = mmu->translate(gpa + 0x42);
    ASSERT_TRUE(hpa.ok());
    EXPECT_EQ(hpa->value(), backing.value() + 0x42);

    ASSERT_TRUE(mmu->unmap(gpa).ok());
    EXPECT_FALSE(mmu->translate(gpa).ok());
    EXPECT_EQ(mmu->unmap(gpa).error(), base::ErrorCode::NotFound);
}

TEST_F(MmuTest, TranslateUnmappedFails)
{
    auto mmu = makeMmu();
    EXPECT_EQ(mmu->translate(GuestPhysAddr(1_GiB)).error(),
              base::ErrorCode::NotFound);
}

TEST_F(MmuTest, NxHugePageDeniesExecThenDemotes)
{
    auto mmu = makeMmu(); // countermeasure on by default
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(2_GiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());

    auto leaf = mmu->leafEntry(gpa);
    ASSERT_TRUE(leaf.ok());
    EXPECT_TRUE(leaf->largePage());
    EXPECT_FALSE(leaf->executable());

    // Reads and writes pass through.
    EXPECT_TRUE(mmu->access(gpa, Access::Read).status.ok());
    EXPECT_TRUE(mmu->access(gpa, Access::Write).status.ok());

    const uint64_t pages_before = mmu->eptPageCount();
    const AccessResult exec = mmu->access(gpa + 0x100, Access::Exec);
    EXPECT_TRUE(exec.status.ok());
    EXPECT_TRUE(exec.demotedHugePage);
    EXPECT_EQ(exec.hpa.value(), backing.value() + 0x100);
    // Exactly one new EPT page: the Page Steering primitive.
    EXPECT_EQ(mmu->eptPageCount(), pages_before + 1);
    EXPECT_EQ(mmu->demotions(), 1u);

    // The leaf is now a 4 KB entry, executable, same frame.
    auto new_leaf = mmu->leafEntry(gpa + 0x100);
    ASSERT_TRUE(new_leaf.ok());
    EXPECT_FALSE(new_leaf->largePage());
    EXPECT_TRUE(new_leaf->executable());

    // Translation is unchanged for every page of the old hugepage.
    for (uint64_t off = 0; off < kHugePageSize; off += kPageSize) {
        auto hpa = mmu->translate(gpa + off);
        ASSERT_TRUE(hpa.ok());
        EXPECT_EQ(hpa->value(), backing.value() + off);
    }

    // A second exec does not demote again.
    const AccessResult again = mmu->access(gpa, Access::Exec);
    EXPECT_TRUE(again.status.ok());
    EXPECT_FALSE(again.demotedHugePage);
    EXPECT_EQ(mmu->demotions(), 1u);
}

TEST_F(MmuTest, WithoutCountermeasureExecNeedsNoDemotion)
{
    MmuConfig cfg;
    cfg.nxHugePages = false;
    auto mmu = makeMmu(cfg);
    ASSERT_TRUE(mmu->map2m(GuestPhysAddr(0), hostBlock()).ok());
    const uint64_t pages_before = mmu->eptPageCount();
    const AccessResult exec = mmu->access(GuestPhysAddr(0),
                                          Access::Exec);
    EXPECT_TRUE(exec.status.ok());
    EXPECT_FALSE(exec.demotedHugePage);
    // No new EPT page: Page Steering has nothing to harvest.
    EXPECT_EQ(mmu->eptPageCount(), pages_before);
}

TEST_F(MmuTest, ErratumWithoutCountermeasureMachineChecks)
{
    MmuConfig cfg;
    cfg.nxHugePages = false;
    cfg.itlbMultihitErratum = true;
    auto mmu = makeMmu(cfg);
    ASSERT_TRUE(mmu->map2m(GuestPhysAddr(0), hostBlock()).ok());
    const base::Status status =
        mmu->execDuringPageSizeChange(GuestPhysAddr(0));
    EXPECT_EQ(status.error(), base::ErrorCode::Fault);
    EXPECT_EQ(mmu->machineChecks(), 1u);
}

TEST_F(MmuTest, CountermeasurePreventsMachineCheck)
{
    auto mmu = makeMmu();
    ASSERT_TRUE(mmu->map2m(GuestPhysAddr(0), hostBlock()).ok());
    const base::Status status =
        mmu->execDuringPageSizeChange(GuestPhysAddr(0));
    EXPECT_NE(status.error(), base::ErrorCode::Fault);
    EXPECT_EQ(mmu->machineChecks(), 0u);
}

TEST_F(MmuTest, LeafFramesFor2mAnd4k)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(16_MiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());
    auto frames = mmu->leafFrames(gpa);
    ASSERT_EQ(frames.size(), kEntriesPerTable);
    for (unsigned i = 0; i < kEntriesPerTable; ++i)
        EXPECT_EQ(frames[i], backing.pfn() + i);

    // After demotion the frames are identical.
    (void)mmu->access(gpa, Access::Exec);
    frames = mmu->leafFrames(gpa);
    for (unsigned i = 0; i < kEntriesPerTable; ++i)
        EXPECT_EQ(frames[i], backing.pfn() + i);

    // Unmapped range: all invalid.
    for (Pfn pfn : mmu->leafFrames(GuestPhysAddr(1_GiB)))
        EXPECT_EQ(pfn, kInvalidPfn);
}

TEST_F(MmuTest, TranslationHonoursCorruptedEntries)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(32_MiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());
    (void)mmu->access(gpa, Access::Exec); // demote to 4 KB entries

    // Rowhammer-style corruption: flip PFN bit 21 of the first PTE
    // directly in DRAM, behind the MMU's back.
    const Pfn pt = mmu->eptPageFrames().back();
    const HostPhysAddr pte_addr(pt * kPageSize);
    dram->backend().flipBit(pte_addr, 21);

    auto hpa = mmu->translate(gpa);
    ASSERT_TRUE(hpa.ok());
    EXPECT_EQ(hpa->pfn(), backing.pfn() ^ (1ull << 9));
}

TEST_F(MmuTest, DestructorReturnsTablePages)
{
    const uint64_t free_before = buddy->freePages();
    {
        auto mmu = makeMmu();
        ASSERT_TRUE(mmu->map2m(GuestPhysAddr(0), hostBlock()).ok());
        EXPECT_LT(buddy->freePages(), free_before);
        // Give back the guest block before the MMU dies.
        buddy->freePages(blocks.back(), 9);
        blocks.pop_back();
    }
    buddy->drainPcp();
    EXPECT_EQ(buddy->freePages(), free_before);
}

TEST_F(MmuTest, HostInitiatedSplitMatchesExecDemotion)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(64_MiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());
    const uint64_t before = mmu->eptPageCount();
    ASSERT_TRUE(mmu->splitHugePage(gpa).ok());
    EXPECT_EQ(mmu->eptPageCount(), before + 1);
    auto leaf = mmu->leafEntry(gpa);
    ASSERT_TRUE(leaf.ok());
    EXPECT_FALSE(leaf->largePage());
    // Idempotent on already-split ranges.
    EXPECT_TRUE(mmu->splitHugePage(gpa).ok());
    EXPECT_EQ(mmu->eptPageCount(), before + 1);
    // Unmapped ranges report NotFound.
    EXPECT_FALSE(mmu->splitHugePage(GuestPhysAddr(1_GiB)).ok());
}

TEST_F(MmuTest, WriteProtectionAndRemap)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(64_MiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());
    // Leaf-granular ops need 4 KB granularity.
    EXPECT_FALSE(mmu->setLeafWritable(gpa, false).ok());
    ASSERT_TRUE(mmu->splitHugePage(gpa).ok());

    ASSERT_TRUE(mmu->setLeafWritable(gpa, false).ok());
    EXPECT_EQ(mmu->access(gpa, Access::Write).status.error(),
              base::ErrorCode::Denied);
    EXPECT_TRUE(mmu->access(gpa, Access::Read).status.ok());
    ASSERT_TRUE(mmu->setLeafWritable(gpa, true).ok());
    EXPECT_TRUE(mmu->access(gpa, Access::Write).status.ok());

    // Remap one page elsewhere; neighbours keep their frames.
    ASSERT_TRUE(mmu->remapLeaf4k(gpa, backing.pfn() + 100, true).ok());
    EXPECT_EQ(mmu->translate(gpa)->pfn(), backing.pfn() + 100);
    EXPECT_EQ(mmu->translate(gpa + kPageSize)->pfn(),
              backing.pfn() + 1);
}

TEST_F(MmuTest, DemotionFailsCleanlyWhenHostIsFull)
{
    auto mmu = makeMmu();
    const HostPhysAddr backing = hostBlock();
    const GuestPhysAddr gpa(64_MiB);
    ASSERT_TRUE(mmu->map2m(gpa, backing).ok());

    // Hog every remaining frame.
    std::vector<std::pair<Pfn, unsigned>> hog;
    for (int order = mm::kMaxOrder - 1; order >= 0; --order) {
        while (true) {
            auto block = buddy->allocPages(
                order, mm::MigrateType::Unmovable,
                mm::PageUse::KernelData);
            if (!block.ok())
                break;
            hog.push_back({*block, static_cast<unsigned>(order)});
        }
    }
    buddy->drainPcp();
    while (true) {
        auto page = buddy->allocPages(0, mm::MigrateType::Unmovable,
                                      mm::PageUse::KernelData);
        if (!page.ok())
            break;
        hog.push_back({*page, 0});
    }

    const AccessResult exec = mmu->access(gpa, Access::Exec);
    EXPECT_EQ(exec.status.error(), base::ErrorCode::NoMemory);
    EXPECT_FALSE(exec.demotedHugePage);
    // The 2 MB mapping is still intact.
    EXPECT_TRUE(mmu->translate(gpa).ok());
    for (const auto &[pfn, order] : hog)
        buddy->freePages(pfn, order);
}

TEST_F(MmuTest, XenStylePolicyUsesAnyList)
{
    // Park a movable order-0 block on the lists; a Xen-style MMU
    // grabs it for a table page even though tables are "unmovable"
    // allocations under KVM policy.
    auto movable = buddy->allocPages(0, mm::MigrateType::Movable,
                                     mm::PageUse::KernelData);
    ASSERT_TRUE(movable.ok());
    buddy->freePages(*movable, 0);

    MmuConfig cfg;
    cfg.tableAlloc = TableAllocPolicy::AnyList;
    auto mmu = makeMmu(cfg);
    EXPECT_EQ(mmu->rootFrame(), *movable);
}

} // namespace
} // namespace hh::kvm
