/**
 * @file
 * Tests of the hh::fault layer (DESIGN.md section 3.3): the injector's
 * occurrence/window semantics, per-site firing at every registered
 * injection point, the null-plan identity guarantee, and the
 * orchestrator's retry / re-profile / degradation behaviour under
 * injected faults -- including bitwise-identical runAttempts results
 * across thread counts with a plan installed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attack/orchestrator.h"
#include "fault/fault.h"
#include "kvm/mmu.h"
#include "sys/host_system.h"
#include "sys/ksm.h"
#include "virtio/virtio_balloon.h"

namespace hh {
namespace {

fault::FaultEntry
entry(fault::FaultSite site, fault::FaultKind kind, uint64_t first_hit = 0,
      uint64_t count = 1, uint64_t every = 1, double probability = 1.0,
      uint64_t param = 0)
{
    fault::FaultEntry e;
    e.site = site;
    e.kind = kind;
    e.firstHit = first_hit;
    e.count = count;
    e.every = every;
    e.probability = probability;
    e.param = param;
    return e;
}

// ---------------------------------------------------------------------------
// Injector semantics

TEST(FaultRegistry, SiteNamesUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (size_t i = 0; i < fault::kFaultSiteCount; ++i) {
        const char *name = fault::siteName(static_cast<fault::FaultSite>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_NE(std::string(name), "");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), fault::kFaultSiteCount)
        << "duplicate site name in fault_sites.def";
    EXPECT_NE(std::string(fault::kindName(fault::FaultKind::AllocFail)), "");
}

TEST(FaultRegistry, StreamIdsCollisionFreeAcrossSitesAndHosts)
{
    // Each injector derives per-site Rng streams as
    // SeedSequence(mix64(host seed, plan seed)).seed(site index); a
    // collision would make two sites (or two trial hosts) fire in
    // lockstep. Audit the derivation across a batch of host and plan
    // seeds, including the adjacent values per-trial clones use.
    std::set<uint64_t> stream_seeds;
    size_t derived = 0;
    for (uint64_t host_seed = 1; host_seed <= 16; ++host_seed) {
        for (uint64_t plan_seed : {1ull, 2ull, 21ull, 42ull}) {
            const base::SeedSequence seq(
                base::mix64(host_seed, plan_seed));
            for (size_t site = 0; site < fault::kFaultSiteCount;
                 ++site) {
                stream_seeds.insert(seq.seed(site));
                ++derived;
            }
        }
    }
    EXPECT_EQ(stream_seeds.size(), derived)
        << "fault stream-id collision: two sites share an Rng stream";
}

TEST(FaultInjector, EntryFiresExactlyOnSchedule)
{
    // firstHit=3, every=2, count=2: occurrences 3 and 5 fire, nothing
    // else does.
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::DramRead,
                   fault::FaultKind::ReadCorruption, 3, 2, 2));
    fault::FaultInjector inj(plan, 0x1234);
    std::vector<uint64_t> fired_at;
    for (uint64_t o = 0; o < 12; ++o) {
        if (inj.consult(fault::FaultSite::DramRead) != nullptr)
            fired_at.push_back(o);
    }
    EXPECT_EQ(fired_at, (std::vector<uint64_t>{3, 5}));
    EXPECT_EQ(inj.occurrences(fault::FaultSite::DramRead), 12u);
    EXPECT_EQ(inj.fired(fault::FaultSite::DramRead), 2u);
    EXPECT_EQ(inj.totalFired(), 2u);
    // A site without entries never fires but still counts occurrences.
    EXPECT_EQ(inj.consult(fault::FaultSite::MmAlloc), nullptr);
    EXPECT_EQ(inj.occurrences(fault::FaultSite::MmAlloc), 1u);
}

TEST(FaultInjector, FirstEligibleEntryWinsThenNextTakesOver)
{
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::DramTrr,
                   fault::FaultKind::SpuriousTrr, 0, 1));
    plan.add(entry(fault::FaultSite::DramTrr,
                   fault::FaultKind::ReadCorruption, 0, 0));
    fault::FaultInjector inj(plan, 7);
    const fault::FaultEntry *first = inj.consult(fault::FaultSite::DramTrr);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->kind, fault::FaultKind::SpuriousTrr);
    // The one-shot entry is exhausted; the unlimited one takes over.
    const fault::FaultEntry *second = inj.consult(fault::FaultSite::DramTrr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->kind, fault::FaultKind::ReadCorruption);
}

TEST(FaultInjector, BernoulliGateIsDeterministicPerSeed)
{
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::KsmScan, fault::FaultKind::ScanRace,
                   0, 0, 1, 0.5));
    auto pattern = [&](uint64_t root) {
        fault::FaultInjector inj(plan, root);
        std::vector<bool> fired;
        for (unsigned o = 0; o < 200; ++o)
            fired.push_back(inj.consult(fault::FaultSite::KsmScan)
                            != nullptr);
        return fired;
    };
    const std::vector<bool> a = pattern(11);
    EXPECT_EQ(a, pattern(11)) << "same plan+root must replay exactly";
    EXPECT_NE(a, pattern(12)) << "different root must shift the stream";
    const size_t fires = std::count(a.begin(), a.end(), true);
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, 200u);
}

TEST(FaultPlan, RandomizedCoversEverySite)
{
    const fault::FaultPlan plan = fault::FaultPlan::randomized(21, 0.5);
    ASSERT_EQ(plan.entries.size(), fault::kFaultSiteCount);
    std::set<fault::FaultSite> seen;
    for (const fault::FaultEntry &e : plan.entries) {
        seen.insert(e.site);
        EXPECT_GT(e.probability, 0.0);
        EXPECT_LE(e.probability, 1.0);
        EXPECT_GE(e.every, 1u);
    }
    EXPECT_EQ(seen.size(), fault::kFaultSiteCount);
}

TEST(FaultPoint, NullInjectorIsANoop)
{
    fault::FaultInjector *injector = nullptr;
    // hh-lint: allow(fault-site) -- exercises the macro's null branch, not a new injection point
    EXPECT_EQ(HH_FAULT_POINT(injector, fault::FaultSite::DramRead), nullptr);
}

// ---------------------------------------------------------------------------
// Per-site firing through the real components

dram::DramConfig
dramTestConfig(uint64_t seed = 5)
{
    dram::DramConfig cfg;
    cfg.totalBytes = 256_MiB;
    cfg.mapping = dram::AddressMapping::i3_10100();
    cfg.seed = seed;
    cfg.fault.weakCellsPerRow = 0.02;
    cfg.fault.stableFraction = 1.0;
    cfg.fault.minThreshold = 50'000;
    cfg.fault.maxThreshold = 150'000;
    return cfg;
}

/** Address of the first granule of (bank, row). */
HostPhysAddr
addrIn(const dram::AddressMapping &map, dram::BankId bank, dram::RowId row)
{
    const dram::BankId cls = bank ^ map.rowClass(row);
    return HostPhysAddr(
        (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(map.classOffsets(cls).front())
           << map.interleaveShift()));
}

/** First stable weak (bank,row) flipping one-to-zero. */
struct WeakSpot
{
    dram::BankId bank;
    dram::RowId row;
};

WeakSpot
findWeakSpot(const dram::DramSystem &dram)
{
    const dram::AddressMapping &map = dram.mapping();
    const dram::RowId max_row = (dram.size() - 1) >> map.rowLoBit();
    for (dram::RowId row = 2; row + 3 < max_row; ++row) {
        for (dram::BankId bank = 0; bank < map.bankCount(); ++bank) {
            for (const dram::WeakCell &cell :
                 dram.faultModel().weakCellsInRow(bank, row)) {
                if (cell.direction == dram::FlipDirection::OneToZero
                    && cell.stable())
                    return WeakSpot{bank, row};
            }
        }
    }
    ADD_FAILURE() << "no weak spot in the test DIMM";
    return WeakSpot{0, 2};
}

void
fillRow(dram::DramSystem &dram, dram::RowId row, uint64_t pattern)
{
    const dram::AddressMapping &map = dram.mapping();
    const uint64_t base = static_cast<uint64_t>(row) << map.rowLoBit();
    for (uint64_t off = 0; off < map.rowStripeBytes(); off += kPageSize)
        dram.backend().fillPage((base + off) / kPageSize, pattern);
}

/** One full hammer pass against the known weak spot. */
std::vector<dram::FlipEvent>
hammerSpot(dram::DramSystem &dram, const WeakSpot &spot)
{
    fillRow(dram, spot.row, ~0ull);
    const dram::AddressMapping &map = dram.mapping();
    return dram.hammer({addrIn(map, spot.bank, spot.row + 1),
                        addrIn(map, spot.bank, spot.row + 2)},
                       200'000);
}

TEST(FaultSiteDram, ReadCorruptionIsTransientAndScheduled)
{
    base::SimClock clock;
    dram::DramSystem dram(dramTestConfig(), clock);
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::DramRead,
                   fault::FaultKind::ReadCorruption, 1, 1, 1, 1.0, 5));
    fault::FaultInjector inj(plan, 3);
    dram.setFaultInjector(&inj);

    const HostPhysAddr addr(0x1000);
    dram.write64(addr, 0xabcdull);
    EXPECT_EQ(dram.read64(addr), 0xabcdull);          // occurrence 0
    EXPECT_EQ(dram.read64(addr), 0xabcdull ^ (1u << 5)); // occurrence 1
    EXPECT_EQ(dram.read64(addr), 0xabcdull);          // transient
    EXPECT_EQ(dram.backend().read64(addr), 0xabcdull)
        << "stored data must be untouched";
}

TEST(FaultSiteDram, RefreshJitterTruncatesExactlyTheScheduledBurst)
{
    // Three fresh DIMMs share one injector: hammer bursts are
    // occurrences 0, 1, 2 of dram.refresh_window; only 1 fires.
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::DramRefresh,
                   fault::FaultKind::RefreshJitter, 1, 1, 1, 1.0, 100));
    fault::FaultInjector inj(plan, 9);
    for (unsigned burst = 0; burst < 3; ++burst) {
        base::SimClock clock;
        dram::DramSystem dram(dramTestConfig(), clock);
        const WeakSpot spot = findWeakSpot(dram);
        dram.setFaultInjector(&inj);
        const auto events = hammerSpot(dram, spot);
        if (burst == 1)
            EXPECT_TRUE(events.empty())
                << "a 100% jitter burst must not flip";
        else
            EXPECT_FALSE(events.empty());
    }
    EXPECT_EQ(inj.fired(fault::FaultSite::DramRefresh), 1u);
}

TEST(FaultSiteDram, SpuriousTrrSuppressesEveryAggressor)
{
    base::SimClock clock;
    dram::DramSystem dram(dramTestConfig(), clock); // TRR disabled
    const WeakSpot spot = findWeakSpot(dram);
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::DramTrr,
                   fault::FaultKind::SpuriousTrr, 0, 0));
    fault::FaultInjector inj(plan, 2);
    dram.setFaultInjector(&inj);
    EXPECT_TRUE(hammerSpot(dram, spot).empty());
    EXPECT_GT(dram.trrSuppressions(), 0u);
    dram.setFaultInjector(nullptr);
    EXPECT_FALSE(hammerSpot(dram, spot).empty());
}

TEST(FaultSiteDram, EccMiscorrectEatsVisibleFlips)
{
    base::SimClock clock;
    dram::DramSystem dram(dramTestConfig(), clock); // ECC disabled
    const WeakSpot spot = findWeakSpot(dram);
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::DramEcc,
                   fault::FaultKind::EccMiscorrect, 0, 0));
    fault::FaultInjector inj(plan, 2);
    dram.setFaultInjector(&inj);
    EXPECT_TRUE(hammerSpot(dram, spot).empty());
    EXPECT_GT(dram.eccCorrectedFlips(), 0u)
        << "the miscorrection must be accounted as ECC activity";
}

TEST(FaultSiteMm, AllocFailFiresAtScheduledOccurrence)
{
    mm::BuddyConfig cfg;
    cfg.totalPages = 64_MiB / kPageSize;
    mm::BuddyAllocator buddy(cfg);
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::MmAlloc,
                   fault::FaultKind::AllocFail, 1, 1));
    fault::FaultInjector inj(plan, 5);
    buddy.setFaultInjector(&inj);

    auto a = buddy.allocPages(0, mm::MigrateType::Unmovable,
                              mm::PageUse::KernelData);
    ASSERT_TRUE(a.ok());
    auto b = buddy.allocPages(0, mm::MigrateType::Unmovable,
                              mm::PageUse::KernelData);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(b.error(), base::ErrorCode::NoMemory);
    auto c = buddy.allocPages(0, mm::MigrateType::Unmovable,
                              mm::PageUse::KernelData);
    EXPECT_TRUE(c.ok());
    buddy.freePages(*a, 0);
    buddy.freePages(*c, 0);
}

TEST(FaultSiteMm, AllocFailParamStarvesOneUseClass)
{
    mm::BuddyConfig cfg;
    cfg.totalPages = 64_MiB / kPageSize;
    mm::BuddyAllocator buddy(cfg);
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::MmAlloc, fault::FaultKind::AllocFail,
                   0, 0, 1, 1.0,
                   static_cast<uint64_t>(mm::PageUse::EptPage)));
    fault::FaultInjector inj(plan, 5);
    buddy.setFaultInjector(&inj);

    auto kernel = buddy.allocPages(0, mm::MigrateType::Unmovable,
                                   mm::PageUse::KernelData);
    EXPECT_TRUE(kernel.ok()) << "other classes must be unaffected";
    auto ept = buddy.allocPages(0, mm::MigrateType::Unmovable,
                                mm::PageUse::EptPage);
    ASSERT_FALSE(ept.ok());
    EXPECT_EQ(ept.error(), base::ErrorCode::NoMemory);
    buddy.freePages(*kernel, 0);
}

TEST(FaultSiteSys, KsmScanRaceSkipsEveryPage)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 256_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 256_MiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);

    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 8_MiB;
    vm_cfg.virtioMemRegionSize = 64_MiB;
    vm_cfg.virtioMemPlugged = 32_MiB;
    vm_cfg.passthroughDevices = 0;
    auto attacker =
        std::make_unique<vm::VirtualMachine>(dram, buddy, vm_cfg, 1);
    auto victim =
        std::make_unique<vm::VirtualMachine>(dram, buddy, vm_cfg, 2);

    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::KsmScan,
                   fault::FaultKind::ScanRace, 0, 0));
    fault::FaultInjector inj(plan, 6);
    sys::Ksm ksm(dram, buddy, true, &inj);
    ksm.attach(*attacker);
    ksm.attach(*victim);

    const GuestPhysAddr page(0x4000);
    for (unsigned word = 0; word < kPageSize / 8; ++word) {
        ASSERT_TRUE(attacker->write64(page + word * 8ull, 0xd00d).ok());
        ASSERT_TRUE(victim->write64(page + word * 8ull, 0xd00d).ok());
    }
    // Every scan races: no page is ever even fingerprinted.
    EXPECT_EQ(ksm.scanRange(*victim, page, 1), 0u);
    EXPECT_EQ(ksm.scanRange(*attacker, page, 1), 0u);
    EXPECT_EQ(ksm.stats().pagesScanned, 0u);
    EXPECT_EQ(ksm.stats().raced, 2u);
    // VMs must outlive the Ksm teardown contract.
    attacker.reset();
    victim.reset();
}

TEST(FaultSiteVirtio, UnplugDeferredAnswersBusyOnce)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 256_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 256_MiB / kPageSize;
    mm::BuddyAllocator buddy(buddy_cfg);

    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 8_MiB;
    vm_cfg.virtioMemRegionSize = 64_MiB;
    vm_cfg.virtioMemPlugged = 32_MiB;
    vm_cfg.passthroughDevices = 0;
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::VirtioUnplug,
                   fault::FaultKind::DelayedReclaim, 0, 1));
    fault::FaultInjector inj(plan, 8);
    vm::VirtualMachine machine(dram, buddy, vm_cfg, 1, &inj);

    GuestPhysAddr target{0};
    for (GuestPhysAddr hp : machine.hugePageGpas()) {
        if (machine.memDevice_().contains(hp)) {
            target = hp;
            break;
        }
    }
    ASSERT_NE(target.value(), 0u);
    machine.memDriver().setSuppressAutoPlug(true);
    const base::Status deferred = machine.memDriver().unplugSpecific(target);
    EXPECT_EQ(deferred.error(), base::ErrorCode::Busy);
    EXPECT_EQ(machine.memDevice_().stats().deferredUnplugs, 1u);
    EXPECT_TRUE(machine.memDriver().unplugSpecific(target).ok())
        << "the retry after the deferral must succeed";
}

TEST(FaultSiteVirtio, BalloonInflateDeferredAnswersBusyOnce)
{
    base::SimClock clock;
    dram::DramConfig dram_cfg;
    dram_cfg.totalBytes = 256_MiB;
    dram_cfg.fault.weakCellsPerRow = 0;
    dram::DramSystem dram(dram_cfg, clock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = 256_MiB / kPageSize;
    buddy_cfg.pcp.highWatermark = 0;
    mm::BuddyAllocator buddy(buddy_cfg);
    kvm::Mmu mmu(dram, buddy, kvm::MmuConfig{}, 1);
    fault::FaultPlan plan;
    plan.add(entry(fault::FaultSite::BalloonInflate,
                   fault::FaultKind::DelayedReclaim, 0, 1));
    fault::FaultInjector inj(plan, 4);
    virtio::VirtioBalloonDevice balloon(dram, buddy, mmu, 1,
                                        GuestPhysAddr(0), 0, &inj);

    auto block = buddy.allocPages(9, mm::MigrateType::Movable,
                                  mm::PageUse::GuestMemory, 1);
    ASSERT_TRUE(block.ok());
    const GuestPhysAddr gpa(0);
    ASSERT_TRUE(mmu.map2m(gpa, HostPhysAddr(*block * kPageSize)).ok());
    ASSERT_TRUE(mmu.access(gpa, kvm::Access::Exec).status.ok()); // split
    EXPECT_EQ(balloon.inflatePage(gpa).error(), base::ErrorCode::Busy);
    EXPECT_EQ(balloon.inflatedCount(), 0u);
    EXPECT_TRUE(balloon.inflatePage(gpa).ok());
}

// ---------------------------------------------------------------------------
// Orchestrator behaviour under plans (and without them)

sys::SystemConfig
hostConfig(uint64_t seed = 42, double density_scale = 4.0)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed).withMemory(1_GiB);
    cfg.dram.fault.weakCellsPerRow *= density_scale;
    return cfg;
}

vm::VmConfig
vmConfig()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

attack::AttackConfig
attackConfig(unsigned max_attempts = 4)
{
    attack::AttackConfig cfg;
    cfg.maxAttempts = max_attempts;
    cfg.steering.exhaustMappings = 2'500;
    return cfg;
}

/** Field-by-field equality of two attempt outcomes. */
void
expectOutcomeEq(const attack::AttemptOutcome &a,
                const attack::AttemptOutcome &b)
{
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.bitsTargeted, b.bitsTargeted);
    EXPECT_EQ(a.releasedSubBlocks, b.releasedSubBlocks);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.changedPages, b.changedPages);
    EXPECT_EQ(a.epteCandidates, b.epteCandidates);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.backoffTime, b.backoffTime);
    EXPECT_EQ(a.faultsFired, b.faultsFired);
}

TEST(FaultOrchestrator, EmptyPlanBuildsNoInjectorAndChangesNothing)
{
    // A host configured with an explicitly empty plan is the null-plan
    // fast path: no injector exists and a full run is identical to a
    // host that never heard of fault injection.
    sys::HostSystem plain(hostConfig());
    sys::HostSystem with_empty(hostConfig().withFaults(fault::FaultPlan{}));
    EXPECT_EQ(plain.faults(), nullptr);
    EXPECT_EQ(with_empty.faults(), nullptr);

    auto run_one = [&](sys::HostSystem &host) {
        attack::HyperHammerAttack attack(host, vmConfig(),
                                         host.dram().mapping(),
                                         attackConfig(2));
        (void)attack.profilePhase();
        return attack.run();
    };
    const attack::AttackResult a = run_one(plain);
    const attack::AttackResult b = run_one(with_empty);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.faultsInjected, 0u);
    EXPECT_EQ(b.faultsInjected, 0u);
    EXPECT_EQ(a.reprofiles, 0u);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        expectOutcomeEq(a.outcomes[i], b.outcomes[i]);
        EXPECT_EQ(a.outcomes[i].retries, 0u);
        EXPECT_EQ(a.outcomes[i].backoffTime, 0u);
        EXPECT_EQ(a.outcomes[i].faultsFired, 0u);
    }
}

TEST(FaultOrchestrator, RunWithoutProfileDegradesInsteadOfAborting)
{
    sys::HostSystem host(hostConfig());
    attack::HyperHammerAttack attack(host, vmConfig(),
                                     host.dram().mapping(),
                                     attackConfig(2));
    const attack::AttackResult result = attack.run(); // no profilePhase()
    EXPECT_FALSE(result.success);
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.status.error(), base::ErrorCode::NotFound);
    EXPECT_EQ(result.attempts, 0u);
}

TEST(FaultOrchestrator, SteerMissesTriggerRetriesAndPartialResult)
{
    // Every release misses: the release phase retries with backoff,
    // then the run completes degraded instead of aborting.
    fault::FaultPlan plan;
    plan.seed = 3;
    plan.add(entry(fault::FaultSite::SteerRelease,
                   fault::FaultKind::SteerMiss, 0, 0));
    sys::HostSystem host(hostConfig(7, 8.0).withFaults(plan));
    ASSERT_NE(host.faults(), nullptr);
    attack::HyperHammerAttack attack(host, vmConfig(),
                                     host.dram().mapping(),
                                     attackConfig(2));
    (void)attack.profilePhase();
    ASSERT_GT(attack.hostProfile().size(), 0u);
    const attack::AttackResult result = attack.run();

    EXPECT_FALSE(result.success);
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.status.error(), base::ErrorCode::LimitExceeded);
    EXPECT_EQ(result.attempts, 2u) << "degradation must not abort early";
    EXPECT_GT(result.faultsInjected, 0u);
    for (const attack::AttemptOutcome &outcome : result.outcomes) {
        if (outcome.bitsTargeted == 0)
            continue;
        EXPECT_EQ(outcome.releasedSubBlocks, 0u);
        EXPECT_GT(outcome.retries, 0u);
        EXPECT_GT(outcome.backoffTime, 0u);
        EXPECT_GT(outcome.faultsFired, 0u);
    }
}

TEST(FaultOrchestrator, LostFlipsTriggerHammerRetries)
{
    fault::FaultPlan plan;
    plan.seed = 4;
    plan.add(entry(fault::FaultSite::ExploitHammer,
                   fault::FaultKind::LostFlip, 0, 0));
    sys::HostSystem host(hostConfig(7, 8.0).withFaults(plan));
    attack::HyperHammerAttack attack(host, vmConfig(),
                                     host.dram().mapping(),
                                     attackConfig(1));
    (void)attack.profilePhase();
    ASSERT_GT(attack.hostProfile().size(), 0u);
    const attack::AttackResult result = attack.run();
    EXPECT_FALSE(result.success);
    ASSERT_EQ(result.outcomes.size(), 1u);
    const attack::AttemptOutcome &outcome = result.outcomes[0];
    ASSERT_GT(outcome.bitsTargeted, 0u);
    EXPECT_GT(outcome.retries, 0u);
    EXPECT_GT(outcome.faultsFired, 0u);
}

TEST(FaultOrchestrator, ReprofilesWhenRespawnedVmsLoseTheCells)
{
    // Pass 1 (measurement): an inert plan whose injector only counts.
    // K = mm.alloc_pages occurrences up to the end of profiling.
    const uint64_t never = ~0ull;
    fault::FaultPlan inert;
    inert.add(entry(fault::FaultSite::MmAlloc,
                    fault::FaultKind::AllocFail, never, 0));
    uint64_t k = 0;
    {
        sys::HostSystem host(hostConfig(7, 8.0).withFaults(inert));
        attack::HyperHammerAttack attack(host, vmConfig(),
                                         host.dram().mapping(),
                                         attackConfig(4));
        (void)attack.profilePhase();
        k = host.faults()->occurrences(fault::FaultSite::MmAlloc);
        ASSERT_GT(k, 0u);
    }
    // Pass 2: same host, but every guest-memory allocation after the
    // profiling phase fails -- respawned VMs boot without RAM, so no
    // attempt can relocate any cell and run() falls back to
    // re-profiling, which also comes back empty: NotFound, degraded.
    fault::FaultPlan starve;
    starve.add(entry(fault::FaultSite::MmAlloc,
                     fault::FaultKind::AllocFail, k, 0, 1, 1.0,
                     static_cast<uint64_t>(mm::PageUse::GuestMemory)));
    attack::AttackConfig cfg = attackConfig(4);
    cfg.reprofileAfterEmpty = 1;
    sys::HostSystem host(hostConfig(7, 8.0).withFaults(starve));
    attack::HyperHammerAttack attack(host, vmConfig(),
                                     host.dram().mapping(), cfg);
    (void)attack.profilePhase();
    ASSERT_GT(attack.hostProfile().size(), 0u)
        << "profiling must be unaffected below occurrence K";
    const attack::AttackResult result = attack.run();
    EXPECT_FALSE(result.success);
    EXPECT_TRUE(result.degraded);
    EXPECT_GE(result.reprofiles, 1u);
    EXPECT_EQ(result.status.error(), base::ErrorCode::NotFound);
    EXPECT_GT(result.faultsInjected, 0u);
}

TEST(FaultOrchestrator, RunAttemptsBitwiseIdenticalAcrossThreadCounts)
{
    // The acceptance bar: with a seeded plan installed, the parallel
    // Monte-Carlo engine must stay bitwise-deterministic at any thread
    // count (DESIGN.md sections 3.2 + 3.3).
    const fault::FaultPlan plan = fault::FaultPlan::randomized(17, 0.5);
    auto run_with = [&](unsigned threads) {
        sys::HostSystem host(hostConfig(11, 8.0).withFaults(plan));
        attack::HyperHammerAttack attack(host, vmConfig(),
                                         host.dram().mapping(),
                                         attackConfig());
        (void)attack.profilePhase();
        return attack.runAttempts(8, threads);
    };
    const attack::AttackResult t1 = run_with(1);
    const attack::AttackResult t4 = run_with(4);
    const attack::AttackResult t8 = run_with(8);
    for (const attack::AttackResult *other : {&t4, &t8}) {
        EXPECT_EQ(t1.success, other->success);
        EXPECT_EQ(t1.attempts, other->attempts);
        EXPECT_EQ(t1.totalTime, other->totalTime);
        EXPECT_EQ(t1.faultsInjected, other->faultsInjected);
        ASSERT_EQ(t1.outcomes.size(), other->outcomes.size());
        for (size_t i = 0; i < t1.outcomes.size(); ++i)
            expectOutcomeEq(t1.outcomes[i], other->outcomes[i]);
        EXPECT_EQ(t1.stats.retries.mean(), other->stats.retries.mean());
        EXPECT_EQ(t1.stats.attemptSeconds.mean(),
                  other->stats.attemptSeconds.mean());
    }
}

} // namespace
} // namespace hh
