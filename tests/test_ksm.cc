/**
 * @file
 * Tests of the KSM deduplication model and the Flip Feng Shui
 * baseline it enables (Section 2.1): merging, copy-on-write breaking
 * through the VM-exit path, VFIO exclusion, and the cross-VM
 * corruption primitive that made dedup indefensible.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"
#include "sys/ksm.h"
#include "vm/virtual_machine.h"

namespace hh::sys {
namespace {

class KsmTest : public ::testing::Test
{
  protected:
    KsmTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 512_MiB;
        dram_cfg.fault.weakCellsPerRow = 0;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 512_MiB / kPageSize;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    }

    /** Two small VMs without passthrough (KSM excludes pinned). */
    void
    bootVms(bool ksm_enabled = true)
    {
        vm::VmConfig cfg;
        cfg.bootMemBytes = 8_MiB;
        cfg.virtioMemRegionSize = 64_MiB;
        cfg.virtioMemPlugged = 32_MiB;
        cfg.passthroughDevices = 0;
        attacker = std::make_unique<vm::VirtualMachine>(*dram, *buddy,
                                                        cfg, 1);
        victim = std::make_unique<vm::VirtualMachine>(*dram, *buddy,
                                                      cfg, 2);
        ksm = std::make_unique<Ksm>(*dram, *buddy, ksm_enabled);
        ksm->attach(*attacker);
        ksm->attach(*victim);
    }

    ~KsmTest() override
    {
        // VMs before KSM (see Ksm's destructor contract).
        attacker.reset();
        victim.reset();
        ksm.reset();
    }

    /** Write recognisable content into one page. */
    void
    fillKeyPage(vm::VirtualMachine &machine, GuestPhysAddr page,
                uint64_t salt)
    {
        for (unsigned word = 0; word < kPageSize / 8; ++word) {
            ASSERT_TRUE(machine
                            .write64(page + word * 8ull,
                                     0x4b45'5900 + salt + word)
                            .ok());
        }
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
    std::unique_ptr<vm::VirtualMachine> attacker;
    std::unique_ptr<vm::VirtualMachine> victim;
    std::unique_ptr<Ksm> ksm;

    const GuestPhysAddr pageA{vm::kVirtioMemRegionStart + 5 * kPageSize};
    const GuestPhysAddr pageB{vm::kVirtioMemRegionStart + 9 * kPageSize};
};

TEST_F(KsmTest, MergesIdenticalPagesAcrossVms)
{
    bootVms();
    fillKeyPage(*victim, pageB, /*salt=*/0);
    fillKeyPage(*attacker, pageA, /*salt=*/0);

    const auto old_frame = attacker->debugTranslate(pageA);
    ASSERT_TRUE(old_frame.ok());
    EXPECT_EQ(ksm->scanRange(*victim, pageB, 1), 0u); // first sighting
    EXPECT_EQ(ksm->scanRange(*attacker, pageA, 1), 1u); // merged
    EXPECT_EQ(ksm->stats().pagesMerged, 1u);
    EXPECT_EQ(ksm->stats().sharedFrames, 1u);
    // The duplicate's old frame went back to the host (the net
    // accounting also pays for the THP splits the scan performed).
    EXPECT_EQ(buddy->frame(old_frame->pfn()).use, mm::PageUse::Free);

    // Both views read the same physical frame.
    auto hpa_a = attacker->debugTranslate(pageA);
    auto hpa_b = victim->debugTranslate(pageB);
    ASSERT_TRUE(hpa_a.ok() && hpa_b.ok());
    EXPECT_EQ(hpa_a->pfn(), hpa_b->pfn());
    EXPECT_TRUE(ksm->isShared(*attacker, pageA));
    EXPECT_TRUE(ksm->isShared(*victim, pageB));
}

TEST_F(KsmTest, DifferentContentDoesNotMerge)
{
    bootVms();
    fillKeyPage(*victim, pageB, 0);
    fillKeyPage(*attacker, pageA, 0xbad);
    (void)ksm->scanRange(*victim, pageB, 1);
    EXPECT_EQ(ksm->scanRange(*attacker, pageA, 1), 0u);
    EXPECT_EQ(ksm->stats().sharedFrames, 0u);
}

TEST_F(KsmTest, GuestWriteBreaksCow)
{
    bootVms();
    fillKeyPage(*victim, pageB, 0);
    fillKeyPage(*attacker, pageA, 0);
    (void)ksm->scanRange(*victim, pageB, 1);
    ASSERT_EQ(ksm->scanRange(*attacker, pageA, 1), 1u);

    // The attacker writes its copy: VM exit, unshare, retry.
    ASSERT_TRUE(attacker->write64(pageA, 0x1111).ok());
    EXPECT_EQ(ksm->stats().cowBreaks, 1u);
    EXPECT_EQ(ksm->stats().sharedFrames, 0u);

    // The attacker sees its write; the victim is untouched.
    EXPECT_EQ(attacker->read64(pageA).valueOr(0), 0x1111u);
    EXPECT_EQ(victim->read64(pageB).valueOr(0), 0x4b455900u);
    // Physically separate again.
    EXPECT_NE(attacker->debugTranslate(pageA)->pfn(),
              victim->debugTranslate(pageB)->pfn());
}

TEST_F(KsmTest, DisabledKsmDoesNothing)
{
    bootVms(/*ksm_enabled=*/false);
    fillKeyPage(*victim, pageB, 0);
    fillKeyPage(*attacker, pageA, 0);
    EXPECT_EQ(ksm->scanRange(*victim, pageB, 1), 0u);
    EXPECT_EQ(ksm->scanRange(*attacker, pageA, 1), 0u);
    EXPECT_EQ(ksm->stats().pagesScanned, 0u);
}

TEST_F(KsmTest, ScanSplitsHugePages)
{
    bootVms();
    // Scanning a hugepage-backed range demotes it first.
    const GuestPhysAddr hp = vm::kVirtioMemRegionStart;
    auto before = victim->mmu().leafEntry(hp);
    ASSERT_TRUE(before.ok());
    EXPECT_TRUE(before->largePage());
    (void)ksm->scanRange(*victim, hp, 4);
    auto after = victim->mmu().leafEntry(hp);
    ASSERT_TRUE(after.ok());
    EXPECT_FALSE(after->largePage());
}

TEST_F(KsmTest, FlipFengShuiCorruptsVictimThroughSharedFrame)
{
    // The baseline attack (Razavi et al.): the attacker never writes
    // the victim's data -- it duplicates the content, waits for the
    // merge, and flips a bit in the now-shared frame with Rowhammer
    // (here: the ground-truth flip primitive).
    bootVms();
    fillKeyPage(*victim, pageB, 0);
    fillKeyPage(*attacker, pageA, 0);
    (void)ksm->scanRange(*victim, pageB, 1);
    ASSERT_EQ(ksm->scanRange(*attacker, pageA, 1), 1u);

    auto shared = victim->debugTranslate(pageB);
    ASSERT_TRUE(shared.ok());
    dram->backend().flipBit(*shared + 0, 7);

    // The victim's "key" is corrupted; nobody wrote anything.
    EXPECT_EQ(victim->read64(pageB).valueOr(0),
              0x4b455900u ^ (1u << 7));
    EXPECT_EQ(ksm->stats().cowBreaks, 0u);
}

TEST_F(KsmTest, PinnedPagesAreNeverMerged)
{
    // A VFIO VM's memory is pinned; KSM must skip it entirely.
    vm::VmConfig cfg;
    cfg.bootMemBytes = 8_MiB;
    cfg.virtioMemRegionSize = 64_MiB;
    cfg.virtioMemPlugged = 32_MiB;
    cfg.passthroughDevices = 1;
    auto pinned_vm = std::make_unique<vm::VirtualMachine>(
        *dram, *buddy, cfg, 3);
    Ksm local(*dram, *buddy, true);
    local.attach(*pinned_vm);
    fillKeyPage(*pinned_vm, pageA, 0);
    EXPECT_EQ(local.scanRange(*pinned_vm, pageA, 1), 0u);
    EXPECT_EQ(local.stats().pagesScanned, 0u);
    pinned_vm.reset();
}

TEST_F(KsmTest, TeardownReclaimsEverything)
{
    buddy->drainPcp();
    const uint64_t free_before = buddy->freePages();
    {
        bootVms();
        fillKeyPage(*victim, pageB, 0);
        fillKeyPage(*attacker, pageA, 0);
        (void)ksm->scanRange(*victim, pageB, 1);
        (void)ksm->scanRange(*attacker, pageA, 1);
        ASSERT_TRUE(attacker->write64(pageA, 1).ok()); // a COW break
        attacker.reset();
        victim.reset();
        ksm.reset();
    }
    buddy->drainPcp();
    EXPECT_EQ(buddy->freePages(), free_before);
}

} // namespace
} // namespace hh::sys
