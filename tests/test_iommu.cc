/**
 * @file
 * Tests of the vIOMMU/VFIO model: IOPT page consumption (the noise-
 * page exhaustion primitive), the per-group mapping limit, DMA
 * translation, and pinning.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "iommu/viommu.h"
#include "mm/buddy_allocator.h"

namespace hh::iommu {
namespace {

class IommuTest : public ::testing::Test
{
  protected:
    IommuTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 256_MiB;
        dram_cfg.fault.weakCellsPerRow = 0;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 256_MiB / kPageSize;
        buddy_cfg.pcp.highWatermark = 0;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    }

    VfioContainer
    container(IommuConfig cfg = {})
    {
        return VfioContainer(*dram, *buddy, cfg, /*owner=*/3);
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
};

TEST_F(IommuTest, MapTranslateUnmap)
{
    VfioContainer vfio = container();
    const GroupId group = vfio.addGroup();
    const IoVirtAddr iova(0x1'0000'0000ull);
    const HostPhysAddr target(0x5000);

    ASSERT_TRUE(vfio.mapDma(group, iova, target).ok());
    EXPECT_EQ(vfio.mappingCount(group), 1u);

    dram->write64(target + 0x18, 0xfeed);
    auto value = vfio.dmaRead64(group, iova + 0x18);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, 0xfeedu);

    ASSERT_TRUE(vfio.dmaWrite64(group, iova + 0x20, 0xbeef).ok());
    EXPECT_EQ(dram->backend().read64(target + 0x20), 0xbeefu);

    ASSERT_TRUE(vfio.unmapDma(group, iova).ok());
    EXPECT_EQ(vfio.mappingCount(group), 0u);
    EXPECT_FALSE(vfio.dmaRead64(group, iova).ok());
}

TEST_F(IommuTest, DoubleMapRejected)
{
    VfioContainer vfio = container();
    const GroupId group = vfio.addGroup();
    const IoVirtAddr iova(2_MiB);
    ASSERT_TRUE(vfio.mapDma(group, iova, HostPhysAddr(0x1000)).ok());
    EXPECT_EQ(vfio.mapDma(group, iova, HostPhysAddr(0x2000)).error(),
              base::ErrorCode::Exists);
}

TEST_F(IommuTest, TwoMbSpacedMappingsConsumeOneIoptPageEach)
{
    VfioContainer vfio = container();
    const GroupId group = vfio.addGroup();
    const uint64_t before = vfio.ioptPageCount();
    // 64 mappings spaced 2 MB apart: each lands in a fresh PT page
    // (Section 4.2.1, Figure 2).
    for (unsigned i = 0; i < 64; ++i) {
        const IoVirtAddr iova(4_GiB + i * kHugePageSize);
        ASSERT_TRUE(vfio.mapDma(group, iova, HostPhysAddr(0x3000)).ok());
    }
    const uint64_t consumed = vfio.ioptPageCount() - before;
    // 64 leaf pages plus at most a couple of upper-level tables.
    EXPECT_GE(consumed, 64u);
    EXPECT_LE(consumed, 67u);
}

TEST_F(IommuTest, DenseMappingsShareLeafPages)
{
    VfioContainer vfio = container();
    const GroupId group = vfio.addGroup();
    const uint64_t before = vfio.ioptPageCount();
    // 512 consecutive pages fit one leaf IOPT page.
    for (unsigned i = 0; i < 512; ++i) {
        ASSERT_TRUE(vfio.mapDma(group,
                                IoVirtAddr(8_GiB + i * kPageSize),
                                HostPhysAddr(0x4000))
                        .ok());
    }
    EXPECT_LE(vfio.ioptPageCount() - before, 4u);
}

TEST_F(IommuTest, IoptPagesAreUnmovableKernelAllocations)
{
    VfioContainer vfio = container();
    const GroupId group = vfio.addGroup();
    ASSERT_TRUE(
        vfio.mapDma(group, IoVirtAddr(2_MiB), HostPhysAddr(0x1000))
            .ok());
    // Find an IOPT frame and check its accounting.
    uint64_t found = 0;
    for (Pfn pfn = 0; pfn < buddy->totalPages(); ++pfn) {
        const mm::PageFrame &frame = buddy->frame(pfn);
        if (!frame.free && frame.use == mm::PageUse::IoptPage) {
            ++found;
            EXPECT_EQ(frame.migrateType, mm::MigrateType::Unmovable);
            EXPECT_EQ(frame.owner, 3u);
        }
    }
    EXPECT_GT(found, 0u);
}

TEST_F(IommuTest, MappingLimitPerGroup)
{
    IommuConfig cfg;
    cfg.maxMappingsPerGroup = 10;
    VfioContainer vfio = container(cfg);
    const GroupId group = vfio.addGroup();
    for (unsigned i = 0; i < 10; ++i) {
        ASSERT_TRUE(vfio.mapDma(group,
                                IoVirtAddr(i * kHugePageSize),
                                HostPhysAddr(0x1000))
                        .ok());
    }
    EXPECT_EQ(vfio.mapDma(group, IoVirtAddr(64_GiB),
                          HostPhysAddr(0x1000))
                  .error(),
              base::ErrorCode::LimitExceeded);
    // Unmapping frees budget.
    ASSERT_TRUE(vfio.unmapDma(group, IoVirtAddr(0)).ok());
    EXPECT_TRUE(vfio.mapDma(group, IoVirtAddr(64_GiB),
                            HostPhysAddr(0x1000))
                    .ok());
}

TEST_F(IommuTest, SeparateGroupsSeparateBudgetsAndTables)
{
    IommuConfig cfg;
    cfg.maxMappingsPerGroup = 2;
    VfioContainer vfio = container(cfg);
    const GroupId a = vfio.addGroup();
    const GroupId b = vfio.addGroup();
    EXPECT_EQ(vfio.groupCount(), 2u);
    for (unsigned i = 0; i < 2; ++i) {
        ASSERT_TRUE(vfio.mapDma(a, IoVirtAddr(i * kHugePageSize),
                                HostPhysAddr(0x1000))
                        .ok());
    }
    EXPECT_FALSE(vfio.mapDma(a, IoVirtAddr(1_GiB),
                             HostPhysAddr(0x1000))
                     .ok());
    // Group b still has budget, and the same IOVA is independent.
    EXPECT_TRUE(vfio.mapDma(b, IoVirtAddr(0), HostPhysAddr(0x2000))
                    .ok());
    auto value = vfio.dmaRead64(b, IoVirtAddr(0));
    EXPECT_TRUE(value.ok());
}

TEST_F(IommuTest, PinRangeMarksUnmovable)
{
    VfioContainer vfio = container();
    auto block = buddy->allocPages(9, mm::MigrateType::Movable,
                                   mm::PageUse::GuestMemory, 3);
    ASSERT_TRUE(block.ok());
    vfio.pinRange(*block, kPagesPerHugePage);
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        const mm::PageFrame &frame = buddy->frame(*block + i);
        EXPECT_TRUE(frame.pinned);
        EXPECT_EQ(frame.migrateType, mm::MigrateType::Unmovable);
    }
    vfio.unpinRange(*block, kPagesPerHugePage);
    EXPECT_FALSE(buddy->frame(*block).pinned);
    buddy->freePages(*block, 9);
}

TEST_F(IommuTest, InvalidGroupRejected)
{
    VfioContainer vfio = container();
    EXPECT_EQ(vfio.mapDma(99, IoVirtAddr(0), HostPhysAddr(0)).error(),
              base::ErrorCode::InvalidArgument);
    EXPECT_FALSE(vfio.dmaRead64(99, IoVirtAddr(0)).ok());
}

TEST_F(IommuTest, TeardownReturnsIoptPages)
{
    const uint64_t free_before = buddy->freePages();
    {
        VfioContainer vfio = container();
        const GroupId group = vfio.addGroup();
        for (unsigned i = 0; i < 32; ++i) {
            ASSERT_TRUE(vfio.mapDma(group,
                                    IoVirtAddr(i * kHugePageSize),
                                    HostPhysAddr(0x1000))
                            .ok());
        }
        EXPECT_LT(buddy->freePages(), free_before);
    }
    buddy->drainPcp();
    EXPECT_EQ(buddy->freePages(), free_before);
}

} // namespace
} // namespace hh::iommu
