// hh-analyze fixture: determinism-taint must follow call chains into
// wrappers that the textual raw-rand/wall-clock rules cannot see at
// the call site. The self-test treats every fixture as trial-outcome
// code (taint_roots = [""]), so each hop in the chain is a finding.
#include <random>

namespace fixture {

// The wrapper: textually clean at its call sites, tainted inside.
int
hiddenEntropy()
{
  std::random_device dev;  // expect: determinism-taint
  return static_cast<int>(dev());
}

// One hop from the primitive.
int
jitterSeed()
{
  return hiddenEntropy() * 3;  // expect: determinism-taint
}

// Two hops from the primitive: still caught.
int
pickVictimRow()
{
  return jitterSeed() & 0xff;  // expect: determinism-taint
}

}  // namespace fixture
