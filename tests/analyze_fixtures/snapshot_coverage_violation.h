// hh-analyze fixture: snapshot-field-coverage must flag every
// persistent field that does not round-trip through BOTH saveState()
// and loadState(). Self-contained on purpose: the clang frontend
// parses fixtures standalone, outside compile_commands.json.
#pragma once

struct ArchiveWriter {
  void u64(unsigned long long v);
  void f64(double v);
};
struct ArchiveReader {
  unsigned long long u64();
  double f64();
};
struct Mutex {};

class LeakyCounter {
 public:
  void saveState(ArchiveWriter& ar) const {
    ar.u64(total_);
    ar.u64(saveOnly_);
  }
  void loadState(ArchiveReader& ar) {
    total_ = ar.u64();
    loadOnly_ = ar.u64();
  }

 private:
  unsigned long long total_ = 0;
  unsigned long long saveOnly_ = 0;  // expect: snapshot-field-coverage
  unsigned long long loadOnly_ = 0;  // expect: snapshot-field-coverage
  double neverTouched_ = 0.0;  // expect: snapshot-field-coverage
  // hh-lint: allow(snapshot-field-coverage) -- scratch, rebuilt on load
  double scratch_ = 0.0;
  Mutex mu_;               // sync primitive: holds no logical state
  const int config_ = 4;   // construction-time configuration: exempt
};
