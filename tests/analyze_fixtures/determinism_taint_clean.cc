// hh-analyze fixture: deterministic call chains -- seeds threaded in
// by value, fixed-point mixing -- must not be reported even though
// the self-test treats every fixture as trial-outcome code.

namespace fixture {

int
mixSeed(int a, int b)
{
  return a * 40503 + b;
}

int
pickVictimRowDeterministic(int seed)
{
  return mixSeed(seed, 17) & 0xff;
}

int
pickAggressorRow(int seed)
{
  return pickVictimRowDeterministic(seed) + 1;
}

}  // namespace fixture
