// hh-analyze fixture: Defense subclasses carry tuning state that
// rides in every checkpoint; a knob persisted in one direction only
// makes a resumed campaign silently diverge from the original.
// Self-contained on purpose: the frontend parses fixtures standalone,
// outside compile_commands.json.
#pragma once

struct ArchiveWriter {
  void u64(unsigned long long v);
  void boolean(bool v);
};
struct ArchiveReader {
  unsigned long long u64();
  bool boolean();
};

class Defense {
 public:
  virtual ~Defense() = default;
  virtual void saveState(ArchiveWriter& ar) const;
  virtual void loadState(ArchiveReader& ar);
};

// A partitioning defense that persists its partition size but forgets
// the double-ownership-hole flag (a checkpoint taken with the hole
// open would resume with it closed) and restores a NACK counter it
// never saved.
class HolePartition : public Defense {
 public:
  void saveState(ArchiveWriter& ar) const override {
    Defense::saveState(ar);
    ar.u64(kernelBytes_);
  }
  void loadState(ArchiveReader& ar) override {
    Defense::loadState(ar);
    kernelBytes_ = ar.u64();
    nacked_ = ar.u64();
  }

 private:
  unsigned long long kernelBytes_ = 0;
  bool holeOpen_ = false;          // expect: snapshot-field-coverage
  unsigned long long nacked_ = 0;  // expect: snapshot-field-coverage
};
