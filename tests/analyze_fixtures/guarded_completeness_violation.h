// hh-analyze fixture: guarded-field-completeness -- once a class
// annotates any field with HH_GUARDED_BY, sibling mutable fields
// touched from lambdas (the ThreadPool-callback shape) must be
// annotated too.
#pragma once

#define HH_GUARDED_BY(x)

struct Mutex {};
template <typename F>
void enqueue(F f);

class WorkTracker {
 public:
  void bump() {
    enqueue([this] {
      pending_++;
      completed_++;
    });
  }

 private:
  Mutex mu_;
  int pending_ HH_GUARDED_BY(mu_) = 0;
  int completed_ = 0;  // expect: guarded-field-completeness
};
