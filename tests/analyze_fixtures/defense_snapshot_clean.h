// hh-analyze fixture: a Defense subclass whose checkpoint coverage is
// complete -- every tuning knob round-trips through both saveState()
// and loadState(), including through the base-class prefix -- must
// stay silent.
#pragma once

struct ArchiveWriter {
  void u64(unsigned long long v);
  void boolean(bool v);
};
struct ArchiveReader {
  unsigned long long u64();
  bool boolean();
};

class Defense {
 public:
  virtual ~Defense() = default;
  virtual void saveState(ArchiveWriter& ar) const;
  virtual void loadState(ArchiveReader& ar);
};

class TidyPartition : public Defense {
 public:
  void saveState(ArchiveWriter& ar) const override {
    Defense::saveState(ar);
    ar.u64(kernelBytes_);
    ar.boolean(holeOpen_);
  }
  void loadState(ArchiveReader& ar) override {
    Defense::loadState(ar);
    kernelBytes_ = ar.u64();
    holeOpen_ = ar.boolean();
  }

 private:
  unsigned long long kernelBytes_ = 0;
  bool holeOpen_ = false;
};
