// hh-analyze fixture: Status results that are checked, propagated, or
// bound to a variable are not discards.

struct Status {
  bool ok() const;
};

Status flushRow(int row);

bool
drainChecked()
{
  Status st = flushRow(1);
  if (!st.ok()) {
    return false;
  }
  return flushRow(2).ok();
}

Status
drainPropagated()
{
  return flushRow(3);
}
