// hh-analyze fixture: guarded classes whose lambda-touched state is
// fully annotated -- or whose unannotated fields never cross into a
// callback -- must stay silent.
#pragma once

#define HH_GUARDED_BY(x)

struct Mutex {};
template <typename F>
void enqueue(F f);

class TidyTracker {
 public:
  void bump() {
    enqueue([this] { pending_++; });
  }

 private:
  Mutex mu_;
  int pending_ HH_GUARDED_BY(mu_) = 0;
  // Written once during configuration, before any callback exists;
  // never referenced from a lambda, so no annotation is demanded.
  int configuredOnce_ = 0;
};
