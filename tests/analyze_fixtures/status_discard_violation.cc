// hh-analyze fixture: status-discard must catch Status/Expected
// results dropped via (void) casts, bare call statements, and
// discards inside destructors and catch blocks.

struct Status {
  bool ok() const;
};

Status unplugDevice();
Status flushRow(int row);
int countRows();

class Teardown {
 public:
  ~Teardown();
  void drain();
  void shutdownQuietly();
};

void
Teardown::drain()
{
  (void)unplugDevice();  // expect: status-discard
  flushRow(3);  // expect: status-discard
  // hh-lint: allow(status-discard) -- best-effort flush on drain
  (void)flushRow(4);
  (void)countRows();  // int result: not a Status discard
  if (flushRow(5).ok()) {
    return;
  }
}

Teardown::~Teardown()
{
  (void)flushRow(9);  // expect: status-discard
}

void
Teardown::shutdownQuietly()
{
  try {
    drain();
  } catch (...) {
    (void)unplugDevice();  // expect: status-discard
  }
}
