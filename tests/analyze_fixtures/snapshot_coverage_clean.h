// hh-analyze fixture: classes whose snapshot coverage is complete --
// or that do not speak the ArchiveWriter protocol at all -- must stay
// silent.
#pragma once

struct ArchiveWriter {
  void u64(unsigned long long v);
};
struct ArchiveReader {
  unsigned long long u64();
};

class TidyCounter {
 public:
  void saveState(ArchiveWriter& ar) const {
    ar.u64(total_);
    ar.u64(flips_);
  }
  void loadState(ArchiveReader& ar) {
    total_ = ar.u64();
    flips_ = ar.u64();
  }

 private:
  unsigned long long total_ = 0;
  unsigned long long flips_ = 0;
};

// saveState() without an ArchiveWriter parameter is a different
// protocol (base::Rng hands back its raw state by value); the rule
// must not claim its fields.
class RawStateRng {
 public:
  unsigned long long saveState() const { return s_; }
  void loadState(unsigned long long s) { s_ = s; }

 private:
  unsigned long long s_ = 1;
};

// Save-only types (no loadState at all) are not snapshot classes.
class WriteOnlyProbe {
 public:
  void saveState(ArchiveWriter& ar) const { ar.u64(hits_); }

 private:
  unsigned long long hits_ = 0;
  unsigned long long misses_ = 0;
};
