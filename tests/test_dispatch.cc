/**
 * @file
 * hh::dispatch unit and supervisor tests.
 *
 * Three groups. The data-plane group covers deterministic backoff,
 * the crash-safe ledger (.prev rotation, corruption, NotFound) and
 * the gap-manifest JSON round trip. The supervisor group drives real
 * fork()ed workers -- in-process lambdas standing in for hh_sweep's
 * fork+exec -- through every lifecycle edge: happy path, flaky worker
 * retry, attempt-cap quarantine with a degraded partial report,
 * hanging-worker lease reclaim, the forced-quarantine hook, and
 * ledger resume (Done revalidation, demotion of lost artifacts,
 * foreign-campaign rejection). The chaos group forces each of the
 * four dispatch.* fault sites with probability-1 plans and checks the
 * supervisor recovers to the exact merged result every time.
 *
 * Workers write synthetic shard artifacts that are pure functions of
 * their range, so retries reproduce identical bytes and every test
 * can compare the supervisor's merged result against a strict
 * in-process mergeShards of the same tiling.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "dispatch/dispatch.h"
#include "dispatch/supervisor.h"
#include "dispatch/wall.h"
#include "fault/fault.h"
#include "shard/shard.h"
#include "snapshot/checkpoint_policy.h"
#include "snapshot/resume_identity.h"

namespace hh {
namespace {

constexpr uint64_t kFp = 0xabcdef0123456789ull;
constexpr uint64_t kTotal = 6;

attack::AttemptOutcome
syntheticOutcome(uint64_t trial)
{
    attack::AttemptOutcome outcome;
    outcome.success = false;
    outcome.bitsTargeted = static_cast<unsigned>(1 + trial % 12);
    outcome.releasedSubBlocks = trial * 3 + 1;
    outcome.demotions = trial * 5 + 2;
    outcome.changedPages = trial * 7 + 3;
    outcome.epteCandidates = trial % 4;
    outcome.duration = base::SimTime(1000 + trial * 17);
    outcome.retries = static_cast<unsigned>(trial % 3);
    outcome.backoffTime = base::SimTime(trial * 11);
    outcome.faultsFired = trial % 2;
    return outcome;
}

/** The artifact every worker (and the reference) derives from a
 *  range: a pure function, so a retried attempt rewrites the same
 *  bytes a first attempt would have. */
shard::ShardResult
shardFor(const shard::ShardRange &range)
{
    shard::ShardResult shard;
    shard.manifest.campaignFingerprint = kFp;
    shard.manifest.totalTrials = kTotal;
    shard.manifest.range = range;
    for (uint64_t trial = range.begin; trial < range.end; ++trial)
        shard.outcomes.push_back(syntheticOutcome(trial));
    return shard;
}

std::vector<shard::ShardRange>
ranges3()
{
    return {{0, 2}, {2, 4}, {4, 6}};
}

attack::AttackResult
referenceResult()
{
    std::vector<shard::ShardResult> shards;
    for (const shard::ShardRange &range : ranges3())
        shards.push_back(shardFor(range));
    auto merged = shard::mergeShards(std::move(shards));
    EXPECT_TRUE(merged.ok());
    return *merged;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "dispatch_" + name;
    ::mkdir(dir.c_str(), 0777); // EEXIST is fine; files are rewritten
    return dir;
}

dispatch::SupervisorConfig
testConfig(const std::string &dir)
{
    dispatch::SupervisorConfig cfg;
    cfg.ledgerPath = dir + "/ledger.bin";
    cfg.artifactDir = dir;
    cfg.pollSeconds = 0.01;
    cfg.backoff.baseMs = 1;
    cfg.backoff.capMs = 4;
    return cfg;
}

/**
 * Fork a worker whose behaviour is chosen by @p mode:
 *   "ok"        write the artifact, exit 0
 *   "flaky"     exit 1 on attempt 1, behave like "ok" after
 *   "crash"     exit 1 always
 *   "hang"      beat once, then sleep forever (attempt 1 only)
 *   "slowbeat"  beat, linger half a second, then write + exit 0
 */
dispatch::WorkerLauncher
forkWorker(const std::string &mode)
{
    return [mode](const dispatch::WorkerSpec &spec) -> long {
        const pid_t pid = ::fork();
        if (pid != 0)
            return pid;
        if (mode == "crash"
            || (mode == "flaky" && spec.attempt == 1))
            ::_exit(1);
        if (mode == "hang" && spec.attempt == 1) {
            snapshot::touchHeartbeat(spec.heartbeatPath, 0);
            for (;;)
                dispatch::sleepSeconds(0.05); // await SIGKILL
        }
        if (mode == "slowbeat") {
            snapshot::touchHeartbeat(spec.heartbeatPath,
                                     spec.range.begin);
            dispatch::sleepSeconds(0.5);
        }
        if (!shard::saveShard(spec.artifactPath,
                              shardFor(spec.range))
                 .ok())
            ::_exit(9);
        ::_exit(0);
    };
}

// ------------------------------------------------------------- backoff

TEST(Backoff, IsAPureFunctionOfItsArguments)
{
    const dispatch::BackoffConfig cfg;
    for (uint32_t attempt = 1; attempt < 6; ++attempt) {
        const uint64_t a =
            dispatch::backoffDelayMs(kFp, 3, attempt, cfg);
        const uint64_t b =
            dispatch::backoffDelayMs(kFp, 3, attempt, cfg);
        EXPECT_EQ(a, b) << "attempt " << attempt;
    }
}

TEST(Backoff, GrowsExponentiallyAndCaps)
{
    dispatch::BackoffConfig cfg;
    cfg.baseMs = 100;
    cfg.capMs = 1'000;
    EXPECT_EQ(dispatch::backoffDelayMs(kFp, 0, 0, cfg), 0u);
    for (uint32_t attempt = 1; attempt < 64; ++attempt) {
        const uint64_t delay =
            dispatch::backoffDelayMs(kFp, 0, attempt, cfg);
        // min(cap, base * 2^(a-1)) plus jitter in [0, delay/2].
        const uint64_t core =
            std::min<uint64_t>(cfg.capMs,
                               cfg.baseMs
                                   << std::min<uint32_t>(attempt - 1,
                                                         40));
        EXPECT_GE(delay, core) << "attempt " << attempt;
        EXPECT_LE(delay, core + core / 2) << "attempt " << attempt;
    }
}

TEST(Backoff, JitterVariesAcrossShards)
{
    dispatch::BackoffConfig cfg;
    cfg.baseMs = 1'000;
    cfg.capMs = 1'000'000;
    bool varied = false;
    for (uint32_t shard = 1; shard < 16 && !varied; ++shard)
        varied = dispatch::backoffDelayMs(kFp, 0, 4, cfg)
            != dispatch::backoffDelayMs(kFp, shard, 4, cfg);
    EXPECT_TRUE(varied);
}

// -------------------------------------------------------------- ledger

dispatch::Ledger
syntheticLedger()
{
    dispatch::Ledger ledger;
    ledger.campaignFingerprint = kFp;
    ledger.totalTrials = kTotal;
    uint32_t index = 0;
    for (const shard::ShardRange &range : ranges3()) {
        dispatch::ShardJob job;
        job.index = index++;
        job.range = range;
        ledger.jobs.push_back(job);
    }
    ledger.jobs[0].state = dispatch::ShardState::Done;
    ledger.jobs[1].state = dispatch::ShardState::Retrying;
    ledger.jobs[1].attempts = 2;
    ledger.jobs[1].lastFailure = dispatch::kFailureLeaseExpired;
    return ledger;
}

TEST(Ledger, SaveLoadRoundTrips)
{
    const std::string path =
        freshDir("ledger_rt") + "/ledger.bin";
    const dispatch::Ledger ledger = syntheticLedger();
    ASSERT_TRUE(dispatch::saveLedger(path, ledger).ok());
    const auto loaded = dispatch::loadLedger(path);
    ASSERT_TRUE(loaded.ok()) << base::errorName(loaded.error());
    EXPECT_EQ(loaded->campaignFingerprint, kFp);
    EXPECT_EQ(loaded->totalTrials, kTotal);
    ASSERT_EQ(loaded->jobs.size(), 3u);
    EXPECT_EQ(loaded->jobs[0].state, dispatch::ShardState::Done);
    EXPECT_EQ(loaded->jobs[1].state, dispatch::ShardState::Retrying);
    EXPECT_EQ(loaded->jobs[1].attempts, 2u);
    EXPECT_EQ(loaded->jobs[1].lastFailure,
              dispatch::kFailureLeaseExpired);
    EXPECT_EQ(loaded->jobs[2].range.end, 6u);
    EXPECT_FALSE(loaded->settled());
    EXPECT_EQ(loaded->quarantined(), 0u);
}

TEST(Ledger, PrevRotationSurvivesACorruptPrimary)
{
    const std::string path =
        freshDir("ledger_prev") + "/ledger.bin";
    dispatch::Ledger ledger = syntheticLedger();
    ASSERT_TRUE(dispatch::saveLedger(path, ledger).ok());
    ledger.jobs[1].state = dispatch::ShardState::Done;
    ASSERT_TRUE(dispatch::saveLedger(path, ledger).ok());
    // Tear the primary mid-write; the rotation's .prev must answer.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "torn";
    }
    const auto loaded = dispatch::loadLedger(path);
    ASSERT_TRUE(loaded.ok()) << base::errorName(loaded.error());
    // The .prev holds the FIRST save (one generation old).
    EXPECT_EQ(loaded->jobs[1].state, dispatch::ShardState::Retrying);
}

TEST(Ledger, MissingBothFilesIsNotFound)
{
    const auto loaded = dispatch::loadLedger(
        freshDir("ledger_none") + "/ledger.bin");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error(), base::ErrorCode::NotFound);
}

// -------------------------------------------------------- gap manifest

TEST(GapManifest, SaveLoadRoundTrips)
{
    const std::string path =
        freshDir("gaps_rt") + "/gaps.json";
    dispatch::GapManifest manifest;
    manifest.campaignFingerprint = kFp;
    manifest.totalTrials = 64;
    manifest.campaign.trials = 64;
    manifest.campaign.threads = 4;
    manifest.campaign.seed = 7;
    manifest.campaign.hostGib = 2;
    manifest.campaign.faultSeed = 11;
    manifest.campaign.faultIntensity = 0.35;
    manifest.campaign.checkpointEvery = 3;
    manifest.artifacts = {"out/shard_0.bin", "out/shard_2.bin"};
    manifest.missing = {{8, 16}, {24, 32}};
    ASSERT_TRUE(dispatch::saveGapManifest(path, manifest).ok());
    const auto loaded = dispatch::loadGapManifest(path);
    ASSERT_TRUE(loaded.ok()) << base::errorName(loaded.error());
    EXPECT_EQ(loaded->campaignFingerprint, kFp);
    EXPECT_EQ(loaded->totalTrials, 64u);
    EXPECT_EQ(loaded->campaign.trials, 64u);
    EXPECT_EQ(loaded->campaign.threads, 4u);
    EXPECT_EQ(loaded->campaign.seed, 7u);
    EXPECT_EQ(loaded->campaign.hostGib, 2u);
    EXPECT_EQ(loaded->campaign.faultSeed, 11u);
    EXPECT_DOUBLE_EQ(loaded->campaign.faultIntensity, 0.35);
    EXPECT_EQ(loaded->campaign.checkpointEvery, 3u);
    ASSERT_EQ(loaded->artifacts.size(), 2u);
    EXPECT_EQ(loaded->artifacts[1], "out/shard_2.bin");
    ASSERT_EQ(loaded->missing.size(), 2u);
    EXPECT_EQ(loaded->missing[0].begin, 8u);
    EXPECT_EQ(loaded->missing[1].end, 32u);
}

TEST(GapManifest, GarbageIsRejected)
{
    const std::string path =
        freshDir("gaps_bad") + "/gaps.json";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "not a manifest";
    }
    EXPECT_FALSE(dispatch::loadGapManifest(path).ok());
}

TEST(GapManifest, MissingFileIsAnError)
{
    EXPECT_FALSE(dispatch::loadGapManifest(
                     freshDir("gaps_none") + "/gaps.json")
                     .ok());
}

TEST(Heartbeat, TouchAndReadRoundTrip)
{
    const std::string path =
        freshDir("hb") + "/worker.hb";
    std::remove(path.c_str()); // earlier runs share TempDir
    EXPECT_EQ(dispatch::readHeartbeat(path), "");
    snapshot::touchHeartbeat(path, 41);
    const std::string first = dispatch::readHeartbeat(path);
    EXPECT_NE(first, "");
    snapshot::touchHeartbeat(path, 42);
    EXPECT_NE(dispatch::readHeartbeat(path), first);
}

// ---------------------------------------------------------- supervisor

void
expectExactResult(const shard::SweepReport &report)
{
    EXPECT_FALSE(report.partial());
    EXPECT_TRUE(report.exact);
    const std::vector<std::string> mismatches =
        snapshot::diffAttackResults(referenceResult(), report.result);
    std::string joined;
    for (const std::string &field : mismatches)
        joined += " " + field;
    EXPECT_TRUE(mismatches.empty()) << "mismatched:" << joined;
}

TEST(Supervisor, HappyPathMergesEveryShard)
{
    dispatch::Supervisor sup(testConfig(freshDir("happy")),
                             forkWorker("ok"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_TRUE(sup.ledger().settled());
    EXPECT_EQ(sup.ledger().quarantined(), 0u);
    EXPECT_EQ(sup.stats().launches, 3u);
    EXPECT_EQ(sup.stats().retries, 0u);
    for (const dispatch::ShardJob &job : sup.ledger().jobs) {
        EXPECT_EQ(job.state, dispatch::ShardState::Done);
        EXPECT_EQ(job.attempts, 1u);
    }
}

TEST(Supervisor, FlakyWorkersAreRetriedToSuccess)
{
    dispatch::Supervisor sup(testConfig(freshDir("flaky")),
                             forkWorker("flaky"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(sup.stats().retries, 3u);
    EXPECT_EQ(sup.stats().launches, 6u);
    for (const dispatch::ShardJob &job : sup.ledger().jobs)
        EXPECT_EQ(job.attempts, 2u);
}

TEST(Supervisor, AttemptCapQuarantinesAndReportsTheHole)
{
    dispatch::SupervisorConfig cfg = testConfig(freshDir("quar"));
    cfg.maxAttempts = 2;
    // Shard 1 always crashes; the others are healthy.
    dispatch::Supervisor sup(
        cfg, [](const dispatch::WorkerSpec &spec) -> long {
            return forkWorker(spec.shardIndex == 1 ? "crash"
                                                   : "ok")(spec);
        });
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    EXPECT_TRUE(report->partial());
    EXPECT_FALSE(report->exact);
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 2u);
    EXPECT_EQ(report->missing[0].end, 4u);
    EXPECT_EQ(report->result.attempts, 4u);
    EXPECT_EQ(sup.ledger().quarantined(), 1u);
    EXPECT_EQ(sup.stats().quarantines, 1u);
    const dispatch::ShardJob &bad = sup.ledger().jobs[1];
    EXPECT_EQ(bad.state, dispatch::ShardState::Quarantined);
    EXPECT_EQ(bad.attempts, 2u);
    EXPECT_GT(bad.lastFailure, 0); // a real wait status, not a code
}

TEST(Supervisor, HangingWorkerLeaseIsReclaimed)
{
    dispatch::SupervisorConfig cfg = testConfig(freshDir("hang"));
    cfg.leaseSeconds = 0.3;
    // Only shard 0 hangs (on its first attempt).
    dispatch::Supervisor sup(
        cfg, [](const dispatch::WorkerSpec &spec) -> long {
            return forkWorker(spec.shardIndex == 0 ? "hang"
                                                   : "ok")(spec);
        });
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_GE(sup.stats().leaseExpiries, 1u);
    // The hole was reclaimed, relaunched and finished: success clears
    // lastFailure, and the extra attempt shows in the ledger.
    EXPECT_EQ(sup.ledger().jobs[0].lastFailure, 0);
    EXPECT_GE(sup.ledger().jobs[0].attempts, 2u);
    EXPECT_EQ(sup.ledger().jobs[0].state, dispatch::ShardState::Done);
}

TEST(Supervisor, ForceQuarantineHookExcludesTheShard)
{
    dispatch::SupervisorConfig cfg = testConfig(freshDir("force"));
    cfg.forceQuarantine = {2};
    dispatch::Supervisor sup(cfg, forkWorker("ok"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    EXPECT_TRUE(report->partial());
    ASSERT_EQ(report->missing.size(), 1u);
    EXPECT_EQ(report->missing[0].begin, 4u);
    EXPECT_EQ(report->missing[0].end, 6u);
    EXPECT_EQ(sup.stats().launches, 2u);
    EXPECT_EQ(sup.ledger().jobs[2].lastFailure,
              dispatch::kFailureQuarantineHook);
}

TEST(Supervisor, ResumeRevalidatesDoneWorkWithoutRelaunching)
{
    const std::string dir = freshDir("resume_done");
    {
        dispatch::Supervisor first(testConfig(dir), forkWorker("ok"));
        ASSERT_TRUE(
            first.openSweep(kFp, kTotal, ranges3(), false).ok());
        ASSERT_TRUE(first.runSweep().ok());
    }
    dispatch::Supervisor second(testConfig(dir), forkWorker("ok"));
    ASSERT_TRUE(second.openSweep(kFp, kTotal, ranges3(), true).ok());
    const auto report = second.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(second.stats().launches, 0u);
}

TEST(Supervisor, ResumeDemotesDoneJobsWithLostArtifacts)
{
    const std::string dir = freshDir("resume_lost");
    {
        dispatch::Supervisor first(testConfig(dir), forkWorker("ok"));
        ASSERT_TRUE(
            first.openSweep(kFp, kTotal, ranges3(), false).ok());
        ASSERT_TRUE(first.runSweep().ok());
        std::remove(first.artifactPath(1).c_str());
    }
    dispatch::Supervisor second(testConfig(dir), forkWorker("ok"));
    ASSERT_TRUE(second.openSweep(kFp, kTotal, ranges3(), true).ok());
    const auto report = second.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(second.stats().launches, 1u);
}

TEST(Supervisor, ResumeReclaimsLeasedAndRetryingJobs)
{
    // A ledger as a kill -9'd supervisor would leave it: one shard
    // Done (with its artifact), one Leased (orphaned), one Retrying.
    const std::string dir = freshDir("resume_states");
    dispatch::SupervisorConfig cfg = testConfig(dir);
    dispatch::Ledger ledger;
    ledger.campaignFingerprint = kFp;
    ledger.totalTrials = kTotal;
    uint32_t index = 0;
    for (const shard::ShardRange &range : ranges3()) {
        dispatch::ShardJob job;
        job.index = index++;
        job.range = range;
        ledger.jobs.push_back(job);
    }
    ledger.jobs[0].state = dispatch::ShardState::Done;
    ledger.jobs[0].attempts = 1;
    ledger.jobs[1].state = dispatch::ShardState::Leased;
    ledger.jobs[1].attempts = 1;
    ledger.jobs[2].state = dispatch::ShardState::Retrying;
    ledger.jobs[2].attempts = 1;
    ASSERT_TRUE(dispatch::saveLedger(cfg.ledgerPath, ledger).ok());
    ASSERT_TRUE(shard::saveShard(cfg.artifactDir + "/shard_0.bin",
                                 shardFor({0, 2}))
                    .ok());

    dispatch::Supervisor sup(cfg, forkWorker("ok"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), true).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(sup.stats().launches, 2u); // shard 0 was revalidated
}

TEST(Supervisor, ResumeRejectsAForeignCampaign)
{
    const std::string dir = freshDir("resume_foreign");
    dispatch::SupervisorConfig cfg = testConfig(dir);
    {
        dispatch::Supervisor first(cfg, forkWorker("ok"));
        ASSERT_TRUE(
            first.openSweep(kFp, kTotal, ranges3(), false).ok());
        ASSERT_TRUE(first.runSweep().ok());
    }
    dispatch::Supervisor second(cfg, forkWorker("ok"));
    EXPECT_FALSE(
        second.openSweep(kFp + 1, kTotal, ranges3(), true).ok());
}

TEST(Supervisor, ResumeWithoutALedgerIsAnError)
{
    dispatch::Supervisor sup(testConfig(freshDir("resume_none")),
                             forkWorker("ok"));
    EXPECT_FALSE(sup.openSweep(kFp, kTotal, ranges3(), true).ok());
}

// --------------------------------------------------------------- chaos

fault::FaultPlan
oneShot(fault::FaultSite site, fault::FaultKind kind,
        uint64_t param = 0)
{
    fault::FaultEntry entry;
    entry.site = site;
    entry.kind = kind;
    entry.count = 1;
    entry.param = param;
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.add(entry);
    return plan;
}

TEST(SupervisorChaos, SpawnFaultConsumesAnAttemptAndRetries)
{
    fault::FaultInjector injector(
        oneShot(fault::FaultSite::DispatchSpawn,
                fault::FaultKind::SpawnFail),
        1);
    dispatch::SupervisorConfig cfg = testConfig(freshDir("c_spawn"));
    cfg.injector = &injector;
    dispatch::Supervisor sup(cfg, forkWorker("ok"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(sup.stats().spawnFailures, 1u);
    EXPECT_EQ(sup.stats().retries, 1u);
    EXPECT_EQ(injector.totalFired(), 1u);
}

TEST(SupervisorChaos, TornArtifactIsDetectedAndRecomputed)
{
    fault::FaultInjector injector(
        oneShot(fault::FaultSite::DispatchArtifact,
                fault::FaultKind::TornArtifact, /*param=*/7),
        1);
    dispatch::SupervisorConfig cfg = testConfig(freshDir("c_torn"));
    cfg.injector = &injector;
    dispatch::Supervisor sup(cfg, forkWorker("ok"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(sup.stats().tornArtifacts, 1u);
    EXPECT_GE(sup.stats().retries, 1u);
}

TEST(SupervisorChaos, HeartbeatLossEatsAnObservation)
{
    fault::FaultInjector injector(
        oneShot(fault::FaultSite::DispatchHeartbeat,
                fault::FaultKind::HeartbeatLoss),
        1);
    dispatch::SupervisorConfig cfg = testConfig(freshDir("c_beat"));
    cfg.injector = &injector;
    cfg.maxParallel = 1; // serialize so the beat is surely observed
    dispatch::Supervisor sup(cfg, forkWorker("slowbeat"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    // The lease is long (default 30 s): losing one observation must
    // not kill a healthy worker, only widen its reclaim window.
    expectExactResult(*report);
    EXPECT_EQ(sup.stats().heartbeatLossFaults, 1u);
    EXPECT_EQ(sup.stats().leaseExpiries, 0u);
}

TEST(SupervisorChaos, SpuriousMergeBusyForcesRecollection)
{
    fault::FaultInjector injector(
        oneShot(fault::FaultSite::DispatchMerge,
                fault::FaultKind::SpuriousBusy),
        1);
    dispatch::SupervisorConfig cfg = testConfig(freshDir("c_merge"));
    cfg.injector = &injector;
    dispatch::Supervisor sup(cfg, forkWorker("ok"));
    ASSERT_TRUE(sup.openSweep(kFp, kTotal, ranges3(), false).ok());
    const auto report = sup.runSweep();
    ASSERT_TRUE(report.ok()) << base::errorName(report.error());
    expectExactResult(*report);
    EXPECT_EQ(sup.stats().mergeBusyRetries, 1u);
}

} // namespace
} // namespace hh
