/**
 * @file
 * Unit tests for hh::base: bit operations, RNG, clock, status types and
 * statistics accumulators.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/bitops.h"
#include "base/rng.h"
#include "base/sim_clock.h"
#include "base/stats.h"
#include "base/status.h"
#include "base/types.h"

namespace hh::base {
namespace {

TEST(Bitops, BitAndBits)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bits(0xabcd, 15, 8), 0xabu);
    EXPECT_EQ(bits(0xabcd, 7, 0), 0xcdu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(Bitops, SetAndFlip)
{
    EXPECT_EQ(setBit(0, 5, true), 32u);
    EXPECT_EQ(setBit(32, 5, false), 0u);
    EXPECT_EQ(flipBit(0, 5), 32u);
    EXPECT_EQ(flipBit(32, 5), 0u);
}

TEST(Bitops, XorFoldAndMaskParity)
{
    // Bits 6 and 13 of 0x2040 are both set: parity 0.
    EXPECT_EQ(xorFold(0x2040, {6, 13}), 0u);
    EXPECT_EQ(xorFold(0x0040, {6, 13}), 1u);
    EXPECT_EQ(maskParity(0x2040, (1ull << 6) | (1ull << 13)), 0u);
    EXPECT_EQ(maskParity(0x0040, (1ull << 6) | (1ull << 13)), 1u);
}

TEST(Bitops, Log2Helpers)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(16_GiB), 34u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(16_GiB), 34u);
}

TEST(Bitops, PowerOfTwoAndAlign)
{
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(alignUp(1, 4096), 4096u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
}

TEST(TypedAddr, PageArithmetic)
{
    HostPhysAddr addr(0x20'1234);
    EXPECT_EQ(addr.pfn(), 0x201u);
    EXPECT_EQ(addr.pageOffset(), 0x234u);
    EXPECT_EQ(addr.pageBase().value(), 0x20'1000u);
    EXPECT_EQ(addr.hugePageBase().value(), 0x20'0000u);
    EXPECT_EQ(addr.hugePageOffset(), 0x1234u);
    EXPECT_FALSE(addr.pageAligned());
    EXPECT_TRUE(addr.pageBase().pageAligned());
    EXPECT_TRUE(addr.hugePageBase().hugePageAligned());
}

TEST(TypedAddr, ArithmeticAndComparison)
{
    GuestPhysAddr a(100);
    GuestPhysAddr b = a + 28;
    EXPECT_EQ(b.value(), 128u);
    EXPECT_EQ(b - a, 28u);
    EXPECT_LT(a, b);
    a += 28;
    EXPECT_EQ(a, b);
}

TEST(Rng, Deterministic)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7);
    Rng b(8);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(1);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(2);
    std::vector<int> counts(8, 0);
    const int n = 80'000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(8)];
    for (int c : counts) {
        EXPECT_GT(c, n / 8 - 800);
        EXPECT_LT(c, n / 8 + 800);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        // hh-lint: allow(float-accumulation) -- fixed-order serial sum
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(0.0));
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    rng.shuffle(v);
    std::set<int> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 8u);
}

TEST(Rng, ForkIndependent)
{
    Rng a(6);
    Rng child = a.fork();
    EXPECT_NE(a(), child());
}

TEST(Rng, MixStructuredInputsUniform)
{
    // Regression test for the fault-model seeding bug: the minimum of
    // many draws over a structured (bank, row) grid must reach the
    // small values a uniform distribution produces.
    double min_u = 1.0;
    for (uint64_t row = 0; row < 2048; ++row) {
        for (uint64_t bank = 0; bank < 32; ++bank) {
            uint64_t s = 12345 ^ (row * 0x9e3779b97f4a7c15ull)
                ^ ((bank + 1) * 0xc2b2ae3d27d4eb4full);
            (void)splitMix64(s);
            const double u =
                static_cast<double>(splitMix64(s) >> 11) * 0x1.0p-53;
            min_u = std::min(min_u, u);
        }
    }
    EXPECT_LT(min_u, 1.0 / 4000);
}

TEST(SimClock, AdvanceAndFormat)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(90 * kSecond);
    EXPECT_EQ(clock.now(), 90 * kSecond);
    EXPECT_EQ(SimClock::format(90 * kSecond), "1.5 min");
    EXPECT_EQ(SimClock::format(36 * kHour), "1.5 d");
    EXPECT_EQ(SimClock::format(500), "500 ns");
    EXPECT_EQ(SimClock::format(2 * kMillisecond), "2.00 ms");
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

TEST(SimClock, ScopedTimer)
{
    SimClock clock;
    SimTime elapsed = 0;
    {
        ScopedTimer timer(clock, elapsed);
        clock.advance(123);
    }
    EXPECT_EQ(elapsed, 123u);
}

TEST(Status, OkAndError)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    Status bad(ErrorCode::NoMemory);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), ErrorCode::NoMemory);
    EXPECT_STREQ(errorName(ErrorCode::NoMemory), "NoMemory");
    EXPECT_STREQ(errorName(ErrorCode::Denied), "Denied");
}

TEST(Expected, ValueAndError)
{
    Expected<int> good(42);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(*good, 42);
    EXPECT_EQ(good.valueOr(0), 42);

    Expected<int> bad(ErrorCode::NotFound);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), ErrorCode::NotFound);
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(RunningStats, MeanAndVariance)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
    stats.reset();
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(Histogram, Buckets)
{
    Histogram hist(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        hist.add(i + 0.5);
    hist.add(-1.0);
    hist.add(11.0);
    EXPECT_EQ(hist.count(), 12u);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(hist.bucket(i), 1u);
    EXPECT_EQ(hist.underflowCount(), 1u);
    EXPECT_EQ(hist.overflowCount(), 1u);
    EXPECT_DOUBLE_EQ(hist.bucketLow(3), 3.0);
}

TEST(Series, AppendAndRead)
{
    Series series("noise");
    EXPECT_TRUE(series.empty());
    series.add(1.0, 2.0);
    series.add(2.0, 1.0);
    EXPECT_EQ(series.name(), "noise");
    ASSERT_EQ(series.data().size(), 2u);
    EXPECT_DOUBLE_EQ(series.data()[1].y, 1.0);
}

TEST(SizeLiterals, Values)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024);
    EXPECT_EQ(2_GiB, 2ull << 30);
    EXPECT_EQ(kPagesPerHugePage, 512u);
}

// --- pinned test vectors ---------------------------------------------------
//
// Every stochastic subsystem derives its streams from splitMix64 /
// mix64 / SeedSequence, so these constants pin the whole simulator's
// random universe: a change here silently invalidates every golden
// trace and every stored snapshot fingerprint. If one of these tests
// fails, the generator changed -- re-baseline tests/golden/ and bump
// the snapshot format version, or revert.

TEST(RngVectors, SplitMix64Pinned)
{
    uint64_t s = 0;
    EXPECT_EQ(splitMix64(s), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitMix64(s), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(splitMix64(s), 0x06c45d188009454full);
    uint64_t s42 = 42;
    EXPECT_EQ(splitMix64(s42), 0xbdd732262feb6e95ull);
}

TEST(RngVectors, Mix64Pinned)
{
    EXPECT_EQ(mix64(0, 0), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(mix64(1, 2), 0xa3efbcce2e044f84ull);
    EXPECT_EQ(mix64(2, 1), 0x88a32f63162d1170ull); // not commutative
    EXPECT_EQ(mix64(42, 7), 0x0dad47f980930d86ull);
}

TEST(RngVectors, SeedSequencePinned)
{
    constexpr SeedSequence seq(42);
    EXPECT_EQ(seq.seed(0), 0xd7b58b9fb835aee9ull);
    EXPECT_EQ(seq.seed(1), 0xc1749176f9c9caa6ull);
    EXPECT_EQ(seq.seed(1'000'000), 0xccd82fc90f034fb6ull);
}

TEST(RngVectors, Xoshiro256StarStarPinned)
{
    Rng rng(42);
    EXPECT_EQ(rng(), 0x15780b2e0c2ec716ull);
    EXPECT_EQ(rng(), 0x6104d9866d113a7eull);
    EXPECT_EQ(rng(), 0xae17533239e499a1ull);
}

TEST(RngSnapshot, SaveLoadResumesExactStream)
{
    Rng rng(1234);
    rng.discard(1000);
    const std::array<uint64_t, 4> state = rng.saveState();

    // Drain a reference tail, then restore and replay it.
    std::vector<uint64_t> tail;
    for (int i = 0; i < 64; ++i)
        tail.push_back(rng());

    Rng resumed(999); // different seed: state must fully overwrite
    resumed.loadState(state);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(resumed(), tail[static_cast<size_t>(i)]);
}

TEST(StatsSnapshot, RawRestoreIsBitwiseEqual)
{
    RunningStats stats;
    stats.add(1.5);
    stats.add(-2.25);
    stats.add(1e9);

    RunningStats restored;
    restored.restore(stats.raw());
    EXPECT_TRUE(stats.bitwiseEqual(restored));

    restored.add(0.5);
    EXPECT_FALSE(stats.bitwiseEqual(restored));
}

} // namespace
} // namespace hh::base
