/**
 * @file
 * Tests of the virtio-balloon variant (Section 6): page-granular
 * release, movable free type, and the THP split requirement.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "kvm/mmu.h"
#include "mm/buddy_allocator.h"
#include "virtio/virtio_balloon.h"

namespace hh::virtio {
namespace {

class BalloonTest : public ::testing::Test
{
  protected:
    BalloonTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 256_MiB;
        dram_cfg.fault.weakCellsPerRow = 0;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 256_MiB / kPageSize;
        buddy_cfg.pcp.highWatermark = 0;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
        mmu = std::make_unique<kvm::Mmu>(*dram, *buddy, kvm::MmuConfig{},
                                         1);
        balloon = std::make_unique<VirtioBalloonDevice>(*dram, *buddy,
                                                        *mmu, 1);
    }

    /** Map a 2 MB guest range and return its GPA. */
    GuestPhysAddr
    mapHugeRange()
    {
        auto block = buddy->allocPages(9, mm::MigrateType::Movable,
                                       mm::PageUse::GuestMemory, 1);
        EXPECT_TRUE(block.ok());
        const GuestPhysAddr gpa(nextGpa);
        nextGpa += kHugePageSize;
        EXPECT_TRUE(
            mmu->map2m(gpa, HostPhysAddr(*block * kPageSize)).ok());
        return gpa;
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
    std::unique_ptr<kvm::Mmu> mmu;
    std::unique_ptr<VirtioBalloonDevice> balloon;
    uint64_t nextGpa = 0;
};

TEST_F(BalloonTest, InflateRejectsHugePageLeaf)
{
    const GuestPhysAddr gpa = mapHugeRange();
    EXPECT_EQ(balloon->inflatePage(gpa).error(),
              base::ErrorCode::InvalidArgument);
}

TEST_F(BalloonTest, InflateAfterDemotionFreesMovableOrder0)
{
    const GuestPhysAddr gpa = mapHugeRange();
    // THP split (here via the exec-demotion path).
    ASSERT_TRUE(mmu->access(gpa, kvm::Access::Exec).status.ok());

    auto hpa = mmu->translate(gpa);
    ASSERT_TRUE(hpa.ok());
    const Pfn frame = hpa->pfn();

    const auto info_before = buddy->pageTypeInfo();
    ASSERT_TRUE(balloon->inflatePage(gpa).ok());
    EXPECT_EQ(balloon->inflatedCount(), 1u);
    // Mapping gone, backing free as order-0 MOVABLE (no VFIO in the
    // balloon scenario, Section 6).
    EXPECT_FALSE(mmu->translate(gpa).ok());
    EXPECT_TRUE(buddy->frame(frame).free);
    EXPECT_EQ(buddy->frame(frame).migrateType,
              mm::MigrateType::Movable);
    const auto info_after = buddy->pageTypeInfo();
    EXPECT_GT(info_after.pagesBelowOrder(mm::MigrateType::Movable, 9),
              info_before.pagesBelowOrder(mm::MigrateType::Movable, 9));
}

TEST_F(BalloonTest, DoubleInflateRejected)
{
    const GuestPhysAddr gpa = mapHugeRange();
    ASSERT_TRUE(mmu->access(gpa, kvm::Access::Exec).status.ok());
    ASSERT_TRUE(balloon->inflatePage(gpa).ok());
    EXPECT_EQ(balloon->inflatePage(gpa).error(),
              base::ErrorCode::Exists);
}

TEST_F(BalloonTest, DeflateRestoresMapping)
{
    const GuestPhysAddr gpa = mapHugeRange();
    ASSERT_TRUE(mmu->access(gpa, kvm::Access::Exec).status.ok());
    ASSERT_TRUE(balloon->inflatePage(gpa).ok());
    ASSERT_TRUE(balloon->deflatePage(gpa).ok());
    EXPECT_EQ(balloon->inflatedCount(), 0u);
    EXPECT_TRUE(mmu->translate(gpa).ok());
}

TEST_F(BalloonTest, DeflateWithoutInflateRejected)
{
    EXPECT_EQ(balloon->deflatePage(GuestPhysAddr(0)).error(),
              base::ErrorCode::NotFound);
}

TEST_F(BalloonTest, InflateUnmappedRejected)
{
    EXPECT_FALSE(balloon->inflatePage(GuestPhysAddr(64_GiB)).ok());
}

} // namespace
} // namespace hh::virtio
