// try_compile fixture: reading a HH_GUARDED_BY member without holding
// its mutex. Under Clang with -Werror=thread-safety this must FAIL to
// compile; tests/CMakeLists.txt asserts exactly that at configure
// time (and that the _clean sibling still builds).
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Counter
{
  public:
    void
    bump()
    {
        hh::base::MutexLock lock(mutex);
        ++value;
    }

    int
    racyRead() const
    {
        return value; // BAD: no lock held -> thread-safety error
    }

  private:
    mutable hh::base::Mutex mutex;
    int value HH_GUARDED_BY(mutex) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.bump();
    return counter.racyRead();
}
