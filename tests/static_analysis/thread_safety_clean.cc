// try_compile fixture: the lock-respecting twin of
// thread_safety_violation.cc. Must compile warning-free under
// -Werror=thread-safety, proving the failure next door comes from the
// violation and not from broken annotation plumbing.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Counter
{
  public:
    void
    bump()
    {
        hh::base::MutexLock lock(mutex);
        ++value;
    }

    int
    lockedRead() const
    {
        hh::base::MutexLock lock(mutex);
        return value;
    }

  private:
    mutable hh::base::Mutex mutex;
    int value HH_GUARDED_BY(mutex) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.bump();
    return counter.lockedRead();
}
