/**
 * @file
 * Whole-stack integration tests: the attack pipeline end to end with
 * a deterministically induced flip, the mitigation matrix (quarantine,
 * TRR, ECC, no-NX-hugepages), and the Section 6 variants (balloon,
 * Xen-style allocation).
 */

#include <gtest/gtest.h>

#include <memory>

#include "hyperhammer/hyperhammer.h"

namespace hh {
namespace {

sys::SystemConfig
baseConfig(uint64_t seed, double density = 8.0)
{
    sys::SystemConfig cfg = sys::SystemConfig::s1(seed)
        .withMemory(1_GiB);
    cfg.dram.fault.weakCellsPerRow *= density;
    return cfg;
}

vm::VmConfig
baseVm()
{
    vm::VmConfig cfg;
    cfg.bootMemBytes = 64_MiB;
    cfg.virtioMemRegionSize = 1_GiB;
    cfg.virtioMemPlugged = 640_MiB;
    return cfg;
}

/**
 * Full pipeline with the probabilistic last step removed: profile,
 * steer onto a real profiled bit, hammer it, and verify the EPTE
 * corruption through the guest. Success of the final EPT-page lottery
 * is not required -- that part is covered statistically by the
 * benches -- but every stage before it must demonstrably work.
 */
TEST(Integration, StagesComposeOnRealProfiledBit)
{
    // Seed chosen so the steering places an EPT page (rather than
    // split metadata) on the profiled frame; the metadata case is
    // covered statistically by bench_table2.
    sys::HostSystem host(baseConfig(12));
    auto machine = host.createVm(baseVm());

    // Stage 1: profile.
    attack::ProfilerConfig pcfg;
    pcfg.stopAfterExploitable = 3;
    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(), pcfg);
    std::vector<GuestPhysAddr> region;
    for (GuestPhysAddr hp : machine->hugePageGpas()) {
        if (machine->memDevice_().contains(hp))
            region.push_back(hp);
    }
    const attack::ProfileResult profile = profiler.profile(region);
    auto usable = profile.exploitableBits();
    // Keep stable bits only: the hammer stage must fire on demand.
    std::erase_if(usable, [](const attack::VulnerableBit &bit) {
        return !bit.stable;
    });
    ASSERT_FALSE(usable.empty()) << "seed produced no usable bits";
    const attack::VulnerableBit target = usable.front();

    // Ground truth for later: host location of the victim word.
    auto victim_hpa = machine->debugTranslate(target.wordGpa);
    ASSERT_TRUE(victim_hpa.ok());

    // Stage 2: steer.
    attack::SteeringConfig scfg;
    scfg.exhaustMappings = 3'000;
    attack::PageSteering steering(*machine, host.clock(), scfg);
    const attack::SteeringResult steered =
        steering.steer({target}, machine->memorySize());
    EXPECT_EQ(steered.releasedSubBlocks, 1u);
    EXPECT_GT(steered.demotions, 0u);

    // The vulnerable host frame should now hold an EPT page (the
    // placement can miss when leftovers exceed the spray; tolerate
    // only the hit case for this seed, which is deterministic).
    const mm::PageFrame &frame =
        host.buddy().frame(victim_hpa->pfn());
    if (frame.free || frame.use != mm::PageUse::EptPage)
        GTEST_SKIP() << "placement missed at this scale; covered by "
                        "bench_table2";

    // Stage 3: hammer the profiled aggressors and observe the EPTE
    // corruption in host DRAM.
    const uint64_t before =
        host.dram().backend().read64(victim_hpa->pageBase()
                                     + victim_hpa->pageOffset());
    attack::Exploiter exploiter(*machine, host.clock(),
                                attack::ExploitConfig{});
    exploiter.markPages(machine->hugePageGpas());
    exploiter.hammerTargets({target});
    const uint64_t after =
        host.dram().backend().read64(victim_hpa->pageBase()
                                     + victim_hpa->pageOffset());
    // The stable cell fires iff the EPTE's bit matches the flip
    // direction; both outcomes are legitimate, but when it fired the
    // change must be exactly the profiled bit.
    if (after != before) {
        EXPECT_EQ(after ^ before, 1ull << target.bitInWord);
        // And detection sees it from inside the guest.
        const auto changed = exploiter.detectMappingChanges();
        EXPECT_FALSE(changed.empty());
    }
}

TEST(Integration, NoNxHugePagesMeansNoEptHarvest)
{
    sys::HostSystem host(baseConfig(18));
    vm::VmConfig vm_cfg = baseVm();
    vm_cfg.mmu.nxHugePages = false;
    auto machine = host.createVm(vm_cfg);

    attack::PageSteering steering(*machine, host.clock(),
                                  attack::SteeringConfig{});
    const uint64_t demoted =
        steering.sprayEptes(machine->memorySize(), {});
    EXPECT_EQ(demoted, 0u);
}

TEST(Integration, TrrProtectedDimmYieldsNoProfile)
{
    sys::SystemConfig cfg = baseConfig(13);
    cfg.dram.trr.enabled = true;
    cfg.dram.trr.trackerCapacity = 4;
    sys::HostSystem host(cfg);
    auto machine = host.createVm(baseVm());

    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(),
                                    attack::ProfilerConfig{});
    std::vector<GuestPhysAddr> region;
    for (GuestPhysAddr hp : machine->hugePageGpas()) {
        if (machine->memDevice_().contains(hp))
            region.push_back(hp);
    }
    const attack::ProfileResult result = profiler.profile(region);
    EXPECT_EQ(result.totalFlips(), 0u);
}

TEST(Integration, EccDimmSuppressesProfile)
{
    sys::SystemConfig cfg = baseConfig(14);
    cfg.dram.ecc.enabled = true;
    sys::HostSystem host(cfg);
    auto machine = host.createVm(baseVm());

    attack::MemoryProfiler profiler(*machine, host.clock(),
                                    host.dram().mapping(),
                                    attack::ProfilerConfig{});
    std::vector<GuestPhysAddr> region;
    for (GuestPhysAddr hp : machine->hugePageGpas()) {
        if (machine->memDevice_().contains(hp))
            region.push_back(hp);
    }
    const attack::ProfileResult result = profiler.profile(region);
    EXPECT_EQ(result.totalFlips(), 0u);
    EXPECT_GT(host.dram().eccCorrectedFlips(), 0u);
}

TEST(Integration, XenStyleSteeringNeedsNoUnmovableExhaustion)
{
    // Section 6: Xen's allocator ignores migrate types, so released
    // (movable or unmovable) blocks are eligible for table pages as
    // soon as smaller blocks run out -- no vIOMMU step required. A
    // quiet host keeps the pre-existing small-block pool below the
    // spray size at this scale.
    sys::SystemConfig host_cfg = sys::SystemConfig::s1(15)
        .withMemory(2_GiB);
    host_cfg.noise.unmovableFreePages = 16;
    sys::HostSystem host(host_cfg);
    vm::VmConfig vm_cfg;
    vm_cfg.bootMemBytes = 64_MiB;
    vm_cfg.virtioMemRegionSize = 2_GiB;
    vm_cfg.virtioMemPlugged = 1_GiB + 704_MiB;
    vm_cfg.mmu.tableAlloc = kvm::TableAllocPolicy::AnyList;
    vm_cfg.passthroughDevices = 0; // no VFIO, no vIOMMU
    auto machine = host.createVm(vm_cfg);

    // Release one block, then spray without any exhaustion step.
    machine->memDriver().setSuppressAutoPlug(true);
    const GuestPhysAddr victim =
        machine->memDevice_().subBlockGpa(3);
    auto victim_hpa = machine->debugTranslate(victim);
    ASSERT_TRUE(victim_hpa.ok());
    ASSERT_TRUE(machine->memDriver().unplugSpecific(victim).ok());

    attack::PageSteering steering(*machine, host.clock(),
                                  attack::SteeringConfig{});
    steering.sprayEptes(machine->memorySize(), {victim.value()});

    uint64_t reused = 0;
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        const mm::PageFrame &frame =
            host.buddy().frame(victim_hpa->pfn() + i);
        if (!frame.free && frame.use == mm::PageUse::EptPage)
            ++reused;
    }
    EXPECT_GT(reused, 0u);
}

TEST(Integration, BalloonReleasesFeedXenStyleTables)
{
    // The virtio-balloon variant (Section 6): page-granular releases
    // free as movable order-0; with a type-agnostic table allocator
    // they are immediately reusable for EPT pages. Use a quiet host
    // (little pre-existing small-order noise) so one spray pass is
    // guaranteed to reach the ballooned frame.
    sys::SystemConfig cfg = baseConfig(16);
    cfg.noise.unmovableFreePages = 16;
    sys::HostSystem host(cfg);
    vm::VmConfig vm_cfg = baseVm();
    vm_cfg.mmu.tableAlloc = kvm::TableAllocPolicy::AnyList;
    vm_cfg.passthroughDevices = 0;
    vm_cfg.balloon = true;
    auto machine = host.createVm(vm_cfg);

    // Balloon a boot-RAM page (the device's window in this model).
    const GuestPhysAddr hp(2 * kHugePageSize);
    // Split the THP range, then balloon one page out.
    ASSERT_TRUE(machine->execute(hp).status.ok());
    auto hpa = machine->debugTranslate(hp + 5 * kPageSize);
    ASSERT_TRUE(hpa.ok());
    ASSERT_TRUE(
        machine->balloonDevice()->inflatePage(hp + 5 * kPageSize).ok());
    // Xen has no per-CPU pagesets; flush ours so the ballooned frame
    // reaches the shared lists.
    host.buddy().drainPcp();

    // Force table-page allocations; the ballooned frame is among the
    // few small free blocks and gets picked up.
    attack::PageSteering steering(*machine, host.clock(),
                                  attack::SteeringConfig{});
    steering.sprayEptes(machine->memorySize(), {});
    // The ballooned frame was consumed by the spray's allocation
    // stream -- as an EPT page or as the split metadata interleaved
    // with them; either way it is hypervisor-managed memory reachable
    // without any migratetype manipulation.
    const mm::PageFrame &frame = host.buddy().frame(hpa->pfn());
    EXPECT_FALSE(frame.free);
    EXPECT_TRUE(frame.use == mm::PageUse::EptPage
                || frame.use == mm::PageUse::KernelData);
}

} // namespace
} // namespace hh
