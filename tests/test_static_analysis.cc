/**
 * @file
 * Tests for the static-analysis layer itself: the hh-lint rule
 * fixtures, the zero-findings gate on the real tree, and runtime
 * smoke tests of the annotated Mutex/CondVar/ThreadPool primitives
 * the Clang thread-safety leg reasons about.
 *
 * The thread-safety *compile-fail* check lives in tests/CMakeLists.txt
 * (try_compile over tests/static_analysis/, Clang only): a negative
 * compile test cannot be expressed inside a googletest binary.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/container_util.h"
#include "base/log.h"
#include "base/mutex.h"
#include "base/parallel.h"
#include "base/thread_annotations.h"
#include "base/thread_pool.h"

#ifndef HH_REPO_ROOT
#error "tests/CMakeLists.txt must define HH_REPO_ROOT"
#endif
#ifndef HH_PYTHON
#error "tests/CMakeLists.txt must define HH_PYTHON"
#endif

namespace {

using hh::base::CondVar;
using hh::base::Mutex;
using hh::base::MutexLock;
using hh::base::ThreadPool;

int
runTool(const std::string &tool, const std::string &args)
{
    const std::string cmd = std::string(HH_PYTHON) + " " + HH_REPO_ROOT
        + "/tools/" + tool + " " + args;
    const int raw = std::system(cmd.c_str());
    if (raw == -1 || !WIFEXITED(raw))
        return -1;
    return WEXITSTATUS(raw);
}

int
runCommand(const std::string &args)
{
    return runTool("hh_lint.py", args);
}

int
runAnalyze(const std::string &args)
{
    // The builtin frontend is hermetic (no libclang); the CI
    // ast-analysis leg re-runs the same commands with --frontend=clang.
    return runTool("hh_analyze.py", "--frontend=builtin " + args);
}

// Every rule must fire exactly where its fixture's `// expect:`
// markers say, no rule may be fixture-less, and justified waivers
// must suppress (tests/lint_fixtures/waiver_ok.cc).
TEST(HhLint, SelfTestFixturesFireEveryRule)
{
    EXPECT_EQ(0, runCommand(std::string("--self-test ") + HH_REPO_ROOT
                            + "/tests/lint_fixtures"));
}

// The real tree stays at zero findings (the CI gate, reproduced as a
// tier-1 test so a violation fails locally before it fails in CI).
TEST(HhLint, TreeIsClean)
{
    EXPECT_EQ(0, runCommand(std::string("--config ") + HH_REPO_ROOT
                            + "/.hh-lint.toml"));
}

TEST(HhLint, ListRulesExits0)
{
    EXPECT_EQ(0, runCommand("--list-rules"));
}

// Every AST rule must fire exactly where its fixture's `// expect:`
// markers say, and the paired clean fixtures must stay silent.
TEST(HhAnalyze, SelfTestFixturesFireEveryRule)
{
    EXPECT_EQ(0, runAnalyze(std::string("--self-test ") + HH_REPO_ROOT
                            + "/tests/analyze_fixtures"));
}

// The real tree stays at zero unwaived AST findings.
TEST(HhAnalyze, TreeIsClean)
{
    EXPECT_EQ(0, runAnalyze(std::string("--config ") + HH_REPO_ROOT
                            + "/.hh-lint.toml"));
}

TEST(HhAnalyze, ListRulesExits0)
{
    EXPECT_EQ(0, runAnalyze("--list-rules"));
}

// A bogus --build-dir must be a usage error (exit 2) for the clang
// frontend, not a silent fallback; the builtin frontend ignores it.
TEST(HhAnalyze, MissingCompileCommandsIsAUsageError)
{
    const int code = runTool(
        "hh_analyze.py",
        "--frontend=clang --build-dir /nonexistent-build-dir "
        "2>/dev/null");
    EXPECT_EQ(2, code);
}

// The annotation macros must be inert decoration at runtime: a
// guarded struct behaves like the plain one on every compiler.
TEST(ThreadAnnotations, MacrosCompileAway)
{
    struct Guarded
    {
        Mutex mutex;
        int value HH_GUARDED_BY(mutex) = 0;
    };
    Guarded guarded;
    {
        MutexLock lock(guarded.mutex);
        guarded.value = 41;
        ++guarded.value;
    }
    MutexLock lock(guarded.mutex);
    EXPECT_EQ(42, guarded.value);
}

// Mutex actually excludes: N threads hammering one guarded counter
// must not lose an increment (under TSan this also proves the wrapper
// maps onto a real std::mutex).
TEST(MutexSmoke, GuardedCounterIsExact)
{
    constexpr int kThreads = 4;
    constexpr int kIncrements = 2'000;
    Mutex mutex;
    int counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    MutexLock lock(mutex);
    EXPECT_EQ(kThreads * kIncrements, counter);
}

// CondVar round-trip: consumer waits for a guarded flag, producer
// flips it; the REQUIRES(mutex) contract matches std::condition_variable.
TEST(MutexSmoke, CondVarHandshake)
{
    Mutex mutex;
    CondVar ready;
    bool go = false;
    int observed = 0;

    std::thread consumer([&] {
        MutexLock lock(mutex);
        while (!go)
            ready.wait(mutex);
        observed = 1;
    });
    {
        MutexLock lock(mutex);
        go = true;
    }
    ready.notifyAll();
    consumer.join();
    EXPECT_EQ(1, observed);
}

// The pool's annotated queue state survives churn: interleaved
// submit/wait cycles with jobs that themselves contend on a mutex.
TEST(MutexSmoke, ThreadPoolQuiescesUnderContention)
{
    ThreadPool pool(4);
    Mutex mutex;
    int done = 0;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 64; ++i) {
            pool.submit([&] {
                MutexLock lock(mutex);
                ++done;
            });
        }
        pool.wait();
    }
    MutexLock lock(mutex);
    EXPECT_EQ(3 * 64, done);
}

// Concurrent logging: the warning counter is exact and the process
// does not interleave mid-line (crash/TSan-checked; content goes to
// stderr, which gtest leaves alone).
TEST(LoggerSmoke, ConcurrentWarningsAreCounted)
{
    auto &logger = hh::base::Logger::get();
    const auto before = logger.warningCount();
    const auto threshold = logger.getThreshold();
    logger.setThreshold(hh::base::LogLevel::Error); // silence the spam
    constexpr int kThreads = 4;
    constexpr int kWarnings = 250;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kWarnings; ++i)
                hh::base::warn("lint-smoke warning %d", i);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    logger.setThreshold(threshold);
    EXPECT_EQ(before + kThreads * kWarnings, logger.warningCount());
}

// sortedKeys/sortedItems: the sanctioned deterministic view is sorted
// and complete regardless of hash order.
TEST(ContainerUtil, SortedViewsAreDeterministic)
{
    std::unordered_map<uint64_t, int> table;
    std::unordered_set<uint64_t> members;
    for (uint64_t key : {9ull, 2ull, 7ull, 4ull}) {
        table[key] = static_cast<int>(key * 10);
        members.insert(key);
    }
    const std::vector<uint64_t> want{2, 4, 7, 9};
    EXPECT_EQ(want, hh::base::sortedKeys(table));
    EXPECT_EQ(want, hh::base::sortedKeys(members));
    const auto items = hh::base::sortedItems(table);
    ASSERT_EQ(4u, items.size());
    EXPECT_EQ(std::make_pair(uint64_t{2}, 20), items.front());
    EXPECT_EQ(std::make_pair(uint64_t{9}, 90), items.back());
}

} // namespace
