/**
 * @file
 * Tests of the virtio-mem device/driver: plug/unplug mechanics, the
 * order-9 unmovable release path, the lack-of-enforcement the attack
 * abuses, the quarantine countermeasure, and the benign retry pattern
 * that breaks naive quarantining (Section 6).
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/sim_clock.h"
#include "dram/dram_system.h"
#include "iommu/viommu.h"
#include "kvm/mmu.h"
#include "mm/buddy_allocator.h"
#include "virtio/virtio_mem.h"

namespace hh::virtio {
namespace {

class VirtioMemTest : public ::testing::Test
{
  protected:
    VirtioMemTest()
    {
        dram::DramConfig dram_cfg;
        dram_cfg.totalBytes = 512_MiB;
        dram_cfg.fault.weakCellsPerRow = 0;
        dram = std::make_unique<dram::DramSystem>(dram_cfg, clock);
        mm::BuddyConfig buddy_cfg;
        buddy_cfg.totalPages = 512_MiB / kPageSize;
        buddy = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
        mmu = std::make_unique<kvm::Mmu>(*dram, *buddy, kvm::MmuConfig{},
                                         1);
        vfio = std::make_unique<iommu::VfioContainer>(
            *dram, *buddy, iommu::IommuConfig{}, 1);
    }

    VirtioMemConfig
    config(uint64_t plugged = 64_MiB, bool quarantine = false)
    {
        VirtioMemConfig cfg;
        cfg.regionStart = GuestPhysAddr(4_GiB);
        cfg.regionSize = 128_MiB;
        cfg.initialPlugged = plugged;
        cfg.quarantine.enabled = quarantine;
        return cfg;
    }

    base::SimClock clock;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<mm::BuddyAllocator> buddy;
    std::unique_ptr<kvm::Mmu> mmu;
    std::unique_ptr<iommu::VfioContainer> vfio;
};

TEST_F(VirtioMemTest, InitialPlugMapsAndPins)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    EXPECT_EQ(device.pluggedSize(), 64_MiB);
    EXPECT_EQ(device.subBlockCount(), 64u);
    EXPECT_TRUE(device.isPlugged(0));
    EXPECT_FALSE(device.isPlugged(63));

    // Every plugged sub-block translates to a pinned 2 MB host block.
    for (SubBlockId sb = 0; sb < 32; ++sb) {
        auto hpa = mmu->translate(device.subBlockGpa(sb));
        ASSERT_TRUE(hpa.ok());
        EXPECT_TRUE(hpa->hugePageAligned());
        EXPECT_TRUE(buddy->frame(hpa->pfn()).pinned);
    }
}

TEST_F(VirtioMemTest, UnplugReleasesOrder9Unmovable)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    const SubBlockId sb = 5;
    auto hpa = mmu->translate(device.subBlockGpa(sb));
    ASSERT_TRUE(hpa.ok());
    const Pfn block = hpa->pfn();

    const auto info_before = buddy->pageTypeInfo();
    ASSERT_TRUE(device.requestUnplug(sb).ok());
    EXPECT_FALSE(device.isPlugged(sb));
    EXPECT_EQ(device.pluggedSize(), 64_MiB - kHugePageSize);

    // The EPT mapping is gone.
    EXPECT_FALSE(mmu->translate(device.subBlockGpa(sb)).ok());
    // The backing is free, unpinned, unmovable, order >= 9.
    EXPECT_TRUE(buddy->frame(block).free);
    EXPECT_FALSE(buddy->frame(block).pinned);
    EXPECT_EQ(buddy->frame(block).migrateType,
              mm::MigrateType::Unmovable);
    const auto info_after = buddy->pageTypeInfo();
    uint64_t big_unmovable_before = 0;
    uint64_t big_unmovable_after = 0;
    for (unsigned order = 9; order < mm::kMaxOrder; ++order) {
        big_unmovable_before += info_before.blockCount(
            mm::MigrateType::Unmovable, order);
        big_unmovable_after += info_after.blockCount(
            mm::MigrateType::Unmovable, order);
    }
    EXPECT_GT(big_unmovable_after, big_unmovable_before);
    // The release is logged (the paper's PFN log hook).
    ASSERT_EQ(device.stats().releasedBlockPfns.size(), 1u);
    EXPECT_EQ(device.stats().releasedBlockPfns[0], block);
}

TEST_F(VirtioMemTest, VoluntaryUnplugWithoutRequestSucceeds)
{
    // The core lack-of-enforcement: T == plugged, yet the device
    // accepts an unplug (no quarantine).
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    EXPECT_EQ(device.requestedSize(), device.pluggedSize());
    EXPECT_TRUE(device.requestUnplug(3).ok());
}

TEST_F(VirtioMemTest, PlugAndUnplugValidation)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    EXPECT_EQ(device.requestPlug(0).error(), base::ErrorCode::Exists);
    EXPECT_EQ(device.requestUnplug(63).error(),
              base::ErrorCode::NotFound);
    EXPECT_EQ(device.requestPlug(1'000).error(),
              base::ErrorCode::InvalidArgument);
    EXPECT_TRUE(device.requestPlug(40).ok());
    EXPECT_TRUE(device.isPlugged(40));
}

TEST_F(VirtioMemTest, DriverConvergesUpAndDown)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    VirtioMemDriver driver(device);

    device.setRequestedSize(80_MiB);
    EXPECT_GT(driver.converge(), 0u);
    EXPECT_EQ(device.pluggedSize(), 80_MiB);

    device.setRequestedSize(32_MiB);
    EXPECT_GT(driver.converge(), 0u);
    EXPECT_EQ(device.pluggedSize(), 32_MiB);
}

TEST_F(VirtioMemTest, SuppressAutoPlugKeepsPagesReleased)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    VirtioMemDriver driver(device);
    driver.setSuppressAutoPlug(true);

    const GuestPhysAddr victim = device.subBlockGpa(7);
    ASSERT_TRUE(driver.unplugSpecific(victim).ok());
    EXPECT_EQ(device.pluggedSize(), 64_MiB - kHugePageSize);
    // The stock driver would immediately re-plug (plugged < target);
    // the attacker modification keeps the gap open.
    EXPECT_EQ(driver.converge(), 0u);
    EXPECT_EQ(device.pluggedSize(), 64_MiB - kHugePageSize);

    // Without suppression the driver re-acquires the memory.
    driver.setSuppressAutoPlug(false);
    EXPECT_GT(driver.converge(), 0u);
    EXPECT_EQ(device.pluggedSize(), 64_MiB);
}

TEST_F(VirtioMemTest, UnplugSpecificOutsideRegionRejected)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    VirtioMemDriver driver(device);
    EXPECT_EQ(driver.unplugSpecific(GuestPhysAddr(0)).error(),
              base::ErrorCode::InvalidArgument);
}

TEST_F(VirtioMemTest, QuarantineBlocksVoluntaryUnplug)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(),
                           config(64_MiB, /*quarantine=*/true), 1);
    VirtioMemDriver driver(device);
    driver.setSuppressAutoPlug(true);
    // plugged == requested: any unplug moves away from the target.
    const base::Status status =
        driver.unplugSpecific(device.subBlockGpa(2));
    EXPECT_EQ(status.error(), base::ErrorCode::Denied);
    EXPECT_EQ(device.pluggedSize(), 64_MiB);
    EXPECT_EQ(device.stats().nackedRequests, 1u);
}

TEST_F(VirtioMemTest, QuarantineAllowsLegitimateResize)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(),
                           config(64_MiB, /*quarantine=*/true), 1);
    VirtioMemDriver driver(device);
    device.setRequestedSize(48_MiB);
    EXPECT_GT(driver.converge(), 0u);
    EXPECT_EQ(device.pluggedSize(), 48_MiB);
    EXPECT_EQ(device.stats().nackedRequests, 0u);
}

TEST_F(VirtioMemTest, QuarantineBlocksOvershoot)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(),
                           config(64_MiB, /*quarantine=*/true), 1);
    // Target 62 MiB: exactly one sub-block may be unplugged; a second
    // unplug overshoots and is NACKed.
    device.setRequestedSize(62_MiB);
    EXPECT_TRUE(device.requestUnplug(10).ok());
    EXPECT_EQ(device.requestUnplug(11).error(),
              base::ErrorCode::Denied);
}

TEST_F(VirtioMemTest, QuarantineFalsePositiveOnPlugRetry)
{
    // The QEMU maintainer's objection (Section 6): when a plug fails,
    // the stock driver unplugs and retries -- and that unplug looks
    // malicious to the quarantine because plugged < requested.
    // Reproduce with a host that cannot satisfy the plug.
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(),
                           config(64_MiB, /*quarantine=*/true), 1);
    VirtioMemDriver driver(device);

    // Exhaust every order-9-capable block so plugs fail.
    std::vector<Pfn> hog;
    while (true) {
        auto block = buddy->allocPages(9, mm::MigrateType::Movable,
                                       mm::PageUse::KernelData);
        if (!block.ok())
            break;
        hog.push_back(*block);
    }

    device.setRequestedSize(80_MiB);
    const base::Status status = driver.plugWithRetry(40);
    // The plug itself fails for lack of memory; the quarantine is the
    // reason the *recovery* path misbehaves on real systems. Either
    // way, no crash and the device stays consistent.
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(device.pluggedSize(), 64_MiB);
    for (Pfn block : hog)
        buddy->freePages(block, 9);
}

TEST_F(VirtioMemTest, StatsCountRequests)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, vfio.get(), config(),
                           1);
    // hh-lint: allow(status-discard) -- stats must count requests whatever their outcome; the discard is the scenario
    (void)device.requestUnplug(0);
    // hh-lint: allow(status-discard) -- stats must count requests whatever their outcome; the discard is the scenario
    (void)device.requestPlug(0);
    EXPECT_EQ(device.stats().unplugRequests, 1u);
    EXPECT_EQ(device.stats().plugRequests, 1u);
}

TEST_F(VirtioMemTest, WithoutVfioReleasesMovable)
{
    VirtioMemDevice device(*dram, *buddy, *mmu, /*vfio=*/nullptr,
                           config(), 1);
    auto hpa = mmu->translate(device.subBlockGpa(0));
    ASSERT_TRUE(hpa.ok());
    const Pfn block = hpa->pfn();
    EXPECT_FALSE(buddy->frame(block).pinned);
    ASSERT_TRUE(device.requestUnplug(0).ok());
    EXPECT_EQ(buddy->frame(block).migrateType,
              mm::MigrateType::Movable);
}

TEST(QuarantinePolicy, RuleTable)
{
    QuarantinePolicy off;
    EXPECT_FALSE(off.rejects(-100, 0, 100));

    QuarantinePolicy on;
    on.enabled = true;
    // Right direction, within the gap: fine.
    EXPECT_FALSE(on.rejects(-10, 90, 100));
    EXPECT_FALSE(on.rejects(+10, 110, 100));
    // Overshoot.
    EXPECT_TRUE(on.rejects(-20, 90, 100));
    EXPECT_TRUE(on.rejects(+20, 110, 100));
    // Wrong direction.
    EXPECT_TRUE(on.rejects(-10, 110, 100));
    EXPECT_TRUE(on.rejects(+10, 90, 100));
    // At the target, any change is suspicious.
    EXPECT_TRUE(on.rejects(-1, 100, 100));
    EXPECT_TRUE(on.rejects(+1, 100, 100));
}

} // namespace
} // namespace hh::virtio
