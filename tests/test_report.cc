/**
 * @file
 * Tests of the report helpers used by the benchmark harness.
 */

#include <gtest/gtest.h>

#include "analysis/report.h"

namespace hh::analysis {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"System", "Time", "Total"});
    table.addRow({"S1", "72 h", "395"});
    table.addRow({"S2", "48 h", "650"});
    const std::string out = table.render();
    EXPECT_NE(out.find("System"), std::string::npos);
    EXPECT_NE(out.find("S1"), std::string::npos);
    EXPECT_NE(out.find("650"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, ColumnsWidenToContent)
{
    TextTable table({"A"});
    table.addRow({"a-very-long-cell"});
    const std::string out = table.render();
    // The separator must span the widened column.
    EXPECT_NE(out.find(std::string(16, '-')), std::string::npos);
}

TEST(Formatters, Percent)
{
    EXPECT_EQ(formatPercent(0.229), "22.9%");
    EXPECT_EQ(formatPercent(0.913), "91.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(Formatters, CountGrouping)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(51'200), "51,200");
    EXPECT_EQ(formatCount(1'234'567), "1,234,567");
}

TEST(Formatters, Double)
{
    EXPECT_EQ(formatDouble(4.04, 1), "4.0");
    EXPECT_EQ(formatDouble(16.67, 2), "16.67");
}

TEST(RenderSeries, ProducesChartWithGuides)
{
    base::Series s1("S1");
    base::Series s2("S2");
    for (int i = 0; i <= 50; ++i) {
        s1.add(i * 1000.0, 20'000.0 / (1 + i));
        s2.add(i * 1000.0, 17'000.0 / (1 + i));
    }
    const std::string chart =
        renderSeries({s1, s2}, 60, 12, {512.0, 1024.0});
    EXPECT_NE(chart.find('*'), std::string::npos);
    EXPECT_NE(chart.find('+'), std::string::npos);
    EXPECT_NE(chart.find("[*] S1"), std::string::npos);
    EXPECT_NE(chart.find("[+] S2"), std::string::npos);
    // Guide lines rendered as dashes inside the plot area.
    EXPECT_NE(chart.find('-'), std::string::npos);
}

TEST(RenderSeries, EmptyInputsAreSafe)
{
    EXPECT_EQ(renderSeries({}, 60, 12), "");
    base::Series empty("e");
    EXPECT_EQ(renderSeries({empty}, 60, 12), "");
}

} // namespace
} // namespace hh::analysis
