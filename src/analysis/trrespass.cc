#include "trrespass.h"

#include "base/log.h"

namespace hh::analysis {

Trrespass::Trrespass(dram::DramSystem &dram, TrrespassConfig config)
    : dram(dram), cfg(config), rng(config.seed)
{}

HostPhysAddr
Trrespass::addressIn(dram::BankId bank, dram::RowId row) const
{
    const dram::AddressMapping &map = dram.mapping();
    const dram::BankId cls = bank ^ map.rowClass(row);
    const auto &offsets = map.classOffsets(cls);
    HH_ASSERT(!offsets.empty());
    const uint64_t addr =
        (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(offsets.front())
           << map.interleaveShift());
    return HostPhysAddr(addr);
}

uint64_t
Trrespass::tryPattern(unsigned aggressor_rows)
{
    const dram::AddressMapping &map = dram.mapping();
    const uint64_t max_row = (dram.size() - 1) >> map.rowLoBit();
    const dram::BankId bank =
        static_cast<dram::BankId>(rng.below(map.bankCount()));
    // Aggressors spaced two rows apart leave victim rows between
    // them (the classic TRRespass assisted pattern).
    const uint64_t span = 2ull * aggressor_rows + 2;
    if (max_row < span + 2)
        return 0;
    const dram::RowId base_row = 1 + rng.below(max_row - span - 1);

    // Fill the victim neighbourhood with an all-ones pattern so both
    // flip directions are observable on the 0xff/0x00 double pass.
    std::vector<HostPhysAddr> aggressors;
    for (unsigned i = 0; i < aggressor_rows; ++i)
        aggressors.push_back(addressIn(bank, base_row + 2 * i));

    uint64_t flips = 0;
    for (uint64_t fill : {~0ull, 0ull}) {
        // Fill the whole row stripe of every row in the pattern's
        // neighbourhood so any victim cell position is observable.
        for (uint64_t r = 0; r <= span; ++r) {
            const uint64_t stripe_base =
                (base_row + r) << map.rowLoBit();
            for (uint64_t off = 0; off < map.rowStripeBytes();
                 off += kPageSize) {
                dram.fillPage((stripe_base + off) / kPageSize, fill);
            }
        }
        flips += dram.hammer(aggressors, cfg.rounds).size();
    }
    return flips;
}

TrrespassResult
Trrespass::run()
{
    TrrespassResult result;
    result.flipsBySize.assign(cfg.maxAggressorRows + 1, 0);
    for (unsigned size = 1; size <= cfg.maxAggressorRows; ++size) {
        uint64_t flips = 0;
        for (unsigned trial = 0; trial < cfg.trialsPerSize; ++trial)
            flips += tryPattern(size);
        result.flipsBySize[size] = flips;
        if (flips > 0 && result.effectiveAggressorRows == 0) {
            result.effectiveAggressorRows = size;
            result.flips = flips;
        }
    }
    return result;
}

} // namespace hh::analysis
