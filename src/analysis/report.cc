#include "report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/log.h"

namespace hh::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    HH_ASSERT(cells.size() == headers.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t i = 0; i < headers.size(); ++i)
        widths[i] = headers[i].size();
    for (const auto &row : rows)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out << (i ? "  " : "");
            out << cells[i];
            out << std::string(widths[i] - cells[i].size(), ' ');
        }
        out << "\n";
    };
    emit(headers);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return out.str();
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
formatCount(uint64_t value)
{
    // Digit grouping for readability: 51200 -> "51,200".
    std::string digits = std::to_string(value);
    std::string out;
    int counter = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (counter && counter % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++counter;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
renderSeries(const std::vector<base::Series> &series, unsigned width,
             unsigned height, const std::vector<double> &guides)
{
    if (series.empty() || width < 8 || height < 4)
        return "";
    double x_max = 0.0;
    double y_max = 0.0;
    for (const base::Series &s : series) {
        for (const auto &p : s.data()) {
            x_max = std::max(x_max, p.x);
            y_max = std::max(y_max, p.y);
        }
    }
    for (double g : guides)
        y_max = std::max(y_max, g);
    if (x_max <= 0.0 || y_max <= 0.0)
        return "";

    std::vector<std::string> grid(height, std::string(width, ' '));
    const auto to_col = [&](double x) {
        return std::min<unsigned>(
            width - 1,
            static_cast<unsigned>(x / x_max * (width - 1)));
    };
    const auto to_row = [&](double y) {
        const unsigned r =
            static_cast<unsigned>(y / y_max * (height - 1));
        return height - 1 - std::min(r, height - 1);
    };

    for (double g : guides) {
        const unsigned r = to_row(g);
        for (unsigned c = 0; c < width; ++c)
            grid[r][c] = '-';
    }
    const char glyphs[] = {'*', '+', 'o', 'x', '#'};
    for (size_t s = 0; s < series.size(); ++s) {
        const char glyph = glyphs[s % sizeof(glyphs)];
        for (const auto &p : series[s].data())
            grid[to_row(p.y)][to_col(p.x)] = glyph;
    }

    std::ostringstream out;
    char label[32];
    std::snprintf(label, sizeof(label), "%10.0f |", y_max);
    out << label << grid[0] << "\n";
    for (unsigned r = 1; r + 1 < height; ++r)
        out << "           |" << grid[r] << "\n";
    std::snprintf(label, sizeof(label), "%10.0f |", 0.0);
    out << label << grid[height - 1] << "\n";
    out << "           +" << std::string(width, '-') << "\n";
    std::snprintf(label, sizeof(label), "%.0f", x_max);
    std::string axis = "            0";
    const size_t target = 12 + width;
    const std::string max_label(label);
    if (axis.size() + max_label.size() < target)
        axis += std::string(target - axis.size() - max_label.size(),
                            ' ');
    axis += max_label;
    out << axis << "\n";
    for (size_t s = 0; s < series.size(); ++s) {
        out << "            [" << glyphs[s % sizeof(glyphs)] << "] "
            << series[s].name() << "\n";
    }
    return out.str();
}

} // namespace hh::analysis
