#include "dramdig.h"

#include <algorithm>
#include <bit>

#include "base/bitops.h"
#include "base/log.h"

namespace hh::analysis {

DramDig::DramDig(dram::DramSystem &dram, DramDigConfig config)
    : dram(dram), cfg(config), rng(config.seed)
{
    HH_ASSERT(cfg.maskHiBit > cfg.maskLoBit);
    HH_ASSERT(cfg.maskHiBit - cfg.maskLoBit + 1 <= 32);
}

HostPhysAddr
DramDig::randomAddr()
{
    // Cache-line granularity: sampling whole pages would leave the
    // in-page address bits (6..11) constant at zero, making any mask
    // over them spuriously "constant parity".
    const uint64_t lines = dram.size() / 64;
    return HostPhysAddr(rng.below(lines) * 64);
}

double
DramDig::measurePair(HostPhysAddr a, HostPhysAddr b)
{
    // Latencies are integer SimTime ticks: sum them exactly as
    // integers and divide once, so the mean is order-independent.
    base::SimTime total = 0;
    for (unsigned i = 0; i < cfg.measurementsPerPair; ++i) {
        total += dram.timedAccess(a);
        total += dram.timedAccess(b);
        timedAccesses += 2;
    }
    return static_cast<double>(total) / (2.0 * cfg.measurementsPerPair);
}

void
DramDig::calibrate()
{
    // Sample random pairs; the latency distribution is bimodal (row
    // hits/misses vs. conflicts). Use the midpoint of the two modes.
    double lo = 1e18;
    double hi = 0.0;
    for (unsigned i = 0; i < 256; ++i) {
        const double lat = measurePair(randomAddr(), randomAddr());
        lo = std::min(lo, lat);
        hi = std::max(hi, lat);
    }
    threshold = (lo + hi) / 2.0;
}

bool
DramDig::conflicts(HostPhysAddr a, HostPhysAddr b)
{
    if (threshold == 0.0)
        calibrate();
    // Same-row pairs are also "slow-free": identical rows never
    // conflict, so same bank+row pairs must be filtered by retrying
    // with an offset (different page within the row-stripe is enough
    // most of the time; a false negative only wastes one probe).
    return measurePair(a, b) > threshold;
}

std::vector<HostPhysAddr>
DramDig::collectConflictSet()
{
    std::vector<HostPhysAddr> set;
    const HostPhysAddr pivot = randomAddr();
    set.push_back(pivot);
    for (unsigned probe = 0;
         probe < cfg.probeBudget && set.size() < cfg.conflictSetSize;
         ++probe) {
        const HostPhysAddr candidate = randomAddr();
        if (conflicts(pivot, candidate))
            set.push_back(candidate);
    }
    return set;
}

std::vector<uint64_t>
DramDig::constantParityMasks(
    const std::vector<std::vector<HostPhysAddr>> &sets)
{
    // Enumerate masks as combinations of bit positions in
    // [maskLoBit, maskHiBit] with weight <= maxMaskWeight.
    const unsigned width = cfg.maskHiBit - cfg.maskLoBit + 1;
    std::vector<uint64_t> found;
    for (uint32_t combo = 1; combo < (1u << width); ++combo) {
        if (static_cast<unsigned>(std::popcount(combo))
            > cfg.maxMaskWeight) {
            continue;
        }
        const uint64_t mask = static_cast<uint64_t>(combo)
            << cfg.maskLoBit;
        bool constant = true;
        for (const auto &set : sets) {
            const unsigned ref =
                base::maskParity(set.front().value(), mask);
            for (const HostPhysAddr addr : set) {
                if (base::maskParity(addr.value(), mask) != ref) {
                    constant = false;
                    break;
                }
            }
            if (!constant)
                break;
        }
        if (constant)
            found.push_back(mask);
    }
    return found;
}

std::vector<uint64_t>
DramDig::reduceToBasis(std::vector<uint64_t> masks)
{
    // Greedy minimal-weight basis: sort by popcount, keep a mask only
    // if it is linearly independent of those already kept (GF(2)
    // elimination by leading bit).
    std::sort(masks.begin(), masks.end(),
              [](uint64_t a, uint64_t b) {
                  const int pa = std::popcount(a);
                  const int pb = std::popcount(b);
                  return pa != pb ? pa < pb : a < b;
              });
    std::vector<uint64_t> echelon; // reduced forms, by leading bit
    std::vector<uint64_t> basis;   // original masks kept
    for (uint64_t mask : masks) {
        uint64_t reduced = mask;
        for (uint64_t row : echelon) {
            const uint64_t lead = 1ull << base::floorLog2(row);
            if (reduced & lead)
                reduced ^= row;
        }
        if (reduced == 0)
            continue;
        echelon.push_back(reduced);
        std::sort(echelon.begin(), echelon.end(),
                  std::greater<uint64_t>());
        basis.push_back(mask);
    }
    return basis;
}

bool
DramDig::sameSpan(const std::vector<uint64_t> &a,
                  const std::vector<uint64_t> &b)
{
    const auto rank = [](const std::vector<uint64_t> &rows) {
        // Incremental GF(2) echelon with unique leading bits, kept in
        // descending lead order so each insertion reduces fully.
        std::vector<uint64_t> echelon;
        for (uint64_t row : rows) {
            for (uint64_t e : echelon) {
                const uint64_t lead = 1ull << base::floorLog2(e);
                if (row & lead)
                    row ^= e;
            }
            if (row == 0)
                continue;
            echelon.push_back(row);
            std::sort(echelon.begin(), echelon.end(),
                      std::greater<uint64_t>());
        }
        return echelon.size();
    };
    std::vector<uint64_t> merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    const unsigned ra = rank(a);
    const unsigned rb = rank(b);
    return ra == rb && rank(merged) == ra;
}

DramDigResult
DramDig::run()
{
    DramDigResult result;
    calibrate();
    result.latencyThreshold = threshold;

    std::vector<std::vector<HostPhysAddr>> sets;
    for (unsigned i = 0; i < cfg.conflictSets; ++i) {
        auto set = collectConflictSet();
        if (set.size() >= 8)
            sets.push_back(std::move(set));
    }
    if (sets.empty()) {
        result.timedAccesses = timedAccesses;
        return result;
    }

    const std::vector<uint64_t> constant = constantParityMasks(sets);
    result.bankMasks = reduceToBasis(constant);
    result.timedAccesses = timedAccesses;
    return result;
}

} // namespace hh::analysis
