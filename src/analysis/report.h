/**
 * @file
 * Plain-text report helpers for the benchmark harness: fixed-width
 * tables matching the paper's layout, and ASCII renderings of the
 * Figure 3 style series.
 */

#ifndef HYPERHAMMER_ANALYSIS_REPORT_H
#define HYPERHAMMER_ANALYSIS_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.h"

namespace hh::analysis {

/**
 * A fixed-width text table: set headers once, add rows of cells, then
 * render. Column widths adapt to content.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format helpers used across the bench binaries. */
std::string formatPercent(double fraction, int decimals = 1);
std::string formatCount(uint64_t value);
std::string formatDouble(double value, int decimals = 1);

/**
 * Render an (x, y) series as an ASCII chart with the given size, with
 * optional horizontal guide lines (Figure 3's 512/1,024 thresholds).
 */
std::string renderSeries(const std::vector<base::Series> &series,
                         unsigned width = 72, unsigned height = 16,
                         const std::vector<double> &guides = {});

} // namespace hh::analysis

#endif // HYPERHAMMER_ANALYSIS_REPORT_H
