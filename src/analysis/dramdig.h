/**
 * @file
 * DRAMDig-style reverse engineering of the DRAM bank function
 * (Section 5.1; Wang et al., DAC'20).
 *
 * The attacker prepares offline, on hardware identical to the target,
 * by timing pairs of memory accesses: two addresses in the same bank
 * but different rows keep evicting each other's row buffer, so each
 * access pays the precharge+activate ("row conflict") latency. From a
 * set of mutually conflicting addresses, every XOR mask whose parity
 * is constant across the set lies in the span of the bank-function
 * masks; brute-forcing low-weight masks and reducing them to a GF(2)
 * basis recovers the function.
 */

#ifndef HYPERHAMMER_ANALYSIS_DRAMDIG_H
#define HYPERHAMMER_ANALYSIS_DRAMDIG_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.h"
#include "dram/dram_system.h"

namespace hh::analysis {

/** DRAMDig tunables. */
struct DramDigConfig
{
    /** Addresses collected per same-bank conflict set. */
    unsigned conflictSetSize = 96;
    /** Independent conflict sets used for cross-validation. */
    unsigned conflictSets = 4;
    /** Random candidates probed while building each set. */
    unsigned probeBudget = 40'000;
    /** Lowest / highest physical-address bit considered by a mask. */
    unsigned maskLoBit = 6;
    unsigned maskHiBit = 25;
    /** Maximum bits per candidate mask. */
    unsigned maxMaskWeight = 6;
    /** Timed accesses averaged per pair measurement. */
    unsigned measurementsPerPair = 4;
    uint64_t seed = 0xd1d;
};

/** Outcome of a recovery run. */
struct DramDigResult
{
    /** Recovered basis of bank-function masks (empty on failure). */
    std::vector<uint64_t> bankMasks;
    /** Latency threshold used to split conflict from non-conflict. */
    double latencyThreshold = 0.0;
    uint64_t timedAccesses = 0;

    bool recovered() const { return !bankMasks.empty(); }
};

/**
 * Runs the recovery against a DramSystem (the attacker's own offline
 * machine -- it can use physical addresses there).
 */
class DramDig
{
  public:
    DramDig(dram::DramSystem &dram, DramDigConfig config);

    /** Execute the full pipeline. */
    DramDigResult run();

    /**
     * True when two addresses conflict (same bank, different row),
     * judged purely from timing. Public for tests.
     */
    bool conflicts(HostPhysAddr a, HostPhysAddr b);

    /**
     * Reduce a set of masks to a minimal-weight GF(2) basis. Public
     * for tests.
     */
    static std::vector<uint64_t>
    reduceToBasis(std::vector<uint64_t> masks);

    /** True when the spans of two mask sets over GF(2) are equal. */
    static bool sameSpan(const std::vector<uint64_t> &a,
                         const std::vector<uint64_t> &b);

  private:
    dram::DramSystem &dram;
    DramDigConfig cfg;
    base::Rng rng;
    double threshold = 0.0;
    uint64_t timedAccesses = 0;

    /** Average latency of alternating accesses to the pair. */
    double measurePair(HostPhysAddr a, HostPhysAddr b);

    /** Calibrate the conflict threshold from random samples. */
    void calibrate();

    /** Random page-aligned address within DRAM. */
    HostPhysAddr randomAddr();

    /** Collect one set of mutually conflicting addresses. */
    std::vector<HostPhysAddr> collectConflictSet();

    /** Masks of weight <= maxMaskWeight constant-parity over all sets. */
    std::vector<uint64_t>
    constantParityMasks(const std::vector<std::vector<HostPhysAddr>> &sets);
};

} // namespace hh::analysis

#endif // HYPERHAMMER_ANALYSIS_DRAMDIG_H
