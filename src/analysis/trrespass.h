/**
 * @file
 * TRRespass-style hammer-pattern search (Section 5.1; Frigo et al.,
 * S&P'20).
 *
 * Before attacking, the paper runs TRRespass to find a pattern that
 * produces reproducible flips on the target DIMMs; on their parts a
 * single-sided two-row pattern suffices. The finder sweeps the number
 * of simultaneous same-bank aggressor rows upward until flips appear,
 * which also characterises any in-DRAM TRR: a tracker of capacity C
 * blocks patterns with <= C rows per bank.
 */

#ifndef HYPERHAMMER_ANALYSIS_TRRESPASS_H
#define HYPERHAMMER_ANALYSIS_TRRESPASS_H

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "dram/dram_system.h"

namespace hh::analysis {

/** Pattern-search tunables. */
struct TrrespassConfig
{
    /** Largest n-sided pattern tried. */
    unsigned maxAggressorRows = 12;
    /** Hammer rounds per trial. */
    uint64_t rounds = 250'000;
    /** Trials per pattern size (different random placements). */
    unsigned trialsPerSize = 24;
    uint64_t seed = 0x7e5;
};

/** Result of the sweep. */
struct TrrespassResult
{
    /**
     * Smallest number of same-bank aggressor rows that produced at
     * least one flip; 0 when nothing flipped up to the maximum.
     */
    unsigned effectiveAggressorRows = 0;
    /** Flips observed at that size across all trials. */
    uint64_t flips = 0;
    /** Flips observed per pattern size (index 1..max). */
    std::vector<uint64_t> flipsBySize;

    bool foundPattern() const { return effectiveAggressorRows != 0; }
};

/**
 * Sweeps pattern sizes against a DramSystem the tester controls.
 */
class Trrespass
{
  public:
    Trrespass(dram::DramSystem &dram, TrrespassConfig config);

    /** Run the sweep. */
    TrrespassResult run();

    /**
     * Hammer one n-sided pattern at a random location: n aggressor
     * rows in one bank, spaced two rows apart (victims in between and
     * beyond). Returns flips produced.
     */
    uint64_t tryPattern(unsigned aggressor_rows);

  private:
    dram::DramSystem &dram;
    TrrespassConfig cfg;
    base::Rng rng;

    /** An address in (bank, row), via the mapping's class tables. */
    HostPhysAddr addressIn(dram::BankId bank, dram::RowId row) const;
};

} // namespace hh::analysis

#endif // HYPERHAMMER_ANALYSIS_TRRESPASS_H
