/**
 * @file
 * Extended Page Table entry format (Intel SDM Vol. 3C, Section 2.2 of
 * the paper).
 *
 * An EPTE is 64 bits: bits 0..2 are the read/write/execute permissions,
 * bits 3..5 the memory type (leaves only), bit 7 marks a large (2 MB)
 * leaf at the PD level, and bits 12..(MAXPHYADDR-1) hold the host
 * physical frame number. Each EPT table page holds 512 entries.
 *
 * EPT pages are stored *in simulated DRAM*: the MMU reads and writes
 * entries through the DramSystem, so a Rowhammer flip in an EPT page
 * changes real translations -- exactly the paper's attack surface.
 */

#ifndef HYPERHAMMER_KVM_EPT_H
#define HYPERHAMMER_KVM_EPT_H

#include <cstdint>

#include "base/bitops.h"
#include "base/types.h"

namespace hh::kvm {

/** Permission/format bits of an EPT entry. */
enum EptBits : uint64_t
{
    kEptRead = 1ull << 0,
    kEptWrite = 1ull << 1,
    kEptExec = 1ull << 2,
    kEptLargePage = 1ull << 7,
    kEptAccessed = 1ull << 8,
    kEptDirty = 1ull << 9,
};

/** Memory type field (bits 3..5) for leaf entries: write-back. */
constexpr uint64_t kEptMemTypeWb = 6ull << 3;

/** First PFN bit within an EPTE. */
constexpr unsigned kEpteFrameLoBit = 12;
/** Last PFN bit within an EPTE (MAXPHYADDR = 48 modeled). */
constexpr unsigned kEpteFrameHiBit = 47;

/** Number of EPT levels walked (4-level mode, Section 2.2). */
constexpr unsigned kEptLevels = 4;

/**
 * Value-type wrapper around one 64-bit EPT entry.
 */
class EptEntry
{
  public:
    constexpr EptEntry() = default;
    constexpr explicit EptEntry(uint64_t raw) : bits(raw) {}

    /** Non-leaf entry pointing at the next-level table. */
    static constexpr EptEntry
    table(Pfn next_level)
    {
        return EptEntry((next_level << kEpteFrameLoBit) | kEptRead
                        | kEptWrite | kEptExec);
    }

    /** 4 KB leaf mapping. */
    static constexpr EptEntry
    leaf4k(Pfn frame, bool execute)
    {
        return EptEntry((frame << kEpteFrameLoBit) | kEptMemTypeWb
                        | kEptRead | kEptWrite
                        | (execute ? uint64_t{kEptExec} : 0ull));
    }

    /** 2 MB leaf mapping (PD level, bit 7 set). */
    static constexpr EptEntry
    leaf2m(Pfn frame, bool execute)
    {
        return EptEntry((frame << kEpteFrameLoBit) | kEptLargePage
                        | kEptMemTypeWb | kEptRead | kEptWrite
                        | (execute ? uint64_t{kEptExec} : 0ull));
    }

    constexpr uint64_t raw() const { return bits; }

    /** Present = any of R/W/X set (Intel: not-present if bits 2:0==0). */
    constexpr bool present() const { return (bits & 7ull) != 0; }

    constexpr bool readable() const { return bits & kEptRead; }
    constexpr bool writable() const { return bits & kEptWrite; }
    constexpr bool executable() const { return bits & kEptExec; }

    /** Large-page bit; only meaningful at the PD level. */
    constexpr bool largePage() const { return bits & kEptLargePage; }

    /** Referenced host frame number. */
    constexpr Pfn
    frame() const
    {
        return base::bits(bits, kEpteFrameHiBit, kEpteFrameLoBit);
    }

    /** Entry with the execute permission changed. */
    constexpr EptEntry
    withExec(bool execute) const
    {
        return EptEntry(execute ? (bits | kEptExec)
                                : (bits & ~uint64_t{kEptExec}));
    }

    constexpr bool operator==(const EptEntry &) const = default;

  private:
    uint64_t bits = 0;
};

/** Index of the entry covering @p gpa at EPT level @p level (4..1). */
constexpr unsigned
eptIndex(GuestPhysAddr gpa, unsigned level)
{
    // Level 1 covers bits 12..20, level 2 bits 21..29, etc.
    const unsigned shift = kPageShift + 9 * (level - 1);
    return static_cast<unsigned>((gpa.value() >> shift) & 0x1ff);
}

/**
 * Heuristic EPT-page format check used by the *attacker* during
 * exploitation (Section 4.3): a page looks like an EPT page when every
 * 8-byte group is either all-zero or a "large value" with at least one
 * of its low 12 bits set (a frame number plus permission bits).
 */
constexpr bool
wordLooksLikeEpte(uint64_t word)
{
    if (word == 0)
        return true;
    const bool low_bits = (word & 0xfffull) != 0;
    const bool large = (word >> kEpteFrameLoBit) != 0;
    return low_bits && large;
}

} // namespace hh::kvm

#endif // HYPERHAMMER_KVM_EPT_H
