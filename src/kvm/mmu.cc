#include "mmu.h"

#include "base/log.h"

namespace hh::kvm {

Mmu::Mmu(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
         MmuConfig config, uint16_t owner_id)
    : dram(dram),
      buddy(buddy),
      cfg(config),
      owner(owner_id),
      rng(base::mix64(dram.config().seed, owner_id))
{
    auto page = allocTablePage();
    if (!page)
        base::fatal("cannot allocate EPT root: host out of memory");
    root = *page;
}

Mmu::Mmu(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
         MmuConfig config, uint16_t owner_id, base::RestoreTag)
    : dram(dram),
      buddy(buddy),
      cfg(config),
      owner(owner_id),
      rng(base::mix64(dram.config().seed, owner_id))
{
    // No root allocation: the snapshot's buddy state already carries
    // the table frames, and loadState() installs their PFNs.
}

Mmu::~Mmu()
{
    for (Pfn pfn : tablePages) {
        dram.backend().clearPage(pfn);
        buddy.freePages(pfn, 0);
    }
    for (Pfn pfn : metadataPages)
        buddy.freePages(pfn, 0);
}

base::Expected<Pfn>
Mmu::allocTablePage()
{
    auto page = cfg.tableAlloc == TableAllocPolicy::AnyList
        ? buddy.allocPagesAnyType(0, mm::PageUse::EptPage, owner)
        : buddy.allocPages(0, mm::MigrateType::Unmovable,
                           mm::PageUse::EptPage, owner);
    if (!page)
        return page;
    dram.fillPage(*page, 0);
    tablePages.push_back(*page);
    return page;
}

EptEntry
Mmu::readEntry(Pfn table, unsigned index) const
{
    // A corrupted table pointer (rowhammer flip or injected read
    // corruption during the walk) can point beyond physical memory;
    // real hardware raises an EPT misconfiguration there, which we
    // model as a non-present entry rather than a wild read.
    if (table >= dram.pageCount())
        return EptEntry();
    return EptEntry(dram.read64(entryAddr(table, index)));
}

void
Mmu::writeEntry(Pfn table, unsigned index, EptEntry entry)
{
    if (table >= dram.pageCount())
        return;
    dram.write64(entryAddr(table, index), entry.raw());
}

base::Expected<Pfn>
Mmu::walkToLevel(GuestPhysAddr gpa, unsigned target_level, bool create)
{
    Pfn table = root;
    for (unsigned level = kEptLevels; level > target_level; --level) {
        const unsigned index = eptIndex(gpa, level);
        EptEntry entry = readEntry(table, index);
        if (!entry.present()) {
            if (!create)
                return base::ErrorCode::NotFound;
            auto next = allocTablePage();
            if (!next)
                return base::ErrorCode::NoMemory;
            entry = EptEntry::table(*next);
            writeEntry(table, index, entry);
        } else if (level == 2 && entry.largePage()) {
            // A 2 MB leaf sits where we wanted a table.
            return base::ErrorCode::Exists;
        }
        table = entry.frame();
    }
    return table;
}

base::Status
Mmu::map2m(GuestPhysAddr gpa, HostPhysAddr hpa)
{
    if (!gpa.hugePageAligned() || !hpa.hugePageAligned())
        return base::ErrorCode::InvalidArgument;
    auto pd = walkToLevel(gpa, 2, true);
    if (!pd)
        return pd.error();
    const unsigned index = eptIndex(gpa, 2);
    if (readEntry(*pd, index).present())
        return base::ErrorCode::Exists;
    // Under the iTLB-Multihit countermeasure every hugepage mapping is
    // created non-executable (Section 4.2.3, "Countermeasure").
    writeEntry(*pd, index, EptEntry::leaf2m(hpa.pfn(), !cfg.nxHugePages));
    return base::Status::success();
}

base::Status
Mmu::map4k(GuestPhysAddr gpa, HostPhysAddr hpa, bool exec)
{
    if (!gpa.pageAligned() || !hpa.pageAligned())
        return base::ErrorCode::InvalidArgument;
    auto pd = walkToLevel(gpa, 2, true);
    if (!pd)
        return pd.error();
    const unsigned pd_index = eptIndex(gpa, 2);
    EptEntry pde = readEntry(*pd, pd_index);
    if (pde.present() && pde.largePage())
        return base::ErrorCode::Exists;
    if (!pde.present()) {
        auto pt = allocTablePage();
        if (!pt)
            return pt.error();
        pde = EptEntry::table(*pt);
        writeEntry(*pd, pd_index, pde);
    }
    const unsigned pt_index = eptIndex(gpa, 1);
    if (readEntry(pde.frame(), pt_index).present())
        return base::ErrorCode::Exists;
    writeEntry(pde.frame(), pt_index, EptEntry::leaf4k(hpa.pfn(), exec));
    return base::Status::success();
}

base::Status
Mmu::unmap(GuestPhysAddr gpa)
{
    auto pd = walkToLevel(gpa, 2, false);
    if (!pd)
        return base::Status(pd.error());

    const unsigned pd_index = eptIndex(gpa, 2);
    EptEntry pde = readEntry(*pd, pd_index);
    if (!pde.present())
        return base::ErrorCode::NotFound;
    if (pde.largePage()) {
        writeEntry(*pd, pd_index, EptEntry());
        return base::Status::success();
    }
    const unsigned pt_index = eptIndex(gpa, 1);
    if (!readEntry(pde.frame(), pt_index).present())
        return base::ErrorCode::NotFound;
    writeEntry(pde.frame(), pt_index, EptEntry());
    return base::Status::success();
}

base::Status
Mmu::unmapHugeRange(GuestPhysAddr gpa)
{
    if (!gpa.hugePageAligned())
        return base::ErrorCode::InvalidArgument;
    auto pd = walkToLevel(gpa, 2, false);
    if (!pd)
        return base::Status(pd.error());
    const unsigned pd_index = eptIndex(gpa, 2);
    const EptEntry pde = readEntry(*pd, pd_index);
    if (!pde.present())
        return base::ErrorCode::NotFound;
    if (pde.largePage()) {
        writeEntry(*pd, pd_index, EptEntry());
        return base::Status::success();
    }
    for (unsigned i = 0; i < kEntriesPerTable; ++i)
        writeEntry(pde.frame(), i, EptEntry());
    return base::Status::success();
}

base::Expected<HostPhysAddr>
Mmu::translate(GuestPhysAddr gpa) const
{
    Pfn table = root;
    for (unsigned level = kEptLevels; level >= 1; --level) {
        const EptEntry entry = readEntry(table, eptIndex(gpa, level));
        if (!entry.present())
            return base::ErrorCode::NotFound;
        if (level == 2 && entry.largePage()) {
            return HostPhysAddr((entry.frame() << kPageShift)
                                + gpa.hugePageOffset());
        }
        if (level == 1) {
            return HostPhysAddr((entry.frame() << kPageShift)
                                + gpa.pageOffset());
        }
        table = entry.frame();
    }
    return base::ErrorCode::NotFound;
}

base::Expected<EptEntry>
Mmu::leafEntry(GuestPhysAddr gpa) const
{
    Pfn table = root;
    for (unsigned level = kEptLevels; level >= 1; --level) {
        const EptEntry entry = readEntry(table, eptIndex(gpa, level));
        if (!entry.present())
            return base::ErrorCode::NotFound;
        if ((level == 2 && entry.largePage()) || level == 1)
            return entry;
        table = entry.frame();
    }
    return base::ErrorCode::NotFound;
}

std::vector<Pfn>
Mmu::leafFrames(GuestPhysAddr base) const
{
    std::vector<Pfn> frames(kEntriesPerTable, kInvalidPfn);
    HH_ASSERT(base.hugePageAligned());
    // Walk the upper levels once.
    Pfn table = root;
    for (unsigned level = kEptLevels; level > 2; --level) {
        const EptEntry entry = readEntry(table, eptIndex(base, level));
        if (!entry.present())
            return frames;
        table = entry.frame();
    }
    const EptEntry pde = readEntry(table, eptIndex(base, 2));
    if (!pde.present())
        return frames;
    if (pde.largePage()) {
        for (unsigned i = 0; i < kEntriesPerTable; ++i)
            frames[i] = pde.frame() + i;
        return frames;
    }
    for (unsigned i = 0; i < kEntriesPerTable; ++i) {
        const EptEntry pte = readEntry(pde.frame(), i);
        if (pte.present())
            frames[i] = pte.frame();
    }
    return frames;
}

base::Status
Mmu::demote(GuestPhysAddr gpa, Pfn pd_table, unsigned pd_index,
            EptEntry pd_entry)
{
    // The countermeasure splits the hugepage: a fresh EPT page is
    // allocated (this is the primitive Page Steering harvests) and
    // filled with 512 executable 4 KB entries covering the same range.
    auto pt = allocTablePage();
    if (!pt)
        return pt.error();
    const Pfn base_frame = pd_entry.frame();
    for (unsigned i = 0; i < kEntriesPerTable; ++i)
        writeEntry(*pt, i, EptEntry::leaf4k(base_frame + i, true));
    writeEntry(pd_table, pd_index, EptEntry::table(*pt));
    ++demotionCount;

    // Split bookkeeping: rmap array, kvm_mmu_page, page tracking --
    // ordinary unmovable kernel allocations that interleave with the
    // table pages and dilute the attacker's placement (Table 2). The
    // count varies around the configured mean: slab pages are shared
    // between splits, so the per-split demand is batchy, not fixed.
    unsigned metadata = cfg.splitMetadataPages;
    if (metadata > 0)
        metadata = static_cast<unsigned>(
            rng.between(metadata > 1 ? metadata - 1 : 0, metadata + 1));
    for (unsigned i = 0; i < metadata; ++i) {
        auto meta = cfg.tableAlloc == TableAllocPolicy::AnyList
            ? buddy.allocPagesAnyType(0, mm::PageUse::KernelData, owner)
            : buddy.allocPages(0, mm::MigrateType::Unmovable,
                               mm::PageUse::KernelData, owner);
        if (meta)
            metadataPages.push_back(*meta);
    }
    (void)gpa;
    return base::Status::success();
}

base::Status
Mmu::execDuringPageSizeChange(GuestPhysAddr gpa)
{
    auto entry = leafEntry(gpa);
    if (!entry)
        return base::Status(entry.error());
    if (entry->largePage() && entry->executable()
        && cfg.itlbMultihitErratum) {
        // Executable hugepage + concurrent resize + erratum: the CPU
        // can hit both iTLB entries and raises a machine check. This
        // is the DoS the NX-hugepage countermeasure exists to prevent.
        ++machineCheckCount;
        return base::ErrorCode::Fault;
    }
    return access(gpa, Access::Exec).status;
}

base::Status
Mmu::splitHugePage(GuestPhysAddr gpa)
{
    auto pd = walkToLevel(gpa, 2, false);
    if (!pd)
        return base::Status(pd.error());
    const unsigned pd_index = eptIndex(gpa, 2);
    const EptEntry pde = readEntry(*pd, pd_index);
    if (!pde.present())
        return base::ErrorCode::NotFound;
    if (!pde.largePage())
        return base::Status::success(); // already 4 KB granular
    return demote(gpa, *pd, pd_index, pde);
}

/** Walk to the PT entry covering a 4 KB-mapped gpa. */
base::Status
Mmu::setLeafWritable(GuestPhysAddr gpa, bool writable)
{
    auto pd = walkToLevel(gpa, 2, false);
    if (!pd)
        return base::Status(pd.error());
    const EptEntry pde = readEntry(*pd, eptIndex(gpa, 2));
    if (!pde.present() || pde.largePage())
        return base::ErrorCode::NotFound;
    const unsigned pt_index = eptIndex(gpa, 1);
    const EptEntry pte = readEntry(pde.frame(), pt_index);
    if (!pte.present())
        return base::ErrorCode::NotFound;
    const uint64_t raw = writable
        ? pte.raw() | kEptWrite : pte.raw() & ~uint64_t{kEptWrite};
    writeEntry(pde.frame(), pt_index, EptEntry(raw));
    return base::Status::success();
}

base::Status
Mmu::remapLeaf4k(GuestPhysAddr gpa, Pfn frame, bool writable)
{
    auto pd = walkToLevel(gpa, 2, false);
    if (!pd)
        return base::Status(pd.error());
    const EptEntry pde = readEntry(*pd, eptIndex(gpa, 2));
    if (!pde.present() || pde.largePage())
        return base::ErrorCode::NotFound;
    const unsigned pt_index = eptIndex(gpa, 1);
    const EptEntry pte = readEntry(pde.frame(), pt_index);
    if (!pte.present())
        return base::ErrorCode::NotFound;
    EptEntry fresh = EptEntry::leaf4k(frame, pte.executable());
    if (!writable)
        fresh = EptEntry(fresh.raw() & ~uint64_t{kEptWrite});
    writeEntry(pde.frame(), pt_index, fresh);
    return base::Status::success();
}

AccessResult
Mmu::access(GuestPhysAddr gpa, Access type)
{
    AccessResult result;
    Pfn table = root;
    for (unsigned level = kEptLevels; level >= 1; --level) {
        const unsigned index = eptIndex(gpa, level);
        const EptEntry entry = readEntry(table, index);
        if (!entry.present()) {
            result.status = base::ErrorCode::NotFound;
            return result;
        }
        const bool leaf = (level == 2 && entry.largePage()) || level == 1;
        if (!leaf) {
            table = entry.frame();
            continue;
        }
        if (type == Access::Write && !entry.writable()) {
            result.status = base::ErrorCode::Denied;
            return result;
        }
        if (type == Access::Exec && !entry.executable()) {
            if (level == 2 && cfg.nxHugePages) {
                // iTLB-Multihit countermeasure: demote and retry.
                const base::Status st = demote(gpa, table, index, entry);
                if (!st.ok()) {
                    result.status = st;
                    return result;
                }
                result.demotedHugePage = true;
                auto hpa = translate(gpa);
                if (!hpa) {
                    result.status = hpa.error();
                    return result;
                }
                result.status = base::Status::success();
                result.hpa = *hpa;
                return result;
            }
            result.status = base::ErrorCode::Denied;
            return result;
        }
        result.status = base::Status::success();
        result.hpa = HostPhysAddr(
            (entry.frame() << kPageShift)
            + (level == 2 ? gpa.hugePageOffset() : gpa.pageOffset()));
        return result;
    }
    result.status = base::ErrorCode::NotFound;
    return result;
}

void
Mmu::saveState(base::ArchiveWriter &w) const
{
    w.u64(root);
    w.u64vec(tablePages);
    w.u64vec(metadataPages);
    w.u64(demotionCount);
    w.u64(machineCheckCount);
    w.rngState(rng.saveState());
}

base::Status
Mmu::loadState(base::ArchiveReader &r)
{
    const Pfn new_root = r.u64();
    std::vector<Pfn> tables = r.u64vec();
    std::vector<Pfn> metadata = r.u64vec();
    const uint64_t demoted = r.u64();
    const uint64_t mces = r.u64();
    const std::array<uint64_t, 4> rng_state = r.rngState();
    if (r.ok() && new_root >= dram.pageCount())
        r.fail();
    for (Pfn pfn : tables) {
        if (pfn >= dram.pageCount()) {
            r.fail();
            break;
        }
    }
    for (Pfn pfn : metadata) {
        if (pfn >= buddy.totalPages()) {
            r.fail();
            break;
        }
    }
    if (!r.ok())
        return r.status();
    root = new_root;
    tablePages = std::move(tables);
    metadataPages = std::move(metadata);
    demotionCount = demoted;
    machineCheckCount = mces;
    rng.loadState(rng_state);
    return base::Status::success();
}

} // namespace hh::kvm
