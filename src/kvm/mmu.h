/**
 * @file
 * KVM MMU model: builds and walks a VM's 4-level EPT, and implements the
 * iTLB-Multihit countermeasure that Page Steering exploits (Section
 * 4.2.3).
 *
 * Table pages are allocated from the host buddy allocator as order-0
 * MIGRATE_UNMOVABLE pages and their entries live in simulated DRAM, so
 * both the allocator interactions and the Rowhammer exposure are real
 * within the simulation.
 */

#ifndef HYPERHAMMER_KVM_MMU_H
#define HYPERHAMMER_KVM_MMU_H

#include <cstdint>
#include <vector>

#include "base/archive.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "kvm/ept.h"
#include "mm/buddy_allocator.h"

namespace hh::kvm {

/** Type of guest access, for permission checks and the exec fault. */
enum class Access : uint8_t { Read, Write, Exec };

/** How table pages are drawn from the host allocator. */
enum class TableAllocPolicy : uint8_t
{
    /** Linux/KVM: order-0 from the MIGRATE_UNMOVABLE lists. */
    UnmovableLists,
    /** Xen: alloc_domheap_pages ignores migrate types (Section 6). */
    AnyList,
};

/** MMU tuning knobs. */
struct MmuConfig
{
    /**
     * iTLB-Multihit countermeasure: back guest hugepages with
     * non-executable 2 MB leaves and demote to executable 4 KB pages on
     * an exec fault. KVM enables this by default on affected parts.
     */
    bool nxHugePages = true;
    /**
     * Whether the host CPU has the iTLB Multihit erratum at all. With
     * the erratum present and the countermeasure off, an exec on a
     * freshly resized hugepage machine-checks (DoS).
     */
    bool itlbMultihitErratum = true;
    /** Table-page allocation policy (KVM vs. Xen ablation). */
    TableAllocPolicy tableAlloc = TableAllocPolicy::UnmovableLists;
    /**
     * Kernel metadata pages allocated per hugepage split: the
     * kvm_mmu_page descriptor, the 512-entry rmap array (4 KB by
     * itself), parent-PTE tracking and slab overhead. These unmovable
     * allocations interleave with the EPT pages and compete for the
     * same released blocks -- Table 2's R_E stays well below 100 %
     * because of them.
     */
    unsigned splitMetadataPages = 3;
};

/** Result of a guest access through the EPT. */
struct AccessResult
{
    base::Status status;
    /** Translated host physical address (valid when status is ok). */
    HostPhysAddr hpa{0};
    /** True when this access triggered a hugepage demotion. */
    bool demotedHugePage = false;
};

/**
 * One VM's extended page tables.
 */
class Mmu
{
  public:
    /**
     * @param dram     backing store for table pages
     * @param buddy    host page allocator
     * @param config   countermeasure configuration
     * @param owner_id VM identifier for page-frame accounting
     */
    Mmu(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
        MmuConfig config, uint16_t owner_id);

    /**
     * Restore-mode constructor: skips the root-table allocation (the
     * snapshot already accounts for it); loadState() must follow.
     */
    Mmu(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
        MmuConfig config, uint16_t owner_id, base::RestoreTag);

    ~Mmu();

    Mmu(const Mmu &) = delete;
    Mmu &operator=(const Mmu &) = delete;

    /** Root table (PML4) frame. */
    Pfn rootFrame() const { return root; }

    /**
     * Install a 2 MB mapping gpa -> hpa (both 2 MB aligned). Under the
     * NX-hugepage countermeasure the leaf is created non-executable.
     */
    [[nodiscard]] base::Status map2m(GuestPhysAddr gpa, HostPhysAddr hpa);

    /** Install a 4 KB mapping gpa -> hpa. */
    [[nodiscard]] base::Status map4k(GuestPhysAddr gpa, HostPhysAddr hpa, bool exec);

    /** Remove the mapping covering @p gpa (leaf only). */
    [[nodiscard]] base::Status unmap(GuestPhysAddr gpa);

    /**
     * Remove every mapping inside the 2 MB-aligned range at @p gpa:
     * one PD entry when the range is still a hugepage leaf, or all
     * 512 PT entries after a demotion (virtio-mem unplug path).
     */
    [[nodiscard]] base::Status unmapHugeRange(GuestPhysAddr gpa);

    /**
     * Translate a GPA by walking the EPT in DRAM. Honours whatever the
     * entries *currently* contain -- including Rowhammer corruption.
     */
    [[nodiscard]] base::Expected<HostPhysAddr> translate(GuestPhysAddr gpa) const;

    /**
     * Perform a guest access. Exec accesses to NX 2 MB leaves trigger
     * the countermeasure: the hugepage is demoted into 512 executable
     * 4 KB entries held in a freshly allocated EPT page. With the
     * erratum present and no countermeasure, a resize-prone exec
     * machine-checks (status Fault).
     */
    AccessResult access(GuestPhysAddr gpa, Access type);

    /**
     * Model the iTLB Multihit erratum itself: execute at @p gpa while
     * its mapping is being resized. With the erratum present and the
     * countermeasure disabled this raises a machine check (Fault), the
     * DoS the NX-hugepage mitigation prevents.
     */
    [[nodiscard]] base::Status execDuringPageSizeChange(GuestPhysAddr gpa);

    /**
     * Host-initiated hugepage split (KSM and page migration need 4 KB
     * granularity). Same mechanics as the exec-fault demotion.
     */
    [[nodiscard]] base::Status splitHugePage(GuestPhysAddr gpa);

    /**
     * Toggle the write permission of the 4 KB leaf covering @p gpa
     * (KSM write-protects merged pages).
     */
    [[nodiscard]] base::Status setLeafWritable(GuestPhysAddr gpa, bool writable);

    /**
     * Point the 4 KB leaf covering @p gpa at @p frame (KSM merge and
     * copy-on-write breaking).
     */
    [[nodiscard]] base::Status remapLeaf4k(GuestPhysAddr gpa, Pfn frame,
                             bool writable);

    /** Number of EPT table pages currently allocated (paper's E). */
    uint64_t eptPageCount() const { return tablePages.size(); }

    /** Frames of all EPT table pages (the paper's EPT dump hook). */
    const std::vector<Pfn> &eptPageFrames() const { return tablePages; }

    /** Number of hugepage demotions performed (one new EPT page each). */
    uint64_t demotions() const { return demotionCount; }

    /** Machine checks raised (erratum without countermeasure). */
    uint64_t machineChecks() const { return machineCheckCount; }

    /**
     * Re-read a leaf entry for @p gpa straight from DRAM -- evaluation
     * helper to observe corruption.
     */
    [[nodiscard]] base::Expected<EptEntry> leafEntry(GuestPhysAddr gpa) const;

    /**
     * Resolve the host frame of every 4 KB page in the 2 MB-aligned
     * range starting at @p base. Walks the upper levels once and then
     * streams the 512 leaves -- the honest equivalent of a guest
     * touching each page with a warm TLB. Entries that are not present
     * yield kInvalidPfn.
     */
    std::vector<Pfn> leafFrames(GuestPhysAddr base) const;

    /** Serialize root/table/metadata frames, counters and RNG cursor. */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore state written by saveState(); table contents live in DRAM. */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    MmuConfig cfg;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time identity, re-supplied by the restoring caller
    uint16_t owner;
    /**
     * Varies the split-metadata batching: slab refills are phase-
     * shifted between VM instances, so whether a particular released
     * frame receives an EPT page or metadata differs across attack
     * attempts (it is not a rigid E,M,M,M,... interleave).
     */
    base::Rng rng;

    Pfn root = kInvalidPfn;
    std::vector<Pfn> tablePages;
    /** Slab-backed split metadata (rmap arrays etc.). */
    std::vector<Pfn> metadataPages;
    uint64_t demotionCount = 0;
    uint64_t machineCheckCount = 0;

    /** Allocate one zeroed EPT table page (order-0 UNMOVABLE). */
    [[nodiscard]] base::Expected<Pfn> allocTablePage();

    /** Address of entry @p index in table page @p table. */
    static HostPhysAddr
    entryAddr(Pfn table, unsigned index)
    {
        return HostPhysAddr(table * kPageSize + index * 8ull);
    }

    EptEntry readEntry(Pfn table, unsigned index) const;
    void writeEntry(Pfn table, unsigned index, EptEntry entry);

    /**
     * Walk to the PD level (level 2), allocating intermediate tables
     * when @p create is set. Returns the PD table frame.
     */
    [[nodiscard]] base::Expected<Pfn> walkToLevel(GuestPhysAddr gpa, unsigned level,
                                    bool create);

    /** Demote the 2 MB leaf at @p gpa into 4 KB mappings. */
    [[nodiscard]] base::Status demote(GuestPhysAddr gpa, Pfn pd_table, unsigned pd_index,
                        EptEntry pd_entry);
};

} // namespace hh::kvm

#endif // HYPERHAMMER_KVM_MMU_H
