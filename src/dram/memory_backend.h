/**
 * @file
 * Sparse physical-memory data store with copy-on-write forking.
 *
 * Simulating multi-gigabyte hosts must not cost multi-gigabyte buffers.
 * The attack only cares about a few content classes: whole pages filled
 * with a hammer pattern, pages carrying an 8-byte magic marker, and EPT /
 * IOPT pages with real 64-bit entries. The backend therefore stores each
 * touched page as a uniform 64-bit fill value plus a sparse word-override
 * map, which makes "fill 12 GB with 0xff" an O(pages) metadata operation
 * and keeps page-table pages exact.
 *
 * Forking (the Monte-Carlo trial engine's clone path) is page-granular
 * copy-on-write: freeze() publishes the current contents as an immutable
 * shared template, and fork() produces a backend that references the
 * template and keeps its own private overlay. Reads fall through
 * overlay -> template -> zero; the first write to a template page copies
 * that one page into the overlay (write-time unsharing). Clearing a
 * template page records a tombstone in the overlay, so no fork can ever
 * mutate the shared template -- and forking costs O(overlay pages), not
 * O(memory).
 */

#ifndef HYPERHAMMER_DRAM_MEMORY_BACKEND_H
#define HYPERHAMMER_DRAM_MEMORY_BACKEND_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/archive.h"
#include "base/types.h"

namespace hh::dram {

/**
 * Word-granular sparse store over the host physical address space.
 * Untouched memory reads as zero.
 */
class MemoryBackend
{
  public:
    explicit MemoryBackend(uint64_t total_bytes) : totalBytes(total_bytes)
    {}

    /** Deep copies are banned: clone worlds via freeze() + fork(). */
    MemoryBackend(const MemoryBackend &) = delete;
    MemoryBackend &operator=(const MemoryBackend &) = delete;
    MemoryBackend(MemoryBackend &&) = default;
    MemoryBackend &operator=(MemoryBackend &&) = default;

    /** Size of the backed physical address space. */
    uint64_t size() const { return totalBytes; }

    /** True when @p addr lies inside the address space. */
    bool
    contains(HostPhysAddr addr) const
    {
        return addr.value() < totalBytes;
    }

    /** Read the aligned 64-bit word containing @p addr. */
    uint64_t read64(HostPhysAddr addr) const;

    /** Write the aligned 64-bit word containing @p addr. */
    void write64(HostPhysAddr addr, uint64_t value);

    /** Fill an entire 4 KB frame with a repeated 64-bit pattern. */
    void fillPage(Pfn pfn, uint64_t pattern);

    /** Flip one bit of the word containing @p addr; returns new value. */
    uint64_t flipBit(HostPhysAddr addr, unsigned bit_in_word);

    /**
     * Word indices (0..511) of a frame whose content differs from an
     * expected uniform fill. Costs O(overrides) rather than O(page):
     * the common case -- an untouched filled page -- is a constant-time
     * "no mismatch".
     */
    std::vector<uint16_t> mismatchedWords(Pfn pfn,
                                          uint64_t expected_fill) const;

    /**
     * Number of *overlay* frames carrying private data (fill,
     * overrides, or a tombstone over a template page). Frames served
     * unmodified from the shared template are not counted: the value
     * measures what this fork privately owns, which is both the
     * capacity-test metric and the clone cost of fork().
     */
    size_t touchedPages() const { return pages.size(); }

    /** Frames in the shared template (0 when never frozen). */
    size_t templatePages() const { return shared ? shared->size() : 0; }

    /** Drop all contents, template reference included. */
    void
    clear()
    {
        pages.clear();
        shared.reset();
    }

    /**
     * Drop the contents of one frame (reads revert to zero). On a
     * forked backend this shadows the template page with a tombstone;
     * the template itself is never modified.
     */
    void clearPage(Pfn pfn);

    /**
     * Publish the current contents (template plus overlay, merged) as
     * a new immutable shared template and empty the overlay. After
     * freezing, fork() is O(1) and every mutation unshares at page
     * granularity. Costs O(touched pages); idempotent.
     */
    void freeze();

    /**
     * A copy-on-write clone: shares this backend's template (if any)
     * and duplicates only the private overlay. Call freeze() first to
     * make the overlay empty and the fork O(1).
     */
    MemoryBackend fork() const;

    /**
     * Serialize all pages carrying data (in sorted-Pfn order). The
     * merged template/overlay view is traversed in place -- forked
     * state is never materialized -- and the byte stream is identical
     * to what a flat backend of the same logical contents writes.
     */
    void saveState(base::ArchiveWriter &w) const;

    /** Replace contents with a stream written by saveState(). */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    struct PageData
    {
        /** Value of every word not present in overrides. */
        uint64_t fill = 0;
        /**
         * Word-index (0..511) -> value exceptions, kept sorted. A
         * vector beats a hash map here: pages typically carry zero or
         * a handful of overrides, and multi-gigabyte fills must stay
         * at ~tens of bytes per page.
         */
        std::vector<std::pair<uint16_t, uint64_t>> overrides;
        /**
         * Overlay-only tombstone: this fork cleared a page the shared
         * template still carries. Reads see zero; saveState() skips
         * the page entirely (matching a flat backend's erase).
         */
        bool erased = false;

        /** Iterator to the override for @p idx, or end(). */
        std::vector<std::pair<uint16_t, uint64_t>>::const_iterator
        find(uint16_t idx) const;
    };

    using PageMap = std::unordered_map<Pfn, PageData>;

    /**
     * Effective page for reads: overlay wins (tombstones read as
     * absent), then the template, then nullptr (= all-zero).
     */
    const PageData *lookup(Pfn pfn) const;

    /**
     * Overlay entry for writes, copying the template page up on first
     * touch (write-time unsharing) and reviving tombstones as empty
     * pages.
     */
    PageData &mutablePage(Pfn pfn);

    /** Sorted PFNs of the merged view, tombstoned pages excluded. */
    std::vector<Pfn> mergedPfns() const;

    uint64_t totalBytes;
    /** Private overlay: every page this instance has touched. */
    PageMap pages;
    /** Immutable shared template (null until the first freeze()). */
    std::shared_ptr<const PageMap> shared;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_MEMORY_BACKEND_H
