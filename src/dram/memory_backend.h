/**
 * @file
 * Sparse physical-memory data store.
 *
 * Simulating multi-gigabyte hosts must not cost multi-gigabyte buffers.
 * The attack only cares about a few content classes: whole pages filled
 * with a hammer pattern, pages carrying an 8-byte magic marker, and EPT /
 * IOPT pages with real 64-bit entries. The backend therefore stores each
 * touched page as a uniform 64-bit fill value plus a sparse word-override
 * map, which makes "fill 12 GB with 0xff" an O(pages) metadata operation
 * and keeps page-table pages exact.
 */

#ifndef HYPERHAMMER_DRAM_MEMORY_BACKEND_H
#define HYPERHAMMER_DRAM_MEMORY_BACKEND_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/archive.h"
#include "base/types.h"

namespace hh::dram {

/**
 * Word-granular sparse store over the host physical address space.
 * Untouched memory reads as zero.
 */
class MemoryBackend
{
  public:
    explicit MemoryBackend(uint64_t total_bytes) : totalBytes(total_bytes)
    {}

    /** Size of the backed physical address space. */
    uint64_t size() const { return totalBytes; }

    /** True when @p addr lies inside the address space. */
    bool
    contains(HostPhysAddr addr) const
    {
        return addr.value() < totalBytes;
    }

    /** Read the aligned 64-bit word containing @p addr. */
    uint64_t read64(HostPhysAddr addr) const;

    /** Write the aligned 64-bit word containing @p addr. */
    void write64(HostPhysAddr addr, uint64_t value);

    /** Fill an entire 4 KB frame with a repeated 64-bit pattern. */
    void fillPage(Pfn pfn, uint64_t pattern);

    /** Flip one bit of the word containing @p addr; returns new value. */
    uint64_t flipBit(HostPhysAddr addr, unsigned bit_in_word);

    /**
     * Word indices (0..511) of a frame whose content differs from an
     * expected uniform fill. Costs O(overrides) rather than O(page):
     * the common case -- an untouched filled page -- is a constant-time
     * "no mismatch".
     */
    std::vector<uint16_t> mismatchedWords(Pfn pfn,
                                          uint64_t expected_fill) const;

    /**
     * Number of frames carrying any data (fill or overrides); used by
     * capacity tests.
     */
    size_t touchedPages() const { return pages.size(); }

    /** Drop all contents (reads revert to zero). */
    void clear() { pages.clear(); }

    /** Drop the contents of one frame (reads revert to zero). */
    void clearPage(Pfn pfn) { pages.erase(pfn); }

    /** Serialize all touched pages (in sorted-Pfn order). */
    void saveState(base::ArchiveWriter &w) const;

    /** Replace contents with a stream written by saveState(). */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    struct PageData
    {
        /** Value of every word not present in overrides. */
        uint64_t fill = 0;
        /**
         * Word-index (0..511) -> value exceptions, kept sorted. A
         * vector beats a hash map here: pages typically carry zero or
         * a handful of overrides, and multi-gigabyte fills must stay
         * at ~tens of bytes per page.
         */
        std::vector<std::pair<uint16_t, uint64_t>> overrides;

        /** Iterator to the override for @p idx, or end(). */
        std::vector<std::pair<uint16_t, uint64_t>>::const_iterator
        find(uint16_t idx) const;
    };

    uint64_t totalBytes;
    std::unordered_map<Pfn, PageData> pages;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_MEMORY_BACKEND_H
