#include "memory_backend.h"

#include <algorithm>

#include "base/container_util.h"
#include "base/log.h"

namespace hh::dram {

namespace {

constexpr uint16_t
wordIndex(HostPhysAddr addr)
{
    return static_cast<uint16_t>((addr.value() & (kPageSize - 1)) / 8);
}

struct IdxLess
{
    bool
    operator()(const std::pair<uint16_t, uint64_t> &entry,
               uint16_t idx) const
    {
        return entry.first < idx;
    }
};

} // namespace

std::vector<std::pair<uint16_t, uint64_t>>::const_iterator
MemoryBackend::PageData::find(uint16_t idx) const
{
    auto it = std::lower_bound(overrides.begin(), overrides.end(), idx,
                               IdxLess{});
    if (it != overrides.end() && it->first == idx)
        return it;
    return overrides.end();
}

const MemoryBackend::PageData *
MemoryBackend::lookup(Pfn pfn) const
{
    if (const auto it = pages.find(pfn); it != pages.end())
        return it->second.erased ? nullptr : &it->second;
    if (shared) {
        if (const auto it = shared->find(pfn); it != shared->end())
            return &it->second;
    }
    return nullptr;
}

MemoryBackend::PageData &
MemoryBackend::mutablePage(Pfn pfn)
{
    if (const auto it = pages.find(pfn); it != pages.end()) {
        if (it->second.erased)
            it->second = PageData{};
        return it->second;
    }
    PageData &page = pages[pfn];
    if (shared) {
        if (const auto it = shared->find(pfn); it != shared->end())
            page = it->second; // unshare: copy this one page up
    }
    return page;
}

uint64_t
MemoryBackend::read64(HostPhysAddr addr) const
{
    HH_ASSERT(contains(addr));
    const PageData *page = lookup(addr.pfn());
    if (page == nullptr)
        return 0;
    const auto ov = page->find(wordIndex(addr));
    return ov != page->overrides.end() ? ov->second : page->fill;
}

void
MemoryBackend::write64(HostPhysAddr addr, uint64_t value)
{
    HH_ASSERT(contains(addr));
    PageData &page = mutablePage(addr.pfn());
    const uint16_t idx = wordIndex(addr);
    auto it = std::lower_bound(page.overrides.begin(),
                               page.overrides.end(), idx, IdxLess{});
    const bool present =
        it != page.overrides.end() && it->first == idx;
    if (value == page.fill) {
        if (present)
            page.overrides.erase(it);
    } else if (present) {
        it->second = value;
    } else {
        page.overrides.insert(it, {idx, value});
    }
}

void
MemoryBackend::clearPage(Pfn pfn)
{
    if (shared && shared->count(pfn) != 0) {
        // The template still carries this page; shadow it with a
        // tombstone so the shared data stays untouched.
        PageData &page = pages[pfn];
        page = PageData{};
        page.erased = true;
        return;
    }
    pages.erase(pfn);
}

void
MemoryBackend::fillPage(Pfn pfn, uint64_t pattern)
{
    HH_ASSERT(pfn * kPageSize < totalBytes);
    if (pattern == 0) {
        // Identical to untouched memory; reclaim the metadata.
        clearPage(pfn);
        return;
    }
    PageData &page = pages[pfn];
    page.fill = pattern;
    page.erased = false;
    page.overrides.clear();
    page.overrides.shrink_to_fit();
}

uint64_t
MemoryBackend::flipBit(HostPhysAddr addr, unsigned bit_in_word)
{
    HH_ASSERT(bit_in_word < 64);
    const uint64_t value = read64(addr) ^ (1ull << bit_in_word);
    write64(addr, value);
    return value;
}

std::vector<uint16_t>
MemoryBackend::mismatchedWords(Pfn pfn, uint64_t expected_fill) const
{
    std::vector<uint16_t> mismatches;
    const PageData *it = lookup(pfn);
    if (it == nullptr) {
        // Untouched memory reads as zero everywhere.
        if (expected_fill != 0) {
            mismatches.resize(kPageSize / 8);
            for (uint16_t i = 0; i < kPageSize / 8; ++i)
                mismatches[i] = i;
        }
        return mismatches;
    }
    const PageData &page = *it;
    if (page.fill == expected_fill) {
        // Only overridden words can mismatch.
        for (const auto &[idx, value] : page.overrides) {
            if (value != expected_fill)
                mismatches.push_back(idx);
        }
    } else {
        // Every word mismatches unless overridden back to expected.
        auto ov = page.overrides.begin();
        for (uint16_t i = 0; i < kPageSize / 8; ++i) {
            while (ov != page.overrides.end() && ov->first < i)
                ++ov;
            const uint64_t value =
                (ov != page.overrides.end() && ov->first == i)
                    ? ov->second : page.fill;
            if (value != expected_fill)
                mismatches.push_back(i);
        }
    }
    return mismatches;
}

void
MemoryBackend::freeze()
{
    PageMap merged;
    if (shared)
        merged = *shared;
    for (auto &[pfn, page] : pages) {
        if (page.erased)
            merged.erase(pfn);
        else
            merged[pfn] = std::move(page);
    }
    shared = std::make_shared<const PageMap>(std::move(merged));
    pages.clear();
}

MemoryBackend
MemoryBackend::fork() const
{
    MemoryBackend forked(totalBytes);
    forked.shared = shared;
    forked.pages = pages;
    return forked;
}

std::vector<Pfn>
MemoryBackend::mergedPfns() const
{
    std::vector<Pfn> pfns;
    pfns.reserve(pages.size() + (shared ? shared->size() : 0));
    for (const auto &[pfn, page] : pages) {
        if (!page.erased)
            pfns.push_back(pfn);
    }
    if (shared) {
        for (const auto &[pfn, page] : *shared) {
            if (pages.count(pfn) == 0)
                pfns.push_back(pfn);
        }
    }
    std::sort(pfns.begin(), pfns.end());
    return pfns;
}

void
MemoryBackend::saveState(base::ArchiveWriter &w) const
{
    const std::vector<Pfn> pfns = mergedPfns();
    w.u64(pfns.size());
    for (Pfn pfn : pfns) {
        const PageData *page = lookup(pfn);
        HH_ASSERT(page != nullptr);
        w.u64(pfn);
        w.u64(page->fill);
        w.u64(page->overrides.size());
        for (const auto &[idx, value] : page->overrides) {
            w.u16(idx);
            w.u64(value);
        }
    }
}

base::Status
MemoryBackend::loadState(base::ArchiveReader &r)
{
    PageMap loaded;
    const uint64_t page_count = r.count(16);
    loaded.reserve(page_count);
    for (uint64_t i = 0; i < page_count && r.ok(); ++i) {
        const Pfn pfn = r.u64();
        if (pfn * kPageSize >= totalBytes) {
            r.fail();
            break;
        }
        PageData &page = loaded[pfn];
        page.fill = r.u64();
        const uint64_t override_count = r.count(10);
        page.overrides.reserve(override_count);
        uint32_t prev_idx = 0;
        for (uint64_t j = 0; j < override_count && r.ok(); ++j) {
            const uint16_t idx = r.u16();
            const uint64_t value = r.u64();
            // Overrides must be sorted, unique, in-page: find() relies
            // on it, so reject rather than rebuild.
            if (idx >= kPageSize / 8 || (j > 0 && idx <= prev_idx)) {
                r.fail();
                break;
            }
            prev_idx = idx;
            page.overrides.emplace_back(idx, value);
        }
    }
    if (!r.ok())
        return r.status();
    // The loaded stream is the complete logical state: it replaces the
    // overlay and detaches from any shared template.
    pages = std::move(loaded);
    shared.reset();
    return base::Status::success();
}

} // namespace hh::dram
