#include "memory_backend.h"

#include <algorithm>

#include "base/log.h"

namespace hh::dram {

namespace {

constexpr uint16_t
wordIndex(HostPhysAddr addr)
{
    return static_cast<uint16_t>((addr.value() & (kPageSize - 1)) / 8);
}

struct IdxLess
{
    bool
    operator()(const std::pair<uint16_t, uint64_t> &entry,
               uint16_t idx) const
    {
        return entry.first < idx;
    }
};

} // namespace

std::vector<std::pair<uint16_t, uint64_t>>::const_iterator
MemoryBackend::PageData::find(uint16_t idx) const
{
    auto it = std::lower_bound(overrides.begin(), overrides.end(), idx,
                               IdxLess{});
    if (it != overrides.end() && it->first == idx)
        return it;
    return overrides.end();
}

uint64_t
MemoryBackend::read64(HostPhysAddr addr) const
{
    HH_ASSERT(contains(addr));
    const auto it = pages.find(addr.pfn());
    if (it == pages.end())
        return 0;
    const PageData &page = it->second;
    const auto ov = page.find(wordIndex(addr));
    return ov != page.overrides.end() ? ov->second : page.fill;
}

void
MemoryBackend::write64(HostPhysAddr addr, uint64_t value)
{
    HH_ASSERT(contains(addr));
    PageData &page = pages[addr.pfn()];
    const uint16_t idx = wordIndex(addr);
    auto it = std::lower_bound(page.overrides.begin(),
                               page.overrides.end(), idx, IdxLess{});
    const bool present =
        it != page.overrides.end() && it->first == idx;
    if (value == page.fill) {
        if (present)
            page.overrides.erase(it);
    } else if (present) {
        it->second = value;
    } else {
        page.overrides.insert(it, {idx, value});
    }
}

void
MemoryBackend::fillPage(Pfn pfn, uint64_t pattern)
{
    HH_ASSERT(pfn * kPageSize < totalBytes);
    if (pattern == 0) {
        // Identical to untouched memory; reclaim the metadata.
        pages.erase(pfn);
        return;
    }
    PageData &page = pages[pfn];
    page.fill = pattern;
    page.overrides.clear();
    page.overrides.shrink_to_fit();
}

uint64_t
MemoryBackend::flipBit(HostPhysAddr addr, unsigned bit_in_word)
{
    HH_ASSERT(bit_in_word < 64);
    const uint64_t value = read64(addr) ^ (1ull << bit_in_word);
    write64(addr, value);
    return value;
}

std::vector<uint16_t>
MemoryBackend::mismatchedWords(Pfn pfn, uint64_t expected_fill) const
{
    std::vector<uint16_t> mismatches;
    const auto it = pages.find(pfn);
    if (it == pages.end()) {
        // Untouched memory reads as zero everywhere.
        if (expected_fill != 0) {
            mismatches.resize(kPageSize / 8);
            for (uint16_t i = 0; i < kPageSize / 8; ++i)
                mismatches[i] = i;
        }
        return mismatches;
    }
    const PageData &page = it->second;
    if (page.fill == expected_fill) {
        // Only overridden words can mismatch.
        for (const auto &[idx, value] : page.overrides) {
            if (value != expected_fill)
                mismatches.push_back(idx);
        }
    } else {
        // Every word mismatches unless overridden back to expected.
        auto ov = page.overrides.begin();
        for (uint16_t i = 0; i < kPageSize / 8; ++i) {
            while (ov != page.overrides.end() && ov->first < i)
                ++ov;
            const uint64_t value =
                (ov != page.overrides.end() && ov->first == i)
                    ? ov->second : page.fill;
            if (value != expected_fill)
                mismatches.push_back(i);
        }
    }
    return mismatches;
}

} // namespace hh::dram
