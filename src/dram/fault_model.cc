#include "fault_model.h"

#include <bit>

#include "base/log.h"
#include "base/rng.h"

namespace hh::dram {

FaultModel::FaultModel(FaultModelConfig config, uint64_t seed,
                       uint64_t row_bytes_per_bank)
    : cfg(config), seed(seed), rowBytes(row_bytes_per_bank)
{
    HH_ASSERT(cfg.weakCellsPerRow >= 0.0);
    HH_ASSERT(cfg.minThreshold > 0);
    HH_ASSERT(cfg.maxThreshold >= cfg.minThreshold);
}

uint64_t
FaultModel::rowSeed(BankId bank, RowId row) const
{
    // (bank, row) pairs are a highly structured input set; a single
    // finalizer round leaves their outputs visibly non-uniform in the
    // top bits. Spread the inputs with odd multipliers and burn one
    // SplitMix64 round so the stream the callers draw from starts
    // decorrelated.
    uint64_t s = seed ^ (row * 0x9e3779b97f4a7c15ull)
        ^ ((static_cast<uint64_t>(bank) + 1) * 0xc2b2ae3d27d4eb4full);
    (void)base::splitMix64(s);
    return s;
}

bool
FaultModel::rowIsWeak(BankId bank, RowId row) const
{
    // The weak-cell count is sampled from the same stream the full
    // generator uses, so the two queries always agree.
    uint64_t stream = rowSeed(bank, row);
    const double u =
        static_cast<double>(base::splitMix64(stream) >> 11) * 0x1.0p-53;
    return u < cfg.weakCellsPerRow;
}

std::vector<WeakCell>
FaultModel::weakCellsInRow(BankId bank, RowId row) const
{
    std::vector<WeakCell> cells;
    weakCellsInRow(bank, row, cells);
    return cells;
}

void
FaultModel::weakCellsInRow(BankId bank, RowId row,
                           std::vector<WeakCell> &out) const
{
    // Approximate a Poisson(lambda) count for small lambda: one cell
    // with probability lambda, a second with probability lambda/2
    // (matching the first two terms of the distribution closely enough
    // for lambda << 1, which is the physical regime).
    uint64_t stream = rowSeed(bank, row);
    auto next_u = [&stream]() {
        return static_cast<double>(base::splitMix64(stream) >> 11)
            * 0x1.0p-53;
    };
    auto next_raw = [&stream]() { return base::splitMix64(stream); };

    if (next_u() >= cfg.weakCellsPerRow)
        return;
    unsigned count = 1;
    if (next_u() < cfg.weakCellsPerRow / 2.0)
        ++count;

    out.reserve(out.size() + count);
    for (unsigned i = 0; i < count; ++i) {
        WeakCell cell;
        cell.byteInRow = static_cast<uint32_t>(next_raw() % rowBytes);
        cell.bitInByte = static_cast<uint8_t>(next_raw() % 8);
        cell.direction = next_u() < cfg.oneToZeroFraction
            ? FlipDirection::OneToZero : FlipDirection::ZeroToOne;
        const double span =
            static_cast<double>(cfg.maxThreshold - cfg.minThreshold);
        cell.threshold = cfg.minThreshold
            + static_cast<uint32_t>(next_u() * span);
        cell.flipProbability = next_u() < cfg.stableFraction
            ? 1.0 : cfg.unstableFlipProbability;
        out.push_back(cell);
    }
}

WeakRowIndex::WeakRowIndex(const FaultModel &model, unsigned bank_count,
                           uint64_t rows_per_bank)
    : banks(bank_count), rowsPerBankCount(rows_per_bank)
{
    HH_ASSERT(bank_count > 0 && rows_per_bank > 0);
    bits.assign((bank_count * rows_per_bank + 63) / 64, 0);
    for (unsigned bank = 0; bank < bank_count; ++bank) {
        for (uint64_t row = 0; row < rows_per_bank; ++row) {
            if (!model.rowIsWeak(static_cast<BankId>(bank), row))
                continue;
            const uint64_t idx = bank * rows_per_bank + row;
            bits[idx >> 6] |= 1ull << (idx & 63);
        }
    }
}

uint64_t
WeakRowIndex::weakRowCount() const
{
    uint64_t count = 0;
    for (uint64_t word : bits)
        count += static_cast<uint64_t>(std::popcount(word));
    return count;
}

} // namespace hh::dram
