/**
 * @file
 * DramSystem: the simulated DIMM behind the host's physical memory.
 *
 * Combines the address mapping, the sparse data backend, the Rowhammer
 * fault model, optional TRR/ECC mitigations, per-bank open-row timing
 * (the side channel DRAMDig uses) and refresh-window bookkeeping into the
 * single object the rest of the stack reads and writes physical memory
 * through.
 */

#ifndef HYPERHAMMER_DRAM_DRAM_SYSTEM_H
#define HYPERHAMMER_DRAM_DRAM_SYSTEM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/sim_clock.h"
#include "base/types.h"
#include "fault/fault.h"
#include "dram/address_mapping.h"
#include "dram/ecc.h"
#include "dram/fault_model.h"
#include "dram/memory_backend.h"
#include "dram/trr.h"

namespace hh::dram {

/** DRAM latency/time parameters (nanoseconds of virtual time). */
struct TimingConfig
{
    /** Access hitting the open row in its bank. */
    base::SimTime rowHitLatency = 45;
    /** Access to an idle bank (row activation needed). */
    base::SimTime rowMissLatency = 90;
    /** Access conflicting with a different open row (precharge+act). */
    base::SimTime rowConflictLatency = 135;
    /** Activate-to-activate time (tRC); cost of one hammer access. */
    base::SimTime rowCycle = 47;
    /** Refresh window (tREFW); disturbance counters reset at this rate. */
    base::SimTime refreshWindow = 64 * base::kMillisecond;
    /**
     * RowPress time constant: the per-activation open time that
     * doubles the effective disturbance. Luo et al. measure
     * orders-of-magnitude AC_min reductions at tens of microseconds
     * of open time, i.e. the damage doubles every few tens of
     * nanoseconds the row stays open.
     */
    base::SimTime rowPressHalfLife = 20;
    /** Modeled cost of memset-style filling one 4 KB page. */
    base::SimTime pageFillCost = 500;
    /**
     * Modeled cost of scanning one 4 KB page for mismatches
     * (~40 GB/s streaming reads). Dominates profiling time, which the
     * paper reports as 72 h (S1) / 48 h (S2) for 12 GB x 786 k
     * combination-scans; the per-system presets calibrate this.
     */
    base::SimTime pageScanCost = 95;
};

/** Full configuration of a simulated DIMM + controller. */
struct DramConfig
{
    /** Physical memory size in bytes. */
    uint64_t totalBytes = 16_GiB;
    /** PA -> (bank, row) function. */
    AddressMapping mapping = AddressMapping::i3_10100();
    FaultModelConfig fault;
    TimingConfig timing;
    TrrConfig trr;
    EccConfig ecc;
    /** Root of all fault-model and mitigation randomness. */
    uint64_t seed = 1;
};

/** One observed Rowhammer bit flip. */
struct FlipEvent
{
    /** 8-byte-aligned address of the affected word. */
    HostPhysAddr wordAddr;
    /** Bit index within the 64-bit word. */
    unsigned bitInWord;
    FlipDirection direction;
    BankId bank;
    RowId row;

    /** Bit address: absolute bit index in physical memory. */
    uint64_t
    bitAddr() const
    {
        return wordAddr.value() * 8 + bitInWord;
    }
};

/**
 * The simulated memory device. All reads/writes of physical memory by
 * the host kernel, hypervisor and (indirectly) guests go through here.
 */
class DramSystem
{
  private:
    /** Restricts the fork constructor to forkFrom(). */
    struct ForkTag
    {};

  public:
    DramSystem(DramConfig config, base::SimClock &clock);

    /**
     * Copy-on-write fork constructor (reachable only through
     * forkFrom(): ForkTag is private). Shares the immutable fault
     * oracle and weak-row index, forks the data backend page-wise,
     * and copies the open-row registers, counters and rng cursor.
     * The fork starts with no fault injector installed.
     */
    DramSystem(ForkTag, const DramSystem &src, base::SimClock &clock);

    /** Deep copies are banned: clone via forkFrom(). */
    DramSystem(const DramSystem &) = delete;
    DramSystem &operator=(const DramSystem &) = delete;

    /**
     * A copy-on-write clone of @p src ticking @p clock. O(overlay
     * pages); call src.backend().freeze() first to make it O(1).
     */
    static std::unique_ptr<DramSystem>
    forkFrom(const DramSystem &src, base::SimClock &clock)
    {
        return std::make_unique<DramSystem>(ForkTag{}, src, clock);
    }

    /** Size of physical memory in bytes. */
    uint64_t size() const { return cfg.totalBytes; }

    /** Number of 4 KB frames. */
    uint64_t pageCount() const { return cfg.totalBytes / kPageSize; }

    /** The configured address mapping. */
    const AddressMapping &mapping() const { return cfg.mapping; }

    /** The fault oracle (tests peek at it; attack code must not). */
    const FaultModel &faultModel() const { return *faults; }

    /** The precomputed weak-row bitset (shared across forks). */
    const WeakRowIndex &weakRowIndex() const { return *weakRows; }

    /** The data store (host-kernel code reads/writes through this). */
    MemoryBackend &backend() { return data; }
    const MemoryBackend &backend() const { return data; }

    const DramConfig &config() const { return cfg; }

    /** @name Functional access (charges fixed latency) */
    /// @{
    uint64_t read64(HostPhysAddr addr);
    void write64(HostPhysAddr addr, uint64_t value);
    void fillPage(Pfn pfn, uint64_t pattern);
    /// @}

    /**
     * Timed access: models the row-buffer state machine and returns the
     * latency of this particular access. Alternating accesses to two
     * addresses in the same bank but different rows see the conflict
     * latency -- the signal DRAMDig thresholds on.
     */
    base::SimTime timedAccess(HostPhysAddr addr);

    /**
     * Hammer a set of aggressor rows.
     *
     * Each aggressor address identifies its (bank, row); duplicates are
     * merged. All aggressors are activated round-robin @p rounds times.
     * Disturbance reaches rows at distance one (and optionally two) in
     * the same bank; weak cells over threshold flip if their direction
     * matches the stored data, subject to TRR and ECC.
     *
     * Virtual time is charged for every activation; disturbance within
     * one refresh window is capped by what fits in the window, and
     * longer bursts give unstable cells multiple windows of chances.
     *
     * @return flips actually applied to memory
     */
    std::vector<FlipEvent>
    hammer(const std::vector<HostPhysAddr> &aggressors, uint64_t rounds)
    {
        return hammerImpl(aggressors, rounds, 1.0);
    }

    /**
     * RowPress variant (Luo et al., ISCA'23; cited in the paper's
     * introduction): keeping an aggressor row *open* for a long time
     * per activation amplifies the disturbance, so far fewer
     * activations suffice. Modeled as an amplification factor of
     * 1 + open_time / rowPressHalfLife applied to the effective
     * activation count before the threshold check.
     */
    std::vector<FlipEvent>
    press(const std::vector<HostPhysAddr> &aggressors, uint64_t rounds,
          base::SimTime open_time_per_activation);

    /**
     * Scan a 4 KB frame against an expected uniform fill. Returns the
     * word indices (0..511) whose content differs. O(overrides), not
     * O(page); charges pageScanCost.
     */
    std::vector<uint16_t> scanPage(Pfn pfn, uint64_t expected_fill);

    /** Total flips this DramSystem has ever applied. */
    uint64_t totalFlips() const { return flipCount; }

    /** Total ECC-corrected (suppressed) flips. */
    uint64_t eccCorrectedFlips() const { return eccCorrected; }

    /** Total TRR-suppressed aggressor activations (bursts). */
    uint64_t trrSuppressions() const { return trrSuppressed; }

    /**
     * Install (or clear) the host's fault injector. Not owned; must
     * outlive this DramSystem. Null means the fault-free fast path.
     */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        faultInjector = injector;
    }

    /**
     * Serialize the mutable device state: memory contents, open-row
     * registers, flip/ECC/TRR counters and the controller RNG cursor.
     * The fault model itself is pure (seed-derived) and travels via the
     * config fingerprint, not the payload.
     */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore state written by saveState() on an identically configured device. */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    DramConfig cfg;
    base::SimClock &clock;
    MemoryBackend data;
    /**
     * Immutable, trial-invariant oracle state: both are pure functions
     * of (dram seed, config) and are shared -- not copied -- by every
     * fork of this device.
     */
    // hh-lint: allow(snapshot-field-coverage) -- seed-derived immutable oracle, rebuilt at construction
    std::shared_ptr<const FaultModel> faults;
    // hh-lint: allow(snapshot-field-coverage) -- seed-derived immutable oracle, rebuilt at construction
    std::shared_ptr<const WeakRowIndex> weakRows;
    // hh-lint: allow(snapshot-field-coverage) -- stateless apart from config; suppression counters serialize at DramSystem level
    TrrModel trr;
    // hh-lint: allow(snapshot-field-coverage) -- stateless apart from config; correction counters serialize at DramSystem level
    EccModel ecc;
    base::Rng rng;
    fault::FaultInjector *faultInjector = nullptr;

    /** Reused weak-cell arena for the hammer loop; never serialized. */
    // hh-lint: allow(snapshot-field-coverage) -- scratch arena, contents dead between hammer calls
    std::vector<WeakCell> cellScratch;

    /** Per-bank open row (for timedAccess); kInvalidRow when closed. */
    static constexpr RowId kNoOpenRow = ~0ull;
    std::vector<RowId> openRows;

    uint64_t flipCount = 0;
    uint64_t eccCorrected = 0;
    uint64_t trrSuppressed = 0;

    /** Highest valid row index (bounded by memory size and row bits). */
    RowId maxRowId() const;

    /** Shared hammer/press machinery; amplification >= 1. */
    std::vector<FlipEvent>
    hammerImpl(const std::vector<HostPhysAddr> &aggressors,
               uint64_t rounds, double amplification,
               base::SimTime extra_time_per_activation = 0);

    /** Collect candidate flips for one victim row under disturbance. */
    void evaluateVictimRow(BankId bank, RowId row, uint64_t disturbance,
                           unsigned windows,
                           std::vector<FlipEvent> &candidates);

    /** Translate a weak cell of (bank, row) to its physical address. */
    HostPhysAddr cellAddress(BankId bank, RowId row,
                             const WeakCell &cell) const;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_DRAM_SYSTEM_H
