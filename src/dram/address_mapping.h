/**
 * @file
 * DRAM address mapping: physical address -> (bank, row, column).
 *
 * Modern Intel memory controllers compute the bank index as XOR folds of
 * physical-address bits and take the row index from a contiguous bit
 * range. Section 5.1 of the paper reports the reverse-engineered
 * functions for the two evaluation machines:
 *
 *   Core i3-10100: bank bits (17,21) (16,20) (15,19) (14,18) (6,13),
 *   Xeon E3-2124:  bank bits (17,20) (16,19) (15,18) (7,14)
 *                  (8,9,12,13,18,19),
 *   both: row = physical address bits 18..33.
 *
 * Both presets are built in; arbitrary XOR-mask functions can be
 * configured for other systems or for the DRAMDig recovery tests.
 */

#ifndef HYPERHAMMER_DRAM_ADDRESS_MAPPING_H
#define HYPERHAMMER_DRAM_ADDRESS_MAPPING_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace hh::dram {

/** Bank index within the (single-channel, single-rank) simulated DIMM. */
using BankId = uint32_t;
/** Row index within a bank. */
using RowId = uint64_t;

/**
 * XOR-fold based DRAM address mapping.
 *
 * Each bank bit i is the XOR parity of the physical-address bits selected
 * by bankMasks[i]. The row index is the contiguous bit range
 * [rowLoBit, rowHiBit]. Everything below the row bits that is not used
 * for bank selection forms the column.
 */
class AddressMapping
{
  public:
    /**
     * @param bank_masks one bit-mask per bank-index bit; bank bit i is
     *                   the parity of addr & bank_masks[i]
     * @param row_lo_bit lowest physical-address bit of the row index
     * @param row_hi_bit highest physical-address bit of the row index
     */
    AddressMapping(std::vector<uint64_t> bank_masks, unsigned row_lo_bit,
                   unsigned row_hi_bit);

    /** Mapping of the Intel Core i3-10100 (paper system S1). */
    static AddressMapping i3_10100();

    /** Mapping of the Intel Xeon E3-2124 (paper system S2). */
    static AddressMapping xeonE3_2124();

    /**
     * A simple textbook mapping (bank = bits [6..6+n), no XOR) used by
     * unit tests and by the DRAMDig recovery tests.
     */
    static AddressMapping linear(unsigned bank_bits);

    /** Number of bank-index bits. */
    unsigned bankBits() const { return bankMaskList.size(); }

    /** Number of banks (2^bankBits). */
    uint32_t bankCount() const { return 1u << bankBits(); }

    /** Bank index of a physical address. */
    BankId bankOf(HostPhysAddr addr) const;

    /** Row index of a physical address. */
    RowId
    rowOf(HostPhysAddr addr) const
    {
        return (addr.value() >> rowLo) & rowMask;
    }

    /** Lowest physical-address bit of the row index. */
    unsigned rowLoBit() const { return rowLo; }
    /** Highest physical-address bit of the row index. */
    unsigned rowHiBit() const { return rowHi; }

    /**
     * Bytes of one row *stripe*: the span of addresses sharing a row
     * index (2^rowLoBit). With row bits 18..33 this is 256 KB, spread
     * over all banks (Section 5.1).
     */
    uint64_t rowStripeBytes() const { return 1ull << rowLo; }

    /** Bytes of one row within a single bank (stripe / banks). */
    uint64_t
    rowBytesPerBank() const
    {
        return rowStripeBytes() / bankCount();
    }

    /**
     * True when every address bit used by the bank function is below
     * @p preserved_bits or inside the row range -- i.e. whether knowing
     * the low @p preserved_bits bits (THP) plus relative row positions
     * suffices to compute bank indices (Section 4.1).
     */
    bool bankBitsPreservedBy(unsigned preserved_bits) const;

    /** The raw bank masks. */
    const std::vector<uint64_t> &bankMasks() const { return bankMaskList; }

    /**
     * Bank-class of an intra-stripe offset: the parity contribution of
     * address bits below rowLoBit. For a fixed row r the set of offsets
     * hitting bank b is { o : offsetClass(o) == b ^ rowClass(r) }.
     */
    BankId offsetClass(uint64_t offset) const;

    /** Parity contribution of the row bits (and above) to the bank. */
    BankId rowClass(RowId row) const;

    /**
     * Interleave granularity: the lowest address bit any bank mask uses.
     * Cells below this granule always share a bank.
     */
    unsigned interleaveShift() const { return interleave; }

    /**
     * All intra-stripe offsets (in interleave-granules) belonging to
     * offset class @p cls, in increasing order. Precomputed; used to
     * enumerate the physical addresses of one (bank, row).
     */
    const std::vector<uint32_t> &classOffsets(BankId cls) const;

    /** Equality of the mapping function (used by DRAMDig tests). */
    bool operator==(const AddressMapping &other) const;

    /** Short human-readable description. */
    std::string describe() const;

  private:
    std::vector<uint64_t> bankMaskList;
    unsigned rowLo;
    unsigned rowHi;
    uint64_t rowMask;
    unsigned interleave;
    /** classTable[cls] = sorted granule offsets with offsetClass == cls. */
    std::vector<std::vector<uint32_t>> classTable;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_ADDRESS_MAPPING_H
