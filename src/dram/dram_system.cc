#include "dram_system.h"

#include <algorithm>
#include <cmath>

#include "base/bitops.h"
#include "base/log.h"

namespace hh::dram {

DramSystem::DramSystem(DramConfig config, base::SimClock &clock)
    : cfg(std::move(config)),
      clock(clock),
      data(cfg.totalBytes),
      faults(std::make_shared<const FaultModel>(
          cfg.fault, base::mix64(cfg.seed, 0xd1a),
          cfg.mapping.rowBytesPerBank())),
      weakRows(std::make_shared<const WeakRowIndex>(
          *faults, cfg.mapping.bankCount(), maxRowId() + 1)),
      trr(cfg.trr),
      ecc(cfg.ecc),
      rng(base::mix64(cfg.seed, 0x5eed)),
      openRows(cfg.mapping.bankCount(), kNoOpenRow)
{
    HH_ASSERT(base::isPowerOfTwo(cfg.totalBytes));
    HH_ASSERT(cfg.totalBytes >= kHugePageSize);
}

DramSystem::DramSystem(ForkTag, const DramSystem &src,
                       base::SimClock &clock)
    : cfg(src.cfg),
      clock(clock),
      data(src.data.fork()),
      faults(src.faults),
      weakRows(src.weakRows),
      trr(src.trr),
      ecc(src.ecc),
      rng(src.rng),
      openRows(src.openRows),
      flipCount(src.flipCount),
      eccCorrected(src.eccCorrected),
      trrSuppressed(src.trrSuppressed)
{}

RowId
DramSystem::maxRowId() const
{
    return std::min<uint64_t>(
        (cfg.totalBytes - 1) >> cfg.mapping.rowLoBit(),
        (1ull << (cfg.mapping.rowHiBit() - cfg.mapping.rowLoBit() + 1))
            - 1);
}

uint64_t
DramSystem::read64(HostPhysAddr addr)
{
    clock.advance(cfg.timing.rowHitLatency);
    uint64_t value = data.read64(addr);
    // Transient read corruption: the returned word is wrong, the
    // stored value is untouched (a re-read sees the true data).
    if (const fault::FaultEntry *f =
            HH_FAULT_POINT(faultInjector, fault::FaultSite::DramRead)) {
        if (f->kind == fault::FaultKind::ReadCorruption)
            value ^= 1ull << (f->param % 64);
    }
    return value;
}

void
DramSystem::write64(HostPhysAddr addr, uint64_t value)
{
    clock.advance(cfg.timing.rowHitLatency);
    data.write64(addr, value);
}

void
DramSystem::fillPage(Pfn pfn, uint64_t pattern)
{
    clock.advance(cfg.timing.pageFillCost);
    data.fillPage(pfn, pattern);
}

base::SimTime
DramSystem::timedAccess(HostPhysAddr addr)
{
    HH_ASSERT(data.contains(addr));
    const BankId bank = cfg.mapping.bankOf(addr);
    const RowId row = cfg.mapping.rowOf(addr);

    base::SimTime latency;
    if (openRows[bank] == row)
        latency = cfg.timing.rowHitLatency;
    else if (openRows[bank] == kNoOpenRow)
        latency = cfg.timing.rowMissLatency;
    else
        latency = cfg.timing.rowConflictLatency;
    openRows[bank] = row;
    clock.advance(latency);
    return latency;
}

HostPhysAddr
DramSystem::cellAddress(BankId bank, RowId row, const WeakCell &cell) const
{
    const AddressMapping &map = cfg.mapping;
    const BankId cls = bank ^ map.rowClass(row);
    const auto &offsets = map.classOffsets(cls);
    const uint64_t granule = 1ull << map.interleaveShift();
    const uint64_t granule_idx = cell.byteInRow / granule;
    const uint64_t byte_in_granule = cell.byteInRow % granule;
    HH_ASSERT(granule_idx < offsets.size());
    const uint64_t addr = (static_cast<uint64_t>(row) << map.rowLoBit())
        | (static_cast<uint64_t>(offsets[granule_idx])
           << map.interleaveShift())
        | byte_in_granule;
    return HostPhysAddr(addr);
}

void
DramSystem::evaluateVictimRow(BankId bank, RowId row, uint64_t disturbance,
                              unsigned windows,
                              std::vector<FlipEvent> &candidates)
{
    // Bit probe first: the precomputed index answers the common "row
    // is not weak" case without hashing, and always agrees with the
    // oracle (it was built from it).
    if (!weakRows->isWeak(bank, row))
        return;
    cellScratch.clear();
    faults->weakCellsInRow(bank, row, cellScratch);
    for (const WeakCell &cell : cellScratch) {
        if (disturbance < cell.threshold)
            continue;
        // Each refresh window is an independent chance for the cell.
        const double p_once = cell.flipProbability;
        double p_total = p_once;
        if (windows > 1 && p_once < 1.0) {
            p_total = 1.0
                - std::pow(1.0 - p_once, static_cast<double>(windows));
        }
        if (!rng.chance(p_total))
            continue;

        const HostPhysAddr cell_addr = cellAddress(bank, row, cell);
        if (!data.contains(cell_addr))
            continue;
        const HostPhysAddr word_addr(base::alignDown(cell_addr.value(), 8));
        const unsigned bit_in_word = cell.bitInWord();
        const uint64_t word = data.read64(word_addr);
        const bool stored_one = base::bit(word, bit_in_word) != 0;
        // Unidirectional: the cell only flips if the stored value is
        // the one it discharges from (1->0) or charges to (0->1).
        if (cell.direction == FlipDirection::OneToZero && !stored_one)
            continue;
        if (cell.direction == FlipDirection::ZeroToOne && stored_one)
            continue;
        candidates.push_back(
            {word_addr, bit_in_word, cell.direction, bank, row});
    }
}

std::vector<FlipEvent>
DramSystem::press(const std::vector<HostPhysAddr> &aggressors,
                  uint64_t rounds,
                  base::SimTime open_time_per_activation)
{
    const double amplification = 1.0
        + static_cast<double>(open_time_per_activation)
            / static_cast<double>(cfg.timing.rowPressHalfLife);
    return hammerImpl(aggressors, rounds, amplification,
                      open_time_per_activation);
}

std::vector<FlipEvent>
DramSystem::hammerImpl(const std::vector<HostPhysAddr> &aggressors,
                       uint64_t rounds, double amplification,
                       base::SimTime extra_time_per_activation)
{
    std::vector<FlipEvent> applied;
    if (aggressors.empty() || rounds == 0)
        return applied;

    // Deduplicate aggressors by (bank, row). A sorted flat vector
    // replaces the old per-call std::map: identical iteration order
    // (so the rng draw sequence is unchanged), no node allocations.
    std::vector<std::pair<BankId, RowId>> agg_rows;
    agg_rows.reserve(aggressors.size());
    for (HostPhysAddr addr : aggressors) {
        HH_ASSERT(data.contains(addr));
        agg_rows.emplace_back(cfg.mapping.bankOf(addr),
                              cfg.mapping.rowOf(addr));
    }
    std::sort(agg_rows.begin(), agg_rows.end());
    agg_rows.erase(std::unique(agg_rows.begin(), agg_rows.end()),
                   agg_rows.end());
    // Count aggressors per bank (input to the TRR sampler): the sort
    // groups equal banks into runs.
    std::vector<unsigned> agg_bank_count(agg_rows.size());
    for (size_t i = 0; i < agg_rows.size();) {
        size_t j = i;
        while (j < agg_rows.size()
               && agg_rows[j].first == agg_rows[i].first)
            ++j;
        for (size_t k = i; k < j; ++k)
            agg_bank_count[k] = static_cast<unsigned>(j - i);
        i = j;
    }

    // Charge virtual time for every activation (RowPress keeps the
    // row open longer per activation).
    const base::SimTime per_activation =
        cfg.timing.rowCycle + extra_time_per_activation;
    const uint64_t activations = rounds * agg_rows.size();
    clock.advance(activations * per_activation);

    // A refresh window fits only so many activations of this pattern;
    // disturbance per window is capped, and longer bursts span several
    // windows (each an independent chance for unstable cells).
    const uint64_t window_cap = std::max<uint64_t>(
        1, cfg.timing.refreshWindow
               / (per_activation * agg_rows.size()));
    uint64_t disturbance = static_cast<uint64_t>(
        static_cast<double>(std::min(rounds, window_cap))
        * amplification);
    const unsigned windows = static_cast<unsigned>(std::min<uint64_t>(
        64, (rounds + window_cap - 1) / window_cap));

    // Refresh jitter: an early refresh truncates this burst, shaving
    // param percent off the accumulated disturbance.
    if (const fault::FaultEntry *f =
            HH_FAULT_POINT(faultInjector, fault::FaultSite::DramRefresh)) {
        if (f->kind == fault::FaultKind::RefreshJitter) {
            const uint64_t pct = std::min<uint64_t>(f->param, 100);
            disturbance -= disturbance * pct / 100;
        }
    }

    // Accumulate disturbance on neighbouring victim rows.
    const RowId max_row = maxRowId();
    std::vector<std::pair<std::pair<BankId, RowId>, uint64_t>> victims;
    victims.reserve(agg_rows.size() * 2);
    for (size_t agg_idx = 0; agg_idx < agg_rows.size(); ++agg_idx) {
        const auto [bank, row] = agg_rows[agg_idx];
        // Spurious TRR: the sampler catches an aggressor it would
        // normally miss. Consulted per aggressor row, before the
        // modeled sampler, so the rng stream is untouched on fire.
        if (const fault::FaultEntry *f = HH_FAULT_POINT(
                faultInjector, fault::FaultSite::DramTrr)) {
            if (f->kind == fault::FaultKind::SpuriousTrr) {
                ++trrSuppressed;
                continue;
            }
        }
        if (trr.suppresses(agg_bank_count[agg_idx], rng.uniform())) {
            ++trrSuppressed;
            continue;
        }
        auto add = [&, bank = bank, row = row](int64_t delta,
                                               double factor) {
            const int64_t v = static_cast<int64_t>(row) + delta;
            if (v < 0 || v > static_cast<int64_t>(max_row))
                return;
            const auto amount =
                static_cast<uint64_t>(disturbance * factor);
            if (amount)
                victims.push_back(
                    {{bank, static_cast<RowId>(v)}, amount});
        };
        add(-1, 1.0);
        add(+1, 1.0);
        if (cfg.fault.distanceTwoFactor > 0.0) {
            add(-2, cfg.fault.distanceTwoFactor);
            add(+2, cfg.fault.distanceTwoFactor);
        }
    }

    // Merge-sum duplicate victim rows. Sorting restores the exact
    // (bank, row) visit order the old std::map produced, which the
    // per-victim rng draws depend on.
    std::sort(victims.begin(), victims.end());
    size_t merged = 0;
    for (size_t i = 0; i < victims.size();) {
        uint64_t sum = 0;
        size_t j = i;
        while (j < victims.size()
               && victims[j].first == victims[i].first)
            sum += victims[j++].second;
        victims[merged++] = {victims[i].first, sum};
        i = j;
    }
    victims.resize(merged);

    // Activated rows are constantly refreshed; they cannot be victims.
    std::vector<FlipEvent> candidates;
    for (const auto &[key, dist] : victims) {
        if (std::binary_search(agg_rows.begin(), agg_rows.end(), key))
            continue;
        evaluateVictimRow(key.first, key.second, dist, windows,
                          candidates);
    }

    // ECC: group candidate flips per 64-bit word.
    std::vector<uint64_t> flip_words;
    flip_words.reserve(candidates.size());
    for (const FlipEvent &event : candidates)
        flip_words.push_back(event.wordAddr.value());
    std::sort(flip_words.begin(), flip_words.end());
    auto flips_in_word = [&flip_words](uint64_t word) {
        const auto range = std::equal_range(flip_words.begin(),
                                            flip_words.end(), word);
        return static_cast<unsigned>(range.second - range.first);
    };

    for (const FlipEvent &event : candidates) {
        bool visible =
            ecc.flipsVisible(flips_in_word(event.wordAddr.value()));
        // ECC miscorrection: the controller gets it backwards -- a
        // correctable flip slips through, or a visible one is eaten.
        if (const fault::FaultEntry *f = HH_FAULT_POINT(
                faultInjector, fault::FaultSite::DramEcc)) {
            if (f->kind == fault::FaultKind::EccMiscorrect)
                visible = !visible;
        }
        if (!visible) {
            ++eccCorrected;
            continue;
        }
        data.flipBit(event.wordAddr, event.bitInWord);
        ++flipCount;
        applied.push_back(event);
    }
    return applied;
}

std::vector<uint16_t>
DramSystem::scanPage(Pfn pfn, uint64_t expected_fill)
{
    clock.advance(cfg.timing.pageScanCost);
    return data.mismatchedWords(pfn, expected_fill);
}

void
DramSystem::saveState(base::ArchiveWriter &w) const
{
    data.saveState(w);
    w.u64vec(openRows);
    w.u64(flipCount);
    w.u64(eccCorrected);
    w.u64(trrSuppressed);
    w.rngState(rng.saveState());
}

base::Status
DramSystem::loadState(base::ArchiveReader &r)
{
    if (base::Status s = data.loadState(r); !s.ok())
        return s;
    const std::vector<RowId> rows = r.u64vec();
    if (r.ok() && rows.size() != openRows.size())
        r.fail();
    const uint64_t flips = r.u64();
    const uint64_t ecc_corrected = r.u64();
    const uint64_t trr_suppressed = r.u64();
    const std::array<uint64_t, 4> rng_state = r.rngState();
    if (!r.ok())
        return r.status();
    openRows = rows;
    flipCount = flips;
    eccCorrected = ecc_corrected;
    trrSuppressed = trr_suppressed;
    rng.loadState(rng_state);
    return base::Status::success();
}

} // namespace hh::dram
