/**
 * @file
 * Rowhammer fault model: which cells are weak, and when do they flip.
 *
 * Real DIMMs have a sparse population of Rowhammer-weak cells whose
 * behaviour is fixed by manufacturing variation: each weak cell flips in
 * one direction only (1->0 or 0->1), needs a minimum number of adjacent-
 * row activations within a refresh window, and is either *stable*
 * (reproducible) or flips only sometimes (Table 1 distinguishes these).
 *
 * The simulator reproduces this with a deterministic, seed-derived map:
 * the weak cells of a (bank, row) pair are a pure function of
 * (seed, bank, row), generated lazily by hashing, so the model needs no
 * storage proportional to memory size and is identical no matter in what
 * order rows are hammered.
 */

#ifndef HYPERHAMMER_DRAM_FAULT_MODEL_H
#define HYPERHAMMER_DRAM_FAULT_MODEL_H

#include <cstdint>
#include <vector>

#include "dram/address_mapping.h"

namespace hh::dram {

/** Direction of a unidirectional Rowhammer flip. */
enum class FlipDirection : uint8_t
{
    OneToZero, ///< cell discharges: stored 1 reads back 0
    ZeroToOne, ///< cell charges: stored 0 reads back 1
};

/** One Rowhammer-weak DRAM cell. */
struct WeakCell
{
    /** Byte position of the cell within its row's per-bank data. */
    uint32_t byteInRow;
    /** Bit position within the byte (0..7). */
    uint8_t bitInByte;
    /** Only this direction of flip can occur. */
    FlipDirection direction;
    /**
     * Adjacent-row activations within one refresh window needed to
     * disturb the cell.
     */
    uint32_t threshold;
    /**
     * Probability that the cell actually flips once the threshold is
     * reached. Stable cells have 1.0.
     */
    double flipProbability;

    /** Bit index within the 64-bit word containing the cell. */
    unsigned
    bitInWord() const
    {
        return (byteInRow % 8) * 8 + bitInByte;
    }

    /** True when the cell flips on every over-threshold hammer. */
    bool stable() const { return flipProbability >= 1.0; }
};

/** Tunable parameters of the fault model. */
struct FaultModelConfig
{
    /**
     * Expected number of weak cells per (bank, row). The paper's DIMMs
     * show a few hundred flips over 12 GB of profiled memory (Table 1);
     * with 32 banks x 64 K rows that corresponds to roughly 1e-3..1e-2
     * weak cells per row once profiling reach is accounted for.
     */
    double weakCellsPerRow = 0.004;
    /** Fraction of weak cells that flip 1 -> 0 (rest flip 0 -> 1). */
    double oneToZeroFraction = 0.5;
    /** Fraction of weak cells that are stable (flipProbability = 1). */
    double stableFraction = 0.6;
    /** Flip probability of non-stable cells. */
    double unstableFlipProbability = 0.35;
    /** Minimum activation threshold of any weak cell. */
    uint32_t minThreshold = 40'000;
    /** Maximum activation threshold of any weak cell. */
    uint32_t maxThreshold = 220'000;
    /**
     * Disturbance attenuation for rows two away from an aggressor
     * (Half-Double style far-aggressor coupling); 0 disables it.
     */
    double distanceTwoFactor = 0.0;
};

/**
 * Deterministic weak-cell oracle.
 *
 * All queries are pure functions of (seed, bank, row); the class carries
 * no mutable state and is freely shareable.
 */
class FaultModel
{
  public:
    FaultModel(FaultModelConfig config, uint64_t seed,
               uint64_t row_bytes_per_bank);

    /** Weak cells of one (bank, row); typically empty. */
    std::vector<WeakCell> weakCellsInRow(BankId bank, RowId row) const;

    /** True when (bank, row) hosts at least one weak cell. */
    bool rowIsWeak(BankId bank, RowId row) const;

    /** The configuration in force. */
    const FaultModelConfig &config() const { return cfg; }

  private:
    /** Stable per-row hash stream root. */
    uint64_t rowSeed(BankId bank, RowId row) const;

    FaultModelConfig cfg;
    uint64_t seed;
    uint64_t rowBytes;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_FAULT_MODEL_H
