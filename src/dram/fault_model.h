/**
 * @file
 * Rowhammer fault model: which cells are weak, and when do they flip.
 *
 * Real DIMMs have a sparse population of Rowhammer-weak cells whose
 * behaviour is fixed by manufacturing variation: each weak cell flips in
 * one direction only (1->0 or 0->1), needs a minimum number of adjacent-
 * row activations within a refresh window, and is either *stable*
 * (reproducible) or flips only sometimes (Table 1 distinguishes these).
 *
 * The simulator reproduces this with a deterministic, seed-derived map:
 * the weak cells of a (bank, row) pair are a pure function of
 * (seed, bank, row), generated lazily by hashing, so the model needs no
 * storage proportional to memory size and is identical no matter in what
 * order rows are hammered.
 */

#ifndef HYPERHAMMER_DRAM_FAULT_MODEL_H
#define HYPERHAMMER_DRAM_FAULT_MODEL_H

#include <cstdint>
#include <vector>

#include "dram/address_mapping.h"

namespace hh::dram {

/** Direction of a unidirectional Rowhammer flip. */
enum class FlipDirection : uint8_t
{
    OneToZero, ///< cell discharges: stored 1 reads back 0
    ZeroToOne, ///< cell charges: stored 0 reads back 1
};

/** One Rowhammer-weak DRAM cell. */
struct WeakCell
{
    /** Byte position of the cell within its row's per-bank data. */
    uint32_t byteInRow;
    /** Bit position within the byte (0..7). */
    uint8_t bitInByte;
    /** Only this direction of flip can occur. */
    FlipDirection direction;
    /**
     * Adjacent-row activations within one refresh window needed to
     * disturb the cell.
     */
    uint32_t threshold;
    /**
     * Probability that the cell actually flips once the threshold is
     * reached. Stable cells have 1.0.
     */
    double flipProbability;

    /** Bit index within the 64-bit word containing the cell. */
    unsigned
    bitInWord() const
    {
        return (byteInRow % 8) * 8 + bitInByte;
    }

    /** True when the cell flips on every over-threshold hammer. */
    bool stable() const { return flipProbability >= 1.0; }
};

/** Tunable parameters of the fault model. */
struct FaultModelConfig
{
    /**
     * Expected number of weak cells per (bank, row). The paper's DIMMs
     * show a few hundred flips over 12 GB of profiled memory (Table 1);
     * with 32 banks x 64 K rows that corresponds to roughly 1e-3..1e-2
     * weak cells per row once profiling reach is accounted for.
     */
    double weakCellsPerRow = 0.004;
    /** Fraction of weak cells that flip 1 -> 0 (rest flip 0 -> 1). */
    double oneToZeroFraction = 0.5;
    /** Fraction of weak cells that are stable (flipProbability = 1). */
    double stableFraction = 0.6;
    /** Flip probability of non-stable cells. */
    double unstableFlipProbability = 0.35;
    /** Minimum activation threshold of any weak cell. */
    uint32_t minThreshold = 40'000;
    /** Maximum activation threshold of any weak cell. */
    uint32_t maxThreshold = 220'000;
    /**
     * Disturbance attenuation for rows two away from an aggressor
     * (Half-Double style far-aggressor coupling); 0 disables it.
     */
    double distanceTwoFactor = 0.0;
};

/**
 * Deterministic weak-cell oracle.
 *
 * All queries are pure functions of (seed, bank, row); the class carries
 * no mutable state and is freely shareable.
 */
class FaultModel
{
  public:
    FaultModel(FaultModelConfig config, uint64_t seed,
               uint64_t row_bytes_per_bank);

    /** Weak cells of one (bank, row); typically empty. */
    std::vector<WeakCell> weakCellsInRow(BankId bank, RowId row) const;

    /**
     * Arena variant: append the weak cells of one (bank, row) to
     * @p out without clearing it. The hot hammer loop reuses one
     * scratch vector across every victim row instead of allocating a
     * fresh vector per query.
     */
    void weakCellsInRow(BankId bank, RowId row,
                        std::vector<WeakCell> &out) const;

    /** True when (bank, row) hosts at least one weak cell. */
    bool rowIsWeak(BankId bank, RowId row) const;

    /** The configuration in force. */
    const FaultModelConfig &config() const { return cfg; }

  private:
    /** Stable per-row hash stream root. */
    uint64_t rowSeed(BankId bank, RowId row) const;

    FaultModelConfig cfg;
    uint64_t seed;
    uint64_t rowBytes;
};

/**
 * Precomputed weak-row predicate, one bit per (bank, row).
 *
 * The hammer loop asks "is this row weak?" for every victim candidate;
 * hashing per query is pure but not free, and the answer never changes
 * for a given fault seed. The index evaluates the oracle once per row
 * at construction and packs the answers into a flat bitset (32 banks x
 * 64 K rows = 256 KB), which forked DramSystems share immutably --
 * compact arena storage instead of per-cell maps, and zero per-fork
 * cost.
 */
class WeakRowIndex
{
  public:
    WeakRowIndex(const FaultModel &model, unsigned bank_count,
                 uint64_t rows_per_bank);

    /** Bit probe equivalent of FaultModel::rowIsWeak. */
    bool
    isWeak(BankId bank, RowId row) const
    {
        const uint64_t idx = bank * rowsPerBankCount + row;
        return (bits[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Total weak rows across all banks (diagnostics/tests). */
    uint64_t weakRowCount() const;

    uint64_t rowsPerBank() const { return rowsPerBankCount; }
    unsigned bankCount() const { return banks; }

  private:
    unsigned banks;
    uint64_t rowsPerBankCount;
    std::vector<uint64_t> bits;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_FAULT_MODEL_H
