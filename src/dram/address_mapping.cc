#include "address_mapping.h"

#include <algorithm>
#include <sstream>

#include "base/bitops.h"
#include "base/log.h"

namespace hh::dram {

namespace {

/** Build a mask from a list of bit positions. */
uint64_t
maskOf(std::initializer_list<unsigned> bit_positions)
{
    uint64_t mask = 0;
    for (unsigned pos : bit_positions)
        mask |= 1ull << pos;
    return mask;
}

} // namespace

AddressMapping::AddressMapping(std::vector<uint64_t> bank_masks,
                               unsigned row_lo_bit, unsigned row_hi_bit)
    : bankMaskList(std::move(bank_masks)),
      rowLo(row_lo_bit),
      rowHi(row_hi_bit),
      rowMask((1ull << (row_hi_bit - row_lo_bit + 1)) - 1)
{
    HH_ASSERT(!bankMaskList.empty());
    HH_ASSERT(rowHi > rowLo);

    // The interleave granule is set by the lowest bank-function bit;
    // the fault model requires it to be at least a 64-byte line.
    uint64_t all_bits = 0;
    for (uint64_t mask : bankMaskList) {
        HH_ASSERT(mask != 0);
        all_bits |= mask;
    }
    interleave = std::countr_zero(all_bits);
    if (interleave < 6)
        base::fatal("bank functions below 64-byte granularity "
                    "are not supported (lowest bit %u)", interleave);

    // Precompute, for every offset class, the intra-stripe granule
    // offsets that fall into it. The intra-stripe space is
    // [0, 2^rowLo) bytes, i.e. 2^(rowLo - interleave) granules.
    const uint32_t granules = 1u << (rowLo - interleave);
    classTable.assign(bankCount(), {});
    for (uint32_t g = 0; g < granules; ++g) {
        const uint64_t offset = static_cast<uint64_t>(g) << interleave;
        classTable[offsetClass(offset)].push_back(g);
    }

    // Sanity: XOR folding spreads offsets evenly across classes only if
    // the bank bits are linearly independent over the intra-stripe
    // space; warn (rather than reject) otherwise so experiments with
    // degenerate functions still run.
    const size_t expected = granules / bankCount();
    for (BankId cls = 0; cls < bankCount(); ++cls) {
        if (classTable[cls].size() != expected) {
            base::warn("bank function is unbalanced: class %u has %zu "
                       "granules (expected %zu)", cls,
                       classTable[cls].size(), expected);
            break;
        }
    }
}

AddressMapping
AddressMapping::i3_10100()
{
    return AddressMapping({
        maskOf({6, 13}),
        maskOf({14, 18}),
        maskOf({15, 19}),
        maskOf({16, 20}),
        maskOf({17, 21}),
    }, 18, 33);
}

AddressMapping
AddressMapping::xeonE3_2124()
{
    return AddressMapping({
        maskOf({7, 14}),
        maskOf({8, 9, 12, 13, 18, 19}),
        maskOf({15, 18}),
        maskOf({16, 19}),
        maskOf({17, 20}),
    }, 18, 33);
}

AddressMapping
AddressMapping::linear(unsigned bank_bits)
{
    std::vector<uint64_t> masks;
    for (unsigned i = 0; i < bank_bits; ++i)
        masks.push_back(1ull << (6 + i));
    return AddressMapping(std::move(masks), 18, 33);
}

BankId
AddressMapping::bankOf(HostPhysAddr addr) const
{
    BankId bank = 0;
    for (size_t i = 0; i < bankMaskList.size(); ++i)
        bank |= base::maskParity(addr.value(), bankMaskList[i]) << i;
    return bank;
}

BankId
AddressMapping::offsetClass(uint64_t offset) const
{
    const uint64_t low_mask = (1ull << rowLo) - 1;
    BankId cls = 0;
    for (size_t i = 0; i < bankMaskList.size(); ++i)
        cls |= base::maskParity(offset, bankMaskList[i] & low_mask) << i;
    return cls;
}

BankId
AddressMapping::rowClass(RowId row) const
{
    const uint64_t high_part = row << rowLo;
    const uint64_t high_mask = ~((1ull << rowLo) - 1);
    BankId cls = 0;
    for (size_t i = 0; i < bankMaskList.size(); ++i)
        cls |= base::maskParity(high_part, bankMaskList[i] & high_mask) << i;
    return cls;
}

bool
AddressMapping::bankBitsPreservedBy(unsigned preserved_bits) const
{
    for (uint64_t mask : bankMaskList) {
        const uint64_t high = mask >> preserved_bits;
        // Bits above the preserved range are tolerable only when they
        // are row bits (the attacker controls relative row indices).
        uint64_t allowed = 0;
        for (unsigned b = rowLo; b <= rowHi; ++b)
            allowed |= 1ull << b;
        if ((high << preserved_bits) & ~allowed)
            return false;
    }
    return true;
}

const std::vector<uint32_t> &
AddressMapping::classOffsets(BankId cls) const
{
    HH_ASSERT(cls < classTable.size());
    return classTable[cls];
}

bool
AddressMapping::operator==(const AddressMapping &other) const
{
    // Two mappings are equivalent iff they have the same row range and
    // the same *set* of bank masks (bank-bit order is irrelevant to
    // bank conflicts).
    if (rowLo != other.rowLo || rowHi != other.rowHi)
        return false;
    auto a = bankMaskList;
    auto b = other.bankMaskList;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
}

std::string
AddressMapping::describe() const
{
    std::ostringstream out;
    out << bankCount() << " banks, fn={";
    for (size_t i = 0; i < bankMaskList.size(); ++i) {
        if (i)
            out << ", ";
        out << "(";
        bool first = true;
        for (unsigned b = 0; b < 64; ++b) {
            if ((bankMaskList[i] >> b) & 1) {
                if (!first)
                    out << ",";
                out << b;
                first = false;
            }
        }
        out << ")";
    }
    out << "}, row bits " << rowLo << ".." << rowHi;
    return out.str();
}

} // namespace hh::dram
