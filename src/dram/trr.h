/**
 * @file
 * Target Row Refresh (TRR) model.
 *
 * Production DDR4 parts ship an in-DRAM sampler that tracks frequently
 * activated rows and refreshes their neighbours, defeating naive
 * patterns. TRRespass showed the trackers have small capacity: patterns
 * with more simultaneous aggressor rows than the tracker can follow slip
 * through. The paper's DIMMs flip under single-sided patterns found with
 * TRRespass, so the evaluation configs keep TRR disabled; the model
 * exists for the mitigation ablation (bench_countermeasure) and tests.
 */

#ifndef HYPERHAMMER_DRAM_TRR_H
#define HYPERHAMMER_DRAM_TRR_H

#include <cstdint>
#include <vector>

#include "dram/address_mapping.h"

namespace hh::dram {

/** TRR configuration. */
struct TrrConfig
{
    /** Master switch; disabled reproduces the paper's DIMMs. */
    bool enabled = false;
    /**
     * Number of distinct aggressor rows (per bank, per refresh window)
     * the sampler can track. Patterns using at most this many rows in a
     * bank are fully mitigated.
     */
    unsigned trackerCapacity = 4;
    /**
     * When the pattern exceeds the tracker, each aggressor still gets
     * sampled with probability capacity / aggressors; a sampled
     * aggressor's neighbours are refreshed and take no disturbance in
     * that window.
     */
    bool probabilisticOverflow = true;
};

/**
 * Evaluates which aggressor rows of a hammer burst are neutralised by
 * TRR. Stateless apart from configuration; the caller supplies
 * randomness so system-level determinism is preserved.
 */
class TrrModel
{
  public:
    explicit TrrModel(TrrConfig config) : cfg(config) {}

    const TrrConfig &config() const { return cfg; }

    /**
     * Given the number of distinct aggressor rows hammered in one bank
     * during one refresh window, decide per aggressor whether its
     * disturbance is suppressed.
     *
     * @param aggressors_in_bank distinct aggressor rows in the bank
     * @param uniform_draw       caller-supplied uniform [0,1) variate
     *                           for this aggressor
     * @return true when the aggressor's neighbours were TRR-refreshed
     */
    bool
    suppresses(unsigned aggressors_in_bank, double uniform_draw) const
    {
        if (!cfg.enabled)
            return false;
        if (aggressors_in_bank <= cfg.trackerCapacity)
            return true;
        if (!cfg.probabilisticOverflow)
            return false;
        const double p = static_cast<double>(cfg.trackerCapacity)
            / static_cast<double>(aggressors_in_bank);
        return uniform_draw < p;
    }

  private:
    TrrConfig cfg;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_TRR_H
