/**
 * @file
 * ECC DRAM model.
 *
 * Server DIMMs store 8 check bits per 64-bit word (SEC-DED): a single
 * flipped bit per word is silently corrected, two flips are detected
 * (machine-check) and three or more can escape as a miscorrection. The
 * paper's machines use non-ECC DIMMs (Section 5), so the evaluation
 * configs disable this; it exists for the "typical commodity server"
 * discussion in Section 6 and the mitigation ablation.
 */

#ifndef HYPERHAMMER_DRAM_ECC_H
#define HYPERHAMMER_DRAM_ECC_H

#include <cstdint>

namespace hh::dram {

/** ECC configuration. */
struct EccConfig
{
    /** Master switch; disabled reproduces the paper's DIMMs. */
    bool enabled = false;
    /**
     * Bits correctable per 64-bit word. 1 is SEC-DED (commodity server
     * DIMMs); 2 models chipkill-style DEC-TED codes. correctBits + 1
     * flips are detected (machine check); anything beyond that may
     * escape as a miscorrection. The mitigation matrix sweeps this.
     */
    uint32_t correctBits = 1;
};

/** Outcome of ECC evaluation for one 64-bit word in one hammer burst. */
enum class EccOutcome : uint8_t
{
    NoEcc,        ///< ECC disabled: flips land unmodified
    Corrected,    ///< single-bit flip silently repaired
    Detected,     ///< double-bit flip: machine check, no silent flip
    Uncorrectable ///< 3+ flips may escape correction
};

/** SEC-DED decision logic. */
class EccModel
{
  public:
    explicit EccModel(EccConfig config) : cfg(config) {}

    const EccConfig &config() const { return cfg; }
    bool enabled() const { return cfg.enabled; }

    /** Classify a word that accumulated @p flips_in_word flips. */
    EccOutcome
    classify(unsigned flips_in_word) const
    {
        if (!cfg.enabled)
            return EccOutcome::NoEcc;
        if (flips_in_word <= cfg.correctBits)
            return EccOutcome::Corrected;
        if (flips_in_word == cfg.correctBits + 1)
            return EccOutcome::Detected;
        return EccOutcome::Uncorrectable;
    }

    /** True when the flips in a word become visible to software. */
    bool
    flipsVisible(unsigned flips_in_word) const
    {
        const EccOutcome outcome = classify(flips_in_word);
        return outcome == EccOutcome::NoEcc
            || outcome == EccOutcome::Uncorrectable;
    }

  private:
    EccConfig cfg;
};

} // namespace hh::dram

#endif // HYPERHAMMER_DRAM_ECC_H
