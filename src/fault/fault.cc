#include "fault/fault.h"

#include "base/log.h"

namespace hh::fault {

namespace {

constexpr const char *kSiteNames[] = {
#define HH_FAULT_SITE(ident, name) name,
#include "fault/fault_sites.def"
#undef HH_FAULT_SITE
};

static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) == kFaultSiteCount,
              "fault_sites.def and FaultSite enum out of sync");

/** The fault kind a randomized soak plan schedules at each site. */
constexpr FaultKind
naturalKind(FaultSite site)
{
    switch (site) {
    case FaultSite::DramRead:
        return FaultKind::ReadCorruption;
    case FaultSite::DramRefresh:
        return FaultKind::RefreshJitter;
    case FaultSite::DramTrr:
        return FaultKind::SpuriousTrr;
    case FaultSite::DramEcc:
        return FaultKind::EccMiscorrect;
    case FaultSite::MmAlloc:
        return FaultKind::AllocFail;
    case FaultSite::KsmScan:
        return FaultKind::ScanRace;
    case FaultSite::VirtioUnplug:
    case FaultSite::BalloonInflate:
        return FaultKind::DelayedReclaim;
    case FaultSite::ExploitHammer:
        return FaultKind::LostFlip;
    case FaultSite::SteerRelease:
        return FaultKind::SteerMiss;
    case FaultSite::DispatchSpawn:
        return FaultKind::SpawnFail;
    case FaultSite::DispatchHeartbeat:
        return FaultKind::HeartbeatLoss;
    case FaultSite::DispatchArtifact:
        return FaultKind::TornArtifact;
    case FaultSite::DispatchMerge:
        return FaultKind::SpuriousBusy;
    case FaultSite::kCount:
        break;
    }
    return FaultKind::ReadCorruption;
}

} // namespace

const char *
siteName(FaultSite site)
{
    const auto index = static_cast<size_t>(site);
    HH_ASSERT(index < kFaultSiteCount);
    return kSiteNames[index];
}

const char *
kindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::RefreshJitter:
        return "refresh-jitter";
    case FaultKind::SpuriousTrr:
        return "spurious-trr";
    case FaultKind::EccMiscorrect:
        return "ecc-miscorrect";
    case FaultKind::ReadCorruption:
        return "read-corruption";
    case FaultKind::AllocFail:
        return "alloc-fail";
    case FaultKind::DelayedReclaim:
        return "delayed-reclaim";
    case FaultKind::ScanRace:
        return "scan-race";
    case FaultKind::LostFlip:
        return "lost-flip";
    case FaultKind::SteerMiss:
        return "steer-miss";
    case FaultKind::SpawnFail:
        return "spawn-fail";
    case FaultKind::HeartbeatLoss:
        return "heartbeat-loss";
    case FaultKind::TornArtifact:
        return "torn-artifact";
    case FaultKind::SpuriousBusy:
        return "spurious-busy";
    }
    return "unknown";
}

FaultPlan &
FaultPlan::add(const FaultEntry &entry)
{
    HH_ASSERT(entry.site != FaultSite::kCount);
    HH_ASSERT(entry.every >= 1);
    entries.push_back(entry);
    return *this;
}

FaultPlan
FaultPlan::randomized(uint64_t plan_seed, double intensity)
{
    HH_ASSERT(intensity > 0.0 && intensity <= 1.0);
    FaultPlan plan;
    plan.seed = plan_seed;
    base::SeedSequence seq(plan_seed);
    for (size_t i = 0; i < kFaultSiteCount; ++i) {
        const auto site = static_cast<FaultSite>(i);
        base::Rng rng = seq.stream(i);
        FaultEntry entry;
        entry.site = site;
        entry.kind = naturalKind(site);
        entry.firstHit = rng.below(16);
        entry.count = 0; // unlimited; the gate bounds the rate
        entry.every = rng.between(1, 8);
        // Keep the rarely-consulted control-plane sites likelier to
        // fire than the per-read/per-scan hot sites, which see orders
        // of magnitude more occurrences.
        const bool hot = site == FaultSite::DramRead ||
                         site == FaultSite::KsmScan ||
                         site == FaultSite::DramEcc;
        // Dispatch sites see a handful of consults per sweep (one per
        // launch / lease scan / artifact collection), not millions, so
        // they need a much denser gate to fire at all in a soak run.
        const bool dispatch = site == FaultSite::DispatchSpawn ||
                              site == FaultSite::DispatchHeartbeat ||
                              site == FaultSite::DispatchArtifact ||
                              site == FaultSite::DispatchMerge;
        entry.probability =
            (hot ? 0.001 : dispatch ? 0.30 : 0.05) * intensity;
        if (dispatch) {
            // Every consult must be eligible: with only a few
            // occurrences per sweep, a sparse window would make the
            // chaos legs vacuously green.
            entry.firstHit = rng.below(4);
            entry.every = 1;
        }
        entry.param = rng.below(64);
        // mm.alloc_pages fires on every use class in soak mode.
        if (site == FaultSite::MmAlloc)
            entry.param = 0;
        plan.entries.push_back(entry);
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t root_seed)
    : schedule(std::move(plan))
{
    const base::SeedSequence seq(root_seed);
    for (size_t i = 0; i < kFaultSiteCount; ++i) {
        sites[i].rng = seq.stream(i);
        sites[i].entryFired.assign(schedule.entries.size(), 0);
    }
    for (size_t e = 0; e < schedule.entries.size(); ++e) {
        const auto &entry = schedule.entries[e];
        HH_ASSERT(entry.site != FaultSite::kCount);
        HH_ASSERT(entry.every >= 1);
        bySite[static_cast<size_t>(entry.site)].push_back(
            static_cast<uint32_t>(e));
    }
}

const FaultEntry *
FaultInjector::consult(FaultSite site)
{
    const auto index = static_cast<size_t>(site);
    HH_ASSERT(index < kFaultSiteCount);
    SiteState &state = sites[index];
    const uint64_t occurrence = state.occurrences++;

    const FaultEntry *firing = nullptr;
    for (const uint32_t e : bySite[index]) {
        const FaultEntry &entry = schedule.entries[e];
        if (occurrence < entry.firstHit)
            continue;
        if ((occurrence - entry.firstHit) % entry.every != 0)
            continue;
        if (entry.count != 0 && state.entryFired[e] >= entry.count)
            continue;
        // The gate draw happens for every eligible occurrence, fired or
        // not, so the stream position stays a pure function of the
        // occurrence index even across count-exhausted entries.
        if (entry.probability < 1.0 && !state.rng.chance(entry.probability))
            continue;
        ++state.entryFired[e];
        firing = &entry;
        break;
    }
    if (firing != nullptr)
        ++state.fired;
    return firing;
}

uint64_t
FaultInjector::draw(FaultSite site)
{
    const auto index = static_cast<size_t>(site);
    HH_ASSERT(index < kFaultSiteCount);
    return sites[index].rng();
}

uint64_t
FaultInjector::occurrences(FaultSite site) const
{
    return sites[static_cast<size_t>(site)].occurrences;
}

uint64_t
FaultInjector::fired(FaultSite site) const
{
    return sites[static_cast<size_t>(site)].fired;
}

uint64_t
FaultInjector::totalFired() const
{
    uint64_t total = 0;
    for (const SiteState &state : sites)
        total += state.fired;
    return total;
}

void
FaultInjector::saveState(base::ArchiveWriter &w) const
{
    w.u64(sites.size());
    for (const SiteState &state : sites) {
        w.u64(state.occurrences);
        w.u64(state.fired);
        w.rngState(state.rng.saveState());
        w.u64vec(state.entryFired);
    }
}

base::Status
FaultInjector::loadState(base::ArchiveReader &r)
{
    const uint64_t site_count = r.u64();
    if (r.ok() && site_count != sites.size())
        r.fail();
    std::array<SiteState, kFaultSiteCount> loaded;
    for (SiteState &state : loaded) {
        if (!r.ok())
            break;
        state.occurrences = r.u64();
        state.fired = r.u64();
        state.rng.loadState(r.rngState());
        state.entryFired = r.u64vec();
        if (r.ok() && state.entryFired.size() != schedule.entries.size())
            r.fail();
    }
    if (!r.ok())
        return r.status();
    sites = std::move(loaded);
    return base::Status::success();
}

} // namespace hh::fault
