/**
 * @file
 * Deterministic, seed-driven fault injection (DESIGN.md section 3.3).
 *
 * A FaultPlan is a schedule of (site, trigger, kind, param) entries.
 * Components hold a raw FaultInjector pointer (null when no plan is
 * installed) and consult it at registered injection points via
 * HH_FAULT_POINT; with a null injector the whole mechanism costs one
 * branch on a null pointer, so the fault-free fast path is bitwise
 * identical to a build without the framework.
 *
 * Determinism: each site owns an occurrence counter and an Rng derived
 * from base::SeedSequence(root)(site index), so whether a given consult
 * fires is a pure function of (plan, root seed, site, occurrence
 * index) -- independent of wall time, thread count and sibling sites.
 * Per-trial host clones (orchestrator runTrial) construct their own
 * injector from their own config seed, which preserves the section 3.2
 * bitwise-determinism contract at any thread count.
 */

#ifndef HYPERHAMMER_FAULT_FAULT_H
#define HYPERHAMMER_FAULT_FAULT_H

#include <array>
#include <cstdint>
#include <vector>

#include "base/archive.h"
#include "base/rng.h"
#include "base/status.h"

namespace hh::fault {

/** What an injection point should do when its entry fires. */
enum class FaultKind : uint8_t
{
    RefreshJitter,  ///< dram: an early refresh truncates the hammer burst
    SpuriousTrr,    ///< dram: TRR samples an aggressor it normally misses
    EccMiscorrect,  ///< dram: ECC mis-corrects (inverts flip visibility)
    ReadCorruption, ///< dram: one read returns a transiently wrong word
    AllocFail,      ///< mm: allocPages reports NoMemory
    DelayedReclaim, ///< virtio: unplug/inflate answers Busy this round
    ScanRace,       ///< sys: a guest write races KSM, page skipped
    LostFlip,       ///< attack: a hammer pass fails to retrigger a bit
    SteerMiss,      ///< attack: a release lands on the wrong sub-block
    SpawnFail,      ///< dispatch: launching a shard worker fails
    HeartbeatLoss,  ///< dispatch: a live worker's heartbeat goes silent
    TornArtifact,   ///< dispatch: a shard artifact write is truncated
    SpuriousBusy,   ///< dispatch: merge-time collection answers Busy
};

/** Registered injection points (src/fault/fault_sites.def). */
enum class FaultSite : uint16_t
{
#define HH_FAULT_SITE(ident, name) ident,
#include "fault/fault_sites.def"
#undef HH_FAULT_SITE
    kCount,
};

constexpr size_t kFaultSiteCount = static_cast<size_t>(FaultSite::kCount);

/** The registered "layer.name" string of a site. */
const char *siteName(FaultSite site);

/** Human-readable name of a fault kind. */
const char *kindName(FaultKind kind);

/**
 * One scheduled fault. The trigger is an occurrence window over the
 * site's consult counter: the entry is eligible at occurrence o when
 * o >= firstHit, (o - firstHit) % every == 0 and fewer than count
 * firings have happened; an eligible entry then passes an optional
 * Bernoulli gate drawn from the site's deterministic stream.
 */
struct FaultEntry
{
    FaultSite site = FaultSite::kCount;
    FaultKind kind = FaultKind::ReadCorruption;
    /** First occurrence index (0-based) at which the entry can fire. */
    uint64_t firstHit = 0;
    /** Maximum number of firings (0 = unlimited). */
    uint64_t count = 1;
    /** Fire every Nth eligible occurrence (>= 1). */
    uint64_t every = 1;
    /** Bernoulli gate on each eligible occurrence (1.0 = always). */
    double probability = 1.0;
    /** Kind-specific parameter (bit index, PageUse filter, percent). */
    uint64_t param = 0;
};

/** A full schedule of faults, installed host-wide via SystemConfig. */
struct FaultPlan
{
    /**
     * Root of the plan's randomness (Bernoulli gates, param draws).
     * Mixed with the owning host's seed, so per-trial host clones get
     * independent-but-deterministic fault streams.
     */
    uint64_t seed = 1;
    std::vector<FaultEntry> entries;

    /** True when no faults are scheduled (no injector is built). */
    bool empty() const { return entries.empty(); }

    /** Schedule @p entry; returns *this for chaining. */
    FaultPlan &add(const FaultEntry &entry);

    /**
     * A soak-test plan: every site gets a probabilistic entry of its
     * natural kind, with windows and gates drawn from @p plan_seed.
     * @p intensity in (0, 1] scales every firing probability.
     */
    static FaultPlan randomized(uint64_t plan_seed, double intensity);
};

/**
 * The runtime consulted at each HH_FAULT_POINT. One instance per
 * HostSystem; per-site occurrence counters and Rng streams make every
 * decision a pure function of (plan, root seed, site, occurrence).
 */
class FaultInjector
{
  public:
    /**
     * @param plan       the schedule (copied)
     * @param root_seed  typically mix64(host seed, salt); separates
     *                   the fault streams of cloned trial hosts
     */
    FaultInjector(FaultPlan plan, uint64_t root_seed);

    /**
     * Record one occurrence of @p site and return the entry that fires
     * at it, or nullptr. At most one entry fires per occurrence (first
     * eligible in plan order wins).
     */
    const FaultEntry *consult(FaultSite site);

    /** Deterministic per-site draw for kind-specific randomization. */
    uint64_t draw(FaultSite site);

    /** Occurrences consulted at @p site so far. */
    uint64_t occurrences(FaultSite site) const;

    /** Faults fired at @p site so far. */
    uint64_t fired(FaultSite site) const;

    /** Faults fired across all sites. */
    uint64_t totalFired() const;

    const FaultPlan &plan() const { return schedule; }

    /**
     * Serialize the injector position: per-site occurrence/fired
     * counters, per-entry firing counts and the site RNG cursors. The
     * plan itself is part of the host configuration and travels via
     * the config fingerprint.
     */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore a position saved from an injector with the same plan. */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    struct SiteState
    {
        uint64_t occurrences = 0;
        uint64_t fired = 0;
        base::Rng rng{0};
        /** Firings per plan entry (indexes schedule.entries). */
        std::vector<uint64_t> entryFired;
    };

    // hh-lint: allow(snapshot-field-coverage) -- the plan is host configuration; loadState only validates entry counts against it
    FaultPlan schedule;
    std::array<SiteState, kFaultSiteCount> sites;
    /** Entry indices per site, in plan order. */
    // hh-lint: allow(snapshot-field-coverage) -- derived index, rebuilt from the plan at construction
    std::array<std::vector<uint32_t>, kFaultSiteCount> bySite;
};

} // namespace hh::fault

/**
 * The injection-point macro. @p injector is a `fault::FaultInjector *`
 * (null when no plan is installed -- the zero-overhead case), @p site
 * a fault::FaultSite enumerator. Evaluates to the firing
 * `const fault::FaultEntry *` or nullptr.
 */
#define HH_FAULT_POINT(injector, site) \
    ((injector) != nullptr ? (injector)->consult(site) : nullptr)

#endif // HYPERHAMMER_FAULT_FAULT_H
