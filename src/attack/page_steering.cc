#include "page_steering.h"

#include <algorithm>

#include "base/log.h"

namespace hh::attack {

namespace {

/** Cost of one VFIO map ioctl plus vIOMMU emulation round trip. */
constexpr base::SimTime kIovaMapCost = 10 * base::kMicrosecond;
/** Cost of one virtio-mem unplug negotiation. */
constexpr base::SimTime kUnplugCost = 2 * base::kMillisecond;
/** Exec fault + hugepage demotion handling in the hypervisor. */
constexpr base::SimTime kDemotionFaultCost = 100 * base::kMicrosecond;

} // namespace

PageSteering::PageSteering(vm::VirtualMachine &machine,
                           base::SimClock &clock, SteeringConfig config,
                           fault::FaultInjector *fault_injector)
    : machine(machine), clock(clock), cfg(config),
      faultInjector(fault_injector)
{}

uint64_t
PageSteering::exhaustNoisePages(
    const std::function<void(uint64_t)> &sample, uint32_t sample_every)
{
    uint64_t created = 0;
    IoVirtAddr iova = cfg.iovaBase;
    const uint32_t group_count = machine.iommuGroupCount();
    if (group_count == 0)
        return 0;

    for (uint32_t group = 0; group < group_count; ++group) {
        while (created < cfg.exhaustMappings) {
            const base::Status status = machine.iommuMap(
                group, iova, cfg.donorPage);
            clock.advance(kIovaMapCost);
            if (status.error() == base::ErrorCode::LimitExceeded)
                break; // next IOMMU group, if any
            if (!status.ok())
                return created;
            ++created;
            iova += cfg.iovaStride;
            if (sample && created % sample_every == 0)
                sample(created);
        }
        if (created >= cfg.exhaustMappings)
            break;
    }
    return created;
}

uint64_t
PageSteering::releaseVulnerable(const std::vector<VulnerableBit> &targets,
                                SteeringResult &result)
{
    auto &driver = machine.memDriver();
    driver.setSuppressAutoPlug(true);

    // Seed the dedup set from earlier calls so a retry after partial
    // failure only reworks the remaining targets.
    std::unordered_set<uint64_t> released;
    for (const GuestPhysAddr &hp : result.releasedHugePages)
        released.insert(hp.value());
    uint64_t released_now = 0;
    for (const VulnerableBit &bit : targets) {
        const GuestPhysAddr hp = bit.victimHugePage;
        if (released.count(hp.value()))
            continue;
        // Steering miss: the modified driver picks the wrong
        // sub-block, so this target's release never happens (the
        // negotiation time is still spent).
        if (const fault::FaultEntry *f = HH_FAULT_POINT(
                faultInjector, fault::FaultSite::SteerRelease)) {
            if (f->kind == fault::FaultKind::SteerMiss) {
                clock.advance(kUnplugCost);
                ++result.steerMisses;
                continue;
            }
        }
        const base::Status status = driver.unplugSpecific(hp);
        clock.advance(kUnplugCost);
        if (!status.ok()) {
            base::warn("page steering: unplug of GPA %#llx failed: %s",
                       static_cast<unsigned long long>(hp.value()),
                       base::errorName(status.error()));
            ++result.failedUnplugs;
            continue;
        }
        released.insert(hp.value());
        ++released_now;
        result.releasedHugePages.push_back(hp);
    }
    result.releasedSubBlocks += released_now;
    return released_now;
}

void
PageSteering::writeIdlingFunction(GuestPhysAddr huge_page)
{
    // Listing 1: push %rbp; mov %rsp,%rbp; nop...; pop %rbp; ret.
    // 55 48 89 e5 90 90 90 90 ... 90 5d c3
    constexpr uint64_t kPrologueNops = 0x90909090'e5894855ull;
    constexpr uint64_t kNops = 0x90909090'90909090ull;
    constexpr uint64_t kNopsEpilogue = 0xc35d9090'90909090ull;
    // hh-lint: allow(status-discard) -- fills a page the guest just mapped; a failure surfaces at the later scan, not here
    (void)machine.write64(huge_page, kPrologueNops);
    // hh-lint: allow(status-discard) -- same best-effort fill as above
    (void)machine.write64(huge_page + 8, kNops);
    // hh-lint: allow(status-discard) -- same best-effort fill as above
    (void)machine.write64(huge_page + 16, kNopsEpilogue);
}

uint64_t
PageSteering::sprayEptes(uint64_t budget_bytes,
                         const std::unordered_set<uint64_t> &excluded)
{
    uint64_t demotions = 0;
    uint64_t spent = 0;
    for (GuestPhysAddr hp : machine.hugePageGpas()) {
        if (spent + kHugePageSize > budget_bytes)
            break;
        if (excluded.count(hp.value()))
            continue;
        writeIdlingFunction(hp);
        const kvm::AccessResult result = machine.execute(hp);
        clock.advance(kDemotionFaultCost);
        spent += kHugePageSize;
        if (result.status.ok() && result.demotedHugePage)
            ++demotions;
    }
    return demotions;
}

SteeringResult
PageSteering::steer(const std::vector<VulnerableBit> &targets,
                    uint64_t spray_bytes)
{
    SteeringResult result;
    const base::SimTime start = clock.now();

    result.iovaMappings = exhaustNoisePages();
    releaseVulnerable(targets, result);

    // Never demote the hugepages we still need as aggressors? Not
    // necessary: demotion changes EPT granularity, not page placement,
    // so aggressor rows stay hammerable. Released hugepages are gone
    // from the address space and skip themselves (execute() faults).
    std::unordered_set<uint64_t> excluded;
    for (const GuestPhysAddr &hp : result.releasedHugePages)
        excluded.insert(hp.value());

    result.demotions = sprayEptes(spray_bytes, excluded);
    result.sprayedBytes = result.demotions * kHugePageSize;
    result.elapsed = clock.now() - start;
    return result;
}

} // namespace hh::attack
