/**
 * @file
 * Shared vocabulary of the HyperHammer attack pipeline: what the
 * attacker knows about a vulnerable bit, and the tunables of each
 * stage.
 */

#ifndef HYPERHAMMER_ATTACK_TYPES_H
#define HYPERHAMMER_ATTACK_TYPES_H

#include <cstdint>
#include <vector>

#include "base/sim_clock.h"
#include "base/types.h"
#include "dram/fault_model.h"

namespace hh::attack {

/**
 * A Rowhammer-vulnerable bit as the *attacker* records it: everything
 * is in guest physical addresses, because the attacker never learns
 * host physical addresses (Section 4.1).
 */
struct VulnerableBit
{
    /** 8-byte aligned GPA of the word containing the bit. */
    GuestPhysAddr wordGpa{0};
    /** Bit index within the 64-bit word (0..63). */
    unsigned bitInWord = 0;
    /** Observed flip direction. */
    dram::FlipDirection direction = dram::FlipDirection::OneToZero;
    /** Flipped on every stability re-test. */
    bool stable = false;
    /**
     * Passes the paper's exploitability filter (Section 4.1, last
     * paragraph): the bit falls on PFN bits
     * 21..ceil(log2(host_mem))-1 of an EPTE.
     */
    bool exploitable = false;
    /**
     * The victim hugepage differs from the aggressors' hugepage, so
     * it can be released while the aggressors stay mapped. Steering
     * can only use bits that are both exploitable and releasable.
     */
    bool releasable = false;
    /** 2 MB hugepage (GPA) containing the victim bit. */
    GuestPhysAddr victimHugePage{0};
    /** 2 MB hugepage (GPA) containing the aggressor rows. */
    GuestPhysAddr aggressorHugePage{0};
    /** The aggressor addresses to hammer to reproduce the flip. */
    std::vector<GuestPhysAddr> aggressors;
};

/** Aggregate outcome of a profiling run (the Table 1 row). */
struct ProfileResult
{
    std::vector<VulnerableBit> bits;

    /** Virtual time the profiling took. */
    base::SimTime elapsed = 0;
    /** (hugepage, border, bank) combinations hammered. */
    uint64_t combinations = 0;
    /** Flips that landed outside attacker-scannable memory. */
    uint64_t collateralFlips = 0;

    uint64_t totalFlips() const { return bits.size(); }
    uint64_t countOneToZero() const;
    uint64_t countZeroToOne() const;
    uint64_t countStable() const;
    uint64_t countExploitable() const;

    /** The exploitable subset, stable bits first. */
    std::vector<VulnerableBit> exploitableBits() const;
};

/** Profiling tunables (defaults follow Section 5.1). */
struct ProfilerConfig
{
    /** Hammer rounds per (border, bank) combination. */
    uint64_t hammerRounds = 250'000;
    /** Re-hammers used to classify a bit as stable. */
    unsigned stabilityRepeats = 3;
    /**
     * Lowest exploitable EPTE bit. Section 4.1 argues bits below 21
     * stay inside the same 2 MB region, but the Section 5.1
     * evaluation counts the range 20..ceil(log2(mem)); we follow the
     * evaluation's counting for Table 1 comparability.
     */
    unsigned exploitLoBit = 20;
    /**
     * Highest exploitable EPTE bit.
     * 0 = derive from the host memory size as ceil(log2(mem)), the
     * paper's Section 5.1 counting (16 GB hosts give 34).
     */
    unsigned exploitHiBit = 0;
    /**
     * When non-zero, stop as soon as this many exploitable bits are
     * found (the early-exit of Section 5.3.3).
     */
    unsigned stopAfterExploitable = 0;
    /**
     * True: use the DRAM bank function (recovered with DRAMDig) to
     * pick same-bank aggressor pairs. False: brute-force page pairs
     * at hugepage borders (Section 4.1's fallback).
     */
    bool bankFunctionKnown = true;
    /**
     * Brute-force mode only: cap on page pairs tried per border (the
     * full 64x64 grid is expensive; the paper notes the slowdown is
     * proportional to row size).
     */
    unsigned bruteForcePairCap = 4096;
};

} // namespace hh::attack

#endif // HYPERHAMMER_ATTACK_TYPES_H
