/**
 * @file
 * Page Steering (Section 4.2): massage the host into placing EPT pages
 * on the vulnerable frames the attacker releases.
 *
 * The three steps of Figure 1:
 *   1. exhaust the small-order MIGRATE_UNMOVABLE free lists ("noise
 *      pages") by mapping one guest page at thousands of 2 MB-spaced
 *      IOVAs, one IOPT page each (Section 4.2.1);
 *   2. voluntarily release the 2 MB sub-blocks containing vulnerable
 *      bits through the modified virtio-mem driver (Section 4.2.2);
 *   3. force EPT-page allocations by writing an idling function into
 *      hugepages and executing it, triggering the iTLB-Multihit
 *      countermeasure's hugepage demotion (Section 4.2.3).
 */

#ifndef HYPERHAMMER_ATTACK_PAGE_STEERING_H
#define HYPERHAMMER_ATTACK_PAGE_STEERING_H

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "attack/types.h"
#include "base/sim_clock.h"
#include "fault/fault.h"
#include "vm/virtual_machine.h"

namespace hh::attack {

/** Page Steering tunables (defaults follow Section 5.2). */
struct SteeringConfig
{
    /** First IOVA used for noise-page exhaustion (paper: 0x1 0000 0000). */
    IoVirtAddr iovaBase{0x1'0000'0000ull};
    /** IOVA spacing; 2 MB forces one IOPT leaf page per mapping. */
    uint64_t iovaStride = kHugePageSize;
    /** Mappings to create across all groups (paper: 60,000). */
    uint32_t exhaustMappings = 60'000;
    /** GPA of the single donor page every IOVA maps to. */
    GuestPhysAddr donorPage{0};
};

/** Outcome of one steering run. */
struct SteeringResult
{
    uint64_t iovaMappings = 0;
    uint64_t releasedSubBlocks = 0;
    /** Hugepages demoted by the spray == EPT pages created by it. */
    uint64_t demotions = 0;
    uint64_t sprayedBytes = 0;
    base::SimTime elapsed = 0;
    /** Releases skipped by injected steering misses. */
    uint64_t steerMisses = 0;
    /** Unplug requests the device refused (Busy, quarantine, ...). */
    uint64_t failedUnplugs = 0;
    std::vector<GuestPhysAddr> releasedHugePages;
};

/**
 * Drives the three steering steps against one VM.
 */
class PageSteering
{
  public:
    PageSteering(vm::VirtualMachine &machine, base::SimClock &clock,
                 SteeringConfig config,
                 fault::FaultInjector *fault_injector = nullptr);

    /**
     * Step 1: create 2 MB-spaced IOVA mappings of the donor page until
     * the budget or all group limits are exhausted. @p sample, when
     * set, is invoked every @p sample_every mappings (used to trace
     * Figure 3).
     *
     * @return mappings actually created
     */
    uint64_t
    exhaustNoisePages(const std::function<void(uint64_t)> &sample = {},
                      uint32_t sample_every = 1'000);

    /**
     * Step 2: release the sub-blocks containing the victim hugepages
     * of @p targets. Suppresses the driver's auto re-plug first.
     * Hugepages already listed in @p result.releasedHugePages are
     * skipped, so a retry after partial failure only reworks the
     * remainder.
     *
     * @return hugepages actually released
     */
    uint64_t releaseVulnerable(const std::vector<VulnerableBit> &targets,
                               SteeringResult &result);

    /**
     * Step 3: write the idling function into up to @p budget_bytes of
     * the VM's remaining hugepages (excluding @p excluded) and execute
     * it, demoting each and allocating one EPT page per hugepage.
     *
     * @return demotions triggered
     */
    uint64_t sprayEptes(uint64_t budget_bytes,
                        const std::unordered_set<uint64_t> &excluded);

    /** Run all three steps for @p targets, spraying @p spray_bytes. */
    SteeringResult steer(const std::vector<VulnerableBit> &targets,
                         uint64_t spray_bytes);

  private:
    vm::VirtualMachine &machine;
    base::SimClock &clock;
    SteeringConfig cfg;
    fault::FaultInjector *faultInjector;

    /** Write the Listing-1 idling function into a hugepage. */
    void writeIdlingFunction(GuestPhysAddr huge_page);
};

} // namespace hh::attack

#endif // HYPERHAMMER_ATTACK_PAGE_STEERING_H
