#include "profiler.h"

#include <algorithm>

#include "base/bitops.h"
#include "base/log.h"
#include "base/rng.h"

namespace hh::attack {

uint64_t
ProfileResult::countOneToZero() const
{
    return std::count_if(bits.begin(), bits.end(), [](const auto &b) {
        return b.direction == dram::FlipDirection::OneToZero;
    });
}

uint64_t
ProfileResult::countZeroToOne() const
{
    return std::count_if(bits.begin(), bits.end(), [](const auto &b) {
        return b.direction == dram::FlipDirection::ZeroToOne;
    });
}

uint64_t
ProfileResult::countStable() const
{
    return std::count_if(bits.begin(), bits.end(),
                         [](const auto &b) { return b.stable; });
}

uint64_t
ProfileResult::countExploitable() const
{
    return std::count_if(bits.begin(), bits.end(),
                         [](const auto &b) { return b.exploitable; });
}

std::vector<VulnerableBit>
ProfileResult::exploitableBits() const
{
    // Usable for steering = exploitable bit position AND the victim
    // can be released without giving up the aggressors. Stable bits
    // first: they flip on demand.
    std::vector<VulnerableBit> out;
    for (const VulnerableBit &bit : bits) {
        if (bit.exploitable && bit.releasable)
            out.push_back(bit);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const VulnerableBit &a, const VulnerableBit &b) {
                         return a.stable > b.stable;
                     });
    return out;
}

MemoryProfiler::MemoryProfiler(vm::VirtualMachine &machine,
                               base::SimClock &clock,
                               dram::AddressMapping mapping,
                               ProfilerConfig config)
    : machine(machine),
      clock(clock),
      mapping(std::move(mapping)),
      cfg(config)
{
    if (cfg.exploitHiBit == 0) {
        // The paper's Section 5.1 range tops out at ceil(log2(mem));
        // derive from the machine spec.
        cfg.exploitHiBit = base::ceilLog2(machine.hostMemoryBytes());
    }
    HH_ASSERT(cfg.exploitHiBit > cfg.exploitLoBit);
    HH_ASSERT(cfg.exploitHiBit < 64);
}

unsigned
MemoryProfiler::localRows() const
{
    return static_cast<unsigned>(kHugePageSize
                                 / mapping.rowStripeBytes());
}

void
MemoryProfiler::buildReverseIndex(
    const std::vector<GuestPhysAddr> &region)
{
    // Simulation index only: lets the simulator map a DRAM flip event
    // back to the guest hugepage a full scan would have found dirty.
    hostToGuestHugePage.clear();
    for (GuestPhysAddr gpa : region) {
        auto hpa = machine.debugTranslate(gpa);
        if (hpa)
            hostToGuestHugePage[hpa->hugePageBase().value()] = gpa;
    }
}

GuestPhysAddr
MemoryProfiler::rowBankAddress(GuestPhysAddr huge_page,
                               unsigned local_row,
                               dram::BankId label) const
{
    // Bank labels are computed from the low 21 bits only; the unknown
    // upper bits add a constant XOR that cancels when comparing two
    // addresses in the same hugepage.
    const uint64_t stripe = mapping.rowStripeBytes();
    const uint64_t granule = 1ull << mapping.interleaveShift();
    const uint64_t row_base = local_row * stripe;
    for (uint64_t off = 0; off < stripe; off += granule) {
        const HostPhysAddr pseudo(row_base + off);
        if (mapping.bankOf(pseudo) == label)
            return huge_page + row_base + off;
    }
    base::panic("no address with bank label %u in local row %u", label,
                local_row);
}

std::vector<std::vector<GuestPhysAddr>>
MemoryProfiler::aggressorCandidates(GuestPhysAddr huge_page,
                                    bool top_border) const
{
    std::vector<std::vector<GuestPhysAddr>> candidates;
    const unsigned rows = localRows();
    HH_ASSERT(rows >= 2);
    const unsigned r0 = top_border ? rows - 2 : 0;
    const unsigned r1 = r0 + 1;

    if (cfg.bankFunctionKnown) {
        // One same-bank pair per bank label: the pair activates two
        // adjacent rows, disturbing the row beyond the border.
        for (dram::BankId label = 0; label < mapping.bankCount();
             ++label) {
            candidates.push_back({rowBankAddress(huge_page, r0, label),
                                  rowBankAddress(huge_page, r1, label)});
        }
        return candidates;
    }

    // Brute force: all page pairs across the two border rows. Only
    // the (unknown) same-bank pairs can produce flips, so this is
    // slower by roughly pages-per-row squared over banks.
    const uint64_t stripe = mapping.rowStripeBytes();
    const uint64_t pages_per_row = stripe / kPageSize;
    for (uint64_t p0 = 0; p0 < pages_per_row; ++p0) {
        for (uint64_t p1 = 0; p1 < pages_per_row; ++p1) {
            if (candidates.size() >= cfg.bruteForcePairCap)
                return candidates;
            candidates.push_back(
                {huge_page + r0 * stripe + p0 * kPageSize,
                 huge_page + r1 * stripe + p1 * kPageSize});
        }
    }
    return candidates;
}

void
MemoryProfiler::harvestFlips(const std::vector<dram::FlipEvent> &events,
                             uint64_t fill,
                             const std::vector<GuestPhysAddr> &aggressors,
                             GuestPhysAddr aggressor_hp,
                             ProfileResult &result)
{
    for (const dram::FlipEvent &event : events) {
        const uint64_t host_hp = event.wordAddr.hugePageBase().value();
        const auto it = hostToGuestHugePage.find(host_hp);
        if (it == hostToGuestHugePage.end()) {
            // Flip landed outside the attacker's scannable memory
            // (host kernel, another VM, boot RAM): invisible to the
            // attacker, potentially destructive to someone else.
            ++result.collateralFlips;
            continue;
        }
        const GuestPhysAddr victim_hp = it->second;
        const GuestPhysAddr word_gpa =
            victim_hp + event.wordAddr.hugePageOffset();

        const uint64_t key = word_gpa.value() * 64 + event.bitInWord;
        if (seen.count(key))
            continue;

        // Verify through a guest load, exactly as a scan would.
        auto value = machine.read64(word_gpa);
        if (!value || *value == fill)
            continue;
        const uint64_t diff = *value ^ fill;
        if (!(diff & (1ull << event.bitInWord)))
            continue;
        seen.insert(key);

        VulnerableBit bit;
        bit.wordGpa = word_gpa;
        bit.bitInWord = event.bitInWord;
        bit.direction = base::bit(fill, event.bitInWord)
            ? dram::FlipDirection::OneToZero
            : dram::FlipDirection::ZeroToOne;
        bit.victimHugePage = victim_hp;
        bit.aggressorHugePage = aggressor_hp;
        bit.aggressors = aggressors;

        // Repair the pattern so later combinations scan clean.
        // hh-lint: allow(status-discard) -- best-effort repair of a profiled page; the next scan re-detects residue
        (void)machine.write64(word_gpa, fill);

        bit.stable = retestStability(bit, fill);

        bit.exploitable = bit.bitInWord >= cfg.exploitLoBit
            && bit.bitInWord <= cfg.exploitHiBit;
        bit.releasable = bit.victimHugePage != bit.aggressorHugePage;
        if (bit.exploitable && bit.releasable)
            ++usableFound;

        result.bits.push_back(std::move(bit));
    }
}

bool
MemoryProfiler::retestStability(VulnerableBit &bit, uint64_t fill)
{
    for (unsigned repeat = 0; repeat < cfg.stabilityRepeats; ++repeat) {
        // hh-lint: allow(status-discard) -- retest fill; the read-back below is the actual check
        (void)machine.write64(bit.wordGpa, fill);
        (void)machine.hammer(bit.aggressors, cfg.hammerRounds);
        auto value = machine.read64(bit.wordGpa);
        if (!value)
            return false;
        if (!((*value ^ fill) & (1ull << bit.bitInWord))) {
            // hh-lint: allow(status-discard) -- best-effort repair before reporting instability
            (void)machine.write64(bit.wordGpa, fill);
            return false;
        }
        // hh-lint: allow(status-discard) -- best-effort repair between repeats
        (void)machine.write64(bit.wordGpa, fill);
    }
    return true;
}

ProfileResult
MemoryProfiler::profile(const std::vector<GuestPhysAddr> &region)
{
    ProfileResult result;
    const base::SimTime start = clock.now();
    buildReverseIndex(region);
    seen.clear();
    usableFound = 0;

    const size_t region_pages = region.size() * kPagesPerHugePage;
    // 1->0 flips need memory full of ones; 0->1 needs zeros.
    const uint64_t patterns[2] = {~0ull, 0ull};

    bool done = false;
    for (uint64_t fill : patterns) {
        if (done)
            break;
        for (GuestPhysAddr hp : region)
            (void)machine.fillHugePage(hp, fill);

        for (GuestPhysAddr hp : region) {
            if (done)
                break;
            for (bool top : {false, true}) {
                if (done)
                    break;
                for (const auto &pair : aggressorCandidates(hp, top)) {
                    auto events =
                        machine.hammerCollect(pair, cfg.hammerRounds);
                    ++result.combinations;
                    // The real attacker follows every combination
                    // with a scan of all other 2 MB regions (Section
                    // 5.1); the simulator already knows the scan's
                    // outcome from the flip events, so it charges the
                    // scan's virtual time and verifies only the
                    // affected words through guest loads.
                    clock.advance(
                        static_cast<base::SimTime>(region_pages)
                        * machine.dramTiming().pageScanCost);
                    harvestFlips(events, fill, pair, hp, result);
                    if (cfg.stopAfterExploitable
                        && usableFound >= cfg.stopAfterExploitable) {
                        done = true;
                        break;
                    }
                }
            }
        }
    }

    result.elapsed = clock.now() - start;
    return result;
}

} // namespace hh::attack
