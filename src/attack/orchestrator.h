/**
 * @file
 * End-to-end HyperHammer attack orchestration (Sections 4 and 5.3).
 *
 * The attack is probabilistic: each attempt profiles (or relocates a
 * reusable profile), steers, hammers, and checks for escalation; on
 * failure the hugepage demotions are irreversible, so the VM must be
 * torn down and respawned for the next attempt. The orchestrator runs
 * that loop, reproduces the paper's profiling-reuse oracle (a debug
 * hypercall translating GPA to HPA, Section 5.3.2) and records the
 * Table 3 statistics.
 */

#ifndef HYPERHAMMER_ATTACK_ORCHESTRATOR_H
#define HYPERHAMMER_ATTACK_ORCHESTRATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/exploit.h"
#include "attack/page_steering.h"
#include "attack/profiler.h"
#include "attack/types.h"
#include "base/archive.h"
#include "base/stats.h"
#include "snapshot/checkpoint_policy.h"
#include "sys/host_system.h"

namespace hh::mitigate {
class DefenseSet;
} // namespace hh::mitigate

namespace hh::attack {

/** Whole-attack tunables (defaults follow Section 5.3.2). */
struct AttackConfig
{
    /** Vulnerable bits targeted per attempt (paper: 12). */
    unsigned bitsPerAttempt = 12;
    /**
     * Bytes of hugepages sprayed per attempt; 0 = every remaining
     * hugepage (the paper uses all memory not released).
     */
    uint64_t sprayBytes = 0;
    /** Give up after this many attempts. */
    unsigned maxAttempts = 1'000;
    /**
     * Per-phase retries when injected faults are detected (lost flips
     * after hammering, steering misses / refused unplugs after the
     * release step). Retries never trigger on the fault-free path, so
     * a null FaultPlan keeps pre-fault behaviour bit for bit.
     */
    unsigned maxPhaseRetries = 3;
    /** Initial retry backoff (virtual time); doubles per retry. */
    base::SimTime retryBackoff = 10 * base::kMillisecond;
    /**
     * Consecutive attempts with zero relocatable targets (under fault
     * injection) before run() falls back to re-profiling.
     */
    unsigned reprofileAfterEmpty = 3;
    ProfilerConfig profiler;
    SteeringConfig steering;
    ExploitConfig exploit;
};

/** A profiled bit in host-physical terms (the reusable profile). */
struct HostVulnBit
{
    HostPhysAddr wordHpa{0};
    unsigned bitInWord = 0;
    dram::FlipDirection direction = dram::FlipDirection::OneToZero;
    bool stable = false;
    std::vector<HostPhysAddr> aggressorHpas;
};

/** What happened in one attempt. */
struct AttemptOutcome
{
    bool success = false;
    unsigned bitsTargeted = 0;
    uint64_t releasedSubBlocks = 0;
    uint64_t demotions = 0;
    uint64_t changedPages = 0;
    uint64_t epteCandidates = 0;
    base::SimTime duration = 0;
    /** Phase retries taken after detected faults. */
    unsigned retries = 0;
    /** Virtual time spent in retry backoff. */
    base::SimTime backoffTime = 0;
    /** Faults the host injector fired during this attempt. */
    uint64_t faultsFired = 0;
};

/**
 * Mergeable per-attempt aggregates (the Table 3 columns). Each trial
 * produces its own instance; the engine folds them together in trial
 * order, so the merged numbers are bitwise-identical for any thread
 * count.
 */
struct BatchAggregates
{
    base::RunningStats attemptSeconds;
    base::RunningStats bitsTargeted;
    base::RunningStats releasedSubBlocks;
    base::RunningStats demotions;
    base::RunningStats changedPages;
    base::RunningStats epteCandidates;
    base::RunningStats retries;

    /** Fold one attempt in. */
    void add(const AttemptOutcome &outcome);
    /** Fold another aggregate in (RunningStats::merge per metric). */
    void merge(const BatchAggregates &other);
};

/**
 * Serialized size of one AttemptOutcome (count() validation):
 * success, bitsTargeted, five u64 counters + duration, retries,
 * backoffTime, faultsFired -- keep in sync with writeOutcome().
 */
constexpr uint64_t kOutcomeBytes = 1 + 4 + 5 * 8 + 4 + 8 + 8;

/** Append one outcome's canonical wire form to @p w. */
void writeOutcome(base::ArchiveWriter &w, const AttemptOutcome &outcome);

/** Read one outcome in writeOutcome() order. */
AttemptOutcome readOutcome(base::ArchiveReader &r);

/** Aggregate result of an attack run (the Table 3 row). */
struct AttackResult
{
    bool success = false;
    unsigned attempts = 0;
    base::SimTime totalTime = 0;
    base::SimTime profilingTime = 0;
    std::vector<AttemptOutcome> outcomes;
    /** Merged per-attempt statistics over @ref outcomes. */
    BatchAggregates stats;
    /**
     * How the run ended: Ok on escalation, LimitExceeded when
     * maxAttempts ran out, NotFound when no exploitable bits remained
     * (even after re-profiling). A non-Ok status still carries the
     * partial outcomes -- the attack degrades, it does not abort.
     */
    base::Status status = base::Status::success();
    /** True when the run ended early on a degraded path. */
    bool degraded = false;
    /** Re-profiling fallbacks taken during run(). */
    unsigned reprofiles = 0;
    /** Total faults the host injector fired across the run. */
    uint64_t faultsInjected = 0;
    /** Trials restored from a checkpoint rather than re-run. */
    unsigned resumedTrials = 0;

    /** Mean virtual duration of one attempt, seconds. */
    double avgAttemptSeconds() const;
};

/**
 * Raw product of a contiguous trial range [begin, end): the completed
 * outcome prefix (relative to @c begin, truncated at the range's first
 * success), how many of those trials were restored from a checkpoint,
 * and whether a stopAfterTrials stop cut the range short. This is the
 * shard hand-off unit: hh::shard wraps it in a manifest and
 * mergeShards() recombines ranges into the canonical AttackResult.
 */
struct TrialRangeResult
{
    std::vector<AttemptOutcome> outcomes;
    /** Trials restored from a checkpoint rather than re-run. */
    unsigned resumedTrials = 0;
    /** True when policy.stopAfterTrials ended the range early. */
    bool stopped = false;
};

/**
 * Expected end-to-end time (Section 5.3.3): profiling each attempt
 * until @p bits_needed bits are found, for an expected
 * @p expected_attempts attempts.
 *
 * @param full_profile_time    time of a full profiling pass
 * @param exploitable_found    exploitable bits that pass finds
 */
base::SimTime expectedEndToEndTime(base::SimTime full_profile_time,
                                   uint64_t exploitable_found,
                                   unsigned bits_needed,
                                   unsigned expected_attempts);

/**
 * Runs the full attack loop against one host.
 */
class HyperHammerAttack
{
  public:
    /**
     * @param host             the victim host
     * @param vm_config        how the attacker's VM is provisioned
     * @param attacker_mapping the DRAM mapping the attacker assumes
     *                         (recovered offline with DRAMDig)
     * @param config           tunables
     */
    HyperHammerAttack(sys::HostSystem &host, vm::VmConfig vm_config,
                      dram::AddressMapping attacker_mapping,
                      AttackConfig config);

    ~HyperHammerAttack();

    /**
     * Profile a freshly spawned VM and store the result in
     * host-physical terms for reuse across respawns. Must run before
     * run(). Returns the attacker-visible profile.
     */
    ProfileResult profilePhase();

    /** Run attempts until escalation succeeds or maxAttempts. */
    AttackResult run();

    /**
     * Monte-Carlo batch: up to @p attempts independent trials on up to
     * @p threads worker threads (0 = hardware concurrency).
     *
     * Every trial runs against its own cloned host -- same DRAM
     * geometry and fault seed (so the reusable host-physical profile
     * stays valid) but a per-trial boot-noise stream derived with
     * base::SeedSequence, the parallel analogue of the free-list
     * shuffling that makes serial respawns independent samples.
     * Outcomes and aggregates are merged in trial order and truncated
     * at the first success, exactly where a sequential loop would have
     * stopped, so the result is bitwise-identical for any thread
     * count. Requires profilePhase() first.
     */
    AttackResult runAttempts(unsigned attempts, unsigned threads);

    /**
     * runAttempts() with crash-safe checkpointing: trials run in
     * blocks of @p policy.everyTrials; after each block the completed
     * outcome prefix is written atomically (temp + fsync + rename,
     * previous checkpoint rotated to "<path>.prev"). With
     * policy.resume the campaign first restores the newest valid
     * checkpoint -- falling back to the rotated file when the primary
     * is corrupt -- and re-runs nothing it already completed.
     *
     * Trials are pure functions of (configuration, trial index), so
     * the merged result is bitwise-identical to an uncheckpointed run
     * for any block size, thread count or kill/resume history; a
     * checkpoint from a different configuration is rejected by
     * fingerprint. A stopAfterTrials stop returns a Busy status with
     * the partial outcomes.
     */
    AttackResult runAttempts(unsigned attempts, unsigned threads,
                             const snapshot::CheckpointPolicy &policy);

    /**
     * Run the contiguous trial range [begin, end) of a campaign:
     * every trial executes at its absolute index, so outcome
     * i of the returned prefix is the same pure function of
     * (configuration, begin + i) a single-process runAttempts(end)
     * computes for that trial. The range stops early at its first
     * success (later trials in the range are never observable in a
     * sequential run) and honours @p policy exactly like
     * runAttempts(): block-sized checkpoints carry @p begin so a
     * resumed shard rejects artifacts from a different range, and
     * policy.stopAfterTrials counts range-relative completions.
     *
     * This is the shard entry point -- callers other than
     * runAttempts() and hh::shard must merge the returned outcomes
     * through aggregateOutcomes()/shard::mergeShards(), never by
     * folding BatchAggregates directly (enforced by the
     * shard-merge-only lint rule). Requires profilePhase() first.
     */
    TrialRangeResult
    runTrialRange(uint64_t begin, uint64_t end, unsigned threads,
                  const snapshot::CheckpointPolicy &policy);

    /**
     * The sanctioned outcome -> AttackResult merge: truncates
     * @p outcomes at the first success (idempotent on already
     * truncated prefixes), folds BatchAggregates in trial order and
     * derives success/attempts/status/degraded exactly like a
     * sequential run. Both runAttempts() overloads and
     * shard::mergeShards() funnel through here, which is what makes
     * "bitwise-identical at any shard count x thread count" a single
     * code path rather than a test-enforced coincidence.
     * resumedTrials is left 0 -- range/shard bookkeeping belongs to
     * the caller.
     */
    static AttackResult
    aggregateOutcomes(std::vector<AttemptOutcome> outcomes);

    /**
     * Identity of a checkpointable campaign: host configuration, VM
     * provisioning, attack tunables and the host-physical profile.
     * Trials are pure functions of this plus the trial index, so a
     * matching fingerprint means stored outcomes are reusable --
     * across processes too; shard manifests embed it.
     */
    uint64_t campaignFingerprint() const;

    /**
     * The hypervisor secret the attack tries to read: a host kernel
     * page containing a magic value, planted at construction. Success
     * means the attacker read it through its own address space.
     */
    HostPhysAddr secretAddress() const { return secretAddr; }
    uint64_t secretValue() const { return secret; }

    /** The reusable host-physical profile (after profilePhase()). */
    const std::vector<HostVulnBit> &hostProfile() const { return bits; }

    /**
     * Attach the defense stack this campaign runs against (null
     * detaches). The orchestrator does not apply defenses -- their
     * config transforms act before host construction -- but an
     * attached stack becomes part of the campaign identity: the
     * fingerprint covers its knobs, and checkpoints carry its state,
     * so outcomes recorded under one defense configuration can never
     * resume into another. The caller keeps ownership; the stack must
     * outlive the campaign.
     */
    void
    attachDefenses(mitigate::DefenseSet *defense_set)
    {
        defenses = defense_set;
    }

    /** The attached defense stack; null when undefended. */
    mitigate::DefenseSet *attachedDefenses() const { return defenses; }

  private:
    sys::HostSystem &host;
    vm::VmConfig vmCfg;
    dram::AddressMapping mapping;
    AttackConfig cfg;
    /** Borrowed defense stack; travels via fingerprint + checkpoint. */
    mitigate::DefenseSet *defenses = nullptr;

    std::vector<HostVulnBit> bits;
    Pfn secretFrame = kInvalidPfn;
    HostPhysAddr secretAddr{0};
    uint64_t secret = 0;

    /** VM kept alive between profilePhase() and the first attempt. */
    std::unique_ptr<vm::VirtualMachine> machine;

    /**
     * Pristine un-booted world every trial forks from, built lazily
     * on the first runAttempts() call and shared (read-only) by all
     * worker threads. mutable because runTrial() is const and must be
     * able to rely on it.
     */
    mutable std::unique_ptr<const sys::HostSystem> trialTemplate;

    /** A hypervisor secret planted in a host's kernel memory. */
    struct PlantedSecret
    {
        Pfn frame = kInvalidPfn;
        HostPhysAddr addr{0};
        uint64_t value = 0;
    };

    /** Allocate a kernel page on @p on_host and hide a secret in it. */
    static PlantedSecret plantSecret(sys::HostSystem &on_host);

    /**
     * The paper's oracle: relocate the host-physical profile into the
     * current VM's guest address space via the debug hypercall.
     */
    std::vector<VulnerableBit>
    relocateTargets(vm::VirtualMachine &machine) const;

    /** One steering + hammer + detect + escalate attempt. */
    AttemptOutcome attemptOnce(vm::VirtualMachine &machine);

    /**
     * The same attempt against an arbitrary host (the trial engine
     * passes per-trial clones; run() passes the primary host).
     */
    AttemptOutcome attemptIn(sys::HostSystem &on_host,
                             vm::VirtualMachine &machine,
                             HostPhysAddr secret_addr,
                             uint64_t secret_value) const;

    /** One self-contained trial: clone host, spawn VM, attempt. */
    AttemptOutcome runTrial(uint64_t trial) const;

    /**
     * Rotate the old checkpoint and atomically write the new one.
     * @p begin is the absolute index of outcomes[0] (0 for a whole
     * campaign, the range start for a shard).
     */
    [[nodiscard]] base::Status
    saveCheckpoint(const std::string &path, uint64_t begin,
                   const std::vector<AttemptOutcome> &outcomes) const;

    /**
     * Restore outcomes from @p path, else from "<path>.prev". A
     * checkpoint whose stored range start differs from @p begin is
     * rejected like a fingerprint mismatch.
     */
    [[nodiscard]] base::Expected<std::vector<AttemptOutcome>>
    loadCheckpoint(const std::string &path, uint64_t begin) const;
};

} // namespace hh::attack

#endif // HYPERHAMMER_ATTACK_ORCHESTRATOR_H
