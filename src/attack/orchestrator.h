/**
 * @file
 * End-to-end HyperHammer attack orchestration (Sections 4 and 5.3).
 *
 * The attack is probabilistic: each attempt profiles (or relocates a
 * reusable profile), steers, hammers, and checks for escalation; on
 * failure the hugepage demotions are irreversible, so the VM must be
 * torn down and respawned for the next attempt. The orchestrator runs
 * that loop, reproduces the paper's profiling-reuse oracle (a debug
 * hypercall translating GPA to HPA, Section 5.3.2) and records the
 * Table 3 statistics.
 */

#ifndef HYPERHAMMER_ATTACK_ORCHESTRATOR_H
#define HYPERHAMMER_ATTACK_ORCHESTRATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/exploit.h"
#include "attack/page_steering.h"
#include "attack/profiler.h"
#include "attack/types.h"
#include "sys/host_system.h"

namespace hh::attack {

/** Whole-attack tunables (defaults follow Section 5.3.2). */
struct AttackConfig
{
    /** Vulnerable bits targeted per attempt (paper: 12). */
    unsigned bitsPerAttempt = 12;
    /**
     * Bytes of hugepages sprayed per attempt; 0 = every remaining
     * hugepage (the paper uses all memory not released).
     */
    uint64_t sprayBytes = 0;
    /** Give up after this many attempts. */
    unsigned maxAttempts = 1'000;
    ProfilerConfig profiler;
    SteeringConfig steering;
    ExploitConfig exploit;
};

/** A profiled bit in host-physical terms (the reusable profile). */
struct HostVulnBit
{
    HostPhysAddr wordHpa{0};
    unsigned bitInWord = 0;
    dram::FlipDirection direction = dram::FlipDirection::OneToZero;
    bool stable = false;
    std::vector<HostPhysAddr> aggressorHpas;
};

/** What happened in one attempt. */
struct AttemptOutcome
{
    bool success = false;
    unsigned bitsTargeted = 0;
    uint64_t releasedSubBlocks = 0;
    uint64_t demotions = 0;
    uint64_t changedPages = 0;
    uint64_t epteCandidates = 0;
    base::SimTime duration = 0;
};

/** Aggregate result of an attack run (the Table 3 row). */
struct AttackResult
{
    bool success = false;
    unsigned attempts = 0;
    base::SimTime totalTime = 0;
    base::SimTime profilingTime = 0;
    std::vector<AttemptOutcome> outcomes;

    /** Mean virtual duration of one attempt, seconds. */
    double avgAttemptSeconds() const;
};

/**
 * Expected end-to-end time (Section 5.3.3): profiling each attempt
 * until @p bits_needed bits are found, for an expected
 * @p expected_attempts attempts.
 *
 * @param full_profile_time    time of a full profiling pass
 * @param exploitable_found    exploitable bits that pass finds
 */
base::SimTime expectedEndToEndTime(base::SimTime full_profile_time,
                                   uint64_t exploitable_found,
                                   unsigned bits_needed,
                                   unsigned expected_attempts);

/**
 * Runs the full attack loop against one host.
 */
class HyperHammerAttack
{
  public:
    /**
     * @param host             the victim host
     * @param vm_config        how the attacker's VM is provisioned
     * @param attacker_mapping the DRAM mapping the attacker assumes
     *                         (recovered offline with DRAMDig)
     * @param config           tunables
     */
    HyperHammerAttack(sys::HostSystem &host, vm::VmConfig vm_config,
                      dram::AddressMapping attacker_mapping,
                      AttackConfig config);

    ~HyperHammerAttack();

    /**
     * Profile a freshly spawned VM and store the result in
     * host-physical terms for reuse across respawns. Must run before
     * run(). Returns the attacker-visible profile.
     */
    ProfileResult profilePhase();

    /** Run attempts until escalation succeeds or maxAttempts. */
    AttackResult run();

    /**
     * The hypervisor secret the attack tries to read: a host kernel
     * page containing a magic value, planted at construction. Success
     * means the attacker read it through its own address space.
     */
    HostPhysAddr secretAddress() const { return secretAddr; }
    uint64_t secretValue() const { return secret; }

    /** The reusable host-physical profile (after profilePhase()). */
    const std::vector<HostVulnBit> &hostProfile() const { return bits; }

  private:
    sys::HostSystem &host;
    vm::VmConfig vmCfg;
    dram::AddressMapping mapping;
    AttackConfig cfg;

    std::vector<HostVulnBit> bits;
    Pfn secretFrame = kInvalidPfn;
    HostPhysAddr secretAddr{0};
    uint64_t secret = 0;

    /** VM kept alive between profilePhase() and the first attempt. */
    std::unique_ptr<vm::VirtualMachine> machine;

    /**
     * The paper's oracle: relocate the host-physical profile into the
     * current VM's guest address space via the debug hypercall.
     */
    std::vector<VulnerableBit>
    relocateTargets(vm::VirtualMachine &machine) const;

    /** One steering + hammer + detect + escalate attempt. */
    AttemptOutcome attemptOnce(vm::VirtualMachine &machine);
};

} // namespace hh::attack

#endif // HYPERHAMMER_ATTACK_ORCHESTRATOR_H
