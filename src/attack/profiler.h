/**
 * @file
 * Memory profiling (Section 4.1, evaluated in Section 5.1 / Table 1).
 *
 * The attacker cannot learn host physical addresses, but with THP both
 * the guest and host back memory with 2 MB hugepages, so the low 21
 * bits of a guest address survive translation. Since the reverse-
 * engineered bank functions of both evaluation CPUs use only those bits
 * (plus row bits whose *relative* values inside a hugepage are known),
 * the attacker can select two aggressor rows in the same bank at the
 * border of each hugepage, hammer them single-sided, and scan the rest
 * of its memory for flips.
 *
 * The profiler hammers, for every hugepage, both borders and all bank
 * labels, with both fill patterns (0xff.. to expose 1->0 flips, 0x00..
 * for 0->1), re-tests each discovered bit for stability, and filters
 * for exploitability.
 */

#ifndef HYPERHAMMER_ATTACK_PROFILER_H
#define HYPERHAMMER_ATTACK_PROFILER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "attack/types.h"
#include "base/sim_clock.h"
#include "dram/address_mapping.h"
#include "vm/virtual_machine.h"

namespace hh::attack {

/**
 * Profiles the memory of one VM for exploitable Rowhammer bits.
 */
class MemoryProfiler
{
  public:
    /**
     * @param machine  the attacker's VM
     * @param clock    virtual clock to charge scan time against
     * @param mapping  the DRAM address mapping the attacker believes
     *                 in (recovered via DRAMDig on an identical
     *                 machine); only its low-21-bit behaviour is used
     * @param config   tunables
     */
    MemoryProfiler(vm::VirtualMachine &machine, base::SimClock &clock,
                   dram::AddressMapping mapping, ProfilerConfig config);

    /**
     * Profile the given hugepages (typically the VM's virtio-mem
     * region). Returns all discovered bits with classification.
     */
    ProfileResult profile(const std::vector<GuestPhysAddr> &region);

    /**
     * The aggressor-pair candidates the profiler would hammer for one
     * hugepage border: one same-bank pair per bank label when the
     * bank function is known, a page-pair grid otherwise. Exposed for
     * tests and the profiling ablation.
     */
    std::vector<std::vector<GuestPhysAddr>>
    aggressorCandidates(GuestPhysAddr huge_page, bool top_border) const;

  private:
    vm::VirtualMachine &machine;
    base::SimClock &clock;
    dram::AddressMapping mapping;
    ProfilerConfig cfg;

    /** Host hugepage frame -> guest hugepage GPA (simulation index). */
    std::unordered_map<uint64_t, GuestPhysAddr> hostToGuestHugePage;

    /** Already recorded (wordGpa, bit) pairs. */
    std::unordered_set<uint64_t> seen;

    /** Exploitable-and-releasable bits found so far (early stop). */
    unsigned usableFound = 0;

    void buildReverseIndex(const std::vector<GuestPhysAddr> &region);

    /** Number of local rows per hugepage (2 MB / row stripe). */
    unsigned localRows() const;

    /**
     * First address in local row @p local_row of @p huge_page whose
     * bank label is @p label. Bank labels are relative (shifted by an
     * unknown per-hugepage constant), which is sufficient to identify
     * same-bank pairs within one hugepage.
     */
    GuestPhysAddr rowBankAddress(GuestPhysAddr huge_page,
                                 unsigned local_row,
                                 dram::BankId label) const;

    /**
     * Process flip events from one hammer burst: verify each through
     * guest loads, classify, repair the pattern, and append to
     * @p result. @p fill is the pattern the region currently holds.
     */
    void harvestFlips(const std::vector<dram::FlipEvent> &events,
                      uint64_t fill,
                      const std::vector<GuestPhysAddr> &aggressors,
                      GuestPhysAddr aggressor_hp, ProfileResult &result);

    /** Stability re-test of one discovered bit. */
    bool retestStability(VulnerableBit &bit, uint64_t fill);
};

} // namespace hh::attack

#endif // HYPERHAMMER_ATTACK_PROFILER_H
