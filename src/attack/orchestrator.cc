#include "orchestrator.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "base/archive.h"
#include "base/log.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "mitigate/defense.h"
#include "snapshot/snapshot_format.h"

namespace hh::attack {

void
BatchAggregates::add(const AttemptOutcome &outcome)
{
    attemptSeconds.add(base::SimClock::toSeconds(outcome.duration));
    bitsTargeted.add(static_cast<double>(outcome.bitsTargeted));
    releasedSubBlocks.add(
        static_cast<double>(outcome.releasedSubBlocks));
    demotions.add(static_cast<double>(outcome.demotions));
    changedPages.add(static_cast<double>(outcome.changedPages));
    epteCandidates.add(static_cast<double>(outcome.epteCandidates));
    retries.add(static_cast<double>(outcome.retries));
}

void
BatchAggregates::merge(const BatchAggregates &other)
{
    attemptSeconds.merge(other.attemptSeconds);
    bitsTargeted.merge(other.bitsTargeted);
    releasedSubBlocks.merge(other.releasedSubBlocks);
    demotions.merge(other.demotions);
    changedPages.merge(other.changedPages);
    epteCandidates.merge(other.epteCandidates);
    retries.merge(other.retries);
}

double
AttackResult::avgAttemptSeconds() const
{
    if (outcomes.empty())
        return 0.0;
    // Durations are integer SimTime ticks: sum them exactly as
    // integers and convert once, so the mean is order-independent.
    base::SimTime total = 0;
    for (const AttemptOutcome &outcome : outcomes)
        total += outcome.duration;
    return base::SimClock::toSeconds(total)
        / static_cast<double>(outcomes.size());
}

base::SimTime
expectedEndToEndTime(base::SimTime full_profile_time,
                     uint64_t exploitable_found, unsigned bits_needed,
                     unsigned expected_attempts)
{
    if (exploitable_found == 0)
        return 0;
    // Profiling can stop once bits_needed bits are found, i.e. after
    // bits_needed / exploitable_found of a full pass (Section 5.3.3).
    const double per_attempt_profile =
        static_cast<double>(full_profile_time)
        * static_cast<double>(bits_needed)
        / static_cast<double>(exploitable_found);
    return static_cast<base::SimTime>(per_attempt_profile
                                      * expected_attempts);
}

HyperHammerAttack::HyperHammerAttack(sys::HostSystem &host,
                                     vm::VmConfig vm_config,
                                     dram::AddressMapping attacker_mapping,
                                     AttackConfig config)
    : host(host),
      vmCfg(vm_config),
      mapping(std::move(attacker_mapping)),
      cfg(config)
{
    const PlantedSecret planted = plantSecret(host);
    secretFrame = planted.frame;
    secretAddr = planted.addr;
    secret = planted.value;
}

HyperHammerAttack::PlantedSecret
HyperHammerAttack::plantSecret(sys::HostSystem &on_host)
{
    // Plant the hypervisor secret the attacker will try to reach:
    // a host kernel page holding a magic value.
    auto frame = on_host.buddy().allocPages(
        0, mm::MigrateType::Unmovable, mm::PageUse::KernelData);
    // Under fault injection an AllocFail can land on this very
    // allocation; retry across a few occurrences instead of dying.
    // The fault-free path keeps the original single-shot fatal.
    for (unsigned r = 0; !frame && on_host.faults() != nullptr && r < 16;
         ++r)
        frame = on_host.buddy().allocPages(
            0, mm::MigrateType::Unmovable, mm::PageUse::KernelData);
    if (!frame)
        base::fatal("cannot allocate the host secret page");
    PlantedSecret planted;
    planted.frame = *frame;
    planted.addr = HostPhysAddr(planted.frame * kPageSize + 0x5e8);
    planted.value = base::mix64(0x5ec7e7, on_host.config().seed) | 1;
    on_host.dram().write64(planted.addr, planted.value);
    return planted;
}

HyperHammerAttack::~HyperHammerAttack()
{
    machine.reset();
    if (secretFrame != kInvalidPfn) {
        host.dram().backend().clearPage(secretFrame);
        host.buddy().freePages(secretFrame, 0);
    }
}

ProfileResult
HyperHammerAttack::profilePhase()
{
    machine = host.createVm(vmCfg);

    MemoryProfiler profiler(*machine, host.clock(), mapping,
                            cfg.profiler);
    // Profile the virtio-mem region only: boot RAM cannot be released.
    std::vector<GuestPhysAddr> region;
    for (GuestPhysAddr hp : machine->hugePageGpas()) {
        if (machine->memDevice_().contains(hp))
            region.push_back(hp);
    }
    const ProfileResult result = profiler.profile(region);

    // Convert to host-physical records for reuse across respawns.
    bits.clear();
    for (const VulnerableBit &bit : result.bits) {
        // Only bits that are both in the exploitable range and
        // releasable (victim and aggressors in different host
        // hugepages -- a host-physical property that survives
        // respawns) are worth keeping.
        if (!bit.exploitable || !bit.releasable)
            continue;
        HostVulnBit record;
        auto word_hpa = machine->debugTranslate(bit.wordGpa);
        if (!word_hpa)
            continue;
        record.wordHpa = *word_hpa;
        record.bitInWord = bit.bitInWord;
        record.direction = bit.direction;
        record.stable = bit.stable;
        bool ok = true;
        for (GuestPhysAddr aggressor : bit.aggressors) {
            auto hpa = machine->debugTranslate(aggressor);
            if (!hpa) {
                ok = false;
                break;
            }
            record.aggressorHpas.push_back(*hpa);
        }
        if (ok)
            bits.push_back(std::move(record));
    }
    // Prefer stable bits when an attempt can only use twelve.
    std::stable_sort(bits.begin(), bits.end(),
                     [](const HostVulnBit &a, const HostVulnBit &b) {
                         return a.stable > b.stable;
                     });
    return result;
}

std::vector<VulnerableBit>
HyperHammerAttack::relocateTargets(vm::VirtualMachine &current) const
{
    // Build host-hugepage -> guest-hugepage index via the hypercall.
    std::unordered_map<uint64_t, GuestPhysAddr> host_to_guest;
    for (GuestPhysAddr hp : current.hugePageGpas()) {
        auto hpa = current.debugTranslate(hp);
        if (hpa)
            host_to_guest[hpa->hugePageBase().value()] = hp;
    }

    auto locate = [&](HostPhysAddr hpa) -> base::Expected<GuestPhysAddr> {
        const auto it =
            host_to_guest.find(hpa.hugePageBase().value());
        if (it == host_to_guest.end())
            return base::ErrorCode::NotFound;
        return it->second + hpa.hugePageOffset();
    };

    // Each released bit needs ~512 EPT pages sprayed over it, plus
    // one block's worth of margin for the small-order leftovers, so
    // cap the batch at H/512 - 1 for H usable hugepages (the paper's
    // "1 GB of guest memory per vulnerable bit", Section 4.3: 12 bits
    // from a 13 GB guest).
    const uint64_t hugepages = current.memorySize() / kHugePageSize;
    const uint64_t groups = hugepages / kEntriesPerTable;
    const unsigned spray_cap = static_cast<unsigned>(
        std::max<uint64_t>(1, groups > 1 ? groups - 1 : 1));
    const unsigned batch = std::min(cfg.bitsPerAttempt, spray_cap);

    std::vector<VulnerableBit> targets;
    for (const HostVulnBit &record : bits) {
        if (targets.size() >= batch)
            break;
        auto word_gpa = locate(record.wordHpa);
        if (!word_gpa)
            continue;
        // The victim hugepage must be releasable (virtio-mem region).
        const GuestPhysAddr victim_hp = word_gpa->hugePageBase();
        if (!current.memDevice_().contains(victim_hp))
            continue;
        VulnerableBit bit;
        bit.wordGpa = *word_gpa;
        bit.bitInWord = record.bitInWord;
        bit.direction = record.direction;
        bit.stable = record.stable;
        bit.victimHugePage = victim_hp;
        bool ok = true;
        for (HostPhysAddr aggressor : record.aggressorHpas) {
            auto gpa = locate(aggressor);
            if (!gpa || gpa->hugePageBase() == victim_hp) {
                ok = false;
                break;
            }
            bit.aggressors.push_back(*gpa);
        }
        if (!ok || bit.aggressors.empty())
            continue;
        bit.aggressorHugePage = bit.aggressors.front().hugePageBase();
        bit.exploitable = true;
        targets.push_back(std::move(bit));
    }
    return targets;
}

AttemptOutcome
HyperHammerAttack::attemptOnce(vm::VirtualMachine &current)
{
    return attemptIn(host, current, secretAddr, secret);
}

AttemptOutcome
HyperHammerAttack::attemptIn(sys::HostSystem &on_host,
                             vm::VirtualMachine &current,
                             HostPhysAddr secret_addr,
                             uint64_t secret_value) const
{
    AttemptOutcome outcome;
    fault::FaultInjector *injector = on_host.faults();
    const uint64_t fired_before =
        injector != nullptr ? injector->totalFired() : 0;
    const base::SimTime start = on_host.clock().now();

    const std::vector<VulnerableBit> targets = relocateTargets(current);
    outcome.bitsTargeted = static_cast<unsigned>(targets.size());
    if (targets.empty()) {
        outcome.duration = on_host.clock().now() - start;
        return outcome;
    }

    PageSteering steering(current, on_host.clock(), cfg.steering,
                          injector);
    const uint64_t spray = cfg.sprayBytes
        ? cfg.sprayBytes
        : current.memorySize(); // everything that remains

    // The steer() sequence, inlined so the release step can retry.
    // Retries are keyed on *detected* faults (misses / refused
    // unplugs), never on probabilistic outcomes, so with a null
    // injector this is the exact pre-fault call sequence.
    SteeringResult steered;
    const base::SimTime steer_start = on_host.clock().now();
    steered.iovaMappings = steering.exhaustNoisePages();
    steering.releaseVulnerable(targets, steered);
    if (injector != nullptr) {
        base::SimTime backoff = cfg.retryBackoff;
        uint64_t new_faults =
            steered.steerMisses + steered.failedUnplugs;
        for (unsigned r = 0; r < cfg.maxPhaseRetries && new_faults > 0;
             ++r) {
            on_host.clock().advance(backoff);
            outcome.backoffTime += backoff;
            backoff *= 2;
            ++outcome.retries;
            const uint64_t before =
                steered.steerMisses + steered.failedUnplugs;
            steering.releaseVulnerable(targets, steered);
            new_faults =
                steered.steerMisses + steered.failedUnplugs - before;
        }
    }
    std::unordered_set<uint64_t> excluded;
    for (const GuestPhysAddr &hp : steered.releasedHugePages)
        excluded.insert(hp.value());
    steered.demotions = steering.sprayEptes(spray, excluded);
    steered.sprayedBytes = steered.demotions * kHugePageSize;
    steered.elapsed = on_host.clock().now() - steer_start;
    outcome.releasedSubBlocks = steered.releasedSubBlocks;
    outcome.demotions = steered.demotions;

    Exploiter exploiter(current, on_host.clock(), cfg.exploit,
                        injector);
    exploiter.markPages(current.hugePageGpas());
    exploiter.hammerTargets(targets);
    if (injector != nullptr) {
        base::SimTime backoff = cfg.retryBackoff;
        uint64_t new_lost = exploiter.lostFlips();
        for (unsigned r = 0; r < cfg.maxPhaseRetries && new_lost > 0;
             ++r) {
            on_host.clock().advance(backoff);
            outcome.backoffTime += backoff;
            backoff *= 2;
            ++outcome.retries;
            const uint64_t before = exploiter.lostFlips();
            exploiter.hammerTargets(targets);
            new_lost = exploiter.lostFlips() - before;
        }
    }

    const std::vector<GuestPhysAddr> changed =
        exploiter.detectMappingChanges();
    outcome.changedPages = changed.size();

    for (GuestPhysAddr page : changed) {
        if (!exploiter.looksLikeEptPage(page))
            continue;
        ++outcome.epteCandidates;
        auto escalation = exploiter.validateAndEscalate(page);
        if (!escalation)
            continue;
        // Prove arbitrary host access: read the hypervisor secret.
        auto value = exploiter.readHost(*escalation, secret_addr);
        if (value && *value == secret_value) {
            outcome.success = true;
            break;
        }
    }

    outcome.duration = on_host.clock().now() - start;
    if (injector != nullptr)
        outcome.faultsFired = injector->totalFired() - fired_before;
    return outcome;
}

AttackResult
HyperHammerAttack::run()
{
    AttackResult result;
    const base::SimTime run_start = host.clock().now();
    // No exploitable bits (profilePhase() not run, or a fault-heavy
    // profile came back empty): degrade to a partial result instead
    // of asserting.
    if (bits.empty()) {
        result.status = base::ErrorCode::NotFound;
        result.degraded = true;
        if (host.faults() != nullptr)
            result.faultsInjected = host.faults()->totalFired();
        return result;
    }

    unsigned empty_streak = 0;
    for (unsigned attempt = 0; attempt < cfg.maxAttempts; ++attempt) {
        const base::SimTime attempt_start = host.clock().now();
        if (!machine)
            machine = host.createVm(vmCfg);
        AttemptOutcome outcome = attemptOnce(*machine);
        // An attempt's cost includes the VM (re)spawn, which dominates
        // in practice (Table 3's ~4 min average).
        outcome.duration = host.clock().now() - attempt_start;
        ++result.attempts;
        result.outcomes.push_back(outcome);
        // Demotion is irreversible: the VM must respawn either way.
        machine.reset();
        if (outcome.success) {
            result.success = true;
            break;
        }
        // Re-profiling fallback: only under fault injection (so the
        // fault-free path is untouched), and only after several
        // consecutive attempts found none of the profiled cells.
        if (host.faults() != nullptr) {
            empty_streak =
                outcome.bitsTargeted == 0 ? empty_streak + 1 : 0;
            if (empty_streak >= cfg.reprofileAfterEmpty) {
                ++result.reprofiles;
                empty_streak = 0;
                base::inform("attack: lost the exploitable cells; "
                             "re-profiling");
                (void)profilePhase();
                if (bits.empty()) {
                    result.status = base::ErrorCode::NotFound;
                    result.degraded = true;
                    break;
                }
            }
        }
    }

    for (const AttemptOutcome &outcome : result.outcomes)
        result.stats.add(outcome);
    // Includes VM respawn time, which dominates real attempts.
    result.totalTime = host.clock().now() - run_start;
    if (result.success)
        result.status = base::Status::success();
    else if (result.status.ok())
        result.status = base::ErrorCode::LimitExceeded;
    if (host.faults() != nullptr)
        result.faultsInjected = host.faults()->totalFired();
    // Degraded means "ended without escalation while faults were
    // interfering" -- a fault-free LimitExceeded is just a failed
    // attack, not a degraded one.
    if (result.success)
        result.degraded = false;
    else if (result.faultsInjected > 0)
        result.degraded = true;
    return result;
}

AttemptOutcome
HyperHammerAttack::runTrial(uint64_t trial) const
{
    // Fork the trial world from the shared pristine template.
    // dram.seed is kept, so the forked DIMM has the
    // identical fault map and the host-physical profile remains valid;
    // the top-level seed moves to a per-trial stream, giving each
    // trial its own boot-noise and free-list history -- the parallel
    // analogue of the churn that makes serial respawns independent
    // samples rather than replays.
    sys::SystemConfig trial_cfg = host.config();
    trial_cfg.seed = base::SeedSequence(host.config().seed).seed(trial);
    HH_ASSERT(trialTemplate != nullptr);
    const std::unique_ptr<sys::HostSystem> forked =
        sys::HostSystem::forkTrial(*trialTemplate, trial_cfg);
    sys::HostSystem &trial_host = *forked;

    const PlantedSecret planted = plantSecret(trial_host);
    const base::SimTime start = trial_host.clock().now();
    std::unique_ptr<vm::VirtualMachine> current =
        trial_host.createVm(vmCfg);
    AttemptOutcome outcome =
        attemptIn(trial_host, *current, planted.addr, planted.value);
    // Like serial attempts, the cost includes the VM spawn, which
    // dominates in practice (Table 3's ~4 min average).
    outcome.duration = trial_host.clock().now() - start;
    return outcome;
}

AttackResult
HyperHammerAttack::runAttempts(unsigned attempts, unsigned threads)
{
    return runAttempts(attempts, threads, snapshot::CheckpointPolicy{});
}

void
writeOutcome(base::ArchiveWriter &w, const AttemptOutcome &outcome)
{
    w.boolean(outcome.success);
    w.u32(outcome.bitsTargeted);
    w.u64(outcome.releasedSubBlocks);
    w.u64(outcome.demotions);
    w.u64(outcome.changedPages);
    w.u64(outcome.epteCandidates);
    w.u64(outcome.duration);
    w.u32(outcome.retries);
    w.u64(outcome.backoffTime);
    w.u64(outcome.faultsFired);
}

AttemptOutcome
readOutcome(base::ArchiveReader &r)
{
    AttemptOutcome outcome;
    outcome.success = r.boolean();
    outcome.bitsTargeted = r.u32();
    outcome.releasedSubBlocks = r.u64();
    outcome.demotions = r.u64();
    outcome.changedPages = r.u64();
    outcome.epteCandidates = r.u64();
    outcome.duration = r.u64();
    outcome.retries = r.u32();
    outcome.backoffTime = r.u64();
    outcome.faultsFired = r.u64();
    return outcome;
}

uint64_t
HyperHammerAttack::campaignFingerprint() const
{
    base::ArchiveWriter w;
    w.u64(host.configFingerprint());
    w.u64(vmCfg.bootMemBytes);
    w.u64(vmCfg.virtioMemRegionSize);
    w.u64(vmCfg.virtioMemPlugged);
    w.u32(vmCfg.passthroughDevices);
    w.boolean(vmCfg.balloon);
    w.boolean(vmCfg.quarantine.enabled);
    w.u64(vmCfg.quarantine.toleranceSubBlocks);
    w.u64(vmCfg.quarantine.graceRequests);
    w.u64(vmCfg.quarantine.windowRequests);
    w.u32(cfg.bitsPerAttempt);
    w.u64(cfg.sprayBytes);
    w.u32(cfg.maxAttempts);
    w.u32(cfg.maxPhaseRetries);
    w.u64(cfg.retryBackoff);
    w.u32(cfg.reprofileAfterEmpty);
    w.boolean(cfg.exploit.combinedHammer);
    // The host-physical profile folds in every remaining tunable that
    // shaped it (profiler config, DRAM fault map, boot noise), so the
    // fingerprint changes whenever trial outcomes could.
    w.u64(bits.size());
    for (const HostVulnBit &bit : bits) {
        w.u64(bit.wordHpa.value());
        w.u32(bit.bitInWord);
        w.u8(static_cast<uint8_t>(bit.direction));
        w.boolean(bit.stable);
        w.u64(bit.aggressorHpas.size());
        for (HostPhysAddr hpa : bit.aggressorHpas)
            w.u64(hpa.value());
    }
    // The defense stack is part of the campaign identity: trials run
    // against a defended world, so outcomes are only reusable when the
    // same defenses (with the same knobs) were active.
    w.boolean(defenses != nullptr);
    if (defenses != nullptr)
        defenses->fingerprint(w);
    return w.fingerprint();
}

base::Status
HyperHammerAttack::saveCheckpoint(
    const std::string &path, uint64_t begin,
    const std::vector<AttemptOutcome> &outcomes) const
{
    base::ArchiveWriter w;
    w.u64(campaignFingerprint());
    w.u64(begin);
    w.u64(outcomes.size());
    for (const AttemptOutcome &outcome : outcomes)
        writeOutcome(w, outcome);
    // v4: the defense-state block. The fingerprint pins the defense
    // *configuration*; this block carries the stack's state so a
    // resumed campaign restores exactly the defended world it left.
    w.boolean(defenses != nullptr);
    if (defenses != nullptr)
        defenses->saveState(w);
    // Keep the previous checkpoint as the fallback file; the rename
    // fails harmlessly when this is the first checkpoint.
    const std::string prev = path + snapshot::kCheckpointPrevSuffix;
    (void)std::rename(path.c_str(), prev.c_str());
    return base::saveArchiveFile(path, snapshot::kCheckpointMagic,
                                 snapshot::kSnapshotFormatVersion,
                                 w.buffer());
}

base::Expected<std::vector<AttemptOutcome>>
HyperHammerAttack::loadCheckpoint(const std::string &path,
                                  uint64_t begin) const
{
    const auto load_one = [this, begin](const std::string &file)
        -> base::Expected<std::vector<AttemptOutcome>> {
        auto loaded = base::loadArchiveFile(
            file, snapshot::kCheckpointMagic,
            snapshot::kSnapshotFormatVersion,
            snapshot::kSnapshotFormatVersion);
        if (!loaded)
            return loaded.error();
        base::ArchiveReader r(loaded->payload);
        const uint64_t fingerprint = r.u64();
        const uint64_t stored_begin = r.u64();
        if (!r.ok())
            return base::ErrorCode::InvalidArgument;
        if (fingerprint != campaignFingerprint()) {
            base::warn("checkpoint '%s': campaign fingerprint mismatch"
                       " (different config or profile); ignoring",
                       file.c_str());
            return base::ErrorCode::InvalidArgument;
        }
        if (stored_begin != begin) {
            base::warn("checkpoint '%s': trial-range start %llu does "
                       "not match this range's %llu; ignoring",
                       file.c_str(),
                       static_cast<unsigned long long>(stored_begin),
                       static_cast<unsigned long long>(begin));
            return base::ErrorCode::InvalidArgument;
        }
        const uint64_t n = r.count(kOutcomeBytes);
        std::vector<AttemptOutcome> outcomes;
        outcomes.reserve(n);
        for (uint64_t i = 0; i < n && r.ok(); ++i)
            outcomes.push_back(readOutcome(r));
        if (!r.ok()) {
            base::warn("checkpoint '%s': malformed outcome records",
                       file.c_str());
            return base::ErrorCode::InvalidArgument;
        }
        // Defense-state block: attachment must agree (a defended
        // checkpoint never resumes undefended, or vice versa), and an
        // attached stack restores its own state.
        const bool stored_defended = r.boolean();
        if (!r.ok() || stored_defended != (defenses != nullptr)) {
            base::warn("checkpoint '%s': defense attachment mismatch "
                       "(stored %d, campaign %d); ignoring",
                       file.c_str(), stored_defended ? 1 : 0,
                       defenses != nullptr ? 1 : 0);
            return base::ErrorCode::InvalidArgument;
        }
        if (defenses != nullptr) {
            if (const base::Status loaded = defenses->loadState(r);
                !loaded.ok())
                return loaded.error();
        }
        if (!r.ok() || !r.atEnd()) {
            base::warn("checkpoint '%s': malformed defense block",
                       file.c_str());
            return base::ErrorCode::InvalidArgument;
        }
        return outcomes;
    };

    auto primary = load_one(path);
    if (primary)
        return primary;
    const std::string prev = path + snapshot::kCheckpointPrevSuffix;
    auto fallback = load_one(prev);
    if (fallback) {
        base::inform("checkpoint: resumed from fallback '%s'",
                     prev.c_str());
        return fallback;
    }
    return primary.error();
}

TrialRangeResult
HyperHammerAttack::runTrialRange(uint64_t begin, uint64_t end,
                                 unsigned threads,
                                 const snapshot::CheckpointPolicy &policy)
{
    HH_ASSERT(begin <= end);
    const uint64_t total = end - begin;
    if (threads == 0)
        threads = base::ThreadPool::defaultThreads();
    // Trials own their hosts; the profiling VM is not reusable here.
    machine.reset();

    TrialRangeResult range;
    // Outcomes accumulate as the completed range prefix, already
    // truncated at the range's first success (the sequential stopping
    // point -- for a whole campaign, the campaign's stopping point;
    // for a shard, mergeShards() re-truncates globally).
    std::vector<AttemptOutcome> &outcomes = range.outcomes;
    outcomes.reserve(total);
    if (policy.resume && !policy.path.empty()) {
        auto restored = loadCheckpoint(policy.path, begin);
        if (restored) {
            outcomes = std::move(*restored);
            if (outcomes.size() > total)
                outcomes.resize(total);
        } else if (restored.error() != base::ErrorCode::NotFound) {
            base::warn("checkpoint '%s': no valid checkpoint; "
                       "starting from trial %llu",
                       policy.path.c_str(),
                       static_cast<unsigned long long>(begin));
        }
    }
    range.resumedTrials = static_cast<unsigned>(outcomes.size());
    // First heartbeat before any work: a supervising dispatcher learns
    // the worker is alive even when trial 0 takes a full lease window.
    snapshot::touchHeartbeat(policy.heartbeatPath, outcomes.size());

    // Build the canonical template world once: every trial forks it
    // in O(pages touched) instead of rebuilding a host from scratch.
    // The template is pristine (un-booted), so it is identical for
    // every trial seed and can be shared across worker threads.
    if (!trialTemplate)
        trialTemplate =
            sys::HostSystem::makeForkTemplate(host.config());

    uint64_t first_success = total;
    for (uint64_t trial = 0; trial < outcomes.size(); ++trial) {
        if (outcomes[trial].success) {
            first_success = trial;
            break;
        }
    }

    // Run the remaining trials in checkpoint-sized blocks at their
    // absolute trial indices, so each outcome is the same pure
    // function of (config, trial) an unchunked single-process run
    // computes.
    uint64_t done = outcomes.size();
    const uint64_t block = policy.enabled()
        ? policy.everyTrials
        : std::max<uint64_t>(total, 1);
    while (done < total && first_success == total && !range.stopped) {
        const uint64_t todo = std::min<uint64_t>(block, total - done);
        std::vector<AttemptOutcome> chunk(todo);
        const uint64_t rel = base::parallelFindFirst(
            todo, threads, [&](uint64_t i) {
                chunk[i] = runTrial(begin + done + i);
                return chunk[i].success;
            });
        // Keep the complete prefix, truncated at the first success;
        // speculative trials past it are discarded (see
        // parallelFindFirst's completeness guarantee).
        const uint64_t keep = std::min<uint64_t>(todo, rel + 1);
        outcomes.insert(outcomes.end(), chunk.begin(),
                        chunk.begin()
                            + static_cast<std::ptrdiff_t>(keep));
        if (rel < todo)
            first_success = done + rel;
        done += keep;
        snapshot::touchHeartbeat(policy.heartbeatPath, done);
        if (policy.enabled()) {
            const base::Status saved =
                saveCheckpoint(policy.path, begin, outcomes);
            if (!saved.ok())
                base::warn("checkpoint '%s': save failed; campaign "
                           "continues unprotected",
                           policy.path.c_str());
            if (policy.stopAfterTrials != 0
                && done >= policy.stopAfterTrials && done < total
                && first_success == total)
                range.stopped = true; // simulated crash (test hook)
        }
    }
    return range;
}

AttackResult
HyperHammerAttack::aggregateOutcomes(std::vector<AttemptOutcome> outcomes)
{
    // Truncate at the first success: exactly where a sequential loop
    // stops. Idempotent on prefixes runTrialRange() already cut, and
    // what makes shard concatenation order-insensitive once sorted.
    for (uint64_t trial = 0; trial < outcomes.size(); ++trial) {
        if (outcomes[trial].success) {
            outcomes.resize(trial + 1);
            break;
        }
    }

    // Merge in trial order: a pure function of the outcome prefix,
    // hence independent of thread count, block size, shard layout and
    // resume history.
    AttackResult result;
    for (const AttemptOutcome &outcome : outcomes) {
        BatchAggregates one;
        one.add(outcome);
        result.stats.merge(one);
        result.totalTime += outcome.duration;
        result.faultsInjected += outcome.faultsFired;
    }
    result.attempts = static_cast<unsigned>(outcomes.size());
    result.success =
        !outcomes.empty() && outcomes.back().success;
    result.outcomes = std::move(outcomes);
    if (!result.success) {
        result.status = base::ErrorCode::LimitExceeded;
        result.degraded = result.faultsInjected > 0;
    }
    return result;
}

AttackResult
HyperHammerAttack::runAttempts(unsigned attempts, unsigned threads,
                               const snapshot::CheckpointPolicy &policy)
{
    if (bits.empty()) {
        AttackResult result;
        result.status = base::ErrorCode::NotFound;
        result.degraded = true;
        return result;
    }
    TrialRangeResult range =
        runTrialRange(0, attempts, threads, policy);
    const bool stopped = range.stopped;
    const unsigned resumed = range.resumedTrials;
    AttackResult result = aggregateOutcomes(std::move(range.outcomes));
    result.resumedTrials = resumed;
    if (stopped) {
        // An interrupted campaign is unfinished, not failed: report
        // Busy with the partial outcomes and no degradation verdict.
        result.status = base::ErrorCode::Busy;
        result.degraded = false;
    }
    return result;
}

} // namespace hh::attack
