/**
 * @file
 * Page-frame metadata, mirroring the parts of Linux's struct page that
 * the attack interacts with: free-list linkage, buddy order, migration
 * type, pinning, and a coarse "what is this page used for" tag that the
 * evaluation harness uses to count EPT/IOPT pages (Table 2).
 */

#ifndef HYPERHAMMER_MM_PAGE_H
#define HYPERHAMMER_MM_PAGE_H

#include <cstdint>

#include "base/types.h"

namespace hh::mm {

/**
 * Migration types (Section 2.4). Linux has more; the attack only
 * distinguishes unmovable allocations (page tables, IOPTs, pinned guest
 * memory) from movable ones, with reclaimable kept for realistic
 * fallback ordering.
 */
enum class MigrateType : uint8_t
{
    Unmovable = 0,
    Movable = 1,
    Reclaimable = 2,
};

/** Number of migrate types tracked in the free lists. */
constexpr unsigned kMigrateTypes = 3;

/** Largest order + 1 (Linux MAX_ORDER on x86-64, Section 2.3). */
constexpr unsigned kMaxOrder = 11;

/** Coarse usage tag for accounting and the Table 2 census. */
enum class PageUse : uint8_t
{
    Free = 0,
    KernelData,   ///< host kernel internal allocation
    PageCache,    ///< host page cache ("noise" pages)
    GuestMemory,  ///< backs a guest VM's RAM
    EptPage,      ///< holds extended-page-table entries
    IoptPage,     ///< holds IOMMU page-table entries
    DmaBuffer,    ///< device data buffer
};

/** Human-readable name of a migrate type. */
const char *migrateTypeName(MigrateType mt);

/** Human-readable name of a page use. */
const char *pageUseName(PageUse use);

/**
 * Per-frame metadata. Kept small deliberately: a 16 GB host has 4 M
 * frames and the frame database is a flat array.
 */
struct PageFrame
{
    /** Free-list linkage (valid only while the frame heads a block). */
    Pfn nextFree = kInvalidPfn;
    Pfn prevFree = kInvalidPfn;
    /** Order of the free block this frame heads (if free head). */
    uint8_t order = 0;
    /** True when the frame is part of a free block. */
    bool free = false;
    /** True when the frame heads its free block. */
    bool freeHead = false;
    /** Migration type of the page block this frame belongs to. */
    MigrateType migrateType = MigrateType::Movable;
    /** What the frame is used for when allocated. */
    PageUse use = PageUse::Free;
    /** Pinned for DMA (VFIO); cannot migrate (Section 2.6). */
    bool pinned = false;
    /** Owning VM id (0 = host). */
    uint16_t owner = 0;
};

} // namespace hh::mm

#endif // HYPERHAMMER_MM_PAGE_H
