/**
 * @file
 * Page-frame metadata, mirroring the parts of Linux's struct page that
 * the attack interacts with: free-list linkage, buddy order, migration
 * type, pinning, and a coarse "what is this page used for" tag that the
 * evaluation harness uses to count EPT/IOPT pages (Table 2).
 */

#ifndef HYPERHAMMER_MM_PAGE_H
#define HYPERHAMMER_MM_PAGE_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace hh::mm {

/**
 * Migration types (Section 2.4). Linux has more; the attack only
 * distinguishes unmovable allocations (page tables, IOPTs, pinned guest
 * memory) from movable ones, with reclaimable kept for realistic
 * fallback ordering.
 */
enum class MigrateType : uint8_t
{
    Unmovable = 0,
    Movable = 1,
    Reclaimable = 2,
};

/** Number of migrate types tracked in the free lists. */
constexpr unsigned kMigrateTypes = 3;

/** Largest order + 1 (Linux MAX_ORDER on x86-64, Section 2.3). */
constexpr unsigned kMaxOrder = 11;

/** Coarse usage tag for accounting and the Table 2 census. */
enum class PageUse : uint8_t
{
    Free = 0,
    KernelData,   ///< host kernel internal allocation
    PageCache,    ///< host page cache ("noise" pages)
    GuestMemory,  ///< backs a guest VM's RAM
    EptPage,      ///< holds extended-page-table entries
    IoptPage,     ///< holds IOMMU page-table entries
    DmaBuffer,    ///< device data buffer
    GuardRow,     ///< permanently reserved isolation guard (Siloz)
};

/** Human-readable name of a migrate type. */
const char *migrateTypeName(MigrateType mt);

/** Human-readable name of a page use. */
const char *pageUseName(PageUse use);

/**
 * Isolation-domain classes (the mitigation layer's physical
 * partitioning policies). A domain admits an allocation when its class
 * admits the allocation's PageUse:
 *
 *   - General admits everything (the undefended single-zone kernel);
 *   - Kernel/User split the buddy system CATT-style: page tables and
 *     other kernel state on one side, guest/DMA memory on the other;
 *   - Ept/Guest are Siloz-style dedicated domains for EPT/IOPT pages
 *     and per-group guest memory;
 *   - KernelDma is the CATTmew double-ownership hole: a kernel
 *     partition that *also* admits pinned guest/DMA memory, putting
 *     attacker-reachable rows back next to page tables.
 */
enum class DomainClass : uint8_t
{
    General = 0,
    Kernel,
    User,
    Ept,
    Guest,
    KernelDma,
};

/** Human-readable name of a domain class. */
const char *domainClassName(DomainClass cls);

/** True when a domain of class @p cls admits allocations of @p use. */
constexpr bool
classAdmits(DomainClass cls, PageUse use)
{
    switch (cls) {
      case DomainClass::General:
        return true;
      case DomainClass::Kernel:
        return use == PageUse::KernelData || use == PageUse::PageCache
            || use == PageUse::EptPage || use == PageUse::IoptPage;
      case DomainClass::User:
      case DomainClass::Guest:
        return use == PageUse::GuestMemory || use == PageUse::DmaBuffer;
      case DomainClass::Ept:
        return use == PageUse::EptPage || use == PageUse::IoptPage;
      case DomainClass::KernelDma:
        // The CATTmew hole: everything the kernel partition admits,
        // plus DMA-pinned guest memory (double ownership).
        return use == PageUse::KernelData || use == PageUse::PageCache
            || use == PageUse::EptPage || use == PageUse::IoptPage
            || use == PageUse::GuestMemory || use == PageUse::DmaBuffer;
    }
    return false;
}

/** One contiguous isolation domain carved out of physical memory. */
struct DomainSpec
{
    /**
     * Frames spanned by the domain, guard band included. Zero means
     * "the rest of memory" (only meaningful on the final spec).
     */
    uint64_t pages = 0;
    DomainClass cls = DomainClass::General;
    /**
     * Frames permanently reserved at the domain's tail as a RowHammer
     * guard band: never allocated, never free, so disturbance from the
     * last usable rows of this domain lands on sacrificial rows rather
     * than the next domain's data.
     */
    uint64_t guardPages = 0;
};

/**
 * The whole-host partitioning policy. An empty domain list is the
 * undefended configuration: one General domain spanning all of memory,
 * byte-identical in behaviour to the pre-domain allocator.
 */
struct DomainLayout
{
    std::vector<DomainSpec> domains;
    /**
     * When true, an allocation that cannot be satisfied by any
     * admitting domain falls back to the remaining domains (soft
     * partitioning); when false the allocation fails instead (hard
     * isolation).
     */
    bool crossDomainFallback = false;

    bool empty() const { return domains.empty(); }
};

/**
 * Per-frame metadata. Kept small deliberately: a 16 GB host has 4 M
 * frames and the frame database is a flat array.
 */
struct PageFrame
{
    /** Free-list linkage (valid only while the frame heads a block). */
    Pfn nextFree = kInvalidPfn;
    Pfn prevFree = kInvalidPfn;
    /** Order of the free block this frame heads (if free head). */
    uint8_t order = 0;
    /** True when the frame is part of a free block. */
    bool free = false;
    /** True when the frame heads its free block. */
    bool freeHead = false;
    /** Migration type of the page block this frame belongs to. */
    MigrateType migrateType = MigrateType::Movable;
    /** What the frame is used for when allocated. */
    PageUse use = PageUse::Free;
    /** Pinned for DMA (VFIO); cannot migrate (Section 2.6). */
    bool pinned = false;
    /** Owning VM id (0 = host). */
    uint16_t owner = 0;
};

} // namespace hh::mm

#endif // HYPERHAMMER_MM_PAGE_H
