#include "buddy_allocator.h"

#include <algorithm>

#include "base/bitops.h"
#include "base/log.h"

namespace hh::mm {

const char *
migrateTypeName(MigrateType mt)
{
    switch (mt) {
      case MigrateType::Unmovable:   return "Unmovable";
      case MigrateType::Movable:     return "Movable";
      case MigrateType::Reclaimable: return "Reclaimable";
    }
    return "?";
}

const char *
pageUseName(PageUse use)
{
    switch (use) {
      case PageUse::Free:        return "Free";
      case PageUse::KernelData:  return "KernelData";
      case PageUse::PageCache:   return "PageCache";
      case PageUse::GuestMemory: return "GuestMemory";
      case PageUse::EptPage:     return "EptPage";
      case PageUse::IoptPage:    return "IoptPage";
      case PageUse::DmaBuffer:   return "DmaBuffer";
      case PageUse::GuardRow:    return "GuardRow";
    }
    return "?";
}

const char *
domainClassName(DomainClass cls)
{
    switch (cls) {
      case DomainClass::General:   return "General";
      case DomainClass::Kernel:    return "Kernel";
      case DomainClass::User:      return "User";
      case DomainClass::Ept:       return "Ept";
      case DomainClass::Guest:     return "Guest";
      case DomainClass::KernelDma: return "KernelDma";
    }
    return "?";
}

uint64_t
PageTypeInfo::pagesBelowOrder(MigrateType mt, unsigned below_order) const
{
    uint64_t pages = 0;
    for (unsigned order = 0; order < below_order && order < kMaxOrder;
         ++order) {
        pages += blockCount(mt, order) << order;
    }
    return pages;
}

uint64_t
PageTypeInfo::totalPages(MigrateType mt) const
{
    return pagesBelowOrder(mt, kMaxOrder);
}

BuddyAllocator::BuddyAllocator(BuddyConfig config)
    : frames(config.totalPages), pcpCfg(config.pcp),
      crossFallback(config.layout.crossDomainFallback)
{
    HH_ASSERT(config.totalPages > 0);
    // Carve the domain table. The undefended layout is one General
    // domain spanning everything; a partitioned layout takes its specs
    // in order and absorbs any uncovered tail into a trailing General
    // domain so the whole PFN range is always owned by exactly one
    // domain.
    if (config.layout.empty()) {
        Domain dom;
        dom.start = 0;
        dom.end = dom.usableEnd = frames.size();
        domains.push_back(std::move(dom));
    } else {
        Pfn start = 0;
        for (size_t i = 0; i < config.layout.domains.size(); ++i) {
            const DomainSpec &spec = config.layout.domains[i];
            uint64_t pages = spec.pages;
            if (pages == 0) {
                HH_ASSERT(i + 1 == config.layout.domains.size());
                HH_ASSERT(start < frames.size());
                pages = frames.size() - start;
            }
            HH_ASSERT(pages > spec.guardPages);
            HH_ASSERT(start + pages <= frames.size());
            Domain dom;
            dom.start = start;
            dom.end = start + pages;
            dom.usableEnd = dom.end - spec.guardPages;
            dom.cls = spec.cls;
            domains.push_back(std::move(dom));
            start += pages;
        }
        if (start < frames.size()) {
            Domain dom;
            dom.start = start;
            dom.end = dom.usableEnd = frames.size();
            domains.push_back(std::move(dom));
        }
    }

    // Seed each domain's free lists with maximal aligned blocks, all
    // Movable: on a freshly booted host the vast majority of
    // pageblocks are MIGRATE_MOVABLE; unmovable blocks appear through
    // fallback. Guard-band frames are born permanently allocated --
    // never free, so no buddy merge (and no allocation) can ever
    // reach across them.
    const unsigned top = kMaxOrder - 1;
    for (Domain &dom : domains) {
        Pfn pfn = dom.start;
        while (pfn < dom.usableEnd) {
            unsigned order = top;
            while (order > 0
                   && ((pfn & ((1ull << order) - 1)) != 0
                       || pfn + (1ull << order) > dom.usableEnd)) {
                --order;
            }
            for (uint64_t i = 0; i < (1ull << order); ++i) {
                PageFrame &frame = frames.mut(pfn + i);
                frame.free = true;
                frame.migrateType = MigrateType::Movable;
            }
            listPush(dom, MigrateType::Movable, order, pfn);
            freeCount += 1ull << order;
            pfn += 1ull << order;
        }
        for (Pfn guard = dom.usableEnd; guard < dom.end; ++guard) {
            PageFrame &frame = frames.mut(guard);
            frame.free = false;
            frame.freeHead = false;
            frame.migrateType = MigrateType::Unmovable;
            frame.use = PageUse::GuardRow;
            frame.pinned = true;
            frame.owner = 0;
        }
    }
}

BuddyAllocator::BuddyAllocator(ForkTag, const BuddyAllocator &src)
    : frames(src.frames.fork()), domains(src.domains),
      freeCount(src.freeCount), pcpCfg(src.pcpCfg),
      crossFallback(src.crossFallback)
{}

const PageFrame &
BuddyAllocator::frame(Pfn pfn) const
{
    HH_ASSERT(pfn < frames.size());
    return frames[pfn];
}

BuddyAllocator::Domain &
BuddyAllocator::domainOf(Pfn pfn)
{
    HH_ASSERT(pfn < frames.size());
    // Domains are few and sorted by start; upper_bound finds the first
    // domain starting *after* pfn, so its predecessor contains it.
    auto it = std::upper_bound(
        domains.begin(), domains.end(), pfn,
        [](Pfn p, const Domain &d) { return p < d.start; });
    HH_ASSERT(it != domains.begin());
    return *(it - 1);
}

const BuddyAllocator::Domain &
BuddyAllocator::domainOf(Pfn pfn) const
{
    return const_cast<BuddyAllocator *>(this)->domainOf(pfn);
}

size_t
BuddyAllocator::domainIndexOf(Pfn pfn) const
{
    return static_cast<size_t>(&domainOf(pfn) - domains.data());
}

DomainInfo
BuddyAllocator::domainInfo(size_t idx) const
{
    HH_ASSERT(idx < domains.size());
    const Domain &dom = domains[idx];
    return DomainInfo{dom.start, dom.end, dom.usableEnd, dom.cls};
}

uint64_t
BuddyAllocator::guardPageCount() const
{
    uint64_t guards = 0;
    for (const Domain &dom : domains)
        guards += dom.end - dom.usableEnd;
    return guards;
}

bool
BuddyAllocator::domainOnPass(const Domain &dom, PageUse use, int pass)
{
    // Pass 0: dedicated domains that admit this use, in layout order
    // (Siloz lists its EPT domain before the host domain, so EPT pages
    // prefer it). Pass 1: General domains. Pass 2 (only with
    // crossDomainFallback): everything not tried yet.
    const bool specific = dom.cls != DomainClass::General;
    switch (pass) {
      case 0: return specific && classAdmits(dom.cls, use);
      case 1: return !specific;
      default: return specific && !classAdmits(dom.cls, use);
    }
}

void
BuddyAllocator::listPush(Domain &dom, MigrateType mt, unsigned order,
                         Pfn pfn)
{
    FreeList &list = dom.lists[static_cast<unsigned>(mt)][order];
    PageFrame &frame = frames.mut(pfn);
    frame.freeHead = true;
    frame.order = static_cast<uint8_t>(order);
    frame.prevFree = kInvalidPfn;
    frame.nextFree = list.head;
    if (list.head != kInvalidPfn)
        frames.mut(list.head).prevFree = pfn;
    list.head = pfn;
    ++list.count;
}

void
BuddyAllocator::listRemove(Domain &dom, MigrateType mt, unsigned order,
                           Pfn pfn)
{
    FreeList &list = dom.lists[static_cast<unsigned>(mt)][order];
    // mut(pfn) unshares pfn's chunk first, so the later muts (which can
    // only copy *other* chunks) never invalidate this reference.
    PageFrame &frame = frames.mut(pfn);
    HH_ASSERT(frame.freeHead && frame.order == order);
    if (frame.prevFree != kInvalidPfn)
        frames.mut(frame.prevFree).nextFree = frame.nextFree;
    else
        list.head = frame.nextFree;
    if (frame.nextFree != kInvalidPfn)
        frames.mut(frame.nextFree).prevFree = frame.prevFree;
    frame.freeHead = false;
    frame.prevFree = frame.nextFree = kInvalidPfn;
    HH_ASSERT(list.count > 0);
    --list.count;
}

Pfn
BuddyAllocator::listPop(Domain &dom, MigrateType mt, unsigned order)
{
    FreeList &list = dom.lists[static_cast<unsigned>(mt)][order];
    HH_ASSERT(list.head != kInvalidPfn);
    const Pfn pfn = list.head;
    listRemove(dom, mt, order, pfn);
    return pfn;
}

void
BuddyAllocator::markAllocated(Pfn pfn, unsigned order, MigrateType mt,
                              PageUse use, uint16_t owner)
{
    for (uint64_t i = 0; i < (1ull << order); ++i) {
        PageFrame &frame = frames.mut(pfn + i);
        frame.free = false;
        frame.freeHead = false;
        frame.migrateType = mt;
        frame.use = use;
        frame.owner = owner;
    }
}

base::Expected<Pfn>
BuddyAllocator::allocCore(Domain &dom, unsigned order, MigrateType mt)
{
    // Smallest sufficient order first: this is the policy that makes
    // noise-page exhaustion necessary (Section 4.2.1).
    for (unsigned o = order; o < kMaxOrder; ++o) {
        if (dom.lists[static_cast<unsigned>(mt)][o].head == kInvalidPfn)
            continue;
        Pfn pfn = listPop(dom, mt, o);
        freeCount -= 1ull << o;
        // Split the block down, returning the upper halves.
        while (o > order) {
            --o;
            const Pfn buddy = pfn + (1ull << o);
            for (uint64_t i = 0; i < (1ull << o); ++i)
                frames.mut(buddy + i).migrateType = mt;
            listPush(dom, mt, o, buddy);
            freeCount += 1ull << o;
        }
        return pfn;
    }
    return stealFallback(dom, order, mt);
}

base::Expected<Pfn>
BuddyAllocator::stealFallback(Domain &dom, unsigned order,
                              MigrateType mt)
{
    // Fallback preference order, after mm/page_alloc.c fallbacks[].
    static constexpr MigrateType kFallbacks[kMigrateTypes][2] = {
        /* Unmovable  -> */ {MigrateType::Reclaimable, MigrateType::Movable},
        /* Movable    -> */ {MigrateType::Reclaimable,
                             MigrateType::Unmovable},
        /* Reclaimable-> */ {MigrateType::Unmovable, MigrateType::Movable},
    };
    const auto &fallbacks = kFallbacks[static_cast<unsigned>(mt)];

    // Steal the *largest* available block so future same-type
    // allocations stay local (kernel behaviour).
    for (int o = kMaxOrder - 1; o >= static_cast<int>(order); --o) {
        for (MigrateType ft : fallbacks) {
            if (dom.lists[static_cast<unsigned>(ft)][o].head
                == kInvalidPfn) {
                continue;
            }
            Pfn pfn = listPop(dom, ft, o);
            freeCount -= 1ull << o;
            // Convert the whole block to the desired type.
            for (uint64_t i = 0; i < (1ull << o); ++i)
                frames.mut(pfn + i).migrateType = mt;
            unsigned cur = static_cast<unsigned>(o);
            while (cur > order) {
                --cur;
                const Pfn buddy = pfn + (1ull << cur);
                listPush(dom, mt, cur, buddy);
                freeCount += 1ull << cur;
            }
            return pfn;
        }
    }
    return base::ErrorCode::NoMemory;
}

base::Expected<Pfn>
BuddyAllocator::allocPages(unsigned order, MigrateType mt, PageUse use,
                           uint16_t owner)
{
    HH_ASSERT(order < kMaxOrder);
    HH_ASSERT(use != PageUse::GuardRow);
    // Allocation failure under pressure: param selects a PageUse to
    // starve (0 = every class).
    if (const fault::FaultEntry *f =
            HH_FAULT_POINT(faultInjector, fault::FaultSite::MmAlloc)) {
        if (f->kind == fault::FaultKind::AllocFail
            && (f->param == 0
                || f->param == static_cast<uint64_t>(use)))
            return base::ErrorCode::NoMemory;
    }
    const int passes = crossFallback ? 3 : 2;
    for (int pass = 0; pass < passes; ++pass) {
        for (Domain &dom : domains) {
            if (!domainOnPass(dom, use, pass))
                continue;
            if (order == 0 && pcpCfg.highWatermark > 0) {
                auto &cache = dom.pcp[static_cast<unsigned>(mt)];
                if (cache.empty()) {
                    // Refill a batch from the buddy lists
                    // (rmqueue_bulk).
                    for (unsigned i = 0; i < pcpCfg.batch; ++i) {
                        auto page = allocCore(dom, 0, mt);
                        if (!page)
                            break;
                        // PCP pages are off the buddy lists but not
                        // yet handed out; they are not "free" in the
                        // buddy sense.
                        PageFrame &frame = frames.mut(*page);
                        frame.free = false;
                        frame.freeHead = false;
                        frame.use = PageUse::Free;
                        frame.migrateType = mt;
                        cache.push_back(*page);
                    }
                }
                if (!cache.empty()) {
                    const Pfn pfn = cache.back();
                    cache.pop_back();
                    markAllocated(pfn, 0, mt, use, owner);
                    return pfn;
                }
                continue; // domain exhausted; try the next candidate
            }

            auto pfn = allocCore(dom, order, mt);
            if (!pfn) {
                // Allocation pressure: drain the per-CPU pagesets so
                // parked order-0 pages can coalesce, then retry
                // (Linux's drain_all_pages() on the slow path).
                drainPcpDomain(dom);
                pfn = allocCore(dom, order, mt);
            }
            if (!pfn)
                continue;
            markAllocated(*pfn, order, mt, use, owner);
            return pfn;
        }
    }
    return base::ErrorCode::NoMemory;
}

base::Expected<Pfn>
BuddyAllocator::allocPagesAnyType(unsigned order, PageUse use,
                                  uint16_t owner)
{
    HH_ASSERT(order < kMaxOrder);
    HH_ASSERT(use != PageUse::GuardRow);
    const int passes = crossFallback ? 3 : 2;
    for (int pass = 0; pass < passes; ++pass) {
        for (Domain &dom : domains) {
            if (!domainOnPass(dom, use, pass))
                continue;
            for (int attempt = 0; attempt < 2; ++attempt) {
                for (unsigned o = order; o < kMaxOrder; ++o) {
                    for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
                        if (dom.lists[mt][o].head == kInvalidPfn)
                            continue;
                        const auto type = static_cast<MigrateType>(mt);
                        Pfn pfn = listPop(dom, type, o);
                        freeCount -= 1ull << o;
                        unsigned cur = o;
                        while (cur > order) {
                            --cur;
                            listPush(dom, type, cur,
                                     pfn + (1ull << cur));
                            freeCount += 1ull << cur;
                        }
                        markAllocated(pfn, order, type, use, owner);
                        return pfn;
                    }
                }
                // slow path: reclaim parked PCP pages and retry
                drainPcpDomain(dom);
            }
        }
    }
    return base::ErrorCode::NoMemory;
}

void
BuddyAllocator::freeCore(Domain &dom, Pfn pfn, unsigned order,
                         MigrateType mt)
{
    HH_ASSERT(pfn >= dom.start);
    HH_ASSERT(pfn + (1ull << order) <= dom.usableEnd);
    for (uint64_t i = 0; i < (1ull << order); ++i) {
        PageFrame &frame = frames.mut(pfn + i);
        HH_ASSERT(!frame.free);
        HH_ASSERT(!frame.pinned);
        frame.free = true;
        frame.freeHead = false;
        frame.use = PageUse::Free;
        frame.owner = 0;
        frame.migrateType = mt;
    }
    freeCount += 1ull << order;

    // Coalesce with the buddy while possible. Linux only merges blocks
    // of the same migrate type (they live on the same list), and a
    // merge never crosses a domain boundary: the buddy must lie fully
    // inside this domain's usable range.
    while (order < kMaxOrder - 1) {
        const Pfn buddy = pfn ^ (1ull << order);
        if (buddy < dom.start
            || buddy + (1ull << order) > dom.usableEnd) {
            break;
        }
        const PageFrame &bframe = frames[buddy];
        if (!bframe.free || !bframe.freeHead || bframe.order != order
            || bframe.migrateType != mt) {
            break;
        }
        listRemove(dom, mt, order, buddy);
        pfn = std::min(pfn, buddy);
        ++order;
        for (uint64_t i = 0; i < (1ull << order); ++i)
            frames.mut(pfn + i).migrateType = mt;
    }
    listPush(dom, mt, order, pfn);
}

void
BuddyAllocator::freePages(Pfn pfn, unsigned order)
{
    freePagesAs(pfn, order, frames[pfn].migrateType);
}

void
BuddyAllocator::freePagesAs(Pfn pfn, unsigned order, MigrateType mt)
{
    HH_ASSERT(order < kMaxOrder);
    HH_ASSERT(!frames[pfn].pinned);
    Domain &dom = domainOf(pfn);
    if (order == 0 && pcpCfg.highWatermark > 0) {
        // Order-0 frees park in the home domain's PCP and drain in
        // batches (a shared cache would leak pages across domains).
        PageFrame &frame = frames.mut(pfn);
        HH_ASSERT(!frame.free);
        frame.use = PageUse::Free;
        frame.owner = 0;
        frame.migrateType = mt;
        auto &cache = dom.pcp[static_cast<unsigned>(mt)];
        cache.push_back(pfn);
        if (cache.size() > pcpCfg.highWatermark) {
            for (unsigned i = 0; i < pcpCfg.batch && !cache.empty();
                 ++i) {
                const Pfn drained = cache.front();
                cache.erase(cache.begin());
                freeCore(dom, drained, 0,
                         frames[drained].migrateType);
            }
        }
        return;
    }
    freeCore(dom, pfn, order, mt);
}

void
BuddyAllocator::setPinned(Pfn pfn, bool pinned)
{
    HH_ASSERT(pfn < frames.size());
    HH_ASSERT(!frames[pfn].free);
    frames.mut(pfn).pinned = pinned;
}

void
BuddyAllocator::setUse(Pfn pfn, PageUse use, uint16_t owner)
{
    HH_ASSERT(pfn < frames.size());
    HH_ASSERT(!frames[pfn].free);
    PageFrame &frame = frames.mut(pfn);
    frame.use = use;
    frame.owner = owner;
}

void
BuddyAllocator::setMigrateType(Pfn pfn, MigrateType mt)
{
    HH_ASSERT(pfn < frames.size());
    HH_ASSERT(!frames[pfn].free);
    frames.mut(pfn).migrateType = mt;
}

bool
BuddyAllocator::blockUniformlyOwned(Pfn pfn, unsigned order,
                                    PageUse use, uint16_t owner) const
{
    HH_ASSERT(pfn + (1ull << order) <= frames.size());
    for (uint64_t i = 0; i < (1ull << order); ++i) {
        const PageFrame &frame = frames[pfn + i];
        if (frame.free || frame.use != use || frame.owner != owner)
            return false;
    }
    return true;
}

PageTypeInfo
BuddyAllocator::pageTypeInfo() const
{
    PageTypeInfo info;
    for (const Domain &dom : domains)
        for (unsigned mt = 0; mt < kMigrateTypes; ++mt)
            for (unsigned order = 0; order < kMaxOrder; ++order)
                info.blocks[mt][order] += dom.lists[mt][order].count;
    return info;
}

uint64_t
BuddyAllocator::pcpCount() const
{
    uint64_t count = 0;
    for (const Domain &dom : domains)
        for (const auto &cache : dom.pcp)
            count += cache.size();
    return count;
}

void
BuddyAllocator::drainPcpDomain(Domain &dom)
{
    for (auto &cache : dom.pcp) {
        for (Pfn pfn : cache)
            freeCore(dom, pfn, 0, frames[pfn].migrateType);
        cache.clear();
    }
}

void
BuddyAllocator::drainPcp()
{
    for (Domain &dom : domains)
        drainPcpDomain(dom);
}

void
BuddyAllocator::saveState(base::ArchiveWriter &w) const
{
    w.u64(frames.size());
    for (Pfn pfn = 0; pfn < frames.size(); ++pfn) {
        const PageFrame &frame = frames[pfn];
        w.u64(frame.nextFree);
        w.u64(frame.prevFree);
        w.u8(frame.order);
        w.boolean(frame.free);
        w.boolean(frame.freeHead);
        w.u8(static_cast<uint8_t>(frame.migrateType));
        w.u8(static_cast<uint8_t>(frame.use));
        w.boolean(frame.pinned);
        w.u16(frame.owner);
    }
    // Domain geometry travels via the config fingerprint; only the
    // per-domain mutable state (free lists, PCP stacks) is payload.
    w.u64(domains.size());
    for (const Domain &dom : domains) {
        for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
            for (unsigned order = 0; order < kMaxOrder; ++order) {
                w.u64(dom.lists[mt][order].head);
                w.u64(dom.lists[mt][order].count);
            }
        }
    }
    w.u64(freeCount);
    for (const Domain &dom : domains)
        for (const auto &cache : dom.pcp)
            w.u64vec(cache);
}

base::Status
BuddyAllocator::loadState(base::ArchiveReader &r)
{
    const uint64_t frame_count = r.u64();
    if (r.ok() && frame_count != frames.size())
        r.fail();
    std::vector<PageFrame> new_frames(r.ok() ? frame_count : 0);
    for (PageFrame &frame : new_frames) {
        if (!r.ok())
            break;
        frame.nextFree = r.u64();
        frame.prevFree = r.u64();
        frame.order = r.u8();
        frame.free = r.boolean();
        frame.freeHead = r.boolean();
        const uint8_t mt = r.u8();
        const uint8_t use = r.u8();
        frame.pinned = r.boolean();
        frame.owner = r.u16();
        if (mt >= kMigrateTypes || use > static_cast<uint8_t>(
                PageUse::GuardRow) || frame.order >= kMaxOrder) {
            r.fail();
            break;
        }
        frame.migrateType = static_cast<MigrateType>(mt);
        frame.use = static_cast<PageUse>(use);
    }
    const uint64_t domain_count = r.u64();
    if (r.ok() && domain_count != domains.size())
        r.fail();
    std::vector<Domain> new_domains(r.ok() ? domains.size() : 0);
    for (size_t d = 0; d < new_domains.size(); ++d) {
        // Geometry comes from this allocator's own config (already
        // fingerprint-checked); the payload carries only lists.
        new_domains[d].start = domains[d].start;
        new_domains[d].end = domains[d].end;
        new_domains[d].usableEnd = domains[d].usableEnd;
        new_domains[d].cls = domains[d].cls;
        for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
            for (unsigned order = 0; order < kMaxOrder; ++order) {
                new_domains[d].lists[mt][order].head = r.u64();
                new_domains[d].lists[mt][order].count = r.u64();
            }
        }
    }
    const uint64_t new_free_count = r.u64();
    for (Domain &dom : new_domains)
        for (auto &cache : dom.pcp)
            cache = r.u64vec();
    if (!r.ok())
        return r.status();

    // Replicate checkConsistency() without the panics: a corrupted
    // snapshot must fail the load, not abort the process. Walks are
    // bounds-checked and capped so cyclic linkage cannot hang us.
    uint64_t listed_pages = 0;
    for (const Domain &dom : new_domains) {
        for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
            for (unsigned order = 0; order < kMaxOrder; ++order) {
                const FreeList &list = dom.lists[mt][order];
                uint64_t walked = 0;
                Pfn prev = kInvalidPfn;
                Pfn pfn = list.head;
                while (pfn != kInvalidPfn) {
                    if (pfn >= new_frames.size()
                        || walked >= list.count) {
                        return base::Status(
                            base::ErrorCode::InvalidArgument);
                    }
                    const PageFrame &frame = new_frames[pfn];
                    const bool block_in_domain =
                        pfn >= dom.start
                        && pfn + (1ull << order) <= dom.usableEnd;
                    if (!frame.free || !frame.freeHead
                        || frame.order != order
                        || frame.migrateType
                               != static_cast<MigrateType>(mt)
                        || frame.prevFree != prev || !block_in_domain
                        || (pfn & ((1ull << order) - 1)) != 0) {
                        return base::Status(
                            base::ErrorCode::InvalidArgument);
                    }
                    for (uint64_t i = 1; i < (1ull << order); ++i) {
                        if (!new_frames[pfn + i].free
                            || new_frames[pfn + i].freeHead) {
                            return base::Status(
                                base::ErrorCode::InvalidArgument);
                        }
                    }
                    prev = pfn;
                    ++walked;
                    listed_pages += 1ull << order;
                    pfn = frame.nextFree;
                }
                if (walked != list.count)
                    return base::Status(
                        base::ErrorCode::InvalidArgument);
            }
        }
        // Guard bands are structural: a snapshot claiming a guard
        // frame is free or repurposed is corrupt.
        for (Pfn guard = dom.usableEnd; guard < dom.end; ++guard) {
            const PageFrame &frame = new_frames[guard];
            if (frame.free || frame.use != PageUse::GuardRow
                || !frame.pinned) {
                return base::Status(base::ErrorCode::InvalidArgument);
            }
        }
    }
    uint64_t free_frames = 0;
    for (const PageFrame &frame : new_frames)
        free_frames += frame.free ? 1 : 0;
    if (listed_pages != new_free_count || free_frames != new_free_count)
        return base::Status(base::ErrorCode::InvalidArgument);
    for (const Domain &dom : new_domains) {
        for (const auto &cache : dom.pcp) {
            for (Pfn pfn : cache) {
                if (pfn < dom.start || pfn >= dom.usableEnd
                    || new_frames[pfn].free) {
                    return base::Status(
                        base::ErrorCode::InvalidArgument);
                }
            }
        }
    }

    frames = FrameStore(new_frames);
    domains = std::move(new_domains);
    freeCount = new_free_count;
    return base::Status::success();
}

void
BuddyAllocator::checkConsistency() const
{
    // 1. Every list entry is a free head of the right order/type inside
    //    its domain's usable range, and the doubly-linked structure is
    //    intact.
    uint64_t listed_pages = 0;
    for (const Domain &dom : domains) {
        for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
            for (unsigned order = 0; order < kMaxOrder; ++order) {
                const FreeList &list = dom.lists[mt][order];
                uint64_t walked = 0;
                Pfn prev = kInvalidPfn;
                for (Pfn pfn = list.head; pfn != kInvalidPfn;
                     pfn = frames[pfn].nextFree) {
                    const PageFrame &frame = frames[pfn];
                    HH_ASSERT(frame.free && frame.freeHead);
                    HH_ASSERT(frame.order == order);
                    HH_ASSERT(frame.migrateType
                              == static_cast<MigrateType>(mt));
                    HH_ASSERT(frame.prevFree == prev);
                    HH_ASSERT((pfn & ((1ull << order) - 1)) == 0);
                    HH_ASSERT(pfn >= dom.start);
                    HH_ASSERT(pfn + (1ull << order) <= dom.usableEnd);
                    // Tail frames of the block are free but not heads.
                    for (uint64_t i = 1; i < (1ull << order); ++i) {
                        HH_ASSERT(frames[pfn + i].free);
                        HH_ASSERT(!frames[pfn + i].freeHead);
                    }
                    prev = pfn;
                    ++walked;
                    listed_pages += 1ull << order;
                }
                HH_ASSERT(walked == list.count);
            }
        }
        // 2. Guard bands stay permanently reserved.
        for (Pfn guard = dom.usableEnd; guard < dom.end; ++guard) {
            HH_ASSERT(!frames[guard].free);
            HH_ASSERT(frames[guard].use == PageUse::GuardRow);
            HH_ASSERT(frames[guard].pinned);
        }
    }
    HH_ASSERT(listed_pages == freeCount);

    // 3. Every frame marked free belongs to exactly one listed block.
    uint64_t free_frames = 0;
    for (Pfn pfn = 0; pfn < frames.size(); ++pfn)
        free_frames += frames[pfn].free ? 1 : 0;
    HH_ASSERT(free_frames == freeCount);
}

} // namespace hh::mm
