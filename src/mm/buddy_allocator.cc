#include "buddy_allocator.h"

#include <algorithm>

#include "base/bitops.h"
#include "base/log.h"

namespace hh::mm {

const char *
migrateTypeName(MigrateType mt)
{
    switch (mt) {
      case MigrateType::Unmovable:   return "Unmovable";
      case MigrateType::Movable:     return "Movable";
      case MigrateType::Reclaimable: return "Reclaimable";
    }
    return "?";
}

const char *
pageUseName(PageUse use)
{
    switch (use) {
      case PageUse::Free:        return "Free";
      case PageUse::KernelData:  return "KernelData";
      case PageUse::PageCache:   return "PageCache";
      case PageUse::GuestMemory: return "GuestMemory";
      case PageUse::EptPage:     return "EptPage";
      case PageUse::IoptPage:    return "IoptPage";
      case PageUse::DmaBuffer:   return "DmaBuffer";
    }
    return "?";
}

uint64_t
PageTypeInfo::pagesBelowOrder(MigrateType mt, unsigned below_order) const
{
    uint64_t pages = 0;
    for (unsigned order = 0; order < below_order && order < kMaxOrder;
         ++order) {
        pages += blockCount(mt, order) << order;
    }
    return pages;
}

uint64_t
PageTypeInfo::totalPages(MigrateType mt) const
{
    return pagesBelowOrder(mt, kMaxOrder);
}

BuddyAllocator::BuddyAllocator(BuddyConfig config)
    : frames(config.totalPages), pcpCfg(config.pcp)
{
    HH_ASSERT(config.totalPages > 0);
    // Seed the free lists with maximal aligned blocks, all Movable:
    // on a freshly booted host the vast majority of pageblocks are
    // MIGRATE_MOVABLE; unmovable blocks appear through fallback.
    const unsigned top = kMaxOrder - 1;
    const uint64_t top_pages = 1ull << top;
    Pfn pfn = 0;
    while (pfn < frames.size()) {
        unsigned order = top;
        while (order > 0
               && ((pfn & ((1ull << order) - 1)) != 0
                   || pfn + (1ull << order) > frames.size())) {
            --order;
        }
        for (uint64_t i = 0; i < (1ull << order); ++i) {
            PageFrame &frame = frames.mut(pfn + i);
            frame.free = true;
            frame.migrateType = MigrateType::Movable;
        }
        listPush(MigrateType::Movable, order, pfn);
        freeCount += 1ull << order;
        pfn += 1ull << order;
        (void)top_pages;
    }
}

BuddyAllocator::BuddyAllocator(ForkTag, const BuddyAllocator &src)
    : frames(src.frames.fork()), lists(src.lists),
      freeCount(src.freeCount), pcpCfg(src.pcpCfg), pcp(src.pcp)
{}

const PageFrame &
BuddyAllocator::frame(Pfn pfn) const
{
    HH_ASSERT(pfn < frames.size());
    return frames[pfn];
}

void
BuddyAllocator::listPush(MigrateType mt, unsigned order, Pfn pfn)
{
    FreeList &list = lists[static_cast<unsigned>(mt)][order];
    PageFrame &frame = frames.mut(pfn);
    frame.freeHead = true;
    frame.order = static_cast<uint8_t>(order);
    frame.prevFree = kInvalidPfn;
    frame.nextFree = list.head;
    if (list.head != kInvalidPfn)
        frames.mut(list.head).prevFree = pfn;
    list.head = pfn;
    ++list.count;
}

void
BuddyAllocator::listRemove(MigrateType mt, unsigned order, Pfn pfn)
{
    FreeList &list = lists[static_cast<unsigned>(mt)][order];
    // mut(pfn) unshares pfn's chunk first, so the later muts (which can
    // only copy *other* chunks) never invalidate this reference.
    PageFrame &frame = frames.mut(pfn);
    HH_ASSERT(frame.freeHead && frame.order == order);
    if (frame.prevFree != kInvalidPfn)
        frames.mut(frame.prevFree).nextFree = frame.nextFree;
    else
        list.head = frame.nextFree;
    if (frame.nextFree != kInvalidPfn)
        frames.mut(frame.nextFree).prevFree = frame.prevFree;
    frame.freeHead = false;
    frame.prevFree = frame.nextFree = kInvalidPfn;
    HH_ASSERT(list.count > 0);
    --list.count;
}

Pfn
BuddyAllocator::listPop(MigrateType mt, unsigned order)
{
    FreeList &list = lists[static_cast<unsigned>(mt)][order];
    HH_ASSERT(list.head != kInvalidPfn);
    const Pfn pfn = list.head;
    listRemove(mt, order, pfn);
    return pfn;
}

void
BuddyAllocator::markAllocated(Pfn pfn, unsigned order, MigrateType mt,
                              PageUse use, uint16_t owner)
{
    for (uint64_t i = 0; i < (1ull << order); ++i) {
        PageFrame &frame = frames.mut(pfn + i);
        frame.free = false;
        frame.freeHead = false;
        frame.migrateType = mt;
        frame.use = use;
        frame.owner = owner;
    }
}

base::Expected<Pfn>
BuddyAllocator::allocCore(unsigned order, MigrateType mt)
{
    // Smallest sufficient order first: this is the policy that makes
    // noise-page exhaustion necessary (Section 4.2.1).
    for (unsigned o = order; o < kMaxOrder; ++o) {
        if (lists[static_cast<unsigned>(mt)][o].head == kInvalidPfn)
            continue;
        Pfn pfn = listPop(mt, o);
        freeCount -= 1ull << o;
        // Split the block down, returning the upper halves.
        while (o > order) {
            --o;
            const Pfn buddy = pfn + (1ull << o);
            for (uint64_t i = 0; i < (1ull << o); ++i)
                frames.mut(buddy + i).migrateType = mt;
            listPush(mt, o, buddy);
            freeCount += 1ull << o;
        }
        return pfn;
    }
    return stealFallback(order, mt);
}

base::Expected<Pfn>
BuddyAllocator::stealFallback(unsigned order, MigrateType mt)
{
    // Fallback preference order, after mm/page_alloc.c fallbacks[].
    static constexpr MigrateType kFallbacks[kMigrateTypes][2] = {
        /* Unmovable  -> */ {MigrateType::Reclaimable, MigrateType::Movable},
        /* Movable    -> */ {MigrateType::Reclaimable,
                             MigrateType::Unmovable},
        /* Reclaimable-> */ {MigrateType::Unmovable, MigrateType::Movable},
    };
    const auto &fallbacks = kFallbacks[static_cast<unsigned>(mt)];

    // Steal the *largest* available block so future same-type
    // allocations stay local (kernel behaviour).
    for (int o = kMaxOrder - 1; o >= static_cast<int>(order); --o) {
        for (MigrateType ft : fallbacks) {
            if (lists[static_cast<unsigned>(ft)][o].head == kInvalidPfn)
                continue;
            Pfn pfn = listPop(ft, o);
            freeCount -= 1ull << o;
            // Convert the whole block to the desired type.
            for (uint64_t i = 0; i < (1ull << o); ++i)
                frames.mut(pfn + i).migrateType = mt;
            unsigned cur = static_cast<unsigned>(o);
            while (cur > order) {
                --cur;
                const Pfn buddy = pfn + (1ull << cur);
                listPush(mt, cur, buddy);
                freeCount += 1ull << cur;
            }
            return pfn;
        }
    }
    return base::ErrorCode::NoMemory;
}

base::Expected<Pfn>
BuddyAllocator::allocPages(unsigned order, MigrateType mt, PageUse use,
                           uint16_t owner)
{
    HH_ASSERT(order < kMaxOrder);
    // Allocation failure under pressure: param selects a PageUse to
    // starve (0 = every class).
    if (const fault::FaultEntry *f =
            HH_FAULT_POINT(faultInjector, fault::FaultSite::MmAlloc)) {
        if (f->kind == fault::FaultKind::AllocFail
            && (f->param == 0
                || f->param == static_cast<uint64_t>(use)))
            return base::ErrorCode::NoMemory;
    }
    if (order == 0 && pcpCfg.highWatermark > 0) {
        auto &cache = pcp[static_cast<unsigned>(mt)];
        if (cache.empty()) {
            // Refill a batch from the buddy lists (rmqueue_bulk).
            for (unsigned i = 0; i < pcpCfg.batch; ++i) {
                auto page = allocCore(0, mt);
                if (!page)
                    break;
                // PCP pages are off the buddy lists but not yet handed
                // out; they are not "free" in the buddy sense.
                PageFrame &frame = frames.mut(*page);
                frame.free = false;
                frame.freeHead = false;
                frame.use = PageUse::Free;
                frame.migrateType = mt;
                cache.push_back(*page);
            }
        }
        if (!cache.empty()) {
            const Pfn pfn = cache.back();
            cache.pop_back();
            markAllocated(pfn, 0, mt, use, owner);
            return pfn;
        }
        return base::ErrorCode::NoMemory;
    }

    auto pfn = allocCore(order, mt);
    if (!pfn) {
        // Allocation pressure: drain the per-CPU pagesets so parked
        // order-0 pages can coalesce, then retry (Linux's
        // drain_all_pages() on the slow path).
        drainPcp();
        pfn = allocCore(order, mt);
    }
    if (!pfn)
        return pfn;
    markAllocated(*pfn, order, mt, use, owner);
    return pfn;
}

base::Expected<Pfn>
BuddyAllocator::allocPagesAnyType(unsigned order, PageUse use,
                                  uint16_t owner)
{
    HH_ASSERT(order < kMaxOrder);
    for (int attempt = 0; attempt < 2; ++attempt) {
    for (unsigned o = order; o < kMaxOrder; ++o) {
        for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
            if (lists[mt][o].head == kInvalidPfn)
                continue;
            const auto type = static_cast<MigrateType>(mt);
            Pfn pfn = listPop(type, o);
            freeCount -= 1ull << o;
            unsigned cur = o;
            while (cur > order) {
                --cur;
                listPush(type, cur, pfn + (1ull << cur));
                freeCount += 1ull << cur;
            }
            markAllocated(pfn, order, type, use, owner);
            return pfn;
        }
    }
    drainPcp(); // slow path: reclaim parked PCP pages and retry
    }
    return base::ErrorCode::NoMemory;
}

void
BuddyAllocator::freeCore(Pfn pfn, unsigned order, MigrateType mt)
{
    HH_ASSERT(pfn + (1ull << order) <= frames.size());
    for (uint64_t i = 0; i < (1ull << order); ++i) {
        PageFrame &frame = frames.mut(pfn + i);
        HH_ASSERT(!frame.free);
        HH_ASSERT(!frame.pinned);
        frame.free = true;
        frame.freeHead = false;
        frame.use = PageUse::Free;
        frame.owner = 0;
        frame.migrateType = mt;
    }
    freeCount += 1ull << order;

    // Coalesce with the buddy while possible. Linux only merges blocks
    // of the same migrate type (they live on the same list).
    while (order < kMaxOrder - 1) {
        const Pfn buddy = pfn ^ (1ull << order);
        if (buddy + (1ull << order) > frames.size())
            break;
        const PageFrame &bframe = frames[buddy];
        if (!bframe.free || !bframe.freeHead || bframe.order != order
            || bframe.migrateType != mt) {
            break;
        }
        listRemove(mt, order, buddy);
        pfn = std::min(pfn, buddy);
        ++order;
        for (uint64_t i = 0; i < (1ull << order); ++i)
            frames.mut(pfn + i).migrateType = mt;
    }
    listPush(mt, order, pfn);
}

void
BuddyAllocator::freePages(Pfn pfn, unsigned order)
{
    freePagesAs(pfn, order, frames[pfn].migrateType);
}

void
BuddyAllocator::freePagesAs(Pfn pfn, unsigned order, MigrateType mt)
{
    HH_ASSERT(order < kMaxOrder);
    HH_ASSERT(!frames[pfn].pinned);
    if (order == 0 && pcpCfg.highWatermark > 0) {
        // Order-0 frees park in the PCP and drain in batches.
        PageFrame &frame = frames.mut(pfn);
        HH_ASSERT(!frame.free);
        frame.use = PageUse::Free;
        frame.owner = 0;
        frame.migrateType = mt;
        auto &cache = pcp[static_cast<unsigned>(mt)];
        cache.push_back(pfn);
        if (cache.size() > pcpCfg.highWatermark) {
            for (unsigned i = 0; i < pcpCfg.batch && !cache.empty(); ++i) {
                const Pfn drained = cache.front();
                cache.erase(cache.begin());
                freeCore(drained, 0, frames[drained].migrateType);
            }
        }
        return;
    }
    freeCore(pfn, order, mt);
}

void
BuddyAllocator::setPinned(Pfn pfn, bool pinned)
{
    HH_ASSERT(pfn < frames.size());
    HH_ASSERT(!frames[pfn].free);
    frames.mut(pfn).pinned = pinned;
}

void
BuddyAllocator::setUse(Pfn pfn, PageUse use, uint16_t owner)
{
    HH_ASSERT(pfn < frames.size());
    HH_ASSERT(!frames[pfn].free);
    PageFrame &frame = frames.mut(pfn);
    frame.use = use;
    frame.owner = owner;
}

void
BuddyAllocator::setMigrateType(Pfn pfn, MigrateType mt)
{
    HH_ASSERT(pfn < frames.size());
    HH_ASSERT(!frames[pfn].free);
    frames.mut(pfn).migrateType = mt;
}

bool
BuddyAllocator::blockUniformlyOwned(Pfn pfn, unsigned order,
                                    PageUse use, uint16_t owner) const
{
    HH_ASSERT(pfn + (1ull << order) <= frames.size());
    for (uint64_t i = 0; i < (1ull << order); ++i) {
        const PageFrame &frame = frames[pfn + i];
        if (frame.free || frame.use != use || frame.owner != owner)
            return false;
    }
    return true;
}

PageTypeInfo
BuddyAllocator::pageTypeInfo() const
{
    PageTypeInfo info;
    for (unsigned mt = 0; mt < kMigrateTypes; ++mt)
        for (unsigned order = 0; order < kMaxOrder; ++order)
            info.blocks[mt][order] = lists[mt][order].count;
    return info;
}

uint64_t
BuddyAllocator::pcpCount() const
{
    uint64_t count = 0;
    for (const auto &cache : pcp)
        count += cache.size();
    return count;
}

void
BuddyAllocator::drainPcp()
{
    for (auto &cache : pcp) {
        for (Pfn pfn : cache)
            freeCore(pfn, 0, frames[pfn].migrateType);
        cache.clear();
    }
}

void
BuddyAllocator::saveState(base::ArchiveWriter &w) const
{
    w.u64(frames.size());
    for (Pfn pfn = 0; pfn < frames.size(); ++pfn) {
        const PageFrame &frame = frames[pfn];
        w.u64(frame.nextFree);
        w.u64(frame.prevFree);
        w.u8(frame.order);
        w.boolean(frame.free);
        w.boolean(frame.freeHead);
        w.u8(static_cast<uint8_t>(frame.migrateType));
        w.u8(static_cast<uint8_t>(frame.use));
        w.boolean(frame.pinned);
        w.u16(frame.owner);
    }
    for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
        for (unsigned order = 0; order < kMaxOrder; ++order) {
            w.u64(lists[mt][order].head);
            w.u64(lists[mt][order].count);
        }
    }
    w.u64(freeCount);
    for (const auto &cache : pcp)
        w.u64vec(cache);
}

base::Status
BuddyAllocator::loadState(base::ArchiveReader &r)
{
    const uint64_t frame_count = r.u64();
    if (r.ok() && frame_count != frames.size())
        r.fail();
    std::vector<PageFrame> new_frames(r.ok() ? frame_count : 0);
    for (PageFrame &frame : new_frames) {
        if (!r.ok())
            break;
        frame.nextFree = r.u64();
        frame.prevFree = r.u64();
        frame.order = r.u8();
        frame.free = r.boolean();
        frame.freeHead = r.boolean();
        const uint8_t mt = r.u8();
        const uint8_t use = r.u8();
        frame.pinned = r.boolean();
        frame.owner = r.u16();
        if (mt >= kMigrateTypes || use > static_cast<uint8_t>(
                PageUse::DmaBuffer) || frame.order >= kMaxOrder) {
            r.fail();
            break;
        }
        frame.migrateType = static_cast<MigrateType>(mt);
        frame.use = static_cast<PageUse>(use);
    }
    std::array<std::array<FreeList, kMaxOrder>, kMigrateTypes>
        new_lists{};
    for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
        for (unsigned order = 0; order < kMaxOrder; ++order) {
            new_lists[mt][order].head = r.u64();
            new_lists[mt][order].count = r.u64();
        }
    }
    const uint64_t new_free_count = r.u64();
    std::array<std::vector<Pfn>, kMigrateTypes> new_pcp;
    for (auto &cache : new_pcp)
        cache = r.u64vec();
    if (!r.ok())
        return r.status();

    // Replicate checkConsistency() without the panics: a corrupted
    // snapshot must fail the load, not abort the process. Walks are
    // bounds-checked and capped so cyclic linkage cannot hang us.
    uint64_t listed_pages = 0;
    for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
        for (unsigned order = 0; order < kMaxOrder; ++order) {
            const FreeList &list = new_lists[mt][order];
            uint64_t walked = 0;
            Pfn prev = kInvalidPfn;
            Pfn pfn = list.head;
            while (pfn != kInvalidPfn) {
                if (pfn >= new_frames.size() || walked >= list.count)
                    return base::Status(
                        base::ErrorCode::InvalidArgument);
                const PageFrame &frame = new_frames[pfn];
                const bool block_in_range =
                    pfn + (1ull << order) <= new_frames.size();
                if (!frame.free || !frame.freeHead
                    || frame.order != order
                    || frame.migrateType != static_cast<MigrateType>(mt)
                    || frame.prevFree != prev || !block_in_range
                    || (pfn & ((1ull << order) - 1)) != 0) {
                    return base::Status(
                        base::ErrorCode::InvalidArgument);
                }
                for (uint64_t i = 1; i < (1ull << order); ++i) {
                    if (!new_frames[pfn + i].free
                        || new_frames[pfn + i].freeHead) {
                        return base::Status(
                            base::ErrorCode::InvalidArgument);
                    }
                }
                prev = pfn;
                ++walked;
                listed_pages += 1ull << order;
                pfn = frame.nextFree;
            }
            if (walked != list.count)
                return base::Status(base::ErrorCode::InvalidArgument);
        }
    }
    uint64_t free_frames = 0;
    for (const PageFrame &frame : new_frames)
        free_frames += frame.free ? 1 : 0;
    if (listed_pages != new_free_count || free_frames != new_free_count)
        return base::Status(base::ErrorCode::InvalidArgument);
    for (const auto &cache : new_pcp) {
        for (Pfn pfn : cache) {
            if (pfn >= new_frames.size() || new_frames[pfn].free)
                return base::Status(base::ErrorCode::InvalidArgument);
        }
    }

    frames = FrameStore(new_frames);
    lists = new_lists;
    freeCount = new_free_count;
    pcp = std::move(new_pcp);
    return base::Status::success();
}

void
BuddyAllocator::checkConsistency() const
{
    // 1. Every list entry is a free head of the right order/type, and
    //    the doubly-linked structure is intact.
    uint64_t listed_pages = 0;
    for (unsigned mt = 0; mt < kMigrateTypes; ++mt) {
        for (unsigned order = 0; order < kMaxOrder; ++order) {
            const FreeList &list = lists[mt][order];
            uint64_t walked = 0;
            Pfn prev = kInvalidPfn;
            for (Pfn pfn = list.head; pfn != kInvalidPfn;
                 pfn = frames[pfn].nextFree) {
                const PageFrame &frame = frames[pfn];
                HH_ASSERT(frame.free && frame.freeHead);
                HH_ASSERT(frame.order == order);
                HH_ASSERT(frame.migrateType
                          == static_cast<MigrateType>(mt));
                HH_ASSERT(frame.prevFree == prev);
                HH_ASSERT((pfn & ((1ull << order) - 1)) == 0);
                // Tail frames of the block are free but not heads.
                for (uint64_t i = 1; i < (1ull << order); ++i) {
                    HH_ASSERT(frames[pfn + i].free);
                    HH_ASSERT(!frames[pfn + i].freeHead);
                }
                prev = pfn;
                ++walked;
                listed_pages += 1ull << order;
            }
            HH_ASSERT(walked == list.count);
        }
    }
    HH_ASSERT(listed_pages == freeCount);

    // 2. Every frame marked free belongs to exactly one listed block.
    uint64_t free_frames = 0;
    for (Pfn pfn = 0; pfn < frames.size(); ++pfn)
        free_frames += frames[pfn].free ? 1 : 0;
    HH_ASSERT(free_frames == freeCount);
}

} // namespace hh::mm
