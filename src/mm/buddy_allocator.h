/**
 * @file
 * Linux-style buddy page allocator (Section 2.3).
 *
 * Faithful to the policies Page Steering depends on:
 *   - per-migratetype free lists, one per order 0..kMaxOrder-1;
 *   - allocation takes the smallest sufficient order and splits larger
 *     blocks only when the smaller lists are empty;
 *   - freed blocks coalesce with their buddy when both are free and of
 *     the same migrate type;
 *   - when a migrate type is exhausted, the allocator *steals* the
 *     largest available block of a fallback type and converts it
 *     (Section 2.4);
 *   - an order-0 per-CPU pageset (PCP) front-end that is consulted
 *     before the buddy lists (the "free page cache" noise source of
 *     Section 4.2.3).
 */

#ifndef HYPERHAMMER_MM_BUDDY_ALLOCATOR_H
#define HYPERHAMMER_MM_BUDDY_ALLOCATOR_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/archive.h"
#include "base/status.h"
#include "base/types.h"
#include "fault/fault.h"
#include "mm/frame_store.h"
#include "mm/page.h"

namespace hh::mm {

/**
 * Snapshot of free-list occupancy, the simulator's equivalent of
 * /proc/pagetypeinfo (used for Figure 3).
 */
struct PageTypeInfo
{
    /** blocks[mt][order] = number of free blocks. */
    std::array<std::array<uint64_t, kMaxOrder>, kMigrateTypes> blocks{};

    /** Free blocks of one (type, order). */
    uint64_t
    blockCount(MigrateType mt, unsigned order) const
    {
        return blocks[static_cast<unsigned>(mt)][order];
    }

    /**
     * Total free *pages* in orders [0, below_order) of one migrate
     * type: the paper's "noise pages" metric when applied to
     * Unmovable with below_order = 9.
     */
    uint64_t pagesBelowOrder(MigrateType mt, unsigned below_order) const;

    /** Total free pages of a migrate type across all orders. */
    uint64_t totalPages(MigrateType mt) const;
};

/** Per-CPU pageset configuration. */
struct PcpConfig
{
    /** Maximum order-0 pages parked in the PCP before draining. */
    unsigned highWatermark = 186;
    /** Pages moved per refill/drain batch. */
    unsigned batch = 63;
};

/** Allocator construction parameters. */
struct BuddyConfig
{
    /** Managed physical pages (frames [0, totalPages)). */
    uint64_t totalPages;
    PcpConfig pcp;
    /**
     * Isolation-domain partitioning (the mitigation layer). Empty --
     * the default -- builds one General domain over all of memory and
     * behaves bit-identically to the undomained allocator.
     */
    DomainLayout layout;
};

/** Read-only view of one isolation domain (tests, defenses, census). */
struct DomainInfo
{
    Pfn start = 0;
    /** One past the last frame, guard band included. */
    Pfn end = 0;
    /** Start of the guard band ([usableEnd, end) is never allocated). */
    Pfn usableEnd = 0;
    DomainClass cls = DomainClass::General;
};

/**
 * The buddy allocator over a flat frame database. Single NUMA node,
 * single zone: the evaluation machines are small desktops (Section 5)
 * and the attack is insensitive to zone structure.
 */
class BuddyAllocator
{
  private:
    /** Restricts the fork constructor to forkFrom(). */
    struct ForkTag
    {};

  public:
    explicit BuddyAllocator(BuddyConfig config);

    /**
     * Copy-on-write fork constructor (reachable only through
     * forkFrom(): ForkTag is private). Shares the frame database
     * chunk-wise and copies the free lists and PCP stacks. The fork
     * starts with no fault injector installed.
     */
    BuddyAllocator(ForkTag, const BuddyAllocator &src);

    /** Deep copies are banned: clone via forkFrom(). */
    BuddyAllocator(const BuddyAllocator &) = delete;
    BuddyAllocator &operator=(const BuddyAllocator &) = delete;

    /**
     * A copy-on-write clone of @p src: O(chunk pointers), with every
     * subsequent frame mutation unsharing one chunk. The source must
     * not be mutated while forks are being taken.
     */
    static std::unique_ptr<BuddyAllocator>
    forkFrom(const BuddyAllocator &src)
    {
        return std::make_unique<BuddyAllocator>(ForkTag{}, src);
    }

    /** Number of managed frames. */
    uint64_t totalPages() const { return frames.size(); }

    /** Frames currently free (buddy lists + PCP). */
    uint64_t freePages() const { return freeCount + pcpCount(); }

    /** Read-only frame metadata. */
    const PageFrame &frame(Pfn pfn) const;

    /**
     * Allocate a 2^order block with the given migrate type.
     * Order-0 unmovable/movable requests go through the PCP first.
     *
     * @return PFN of the block head, or NoMemory
     */
    [[nodiscard]] base::Expected<Pfn> allocPages(unsigned order, MigrateType mt,
                                   PageUse use, uint16_t owner = 0);

    /**
     * Allocate ignoring migrate types: take the smallest available
     * block from *any* list (Xen's alloc_domheap_pages has no
     * migrate-type separation; Section 6). The block keeps the
     * migrate type of the list it came from.
     */
    [[nodiscard]] base::Expected<Pfn> allocPagesAnyType(unsigned order, PageUse use,
                                          uint16_t owner = 0);

    /** Free a block previously returned by allocPages. */
    void freePages(Pfn pfn, unsigned order);

    /**
     * Free a block and *retype* it in the process (models the path
     * where madvise(DONTNEED) returns a THP-backed region: the freed
     * range keeps its pageblock migrate type).
     */
    void freePagesAs(Pfn pfn, unsigned order, MigrateType mt);

    /** Pin / unpin one frame (VFIO). Pinned frames must be allocated. */
    void setPinned(Pfn pfn, bool pinned);

    /** Update the usage tag of an allocated frame. */
    void setUse(Pfn pfn, PageUse use, uint16_t owner);

    /** Retype an allocated frame (pinning marks frames unmovable). */
    void setMigrateType(Pfn pfn, MigrateType mt);

    /**
     * True when every frame of the 2^order block is allocated with
     * the given use and owner -- the precondition for freeing the
     * block wholesale (a ballooned-out page breaks it).
     */
    bool blockUniformlyOwned(Pfn pfn, unsigned order, PageUse use,
                             uint16_t owner) const;

    /** Free-list census (the /proc/pagetypeinfo equivalent). */
    PageTypeInfo pageTypeInfo() const;

    /** @name Isolation domains */
    /// @{

    /** Number of domains (1 for the undefended layout). */
    size_t domainCount() const { return domains.size(); }

    /** Geometry and class of one domain. */
    DomainInfo domainInfo(size_t idx) const;

    /** Index of the domain containing @p pfn. */
    size_t domainIndexOf(Pfn pfn) const;

    /** Total frames reserved as guard bands across all domains. */
    uint64_t guardPageCount() const;
    /// @}

    /** Current number of order-0 pages held by the PCP front-end. */
    uint64_t pcpCount() const;

    /** Drain all PCP pages back into the buddy lists. */
    void drainPcp();

    /**
     * Verify internal invariants (every free block correctly linked,
     * buddy bitmap consistent, no double-free). O(frames); tests only.
     */
    void checkConsistency() const;

    /**
     * Install (or clear) the host's fault injector. Not owned; must
     * outlive this allocator. Null means the fault-free fast path.
     */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        faultInjector = injector;
    }

    /** Serialize the frame database, free lists and PCP stacks. */
    void saveState(base::ArchiveWriter &w) const;

    /**
     * Restore state written by saveState() on an allocator managing
     * the same number of frames. Re-validates every free-list linkage
     * invariant (a non-panicking checkConsistency()) before
     * committing, so corrupt snapshots are rejected, never installed.
     */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    struct FreeList
    {
        Pfn head = kInvalidPfn;
        uint64_t count = 0;
    };

    /**
     * One isolation domain: a contiguous PFN range with its own free
     * lists and PCP front-end. Per-domain PCPs are required for
     * correctness, not just locality: a shared order-0 cache would hand
     * pages freed in one domain to allocations another domain must not
     * see. Free blocks never coalesce across a domain boundary (the
     * guard band is permanently allocated, so no buddy merge can span
     * it even when domains abut).
     */
    struct Domain
    {
        Pfn start = 0;
        Pfn end = 0;
        Pfn usableEnd = 0;
        DomainClass cls = DomainClass::General;
        /** lists[mt][order] */
        std::array<std::array<FreeList, kMaxOrder>, kMigrateTypes>
            lists{};
        std::array<std::vector<Pfn>, kMigrateTypes> pcp;
    };

    FrameStore frames;
    std::vector<Domain> domains;
    uint64_t freeCount = 0;

    /** PCP front-end configuration, shared by every domain. */
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    PcpConfig pcpCfg;
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    bool crossFallback = false;
    fault::FaultInjector *faultInjector = nullptr;

    Domain &domainOf(Pfn pfn);
    const Domain &domainOf(Pfn pfn) const;

    void listPush(Domain &dom, MigrateType mt, unsigned order, Pfn pfn);
    void listRemove(Domain &dom, MigrateType mt, unsigned order,
                    Pfn pfn);
    Pfn listPop(Domain &dom, MigrateType mt, unsigned order);

    /** Core buddy alloc within one domain (no PCP). */
    [[nodiscard]] base::Expected<Pfn> allocCore(Domain &dom,
                                                unsigned order,
                                                MigrateType mt);

    /** Core buddy free (no PCP), coalescing within the domain. */
    void freeCore(Domain &dom, Pfn pfn, unsigned order, MigrateType mt);

    /** Steal the largest block of another migrate type (same domain). */
    [[nodiscard]] base::Expected<Pfn> stealFallback(Domain &dom,
                                                    unsigned order,
                                                    MigrateType mt);

    /** Drain one domain's PCP caches back into its buddy lists. */
    void drainPcpDomain(Domain &dom);

    /**
     * True when @p dom should be tried for @p use on this preference
     * pass: 0 = specific admitting domains in layout order, 1 =
     * General domains, 2 = the cross-domain fallback over the rest.
     */
    static bool domainOnPass(const Domain &dom, PageUse use, int pass);

    void markAllocated(Pfn pfn, unsigned order, MigrateType mt,
                       PageUse use, uint16_t owner);
};

} // namespace hh::mm

#endif // HYPERHAMMER_MM_BUDDY_ALLOCATOR_H
