/**
 * @file
 * Chunked copy-on-write storage for the buddy allocator's frame
 * database.
 *
 * A 16 GB host has 4 M PageFrame records (~128 MB); deep-copying them
 * per Monte-Carlo trial dominated the clone cost. FrameStore splits the
 * flat array into fixed-size chunks held by shared_ptr: fork() copies
 * only the chunk pointer table, and the first write to a shared chunk
 * copies that one chunk (write-time unsharing). A trial that touches
 * N frames pays O(N / kChunkFrames) chunk copies, not O(total frames).
 *
 * Thread safety matches the trial engine's needs: a frozen template's
 * chunks are only ever read, each fork owns its pointer table
 * exclusively, and mut() copies before the first write whenever a chunk
 * is still shared -- concurrent forks never write the same chunk.
 */

#ifndef HYPERHAMMER_MM_FRAME_STORE_H
#define HYPERHAMMER_MM_FRAME_STORE_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/log.h"
#include "base/types.h"
#include "mm/page.h"

namespace hh::mm {

/** Copy-on-write array of PageFrame records, indexed by PFN. */
class FrameStore
{
  public:
    /** Frames per chunk (4096 frames == 16 MiB of managed memory). */
    static constexpr unsigned kChunkShift = 12;
    static constexpr uint64_t kChunkFrames = 1ull << kChunkShift;

    /** @p count value-initialized frames (all defaults). */
    explicit FrameStore(uint64_t count) : frameCount(count)
    {
        chunks.resize((count + kChunkFrames - 1) / kChunkFrames);
        for (auto &chunk : chunks)
            chunk = std::make_shared<Chunk>();
    }

    /** Adopt a validated flat array (the loadState() commit path). */
    explicit FrameStore(const std::vector<PageFrame> &frames)
        : FrameStore(frames.size())
    {
        for (uint64_t i = 0; i < frames.size(); ++i)
            chunks[i >> kChunkShift]->f[i & (kChunkFrames - 1)] =
                frames[i];
    }

    /** Deep copies are banned: clone via fork(). */
    FrameStore(const FrameStore &) = delete;
    FrameStore &operator=(const FrameStore &) = delete;
    FrameStore(FrameStore &&) = default;
    FrameStore &operator=(FrameStore &&) = default;

    uint64_t size() const { return frameCount; }

    /** Read-only access; never unshares. */
    const PageFrame &
    operator[](Pfn pfn) const
    {
        HH_ASSERT(pfn < frameCount);
        return chunks[pfn >> kChunkShift]->f[pfn & (kChunkFrames - 1)];
    }

    /**
     * Writable access: copies the containing chunk first when it is
     * still shared with a template or another fork.
     */
    PageFrame &
    mut(Pfn pfn)
    {
        HH_ASSERT(pfn < frameCount);
        std::shared_ptr<Chunk> &chunk = chunks[pfn >> kChunkShift];
        if (chunk.use_count() > 1)
            chunk = std::make_shared<Chunk>(*chunk);
        return chunk->f[pfn & (kChunkFrames - 1)];
    }

    /**
     * A copy-on-write clone: shares every chunk. O(chunks), i.e.
     * ~1/4096th of the frame count.
     */
    FrameStore
    fork() const
    {
        FrameStore forked;
        forked.frameCount = frameCount;
        forked.chunks = chunks;
        return forked;
    }

    /** Chunks privately owned by this store (diagnostics/tests). */
    uint64_t
    unsharedChunks() const
    {
        uint64_t count = 0;
        for (const auto &chunk : chunks)
            count += chunk.use_count() == 1 ? 1 : 0;
        return count;
    }

  private:
    struct Chunk
    {
        std::array<PageFrame, kChunkFrames> f{};
    };

    FrameStore() = default;

    uint64_t frameCount = 0;
    std::vector<std::shared_ptr<Chunk>> chunks;
};

} // namespace hh::mm

#endif // HYPERHAMMER_MM_FRAME_STORE_H
