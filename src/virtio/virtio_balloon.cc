#include "virtio_balloon.h"

#include "base/container_util.h"
#include "base/log.h"

namespace hh::virtio {

VirtioBalloonDevice::~VirtioBalloonDevice()
{
    // Replacement frames are not part of any original backing block;
    // return them before the block-wise teardown runs. GPA-sorted so
    // the allocator's free lists end up in a reproducible state.
    for (const auto &[gpa, frame] : base::sortedItems(replacements)) {
        if (inflated.count(gpa))
            continue; // re-inflated after a deflate: frame is gone
        if (const base::Status s = mmu.unmap(GuestPhysAddr(gpa)); !s.ok())
            base::warn("balloon teardown: unmap(%#llx) failed: %s",
                       static_cast<unsigned long long>(gpa),
                       base::errorName(s.error()));
        dram.backend().clearPage(frame);
        buddy.freePages(frame, 0);
    }
}

base::Status
VirtioBalloonDevice::inflatePage(GuestPhysAddr gpa)
{
    if (!gpa.pageAligned())
        return base::ErrorCode::InvalidArgument;
    if (regionBytes
        && (gpa < regionStart || gpa >= regionStart + regionBytes))
        return base::ErrorCode::InvalidArgument;
    if (inflated.count(gpa.value()))
        return base::ErrorCode::Exists;
    // Delayed reclaim: the host queues the inflate but cannot free the
    // page this round; the guest may retry.
    if (const fault::FaultEntry *f = HH_FAULT_POINT(
            faultInjector, fault::FaultSite::BalloonInflate)) {
        if (f->kind == fault::FaultKind::DelayedReclaim)
            return base::ErrorCode::Busy;
    }
    auto leaf = mmu.leafEntry(gpa);
    if (!leaf)
        return base::Status(leaf.error());
    if (leaf->largePage()) {
        // The guest must split hugepage-backed ranges before
        // ballooning them; the device rejects 2 MB leaves.
        return base::ErrorCode::InvalidArgument;
    }
    auto hpa = mmu.translate(gpa);
    if (!hpa)
        return base::Status(hpa.error());
    const base::Status unmapped = mmu.unmap(gpa);
    if (!unmapped.ok())
        return unmapped;
    dram.backend().clearPage(hpa->pfn());
    // Balloon pages free back with their existing (movable) type:
    // without VFIO nothing made them unmovable (Section 6).
    buddy.freePages(hpa->pfn(), 0);
    inflated.insert(gpa.value());
    return base::Status::success();
}

base::Status
VirtioBalloonDevice::deflatePage(GuestPhysAddr gpa)
{
    if (!inflated.count(gpa.value()))
        return base::ErrorCode::NotFound;
    auto page = buddy.allocPages(0, mm::MigrateType::Movable,
                                 mm::PageUse::GuestMemory, owner);
    if (!page)
        return page.error();
    const base::Status mapped =
        mmu.map4k(gpa, HostPhysAddr(*page * kPageSize), false);
    if (!mapped.ok()) {
        buddy.freePages(*page, 0);
        return mapped;
    }
    inflated.erase(gpa.value());
    replacements[gpa.value()] = *page;
    return base::Status::success();
}

void
VirtioBalloonDevice::saveState(base::ArchiveWriter &w) const
{
    w.u64vec(base::sortedKeys(inflated));
    w.u64(replacements.size());
    for (const auto &[gpa, pfn] : base::sortedItems(replacements)) {
        w.u64(gpa);
        w.u64(pfn);
    }
}

base::Status
VirtioBalloonDevice::loadState(base::ArchiveReader &r)
{
    const std::vector<uint64_t> inflated_gpas = r.u64vec();
    const uint64_t replacement_count = r.count(16);
    std::unordered_map<uint64_t, Pfn> new_replacements;
    new_replacements.reserve(replacement_count);
    for (uint64_t i = 0; i < replacement_count && r.ok(); ++i) {
        const uint64_t gpa = r.u64();
        const Pfn pfn = r.u64();
        if (pfn >= buddy.totalPages()) {
            r.fail();
            break;
        }
        new_replacements[gpa] = pfn;
    }
    if (!r.ok())
        return r.status();
    inflated.clear();
    inflated.insert(inflated_gpas.begin(), inflated_gpas.end());
    replacements = std::move(new_replacements);
    return base::Status::success();
}

} // namespace hh::virtio
