/**
 * @file
 * virtio-balloon model (Section 6 discussion).
 *
 * The balloon is KVM's older, page-granular overcommit device: the
 * guest "inflates" by handing individual 4 KB pages to the host, which
 * frees them as order-0 blocks. Unlike virtio-mem there is no 2 MB
 * sub-block structure, so an attacker does not need to exhaust
 * small-order free lists first -- but without VFIO the released pages
 * free as MIGRATE_MOVABLE, and EPT allocations only reach them through
 * migrate-type fallback *stealing* once the unmovable lists are
 * completely dry. The bench_ablation_variants experiment quantifies
 * this difference.
 */

#ifndef HYPERHAMMER_VIRTIO_VIRTIO_BALLOON_H
#define HYPERHAMMER_VIRTIO_VIRTIO_BALLOON_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "base/archive.h"
#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "fault/fault.h"
#include "kvm/mmu.h"
#include "mm/buddy_allocator.h"

namespace hh::virtio {

/** Host-side virtio-balloon device. */
class VirtioBalloonDevice
{
  public:
    /**
     * @param region_start/@p region_bytes restrict ballooning to a
     * GPA window (the VM wires this to boot RAM so balloon holes
     * never overlap virtio-mem sub-blocks; zero bytes = unrestricted)
     */
    VirtioBalloonDevice(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                        kvm::Mmu &mmu, uint16_t owner_id,
                        GuestPhysAddr region_start = GuestPhysAddr(0),
                        uint64_t region_bytes = 0,
                        fault::FaultInjector *fault_injector = nullptr)
        : dram(dram),
          buddy(buddy),
          mmu(mmu),
          owner(owner_id),
          regionStart(region_start),
          regionBytes(region_bytes),
          faultInjector(fault_injector)
    {}

    ~VirtioBalloonDevice();

    VirtioBalloonDevice(const VirtioBalloonDevice &) = delete;
    VirtioBalloonDevice &operator=(const VirtioBalloonDevice &) = delete;

    /**
     * Guest inflates one page: the 4 KB EPT mapping of @p gpa is torn
     * down and its host backing freed as an order-0 MOVABLE block.
     * Only pages mapped with 4 KB granularity can balloon (the guest
     * splits THP ranges before inflating).
     */
    [[nodiscard]] base::Status inflatePage(GuestPhysAddr gpa);

    /**
     * Guest deflates a previously inflated page: fresh host backing is
     * allocated and mapped.
     */
    [[nodiscard]] base::Status deflatePage(GuestPhysAddr gpa);

    /** Pages currently in the balloon. */
    uint64_t inflatedCount() const { return inflated.size(); }

    /** Serialize the inflated set and replacement map (sorted order). */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore state written by saveState(). */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    kvm::Mmu &mmu;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time identity, re-supplied by the restoring caller
    uint16_t owner;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time region window, fixed by the wiring VM
    GuestPhysAddr regionStart;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time region window, fixed by the wiring VM
    uint64_t regionBytes;
    fault::FaultInjector *faultInjector;
    std::unordered_set<uint64_t> inflated;
    /**
     * GPA -> replacement frame installed by deflatePage(). These
     * frames live outside the VM's original backing blocks and are
     * returned by the device destructor.
     */
    std::unordered_map<uint64_t, Pfn> replacements;
};

} // namespace hh::virtio

#endif // HYPERHAMMER_VIRTIO_VIRTIO_BALLOON_H
