/**
 * @file
 * virtio-mem device and guest driver (Sections 2.6, 4.2.2).
 *
 * virtio-mem is KVM's block-granular memory overcommit mechanism: the
 * hypervisor exposes a GPA region split into 2 MB *sub-blocks*, sets a
 * *requested size*, and the guest driver plugs/unplugs sub-blocks to
 * converge on it. Crucially, the device does not verify that guest
 * requests move toward the requested size -- the lack of enforcement
 * Page Steering exploits to release chosen sub-blocks.
 *
 * The model includes:
 *   - the host device: plug/unplug handling, EPT (un)mapping, VFIO
 *     (un)pinning, madvise-style freeing of order-9 unmovable blocks;
 *   - the stock guest driver behaviour (converge on the target);
 *   - the attacker's two driver modifications: release a *specific*
 *     sub-block, and suppress the automatic re-plug;
 *   - the authors' proposed QEMU quarantine countermeasure (Section 6)
 *     including the plug-failure retry pattern that makes naive
 *     quarantining break the protocol.
 */

#ifndef HYPERHAMMER_VIRTIO_VIRTIO_MEM_H
#define HYPERHAMMER_VIRTIO_VIRTIO_MEM_H

#include <cstdint>
#include <vector>

#include "base/archive.h"
#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "fault/fault.h"
#include "iommu/viommu.h"
#include "kvm/mmu.h"
#include "mm/buddy_allocator.h"

namespace hh::virtio {

/** Index of a 2 MB sub-block within the virtio-mem region. */
using SubBlockId = uint64_t;

/**
 * The quarantine countermeasure proposed in Section 6: with target size
 * T, plugged size V and a request of signed size delta, a request is
 * suspicious when it overshoots (|delta| > |T - V|) or moves away from
 * the target (delta * (T - V) < 0); the device then responds NACK.
 *
 * The mitigation layer generalizes the patch with three knobs, all
 * zero by default (which reproduces the original patch exactly):
 * `toleranceSubBlocks` widens the suspicion boundary so small
 * wrong-direction moves (the stock driver's plug-failure recovery)
 * pass; `graceRequests`/`windowRequests` forgive a budget of
 * suspicious requests per request window, trading detection latency
 * for protocol compatibility.
 */
struct QuarantinePolicy
{
    bool enabled = false;
    /** Sub-blocks of slack before a move counts as suspicious. */
    uint64_t toleranceSubBlocks = 0;
    /** Suspicious requests forgiven per window (0 = NACK instantly). */
    uint64_t graceRequests = 0;
    /** Requests per grace window (0 = one never-resetting window). */
    uint64_t windowRequests = 0;

    /**
     * Stateless core: true when the request moves suspiciously. The
     * device layers the grace-window state machine on top of this.
     */
    bool
    suspicious(int64_t delta, uint64_t target, uint64_t plugged) const
    {
        const int64_t gap = static_cast<int64_t>(target)
            - static_cast<int64_t>(plugged);
        const auto magnitude = [](int64_t v) {
            return v < 0 ? static_cast<uint64_t>(-v)
                         : static_cast<uint64_t>(v);
        };
        const uint64_t slack = toleranceSubBlocks * kHugePageSize;
        // Overshoot: |delta| > |T - V| (+ tolerance).
        if (magnitude(delta) > magnitude(gap) + slack)
            return true;
        // Wrong direction: delta * (T - V) < 0, tested via signs to
        // avoid overflow on byte-sized quantities. Within the slack a
        // wrong-direction move is tolerated (plug-failure recovery).
        if ((delta > 0 && gap < 0) || (delta < 0 && gap > 0))
            return magnitude(delta) > slack;
        return false;
    }

    /** The original stateless patch semantics (tests, bench E8). */
    bool
    rejects(int64_t delta, uint64_t target, uint64_t plugged) const
    {
        return enabled && suspicious(delta, target, plugged);
    }
};

/** virtio-mem device configuration. */
struct VirtioMemConfig
{
    /** First GPA of the device-managed region (2 MB aligned). */
    GuestPhysAddr regionStart{0};
    /** Size of the region in bytes (multiple of 2 MB). */
    uint64_t regionSize = 0;
    /** Initially plugged bytes (from the low end of the region). */
    uint64_t initialPlugged = 0;
    QuarantinePolicy quarantine;
};

/** Statistics the evaluation reads off the device. */
struct VirtioMemStats
{
    uint64_t plugRequests = 0;
    uint64_t unplugRequests = 0;
    uint64_t nackedRequests = 0;
    /** Unplugs answered Busy by an injected delayed reclaim. */
    uint64_t deferredUnplugs = 0;
    /** Host PFNs of the blocks released by unplug (Table 2's log). */
    std::vector<Pfn> releasedBlockPfns;
};

/**
 * Host-side virtio-mem device (the QEMU part).
 */
class VirtioMemDevice
{
  public:
    /**
     * @param vfio may be null when the VM has no passthrough device;
     *             with VFIO present, plugged blocks are pinned and
     *             released blocks free as MIGRATE_UNMOVABLE.
     */
    VirtioMemDevice(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                    kvm::Mmu &mmu, iommu::VfioContainer *vfio,
                    VirtioMemConfig config, uint16_t owner_id,
                    fault::FaultInjector *fault_injector = nullptr);

    /**
     * Restore-mode constructor: skips the initial sub-block plugging
     * (the snapshot carries the plugged set); loadState() must follow.
     */
    VirtioMemDevice(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                    kvm::Mmu &mmu, iommu::VfioContainer *vfio,
                    VirtioMemConfig config, uint16_t owner_id,
                    fault::FaultInjector *fault_injector,
                    base::RestoreTag);

    ~VirtioMemDevice();

    VirtioMemDevice(const VirtioMemDevice &) = delete;
    VirtioMemDevice &operator=(const VirtioMemDevice &) = delete;

    /** Region geometry. */
    GuestPhysAddr regionStart() const { return cfg.regionStart; }
    uint64_t regionSize() const { return cfg.regionSize; }
    uint64_t subBlockCount() const { return plugged.size(); }

    /** Currently plugged bytes (the paper's V). */
    uint64_t pluggedSize() const { return pluggedBytes; }

    /** Hypervisor-requested target size (the paper's T). */
    uint64_t requestedSize() const { return requestedBytes; }

    /** Hypervisor-side resize: updates T and notifies the driver. */
    void setRequestedSize(uint64_t bytes) { requestedBytes = bytes; }

    /** True when sub-block @p sb is plugged. */
    bool isPlugged(SubBlockId sb) const;

    /** GPA of sub-block @p sb. */
    GuestPhysAddr
    subBlockGpa(SubBlockId sb) const
    {
        return cfg.regionStart + sb * kHugePageSize;
    }

    /** Sub-block covering @p gpa; region membership unchecked. */
    SubBlockId
    subBlockOf(GuestPhysAddr gpa) const
    {
        return (gpa - cfg.regionStart) / kHugePageSize;
    }

    /** True when @p gpa lies inside the device region. */
    bool
    contains(GuestPhysAddr gpa) const
    {
        return gpa >= cfg.regionStart
            && gpa < cfg.regionStart + cfg.regionSize;
    }

    /**
     * Guest request: plug sub-block @p sb. Allocates an order-9 THP
     * block on the host, maps it as a 2 MB EPT leaf and (with VFIO)
     * pins it. Subject to quarantine.
     */
    [[nodiscard]] base::Status requestPlug(SubBlockId sb);

    /**
     * Guest request: unplug sub-block @p sb. Unmaps the EPT leaf,
     * unpins, and releases the host backing to the buddy system as an
     * order-9 MIGRATE_UNMOVABLE block (the madvise path under THP).
     * Subject to quarantine.
     */
    [[nodiscard]] base::Status requestUnplug(SubBlockId sb);

    const VirtioMemStats &stats() const { return devStats; }

    /** Serialize plugged bitmap, backing frames, sizes and stats. */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore state written by saveState(). */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    kvm::Mmu &mmu;
    iommu::VfioContainer *vfio;
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    VirtioMemConfig cfg;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time identity, re-supplied by the restoring caller
    uint16_t owner;
    fault::FaultInjector *faultInjector;

    std::vector<bool> plugged;
    /**
     * Host frame backing each plugged sub-block (QEMU's RAMBlock
     * bookkeeping). Deliberately *not* derived from the EPT: the
     * device must stay consistent even when guest page tables are
     * corrupted.
     */
    std::vector<Pfn> backing;
    uint64_t pluggedBytes = 0;
    uint64_t requestedBytes = 0;
    VirtioMemStats devStats;
    /** Suspicious requests forgiven in the current grace window. */
    uint64_t graceUsed = 0;
    /** Requests seen in the current grace window. */
    uint64_t windowRequestCount = 0;

    /**
     * The quarantine decision with the grace-window state machine
     * layered over QuarantinePolicy::suspicious(). Mutates the window
     * counters, so every plug/unplug request routes through here.
     */
    [[nodiscard]] bool quarantineRejects(int64_t delta);

    [[nodiscard]] base::Status plugBacking(SubBlockId sb);
    void unplugBacking(SubBlockId sb);
};

/**
 * Guest-side virtio-mem driver, including the attacker modifications.
 */
class VirtioMemDriver
{
  public:
    explicit VirtioMemDriver(VirtioMemDevice &device) : device(device) {}

    /**
     * Stock behaviour: issue plug/unplug requests until the plugged
     * size matches the device's requested size (or requests fail).
     * @return sub-blocks changed
     */
    uint64_t converge();

    /**
     * Attacker modification 1 (Section 4.2.2, "Voluntary Page
     * Releases"): release the sub-block containing @p gpa regardless
     * of the requested size, via the moral equivalent of
     * virtio_mem_sbm_unplug_sb_online().
     */
    [[nodiscard]] base::Status unplugSpecific(GuestPhysAddr gpa);

    /**
     * Attacker modification 2: when set, converge() never plugs, so
     * voluntarily released blocks are not immediately re-acquired.
     */
    void setSuppressAutoPlug(bool suppress) { suppressPlug = suppress; }
    bool suppressAutoPlug() const { return suppressPlug; }

    /** Serialize the driver's only state, the auto-plug switch. */
    void saveState(base::ArchiveWriter &w) const { w.boolean(suppressPlug); }

    /** Restore state written by saveState(). */
    [[nodiscard]] base::Status
    loadState(base::ArchiveReader &r)
    {
        suppressPlug = r.boolean();
        return r.status();
    }

    /**
     * The benign pattern that defeats naive quarantining (Section 6):
     * on a plug failure the stock Linux driver unplugs the sub-block
     * and retries. Returns the final status.
     */
    [[nodiscard]] base::Status plugWithRetry(SubBlockId sb);

  private:
    VirtioMemDevice &device;
    bool suppressPlug = false;
};

} // namespace hh::virtio

#endif // HYPERHAMMER_VIRTIO_VIRTIO_MEM_H
