#include "virtio_mem.h"

#include "base/log.h"

namespace hh::virtio {

VirtioMemDevice::VirtioMemDevice(dram::DramSystem &dram,
                                 mm::BuddyAllocator &buddy, kvm::Mmu &mmu,
                                 iommu::VfioContainer *vfio,
                                 VirtioMemConfig config, uint16_t owner_id,
                                 fault::FaultInjector *fault_injector)
    : dram(dram),
      buddy(buddy),
      mmu(mmu),
      vfio(vfio),
      cfg(config),
      owner(owner_id),
      faultInjector(fault_injector)
{
    HH_ASSERT(cfg.regionStart.hugePageAligned());
    HH_ASSERT(cfg.regionSize % kHugePageSize == 0);
    HH_ASSERT(cfg.initialPlugged <= cfg.regionSize);
    HH_ASSERT(cfg.initialPlugged % kHugePageSize == 0);

    plugged.assign(cfg.regionSize / kHugePageSize, false);
    backing.assign(plugged.size(), kInvalidPfn);
    requestedBytes = cfg.initialPlugged;
    for (SubBlockId sb = 0; sb < cfg.initialPlugged / kHugePageSize;
         ++sb) {
        const base::Status status = plugBacking(sb);
        if (!status.ok()) {
            // Graceful degradation: requestedBytes keeps the full
            // initial target, so the driver's next converge() retries
            // the remaining sub-blocks once memory frees up.
            base::warn("virtio-mem: deferring initial sub-block "
                       "%llu: %s",
                       static_cast<unsigned long long>(sb),
                       base::errorName(status.error()));
            break;
        }
    }
}

VirtioMemDevice::VirtioMemDevice(dram::DramSystem &dram,
                                 mm::BuddyAllocator &buddy, kvm::Mmu &mmu,
                                 iommu::VfioContainer *vfio,
                                 VirtioMemConfig config, uint16_t owner_id,
                                 fault::FaultInjector *fault_injector,
                                 base::RestoreTag)
    : dram(dram),
      buddy(buddy),
      mmu(mmu),
      vfio(vfio),
      cfg(config),
      owner(owner_id),
      faultInjector(fault_injector)
{
    // No initial plugging: the snapshot's plugged/backing state (and
    // the matching buddy/EPT/pin state) arrives via loadState().
    plugged.assign(cfg.regionSize / kHugePageSize, false);
    backing.assign(plugged.size(), kInvalidPfn);
}

VirtioMemDevice::~VirtioMemDevice()
{
    // Release remaining plugged blocks back to the host (VM teardown).
    for (SubBlockId sb = 0; sb < plugged.size(); ++sb) {
        if (plugged[sb])
            unplugBacking(sb);
    }
}

bool
VirtioMemDevice::isPlugged(SubBlockId sb) const
{
    HH_ASSERT(sb < plugged.size());
    return plugged[sb];
}

base::Status
VirtioMemDevice::plugBacking(SubBlockId sb)
{
    HH_ASSERT(!plugged[sb]);
    // THP on the host: the backing is one physically contiguous
    // order-9 block, mapped as a single 2 MB EPT leaf.
    auto block = buddy.allocPages(9, mm::MigrateType::Movable,
                                  mm::PageUse::GuestMemory, owner);
    if (!block)
        return block.error();
    const base::Status mapped =
        mmu.map2m(subBlockGpa(sb), HostPhysAddr(*block * kPageSize));
    if (!mapped.ok()) {
        buddy.freePages(*block, 9);
        return mapped;
    }
    if (vfio)
        vfio->pinRange(*block, kPagesPerHugePage);
    plugged[sb] = true;
    backing[sb] = *block;
    pluggedBytes += kHugePageSize;
    return base::Status::success();
}

void
VirtioMemDevice::unplugBacking(SubBlockId sb)
{
    HH_ASSERT(plugged[sb]);
    const Pfn block = backing[sb];
    HH_ASSERT(block != kInvalidPfn);

    // The leaf EPT mapping may be a 2 MB leaf or (after a demotion or
    // even guest-induced corruption) 4 KB entries; either way the
    // device tears down everything covering the sub-block's GPAs.
    // hh-lint: allow(status-discard) -- a corrupted range can be partially unmapped already; teardown proceeds regardless
    (void)mmu.unmapHugeRange(subBlockGpa(sb));
    if (vfio)
        vfio->unpinRange(block, kPagesPerHugePage);
    // madvise(MADV_DONTNEED) on a pinned-then-unpinned THP range: the
    // backing returns to the buddy system as one order-9 block that
    // keeps its unmovable character (Section 4.2.2).
    const mm::MigrateType release_type = vfio
        ? mm::MigrateType::Unmovable : mm::MigrateType::Movable;
    if (buddy.blockUniformlyOwned(block, 9, mm::PageUse::GuestMemory,
                                  owner)) {
        for (uint64_t i = 0; i < kPagesPerHugePage; ++i)
            dram.backend().clearPage(block + i);
        buddy.freePagesAs(block, 9, release_type);
    } else {
        // Defensive: something (e.g. a balloon hole) took frames out
        // of the block; release only what this VM still owns.
        for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
            const mm::PageFrame &frame = buddy.frame(block + i);
            if (frame.free || frame.owner != owner
                || frame.use != mm::PageUse::GuestMemory) {
                continue;
            }
            dram.backend().clearPage(block + i);
            buddy.freePagesAs(block + i, 0, release_type);
        }
    }
    plugged[sb] = false;
    backing[sb] = kInvalidPfn;
    pluggedBytes -= kHugePageSize;
    devStats.releasedBlockPfns.push_back(block);
}

bool
VirtioMemDevice::quarantineRejects(int64_t delta)
{
    if (!cfg.quarantine.enabled)
        return false;
    if (cfg.quarantine.windowRequests > 0) {
        if (windowRequestCount >= cfg.quarantine.windowRequests) {
            windowRequestCount = 0;
            graceUsed = 0;
        }
        ++windowRequestCount;
    }
    if (!cfg.quarantine.suspicious(delta, requestedBytes,
                                   pluggedBytes)) {
        return false;
    }
    if (graceUsed < cfg.quarantine.graceRequests) {
        ++graceUsed;
        return false;
    }
    return true;
}

base::Status
VirtioMemDevice::requestPlug(SubBlockId sb)
{
    ++devStats.plugRequests;
    if (sb >= plugged.size())
        return base::ErrorCode::InvalidArgument;
    if (plugged[sb])
        return base::ErrorCode::Exists;
    if (quarantineRejects(static_cast<int64_t>(kHugePageSize))) {
        ++devStats.nackedRequests;
        return base::ErrorCode::Denied;
    }
    return plugBacking(sb);
}

base::Status
VirtioMemDevice::requestUnplug(SubBlockId sb)
{
    ++devStats.unplugRequests;
    if (sb >= plugged.size())
        return base::ErrorCode::InvalidArgument;
    if (!plugged[sb])
        return base::ErrorCode::NotFound;
    if (quarantineRejects(-static_cast<int64_t>(kHugePageSize))) {
        ++devStats.nackedRequests;
        return base::ErrorCode::Denied;
    }
    // Delayed reclaim: the host defers the madvise this round (e.g.
    // the block is still under writeback); the guest may retry.
    if (const fault::FaultEntry *f = HH_FAULT_POINT(
            faultInjector, fault::FaultSite::VirtioUnplug)) {
        if (f->kind == fault::FaultKind::DelayedReclaim) {
            ++devStats.deferredUnplugs;
            return base::ErrorCode::Busy;
        }
    }
    unplugBacking(sb);
    return base::Status::success();
}

uint64_t
VirtioMemDriver::converge()
{
    uint64_t changed = 0;
    // Plug path: lowest unplugged sub-blocks first (the stock driver's
    // "big block manager" walks the region in order).
    while (device.pluggedSize() < device.requestedSize()
           && !suppressPlug) {
        bool progressed = false;
        for (SubBlockId sb = 0; sb < device.subBlockCount(); ++sb) {
            if (device.isPlugged(sb))
                continue;
            if (device.requestPlug(sb).ok()) {
                ++changed;
                progressed = true;
            }
            break;
        }
        if (!progressed)
            break;
    }
    // Unplug path: highest plugged sub-blocks first.
    while (device.pluggedSize() > device.requestedSize()) {
        bool progressed = false;
        for (SubBlockId sb = device.subBlockCount(); sb-- > 0;) {
            if (!device.isPlugged(sb))
                continue;
            if (device.requestUnplug(sb).ok()) {
                ++changed;
                progressed = true;
            }
            break;
        }
        if (!progressed)
            break;
    }
    return changed;
}

base::Status
VirtioMemDriver::unplugSpecific(GuestPhysAddr gpa)
{
    if (!device.contains(gpa))
        return base::ErrorCode::InvalidArgument;
    return device.requestUnplug(device.subBlockOf(gpa));
}

base::Status
VirtioMemDriver::plugWithRetry(SubBlockId sb)
{
    base::Status status = device.requestPlug(sb);
    if (status.ok())
        return status;
    // Stock Linux behaviour on plug failure: unplug the (partially
    // prepared) block, then retry once. From the device's viewpoint
    // the unplug arrives while plugged < requested -- exactly the
    // pattern a naive quarantine flags as malicious (Section 6).
    if (device.isPlugged(sb))
        (void)device.requestUnplug(sb);
    return device.requestPlug(sb);
}

void
VirtioMemDevice::saveState(base::ArchiveWriter &w) const
{
    w.u64(plugged.size());
    for (size_t sb = 0; sb < plugged.size(); ++sb)
        w.boolean(plugged[sb]);
    w.u64vec(backing);
    w.u64(pluggedBytes);
    w.u64(requestedBytes);
    w.u64(devStats.plugRequests);
    w.u64(devStats.unplugRequests);
    w.u64(devStats.nackedRequests);
    w.u64(devStats.deferredUnplugs);
    w.u64vec(devStats.releasedBlockPfns);
    w.u64(graceUsed);
    w.u64(windowRequestCount);
}

base::Status
VirtioMemDevice::loadState(base::ArchiveReader &r)
{
    const uint64_t sub_blocks = r.u64();
    if (r.ok() && sub_blocks != plugged.size())
        r.fail();
    std::vector<bool> new_plugged(r.ok() ? sub_blocks : 0);
    for (size_t sb = 0; sb < new_plugged.size() && r.ok(); ++sb)
        new_plugged[sb] = r.boolean();
    std::vector<Pfn> new_backing = r.u64vec();
    if (r.ok() && new_backing.size() != backing.size())
        r.fail();
    const uint64_t new_plugged_bytes = r.u64();
    const uint64_t new_requested_bytes = r.u64();
    VirtioMemStats stats;
    stats.plugRequests = r.u64();
    stats.unplugRequests = r.u64();
    stats.nackedRequests = r.u64();
    stats.deferredUnplugs = r.u64();
    stats.releasedBlockPfns = r.u64vec();
    const uint64_t new_grace_used = r.u64();
    const uint64_t new_window_count = r.u64();
    for (size_t sb = 0; sb < new_backing.size() && r.ok(); ++sb) {
        // A plugged sub-block must have in-range backing; an unplugged
        // one must not claim any (the teardown path trusts this).
        const bool has_backing = new_backing[sb] != kInvalidPfn;
        if (new_plugged[sb] != has_backing
            || (has_backing
                && new_backing[sb] + kPagesPerHugePage
                       > buddy.totalPages())) {
            r.fail();
        }
    }
    if (!r.ok())
        return r.status();
    plugged = std::move(new_plugged);
    backing = std::move(new_backing);
    pluggedBytes = new_plugged_bytes;
    requestedBytes = new_requested_bytes;
    devStats = std::move(stats);
    graceUsed = new_grace_used;
    windowRequestCount = new_window_count;
    return base::Status::success();
}

} // namespace hh::virtio
