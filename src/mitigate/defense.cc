#include "defense.h"

#include <algorithm>

#include "base/log.h"

namespace hh::mitigate {

namespace {

/**
 * Host-side page budget the kernel-ish partition must hold: the boot
 * noise population, double the churn working set, and 48 order-9
 * blocks of headroom (createVm can hold back up to 47 movable
 * page-cache blocks, and the EPT/IOPT sprays draw order-0 pages), all
 * with a 25% slack so bootHost() never lands on an OOM fatal.
 */
uint64_t
noiseReservePages(const sys::SystemConfig &cfg)
{
    const sys::NoiseConfig &noise = cfg.noise;
    return (noise.kernelResidentPages + noise.unmovableFreePages
            + noise.pageCachePages + noise.churnPagesPerTick * 2
            + 48 * kPagesPerHugePage)
        * 5 / 4;
}

} // namespace

void
Defense::saveState(base::ArchiveWriter &w) const
{
    w.u64(ovh.reservedBytes);
    w.f64(ovh.slowdownFactor);
    w.u64(ovh.nackedRequests);
}

base::Status
Defense::loadState(base::ArchiveReader &r)
{
    ovh.reservedBytes = r.u64();
    ovh.slowdownFactor = r.f64();
    ovh.nackedRequests = r.u64();
    return r.status();
}

void
Defense::fingerprint(base::ArchiveWriter &w) const
{
    w.str(name());
    saveState(w);
}

// --- SilozDomains ---------------------------------------------------

uint64_t
SilozDomains::reservePages(const sys::SystemConfig &cfg) const
{
    if (hostReserveBytes != 0)
        return hostReserveBytes / kPageSize;
    return noiseReservePages(cfg);
}

void
SilozDomains::applyHostConfig(sys::SystemConfig &cfg) const
{
    const uint64_t total_pages = cfg.dram.totalBytes / kPageSize;
    // A guard must cover whole DRAM rows: any PFN-adjacent spill-over
    // from hammering sits within guardRows row stripes of the
    // aggressor, so guardRows stripes of never-allocated frames make
    // cross-domain disturbance physically impossible.
    const uint64_t guard = static_cast<uint64_t>(guardRows)
        * (cfg.dram.mapping.rowStripeBytes() / kPageSize);
    const uint64_t reserve = reservePages(cfg);
    const uint64_t ept_pages =
        std::max<uint64_t>(eptDomainBytes / kPageSize, guard + 1);

    mm::DomainLayout layout;
    layout.domains.push_back({ept_pages, mm::DomainClass::Ept, guard});
    layout.domains.push_back({reserve, mm::DomainClass::Kernel, guard});
    const unsigned n_guest = std::max(1u, guestDomains);
    const uint64_t used = ept_pages + reserve;
    const uint64_t rest = total_pages > used ? total_pages - used : 0;
    for (unsigned i = 0; i + 1 < n_guest; ++i)
        layout.domains.push_back(
            {rest / n_guest, mm::DomainClass::Guest, guard});
    // The final domain has no right-hand neighbour to guard against.
    layout.domains.push_back({0, mm::DomainClass::Guest, 0});
    cfg.domains = layout;
}

base::Status
SilozDomains::configure(sys::HostSystem &host)
{
    const size_t expected = 2 + std::max(1u, guestDomains);
    if (host.buddy().domainCount() != expected) {
        base::warn("siloz: host has %zu domains, expected %zu",
                   host.buddy().domainCount(), expected);
        return base::ErrorCode::InvalidArgument;
    }
    ovh.reservedBytes = host.buddy().guardPageCount() * kPageSize;
    return base::Status::success();
}

void
SilozDomains::saveState(base::ArchiveWriter &w) const
{
    Defense::saveState(w);
    w.u64(hostReserveBytes);
    w.u64(eptDomainBytes);
    w.u32(guestDomains);
    w.u32(guardRows);
}

base::Status
SilozDomains::loadState(base::ArchiveReader &r)
{
    if (const base::Status base_state = Defense::loadState(r);
        !base_state.ok())
        return base_state;
    hostReserveBytes = r.u64();
    eptDomainBytes = r.u64();
    guestDomains = r.u32();
    guardRows = r.u32();
    return r.status();
}

// --- VirtioQuarantine -----------------------------------------------

void
VirtioQuarantine::applyVmConfig(vm::VmConfig &cfg) const
{
    cfg.quarantine.enabled = true;
    cfg.quarantine.toleranceSubBlocks = toleranceSubBlocks;
    cfg.quarantine.graceRequests = graceRequests;
    cfg.quarantine.windowRequests = windowRequests;
}

void
VirtioQuarantine::saveState(base::ArchiveWriter &w) const
{
    Defense::saveState(w);
    w.u64(toleranceSubBlocks);
    w.u64(graceRequests);
    w.u64(windowRequests);
}

base::Status
VirtioQuarantine::loadState(base::ArchiveReader &r)
{
    if (const base::Status base_state = Defense::loadState(r);
        !base_state.ok())
        return base_state;
    toleranceSubBlocks = r.u64();
    graceRequests = r.u64();
    windowRequests = r.u64();
    return r.status();
}

// --- TrrEccSweep ----------------------------------------------------

void
TrrEccSweep::applyHostConfig(sys::SystemConfig &cfg) const
{
    cfg.dram.trr.enabled = trrEnabled;
    cfg.dram.trr.trackerCapacity = trackerCapacity;
    cfg.dram.trr.probabilisticOverflow = probabilisticOverflow;
    cfg.dram.ecc.enabled = eccEnabled;
    cfg.dram.ecc.correctBits = eccCorrectBits;
}

base::Status
TrrEccSweep::configure(sys::HostSystem &host)
{
    (void)host;
    // Refresh-management cost grows with the sampler depth; ECC adds
    // a flat check-bit penalty. Estimates, not measurements: the cell
    // report carries them as the defense's cost axis.
    ovh.slowdownFactor = 1.0
        + (trrEnabled ? 0.005 * static_cast<double>(trackerCapacity)
                      : 0.0)
        + (eccEnabled ? 0.02 : 0.0);
    return base::Status::success();
}

void
TrrEccSweep::saveState(base::ArchiveWriter &w) const
{
    Defense::saveState(w);
    w.boolean(trrEnabled);
    w.u32(trackerCapacity);
    w.boolean(probabilisticOverflow);
    w.boolean(eccEnabled);
    w.u32(eccCorrectBits);
}

base::Status
TrrEccSweep::loadState(base::ArchiveReader &r)
{
    if (const base::Status base_state = Defense::loadState(r);
        !base_state.ok())
        return base_state;
    trrEnabled = r.boolean();
    trackerCapacity = r.u32();
    probabilisticOverflow = r.boolean();
    eccEnabled = r.boolean();
    eccCorrectBits = r.u32();
    return r.status();
}

// --- CattPartition --------------------------------------------------

void
CattPartition::applyHostConfig(sys::SystemConfig &cfg) const
{
    const uint64_t total_pages = cfg.dram.totalBytes / kPageSize;
    mm::DomainLayout layout;
    if (!doubleOwnershipHole) {
        // Authentic CATT: a kernel partition sized for the host's own
        // footprint plus page-table headroom, the rest user-side. No
        // guard rows -- CATT isolates by allocation policy alone.
        uint64_t kernel_pages = kernelBytes / kPageSize;
        if (kernel_pages == 0)
            kernel_pages = noiseReservePages(cfg) + total_pages / 64;
        layout.domains.push_back(
            {kernel_pages, mm::DomainClass::Kernel, 0});
        layout.domains.push_back({0, mm::DomainClass::User, 0});
    } else {
        // CATTmew: DMA-able guest memory is double-owned, so the
        // guest's pinned virtio-mem blocks draw from the kernel-side
        // pool once the user partition fills. Layout the user
        // partition first (guest memory prefers it) and size it for
        // the guest's ordinary boot RAM only -- one sixteenth of the
        // host, the provisioning ratio throughout the evaluation --
        // so the DMA-pinned plugged region, the memory CATTmew
        // identifies as double-owned, straddles into the kernel
        // partition, where released blocks land back on the same
        // free lists the EPT spray allocates from.
        uint64_t kernel_pages = kernelBytes / kPageSize;
        if (kernel_pages == 0)
            kernel_pages = total_pages - total_pages / 16;
        const uint64_t user_pages = total_pages > kernel_pages
            ? total_pages - kernel_pages
            : total_pages / 2;
        layout.domains.push_back(
            {user_pages, mm::DomainClass::User, 0});
        layout.domains.push_back({0, mm::DomainClass::KernelDma, 0});
    }
    cfg.domains = layout;
}

void
CattPartition::saveState(base::ArchiveWriter &w) const
{
    Defense::saveState(w);
    w.u64(kernelBytes);
    w.boolean(doubleOwnershipHole);
}

base::Status
CattPartition::loadState(base::ArchiveReader &r)
{
    if (const base::Status base_state = Defense::loadState(r);
        !base_state.ok())
        return base_state;
    kernelBytes = r.u64();
    doubleOwnershipHole = r.boolean();
    return r.status();
}

// --- DefenseSet -----------------------------------------------------

std::string
DefenseSet::label() const
{
    if (stack.empty())
        return "none";
    std::string joined;
    for (const auto &defense : stack) {
        if (!joined.empty())
            joined += "+";
        joined += defense->name();
    }
    return joined;
}

void
DefenseSet::applyHostConfig(sys::SystemConfig &cfg) const
{
    for (const auto &defense : stack)
        defense->applyHostConfig(cfg);
}

void
DefenseSet::applyVmConfig(vm::VmConfig &cfg) const
{
    for (const auto &defense : stack)
        defense->applyVmConfig(cfg);
}

base::Status
DefenseSet::configure(sys::HostSystem &host)
{
    for (const auto &defense : stack) {
        if (const base::Status configured = defense->configure(host);
            !configured.ok())
            return configured;
    }
    return base::Status::success();
}

DefenseOverhead
DefenseSet::overhead() const
{
    DefenseOverhead total;
    for (const auto &defense : stack) {
        const DefenseOverhead &one = defense->overhead();
        total.reservedBytes += one.reservedBytes;
        total.slowdownFactor *= one.slowdownFactor;
        total.nackedRequests += one.nackedRequests;
    }
    return total;
}

void
DefenseSet::saveState(base::ArchiveWriter &w) const
{
    w.u64(stack.size());
    for (const auto &defense : stack) {
        w.str(defense->name());
        defense->saveState(w);
    }
}

base::Status
DefenseSet::loadState(base::ArchiveReader &r)
{
    const uint64_t stored = r.u64();
    if (!r.ok() || stored != stack.size()) {
        base::warn("defense set: stored %llu defenses, expected %zu",
                   static_cast<unsigned long long>(stored),
                   stack.size());
        return base::ErrorCode::InvalidArgument;
    }
    for (const auto &defense : stack) {
        const std::string stored_name = r.str();
        if (!r.ok() || stored_name != defense->name()) {
            base::warn("defense set: stored defense '%s' does not "
                       "match attached '%s'",
                       stored_name.c_str(), defense->name());
            return base::ErrorCode::InvalidArgument;
        }
        if (const base::Status loaded = defense->loadState(r);
            !loaded.ok())
            return loaded;
    }
    return r.status();
}

void
DefenseSet::fingerprint(base::ArchiveWriter &w) const
{
    w.u64(stack.size());
    for (const auto &defense : stack)
        defense->fingerprint(w);
}

// --- factory --------------------------------------------------------

std::unique_ptr<Defense>
makeDefense(const std::string &name)
{
    if (name == "siloz")
        return std::make_unique<SilozDomains>();
    if (name == "quarantine")
        return std::make_unique<VirtioQuarantine>();
    if (name == "trr-ecc")
        return std::make_unique<TrrEccSweep>();
    if (name == "catt")
        return std::make_unique<CattPartition>();
    if (name == "catt-hole") {
        auto catt = std::make_unique<CattPartition>();
        catt->doubleOwnershipHole = true;
        return catt;
    }
    return nullptr;
}

base::Expected<DefenseSet>
makeDefenseSet(const std::string &spec)
{
    DefenseSet set;
    if (spec.empty() || spec == "none")
        return set;
    size_t begin = 0;
    while (begin <= spec.size()) {
        const size_t plus = spec.find('+', begin);
        const std::string part = spec.substr(
            begin, plus == std::string::npos ? std::string::npos
                                             : plus - begin);
        std::unique_ptr<Defense> defense = makeDefense(part);
        if (defense == nullptr) {
            base::warn("unknown defense '%s' in spec '%s'",
                       part.c_str(), spec.c_str());
            return base::ErrorCode::InvalidArgument;
        }
        set.add(std::move(defense));
        if (plus == std::string::npos)
            break;
        begin = plus + 1;
    }
    return set;
}

} // namespace hh::mitigate
