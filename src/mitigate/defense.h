/**
 * @file
 * Pluggable Rowhammer defenses (the Section 6 mitigation layer).
 *
 * A Defense is a configuration-time transform: it rewrites the host's
 * SystemConfig (allocator domain layout, TRR/ECC strength) and the
 * attacker VM's VmConfig (virtio-mem quarantine policy) *before* the
 * world is constructed. That placement is deliberate -- Monte-Carlo
 * trials fork pristine per-trial worlds from the host configuration,
 * so a config-time defense is automatically active in every trial and
 * covered by the campaign fingerprint, keeping the deterministic
 * trial engine's identity guarantees intact.
 *
 * Four defenses model the mitigation families the paper discusses:
 *   - SilozDomains: Siloz-style physical isolation domains with
 *     guard rows between them (EPT pages, host kernel memory and
 *     guest memory live in disjoint row ranges);
 *   - VirtioQuarantine: the authors' QEMU quarantine patch with the
 *     generalized tolerance / grace-window knobs;
 *   - TrrEccSweep: in-DRAM TRR sampling plus ECC correction strength;
 *   - CattPartition: CATT-style kernel/user buddy partitioning, with
 *     the CATTmew double-ownership hole as an opt-in flag.
 */

#ifndef HYPERHAMMER_MITIGATE_DEFENSE_H
#define HYPERHAMMER_MITIGATE_DEFENSE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/archive.h"
#include "base/status.h"
#include "sys/host_system.h"
#include "vm/virtual_machine.h"

namespace hh::mitigate {

/**
 * What a defense costs. reservedBytes counts memory permanently
 * withdrawn from the allocatable pool (guard rows); slowdownFactor is
 * a multiplicative runtime estimate (TRR sampling, ECC check bits);
 * nackedRequests counts guest requests the defense refused (filled
 * by the matrix runner from device statistics after a campaign).
 */
struct DefenseOverhead
{
    uint64_t reservedBytes = 0;
    double slowdownFactor = 1.0;
    uint64_t nackedRequests = 0;
};

/**
 * One pluggable defense. Subclasses override the config transforms
 * they need; the base implementations are identity. configure() runs
 * once against the constructed host for validation and overhead
 * accounting.
 */
class Defense
{
  public:
    virtual ~Defense() = default;

    /** Stable identifier ("siloz", "quarantine", ...). */
    virtual const char *name() const = 0;

    /** Rewrite the host configuration before construction. */
    virtual void
    applyHostConfig(sys::SystemConfig &cfg) const
    {
        (void)cfg;
    }

    /** Rewrite the attacker VM's provisioning before spawn. */
    virtual void
    applyVmConfig(vm::VmConfig &cfg) const
    {
        (void)cfg;
    }

    /**
     * Validate the constructed host honours this defense and account
     * overheads that only exist post-construction (guard-page census).
     */
    [[nodiscard]] virtual base::Status
    configure(sys::HostSystem &host)
    {
        (void)host;
        return base::Status::success();
    }

    const DefenseOverhead &overhead() const { return ovh; }

    /** Serialize the defense's knobs and accounted overhead. */
    virtual void saveState(base::ArchiveWriter &w) const;

    /** Restore state written by saveState(). */
    [[nodiscard]] virtual base::Status loadState(base::ArchiveReader &r);

    /**
     * Fold the defense's identity into a campaign fingerprint: the
     * name plus every knob that shapes trial outcomes.
     */
    void fingerprint(base::ArchiveWriter &w) const;

  protected:
    DefenseOverhead ovh;
};

/**
 * Siloz-style isolation domains (guard-row physical partitioning).
 * The layout carves, in PFN order: one EPT/IOPT domain, one
 * host-kernel domain, then guestDomains guest domains over the rest,
 * each boundary padded with guardRows DRAM rows of permanently
 * reserved guard frames. Hammering inside one domain can therefore
 * never disturb rows of another -- in particular, guest aggressors
 * cannot reach EPT or host-kernel victim rows.
 */
class SilozDomains final : public Defense
{
  public:
    /** Host-kernel domain size; 0 sizes it from the noise config. */
    uint64_t hostReserveBytes = 0;
    /** EPT/IOPT domain size. */
    uint64_t eptDomainBytes = 32_MiB;
    /** Guest domains carved from the remainder. */
    unsigned guestDomains = 1;
    /** Guard rows per domain boundary. */
    unsigned guardRows = 2;

    const char *name() const override { return "siloz"; }
    void applyHostConfig(sys::SystemConfig &cfg) const override;
    [[nodiscard]] base::Status configure(sys::HostSystem &host) override;
    void saveState(base::ArchiveWriter &w) const override;
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r) override;

  private:
    /** The kernel-domain page budget applyHostConfig() installs. */
    uint64_t reservePages(const sys::SystemConfig &cfg) const;
};

/**
 * The Section 6 QEMU quarantine patch, generalized: NACK virtio-mem
 * requests that overshoot or move away from the requested size, with
 * tunable tolerance and a grace window (all zero reproduces the
 * original patch exactly).
 */
class VirtioQuarantine final : public Defense
{
  public:
    uint64_t toleranceSubBlocks = 0;
    uint64_t graceRequests = 0;
    uint64_t windowRequests = 0;

    const char *name() const override { return "quarantine"; }
    void applyVmConfig(vm::VmConfig &cfg) const override;
    void saveState(base::ArchiveWriter &w) const override;
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r) override;
};

/**
 * In-DRAM mitigations: a TRR sampler of tunable tracker depth plus
 * ECC of tunable correction strength. The slowdown estimate models
 * the refresh-management and check-bit overhead.
 */
class TrrEccSweep final : public Defense
{
  public:
    bool trrEnabled = true;
    unsigned trackerCapacity = 4;
    bool probabilisticOverflow = true;
    bool eccEnabled = true;
    /** 1 = SEC-DED, 2 = chipkill-style DEC-TED. */
    uint32_t eccCorrectBits = 1;

    const char *name() const override { return "trr-ecc"; }
    void applyHostConfig(sys::SystemConfig &cfg) const override;
    [[nodiscard]] base::Status configure(sys::HostSystem &host) override;
    void saveState(base::ArchiveWriter &w) const override;
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r) override;
};

/**
 * CATT-style buddy partitioning: a kernel partition (kernel data,
 * page cache, EPT/IOPT pages) and a user partition (guest memory,
 * DMA buffers), with no guard rows -- CATT isolates by *allocation
 * policy* only, which is authentic to the original design.
 *
 * With doubleOwnershipHole set, the kernel partition also admits
 * DMA-able guest memory -- the CATTmew observation that double-owned
 * pages (GPU/DMA buffers, here virtio-mem backing) straddle the
 * partition boundary. Guest blocks then fill the kernel partition
 * first, release back into it, and EPT sprays reclaim them: the
 * attack chain is intact again.
 */
class CattPartition final : public Defense
{
  public:
    /** Kernel partition size; 0 sizes it from the noise config. */
    uint64_t kernelBytes = 0;
    /** Re-open the CATTmew double-ownership hole. */
    bool doubleOwnershipHole = false;

    const char *
    name() const override
    {
        return doubleOwnershipHole ? "catt-hole" : "catt";
    }
    void applyHostConfig(sys::SystemConfig &cfg) const override;
    void saveState(base::ArchiveWriter &w) const override;
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r) override;
};

/**
 * An ordered, owning list of defenses composed into one transform.
 * Config transforms chain in insertion order; state serializes as a
 * name-tagged sequence so a restore validates it is loading into the
 * same stack.
 */
class DefenseSet
{
  public:
    DefenseSet() = default;

    DefenseSet(const DefenseSet &) = delete;
    DefenseSet &operator=(const DefenseSet &) = delete;
    DefenseSet(DefenseSet &&) = default;
    DefenseSet &operator=(DefenseSet &&) = default;

    void
    add(std::unique_ptr<Defense> defense)
    {
        stack.push_back(std::move(defense));
    }

    bool empty() const { return stack.empty(); }
    size_t size() const { return stack.size(); }
    Defense &at(size_t i) { return *stack[i]; }
    const Defense &at(size_t i) const { return *stack[i]; }

    /** "+"-joined defense names ("siloz+quarantine"); "none" empty. */
    std::string label() const;

    /** Chain every defense's host-config transform, in order. */
    void applyHostConfig(sys::SystemConfig &cfg) const;

    /** Chain every defense's VM-config transform, in order. */
    void applyVmConfig(vm::VmConfig &cfg) const;

    /** configure() every defense; first failure wins. */
    [[nodiscard]] base::Status configure(sys::HostSystem &host);

    /** Summed / multiplied overhead over the stack. */
    DefenseOverhead overhead() const;

    /** Serialize the stack as (count, name, state) records. */
    void saveState(base::ArchiveWriter &w) const;

    /**
     * Restore state written by saveState(). A payload whose length or
     * defense names do not match this stack is rejected.
     */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

    /** Fold the stack's identity into a campaign fingerprint. */
    void fingerprint(base::ArchiveWriter &w) const;

  private:
    std::vector<std::unique_ptr<Defense>> stack;
};

/**
 * Factory by stable name: "none" (empty optional defense -- returns
 * null), "siloz", "quarantine", "trr-ecc", "catt", "catt-hole".
 * Unknown names return null.
 */
std::unique_ptr<Defense> makeDefense(const std::string &name);

/**
 * Build a DefenseSet from a "+"-joined spec ("siloz+quarantine";
 * "none" or "" yields an empty set). Unknown components fail.
 */
[[nodiscard]] base::Expected<DefenseSet>
makeDefenseSet(const std::string &spec);

} // namespace hh::mitigate

#endif // HYPERHAMMER_MITIGATE_DEFENSE_H
