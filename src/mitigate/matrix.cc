#include "matrix.h"

#include "base/log.h"
#include "shard/shard.h"
#include "snapshot/checkpoint_policy.h"

namespace hh::mitigate {

uint64_t
MatrixResult::fingerprint() const
{
    base::ArchiveWriter w;
    w.u64(cells.size());
    for (const MatrixCell &cell : cells) {
        w.str(cell.host);
        w.str(cell.defense);
        w.str(cell.attackName);
        w.u64(cell.profiledBits);
        w.boolean(cell.success);
        w.u32(cell.attempts);
        w.f64(cell.successRate);
        w.u64(cell.releasedSubBlocks);
        w.u64(cell.flippedMappings);
        w.u64(cell.epteCandidates);
        w.f64(cell.avgAttemptSeconds);
        w.u64(cell.overhead.reservedBytes);
        w.f64(cell.overhead.slowdownFactor);
        w.u64(cell.overhead.nackedRequests);
        w.u64(cell.campaignFingerprint);
    }
    return w.fingerprint();
}

const MatrixCell *
MatrixResult::find(const std::string &host, const std::string &defense,
                   const std::string &attack_name) const
{
    for (const MatrixCell &cell : cells) {
        if (cell.host == host && cell.defense == defense
            && cell.attackName == attack_name)
            return &cell;
    }
    return nullptr;
}

namespace {

/** Run one cell's campaign; the caller owns axis validation. */
base::Expected<MatrixCell>
runCell(const MatrixSpec &spec, const sys::SystemConfig &host_base,
        const std::string &defense_spec,
        const std::string &attack_name)
{
    auto defenses = makeDefenseSet(defense_spec);
    if (!defenses)
        return defenses.error();
    DefenseSet &set = *defenses;

    sys::SystemConfig host_cfg = host_base;
    set.applyHostConfig(host_cfg);
    vm::VmConfig vm_cfg = spec.vm;
    set.applyVmConfig(vm_cfg);
    attack::AttackConfig attack_cfg = spec.attack;
    attack_cfg.exploit.combinedHammer = attack_name == "combined";

    sys::HostSystem host(host_cfg);
    if (const base::Status configured = set.configure(host);
        !configured.ok()) {
        base::warn("matrix: defense '%s' rejected host '%s'",
                   defense_spec.c_str(), host_base.name.c_str());
        return configured.error();
    }

    attack::HyperHammerAttack campaign(host, vm_cfg,
                                       host.dram().mapping(),
                                       attack_cfg);
    campaign.attachDefenses(&set);
    // An empty profile (a defense that suppresses every flip) is a
    // legitimate all-failure cell, not an error: the trials still run
    // deterministically and score zero.
    (void)campaign.profilePhase();

    MatrixCell cell;
    cell.host = host_base.name;
    cell.defense = set.label();
    cell.attackName = attack_name;
    cell.profiledBits = campaign.hostProfile().size();
    cell.overhead = set.overhead();
    cell.campaignFingerprint = campaign.campaignFingerprint();

    // The campaign funnels through the sharded trial engine even for
    // shards=1, so a cell is the same pure function of (config,
    // trials) at any thread count x shard count -- the matrix
    // identity test compares fingerprints across both axes.
    std::vector<shard::ShardResult> pieces;
    for (const shard::ShardRange &range :
         shard::planShards(spec.trials, spec.shards)) {
        attack::TrialRangeResult ran = campaign.runTrialRange(
            range.begin, range.end, spec.threads,
            snapshot::CheckpointPolicy{});
        shard::ShardResult piece;
        piece.manifest.campaignFingerprint =
            cell.campaignFingerprint;
        piece.manifest.totalTrials = spec.trials;
        piece.manifest.range = range;
        piece.outcomes = std::move(ran.outcomes);
        pieces.push_back(std::move(piece));
    }
    auto merged = shard::mergeShards(std::move(pieces));
    if (!merged)
        return merged.error();

    cell.success = merged->success;
    cell.attempts = merged->attempts;
    cell.releasedSubBlocks = static_cast<uint64_t>(
        merged->stats.releasedSubBlocks.sum());
    cell.flippedMappings = static_cast<uint64_t>(
        merged->stats.changedPages.sum());
    cell.epteCandidates = static_cast<uint64_t>(
        merged->stats.epteCandidates.sum());
    cell.successRate = merged->attempts > 0
        ? (merged->success ? 1.0 : 0.0)
            / static_cast<double>(merged->attempts)
        : 0.0;
    cell.avgAttemptSeconds = merged->avgAttemptSeconds();
    return cell;
}

} // namespace

base::Expected<MatrixResult>
runMatrix(const MatrixSpec &spec)
{
    if (spec.hosts.empty() || spec.defenses.empty()
        || spec.attacks.empty() || spec.trials == 0)
        return base::ErrorCode::InvalidArgument;
    for (const std::string &attack_name : spec.attacks) {
        if (attack_name != "pairwise" && attack_name != "combined") {
            base::warn("matrix: unknown attack '%s'",
                       attack_name.c_str());
            return base::ErrorCode::InvalidArgument;
        }
    }

    MatrixResult result;
    for (const sys::SystemConfig &host_cfg : spec.hosts) {
        for (const std::string &defense_spec : spec.defenses) {
            for (const std::string &attack_name : spec.attacks) {
                auto cell = runCell(spec, host_cfg, defense_spec,
                                    attack_name);
                if (!cell)
                    return cell.error();
                result.cells.push_back(std::move(*cell));
            }
        }
    }
    return result;
}

} // namespace hh::mitigate
