/**
 * @file
 * The mitigation-evaluation matrix: attacks x defenses x host
 * configurations, each cell one deterministic Monte-Carlo campaign.
 *
 * A cell applies a DefenseSet's config transforms, constructs the
 * defended host, profiles once, and runs the campaign through the
 * sharded trial engine (`runTrialRange` + `shard::mergeShards`), so
 * every cell inherits the engine's identity guarantee: the matrix is
 * bitwise-identical at any thread count x shard count, and
 * MatrixResult::fingerprint() collapses that into one comparable
 * word.
 */

#ifndef HYPERHAMMER_MITIGATE_MATRIX_H
#define HYPERHAMMER_MITIGATE_MATRIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "attack/orchestrator.h"
#include "mitigate/defense.h"
#include "sys/host_system.h"

namespace hh::mitigate {

/** What to sweep. */
struct MatrixSpec
{
    /** Host configurations (cfg.name labels the matrix axis). */
    std::vector<sys::SystemConfig> hosts;
    /** Base attacker-VM provisioning (defenses may rewrite a copy). */
    vm::VmConfig vm;
    /** Base attack tunables (the attack axis rewrites a copy). */
    attack::AttackConfig attack;
    /** Defense axis: "+"-joined makeDefenseSet() specs. */
    std::vector<std::string> defenses{"none"};
    /** Attack axis: "pairwise" and/or "combined" (TRRespass-style). */
    std::vector<std::string> attacks{"pairwise"};
    /** Trials per cell (the campaign's attempt budget). */
    uint64_t trials = 16;
    /** Worker threads per campaign (identity holds for any value). */
    unsigned threads = 1;
    /** Shards per campaign (identity holds for any value). */
    unsigned shards = 1;
};

/** One cell's outcome. */
struct MatrixCell
{
    std::string host;
    std::string defense;
    std::string attackName;
    /** Exploitable+releasable bits the defended profile found. */
    uint64_t profiledBits = 0;
    /** Campaign verdict: did any trial escalate? */
    bool success = false;
    /** Trials the campaign consumed (stops at the first success). */
    unsigned attempts = 0;
    /** Empirical per-attempt success probability (success/attempts). */
    double successRate = 0.0;
    /**
     * Graded progress signals, summed over the campaign's attempts.
     * Full escalation is rare at bench scale (the analysis bound is
     * ~1e-3 per attempt), so these are what the property tests
     * compare: a defense that works drives them to zero, and the
     * CATTmew hole demonstrably brings them back.
     */
    /** Sub-blocks Page Steering released back to the host. */
    uint64_t releasedSubBlocks = 0;
    /** Guest pages whose mapping a hammered flip visibly changed. */
    uint64_t flippedMappings = 0;
    /** Changed pages that scanned as EPT-entry-shaped (candidates). */
    uint64_t epteCandidates = 0;
    /** Mean virtual seconds per attempt. */
    double avgAttemptSeconds = 0.0;
    DefenseOverhead overhead;
    uint64_t campaignFingerprint = 0;
};

/** The full sweep, cells in (host, defense, attack) loop order. */
struct MatrixResult
{
    std::vector<MatrixCell> cells;

    /** One word over every cell's payload (identity comparisons). */
    uint64_t fingerprint() const;

    /** The cell for a label triple; null when absent. */
    const MatrixCell *find(const std::string &host,
                           const std::string &defense,
                           const std::string &attack_name) const;
};

/**
 * Run the sweep. Fails on an unknown defense or attack name, or when
 * a defense rejects the constructed host; individual campaigns that
 * find no exploitable bits still produce (all-failure) cells.
 */
[[nodiscard]] base::Expected<MatrixResult>
runMatrix(const MatrixSpec &spec);

} // namespace hh::mitigate

#endif // HYPERHAMMER_MITIGATE_MATRIX_H
