/**
 * @file
 * Xen paravirtualization with direct paging -- the substrate of the
 * Xiao et al. (USENIX Security'16) baseline attack the paper contrasts
 * itself against (Section 2.1).
 *
 * Under PV direct paging there is a single level of translation: the
 * guest's page tables hold *machine* frame numbers and are walked by
 * the hardware directly. The guest therefore (a) knows the machine
 * addresses of its own memory, and (b) chooses which of its frames
 * become page tables. Xen keeps safety by validating updates: a frame
 * must be *pinned* as a page-table before use (Xen write-protects it),
 * and every entry written via the mmu_update hypercall must reference
 * a frame the domain owns.
 *
 * Both properties together are what made the 2016 attack
 * deterministic: the attacker pins a page-middle-directory on a frame
 * it profiled as Rowhammer-vulnerable, writes a forged page table in
 * another owned frame, and one bit flip makes the PMD point at the
 * forged table -- no validation ever sees the new value. HyperHammer's
 * HVM setting removes both properties (hidden addresses,
 * hypervisor-owned EPTs), which is why it needs Page Steering and is
 * probabilistic.
 */

#ifndef HYPERHAMMER_XEN_PV_DOMAIN_H
#define HYPERHAMMER_XEN_PV_DOMAIN_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"

namespace hh::xen {

/** PV PTE bits (x86-64 subset; entries hold machine frames). */
enum PvPteBits : uint64_t
{
    kPvPresent = 1ull << 0,
    kPvWrite = 1ull << 1,
};

/** Levels of the PV page-table hierarchy we model (PMD + PT). */
enum class PtLevel : uint8_t { Pt = 1, Pmd = 2 };

/**
 * A paravirtualized domain: a set of machine frames the guest fully
 * knows, plus Xen's page-table pinning and update validation.
 */
class PvDomain
{
  public:
    /**
     * Create the domain with @p frames machine frames allocated from
     * the host buddy (Xen's domheap ignores migrate types).
     */
    PvDomain(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
             uint64_t frames, uint16_t domain_id);
    ~PvDomain();

    PvDomain(const PvDomain &) = delete;
    PvDomain &operator=(const PvDomain &) = delete;

    /** The machine frames the domain owns -- PV guests know these. */
    const std::vector<Pfn> &machineFrames() const { return frames; }

    /** True when the domain owns @p frame. */
    bool owns(Pfn frame) const { return owned.count(frame) != 0; }

    /**
     * XENMEM_decrease_reservation: return one owned frame to the Xen
     * heap (free_domheap_pages). The 2016-era release primitive.
     */
    [[nodiscard]] base::Status decreaseReservation(Pfn frame);

    /**
     * Pin an owned frame as a page table of @p level: Xen validates
     * its current contents (every present entry must point at an
     * owned frame, PMD entries at pinned PTs) and write-protects it.
     */
    [[nodiscard]] base::Status pinPageTable(Pfn frame, PtLevel level);

    /**
     * mmu_update hypercall: write @p entry into slot @p index of the
     * pinned table @p table. Xen validates the reference before
     * writing -- the guest cannot forge mappings *through this path*.
     */
    [[nodiscard]] base::Status mmuUpdate(Pfn table, unsigned index, uint64_t entry);

    /**
     * Direct-paging address resolution through a pinned PMD: walk
     * PMD[pmd_index] -> PT[pt_index] exactly as the hardware would,
     * trusting whatever bits are in memory right now (including
     * Rowhammer-corrupted ones -- there is no re-validation).
     */
    [[nodiscard]] base::Expected<Pfn> resolve(Pfn pmd, unsigned pmd_index,
                                unsigned pt_index) const;

    /** True when @p frame is currently pinned as a page table. */
    bool
    isPinned(Pfn frame) const
    {
        return pinnedTables.count(frame) != 0;
    }

    /** Hypercalls rejected by validation (the defence that works). */
    uint64_t rejectedUpdates() const { return rejected; }

  private:
    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    uint16_t domainId;

    std::vector<Pfn> frames;
    std::unordered_set<uint64_t> owned;
    std::unordered_map<uint64_t, PtLevel> pinnedTables;
    uint64_t rejected = 0;

    bool entryValid(uint64_t entry, PtLevel level) const;
};

} // namespace hh::xen

#endif // HYPERHAMMER_XEN_PV_DOMAIN_H
