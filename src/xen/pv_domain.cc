#include "pv_domain.h"

#include "base/bitops.h"
#include "base/log.h"

namespace hh::xen {

namespace {

constexpr Pfn
frameOf(uint64_t entry)
{
    return base::bits(entry, 47, 12);
}

} // namespace

PvDomain::PvDomain(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                   uint64_t frame_count, uint16_t domain_id)
    : dram(dram), buddy(buddy), domainId(domain_id)
{
    frames.reserve(frame_count);
    for (uint64_t i = 0; i < frame_count; ++i) {
        // alloc_domheap_pages: no migrate-type separation (Section 6).
        auto frame = buddy.allocPagesAnyType(0, mm::PageUse::GuestMemory,
                                             domainId);
        if (!frame)
            base::fatal("PV domain %u: out of domheap memory",
                        domainId);
        frames.push_back(*frame);
        owned.insert(*frame);
    }
}

PvDomain::~PvDomain()
{
    for (Pfn frame : frames) {
        if (!owned.count(frame))
            continue; // released via decreaseReservation
        dram.backend().clearPage(frame);
        buddy.freePages(frame, 0);
    }
}

base::Status
PvDomain::decreaseReservation(Pfn frame)
{
    if (!owned.count(frame))
        return base::ErrorCode::InvalidArgument;
    if (pinnedTables.count(frame))
        return base::ErrorCode::Busy;
    owned.erase(frame);
    dram.backend().clearPage(frame);
    buddy.freePages(frame, 0);
    return base::Status::success();
}

bool
PvDomain::entryValid(uint64_t entry, PtLevel level) const
{
    if (!(entry & kPvPresent))
        return true; // non-present entries are harmless
    const Pfn target = frameOf(entry);
    if (!owned.count(target))
        return false;
    if (level == PtLevel::Pmd) {
        // A PMD entry must reference a pinned page table.
        const auto it = pinnedTables.find(target);
        return it != pinnedTables.end() && it->second == PtLevel::Pt;
    }
    return true;
}

base::Status
PvDomain::pinPageTable(Pfn frame, PtLevel level)
{
    if (!owned.count(frame))
        return base::ErrorCode::InvalidArgument;
    if (pinnedTables.count(frame))
        return base::ErrorCode::Exists;
    // Validate the frame's current contents before trusting it.
    for (unsigned index = 0; index < kEntriesPerTable; ++index) {
        const uint64_t entry = dram.backend().read64(
            HostPhysAddr(frame * kPageSize + index * 8ull));
        if (!entryValid(entry, level)) {
            ++rejected;
            return base::ErrorCode::Denied;
        }
    }
    // Write-protect (we model the protection as bookkeeping; guest
    // writes must go through mmuUpdate from here on).
    pinnedTables[frame] = level;
    return base::Status::success();
}

base::Status
PvDomain::mmuUpdate(Pfn table, unsigned index, uint64_t entry)
{
    const auto it = pinnedTables.find(table);
    if (it == pinnedTables.end() || index >= kEntriesPerTable)
        return base::ErrorCode::InvalidArgument;
    if (!entryValid(entry, it->second)) {
        ++rejected;
        return base::ErrorCode::Denied;
    }
    dram.write64(HostPhysAddr(table * kPageSize + index * 8ull), entry);
    return base::Status::success();
}

base::Expected<Pfn>
PvDomain::resolve(Pfn pmd, unsigned pmd_index, unsigned pt_index) const
{
    // Hardware walk: no ownership or pinning re-checks -- exactly why
    // a flipped PMD entry is game over.
    const uint64_t pmde = dram.backend().read64(
        HostPhysAddr(pmd * kPageSize + pmd_index * 8ull));
    if (!(pmde & kPvPresent))
        return base::ErrorCode::NotFound;
    const Pfn pt = frameOf(pmde);
    if (pt >= dram.pageCount())
        return base::ErrorCode::Fault;
    const uint64_t pte = dram.backend().read64(
        HostPhysAddr(pt * kPageSize + pt_index * 8ull));
    if (!(pte & kPvPresent))
        return base::ErrorCode::NotFound;
    return frameOf(pte);
}

} // namespace hh::xen
