#include "virtual_machine.h"

#include "base/log.h"

namespace hh::vm {

VirtualMachine::VirtualMachine(dram::DramSystem &dram,
                               mm::BuddyAllocator &buddy, VmConfig config,
                               uint16_t vm_id,
                               fault::FaultInjector *fault_injector)
    : dram(dram), buddy(buddy), cfg(config), vmId(vm_id)
{
    HH_ASSERT(cfg.bootMemBytes % kHugePageSize == 0);
    HH_ASSERT(cfg.bootMemBytes <= kVirtioMemRegionStart.value());

    eptMmu = std::make_unique<kvm::Mmu>(dram, buddy, cfg.mmu, vmId);

    if (cfg.passthroughDevices > 0) {
        vfioContainer = std::make_unique<iommu::VfioContainer>(
            dram, buddy, cfg.iommu, vmId);
        for (unsigned i = 0; i < cfg.passthroughDevices; ++i)
            groups.push_back(vfioContainer->addGroup());
    }

    // Boot RAM: THP-backed order-9 blocks mapped as 2 MB leaves and,
    // with a passthrough device present, pinned up front (KVM/VFIO
    // pre-allocates and pins the whole VM address space).
    for (uint64_t off = 0; off < cfg.bootMemBytes; off += kHugePageSize) {
        auto block = buddy.allocPages(9, mm::MigrateType::Movable,
                                      mm::PageUse::GuestMemory, vmId);
        if (!block) {
            // Under fault injection a boot allocation may fail
            // transiently; boot with a truncated RAM map instead of
            // taking the host down (accesses past it simply fault).
            if (fault_injector != nullptr) {
                base::warn("VM %u: boot RAM truncated at %llu MiB",
                           vmId,
                           static_cast<unsigned long long>(
                               off / 1_MiB));
                break;
            }
            base::fatal("VM %u: cannot allocate boot RAM", vmId);
        }
        base::Status mapped = eptMmu->map2m(
            GuestPhysAddr(off), HostPhysAddr(*block * kPageSize));
        // Same story for the EPT tables backing the mapping: an
        // injected AllocFail there is transient, so retry, then fall
        // back to the truncated boot map.
        for (unsigned r = 0;
             !mapped.ok() && fault_injector != nullptr && r < 16; ++r)
            mapped = eptMmu->map2m(
                GuestPhysAddr(off), HostPhysAddr(*block * kPageSize));
        if (!mapped.ok() && fault_injector != nullptr) {
            buddy.freePages(*block, 9);
            base::warn("VM %u: boot RAM truncated at %llu MiB "
                       "(EPT tables)",
                       vmId,
                       static_cast<unsigned long long>(off / 1_MiB));
            break;
        }
        HH_ASSERT(mapped.ok());
        if (vfioContainer)
            vfioContainer->pinRange(*block, kPagesPerHugePage);
        bootBlocks.push_back(*block);
    }

    virtio::VirtioMemConfig mem_cfg;
    mem_cfg.regionStart = kVirtioMemRegionStart;
    mem_cfg.regionSize = cfg.virtioMemRegionSize;
    mem_cfg.initialPlugged = cfg.virtioMemPlugged;
    mem_cfg.quarantine = cfg.quarantine;
    memDevice = std::make_unique<virtio::VirtioMemDevice>(
        dram, buddy, *eptMmu, vfioContainer.get(), mem_cfg, vmId,
        fault_injector);
    memDrv = std::make_unique<virtio::VirtioMemDriver>(*memDevice);

    if (cfg.balloon) {
        // Restrict ballooning to boot RAM so balloon holes never
        // overlap virtio-mem sub-blocks (the two overcommit devices
        // manage disjoint regions in this model).
        balloonDev = std::make_unique<virtio::VirtioBalloonDevice>(
            dram, buddy, *eptMmu, vmId, GuestPhysAddr(0),
            cfg.bootMemBytes, fault_injector);
    }
}

VirtualMachine::VirtualMachine(dram::DramSystem &dram,
                               mm::BuddyAllocator &buddy, VmConfig config,
                               uint16_t vm_id,
                               fault::FaultInjector *fault_injector,
                               base::RestoreTag)
    : dram(dram), buddy(buddy), cfg(config), vmId(vm_id)
{
    HH_ASSERT(cfg.bootMemBytes % kHugePageSize == 0);
    HH_ASSERT(cfg.bootMemBytes <= kVirtioMemRegionStart.value());

    // Shells only: every allocation the boot path would perform is
    // already accounted for in the snapshot's buddy/DRAM state.
    eptMmu = std::make_unique<kvm::Mmu>(dram, buddy, cfg.mmu, vmId,
                                        base::RestoreTag{});
    if (cfg.passthroughDevices > 0) {
        vfioContainer = std::make_unique<iommu::VfioContainer>(
            dram, buddy, cfg.iommu, vmId);
    }

    virtio::VirtioMemConfig mem_cfg;
    mem_cfg.regionStart = kVirtioMemRegionStart;
    mem_cfg.regionSize = cfg.virtioMemRegionSize;
    mem_cfg.initialPlugged = cfg.virtioMemPlugged;
    mem_cfg.quarantine = cfg.quarantine;
    memDevice = std::make_unique<virtio::VirtioMemDevice>(
        dram, buddy, *eptMmu, vfioContainer.get(), mem_cfg, vmId,
        fault_injector, base::RestoreTag{});
    memDrv = std::make_unique<virtio::VirtioMemDriver>(*memDevice);

    if (cfg.balloon) {
        balloonDev = std::make_unique<virtio::VirtioBalloonDevice>(
            dram, buddy, *eptMmu, vmId, GuestPhysAddr(0),
            cfg.bootMemBytes, fault_injector);
    }
}

VirtualMachine::~VirtualMachine()
{
    // Order matters: the virtio-mem device unplugs its blocks through
    // the MMU and VFIO container, so tear it down first.
    balloonDev.reset();
    memDrv.reset();
    memDevice.reset();

    for (Pfn block : bootBlocks) {
        if (vfioContainer)
            vfioContainer->unpinRange(block, kPagesPerHugePage);
        if (buddy.blockUniformlyOwned(block, 9,
                                      mm::PageUse::GuestMemory,
                                      vmId)) {
            for (uint64_t i = 0; i < kPagesPerHugePage; ++i)
                dram.backend().clearPage(block + i);
            buddy.freePages(block, 9);
            continue;
        }
        // Ballooned-out pages punched holes into the block: free the
        // frames this VM still owns, one by one.
        for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
            const mm::PageFrame &frame = buddy.frame(block + i);
            if (frame.free || frame.owner != vmId
                || frame.use != mm::PageUse::GuestMemory) {
                continue;
            }
            dram.backend().clearPage(block + i);
            buddy.freePages(block + i, 0);
        }
    }
    bootBlocks.clear();

    vfioContainer.reset();
    eptMmu.reset();
}

base::Expected<uint64_t>
VirtualMachine::read64(GuestPhysAddr gpa)
{
    auto hpa = eptMmu->translate(gpa);
    if (!hpa)
        return hpa.error();
    // A corrupted EPTE can point beyond physical memory; the access
    // then machine-faults instead of returning data.
    if (!dram.backend().contains(*hpa))
        return base::ErrorCode::Fault;
    return dram.read64(*hpa);
}

base::Status
VirtualMachine::write64(GuestPhysAddr gpa, uint64_t value)
{
    kvm::AccessResult result = eptMmu->access(gpa, kvm::Access::Write);
    if (result.status.error() == base::ErrorCode::Denied
        && writeFaultHandler) {
        // VM exit: the host breaks the copy-on-write sharing, then
        // the guest's store retries.
        const base::Status handled = writeFaultHandler(*this, gpa);
        if (!handled.ok())
            return handled;
        result = eptMmu->access(gpa, kvm::Access::Write);
    }
    if (!result.status.ok())
        return result.status;
    if (!dram.backend().contains(result.hpa))
        return base::ErrorCode::Fault;
    dram.write64(result.hpa, value);
    return base::Status::success();
}

base::Status
VirtualMachine::fillHugePage(GuestPhysAddr gpa, uint64_t pattern)
{
    if (!gpa.hugePageAligned())
        return base::ErrorCode::InvalidArgument;
    const std::vector<Pfn> frames = eptMmu->leafFrames(gpa);
    bool any = false;
    for (Pfn pfn : frames) {
        if (pfn == kInvalidPfn || pfn >= dram.pageCount())
            continue;
        dram.fillPage(pfn, pattern);
        any = true;
    }
    return any ? base::Status::success()
               : base::Status(base::ErrorCode::NotFound);
}

base::Status
VirtualMachine::fillPage(GuestPhysAddr gpa, uint64_t pattern)
{
    if (!gpa.pageAligned())
        return base::ErrorCode::InvalidArgument;
    auto hpa = eptMmu->translate(gpa);
    if (!hpa)
        return base::Status(hpa.error());
    if (!dram.backend().contains(*hpa))
        return base::ErrorCode::Fault;
    dram.fillPage(hpa->pfn(), pattern);
    return base::Status::success();
}

base::Expected<std::vector<GuestPhysAddr>>
VirtualMachine::scanHugePage(GuestPhysAddr gpa, uint64_t expected)
{
    if (!gpa.hugePageAligned())
        return base::ErrorCode::InvalidArgument;
    // Resolve every 4 KB page separately: after an EPTE flip the pages
    // of a demoted hugepage are no longer physically contiguous, and
    // the scan must follow the *current* (possibly corrupted) mapping
    // exactly like real guest loads would.
    const std::vector<Pfn> frames = eptMmu->leafFrames(gpa);
    std::vector<GuestPhysAddr> mismatches;
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        if (frames[i] == kInvalidPfn || frames[i] >= dram.pageCount())
            continue;
        for (uint16_t word : dram.scanPage(frames[i], expected)) {
            mismatches.push_back(gpa + i * kPageSize
                                 + static_cast<uint64_t>(word) * 8);
        }
    }
    return mismatches;
}

base::Status
VirtualMachine::writePageWords(
    GuestPhysAddr hp,
    const std::function<uint64_t(GuestPhysAddr)> &value)
{
    if (!hp.hugePageAligned())
        return base::ErrorCode::InvalidArgument;
    const std::vector<Pfn> frames = eptMmu->leafFrames(hp);
    bool any = false;
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        if (frames[i] == kInvalidPfn || frames[i] >= dram.pageCount())
            continue;
        const GuestPhysAddr page = hp + i * kPageSize;
        dram.write64(HostPhysAddr(frames[i] * kPageSize), value(page));
        any = true;
    }
    return any ? base::Status::success()
               : base::Status(base::ErrorCode::NotFound);
}

std::vector<VirtualMachine::PageWord>
VirtualMachine::readPageWords(GuestPhysAddr hp)
{
    std::vector<PageWord> words;
    if (!hp.hugePageAligned())
        return words;
    const std::vector<Pfn> frames = eptMmu->leafFrames(hp);
    words.reserve(kPagesPerHugePage);
    for (uint64_t i = 0; i < kPagesPerHugePage; ++i) {
        PageWord word;
        word.page = hp + i * kPageSize;
        if (frames[i] == kInvalidPfn) {
            continue; // page not mapped at all: skip, not fault
        } else if (frames[i] >= dram.pageCount()) {
            word.fault = true;
        } else {
            word.value =
                dram.read64(HostPhysAddr(frames[i] * kPageSize));
        }
        words.push_back(word);
    }
    return words;
}

kvm::AccessResult
VirtualMachine::execute(GuestPhysAddr gpa)
{
    return eptMmu->access(gpa, kvm::Access::Exec);
}

unsigned
VirtualMachine::hammer(const std::vector<GuestPhysAddr> &aggressors,
                       uint64_t rounds)
{
    std::vector<HostPhysAddr> hpas;
    hpas.reserve(aggressors.size());
    for (GuestPhysAddr gpa : aggressors) {
        auto hpa = eptMmu->translate(gpa);
        if (hpa)
            hpas.push_back(*hpa);
    }
    if (!hpas.empty())
        dram.hammer(hpas, rounds);
    return static_cast<unsigned>(hpas.size());
}

std::vector<dram::FlipEvent>
VirtualMachine::hammerCollect(
    const std::vector<GuestPhysAddr> &aggressors, uint64_t rounds)
{
    std::vector<HostPhysAddr> hpas;
    hpas.reserve(aggressors.size());
    for (GuestPhysAddr gpa : aggressors) {
        auto hpa = eptMmu->translate(gpa);
        if (hpa && dram.backend().contains(*hpa))
            hpas.push_back(*hpa);
    }
    if (hpas.empty())
        return {};
    return dram.hammer(hpas, rounds);
}

base::Status
VirtualMachine::iommuMap(iommu::GroupId group, IoVirtAddr iova,
                         GuestPhysAddr gpa)
{
    if (!vfioContainer)
        return base::ErrorCode::InvalidArgument;
    auto hpa = eptMmu->translate(gpa.pageBase());
    if (!hpa)
        return base::Status(hpa.error());
    return vfioContainer->mapDma(group, iova, *hpa);
}

base::Status
VirtualMachine::iommuUnmap(iommu::GroupId group, IoVirtAddr iova)
{
    if (!vfioContainer)
        return base::ErrorCode::InvalidArgument;
    return vfioContainer->unmapDma(group, iova);
}

uint32_t
VirtualMachine::iommuGroupCount() const
{
    return vfioContainer ? vfioContainer->groupCount() : 0;
}

base::Expected<HostPhysAddr>
VirtualMachine::debugTranslate(GuestPhysAddr gpa) const
{
    return eptMmu->translate(gpa);
}

std::vector<GuestPhysAddr>
VirtualMachine::hugePageGpas() const
{
    std::vector<GuestPhysAddr> gpas;
    for (uint64_t off = 0; off < cfg.bootMemBytes; off += kHugePageSize)
        gpas.push_back(GuestPhysAddr(off));
    for (virtio::SubBlockId sb = 0; sb < memDevice->subBlockCount();
         ++sb) {
        if (memDevice->isPlugged(sb))
            gpas.push_back(memDevice->subBlockGpa(sb));
    }
    return gpas;
}

void
VirtualMachine::saveState(base::ArchiveWriter &w) const
{
    w.u16(vmId);
    eptMmu->saveState(w);
    w.boolean(vfioContainer != nullptr);
    if (vfioContainer) {
        vfioContainer->saveState(w);
        std::vector<uint64_t> group_ids(groups.begin(), groups.end());
        w.u64vec(group_ids);
    }
    memDevice->saveState(w);
    memDrv->saveState(w);
    w.boolean(balloonDev != nullptr);
    if (balloonDev)
        balloonDev->saveState(w);
    w.u64vec(bootBlocks);
}

base::Status
VirtualMachine::loadState(base::ArchiveReader &r)
{
    const uint16_t saved_id = r.u16();
    if (r.ok() && saved_id != vmId)
        r.fail();
    if (!r.ok())
        return r.status();
    if (base::Status s = eptMmu->loadState(r); !s.ok())
        return s;
    const bool has_vfio = r.boolean();
    if (!r.ok() || has_vfio != (vfioContainer != nullptr))
        return base::Status(base::ErrorCode::InvalidArgument);
    if (vfioContainer) {
        if (base::Status s = vfioContainer->loadState(r); !s.ok())
            return s;
        const std::vector<uint64_t> group_ids = r.u64vec();
        if (!r.ok() || group_ids.size() != vfioContainer->groupCount())
            return base::Status(base::ErrorCode::InvalidArgument);
        groups.assign(group_ids.begin(), group_ids.end());
    }
    if (base::Status s = memDevice->loadState(r); !s.ok())
        return s;
    if (base::Status s = memDrv->loadState(r); !s.ok())
        return s;
    const bool has_balloon = r.boolean();
    if (!r.ok() || has_balloon != (balloonDev != nullptr))
        return base::Status(base::ErrorCode::InvalidArgument);
    if (balloonDev) {
        if (base::Status s = balloonDev->loadState(r); !s.ok())
            return s;
    }
    std::vector<Pfn> blocks = r.u64vec();
    for (Pfn block : blocks) {
        if (block + kPagesPerHugePage > buddy.totalPages())
            return base::Status(base::ErrorCode::InvalidArgument);
    }
    if (!r.ok())
        return r.status();
    bootBlocks = std::move(blocks);
    return base::Status::success();
}

} // namespace hh::vm
