/**
 * @file
 * A hardware-assisted VM as the attacker experiences it.
 *
 * VirtualMachine wires one guest's EPT MMU, VFIO container (passthrough
 * NIC + vIOMMU), and virtio-mem device/driver to the shared host buddy
 * allocator and DRAM. Its public methods are exactly the operations a
 * guest can legitimately perform: read/write/execute its own GPAs, issue
 * vIOMMU mappings, talk to the virtio-mem driver, and -- because DRAM is
 * physics, not policy -- hammer rows it can address.
 *
 * Layout mirrors QEMU: boot RAM at GPA 0, the virtio-mem region above
 * the 4 GB hole.
 */

#ifndef HYPERHAMMER_VM_VIRTUAL_MACHINE_H
#define HYPERHAMMER_VM_VIRTUAL_MACHINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/archive.h"
#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "iommu/viommu.h"
#include "kvm/mmu.h"
#include "mm/buddy_allocator.h"
#include "virtio/virtio_balloon.h"
#include "virtio/virtio_mem.h"

namespace hh::vm {

/** Per-VM configuration. */
struct VmConfig
{
    /** Boot RAM mapped at GPA 0 (not managed by virtio-mem). */
    uint64_t bootMemBytes = 1_GiB;
    /** Size of the virtio-mem GPA region (capacity, not allocation). */
    uint64_t virtioMemRegionSize = 16_GiB;
    /** Initially plugged virtio-mem bytes. */
    uint64_t virtioMemPlugged = 12_GiB;
    /** Passthrough devices, one IOMMU group each (>=1 enables VFIO). */
    unsigned passthroughDevices = 1;
    /** Attach a virtio-balloon device as well (Section 6 variant). */
    bool balloon = false;
    kvm::MmuConfig mmu;
    virtio::QuarantinePolicy quarantine;
    iommu::IommuConfig iommu;
};

/** GPA where the virtio-mem region starts (above the 4 GB hole). */
constexpr GuestPhysAddr kVirtioMemRegionStart{4_GiB};

/**
 * One guest VM plus its host-side devices.
 */
class VirtualMachine
{
  public:
    VirtualMachine(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                   VmConfig config, uint16_t vm_id,
                   fault::FaultInjector *fault_injector = nullptr);

    /**
     * Restore-mode constructor: builds the device shells without
     * booting (no RAM allocation, no EPT mapping, no initial virtio
     * plug); loadState() must follow to install the snapshot state.
     */
    VirtualMachine(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                   VmConfig config, uint16_t vm_id,
                   fault::FaultInjector *fault_injector,
                   base::RestoreTag);

    ~VirtualMachine();

    VirtualMachine(const VirtualMachine &) = delete;
    VirtualMachine &operator=(const VirtualMachine &) = delete;

    uint16_t id() const { return vmId; }
    const VmConfig &config() const { return cfg; }

    /** Currently usable guest memory (boot + plugged). */
    uint64_t
    memorySize() const
    {
        return cfg.bootMemBytes + memDevice->pluggedSize();
    }

    /** @name Guest-side memory operations (all via the EPT) */
    /// @{

    /** Read the aligned 64-bit word at @p gpa. */
    [[nodiscard]] base::Expected<uint64_t> read64(GuestPhysAddr gpa);

    /**
     * Write the aligned 64-bit word at @p gpa. Honours EPT write
     * permissions: a write-protected page (KSM-merged) triggers the
     * registered write-fault handler (the VM-exit path) and retries.
     */
    [[nodiscard]] base::Status write64(GuestPhysAddr gpa, uint64_t value);

    /**
     * Host-side hook invoked when a guest write hits a write-
     * protected mapping (copy-on-write breaking). Returning success
     * makes the faulting write retry.
     */
    using WriteFaultHandler =
        std::function<base::Status(VirtualMachine &, GuestPhysAddr)>;
    void
    setWriteFaultHandler(WriteFaultHandler handler)
    {
        writeFaultHandler = std::move(handler);
    }

    /** Fill the 2 MB hugepage at @p gpa with a repeated pattern. */
    [[nodiscard]] base::Status fillHugePage(GuestPhysAddr gpa, uint64_t pattern);

    /** Fill one 4 KB guest page with a repeated pattern. */
    [[nodiscard]] base::Status fillPage(GuestPhysAddr gpa, uint64_t pattern);

    /**
     * Scan the hugepage at @p gpa for words differing from
     * @p expected; returns their GPAs.
     */
    [[nodiscard]] base::Expected<std::vector<GuestPhysAddr>>
    scanHugePage(GuestPhysAddr gpa, uint64_t expected);

    /** First word of one 4 KB page, as seen through the EPT. */
    struct PageWord
    {
        /** GPA of the page. */
        GuestPhysAddr page{0};
        /** Word value; undefined when fault is set. */
        uint64_t value = 0;
        /** Access faulted (unmapped or beyond physical memory). */
        bool fault = false;
    };

    /**
     * Write @p value(page) into the first word of every mapped 4 KB
     * page of the hugepage at @p hp. One page-table walk per
     * hugepage (TLB-warm guest loop), then per-page stores.
     */
    [[nodiscard]] base::Status
    writePageWords(GuestPhysAddr hp,
                   const std::function<uint64_t(GuestPhysAddr)> &value);

    /** Read the first word of every 4 KB page of one hugepage. */
    std::vector<PageWord> readPageWords(GuestPhysAddr hp);

    /**
     * Execute code at @p gpa. Under the NX-hugepage countermeasure an
     * exec on hugepage-backed memory demotes it, allocating one EPT
     * page on the host (the Page Steering primitive).
     */
    kvm::AccessResult execute(GuestPhysAddr gpa);

    /**
     * Hammer the DRAM rows containing the given guest addresses
     * (uncached reads in a loop, from the guest's viewpoint). Rows are
     * resolved through the EPT; flips land wherever DRAM geometry puts
     * them. Returns the number of aggressor addresses that translated.
     */
    unsigned hammer(const std::vector<GuestPhysAddr> &aggressors,
                    uint64_t rounds);

    /**
     * hammer() variant returning the flip events DRAM applied.
     *
     * Simulation instrumentation, not an attacker capability: a real
     * attacker learns flip locations only by scanning. The profiler
     * uses the events to know *which* hugepages a full scan would find
     * dirty (the information content is identical) while virtual time
     * is still charged for the full scan it replaces.
     */
    std::vector<dram::FlipEvent>
    hammerCollect(const std::vector<GuestPhysAddr> &aggressors,
                  uint64_t rounds);
    /// @}

    /** @name vIOMMU guest interface */
    /// @{

    /**
     * Map @p iova to the guest page at @p gpa in IOMMU group
     * @p group: the host resolves the GPA and installs an IOVA -> HPA
     * IOPT mapping, consuming unmovable host pages in the process.
     */
    [[nodiscard]] base::Status iommuMap(iommu::GroupId group, IoVirtAddr iova,
                          GuestPhysAddr gpa);

    /** Remove an IOVA mapping. */
    [[nodiscard]] base::Status iommuUnmap(iommu::GroupId group, IoVirtAddr iova);

    /** Number of IOMMU groups (passthrough devices). */
    uint32_t iommuGroupCount() const;
    /// @}

    /** @name Device access */
    /// @{
    virtio::VirtioMemDriver &memDriver() { return *memDrv; }
    virtio::VirtioMemDevice &memDevice_() { return *memDevice; }
    virtio::VirtioBalloonDevice *balloonDevice() { return balloonDev.get(); }
    iommu::VfioContainer *vfio() { return vfioContainer.get(); }
    /// @}

    /** @name Host-side / evaluation hooks */
    /// @{

    /** The VM's MMU (hypervisor side; evaluation and host code only). */
    kvm::Mmu &mmu() { return *eptMmu; }
    const kvm::Mmu &mmu() const { return *eptMmu; }

    /** DRAM timing parameters (guests can measure these anyway). */
    const dram::TimingConfig &
    dramTiming() const
    {
        return dram.config().timing;
    }

    /** Host physical memory size (attackers know the machine spec). */
    uint64_t hostMemoryBytes() const { return dram.size(); }

    /**
     * Debug hypercall translating GPA -> HPA. The paper implemented
     * the same oracle to reuse profiling results across attempts
     * (Section 5.3.2); real attacks do not have it.
     */
    [[nodiscard]] base::Expected<HostPhysAddr> debugTranslate(GuestPhysAddr gpa) const;

    /** Enumerate all currently usable guest 2 MB hugepage GPAs. */
    std::vector<GuestPhysAddr> hugePageGpas() const;
    /// @}

    /**
     * Serialize the VM's host-side metadata: MMU, VFIO groups, virtio
     * devices and boot-block list. Page-table and guest-page contents
     * live in DRAM and travel with the host snapshot, not here.
     */
    void saveState(base::ArchiveWriter &w) const;

    /**
     * Restore state written by saveState() into a restore-mode VM on
     * an already-restored host. The write-fault handler is not
     * serialized; re-attach KSM (or other hooks) afterwards.
     */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    VmConfig cfg;
    uint16_t vmId;

    std::unique_ptr<kvm::Mmu> eptMmu;
    std::unique_ptr<iommu::VfioContainer> vfioContainer;
    std::vector<iommu::GroupId> groups;
    std::unique_ptr<virtio::VirtioMemDevice> memDevice;
    std::unique_ptr<virtio::VirtioMemDriver> memDrv;
    std::unique_ptr<virtio::VirtioBalloonDevice> balloonDev;

    /** Host order-9 blocks backing boot RAM (for teardown). */
    std::vector<Pfn> bootBlocks;

    // hh-lint: allow(snapshot-field-coverage) -- callbacks cannot be serialized; owners re-attach after restore
    WriteFaultHandler writeFaultHandler;
};

} // namespace hh::vm

#endif // HYPERHAMMER_VM_VIRTUAL_MACHINE_H
