/**
 * @file
 * Guest-side paging: guest virtual addresses, guest page tables, and
 * guest transparent hugepages.
 *
 * The attack reasons about *virtual* addresses inside the VM: with
 * THP enabled in the guest, a 2 MB-aligned anonymous buffer is backed
 * by 2 MB guest-physical pages, so GVA bits 0..20 survive the
 * GVA -> GPA translation; host THP then preserves them across
 * GPA -> HPA (Section 4.1). The attack modules work in GPAs, which is
 * sound *because* of this property -- this module makes the property
 * itself real and testable rather than assumed: it implements x86-64
 * style 4-level guest page tables whose table pages live in guest
 * memory (reached through the EPT like any other guest data), an
 * anonymous-memory allocator with a THP policy, and honest
 * GVA-by-GVA translation.
 *
 * Layout conventions (matching a simple guest kernel):
 *   - table pages are carved from the top of boot RAM;
 *   - anonymous mappings are backed by virtio-mem region GPAs.
 */

#ifndef HYPERHAMMER_VM_GUEST_PAGING_H
#define HYPERHAMMER_VM_GUEST_PAGING_H

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "vm/virtual_machine.h"

namespace hh::vm {

/** Guest PTE bits (x86-64 subset). */
enum GuestPteBits : uint64_t
{
    kGuestPresent = 1ull << 0,
    kGuestWrite = 1ull << 1,
    kGuestUser = 1ull << 2,
    kGuestPageSize = 1ull << 7, // 2 MB leaf at the PD level
};

/** THP policy of the guest kernel. */
enum class ThpPolicy : uint8_t
{
    Always, ///< back eligible (2 MB-aligned, >= 2 MB) ranges hugely
    Never,  ///< 4 KB pages only
};

/**
 * A guest process' page tables plus a bump allocator over the guest
 * physical space for both table pages and anonymous backing.
 */
class GuestPaging
{
  public:
    /**
     * @param machine     the VM whose memory hosts everything
     * @param table_gpa   GPA region for page-table pages
     * @param table_bytes size of that region
     * @param policy      guest THP policy
     */
    GuestPaging(VirtualMachine &machine, GuestPhysAddr table_gpa,
                uint64_t table_bytes, ThpPolicy policy);

    /**
     * Map an anonymous buffer of @p bytes at @p gva, backed by the
     * guest-physical range starting at @p backing. Under
     * ThpPolicy::Always, 2 MB-aligned stretches (when both gva and
     * backing are co-aligned) use 2 MB guest pages.
     */
    [[nodiscard]] base::Status mapAnonymous(GuestVirtAddr gva, uint64_t bytes,
                              GuestPhysAddr backing);

    /** Remove the mapping of one 4 KB or 2 MB page containing gva. */
    [[nodiscard]] base::Status unmap(GuestVirtAddr gva);

    /**
     * Translate by walking the guest tables (every walk step is a
     * real guest memory read through the EPT).
     */
    [[nodiscard]] base::Expected<GuestPhysAddr> translate(GuestVirtAddr gva);

    /** Read through GVA (guest walk + EPT-mediated access). */
    [[nodiscard]] base::Expected<uint64_t> read64(GuestVirtAddr gva);

    /** Write through GVA. */
    [[nodiscard]] base::Status write64(GuestVirtAddr gva, uint64_t value);

    /** True when gva is backed by a 2 MB guest page. */
    [[nodiscard]] base::Expected<bool> backedByHugePage(GuestVirtAddr gva);

    /** Guest-physical frames used for table pages so far. */
    uint64_t tablePagesUsed() const { return tableBump; }

    ThpPolicy policy() const { return thpPolicy; }

  private:
    VirtualMachine &machine;
    GuestPhysAddr tableRegion;
    uint64_t tableBytes;
    ThpPolicy thpPolicy;

    GuestPhysAddr root{0};
    uint64_t tableBump = 0; // table pages handed out

    /** Allocate and zero one guest page-table page. */
    [[nodiscard]] base::Expected<GuestPhysAddr> allocTablePage();

    static unsigned
    index(GuestVirtAddr gva, unsigned level)
    {
        return static_cast<unsigned>(
            (gva.value() >> (kPageShift + 9 * (level - 1))) & 0x1ff);
    }

    [[nodiscard]] base::Expected<uint64_t> readEntry(GuestPhysAddr table,
                                       unsigned idx);
    [[nodiscard]] base::Status writeEntry(GuestPhysAddr table, unsigned idx,
                            uint64_t entry);

    /** Walk to the PD (level 2) table, creating tables if asked. */
    [[nodiscard]] base::Expected<GuestPhysAddr> walkToPd(GuestVirtAddr gva,
                                           bool create);

    [[nodiscard]] base::Status map2m(GuestVirtAddr gva, GuestPhysAddr backing);
    [[nodiscard]] base::Status map4k(GuestVirtAddr gva, GuestPhysAddr backing);
};

} // namespace hh::vm

#endif // HYPERHAMMER_VM_GUEST_PAGING_H
