#include "guest_paging.h"

#include "base/bitops.h"
#include "base/log.h"

namespace hh::vm {

GuestPaging::GuestPaging(VirtualMachine &machine,
                         GuestPhysAddr table_gpa, uint64_t table_bytes,
                         ThpPolicy policy)
    : machine(machine),
      tableRegion(table_gpa),
      tableBytes(table_bytes),
      thpPolicy(policy)
{
    HH_ASSERT(table_gpa.pageAligned());
    auto root_page = allocTablePage();
    if (!root_page)
        base::fatal("guest paging: no room for the root table");
    root = *root_page;
}

base::Expected<GuestPhysAddr>
GuestPaging::allocTablePage()
{
    if ((tableBump + 1) * kPageSize > tableBytes)
        return base::ErrorCode::NoMemory;
    const GuestPhysAddr page = tableRegion + tableBump * kPageSize;
    ++tableBump;
    const base::Status zeroed = machine.fillPage(page, 0);
    if (!zeroed.ok())
        return zeroed.error();
    return page;
}

base::Expected<uint64_t>
GuestPaging::readEntry(GuestPhysAddr table, unsigned idx)
{
    return machine.read64(table + idx * 8ull);
}

base::Status
GuestPaging::writeEntry(GuestPhysAddr table, unsigned idx,
                        uint64_t entry)
{
    return machine.write64(table + idx * 8ull, entry);
}

base::Expected<GuestPhysAddr>
GuestPaging::walkToPd(GuestVirtAddr gva, bool create)
{
    GuestPhysAddr table = root;
    for (unsigned level = 4; level > 2; --level) {
        const unsigned idx = index(gva, level);
        auto entry = readEntry(table, idx);
        if (!entry)
            return entry.error();
        if (!(*entry & kGuestPresent)) {
            if (!create)
                return base::ErrorCode::NotFound;
            auto next = allocTablePage();
            if (!next)
                return next;
            *entry = (next->value() & ~(kPageSize - 1)) | kGuestPresent
                | kGuestWrite | kGuestUser;
            const base::Status written = writeEntry(table, idx, *entry);
            if (!written.ok())
                return written.error();
        }
        table = GuestPhysAddr(*entry & ~0xfffull & ((1ull << 48) - 1));
    }
    return table;
}

base::Status
GuestPaging::map2m(GuestVirtAddr gva, GuestPhysAddr backing)
{
    auto pd = walkToPd(gva, true);
    if (!pd)
        return base::Status(pd.error());
    const unsigned idx = index(gva, 2);
    auto existing = readEntry(*pd, idx);
    if (!existing)
        return base::Status(existing.error());
    if (*existing & kGuestPresent)
        return base::ErrorCode::Exists;
    return writeEntry(*pd, idx,
                      backing.value() | kGuestPresent | kGuestWrite
                          | kGuestUser | kGuestPageSize);
}

base::Status
GuestPaging::map4k(GuestVirtAddr gva, GuestPhysAddr backing)
{
    auto pd = walkToPd(gva, true);
    if (!pd)
        return base::Status(pd.error());
    const unsigned pd_idx = index(gva, 2);
    auto pde = readEntry(*pd, pd_idx);
    if (!pde)
        return base::Status(pde.error());
    if ((*pde & kGuestPresent) && (*pde & kGuestPageSize))
        return base::ErrorCode::Exists;
    GuestPhysAddr pt{0};
    if (!(*pde & kGuestPresent)) {
        auto fresh = allocTablePage();
        if (!fresh)
            return base::Status(fresh.error());
        pt = *fresh;
        const base::Status written = writeEntry(
            *pd, pd_idx,
            pt.value() | kGuestPresent | kGuestWrite | kGuestUser);
        if (!written.ok())
            return written;
    } else {
        pt = GuestPhysAddr(*pde & ~0xfffull & ((1ull << 48) - 1));
    }
    const unsigned pt_idx = index(gva, 1);
    auto pte = readEntry(pt, pt_idx);
    if (!pte)
        return base::Status(pte.error());
    if (*pte & kGuestPresent)
        return base::ErrorCode::Exists;
    return writeEntry(pt, pt_idx,
                      backing.value() | kGuestPresent | kGuestWrite
                          | kGuestUser);
}

base::Status
GuestPaging::mapAnonymous(GuestVirtAddr gva, uint64_t bytes,
                          GuestPhysAddr backing)
{
    if (!gva.value() || gva.value() % kPageSize
        || backing.value() % kPageSize || bytes % kPageSize)
        return base::ErrorCode::InvalidArgument;

    uint64_t off = 0;
    while (off < bytes) {
        const GuestVirtAddr va = gva + off;
        const GuestPhysAddr pa = backing + off;
        const bool huge_eligible = thpPolicy == ThpPolicy::Always
            && (va.value() % kHugePageSize) == 0
            && pa.hugePageAligned() && bytes - off >= kHugePageSize;
        if (huge_eligible) {
            const base::Status status = map2m(va, pa);
            if (!status.ok())
                return status;
            off += kHugePageSize;
        } else {
            const base::Status status = map4k(va, pa);
            if (!status.ok())
                return status;
            off += kPageSize;
        }
    }
    return base::Status::success();
}

base::Status
GuestPaging::unmap(GuestVirtAddr gva)
{
    auto pd = walkToPd(gva, false);
    if (!pd)
        return base::Status(pd.error());
    const unsigned pd_idx = index(gva, 2);
    auto pde = readEntry(*pd, pd_idx);
    if (!pde || !(*pde & kGuestPresent))
        return base::ErrorCode::NotFound;
    if (*pde & kGuestPageSize)
        return writeEntry(*pd, pd_idx, 0);
    const GuestPhysAddr pt(*pde & ~0xfffull & ((1ull << 48) - 1));
    const unsigned pt_idx = index(gva, 1);
    auto pte = readEntry(pt, pt_idx);
    if (!pte || !(*pte & kGuestPresent))
        return base::ErrorCode::NotFound;
    return writeEntry(pt, pt_idx, 0);
}

base::Expected<GuestPhysAddr>
GuestPaging::translate(GuestVirtAddr gva)
{
    auto pd = walkToPd(gva, false);
    if (!pd)
        return pd.error();
    auto pde = readEntry(*pd, index(gva, 2));
    if (!pde)
        return pde.error();
    if (!(*pde & kGuestPresent))
        return base::ErrorCode::NotFound;
    if (*pde & kGuestPageSize) {
        const GuestPhysAddr base(*pde & ~(kHugePageSize - 1)
                                 & ((1ull << 48) - 1));
        return base + gva.value() % kHugePageSize;
    }
    const GuestPhysAddr pt(*pde & ~0xfffull & ((1ull << 48) - 1));
    auto pte = readEntry(pt, index(gva, 1));
    if (!pte)
        return pte.error();
    if (!(*pte & kGuestPresent))
        return base::ErrorCode::NotFound;
    const GuestPhysAddr base(*pte & ~0xfffull & ((1ull << 48) - 1));
    return base + gva.value() % kPageSize;
}

base::Expected<bool>
GuestPaging::backedByHugePage(GuestVirtAddr gva)
{
    auto pd = walkToPd(gva, false);
    if (!pd)
        return pd.error();
    auto pde = readEntry(*pd, index(gva, 2));
    if (!pde)
        return pde.error();
    if (!(*pde & kGuestPresent))
        return base::ErrorCode::NotFound;
    return (*pde & kGuestPageSize) != 0;
}

base::Expected<uint64_t>
GuestPaging::read64(GuestVirtAddr gva)
{
    auto gpa = translate(gva);
    if (!gpa)
        return gpa.error();
    return machine.read64(*gpa);
}

base::Status
GuestPaging::write64(GuestVirtAddr gva, uint64_t value)
{
    auto gpa = translate(gva);
    if (!gpa)
        return base::Status(gpa.error());
    return machine.write64(*gpa, value);
}

} // namespace hh::vm
