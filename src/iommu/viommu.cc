#include "viommu.h"

#include "base/bitops.h"
#include "base/log.h"

namespace hh::iommu {

namespace {

constexpr uint64_t kFrameLoBit = 12;
constexpr uint64_t kFrameHiBit = 47;

constexpr bool
present(uint64_t entry)
{
    return (entry & (kIoptRead | kIoptWrite)) != 0;
}

constexpr Pfn
frameOf(uint64_t entry)
{
    return base::bits(entry, kFrameHiBit, kFrameLoBit);
}

constexpr uint64_t
makeEntry(Pfn frame)
{
    return (frame << kFrameLoBit) | kIoptRead | kIoptWrite;
}

} // namespace

IoPageTable::IoPageTable(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                         uint16_t owner_id)
    : dram(dram), buddy(buddy), owner(owner_id)
{
    auto page = allocTablePage();
    // An injected AllocFail can land on the root allocation; retry a
    // few occurrences. A genuine OOM fails every retry identically and
    // still reaches the fatal, so the fault-free path is unchanged.
    for (unsigned r = 0; !page && r < 16; ++r)
        page = allocTablePage();
    if (!page)
        base::fatal("cannot allocate IOPT root: host out of memory");
    root = *page;
}

IoPageTable::IoPageTable(dram::DramSystem &dram,
                         mm::BuddyAllocator &buddy, uint16_t owner_id,
                         base::RestoreTag)
    : dram(dram), buddy(buddy), owner(owner_id)
{
    // No root allocation: loadState() installs the snapshot's frames.
}

IoPageTable::~IoPageTable()
{
    for (Pfn pfn : tablePages) {
        dram.backend().clearPage(pfn);
        buddy.freePages(pfn, 0);
    }
}

base::Expected<Pfn>
IoPageTable::allocTablePage()
{
    auto page = buddy.allocPages(0, mm::MigrateType::Unmovable,
                                 mm::PageUse::IoptPage, owner);
    if (!page)
        return page;
    dram.fillPage(*page, 0);
    tablePages.push_back(*page);
    return page;
}

base::Status
IoPageTable::map(IoVirtAddr iova, HostPhysAddr hpa)
{
    if (!hpa.pageAligned() || iova.pageOffset() != 0)
        return base::ErrorCode::InvalidArgument;
    Pfn table = root;
    for (unsigned level = kIoptLevels; level > 1; --level) {
        const unsigned idx = index(iova, level);
        uint64_t entry = dram.read64(entryAddr(table, idx));
        if (!present(entry)) {
            auto next = allocTablePage();
            if (!next)
                return next.error();
            entry = makeEntry(*next);
            dram.write64(entryAddr(table, idx), entry);
        }
        table = frameOf(entry);
    }
    const unsigned idx = index(iova, 1);
    if (present(dram.read64(entryAddr(table, idx))))
        return base::ErrorCode::Exists;
    dram.write64(entryAddr(table, idx), makeEntry(hpa.pfn()));
    return base::Status::success();
}

base::Status
IoPageTable::unmap(IoVirtAddr iova)
{
    Pfn table = root;
    for (unsigned level = kIoptLevels; level > 1; --level) {
        const uint64_t entry =
            dram.read64(entryAddr(table, index(iova, level)));
        if (!present(entry))
            return base::ErrorCode::NotFound;
        table = frameOf(entry);
    }
    const unsigned idx = index(iova, 1);
    if (!present(dram.read64(entryAddr(table, idx))))
        return base::ErrorCode::NotFound;
    dram.write64(entryAddr(table, idx), 0);
    return base::Status::success();
}

base::Expected<HostPhysAddr>
IoPageTable::translate(IoVirtAddr iova) const
{
    Pfn table = root;
    for (unsigned level = kIoptLevels; level >= 1; --level) {
        const uint64_t entry =
            dram.read64(entryAddr(table, index(iova, level)));
        if (!present(entry))
            return base::ErrorCode::NotFound;
        if (level == 1) {
            return HostPhysAddr((frameOf(entry) << kPageShift)
                                + iova.pageOffset());
        }
        table = frameOf(entry);
    }
    return base::ErrorCode::NotFound;
}

VfioContainer::VfioContainer(dram::DramSystem &dram,
                             mm::BuddyAllocator &buddy, IommuConfig config,
                             uint16_t owner_id)
    : dram(dram), buddy(buddy), cfg(config), owner(owner_id)
{}

GroupId
VfioContainer::addGroup()
{
    Group group;
    group.table = std::make_unique<IoPageTable>(dram, buddy, owner);
    groups.push_back(std::move(group));
    return static_cast<GroupId>(groups.size() - 1);
}

base::Status
VfioContainer::mapDma(GroupId group, IoVirtAddr iova, HostPhysAddr hpa)
{
    if (group >= groups.size())
        return base::ErrorCode::InvalidArgument;
    Group &g = groups[group];
    if (g.mappings >= cfg.maxMappingsPerGroup)
        return base::ErrorCode::LimitExceeded;
    const base::Status status = g.table->map(iova, hpa);
    if (status.ok())
        ++g.mappings;
    return status;
}

base::Status
VfioContainer::unmapDma(GroupId group, IoVirtAddr iova)
{
    if (group >= groups.size())
        return base::ErrorCode::InvalidArgument;
    Group &g = groups[group];
    const base::Status status = g.table->unmap(iova);
    if (status.ok())
        --g.mappings;
    return status;
}

base::Expected<uint64_t>
VfioContainer::dmaRead64(GroupId group, IoVirtAddr iova)
{
    if (group >= groups.size())
        return base::ErrorCode::InvalidArgument;
    auto hpa = groups[group].table->translate(iova);
    if (!hpa)
        return hpa.error();
    return dram.read64(*hpa);
}

base::Status
VfioContainer::dmaWrite64(GroupId group, IoVirtAddr iova, uint64_t value)
{
    if (group >= groups.size())
        return base::ErrorCode::InvalidArgument;
    auto hpa = groups[group].table->translate(iova);
    if (!hpa)
        return base::Status(hpa.error());
    dram.write64(*hpa, value);
    return base::Status::success();
}

uint32_t
VfioContainer::mappingCount(GroupId group) const
{
    HH_ASSERT(group < groups.size());
    return groups[group].mappings;
}

uint64_t
VfioContainer::ioptPageCount() const
{
    uint64_t count = 0;
    for (const Group &g : groups)
        count += g.table->tablePageCount();
    return count;
}

void
VfioContainer::pinRange(Pfn first, uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i) {
        buddy.setPinned(first + i, true);
        // Pinned pages cannot be migrated: Linux marks them unmovable
        // so compaction and NUMA balancing skip them (Section 2.6).
        buddy.setMigrateType(first + i, mm::MigrateType::Unmovable);
        buddy.setUse(first + i, mm::PageUse::GuestMemory, owner);
    }
}

void
VfioContainer::unpinRange(Pfn first, uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i)
        buddy.setPinned(first + i, false);
}

void
IoPageTable::saveState(base::ArchiveWriter &w) const
{
    w.u64(root);
    w.u64vec(tablePages);
}

base::Status
IoPageTable::loadState(base::ArchiveReader &r)
{
    const Pfn new_root = r.u64();
    std::vector<Pfn> tables = r.u64vec();
    if (r.ok() && new_root >= dram.pageCount())
        r.fail();
    for (Pfn pfn : tables) {
        if (pfn >= dram.pageCount()) {
            r.fail();
            break;
        }
    }
    if (!r.ok())
        return r.status();
    root = new_root;
    tablePages = std::move(tables);
    return base::Status::success();
}

void
VfioContainer::saveState(base::ArchiveWriter &w) const
{
    w.u64(groups.size());
    for (const Group &g : groups) {
        w.u32(g.mappings);
        g.table->saveState(w);
    }
}

base::Status
VfioContainer::loadState(base::ArchiveReader &r)
{
    const uint64_t group_count = r.count(12);
    std::vector<Group> loaded;
    loaded.reserve(group_count);
    for (uint64_t i = 0; i < group_count && r.ok(); ++i) {
        Group g;
        g.mappings = r.u32();
        g.table = std::make_unique<IoPageTable>(dram, buddy, owner,
                                                base::RestoreTag{});
        if (base::Status s = g.table->loadState(r); !s.ok())
            return s;
        loaded.push_back(std::move(g));
    }
    if (!r.ok())
        return r.status();
    groups = std::move(loaded);
    return base::Status::success();
}

} // namespace hh::iommu
