/**
 * @file
 * vIOMMU / VFIO model (Sections 2.5, 2.6, 4.2.1).
 *
 * When a PCI device is assigned to a VM with vIOMMU enabled, the guest
 * programs IOVA -> GPA mappings; the host translates the GPA and installs
 * IOVA -> HPA entries in hardware IOMMU page tables (IOPTs). Each IOPT
 * page is an order-0 MIGRATE_UNMOVABLE host page holding 512 entries,
 * so one leaf page covers 2 MB of IOVA space -- the property the
 * attacker uses to exhaust the unmovable small-order free lists: mapping
 * one guest page at 2 MB-spaced IOVAs consumes one fresh unmovable page
 * per mapping.
 *
 * Linux caps the number of mappings per IOMMU group (65,535 by
 * default), which bounds how many noise pages one device can soak up.
 */

#ifndef HYPERHAMMER_IOMMU_VIOMMU_H
#define HYPERHAMMER_IOMMU_VIOMMU_H

#include <cstdint>
#include <memory>
#include <vector>

#include "base/archive.h"
#include "base/status.h"
#include "base/types.h"
#include "dram/dram_system.h"
#include "mm/buddy_allocator.h"

namespace hh::iommu {

/** Identifier of an IOMMU group (one per assigned device). */
using GroupId = uint32_t;

/** vIOMMU configuration. */
struct IommuConfig
{
    /** Default Linux dma_entry_limit: mappings allowed per group. */
    uint32_t maxMappingsPerGroup = 65'535;
};

/** IOPT entry bits (simplified VT-d second-level format). */
enum IoptBits : uint64_t
{
    kIoptRead = 1ull << 0,
    kIoptWrite = 1ull << 1,
};

/** Number of IOPT levels walked. */
constexpr unsigned kIoptLevels = 4;

/**
 * One device's I/O page table, with table pages allocated from the host
 * buddy allocator and entries stored in simulated DRAM.
 */
class IoPageTable
{
  public:
    IoPageTable(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                uint16_t owner_id);

    /** Restore-mode: skip the root allocation; loadState() follows. */
    IoPageTable(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                uint16_t owner_id, base::RestoreTag);

    ~IoPageTable();

    IoPageTable(const IoPageTable &) = delete;
    IoPageTable &operator=(const IoPageTable &) = delete;

    /** Install a 4 KB IOVA -> HPA mapping. */
    [[nodiscard]] base::Status map(IoVirtAddr iova, HostPhysAddr hpa);

    /** Remove a mapping. The covering table pages are not reclaimed
     *  eagerly (Linux keeps them until the container is torn down). */
    [[nodiscard]] base::Status unmap(IoVirtAddr iova);

    /** Translate an IOVA. */
    [[nodiscard]] base::Expected<HostPhysAddr> translate(IoVirtAddr iova) const;

    /** Number of IOPT table pages allocated so far. */
    uint64_t tablePageCount() const { return tablePages.size(); }

    /** Serialize root and table-page list (entries live in DRAM). */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore state written by saveState(). */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time identity, re-supplied by the restoring caller
    uint16_t owner;
    Pfn root = kInvalidPfn;
    std::vector<Pfn> tablePages;

    [[nodiscard]] base::Expected<Pfn> allocTablePage();

    static HostPhysAddr
    entryAddr(Pfn table, unsigned index)
    {
        return HostPhysAddr(table * kPageSize + index * 8ull);
    }

    static unsigned
    index(IoVirtAddr iova, unsigned level)
    {
        const unsigned shift = kPageShift + 9 * (level - 1);
        return static_cast<unsigned>((iova.value() >> shift) & 0x1ff);
    }
};

/**
 * The VFIO container of one VM: its IOMMU groups, their IOPTs, the
 * per-group mapping limit, and the pinning of guest memory.
 */
class VfioContainer
{
  public:
    VfioContainer(dram::DramSystem &dram, mm::BuddyAllocator &buddy,
                  IommuConfig config, uint16_t owner_id);

    /**
     * Assign one more device (its own IOMMU group). SR-IOV setups can
     * assign several (Section 4.2.1); each group gets an independent
     * mapping budget.
     */
    GroupId addGroup();

    /** Number of assigned groups. */
    uint32_t groupCount() const { return groups.size(); }

    /**
     * VFIO_IOMMU_MAP_DMA: map @p iova to host page @p hpa in group
     * @p group. Fails with LimitExceeded once the group's mapping
     * budget is spent. The target page is pinned.
     */
    [[nodiscard]] base::Status mapDma(GroupId group, IoVirtAddr iova, HostPhysAddr hpa);

    /** VFIO_IOMMU_UNMAP_DMA. */
    [[nodiscard]] base::Status unmapDma(GroupId group, IoVirtAddr iova);

    /** Device-initiated DMA read through the IOMMU. */
    [[nodiscard]] base::Expected<uint64_t> dmaRead64(GroupId group, IoVirtAddr iova);

    /** Device-initiated DMA write through the IOMMU. */
    [[nodiscard]] base::Status dmaWrite64(GroupId group, IoVirtAddr iova,
                            uint64_t value);

    /** Mappings currently installed in @p group. */
    uint32_t mappingCount(GroupId group) const;

    /** IOPT pages across all groups. */
    uint64_t ioptPageCount() const;

    /**
     * Pin a contiguous host frame range for passthrough DMA: frames
     * are marked pinned and retyped MIGRATE_UNMOVABLE (Section 2.6).
     */
    void pinRange(Pfn first, uint64_t count);

    /** Undo pinRange (virtio-mem unplug path). */
    void unpinRange(Pfn first, uint64_t count);

    /** Serialize every group's IOPT and mapping count. */
    void saveState(base::ArchiveWriter &w) const;

    /** Restore groups written by saveState() (rebuilds the IOPTs). */
    [[nodiscard]] base::Status loadState(base::ArchiveReader &r);

  private:
    struct Group
    {
        std::unique_ptr<IoPageTable> table;
        uint32_t mappings = 0;
    };

    dram::DramSystem &dram;
    mm::BuddyAllocator &buddy;
    // hh-lint: allow(snapshot-field-coverage) -- config travels via the restore fingerprint, not the payload
    IommuConfig cfg;
    // hh-lint: allow(snapshot-field-coverage) -- construction-time identity; loadState reads it only to rebuild per-group IOPTs
    uint16_t owner;
    std::vector<Group> groups;
};

} // namespace hh::iommu

#endif // HYPERHAMMER_IOMMU_VIOMMU_H
