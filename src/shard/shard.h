/**
 * @file
 * Sharded campaign sweeps: split a Monte-Carlo campaign of N trials
 * into contiguous seed-range shards, run each shard in an independent
 * OS process, and merge the shard artifacts back into the canonical
 * AttackResult.
 *
 * The identity guarantee rests on three facts, each owned elsewhere:
 * trials are pure functions of (campaign fingerprint, trial index)
 * (PR 2), `runTrialRange` executes any contiguous range at absolute
 * indices with full checkpoint/resume support (orchestrator), and
 * `aggregateOutcomes` folds an outcome prefix in trial order (the one
 * sanctioned merge). This layer only adds the on-disk hand-off: a
 * manifest binding a shard's outcomes to its campaign + range, and a
 * merge that validates the shards tile [0, N) before concatenating
 * them in trial order. The merged result is bitwise-identical to a
 * single-process `runAttempts(N)` at any shard count x thread count,
 * including under fault plans and kill+resume of individual shards
 * (docs/distributed_sweeps.md).
 */

#ifndef HYPERHAMMER_SHARD_SHARD_H
#define HYPERHAMMER_SHARD_SHARD_H

#include <cstdint>
#include <string>
#include <vector>

#include "attack/orchestrator.h"
#include "base/status.h"

namespace hh::shard {

/** A contiguous, half-open range of absolute trial indices. */
struct ShardRange
{
    uint64_t begin = 0;
    uint64_t end = 0;

    uint64_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/**
 * Split @p total_trials into @p count contiguous near-even ranges:
 * the first (total % count) shards get one extra trial. Ranges tile
 * [0, total_trials) in order; with count > total_trials the surplus
 * shards come back empty (begin == end), which merge accepts. count
 * of 0 is treated as 1.
 */
std::vector<ShardRange> planShards(uint64_t total_trials,
                                   unsigned count);

/**
 * What binds a shard artifact to its campaign: the campaign
 * fingerprint (HyperHammerAttack::campaignFingerprint -- host config,
 * VM provisioning, attack tunables and the host-physical profile),
 * the full campaign size, and this shard's range. Two artifacts merge
 * only when fingerprint and totalTrials agree; ranges must tile the
 * campaign exactly.
 */
struct ShardManifest
{
    uint64_t campaignFingerprint = 0;
    uint64_t totalTrials = 0;
    ShardRange range;
};

/**
 * One shard's product: its manifest plus the completed outcome prefix
 * of its range (truncated at the shard's own first success, exactly
 * what runTrialRange returns). A shard with fewer outcomes than its
 * range and no trailing success is incomplete -- it was interrupted
 * and must be resumed before merging.
 */
struct ShardResult
{
    ShardManifest manifest;
    std::vector<attack::AttemptOutcome> outcomes;

    /** All trials ran, or the range stopped at its own success. */
    bool complete() const;
};

/**
 * Write @p shard atomically (temp + fsync + rename) under the shard
 * magic at the shared snapshot format version.
 */
[[nodiscard]] base::Status saveShard(const std::string &path,
                                     const ShardResult &shard);

/**
 * Read a shard artifact back, rejecting truncated/corrupt files (the
 * archive layer's framing), wrong-versioned files, and manifests that
 * are internally inconsistent (range outside the campaign, more
 * outcomes than the range holds).
 */
[[nodiscard]] base::Expected<ShardResult>
loadShard(const std::string &path);

/**
 * The sanctioned shard merge. Validates that the shards belong to one
 * campaign and tile [0, totalTrials) exactly, concatenates their
 * outcomes in trial order, and hands the prefix to
 * attack::HyperHammerAttack::aggregateOutcomes -- so the result is
 * the same pure function of the outcome sequence a single-process
 * run computes.
 *
 * Rejections, by Status:
 *  - InvalidArgument: no shards; fingerprint or totalTrials mismatch
 *    between shards; a manifest inconsistent with itself or the
 *    campaign.
 *  - Exists: duplicate or overlapping ranges.
 *  - NotFound: a gap in coverage (a shard artifact is missing).
 *  - Busy: a shard is incomplete (interrupted; resume it first).
 *
 * Input order is irrelevant: shards are sorted by range before
 * validation, so any arrival order merges identically.
 */
[[nodiscard]] base::Expected<attack::AttackResult>
mergeShards(std::vector<ShardResult> shards);

} // namespace hh::shard

#endif // HYPERHAMMER_SHARD_SHARD_H
