/**
 * @file
 * Sharded campaign sweeps: split a Monte-Carlo campaign of N trials
 * into contiguous seed-range shards, run each shard in an independent
 * OS process, and merge the shard artifacts back into the canonical
 * AttackResult.
 *
 * The identity guarantee rests on three facts, each owned elsewhere:
 * trials are pure functions of (campaign fingerprint, trial index)
 * (PR 2), `runTrialRange` executes any contiguous range at absolute
 * indices with full checkpoint/resume support (orchestrator), and
 * `aggregateOutcomes` folds an outcome prefix in trial order (the one
 * sanctioned merge). This layer only adds the on-disk hand-off: a
 * manifest binding a shard's outcomes to its campaign + range, and a
 * merge that validates the shards tile [0, N) before concatenating
 * them in trial order. The merged result is bitwise-identical to a
 * single-process `runAttempts(N)` at any shard count x thread count,
 * including under fault plans and kill+resume of individual shards
 * (docs/distributed_sweeps.md).
 */

#ifndef HYPERHAMMER_SHARD_SHARD_H
#define HYPERHAMMER_SHARD_SHARD_H

#include <cstdint>
#include <string>
#include <vector>

#include "attack/orchestrator.h"
#include "base/status.h"

namespace hh::shard {

/** A contiguous, half-open range of absolute trial indices. */
struct ShardRange
{
    uint64_t begin = 0;
    uint64_t end = 0;

    uint64_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/**
 * Split @p total_trials into @p count contiguous near-even ranges:
 * the first (total % count) shards get one extra trial. Ranges tile
 * [0, total_trials) in order; with count > total_trials the surplus
 * shards come back empty (begin == end), which merge accepts. count
 * of 0 is treated as 1.
 */
std::vector<ShardRange> planShards(uint64_t total_trials,
                                   unsigned count);

/**
 * What binds a shard artifact to its campaign: the campaign
 * fingerprint (HyperHammerAttack::campaignFingerprint -- host config,
 * VM provisioning, attack tunables and the host-physical profile),
 * the full campaign size, and this shard's range. Two artifacts merge
 * only when fingerprint and totalTrials agree; ranges must tile the
 * campaign exactly.
 */
struct ShardManifest
{
    uint64_t campaignFingerprint = 0;
    uint64_t totalTrials = 0;
    ShardRange range;
};

/**
 * One shard's product: its manifest plus the completed outcome prefix
 * of its range (truncated at the shard's own first success, exactly
 * what runTrialRange returns). A shard with fewer outcomes than its
 * range and no trailing success is incomplete -- it was interrupted
 * and must be resumed before merging.
 */
struct ShardResult
{
    ShardManifest manifest;
    std::vector<attack::AttemptOutcome> outcomes;

    /**
     * The worker's final word on this range. A worker that is stopped
     * mid-range (--stop-after, SIGKILL between checkpoint and artifact)
     * persists terminal=false; the strict merge treats such an
     * artifact exactly like incomplete data (Busy), and the dispatch
     * supervisor uses the flag to tell an abandoned partial write from
     * a finished shard when deciding on artifact takeover.
     */
    bool terminal = true;

    /** All trials ran, or the range stopped at its own success. */
    bool complete() const;
};

/**
 * Write @p shard atomically (temp + fsync + rename) under the shard
 * magic at the shared snapshot format version.
 */
[[nodiscard]] base::Status saveShard(const std::string &path,
                                     const ShardResult &shard);

/**
 * Read a shard artifact back, rejecting truncated/corrupt files (the
 * archive layer's framing), wrong-versioned files, and manifests that
 * are internally inconsistent (range outside the campaign, more
 * outcomes than the range holds).
 */
[[nodiscard]] base::Expected<ShardResult>
loadShard(const std::string &path);

/**
 * The sanctioned shard merge. Validates that the shards belong to one
 * campaign and tile [0, totalTrials) exactly, concatenates their
 * outcomes in trial order, and hands the prefix to
 * attack::HyperHammerAttack::aggregateOutcomes -- so the result is
 * the same pure function of the outcome sequence a single-process
 * run computes.
 *
 * Rejections, by Status:
 *  - InvalidArgument: no shards; fingerprint or totalTrials mismatch
 *    between shards; a manifest inconsistent with itself or the
 *    campaign.
 *  - Exists: duplicate or overlapping ranges.
 *  - NotFound: a gap in coverage (a shard artifact is missing).
 *  - Busy: a shard is incomplete or non-terminal (interrupted;
 *    resume it first).
 *
 * Input order is irrelevant: shards are sorted by range before
 * validation, so any arrival order merges identically.
 */
[[nodiscard]] base::Expected<attack::AttackResult>
mergeShards(std::vector<ShardResult> shards);

/** How the reporting merge treats holes in the tiling. */
struct MergePolicy
{
    /**
     * Fold whatever healthy subset is present instead of rejecting on
     * gaps: missing, incomplete and non-terminal ranges land in
     * SweepReport::missing rather than producing NotFound/Busy.
     * Adversarial inputs (duplicates, overlaps, foreign fingerprints,
     * insane manifests) are still typed rejections in either mode.
     */
    bool allowPartial = false;
};

/**
 * Product of the reporting merge: the folded result plus exactly which
 * trial ranges did not contribute. `exact` says whether the result is
 * already the canonical full-campaign result -- true when nothing is
 * missing, or when the folded prefix reaches a success before the
 * first hole (aggregateOutcomes truncates there, so trials past it
 * can never influence the canonical result).
 */
struct SweepReport
{
    attack::AttackResult result;
    uint64_t campaignFingerprint = 0;
    uint64_t totalTrials = 0;
    /** Uncovered ranges, sorted and coalesced; empty when complete. */
    std::vector<ShardRange> missing;
    /** True when `result` equals the canonical full-campaign result. */
    bool exact = false;

    /** At least one range is missing (the sweep ran degraded). */
    bool partial() const { return !missing.empty(); }
};

/**
 * The reporting merge behind mergeShards(). With
 * policy.allowPartial == false it enforces the exact-tiling contract
 * (the strict overload forwards here); with allowPartial == true a
 * quarantined or still-running sweep can be folded degraded, and
 * `hh_sweep heal` later closes SweepReport::missing and re-merges to
 * the bitwise-identical full result.
 */
[[nodiscard]] base::Expected<SweepReport>
mergeShards(std::vector<ShardResult> shards, const MergePolicy &policy);

} // namespace hh::shard

#endif // HYPERHAMMER_SHARD_SHARD_H
