#include "shard.h"

#include <algorithm>

#include "base/archive.h"
#include "base/log.h"
#include "snapshot/snapshot_format.h"

namespace hh::shard {

std::vector<ShardRange>
planShards(uint64_t total_trials, unsigned count)
{
    if (count == 0)
        count = 1;
    std::vector<ShardRange> ranges;
    ranges.reserve(count);
    const uint64_t base = total_trials / count;
    const uint64_t extra = total_trials % count;
    uint64_t begin = 0;
    for (unsigned i = 0; i < count; ++i) {
        const uint64_t size = base + (i < extra ? 1 : 0);
        ranges.push_back(ShardRange{begin, begin + size});
        begin += size;
    }
    return ranges;
}

bool
ShardResult::complete() const
{
    if (outcomes.size() == manifest.range.size())
        return true;
    return !outcomes.empty() && outcomes.back().success;
}

namespace {

/** Manifest/outcome consistency shared by load and merge. */
bool
shardSane(const ShardResult &shard)
{
    const ShardManifest &m = shard.manifest;
    return m.range.begin <= m.range.end
        && m.range.end <= m.totalTrials
        && shard.outcomes.size() <= m.range.size();
}

/** Append a hole, coalescing with an adjacent predecessor. */
void
addMissing(std::vector<ShardRange> &missing, ShardRange hole)
{
    if (!missing.empty() && missing.back().end == hole.begin) {
        missing.back().end = hole.end;
        return;
    }
    missing.push_back(hole);
}

} // namespace

base::Status
saveShard(const std::string &path, const ShardResult &shard)
{
    base::ArchiveWriter w;
    w.u64(shard.manifest.campaignFingerprint);
    w.u64(shard.manifest.totalTrials);
    w.u64(shard.manifest.range.begin);
    w.u64(shard.manifest.range.end);
    w.boolean(shard.terminal);
    w.u64(shard.outcomes.size());
    for (const attack::AttemptOutcome &outcome : shard.outcomes)
        attack::writeOutcome(w, outcome);
    return base::saveArchiveFile(path, snapshot::kShardMagic,
                                 snapshot::kSnapshotFormatVersion,
                                 w.buffer());
}

base::Expected<ShardResult>
loadShard(const std::string &path)
{
    auto loaded = base::loadArchiveFile(
        path, snapshot::kShardMagic, snapshot::kSnapshotFormatVersion,
        snapshot::kSnapshotFormatVersion);
    if (!loaded)
        return loaded.error();
    base::ArchiveReader r(loaded->payload);
    ShardResult shard;
    shard.manifest.campaignFingerprint = r.u64();
    shard.manifest.totalTrials = r.u64();
    shard.manifest.range.begin = r.u64();
    shard.manifest.range.end = r.u64();
    shard.terminal = r.boolean();
    const uint64_t n = r.count(attack::kOutcomeBytes);
    shard.outcomes.reserve(n);
    for (uint64_t i = 0; i < n && r.ok(); ++i)
        shard.outcomes.push_back(attack::readOutcome(r));
    if (!r.ok() || !r.atEnd()) {
        base::warn("shard '%s': malformed outcome records",
                   path.c_str());
        return base::ErrorCode::InvalidArgument;
    }
    if (!shardSane(shard)) {
        base::warn("shard '%s': manifest inconsistent with payload",
                   path.c_str());
        return base::ErrorCode::InvalidArgument;
    }
    return shard;
}

base::Expected<attack::AttackResult>
mergeShards(std::vector<ShardResult> shards)
{
    auto report = mergeShards(std::move(shards), MergePolicy{});
    if (!report)
        return report.error();
    return std::move(report->result);
}

base::Expected<SweepReport>
mergeShards(std::vector<ShardResult> shards, const MergePolicy &policy)
{
    if (shards.empty())
        return base::ErrorCode::InvalidArgument;
    for (const ShardResult &shard : shards) {
        if (!shardSane(shard))
            return base::ErrorCode::InvalidArgument;
        if (shard.manifest.campaignFingerprint
                != shards.front().manifest.campaignFingerprint
            || shard.manifest.totalTrials
                != shards.front().manifest.totalTrials)
            return base::ErrorCode::InvalidArgument;
    }

    // Canonical order: any arrival order merges identically.
    std::sort(shards.begin(), shards.end(),
              [](const ShardResult &a, const ShardResult &b) {
                  if (a.manifest.range.begin != b.manifest.range.begin)
                      return a.manifest.range.begin
                          < b.manifest.range.begin;
                  return a.manifest.range.end < b.manifest.range.end;
              });

    const uint64_t total = shards.front().manifest.totalTrials;

    // Adversarial inputs reject identically in both modes: two
    // artifacts claiming the same trials is corruption, not a hole a
    // heal run could close.
    uint64_t covered = 0;
    for (const ShardResult &shard : shards) {
        if (shard.manifest.range.begin < covered)
            return base::ErrorCode::Exists; // duplicate / overlap
        if (!policy.allowPartial && shard.manifest.range.begin > covered)
            return base::ErrorCode::NotFound; // coverage gap
        covered = std::max(covered, shard.manifest.range.end);
    }
    if (!policy.allowPartial && covered != total)
        return base::ErrorCode::NotFound; // missing tail shard

    if (!policy.allowPartial) {
        for (const ShardResult &shard : shards) {
            if (!shard.complete() || !shard.terminal)
                return base::ErrorCode::Busy; // interrupted; resume
        }
    }

    // Fold the usable subset in trial order and record every range it
    // does not cover. An incomplete or non-terminal shard contributes
    // nothing: its *whole* range becomes a hole, because a heal worker
    // re-runs the full range (resuming from the worker checkpoint) and
    // replaces the artifact -- folding its prefix here and its suffix
    // later would double-count on re-merge.
    SweepReport report;
    report.campaignFingerprint =
        shards.front().manifest.campaignFingerprint;
    report.totalTrials = total;

    std::vector<attack::AttemptOutcome> outcomes;
    outcomes.reserve(total);
    uint64_t next = 0;          // first trial index not yet accounted
    uint64_t first_success = total;
    for (const ShardResult &shard : shards) {
        const ShardRange range = shard.manifest.range;
        if (range.begin > next)
            addMissing(report.missing, ShardRange{next, range.begin});
        next = std::max(next, range.end);
        if (!shard.complete() || !shard.terminal) {
            if (!range.empty())
                addMissing(report.missing, range);
            continue;
        }
        for (size_t i = 0;
             i < shard.outcomes.size() && first_success == total; ++i) {
            if (shard.outcomes[i].success)
                first_success = range.begin + i;
        }
        outcomes.insert(outcomes.end(), shard.outcomes.begin(),
                        shard.outcomes.end());
    }
    if (next < total)
        addMissing(report.missing, ShardRange{next, total});

    // aggregateOutcomes truncates at the first success in the folded
    // sequence -- the campaign's sequential stopping point. Trials a
    // sequential run never reaches (including every hole past that
    // success) cannot influence the canonical result, which is what
    // makes a degraded fold `exact` when the success precedes the
    // first hole.
    report.result = attack::HyperHammerAttack::aggregateOutcomes(
        std::move(outcomes));
    report.exact = report.missing.empty()
        || (first_success < report.missing.front().begin);
    return report;
}

} // namespace hh::shard
