#include "shard.h"

#include <algorithm>

#include "base/archive.h"
#include "base/log.h"
#include "snapshot/snapshot_format.h"

namespace hh::shard {

std::vector<ShardRange>
planShards(uint64_t total_trials, unsigned count)
{
    if (count == 0)
        count = 1;
    std::vector<ShardRange> ranges;
    ranges.reserve(count);
    const uint64_t base = total_trials / count;
    const uint64_t extra = total_trials % count;
    uint64_t begin = 0;
    for (unsigned i = 0; i < count; ++i) {
        const uint64_t size = base + (i < extra ? 1 : 0);
        ranges.push_back(ShardRange{begin, begin + size});
        begin += size;
    }
    return ranges;
}

bool
ShardResult::complete() const
{
    if (outcomes.size() == manifest.range.size())
        return true;
    return !outcomes.empty() && outcomes.back().success;
}

namespace {

/** Manifest/outcome consistency shared by load and merge. */
bool
shardSane(const ShardResult &shard)
{
    const ShardManifest &m = shard.manifest;
    return m.range.begin <= m.range.end
        && m.range.end <= m.totalTrials
        && shard.outcomes.size() <= m.range.size();
}

} // namespace

base::Status
saveShard(const std::string &path, const ShardResult &shard)
{
    base::ArchiveWriter w;
    w.u64(shard.manifest.campaignFingerprint);
    w.u64(shard.manifest.totalTrials);
    w.u64(shard.manifest.range.begin);
    w.u64(shard.manifest.range.end);
    w.u64(shard.outcomes.size());
    for (const attack::AttemptOutcome &outcome : shard.outcomes)
        attack::writeOutcome(w, outcome);
    return base::saveArchiveFile(path, snapshot::kShardMagic,
                                 snapshot::kSnapshotFormatVersion,
                                 w.buffer());
}

base::Expected<ShardResult>
loadShard(const std::string &path)
{
    auto loaded = base::loadArchiveFile(
        path, snapshot::kShardMagic, snapshot::kSnapshotFormatVersion,
        snapshot::kSnapshotFormatVersion);
    if (!loaded)
        return loaded.error();
    base::ArchiveReader r(loaded->payload);
    ShardResult shard;
    shard.manifest.campaignFingerprint = r.u64();
    shard.manifest.totalTrials = r.u64();
    shard.manifest.range.begin = r.u64();
    shard.manifest.range.end = r.u64();
    const uint64_t n = r.count(attack::kOutcomeBytes);
    shard.outcomes.reserve(n);
    for (uint64_t i = 0; i < n && r.ok(); ++i)
        shard.outcomes.push_back(attack::readOutcome(r));
    if (!r.ok() || !r.atEnd()) {
        base::warn("shard '%s': malformed outcome records",
                   path.c_str());
        return base::ErrorCode::InvalidArgument;
    }
    if (!shardSane(shard)) {
        base::warn("shard '%s': manifest inconsistent with payload",
                   path.c_str());
        return base::ErrorCode::InvalidArgument;
    }
    return shard;
}

base::Expected<attack::AttackResult>
mergeShards(std::vector<ShardResult> shards)
{
    if (shards.empty())
        return base::ErrorCode::InvalidArgument;
    for (const ShardResult &shard : shards) {
        if (!shardSane(shard))
            return base::ErrorCode::InvalidArgument;
        if (shard.manifest.campaignFingerprint
                != shards.front().manifest.campaignFingerprint
            || shard.manifest.totalTrials
                != shards.front().manifest.totalTrials)
            return base::ErrorCode::InvalidArgument;
    }

    // Canonical order: any arrival order merges identically.
    std::sort(shards.begin(), shards.end(),
              [](const ShardResult &a, const ShardResult &b) {
                  if (a.manifest.range.begin != b.manifest.range.begin)
                      return a.manifest.range.begin
                          < b.manifest.range.begin;
                  return a.manifest.range.end < b.manifest.range.end;
              });

    const uint64_t total = shards.front().manifest.totalTrials;
    uint64_t expected = 0;
    for (const ShardResult &shard : shards) {
        if (shard.manifest.range.begin < expected)
            return base::ErrorCode::Exists; // duplicate / overlap
        if (shard.manifest.range.begin > expected)
            return base::ErrorCode::NotFound; // coverage gap
        expected = shard.manifest.range.end;
    }
    if (expected != total)
        return base::ErrorCode::NotFound; // missing tail shard

    for (const ShardResult &shard : shards) {
        if (!shard.complete())
            return base::ErrorCode::Busy; // interrupted; resume first
    }

    // Concatenate in trial order. aggregateOutcomes truncates at the
    // campaign's first success, discarding trials a sequential run
    // never reaches (shards past a success still ran -- each process
    // is oblivious to the others -- but their outcomes are not part
    // of the canonical result).
    std::vector<attack::AttemptOutcome> outcomes;
    outcomes.reserve(total);
    for (const ShardResult &shard : shards)
        outcomes.insert(outcomes.end(), shard.outcomes.begin(),
                        shard.outcomes.end());
    return attack::HyperHammerAttack::aggregateOutcomes(
        std::move(outcomes));
}

} // namespace hh::shard
