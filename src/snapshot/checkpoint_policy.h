/**
 * @file
 * Checkpoint policy for long-running trial campaigns.
 *
 * Header-only and base-free so the attack layer can accept a policy
 * without linking the snapshot library. The policy only says *when and
 * where* to checkpoint; the campaign owner (HyperHammerAttack::
 * runAttempts) implements the atomic write / rotate / resume protocol
 * described in DESIGN.md section 3.4.
 */

#ifndef HYPERHAMMER_SNAPSHOT_CHECKPOINT_POLICY_H
#define HYPERHAMMER_SNAPSHOT_CHECKPOINT_POLICY_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace hh::snapshot {

/** Suffix of the rotated previous checkpoint (the fallback file). */
inline const char *const kCheckpointPrevSuffix = ".prev";

/** When/where a trial campaign checkpoints and whether it resumes. */
struct CheckpointPolicy
{
    /** Checkpoint file; empty disables checkpointing entirely. */
    std::string path;

    /**
     * Checkpoint after every N completed trials (the campaign also
     * checkpoints once more when a trial succeeds). 0 disables
     * periodic checkpoints; a non-empty path with everyTrials == 0
     * still allows resume-only use.
     */
    uint64_t everyTrials = 0;

    /**
     * Resume from the newest valid checkpoint before running: @ref
     * path first, then path + ".prev" when the primary file is
     * missing, truncated, corrupt or version-stale. A checkpoint
     * whose campaign fingerprint does not match is rejected the same
     * way. When nothing valid exists the campaign starts from trial 0.
     */
    bool resume = false;

    /**
     * Test hook simulating a crash: stop (with a Busy status and the
     * checkpoint freshly written) once at least this many trials have
     * completed. 0 runs to completion. Lets resume-identity tests
     * exercise the kill/resume path deterministically in-process; the
     * CI soak job uses a real SIGKILL instead.
     */
    uint64_t stopAfterTrials = 0;

    /**
     * Liveness file for a supervising dispatcher: the campaign rewrites
     * it with the completed-trial count at range start and after every
     * finished trial block, independent of checkpoint cadence. Empty
     * disables it. Purely observational -- the file never feeds back
     * into trial results, so the determinism contract is untouched.
     */
    std::string heartbeatPath;

    /** True when periodic checkpoint writes are requested. */
    bool
    enabled() const
    {
        return !path.empty() && everyTrials > 0;
    }
};

/**
 * Rewrite @p path with @p completed_trials. A plain in-place rewrite,
 * not an atomic rename: the reader (the dispatch supervisor) only
 * compares successive contents for change, so a torn read at worst
 * looks like one extra change -- which refreshes the lease, the safe
 * direction. Failures are deliberately swallowed: liveness reporting
 * must never kill a healthy campaign.
 */
inline void
touchHeartbeat(const std::string &path, uint64_t completed_trials)
{
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return;
    std::fprintf(f, "%llu\n",
                 static_cast<unsigned long long>(completed_trials));
    std::fclose(f);
}

} // namespace hh::snapshot

#endif // HYPERHAMMER_SNAPSHOT_CHECKPOINT_POLICY_H
