/**
 * @file
 * Whole-world snapshots: one file holding a host and its live VMs.
 *
 * HostSystem::saveSnapshot() covers the host alone (VMs are owned by
 * callers, not the host). These helpers frame host state plus any
 * number of VM states into a single crash-safe file, for demos and
 * tests that want to kill a run mid-attack and come back to the exact
 * same simulated machine.
 *
 * Configurations are never serialized: the loader rebuilds from the
 * same SystemConfig / VmConfig values (enforced by the embedded host
 * fingerprint) and only the mutable state travels in the file.
 */

#ifndef HYPERHAMMER_SNAPSHOT_SNAPSHOT_H
#define HYPERHAMMER_SNAPSHOT_SNAPSHOT_H

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "sys/host_system.h"
#include "vm/virtual_machine.h"

namespace hh::snapshot {

/**
 * Atomically write @p host plus @p vms (in the given order) to
 * @p path. The VM order is part of the format; pass VMs in creation
 * order so loadWorld() can zip them with their configs.
 */
[[nodiscard]] base::Status
saveWorld(const sys::HostSystem &host,
          const std::vector<const vm::VirtualMachine *> &vms,
          const std::string &path);

/**
 * Load a world written by saveWorld() into a freshly built @p host of
 * the identical configuration, rebuilding one restore-mode VM per
 * entry of @p vm_cfgs (which must match the saved VM count and the
 * configs used at save time). Any mismatch -- magic, version,
 * checksum, host fingerprint, VM count or id -- yields a descriptive
 * error and the host must be discarded.
 */
[[nodiscard]] base::Expected<
    std::vector<std::unique_ptr<vm::VirtualMachine>>>
loadWorld(sys::HostSystem &host,
          const std::vector<vm::VmConfig> &vm_cfgs,
          const std::string &path);

} // namespace hh::snapshot

#endif // HYPERHAMMER_SNAPSHOT_SNAPSHOT_H
