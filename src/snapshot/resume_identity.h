/**
 * @file
 * Resume-identity verification: proof that checkpoint/kill/resume is
 * invisible in the results.
 *
 * The checkpoint contract (DESIGN.md section 3.4) promises that a
 * campaign killed at an arbitrary trial and resumed from its newest
 * checkpoint produces a result bitwise-identical to a straight run.
 * This verifier enforces the promise: it runs the same campaign twice
 * -- once straight, once checkpointed + killed + resumed -- and diffs
 * every field of the two AttackResults, down to the IEEE-754 bit
 * patterns of the Welford aggregates. Any difference is reported by
 * name, so a regression points directly at the field that diverged.
 */

#ifndef HYPERHAMMER_SNAPSHOT_RESUME_IDENTITY_H
#define HYPERHAMMER_SNAPSHOT_RESUME_IDENTITY_H

#include <cstdint>
#include <string>
#include <vector>

#include "attack/orchestrator.h"
#include "sys/host_system.h"

namespace hh::snapshot {

/** One resume-identity experiment. */
struct ResumeIdentityOptions
{
    /** Trials in the campaign. */
    unsigned attempts = 8;
    /** Worker threads for both runs. */
    unsigned threads = 1;
    /** Checkpoint cadence of the killed run. */
    uint64_t checkpointEvery = 2;
    /** Simulated SIGKILL once this many trials completed. */
    uint64_t killAfterTrials = 3;
    /** Checkpoint file (and its ".prev" rotation target). */
    std::string checkpointPath;
};

/** Field-by-field comparison outcome. */
struct ResumeIdentityReport
{
    /** True when every field matched bitwise. */
    bool identical = false;
    /** The kill actually interrupted the campaign mid-way. */
    bool killedMidway = false;
    /** Trials the resumed run restored instead of re-running. */
    unsigned resumedTrials = 0;
    /** Named mismatches, e.g. "stats.attemptSeconds" (empty if none). */
    std::vector<std::string> mismatches;
};

/**
 * Run the campaign defined by (@p host_cfg, @p vm_cfg, @p mapping,
 * @p attack_cfg) straight and as checkpoint-kill-resume, then diff.
 * Both runs build their own hosts from @p host_cfg, so the two are
 * fully independent; determinism of the simulation does the rest.
 */
ResumeIdentityReport
verifyResumeIdentity(const sys::SystemConfig &host_cfg,
                     const vm::VmConfig &vm_cfg,
                     const dram::AddressMapping &mapping,
                     const attack::AttackConfig &attack_cfg,
                     const ResumeIdentityOptions &options);

/**
 * Diff two AttackResults field by field (doubles compared as bit
 * patterns). Returns the named mismatches; empty means identical.
 * Exposed separately so the CI kill/resume soak can compare results
 * recomputed in different processes.
 */
std::vector<std::string>
diffAttackResults(const attack::AttackResult &a,
                  const attack::AttackResult &b);

} // namespace hh::snapshot

#endif // HYPERHAMMER_SNAPSHOT_RESUME_IDENTITY_H
