/**
 * @file
 * On-disk identifiers of the crash-safe snapshot formats.
 *
 * Every snapshot file produced by this repo is framed by
 * base::saveArchiveFile(): magic, format version, payload length and an
 * FNV-1a checksum ahead of the payload. The constants here pick the
 * magic per file kind and pin the single format version shared by all
 * serialized subsystems.
 *
 * Bump kSnapshotFormatVersion whenever any saveState() encoding
 * changes shape; tools/hh_lint.py (rule `snapshot-version`, backed by
 * tools/snapshot_manifest.json) fails the build when a serialized
 * struct changes without a bump. Old snapshots are rejected by version,
 * never reinterpreted.
 */

#ifndef HYPERHAMMER_SNAPSHOT_SNAPSHOT_FORMAT_H
#define HYPERHAMMER_SNAPSHOT_SNAPSHOT_FORMAT_H

#include <cstdint>

namespace hh::snapshot {

/** Whole-host snapshot (HostSystem::saveSnapshot): "HHHOST\n" + v. */
constexpr uint64_t kHostSnapshotMagic = 0x4848484f53540a01ull;

/** Host + VMs world snapshot (snapshot::saveWorld): "HHWRLD\n" + v. */
constexpr uint64_t kWorldSnapshotMagic = 0x484857524c440a01ull;

/** Orchestrator campaign checkpoint (runAttempts): "HHCKPT\n" + v. */
constexpr uint64_t kCheckpointMagic = 0x4848434b50540a01ull;

/** Sharded-sweep range artifact (shard::saveShard): "HHSHRD\n" + v. */
constexpr uint64_t kShardMagic = 0x4848534852440a01ull;

/** Dispatch supervisor ledger (dispatch::saveLedger): "HHLEDG\n" + v. */
constexpr uint64_t kLedgerMagic = 0x48484c4544470a01ull;

/**
 * Format version of every serialized payload. One shared version: a
 * change in any subsystem's encoding invalidates all snapshot kinds,
 * which is exactly the safe behaviour for crash-resume state.
 *
 * v2: the CoW world-forking refactor. The byte stream each
 * saveState() emits is unchanged (the CoW backends serialize their
 * merged logical view), but the producers were rewritten wholesale,
 * so pre-refactor snapshots are retired rather than trusted.
 *
 * v3: sharded sweeps. Campaign checkpoints gained the absolute
 * trial-range start after the fingerprint (a whole campaign writes 0;
 * a shard writes its range begin), so a shard's in-flight checkpoint
 * can never be resumed into the wrong range. Pre-shard checkpoints
 * are rejected by version.
 *
 * v4: the mitigation layer. The buddy allocator serializes per-domain
 * free lists and PCP stacks (one domain in the undefended layout),
 * the virtio-mem device appends its quarantine grace-window counters,
 * campaign checkpoints append a defense-state block, and the host
 * config fingerprint covers the domain layout and ECC correction
 * strength. Pre-mitigation snapshots are rejected by version.
 *
 * v5: the supervised sweep dispatcher. Shard artifacts carry a
 * terminal flag (a worker's final word on its range, distinguishing a
 * finished shard from an abandoned partial write), the fault-site
 * registry gained the four dispatch.* sites (the injector serializes
 * one counter/RNG block per registered site, so its payload grew),
 * and the supervisor's ledger joined the archive family under
 * kLedgerMagic. Pre-dispatch artifacts are rejected by version.
 */
constexpr uint32_t kSnapshotFormatVersion = 5;

} // namespace hh::snapshot

#endif // HYPERHAMMER_SNAPSHOT_SNAPSHOT_FORMAT_H
