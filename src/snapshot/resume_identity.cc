#include "resume_identity.h"

#include <cstdio>

#include "base/log.h"
#include "snapshot/checkpoint_policy.h"

namespace hh::snapshot {

namespace {

void
diffStats(std::vector<std::string> &out, const std::string &name,
          const base::RunningStats &a, const base::RunningStats &b)
{
    if (!a.bitwiseEqual(b))
        out.push_back("stats." + name);
}

void
diffOutcome(std::vector<std::string> &out, size_t index,
            const attack::AttemptOutcome &a,
            const attack::AttemptOutcome &b)
{
    const std::string prefix =
        "outcomes[" + std::to_string(index) + "].";
    if (a.success != b.success)
        out.push_back(prefix + "success");
    if (a.bitsTargeted != b.bitsTargeted)
        out.push_back(prefix + "bitsTargeted");
    if (a.releasedSubBlocks != b.releasedSubBlocks)
        out.push_back(prefix + "releasedSubBlocks");
    if (a.demotions != b.demotions)
        out.push_back(prefix + "demotions");
    if (a.changedPages != b.changedPages)
        out.push_back(prefix + "changedPages");
    if (a.epteCandidates != b.epteCandidates)
        out.push_back(prefix + "epteCandidates");
    if (a.duration != b.duration)
        out.push_back(prefix + "duration");
    if (a.retries != b.retries)
        out.push_back(prefix + "retries");
    if (a.backoffTime != b.backoffTime)
        out.push_back(prefix + "backoffTime");
    if (a.faultsFired != b.faultsFired)
        out.push_back(prefix + "faultsFired");
}

} // namespace

std::vector<std::string>
diffAttackResults(const attack::AttackResult &a,
                  const attack::AttackResult &b)
{
    std::vector<std::string> out;
    if (a.success != b.success)
        out.push_back("success");
    if (a.attempts != b.attempts)
        out.push_back("attempts");
    if (a.totalTime != b.totalTime)
        out.push_back("totalTime");
    if (a.profilingTime != b.profilingTime)
        out.push_back("profilingTime");
    if (a.status != b.status)
        out.push_back("status");
    if (a.degraded != b.degraded)
        out.push_back("degraded");
    if (a.reprofiles != b.reprofiles)
        out.push_back("reprofiles");
    if (a.faultsInjected != b.faultsInjected)
        out.push_back("faultsInjected");
    if (a.outcomes.size() != b.outcomes.size()) {
        out.push_back("outcomes.size");
    } else {
        for (size_t i = 0; i < a.outcomes.size(); ++i)
            diffOutcome(out, i, a.outcomes[i], b.outcomes[i]);
    }
    diffStats(out, "attemptSeconds", a.stats.attemptSeconds,
              b.stats.attemptSeconds);
    diffStats(out, "bitsTargeted", a.stats.bitsTargeted,
              b.stats.bitsTargeted);
    diffStats(out, "releasedSubBlocks", a.stats.releasedSubBlocks,
              b.stats.releasedSubBlocks);
    diffStats(out, "demotions", a.stats.demotions, b.stats.demotions);
    diffStats(out, "changedPages", a.stats.changedPages,
              b.stats.changedPages);
    diffStats(out, "epteCandidates", a.stats.epteCandidates,
              b.stats.epteCandidates);
    diffStats(out, "retries", a.stats.retries, b.stats.retries);
    return out;
}

ResumeIdentityReport
verifyResumeIdentity(const sys::SystemConfig &host_cfg,
                     const vm::VmConfig &vm_cfg,
                     const dram::AddressMapping &mapping,
                     const attack::AttackConfig &attack_cfg,
                     const ResumeIdentityOptions &options)
{
    ResumeIdentityReport report;

    // Start from a clean slate: stale checkpoints from an earlier
    // experiment would otherwise be resumed (by design).
    const std::string prev =
        options.checkpointPath + kCheckpointPrevSuffix;
    (void)std::remove(options.checkpointPath.c_str());
    (void)std::remove(prev.c_str());

    // Control: one straight, uncheckpointed campaign.
    attack::AttackResult straight;
    {
        sys::HostSystem host(host_cfg);
        attack::HyperHammerAttack attack(host, vm_cfg, mapping,
                                         attack_cfg);
        (void)attack.profilePhase();
        straight = attack.runAttempts(options.attempts,
                                      options.threads);
    }

    // Experiment, phase 1: checkpoint and die mid-campaign.
    {
        sys::HostSystem host(host_cfg);
        attack::HyperHammerAttack attack(host, vm_cfg, mapping,
                                         attack_cfg);
        (void)attack.profilePhase();
        CheckpointPolicy policy;
        policy.path = options.checkpointPath;
        policy.everyTrials = options.checkpointEvery;
        policy.stopAfterTrials = options.killAfterTrials;
        const attack::AttackResult partial = attack.runAttempts(
            options.attempts, options.threads, policy);
        report.killedMidway =
            partial.status == base::Status(base::ErrorCode::Busy);
    }

    // Experiment, phase 2: a new process-equivalent (fresh host,
    // fresh attack object) resumes from the checkpoint.
    attack::AttackResult resumed;
    {
        sys::HostSystem host(host_cfg);
        attack::HyperHammerAttack attack(host, vm_cfg, mapping,
                                         attack_cfg);
        (void)attack.profilePhase();
        CheckpointPolicy policy;
        policy.path = options.checkpointPath;
        policy.everyTrials = options.checkpointEvery;
        policy.resume = true;
        resumed = attack.runAttempts(options.attempts, options.threads,
                                     policy);
    }
    report.resumedTrials = resumed.resumedTrials;

    // The straight run never resumes; mask the one field that is
    // *about* the resume mechanism rather than the campaign results.
    attack::AttackResult straight_masked = straight;
    straight_masked.resumedTrials = resumed.resumedTrials;
    report.mismatches = diffAttackResults(straight_masked, resumed);
    report.identical = report.mismatches.empty();

    (void)std::remove(options.checkpointPath.c_str());
    (void)std::remove(prev.c_str());
    return report;
}

} // namespace hh::snapshot
