#include "snapshot.h"

#include "base/archive.h"
#include "base/log.h"
#include "snapshot/snapshot_format.h"

namespace hh::snapshot {

base::Status
saveWorld(const sys::HostSystem &host,
          const std::vector<const vm::VirtualMachine *> &vms,
          const std::string &path)
{
    base::ArchiveWriter w;
    w.u64(host.configFingerprint());
    host.saveState(w);
    w.u64(vms.size());
    for (const vm::VirtualMachine *machine : vms) {
        // The id also prefixes the VM blob itself; writing it in the
        // framing lets the loader build the restore shell first.
        w.u16(machine->id());
        machine->saveState(w);
    }
    return base::saveArchiveFile(path, kWorldSnapshotMagic,
                                 kSnapshotFormatVersion, w.buffer());
}

base::Expected<std::vector<std::unique_ptr<vm::VirtualMachine>>>
loadWorld(sys::HostSystem &host,
          const std::vector<vm::VmConfig> &vm_cfgs,
          const std::string &path)
{
    auto loaded = base::loadArchiveFile(path, kWorldSnapshotMagic,
                                        kSnapshotFormatVersion,
                                        kSnapshotFormatVersion);
    if (!loaded)
        return loaded.error();
    base::ArchiveReader r(loaded->payload);
    const uint64_t fingerprint = r.u64();
    if (!r.ok())
        return r.status().error();
    if (fingerprint != host.configFingerprint()) {
        base::warn("world snapshot '%s': host config fingerprint "
                   "mismatch",
                   path.c_str());
        return base::ErrorCode::InvalidArgument;
    }
    if (const base::Status st = host.loadState(r); !st.ok())
        return st.error();
    const uint64_t vm_count = r.u64();
    if (!r.ok())
        return r.status().error();
    if (vm_count != vm_cfgs.size()) {
        base::warn("world snapshot '%s': %llu VMs saved but %zu "
                   "configs supplied",
                   path.c_str(),
                   static_cast<unsigned long long>(vm_count),
                   vm_cfgs.size());
        return base::ErrorCode::InvalidArgument;
    }
    std::vector<std::unique_ptr<vm::VirtualMachine>> machines;
    machines.reserve(vm_count);
    for (uint64_t i = 0; i < vm_count; ++i) {
        const uint16_t vm_id = r.u16();
        if (!r.ok())
            return r.status().error();
        auto machine = host.restoreVm(vm_cfgs[i], vm_id);
        if (const base::Status st = machine->loadState(r); !st.ok())
            return st.error();
        machines.push_back(std::move(machine));
    }
    if (!r.atEnd()) {
        base::warn("world snapshot '%s': %zu trailing bytes",
                   path.c_str(), r.remaining());
        return base::ErrorCode::InvalidArgument;
    }
    return machines;
}

} // namespace hh::snapshot
