/**
 * @file
 * Clang Thread Safety Analysis annotations (no-ops elsewhere).
 *
 * The parallel trial engine promises bitwise-identical results at any
 * thread count, which only holds if every piece of genuinely shared
 * mutable state is either lock-protected or atomic. These macros let
 * us state that protection in the type system so the Clang CI leg
 * (-Wthread-safety -Werror=thread-safety) rejects unprotected access
 * at compile time instead of leaving it to flaky benchmark numbers.
 *
 * Conventions (see docs/static_analysis.md):
 *  - every mutex-protected member carries HH_GUARDED_BY(mutex);
 *  - public entry points that take the lock themselves are marked
 *    HH_EXCLUDES(mutex); helpers expecting it held use HH_REQUIRES;
 *  - state owned by exactly one trial (the engine's determinism
 *    contract, DESIGN.md section 3.2) is deliberately unannotated --
 *    annotate it the moment it becomes shared.
 *
 * The spellings follow the Clang documentation's mutex.h reference
 * header, prefixed HH_ to keep the repo grep-able.
 */

#ifndef HYPERHAMMER_BASE_THREAD_ANNOTATIONS_H
#define HYPERHAMMER_BASE_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define HH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HH_THREAD_ANNOTATION(x) // no-op: GCC/MSVC have no TSA
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define HH_CAPABILITY(x) HH_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define HH_SCOPED_CAPABILITY HH_THREAD_ANNOTATION(scoped_lockable)

/** The member may only be touched while holding @p x. */
#define HH_GUARDED_BY(x) HH_THREAD_ANNOTATION(guarded_by(x))

/** The pointed-to data may only be touched while holding @p x. */
#define HH_PT_GUARDED_BY(x) HH_THREAD_ANNOTATION(pt_guarded_by(x))

/** The function acquires the capability and does not release it. */
#define HH_ACQUIRE(...) \
    HH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases a previously acquired capability. */
#define HH_RELEASE(...) \
    HH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Acquires the capability when returning @p __VA_ARGS__'s first arg. */
#define HH_TRY_ACQUIRE(...) \
    HH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must hold the capability for the duration of the call. */
#define HH_REQUIRES(...) \
    HH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the function takes it itself). */
#define HH_EXCLUDES(...) HH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Lock-ordering hints for deadlock detection. */
#define HH_ACQUIRED_BEFORE(...) \
    HH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HH_ACQUIRED_AFTER(...) \
    HH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** The function returns a reference to the given capability. */
#define HH_RETURN_CAPABILITY(x) HH_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: the function's locking cannot be expressed statically.
 * Every use needs a comment justifying it (enforced by review; the
 * hh-lint waiver rule applies the same standard to its own escapes).
 */
#define HH_NO_THREAD_SAFETY_ANALYSIS \
    HH_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // HYPERHAMMER_BASE_THREAD_ANNOTATIONS_H
