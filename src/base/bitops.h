/**
 * @file
 * Small bit-manipulation helpers used by the DRAM address mapping and the
 * EPT entry format code.
 */

#ifndef HYPERHAMMER_BASE_BITOPS_H
#define HYPERHAMMER_BASE_BITOPS_H

#include <bit>
#include <cstdint>
#include <initializer_list>

namespace hh::base {

/** Extract bit @p pos (0-based) of @p value. */
constexpr uint64_t
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Extract bits [lo, hi] (inclusive, hi >= lo) of @p value. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((1ull << width) - 1);
}

/** Return @p value with bit @p pos set to @p b. */
constexpr uint64_t
setBit(uint64_t value, unsigned pos, bool b)
{
    return b ? (value | (1ull << pos)) : (value & ~(1ull << pos));
}

/** Return @p value with bit @p pos flipped. */
constexpr uint64_t
flipBit(uint64_t value, unsigned pos)
{
    return value ^ (1ull << pos);
}

/** XOR-parity of the bits of @p value selected by the positions list. */
constexpr unsigned
xorFold(uint64_t value, std::initializer_list<unsigned> positions)
{
    unsigned acc = 0;
    for (unsigned pos : positions)
        acc ^= static_cast<unsigned>(bit(value, pos));
    return acc;
}

/** XOR-parity of all bits of @p value that are set in @p mask. */
constexpr unsigned
maskParity(uint64_t value, uint64_t mask)
{
    return static_cast<unsigned>(std::popcount(value & mask) & 1);
}

/** Integer ceil(log2(v)); returns 0 for v <= 1. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    if (v <= 1)
        return 0;
    return 64 - std::countl_zero(v - 1);
}

/** Integer floor(log2(v)); undefined for v == 0. */
constexpr unsigned
floorLog2(uint64_t v)
{
    return 63 - std::countl_zero(v);
}

/** True when v is a power of two (v != 0). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Round @p v up to the next multiple of @p align (power of two). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

} // namespace hh::base

#endif // HYPERHAMMER_BASE_BITOPS_H
