/**
 * @file
 * Bounds-checked binary archive reader/writer for snapshots.
 *
 * The snapshot subsystem (DESIGN.md section 3.4) serializes every
 * stateful component to a little-endian byte stream framed by a magic
 * number, a format version and an FNV-1a checksum. Writing is
 * infallible (an in-memory buffer); reading never trusts the input:
 * every primitive read is bounds-checked and a failed read latches a
 * sticky error flag instead of invoking UB, so corrupted or truncated
 * snapshots degrade to a descriptive base::Status, never a crash.
 *
 * File I/O is crash-safe: saveArchiveFile() writes a temporary file,
 * fsync()s it, and rename()s it into place, so a kill at any instant
 * leaves either the old snapshot or the new one, never a torn file.
 */

#ifndef HYPERHAMMER_BASE_ARCHIVE_H
#define HYPERHAMMER_BASE_ARCHIVE_H

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace hh::base {

/**
 * Tag selecting a restore-mode constructor: build the object's shell
 * (references, configuration) but skip the boot-time allocations that
 * a subsequent loadState() would overwrite.
 */
struct RestoreTag
{};

/** 64-bit FNV-1a over a byte range (the snapshot checksum). */
uint64_t fnv1a64(const uint8_t *data, size_t size);

/**
 * Append-only little-endian serializer. All writes succeed; the
 * resulting buffer is framed and checksummed by saveArchiveFile().
 */
class ArchiveWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** Doubles travel as their IEEE-754 bit pattern: exact round-trip. */
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf.insert(buf.end(), s.begin(), s.end());
    }

    void
    u64vec(const std::vector<uint64_t> &v)
    {
        u64(v.size());
        for (uint64_t x : v)
            u64(x);
    }

    void
    rngState(const std::array<uint64_t, 4> &state)
    {
        for (uint64_t word : state)
            u64(word);
    }

    const std::vector<uint8_t> &buffer() const { return buf; }

    /** Checksum of everything written so far (config fingerprints). */
    uint64_t
    fingerprint() const
    {
        return fnv1a64(buf.data(), buf.size());
    }

  private:
    std::vector<uint8_t> buf;
};

/**
 * Bounds-checked little-endian deserializer over a borrowed buffer.
 *
 * Reads past the end (or after an explicit fail()) return zero values
 * and latch the sticky error flag; callers deserialize a whole section
 * and check status() once at the end. No read ever touches memory
 * outside the buffer.
 */
class ArchiveReader
{
  public:
    ArchiveReader(const uint8_t *data, size_t size)
        : data(data), size(size)
    {}

    explicit ArchiveReader(const std::vector<uint8_t> &buffer)
        : data(buffer.data()), size(buffer.size())
    {}

    uint8_t
    u8()
    {
        if (pos + 1 > size) {
            failed = true;
            return 0;
        }
        return data[pos++];
    }

    bool boolean() { return u8() != 0; }

    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        const uint16_t hi = u8();
        return static_cast<uint16_t>(lo | (hi << 8));
    }

    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        const uint32_t hi = u16();
        return lo | (hi << 16);
    }

    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        const uint64_t hi = u32();
        return lo | (hi << 32);
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const uint64_t len = u64();
        if (failed || pos + len > size || len > size) {
            failed = true;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data + pos), len);
        pos += len;
        return s;
    }

    /**
     * Element count prefix, validated against the bytes that remain:
     * a corrupted length can never drive a multi-gigabyte allocation.
     * @param elem_bytes minimum serialized size of one element
     */
    uint64_t
    count(uint64_t elem_bytes)
    {
        const uint64_t n = u64();
        if (failed || elem_bytes == 0 || n > (size - pos) / elem_bytes) {
            failed = true;
            return 0;
        }
        return n;
    }

    std::vector<uint64_t>
    u64vec()
    {
        const uint64_t n = count(8);
        std::vector<uint64_t> v;
        v.reserve(n);
        for (uint64_t i = 0; i < n && !failed; ++i)
            v.push_back(u64());
        return v;
    }

    std::array<uint64_t, 4>
    rngState()
    {
        std::array<uint64_t, 4> state{};
        for (uint64_t &word : state)
            word = u64();
        return state;
    }

    /** Latch the error flag after a failed semantic validation. */
    void fail() { failed = true; }

    bool ok() const { return !failed; }
    size_t remaining() const { return failed ? 0 : size - pos; }
    bool atEnd() const { return failed || pos == size; }

    /** Ok while every read (and validation) so far succeeded. */
    [[nodiscard]] Status
    status() const
    {
        return failed ? Status(ErrorCode::InvalidArgument)
                      : Status::success();
    }

  private:
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool failed = false;
};

/** A loaded archive: its format version and raw payload. */
struct LoadedArchive
{
    uint32_t version = 0;
    std::vector<uint8_t> payload;
};

/**
 * Atomically write @p payload to @p path framed as
 * [magic u64 | version u32 | payload size u64 | FNV-1a u64 | payload].
 * The bytes go to "<path>.tmp" first, are fsync()ed, and rename() then
 * publishes them -- a crash leaves the previous file intact.
 */
[[nodiscard]] Status saveArchiveFile(const std::string &path,
                                     uint64_t magic, uint32_t version,
                                     const std::vector<uint8_t> &payload);

/**
 * Load and validate an archive written by saveArchiveFile().
 * Fails with NotFound when the file does not exist and
 * InvalidArgument (with a logged reason) on a wrong magic, an
 * unsupported version, a truncated body, or a checksum mismatch.
 */
[[nodiscard]] Expected<LoadedArchive>
loadArchiveFile(const std::string &path, uint64_t magic,
                uint32_t min_version, uint32_t max_version);

} // namespace hh::base

#endif // HYPERHAMMER_BASE_ARCHIVE_H
