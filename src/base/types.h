/**
 * @file
 * Fundamental address/size types and constants shared across the
 * HyperHammer simulation stack.
 *
 * The simulator distinguishes three address spaces, mirroring the paper's
 * terminology (Section 2.2):
 *   - host physical addresses (HPA), the "real" DRAM addresses;
 *   - guest physical addresses (GPA), what the VM believes is physical;
 *   - I/O virtual addresses (IOVA), the vIOMMU-translated device space.
 *
 * Strong typedef wrappers prevent accidental mixing of the spaces, which
 * is exactly the confusion the attack exploits in the real system.
 */

#ifndef HYPERHAMMER_BASE_TYPES_H
#define HYPERHAMMER_BASE_TYPES_H

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace hh {

/** 4 KB base page: the granule of the buddy allocator and of EPT leaves. */
constexpr uint64_t kPageSize = 4096;
/** log2 of the base page size. */
constexpr unsigned kPageShift = 12;
/** 2 MB hugepage: THP granule, virtio-mem sub-block, order-9 block. */
constexpr uint64_t kHugePageSize = 2u * 1024 * 1024;
/** log2 of the hugepage size. */
constexpr unsigned kHugePageShift = 21;
/** Number of 4 KB pages per 2 MB hugepage. */
constexpr uint64_t kPagesPerHugePage = kHugePageSize / kPageSize;
/** Number of 64-bit entries in one page-table (or EPT, or IOPT) page. */
constexpr uint64_t kEntriesPerTable = 512;

/** Size literals. */
constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

namespace base {

/**
 * Strongly-typed 64-bit address. The Tag parameter makes HostPhysAddr,
 * GuestPhysAddr and IoVirtAddr mutually unassignable while keeping the
 * arithmetic convenient.
 */
template <typename Tag>
class TypedAddr
{
  public:
    constexpr TypedAddr() = default;
    constexpr explicit TypedAddr(uint64_t value) : _value(value) {}

    /** Raw numeric value of the address. */
    constexpr uint64_t value() const { return _value; }

    /** Page frame number (address >> 12). */
    constexpr uint64_t pfn() const { return _value >> kPageShift; }

    /** Offset within the 4 KB page. */
    constexpr uint64_t pageOffset() const { return _value & (kPageSize - 1); }

    /** Offset within the 2 MB hugepage. */
    constexpr uint64_t
    hugePageOffset() const
    {
        return _value & (kHugePageSize - 1);
    }

    /** Address rounded down to its 4 KB page boundary. */
    constexpr TypedAddr
    pageBase() const
    {
        return TypedAddr(_value & ~(kPageSize - 1));
    }

    /** Address rounded down to its 2 MB hugepage boundary. */
    constexpr TypedAddr
    hugePageBase() const
    {
        return TypedAddr(_value & ~(kHugePageSize - 1));
    }

    /** True when the address is 4 KB aligned. */
    constexpr bool pageAligned() const { return pageOffset() == 0; }

    /** True when the address is 2 MB aligned. */
    constexpr bool hugePageAligned() const { return hugePageOffset() == 0; }

    constexpr TypedAddr
    operator+(uint64_t delta) const
    {
        return TypedAddr(_value + delta);
    }

    constexpr TypedAddr
    operator-(uint64_t delta) const
    {
        return TypedAddr(_value - delta);
    }

    constexpr uint64_t
    operator-(TypedAddr other) const
    {
        return _value - other._value;
    }

    constexpr TypedAddr &
    operator+=(uint64_t delta)
    {
        _value += delta;
        return *this;
    }

    constexpr auto operator<=>(const TypedAddr &) const = default;

  private:
    uint64_t _value = 0;
};

struct HostPhysTag {};
struct GuestPhysTag {};
struct GuestVirtTag {};
struct IoVirtTag {};

} // namespace base

/** Host physical address (HPA): indexes real (simulated) DRAM. */
using HostPhysAddr = base::TypedAddr<base::HostPhysTag>;
/** Guest physical address (GPA): what the VM sees as physical memory. */
using GuestPhysAddr = base::TypedAddr<base::GuestPhysTag>;
/** Guest virtual address (GVA). */
using GuestVirtAddr = base::TypedAddr<base::GuestVirtTag>;
/** I/O virtual address (IOVA): input to the (v)IOMMU. */
using IoVirtAddr = base::TypedAddr<base::IoVirtTag>;

/** Host page frame number; frame i covers HPA [i*4K, (i+1)*4K). */
using Pfn = uint64_t;
/** Guest frame number. */
using Gfn = uint64_t;

/** An invalid/unset PFN sentinel. */
constexpr Pfn kInvalidPfn = ~0ull;

} // namespace hh

namespace std {

template <typename Tag>
struct hash<hh::base::TypedAddr<Tag>>
{
    size_t
    operator()(const hh::base::TypedAddr<Tag> &a) const noexcept
    {
        return std::hash<uint64_t>{}(a.value());
    }
};

} // namespace std

#endif // HYPERHAMMER_BASE_TYPES_H
