#include "thread_pool.h"

namespace hh::base {

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex);
        stopping = true;
    }
    workReady.notifyAll();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        MutexLock lock(mutex);
        queue.push_back(std::move(job));
        ++inFlight;
    }
    workReady.notifyOne();
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex);
    while (inFlight != 0)
        allDone.wait(mutex);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(mutex);
            while (!stopping && queue.empty())
                workReady.wait(mutex);
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
        {
            MutexLock lock(mutex);
            if (--inFlight == 0)
                allDone.notifyAll();
        }
    }
}

} // namespace hh::base
