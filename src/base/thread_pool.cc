#include "thread_pool.h"

namespace hh::base {

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    workReady.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        queue.push_back(std::move(job));
        ++inFlight;
    }
    workReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allDone.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex);
            workReady.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex);
            if (--inFlight == 0)
                allDone.notify_all();
        }
    }
}

} // namespace hh::base
