#include "log.h"

#include <cstdarg>

namespace hh::base {

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

void
Logger::vlog(LogLevel level, const char *fmt, va_list ap)
{
    if (level >= LogLevel::Warn)
        ++warnings;
    if (level < threshold)
        return;
    const char *prefix = "";
    switch (level) {
      case LogLevel::Debug: prefix = "debug: "; break;
      case LogLevel::Info:  prefix = "info: ";  break;
      case LogLevel::Warn:  prefix = "warn: ";  break;
      case LogLevel::Error: prefix = "error: "; break;
    }
    std::fputs(prefix, stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

void
logf(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(level, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Error, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Error, fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace hh::base
