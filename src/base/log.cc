#include "log.h"

#include <cstdarg>
#include <string>

namespace hh::base {

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

void
Logger::vlog(LogLevel level, const char *fmt, va_list ap)
{
    if (level >= LogLevel::Warn)
        ++warnings;
    if (level < getThreshold())
        return;
    const char *prefix = "";
    switch (level) {
      case LogLevel::Debug: prefix = "debug: "; break;
      case LogLevel::Info:  prefix = "info: ";  break;
      case LogLevel::Warn:  prefix = "warn: ";  break;
      case LogLevel::Error: prefix = "error: "; break;
    }

    // Format outside the lock; emit in one call under it, so messages
    // from concurrent trial workers never interleave mid-line.
    va_list probe;
    va_copy(probe, ap);
    char stack_buf[512];
    const int need =
        std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, probe);
    va_end(probe);

    std::string line(prefix);
    if (need < 0) {
        line += "<formatting error>";
    } else if (static_cast<size_t>(need) < sizeof(stack_buf)) {
        line += stack_buf;
    } else {
        std::string big(static_cast<size_t>(need) + 1, '\0');
        std::vsnprintf(big.data(), big.size(), fmt, ap);
        big.resize(static_cast<size_t>(need));
        line += big;
    }
    line += '\n';

    MutexLock lock(sinkMutex);
    // Logging is best-effort; a short write to stderr is not actionable.
    const size_t written = std::fwrite(line.data(), 1, line.size(), stderr);
    (void)written;
}

void
logf(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(level, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Error, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Logger::get().vlog(LogLevel::Error, fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace hh::base
