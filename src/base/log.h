/**
 * @file
 * Minimal logging and error-reporting facility, in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal() for
 * unusable configurations, warn()/inform() for user-facing status.
 *
 * The logger is process-global and called concurrently by trial
 * workers, so all of its state is either atomic (threshold, counters)
 * or guarded by the annotated sink mutex (the stderr stream itself --
 * messages are formatted outside the lock and emitted in one write, so
 * parallel trials never interleave mid-line).
 */

#ifndef HYPERHAMMER_BASE_LOG_H
#define HYPERHAMMER_BASE_LOG_H

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace hh::base {

/** Log verbosity levels, in increasing severity. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Global logging configuration. Tests lower the threshold to silence
 * expected warnings; tools raise verbosity with --verbose.
 */
class Logger
{
  public:
    /** Singleton accessor. */
    static Logger &get();

    /** Only messages at >= this level are emitted. */
    void
    setThreshold(LogLevel level)
    {
        threshold.store(level, std::memory_order_relaxed);
    }

    LogLevel
    getThreshold() const
    {
        return threshold.load(std::memory_order_relaxed);
    }

    /** printf-style log emission. */
    void vlog(LogLevel level, const char *fmt, va_list ap)
        HH_EXCLUDES(sinkMutex);

    /** Number of messages emitted at Warn or above (for tests). */
    uint64_t warningCount() const { return warnings.load(); }

  private:
    /** Atomic: trial workers log while tests adjust verbosity. */
    std::atomic<LogLevel> threshold{LogLevel::Info};
    /** Atomic: parallel trials may warn concurrently. */
    std::atomic<uint64_t> warnings{0};
    /** Serializes writes to the sink so lines never interleave. */
    Mutex sinkMutex;
};

/** Emit a message at the given level. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something might be wrong but simulation can continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user/configuration error: print and exit(1).
 * Use when the simulation cannot continue due to the caller's input.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: print and abort(). Use only for
 * conditions that indicate a simulator bug, never for bad input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless @p cond holds. */
#define HH_ASSERT(cond)                                                    \
    do {                                                                   \
        if (!(cond))                                                       \
            ::hh::base::panic("assertion failed: %s at %s:%d", #cond,      \
                              __FILE__, __LINE__);                         \
    } while (0)

} // namespace hh::base

#endif // HYPERHAMMER_BASE_LOG_H
