#include "base/archive.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "base/log.h"

namespace hh::base {

uint64_t
fnv1a64(const uint8_t *data, size_t size)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

// File frame: magic u64 | version u32 | payload size u64 | FNV-1a u64.
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8;

void
putLe64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
getLe64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[i]) << (8 * i);
    return v;
}

uint32_t
getLe32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(in[i]) << (8 * i);
    return v;
}

} // namespace

Status
saveArchiveFile(const std::string &path, uint64_t magic,
                uint32_t version, const std::vector<uint8_t> &payload)
{
    std::array<uint8_t, kHeaderBytes> header{};
    putLe64(header.data(), magic);
    putLe32(header.data() + 8, version);
    putLe64(header.data() + 12, payload.size());
    putLe64(header.data() + 20, fnv1a64(payload.data(), payload.size()));

    const std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        warn("snapshot: cannot open %s for writing: %s", tmp.c_str(),
             std::strerror(errno));
        return Status(ErrorCode::Denied);
    }
    bool ok = std::fwrite(header.data(), 1, header.size(), f) ==
              header.size();
    if (ok && !payload.empty())
        ok = std::fwrite(payload.data(), 1, payload.size(), f) ==
             payload.size();
    // Crash safety: the rename below must publish fully-durable bytes,
    // so flush libc buffers and fsync before the close.
    if (ok)
        ok = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok) {
        warn("snapshot: short write to %s: %s", tmp.c_str(),
             std::strerror(errno));
        (void)std::remove(tmp.c_str());
        return Status(ErrorCode::NoMemory);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("snapshot: rename %s -> %s failed: %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        (void)std::remove(tmp.c_str());
        return Status(ErrorCode::Denied);
    }
    return Status::success();
}

Expected<LoadedArchive>
loadArchiveFile(const std::string &path, uint64_t magic,
                uint32_t min_version, uint32_t max_version)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return ErrorCode::NotFound;

    std::array<uint8_t, kHeaderBytes> header{};
    if (std::fread(header.data(), 1, header.size(), f) != header.size()) {
        std::fclose(f);
        warn("snapshot: %s is shorter than the %zu-byte header",
             path.c_str(), kHeaderBytes);
        return ErrorCode::InvalidArgument;
    }
    const uint64_t file_magic = getLe64(header.data());
    const uint32_t version = getLe32(header.data() + 8);
    const uint64_t payload_size = getLe64(header.data() + 12);
    const uint64_t checksum = getLe64(header.data() + 20);

    if (file_magic != magic) {
        std::fclose(f);
        warn("snapshot: %s has magic %016llx, expected %016llx",
             path.c_str(), (unsigned long long)file_magic,
             (unsigned long long)magic);
        return ErrorCode::InvalidArgument;
    }
    if (version < min_version || version > max_version) {
        std::fclose(f);
        warn("snapshot: %s has format version %u, supported range is "
             "[%u, %u]",
             path.c_str(), version, min_version, max_version);
        return ErrorCode::InvalidArgument;
    }

    // Validate the declared size against the actual file length before
    // allocating, so a corrupted header cannot drive a huge allocation.
    const long body_start = std::ftell(f);
    if (body_start < 0 || std::fseek(f, 0, SEEK_END) != 0) {
        std::fclose(f);
        return ErrorCode::InvalidArgument;
    }
    const long file_end = std::ftell(f);
    if (file_end < body_start ||
        payload_size != static_cast<uint64_t>(file_end - body_start)) {
        std::fclose(f);
        warn("snapshot: %s declares %llu payload bytes but holds %lld",
             path.c_str(), (unsigned long long)payload_size,
             (long long)(file_end - body_start));
        return ErrorCode::InvalidArgument;
    }
    if (std::fseek(f, body_start, SEEK_SET) != 0) {
        std::fclose(f);
        return ErrorCode::InvalidArgument;
    }

    LoadedArchive loaded;
    loaded.version = version;
    loaded.payload.resize(payload_size);
    if (payload_size != 0 &&
        std::fread(loaded.payload.data(), 1, payload_size, f) !=
            payload_size) {
        std::fclose(f);
        warn("snapshot: truncated read of %s", path.c_str());
        return ErrorCode::InvalidArgument;
    }
    std::fclose(f);

    const uint64_t actual =
        fnv1a64(loaded.payload.data(), loaded.payload.size());
    if (actual != checksum) {
        warn("snapshot: %s checksum mismatch (stored %016llx, computed "
             "%016llx)",
             path.c_str(), (unsigned long long)checksum,
             (unsigned long long)actual);
        return ErrorCode::InvalidArgument;
    }
    return loaded;
}

} // namespace hh::base
