/**
 * @file
 * Lightweight status / expected-value types for recoverable errors.
 *
 * Most of the stack models an operating system, where failure (ENOMEM,
 * EBUSY, a NACKed virtio request) is a normal outcome that callers must
 * branch on, not an exception. Expected<T> carries either a value or an
 * ErrorCode; Status is Expected<Unit>.
 */

#ifndef HYPERHAMMER_BASE_STATUS_H
#define HYPERHAMMER_BASE_STATUS_H

#include <cstdint>
#include <utility>
#include <variant>

#include "log.h"

namespace hh::base {

/** Error codes shared across the simulated kernel/hypervisor stack. */
enum class ErrorCode : uint8_t
{
    Ok = 0,
    NoMemory,        ///< allocation failed (ENOMEM)
    InvalidArgument, ///< malformed request (EINVAL)
    NotFound,        ///< no such mapping / page / block (ENOENT)
    Exists,          ///< mapping already present (EEXIST)
    Busy,            ///< resource busy / pinned (EBUSY)
    LimitExceeded,   ///< quota exhausted, e.g. IOMMU mapping limit
    Denied,          ///< request rejected by policy (the quarantine NACK)
    Fault,           ///< unhandled guest fault / machine check
};

/** Human-readable name of an error code. */
const char *errorName(ErrorCode code);

/**
 * Value-or-error result type. Dereferencing an error panics, so callers
 * either check ok() or use valueOr().
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : payload(std::move(value)) {}
    Expected(ErrorCode code) : payload(code)
    {
        HH_ASSERT(code != ErrorCode::Ok);
    }

    /** True when a value is present. */
    [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload); }
    explicit operator bool() const { return ok(); }

    /** Error code; Ok when a value is present. */
    ErrorCode
    error() const
    {
        return ok() ? ErrorCode::Ok : std::get<ErrorCode>(payload);
    }

    /** Access the value; panics when holding an error. */
    T &
    value()
    {
        HH_ASSERT(ok());
        return std::get<T>(payload);
    }

    const T &
    value() const
    {
        HH_ASSERT(ok());
        return std::get<T>(payload);
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Value when present, @p fallback otherwise. */
    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(payload) : std::move(fallback);
    }

  private:
    std::variant<T, ErrorCode> payload;
};

/** Empty payload for Status. */
struct Unit {};

/**
 * Success/failure result with no payload. The class itself is
 * [[nodiscard]]: a dropped Status is a swallowed ENOMEM/EBUSY, exactly
 * the silent-failure mode hh-lint's missing-nodiscard rule polices at
 * the declaration level.
 */
class [[nodiscard]] Status
{
  public:
    Status() : code(ErrorCode::Ok) {}
    Status(ErrorCode code) : code(code) {}

    [[nodiscard]] static Status success() { return Status(); }

    [[nodiscard]] bool ok() const { return code == ErrorCode::Ok; }
    explicit operator bool() const { return ok(); }
    ErrorCode error() const { return code; }

    bool operator==(const Status &) const = default;

  private:
    ErrorCode code;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_STATUS_H
