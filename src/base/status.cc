#include "status.h"

namespace hh::base {

const char *
errorName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:              return "Ok";
      case ErrorCode::NoMemory:        return "NoMemory";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::NotFound:        return "NotFound";
      case ErrorCode::Exists:          return "Exists";
      case ErrorCode::Busy:            return "Busy";
      case ErrorCode::LimitExceeded:   return "LimitExceeded";
      case ErrorCode::Denied:          return "Denied";
      case ErrorCode::Fault:           return "Fault";
    }
    return "Unknown";
}

} // namespace hh::base
