#include "sim_clock.h"

#include <cstdio>

namespace hh::base {

std::string
SimClock::format(SimTime t)
{
    char buf[64];
    const double ns = static_cast<double>(t);
    if (t >= kDay)
        std::snprintf(buf, sizeof(buf), "%.1f d", ns / kDay);
    else if (t >= kHour)
        std::snprintf(buf, sizeof(buf), "%.1f h", ns / kHour);
    else if (t >= kMinute)
        std::snprintf(buf, sizeof(buf), "%.1f min", ns / kMinute);
    else if (t >= kSecond)
        std::snprintf(buf, sizeof(buf), "%.2f s", ns / kSecond);
    else if (t >= kMillisecond)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / kMillisecond);
    else if (t >= kMicrosecond)
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / kMicrosecond);
    else
        std::snprintf(buf, sizeof(buf), "%llu ns",
                      static_cast<unsigned long long>(t));
    return buf;
}

} // namespace hh::base
