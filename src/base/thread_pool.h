/**
 * @file
 * A small fixed-size worker pool for the Monte-Carlo trial engine.
 *
 * The simulator itself is single-threaded by design (one virtual clock
 * per HostSystem); parallelism only ever happens *between* independent
 * simulations. The pool therefore stays deliberately minimal: submit
 * fire-and-forget jobs, wait for quiescence, destroy. Determinism is
 * the caller's contract -- a job may only touch state owned by its own
 * trial, so scheduling order can never change results.
 *
 * All queue state is guarded by a single annotated mutex; the Clang
 * thread-safety CI leg proves no access escapes it.
 */

#ifndef HYPERHAMMER_BASE_THREAD_POOL_H
#define HYPERHAMMER_BASE_THREAD_POOL_H

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace hh::base {

/** Fixed set of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers; 0 picks the hardware concurrency.
     * A pool of size 1 still runs jobs on its (single) worker, so
     * submit() never blocks the caller.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** Enqueue one job. */
    void submit(std::function<void()> job) HH_EXCLUDES(mutex);

    /** Block until every submitted job has finished. */
    void wait() HH_EXCLUDES(mutex);

    /** hardware_concurrency with a sane floor of 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop() HH_EXCLUDES(mutex);

    Mutex mutex;
    CondVar workReady;
    CondVar allDone;
    std::deque<std::function<void()>> queue HH_GUARDED_BY(mutex);
    uint64_t inFlight HH_GUARDED_BY(mutex) = 0; // queued + running
    bool stopping HH_GUARDED_BY(mutex) = false;
    /** Written only in the constructor, before any worker can race. */
    std::vector<std::thread> workers;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_THREAD_POOL_H
