/**
 * @file
 * A small fixed-size worker pool for the Monte-Carlo trial engine.
 *
 * The simulator itself is single-threaded by design (one virtual clock
 * per HostSystem); parallelism only ever happens *between* independent
 * simulations. The pool therefore stays deliberately minimal: submit
 * fire-and-forget jobs, wait for quiescence, destroy. Determinism is
 * the caller's contract -- a job may only touch state owned by its own
 * trial, so scheduling order can never change results.
 */

#ifndef HYPERHAMMER_BASE_THREAD_POOL_H
#define HYPERHAMMER_BASE_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hh::base {

/** Fixed set of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers; 0 picks the hardware concurrency.
     * A pool of size 1 still runs jobs on its (single) worker, so
     * submit() never blocks the caller.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** Enqueue one job. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** hardware_concurrency with a sane floor of 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mutex;
    std::condition_variable workReady;
    std::condition_variable allDone;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    uint64_t inFlight = 0; // queued + running
    bool stopping = false;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_THREAD_POOL_H
