/**
 * @file
 * Annotated mutex / condition-variable wrappers.
 *
 * std::mutex works fine at runtime but is invisible to Clang's Thread
 * Safety Analysis (libstdc++ ships no capability attributes), so
 * HH_GUARDED_BY(some_std_mutex) cannot be checked. These thin wrappers
 * carry the attributes and forward straight to the standard types; the
 * rest of the tree uses them for any state shared between threads.
 *
 * The shapes (capability class, scoped locker, REQUIRES-annotated
 * condition wait) follow the reference implementation in the Clang
 * Thread Safety Analysis documentation.
 */

#ifndef HYPERHAMMER_BASE_MUTEX_H
#define HYPERHAMMER_BASE_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace hh::base {

/** A std::mutex the thread-safety analysis can see. */
class HH_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() HH_ACQUIRE() { impl.lock(); }
    void unlock() HH_RELEASE() { impl.unlock(); }
    bool tryLock() HH_TRY_ACQUIRE(true) { return impl.try_lock(); }

    /** Underlying mutex, for CondVar's adopt/release dance only. */
    std::mutex &native() { return impl; }

  private:
    std::mutex impl;
};

/** RAII lock; the analysis tracks its scope as holding the mutex. */
class HH_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) HH_ACQUIRE(mutex) : held(mutex)
    {
        held.lock();
    }

    ~MutexLock() HH_RELEASE() { held.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &held;
};

/**
 * Condition variable over a Mutex. wait() is annotated HH_REQUIRES:
 * the caller holds the mutex on entry and on return, exactly as with
 * std::condition_variable -- the transient release inside the wait is
 * an implementation detail the analysis (correctly) never sees the
 * guarded state through, because the predicate re-check happens in the
 * caller's locked scope.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, sleep, and re-acquire it. */
    void
    wait(Mutex &mutex) HH_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex so std::condition_variable
        // can do its unlock/relock, then release the unique_lock so its
        // destructor leaves the (re-held) mutex alone.
        std::unique_lock<std::mutex> lock(mutex.native(),
                                          std::adopt_lock);
        impl.wait(lock);
        lock.release();
    }

    void notifyOne() { impl.notify_one(); }
    void notifyAll() { impl.notify_all(); }

  private:
    std::condition_variable impl;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_MUTEX_H
