/**
 * @file
 * Statistics accumulators used by the evaluation harness: running
 * mean/stddev/min/max, fixed-bucket histograms, and time-series samplers
 * for the Figure 3 style plots.
 */

#ifndef HYPERHAMMER_BASE_STATS_H
#define HYPERHAMMER_BASE_STATS_H

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "base/log.h"

namespace hh::base {

/**
 * Welford running accumulator: numerically stable mean and variance with
 * O(1) state.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - meanValue;
        meanValue += delta / static_cast<double>(n);
        m2 += delta * (x - meanValue);
        if (x < minValue || n == 1)
            minValue = x;
        if (x > maxValue || n == 1)
            maxValue = x;
        total += x;
    }

    /** Number of samples. */
    uint64_t count() const { return n; }
    /** Sum of all samples. */
    double sum() const { return total; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return meanValue; }
    /** Population variance; 0 when fewer than two samples. */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }
    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }
    /** Minimum sample; 0 when empty. */
    double min() const { return n ? minValue : 0.0; }
    /** Maximum sample; 0 when empty. */
    double max() const { return n ? maxValue : 0.0; }

    /**
     * Fold another accumulator in, as if its samples had been add()ed
     * here (Chan et al.'s parallel variance combination). The result
     * depends only on the two operands, so merging per-trial
     * accumulators in trial order yields bitwise-identical statistics
     * regardless of how many threads produced them.
     */
    void
    merge(const RunningStats &other)
    {
        if (other.n == 0)
            return;
        if (n == 0) {
            *this = other;
            return;
        }
        const double combined = static_cast<double>(n + other.n);
        const double delta = other.meanValue - meanValue;
        m2 += other.m2
            + delta * delta * static_cast<double>(n)
                * static_cast<double>(other.n) / combined;
        meanValue += delta * static_cast<double>(other.n) / combined;
        n += other.n;
        total += other.total;
        if (other.minValue < minValue)
            minValue = other.minValue;
        if (other.maxValue > maxValue)
            maxValue = other.maxValue;
    }

    /** Reset to empty. */
    void
    reset()
    {
        n = 0;
        meanValue = m2 = total = minValue = maxValue = 0.0;
    }

    /**
     * The exact internal accumulator words. Snapshots persist these
     * (doubles as IEEE-754 bit patterns) so a resumed run continues the
     * Welford recurrence from the identical numeric state, and the
     * resume-identity verifier compares them bit-for-bit.
     */
    struct Raw
    {
        uint64_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double total = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    Raw
    raw() const
    {
        return Raw{n, meanValue, m2, total, minValue, maxValue};
    }

    void
    restore(const Raw &r)
    {
        n = r.n;
        meanValue = r.mean;
        m2 = r.m2;
        total = r.total;
        minValue = r.min;
        maxValue = r.max;
    }

    /**
     * Bit-level equality of the accumulator state (NaN-safe, and
     * stricter than operator== on doubles: -0.0 != +0.0 here). This is
     * the comparison resume-identity verification needs -- "the same
     * statistics" means the same bits, not approximately equal values.
     */
    bool
    bitwiseEqual(const RunningStats &other) const
    {
        const auto bits = [](double d) {
            return std::bit_cast<uint64_t>(d);
        };
        return n == other.n && bits(meanValue) == bits(other.meanValue)
            && bits(m2) == bits(other.m2)
            && bits(total) == bits(other.total)
            && bits(minValue) == bits(other.minValue)
            && bits(maxValue) == bits(other.maxValue);
    }

  private:
    uint64_t n = 0;
    double meanValue = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

/**
 * Fixed-width-bucket histogram over [lo, hi); samples outside the range
 * land in saturating under/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets)
        : lo(lo), hi(hi), counts(buckets, 0)
    {}

    /** Add one sample. */
    void
    add(double x)
    {
        ++n;
        if (x < lo) {
            ++underflow;
        } else if (x >= hi) {
            ++overflow;
        } else {
            const double frac = (x - lo) / (hi - lo);
            const auto idx = static_cast<size_t>(
                frac * static_cast<double>(counts.size()));
            ++counts[idx < counts.size() ? idx : counts.size() - 1];
        }
    }

    uint64_t count() const { return n; }
    uint64_t bucket(size_t i) const { return counts[i]; }
    size_t buckets() const { return counts.size(); }
    uint64_t underflowCount() const { return underflow; }
    uint64_t overflowCount() const { return overflow; }

    /** Lower edge of bucket @p i. */
    double
    bucketLow(size_t i) const
    {
        return lo + (hi - lo) * static_cast<double>(i)
            / static_cast<double>(counts.size());
    }

    /**
     * Fold another histogram with the same geometry in; bucket counts
     * are integers, so the merge is exact and order-independent.
     */
    void
    merge(const Histogram &other)
    {
        HH_ASSERT(lo == other.lo && hi == other.hi
                  && counts.size() == other.counts.size());
        for (size_t i = 0; i < counts.size(); ++i)
            counts[i] += other.counts[i];
        n += other.n;
        underflow += other.underflow;
        overflow += other.overflow;
    }

  private:
    double lo;
    double hi;
    std::vector<uint64_t> counts;
    uint64_t n = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
};

/**
 * A (x, y) time series, e.g. "noise pages vs. number of IOVA mappings"
 * for Figure 3. Kept deliberately simple: append-only, rendered by the
 * report code in hh::analysis.
 */
class Series
{
  public:
    struct Point
    {
        double x;
        double y;
    };

    explicit Series(std::string name) : seriesName(std::move(name)) {}

    void add(double x, double y) { points.push_back({x, y}); }

    /** Append another series' points (time-series batch merge). */
    void
    merge(const Series &other)
    {
        points.insert(points.end(), other.points.begin(),
                      other.points.end());
    }

    const std::string &name() const { return seriesName; }
    const std::vector<Point> &data() const { return points; }
    bool empty() const { return points.empty(); }

  private:
    std::string seriesName;
    std::vector<Point> points;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_STATS_H
