/**
 * @file
 * Deterministic views over unordered containers.
 *
 * Iterating a std::unordered_{map,set} directly is banned by hh-lint
 * (rule unordered-iteration): the visit order is implementation-defined,
 * so any result, merge, or side-effect sequence built from it is not
 * reproducible across standard libraries or even across runs. These
 * helpers are the sanctioned escape: they materialize a key-sorted
 * copy, which costs O(n log n) but yields a stable order. Use them
 * whenever an unordered container's contents feed anything observable;
 * keep O(1) lookups (find/count/contains) on the container itself.
 */

#ifndef HYPERHAMMER_BASE_CONTAINER_UTIL_H
#define HYPERHAMMER_BASE_CONTAINER_UTIL_H

#include <algorithm>
#include <utility>
#include <vector>

namespace hh::base {

/** Keys of @p container, sorted ascending. */
template <typename Container>
std::vector<typename Container::key_type>
sortedKeys(const Container &container)
{
    std::vector<typename Container::key_type> keys;
    keys.reserve(container.size());
    for (const auto &entry : container) {
        if constexpr (requires { entry.first; })
            keys.push_back(entry.first);
        else
            keys.push_back(entry);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

/** Map items of @p container as (key, value) pairs, key-sorted. */
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sortedItems(const Map &container)
{
    std::vector<std::pair<typename Map::key_type,
                          typename Map::mapped_type>> items;
    items.reserve(container.size());
    for (const auto &entry : container)
        items.emplace_back(entry.first, entry.second);
    std::sort(items.begin(), items.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return items;
}

} // namespace hh::base

#endif // HYPERHAMMER_BASE_CONTAINER_UTIL_H
