/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Everything stochastic in the stack — the DRAM vulnerability map, the
 * noise workloads, allocator perturbations — draws from an Rng seeded from
 * the experiment configuration, so every run is reproducible bit-for-bit.
 *
 * Implementation: SplitMix64 for seeding, xoshiro256** for the stream
 * (Blackman & Vigna). Both are tiny, fast, and well distributed; we avoid
 * std::mt19937 because its state is large and its distributions are not
 * portable across standard libraries.
 */

#ifndef HYPERHAMMER_BASE_RNG_H
#define HYPERHAMMER_BASE_RNG_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace hh::base {

/** One step of SplitMix64; used for seeding and hashing. */
constexpr uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of two values; used to derive per-object seeds. */
constexpr uint64_t
mix64(uint64_t a, uint64_t b)
{
    uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitMix64(s);
}

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be used
 * with standard distributions, but also provides the handful of helpers
 * the simulator actually needs.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x1badb002) { reseed(seed); }

    /** Re-seed the generator deterministically. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : state)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method; bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // 128-bit multiply rejection-free approximation; bias is
        // negligible (< 2^-64 * bound) for simulation purposes.
        const unsigned __int128 product =
            static_cast<unsigned __int128>((*this)()) * bound;
        return static_cast<uint64_t>(product >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    between(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Approximately normal variate (sum of uniforms, CLT with 12 terms). */
    double
    gaussian(double mean, double stddev)
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += uniform();
        return mean + (acc - 6.0) * stddev;
    }

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (size_t i = c.size(); i > 1; --i) {
            const size_t j = below(i);
            std::swap(c[i - 1], c[j]);
        }
    }

    /** Derive an independent child generator (for per-module streams). */
    Rng
    fork()
    {
        return Rng(mix64((*this)(), (*this)()));
    }

    /** Skip @p count draws (for stream-offset tests). */
    void
    discard(uint64_t count)
    {
        while (count--)
            (*this)();
    }

    /** Raw xoshiro256** state, for snapshot serialization. */
    std::array<uint64_t, 4> saveState() const { return state; }

    /** Restore state captured by saveState(); exact stream resume. */
    void loadState(const std::array<uint64_t, 4> &s) { state = s; }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state{};
};

/**
 * Splits one root seed into arbitrarily many independent child seeds,
 * indexed rather than drawn, so stream i's seed is a pure function of
 * (root, i). This is what makes parallel Monte-Carlo trials
 * deterministic: trial i derives the same Rng no matter which thread
 * runs it, when it runs, or how many sibling trials exist.
 *
 * fork() cannot serve here -- it advances the parent generator, so the
 * child depends on how many forks happened before it.
 */
class SeedSequence
{
  public:
    explicit constexpr SeedSequence(uint64_t root_seed)
        : root(root_seed)
    {}

    /** Seed of child stream @p index. */
    constexpr uint64_t
    seed(uint64_t index) const
    {
        // Salt the root so stream 0 differs from the root seed itself
        // (callers often keep using the root for the parent object).
        return mix64(root ^ 0x5eed5eeded5eedull, index);
    }

    /** Generator for child stream @p index. */
    Rng stream(uint64_t index) const { return Rng(seed(index)); }

  private:
    uint64_t root;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_RNG_H
