/**
 * @file
 * Deterministic data-parallel loops on top of ThreadPool.
 *
 * Both helpers share the engine's determinism contract: the body for
 * index i may only read shared immutable state and write state owned
 * exclusively by index i (e.g. slot i of a pre-sized results vector).
 * Work is handed out through an atomic counter, so *which thread* runs
 * an index varies run to run -- but under the contract that can never
 * be observed in the results, and any thread count (including 1)
 * produces bitwise-identical output.
 */

#ifndef HYPERHAMMER_BASE_PARALLEL_H
#define HYPERHAMMER_BASE_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>

#include "base/mutex.h"
#include "base/thread_pool.h"

namespace hh::base {

namespace detail {

/** Run @p body over [0, n) on @p pool, one worker task per thread. */
template <typename Claim>
void
drainIndexLoop(ThreadPool &pool, const Claim &claim)
{
    std::exception_ptr error;
    Mutex error_mutex;
    for (unsigned t = 0; t < pool.size(); ++t) {
        pool.submit([&] {
            try {
                claim();
            } catch (...) {
                MutexLock lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        });
    }
    pool.wait();
    if (error)
        std::rethrow_exception(error);
}

} // namespace detail

/**
 * Invoke @p body(i) for every i in [0, n) using @p pool's workers.
 * Blocks until all iterations finish; rethrows the first body
 * exception after the loop has quiesced.
 */
inline void
parallelFor(ThreadPool &pool, uint64_t n,
            const std::function<void(uint64_t)> &body)
{
    std::atomic<uint64_t> next{0};
    detail::drainIndexLoop(pool, [&] {
        for (;;) {
            const uint64_t i = next.fetch_add(1);
            if (i >= n)
                return;
            body(i);
        }
    });
}

/** Convenience overload: a throwaway pool of @p threads workers. */
inline void
parallelFor(uint64_t n, unsigned threads,
            const std::function<void(uint64_t)> &body)
{
    if (threads <= 1 || n <= 1) {
        for (uint64_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<uint64_t>(threads, n)));
    parallelFor(pool, n, body);
}

/**
 * Ordered early-exit search: invoke @p body(i) (returning true for a
 * "hit") and return the smallest hit index, or @p n if none hits.
 *
 * Guarantees that body ran exactly once for every index up to and
 * including the returned one, so a caller keeping per-index results
 * can use the prefix [0, result] knowing it is complete -- exactly
 * what a sequential until-first-success loop would have produced.
 * Indices beyond the first hit may or may not run (speculation waste
 * is bounded by roughly one in-flight iteration per thread); their
 * results must be discarded.
 */
inline uint64_t
parallelFindFirst(uint64_t n, unsigned threads,
                  const std::function<bool(uint64_t)> &body)
{
    if (threads <= 1 || n <= 1) {
        for (uint64_t i = 0; i < n; ++i) {
            if (body(i))
                return i;
        }
        return n;
    }

    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> first_hit{n};
    ThreadPool pool(static_cast<unsigned>(
        std::min<uint64_t>(threads, n)));
    detail::drainIndexLoop(pool, [&] {
        for (;;) {
            const uint64_t i = next.fetch_add(1);
            // first_hit only shrinks and i only grows, so once an
            // index is past it this worker can retire for good.
            if (i >= n || i > first_hit.load())
                return;
            if (body(i)) {
                uint64_t seen = first_hit.load();
                while (i < seen
                       && !first_hit.compare_exchange_weak(seen, i)) {
                }
            }
        }
    });
    return first_hit.load();
}

} // namespace hh::base

#endif // HYPERHAMMER_BASE_PARALLEL_H
