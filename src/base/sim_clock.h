/**
 * @file
 * Virtual simulation clock.
 *
 * The paper reports wall-clock costs that are dominated by DRAM access
 * time: a profiling pass over 12 GB takes days, an attack attempt minutes
 * (Tables 1 and 3). The simulator cannot (and should not) spend that wall
 * time, so every component charges its modeled latency to a shared
 * SimClock, and all reported "times" are virtual. The defaults are
 * calibrated so that the paper-scale experiments land in the paper's
 * ballpark (see bench/bench_table1_profiling.cc).
 */

#ifndef HYPERHAMMER_BASE_SIM_CLOCK_H
#define HYPERHAMMER_BASE_SIM_CLOCK_H

#include <cstdint>
#include <string>

namespace hh::base {

/** Virtual time in nanoseconds. */
using SimTime = uint64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

/**
 * A monotonically advancing virtual clock. Components hold a reference to
 * the system clock and call advance() with the latency of each modeled
 * operation.
 */
class SimClock
{
  public:
    /** Current virtual time in nanoseconds since simulation start. */
    SimTime now() const { return currentTime; }

    /** Charge @p delta nanoseconds of virtual time. */
    void advance(SimTime delta) { currentTime += delta; }

    /** Reset to time zero (used between benchmark repetitions). */
    void reset() { currentTime = 0; }

    /** Seconds as a double, for reporting. */
    double seconds() const { return toSeconds(currentTime); }

    /** Convert a SimTime to seconds. */
    static double
    toSeconds(SimTime t)
    {
        return static_cast<double>(t) / static_cast<double>(kSecond);
    }

    /** Human-readable rendering, e.g. "72.0 h" or "4.0 min". */
    static std::string format(SimTime t);

  private:
    SimTime currentTime = 0;
};

/** RAII helper measuring the virtual duration of a scope. */
class ScopedTimer
{
  public:
    ScopedTimer(const SimClock &clock, SimTime &out)
        : clock(clock), out(out), start(clock.now())
    {}

    ~ScopedTimer() { out = clock.now() - start; }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    const SimClock &clock;
    SimTime &out;
    SimTime start;
};

} // namespace hh::base

#endif // HYPERHAMMER_BASE_SIM_CLOCK_H
