/**
 * @file
 * The dispatch layer's wall-clock shim.
 *
 * The supervisor is the one component that legitimately lives on host
 * time: lease deadlines, poll sleeps and artifact staleness are
 * properties of real processes on a real machine, not of the simulated
 * world (SimClock). All of that host time is concentrated here -- and
 * none of it ever feeds into trial results, so the determinism
 * contract (DESIGN.md section 3.2) is untouched: retry *decisions*
 * derive from seeded streams, only their pacing is wall time.
 *
 * wall.cc is the sole dispatch file exempt from hh-lint's wall-clock
 * rule (.hh-lint.toml); everything else in src/dispatch must go
 * through these helpers.
 */

#ifndef HYPERHAMMER_DISPATCH_WALL_H
#define HYPERHAMMER_DISPATCH_WALL_H

#include <string>

namespace hh::dispatch {

/** Seconds on a monotonic clock (process-local epoch). */
double monotonicSeconds();

/** Block the calling thread for @p seconds (best effort). */
void sleepSeconds(double seconds);

/**
 * Seconds since @p path was last modified, or a negative value when
 * the file does not exist. Used to tell an abandoned partial artifact
 * (stale, safe to take over) from one a live worker is still writing.
 */
double fileAgeSeconds(const std::string &path);

} // namespace hh::dispatch

#endif // HYPERHAMMER_DISPATCH_WALL_H
