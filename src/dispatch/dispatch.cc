#include "dispatch/dispatch.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/archive.h"
#include "base/log.h"
#include "base/rng.h"
#include "snapshot/checkpoint_policy.h"
#include "snapshot/snapshot_format.h"

namespace hh::dispatch {

const char *
stateName(ShardState state)
{
    switch (state) {
    case ShardState::Pending:
        return "pending";
    case ShardState::Leased:
        return "leased";
    case ShardState::Done:
        return "done";
    case ShardState::Retrying:
        return "retrying";
    case ShardState::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

bool
Ledger::settled() const
{
    return std::all_of(jobs.begin(), jobs.end(),
                       [](const ShardJob &job) { return job.settled(); });
}

size_t
Ledger::quarantined() const
{
    return static_cast<size_t>(std::count_if(
        jobs.begin(), jobs.end(), [](const ShardJob &job) {
            return job.state == ShardState::Quarantined;
        }));
}

base::Status
saveLedger(const std::string &path, const Ledger &ledger)
{
    base::ArchiveWriter w;
    w.u64(ledger.campaignFingerprint);
    w.u64(ledger.totalTrials);
    w.u64(ledger.jobs.size());
    for (const ShardJob &job : ledger.jobs) {
        w.u32(job.index);
        w.u64(job.range.begin);
        w.u64(job.range.end);
        w.u8(static_cast<uint8_t>(job.state));
        w.u32(job.attempts);
        w.i64(job.lastFailure);
    }
    // Keep the previous ledger as the fallback file; the rename fails
    // harmlessly on the first save.
    const std::string prev = path + snapshot::kCheckpointPrevSuffix;
    (void)std::rename(path.c_str(), prev.c_str());
    return base::saveArchiveFile(path, snapshot::kLedgerMagic,
                                 snapshot::kSnapshotFormatVersion,
                                 w.buffer());
}

namespace {

base::Expected<Ledger>
loadLedgerFile(const std::string &path)
{
    auto loaded = base::loadArchiveFile(
        path, snapshot::kLedgerMagic, snapshot::kSnapshotFormatVersion,
        snapshot::kSnapshotFormatVersion);
    if (!loaded)
        return loaded.error();
    base::ArchiveReader r(loaded->payload);
    Ledger ledger;
    ledger.campaignFingerprint = r.u64();
    ledger.totalTrials = r.u64();
    const uint64_t n = r.count(4 + 8 + 8 + 1 + 4 + 8);
    ledger.jobs.reserve(n);
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        ShardJob job;
        job.index = r.u32();
        job.range.begin = r.u64();
        job.range.end = r.u64();
        job.state = static_cast<ShardState>(r.u8());
        job.attempts = r.u32();
        job.lastFailure = r.i64();
        ledger.jobs.push_back(job);
    }
    if (!r.ok() || !r.atEnd())
        return base::ErrorCode::InvalidArgument;
    for (const ShardJob &job : ledger.jobs) {
        if (job.state > ShardState::Quarantined
            || job.range.begin > job.range.end
            || job.range.end > ledger.totalTrials) {
            base::warn("ledger '%s': inconsistent job record",
                       path.c_str());
            return base::ErrorCode::InvalidArgument;
        }
    }
    return ledger;
}

} // namespace

base::Expected<Ledger>
loadLedger(const std::string &path)
{
    auto primary = loadLedgerFile(path);
    if (primary)
        return primary;
    auto prev =
        loadLedgerFile(path + snapshot::kCheckpointPrevSuffix);
    if (prev)
        return prev;
    // Prefer the primary file's diagnosis (NotFound only when neither
    // file exists at all).
    return primary.error();
}

uint64_t
backoffDelayMs(uint64_t campaign_fingerprint, uint32_t shard_index,
               uint32_t attempt, const BackoffConfig &cfg)
{
    if (attempt == 0)
        return 0;
    const uint32_t doublings =
        std::min<uint32_t>(attempt - 1, 40); // avoid shift overflow
    uint64_t delay = cfg.baseMs;
    for (uint32_t i = 0; i < doublings && delay < cfg.capMs; ++i)
        delay *= 2;
    delay = std::min(delay, cfg.capMs);
    base::SeedSequence seq(
        base::mix64(campaign_fingerprint, shard_index));
    base::Rng rng = seq.stream(attempt);
    return delay + rng.below(delay / 2 + 1);
}

// --- gap manifest (JSON) ---------------------------------------------------

namespace {

/** Minimal JSON string escape: the paths we write never need more. */
void
writeJsonString(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    for (const char c : s) {
        if (c == '"' || c == '\\')
            std::fputc('\\', f);
        std::fputc(c, f);
    }
    std::fputc('"', f);
}

/**
 * Cursor over a gap-manifest document. The schema is fixed (we only
 * parse files saveGapManifest wrote), so this is an exact-shape
 * reader that tolerates arbitrary whitespace, not a general JSON
 * parser.
 */
class JsonCursor
{
  public:
    explicit JsonCursor(std::string text) : buf(std::move(text)) {}

    bool ok() const { return !failed; }

    void
    expect(char c)
    {
        skipWs();
        if (pos < buf.size() && buf[pos] == c)
            ++pos;
        else
            failed = true;
    }

    /** Consume `"name":` */
    void
    key(const char *name)
    {
        std::string got = string();
        if (got != name)
            failed = true;
        expect(':');
    }

    std::string
    string()
    {
        skipWs();
        std::string out;
        if (pos >= buf.size() || buf[pos] != '"') {
            failed = true;
            return out;
        }
        ++pos;
        while (pos < buf.size() && buf[pos] != '"') {
            if (buf[pos] == '\\' && pos + 1 < buf.size())
                ++pos;
            out.push_back(buf[pos++]);
        }
        if (pos >= buf.size())
            failed = true;
        else
            ++pos; // closing quote
        return out;
    }

    uint64_t
    u64()
    {
        skipWs();
        char *end = nullptr;
        const uint64_t v =
            std::strtoull(buf.c_str() + pos, &end, 10);
        if (end == buf.c_str() + pos)
            failed = true;
        else
            pos = static_cast<size_t>(end - buf.c_str());
        return v;
    }

    uint64_t
    hexU64()
    {
        const std::string s = string();
        if (failed)
            return 0;
        char *end = nullptr;
        const uint64_t v = std::strtoull(s.c_str(), &end, 16);
        if (end != s.c_str() + s.size() || s.empty())
            failed = true;
        return v;
    }

    double
    f64()
    {
        skipWs();
        char *end = nullptr;
        const double v = std::strtod(buf.c_str() + pos, &end);
        if (end == buf.c_str() + pos)
            failed = true;
        else
            pos = static_cast<size_t>(end - buf.c_str());
        return v;
    }

    /** True and consumed when the next token is @p c. */
    bool
    peekConsume(char c)
    {
        skipWs();
        if (pos < buf.size() && buf[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

  private:
    void
    skipWs()
    {
        while (pos < buf.size()
               && std::isspace(static_cast<unsigned char>(buf[pos])))
            ++pos;
    }

    std::string buf;
    size_t pos = 0;
    bool failed = false;
};

} // namespace

base::Status
saveGapManifest(const std::string &path, const GapManifest &manifest)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return base::ErrorCode::Denied;
    std::fprintf(f, "{\n  \"campaign_fingerprint\": \"%016" PRIx64
                    "\",\n  \"total_trials\": %" PRIu64 ",\n",
                 manifest.campaignFingerprint, manifest.totalTrials);
    const CampaignParams &c = manifest.campaign;
    std::fprintf(f,
                 "  \"campaign\": {\n"
                 "    \"trials\": %" PRIu64 ",\n"
                 "    \"threads\": %" PRIu32 ",\n"
                 "    \"seed\": %" PRIu64 ",\n"
                 "    \"host_gib\": %" PRIu64 ",\n"
                 "    \"fault_seed\": %" PRIu64 ",\n"
                 "    \"fault_intensity\": %.17g,\n"
                 "    \"checkpoint_every\": %" PRIu64 "\n  },\n",
                 c.trials, c.threads, c.seed, c.hostGib, c.faultSeed,
                 c.faultIntensity, c.checkpointEvery);
    std::fprintf(f, "  \"artifacts\": [");
    for (size_t i = 0; i < manifest.artifacts.size(); ++i) {
        std::fprintf(f, "%s\n    ", i == 0 ? "" : ",");
        writeJsonString(f, manifest.artifacts[i]);
    }
    std::fprintf(f, "%s],\n",
                 manifest.artifacts.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"missing\": [");
    for (size_t i = 0; i < manifest.missing.size(); ++i)
        std::fprintf(f, "%s[%" PRIu64 ", %" PRIu64 "]",
                     i == 0 ? "" : ", ", manifest.missing[i].begin,
                     manifest.missing[i].end);
    std::fprintf(f, "]\n}\n");
    if (std::fclose(f) != 0)
        return base::ErrorCode::Denied;
    return base::Status::success();
}

base::Expected<GapManifest>
loadGapManifest(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return base::ErrorCode::NotFound;
    std::string text;
    char chunk[4096];
    size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        text.append(chunk, n);
    std::fclose(f);

    JsonCursor c(std::move(text));
    GapManifest m;
    c.expect('{');
    c.key("campaign_fingerprint");
    m.campaignFingerprint = c.hexU64();
    c.expect(',');
    c.key("total_trials");
    m.totalTrials = c.u64();
    c.expect(',');
    c.key("campaign");
    c.expect('{');
    c.key("trials");
    m.campaign.trials = c.u64();
    c.expect(',');
    c.key("threads");
    m.campaign.threads = static_cast<uint32_t>(c.u64());
    c.expect(',');
    c.key("seed");
    m.campaign.seed = c.u64();
    c.expect(',');
    c.key("host_gib");
    m.campaign.hostGib = c.u64();
    c.expect(',');
    c.key("fault_seed");
    m.campaign.faultSeed = c.u64();
    c.expect(',');
    c.key("fault_intensity");
    m.campaign.faultIntensity = c.f64();
    c.expect(',');
    c.key("checkpoint_every");
    m.campaign.checkpointEvery = c.u64();
    c.expect('}');
    c.expect(',');
    c.key("artifacts");
    c.expect('[');
    if (!c.peekConsume(']')) {
        do
            m.artifacts.push_back(c.string());
        while (c.ok() && c.peekConsume(','));
        c.expect(']');
    }
    c.expect(',');
    c.key("missing");
    c.expect('[');
    if (!c.peekConsume(']')) {
        do {
            shard::ShardRange range;
            c.expect('[');
            range.begin = c.u64();
            c.expect(',');
            range.end = c.u64();
            c.expect(']');
            m.missing.push_back(range);
        } while (c.ok() && c.peekConsume(','));
        c.expect(']');
    }
    c.expect('}');
    if (!c.ok()) {
        base::warn("gap manifest '%s': malformed", path.c_str());
        return base::ErrorCode::InvalidArgument;
    }
    for (const shard::ShardRange &range : m.missing) {
        if (range.begin >= range.end
            || range.end > m.totalTrials)
            return base::ErrorCode::InvalidArgument;
    }
    return m;
}

std::string
readHeartbeat(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return {};
    char buf[64];
    const size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    return std::string(buf, n);
}

} // namespace hh::dispatch
