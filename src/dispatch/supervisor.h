/**
 * @file
 * The shard supervisor: owns the dispatcher ledger and drives every
 * shard range through Pending -> Leased -> Done | Retrying |
 * Quarantined (DESIGN.md section 3.7).
 *
 * The supervisor launches workers through an injected WorkerLauncher
 * (hh_sweep forks+execs itself; tests and the soak bench fork
 * in-process lambdas), tracks liveness via lease deadlines refreshed
 * by worker heartbeat files, reclaims expired leases with SIGKILL and
 * relaunches with resume semantics so completed-trial prefixes are
 * never recomputed. Every state transition is persisted to the ledger
 * before the next poll, so `kill -9` of the supervisor itself resumes
 * cleanly (openSweep with resume = true).
 *
 * Failure semantics are deterministic where they can be: *whether* to
 * retry and for how long comes from the attempt cap and the seeded
 * backoff (dispatch.h); only the pacing (polls, leases) lives on wall
 * time, and wall time never touches trial results. The four
 * dispatch.* fault sites (fault_sites.def) let chaos tests force
 * every recovery path: spawn failure, heartbeat loss, torn artifact
 * collection and a spurious merge-time Busy.
 */

#ifndef HYPERHAMMER_DISPATCH_SUPERVISOR_H
#define HYPERHAMMER_DISPATCH_SUPERVISOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "dispatch/dispatch.h"
#include "fault/fault.h"
#include "shard/shard.h"

namespace hh::dispatch {

/** Everything a worker needs to run one shard range attempt. */
struct WorkerSpec
{
    uint32_t shardIndex = 0;
    shard::ShardRange range;
    /** 1-based attempt number (attempt 1 is the first launch). */
    uint32_t attempt = 1;
    /** Resume from checkpointPath (always safe: an absent checkpoint
     *  starts from the range begin). */
    bool resume = true;
    std::string artifactPath;
    std::string checkpointPath;
    std::string heartbeatPath;
};

/**
 * Launch a worker for @p spec; return its pid, or a negative value
 * when the launch itself failed. The worker must write a terminal
 * shard artifact to spec.artifactPath and exit 0 on success; the
 * supervisor owns reaping.
 */
using WorkerLauncher = std::function<long(const WorkerSpec &)>;

/** Supervisor-assigned failure codes (ShardJob::lastFailure). */
enum : int64_t
{
    kFailureSpawn = -1,         ///< launcher failed (or spawn fault)
    kFailureLeaseExpired = -2,  ///< heartbeat silent past the lease
    kFailureBadArtifact = -3,   ///< exit 0 but unusable artifact
    kFailureQuarantineHook = -4 ///< forced by config (test hook)
};

struct SupervisorConfig
{
    std::string ledgerPath;
    std::string artifactDir = ".";
    /** Artifact file name is artifactPrefix + index + ".bin"; a heal
     *  run uses a distinct prefix so hole artifacts never collide
     *  with the original sweep's numbering. */
    std::string artifactPrefix = "shard_";
    /** Lease length: a worker whose heartbeat does not change for
     *  this long is declared dead and its range reclaimed. */
    double leaseSeconds = 30.0;
    /** Supervisor poll cadence. */
    double pollSeconds = 0.05;
    /** Worker launches per shard before quarantine. */
    uint32_t maxAttempts = 3;
    BackoffConfig backoff;
    /** Concurrent workers. */
    uint32_t maxParallel = 4;
    /** Shard indices to quarantine up front (test hook; mirrors the
     *  CheckpointPolicy::stopAfterTrials pattern). */
    std::vector<uint32_t> forceQuarantine;
    /** Chaos injector for the dispatch.* sites; null = no faults. */
    fault::FaultInjector *injector = nullptr;
};

/** Control-plane counters (telemetry; never part of the result). */
struct SweepStats
{
    uint64_t launches = 0;
    uint64_t spawnFailures = 0;
    uint64_t leaseExpiries = 0;
    uint64_t heartbeatLossFaults = 0;
    uint64_t tornArtifacts = 0;
    uint64_t retries = 0;
    uint64_t quarantines = 0;
    uint64_t mergeBusyRetries = 0;
    uint64_t ledgerSaves = 0;
};

class Supervisor
{
  public:
    Supervisor(SupervisorConfig config, WorkerLauncher launcher);

    /**
     * Initialize (resume = false) or reload (resume = true) the
     * ledger for a campaign of @p total_trials trials tiled by
     * @p ranges. On resume the persisted ledger must match the
     * campaign exactly (fingerprint, total, tiling); Leased and
     * Retrying jobs are reclaimed to Pending, Done jobs are
     * revalidated against their artifacts and demoted to Pending when
     * the artifact is gone or unusable.
     */
    [[nodiscard]] base::Status
    openSweep(uint64_t campaign_fingerprint, uint64_t total_trials,
              const std::vector<shard::ShardRange> &ranges,
              bool resume);

    /**
     * Drive the sweep to a settled ledger and merge. Every Done shard
     * contributes; Quarantined ranges become SweepReport::missing via
     * the partial merge, so a degraded sweep still returns a report
     * (the caller decides exit status + gap manifest). Errors are
     * environmental (ledger unwritable, merge-layer rejection of
     * corrupt artifacts), never mere worker failures.
     */
    [[nodiscard]] base::Expected<shard::SweepReport> runSweep();

    const Ledger &ledger() const { return book; }
    const SweepStats &stats() const { return counters; }

    /** Artifact path for shard @p index under this config. */
    std::string artifactPath(uint32_t index) const;

  private:
    struct Lease
    {
        long pid = -1;
        double deadline = 0.0;
        std::string lastBeat;
    };

    [[nodiscard]] base::Status persist();
    void launch(ShardJob &job);
    void handleFailure(ShardJob &job, int64_t code);
    void collectArtifact(ShardJob &job);
    void reapAndScan();

    SupervisorConfig cfg;
    WorkerLauncher launcher;
    Ledger book;
    /** shard index -> live lease (std::map: deterministic order). */
    std::map<uint32_t, Lease> leases;
    /** shard index -> monotonic instant its backoff elapses. */
    std::map<uint32_t, double> eligibleAt;
    /** shard index -> validated artifact, collected at exit time. */
    std::map<uint32_t, shard::ShardResult> collected;
    SweepStats counters;
    bool dirty = false;
};

} // namespace hh::dispatch

#endif // HYPERHAMMER_DISPATCH_SUPERVISOR_H
