#include "dispatch/supervisor.h"

#include <utility>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/log.h"
#include "dispatch/wall.h"

namespace hh::dispatch {

Supervisor::Supervisor(SupervisorConfig config, WorkerLauncher launch)
    : cfg(std::move(config)), launcher(std::move(launch))
{
    HH_ASSERT(launcher != nullptr);
    HH_ASSERT(cfg.maxAttempts >= 1);
    HH_ASSERT(cfg.maxParallel >= 1);
}

std::string
Supervisor::artifactPath(uint32_t index) const
{
    return cfg.artifactDir + "/" + cfg.artifactPrefix
        + std::to_string(index) + ".bin";
}

base::Status
Supervisor::openSweep(uint64_t campaign_fingerprint,
                      uint64_t total_trials,
                      const std::vector<shard::ShardRange> &ranges,
                      bool resume)
{
    leases.clear();
    eligibleAt.clear();
    collected.clear();

    if (resume) {
        auto loaded = loadLedger(cfg.ledgerPath);
        if (!loaded) {
            base::warn("dispatch: cannot resume: ledger '%s' "
                       "unreadable (%s)",
                       cfg.ledgerPath.c_str(),
                       base::errorName(loaded.error()));
            return loaded.error();
        }
        book = std::move(*loaded);
        if (book.campaignFingerprint != campaign_fingerprint
            || book.totalTrials != total_trials
            || book.jobs.size() != ranges.size())
            return base::ErrorCode::InvalidArgument;
        for (size_t i = 0; i < ranges.size(); ++i) {
            const ShardJob &job = book.jobs[i];
            if (job.index != i || job.range.begin != ranges[i].begin
                || job.range.end != ranges[i].end)
                return base::ErrorCode::InvalidArgument;
        }
        for (ShardJob &job : book.jobs) {
            switch (job.state) {
            case ShardState::Leased:
                // The previous supervisor died holding this lease. An
                // orphaned worker may still be running, but relaunch
                // is safe: trials are pure functions of (fingerprint,
                // index) and artifact/checkpoint writes are atomic
                // renames, so duplicate workers write identical bytes.
                job.state = ShardState::Pending;
                break;
            case ShardState::Retrying:
                // Backoff deadlines were wall-anchored in the dead
                // process; the failure already counted, so just make
                // the job immediately eligible again.
                job.state = ShardState::Pending;
                break;
            case ShardState::Done: {
                // Trust nothing across a crash: the artifact must
                // still load as the terminal product of this range.
                auto artifact = shard::loadShard(
                    artifactPath(job.index));
                const bool valid = artifact && artifact->terminal
                    && artifact->complete()
                    && artifact->manifest.campaignFingerprint
                        == campaign_fingerprint
                    && artifact->manifest.totalTrials == total_trials
                    && artifact->manifest.range.begin == job.range.begin
                    && artifact->manifest.range.end == job.range.end;
                if (valid) {
                    collected[job.index] = std::move(*artifact);
                } else {
                    base::warn("dispatch: shard %u marked done but "
                               "artifact unusable; recomputing",
                               job.index);
                    job.state = ShardState::Pending;
                }
                break;
            }
            case ShardState::Pending:
            case ShardState::Quarantined:
                break;
            }
        }
    } else {
        book = Ledger{};
        book.campaignFingerprint = campaign_fingerprint;
        book.totalTrials = total_trials;
        book.jobs.reserve(ranges.size());
        for (size_t i = 0; i < ranges.size(); ++i) {
            ShardJob job;
            job.index = static_cast<uint32_t>(i);
            job.range = ranges[i];
            book.jobs.push_back(job);
        }
    }

    for (const uint32_t index : cfg.forceQuarantine) {
        if (index >= book.jobs.size())
            return base::ErrorCode::InvalidArgument;
        ShardJob &job = book.jobs[index];
        if (job.state != ShardState::Done) {
            job.state = ShardState::Quarantined;
            job.lastFailure = kFailureQuarantineHook;
            ++counters.quarantines;
        }
    }

    dirty = true;
    return persist();
}

base::Status
Supervisor::persist()
{
    if (!dirty)
        return base::Status::success();
    dirty = false;
    ++counters.ledgerSaves;
    return saveLedger(cfg.ledgerPath, book);
}

void
Supervisor::handleFailure(ShardJob &job, int64_t code)
{
    job.lastFailure = code;
    if (job.attempts >= cfg.maxAttempts) {
        job.state = ShardState::Quarantined;
        ++counters.quarantines;
        base::warn("dispatch: shard %u quarantined after %u attempts "
                   "(last failure %lld)",
                   job.index, job.attempts,
                   static_cast<long long>(code));
    } else {
        job.state = ShardState::Retrying;
        ++counters.retries;
        const uint64_t delay_ms =
            backoffDelayMs(book.campaignFingerprint, job.index,
                           job.attempts, cfg.backoff);
        eligibleAt[job.index] =
            monotonicSeconds() + static_cast<double>(delay_ms) / 1e3;
    }
    dirty = true;
}

void
Supervisor::collectArtifact(ShardJob &job)
{
    const std::string path = artifactPath(job.index);
    if (const fault::FaultEntry *torn = HH_FAULT_POINT(
            cfg.injector, fault::FaultSite::DispatchArtifact)) {
        // Simulate a torn artifact write: clip the file's tail so the
        // archive framing (length + checksum) rejects it below and
        // the retry/resume path has to recover.
        struct stat st = {};
        if (::stat(path.c_str(), &st) == 0) {
            const off_t cut =
                static_cast<off_t>(torn->param % 32 + 1);
            (void)::truncate(path.c_str(),
                             st.st_size > cut ? st.st_size - cut : 0);
        }
        ++counters.tornArtifacts;
    }
    auto artifact = shard::loadShard(path);
    const bool valid = artifact && artifact->terminal
        && artifact->complete()
        && artifact->manifest.campaignFingerprint
            == book.campaignFingerprint
        && artifact->manifest.totalTrials == book.totalTrials
        && artifact->manifest.range.begin == job.range.begin
        && artifact->manifest.range.end == job.range.end;
    if (!valid) {
        base::warn("dispatch: shard %u exited clean but artifact "
                   "'%s' is unusable",
                   job.index, path.c_str());
        handleFailure(job, kFailureBadArtifact);
        return;
    }
    collected[job.index] = std::move(*artifact);
    job.state = ShardState::Done;
    job.lastFailure = 0;
    dirty = true;
}

void
Supervisor::launch(ShardJob &job)
{
    ++job.attempts;
    ++counters.launches;
    if (HH_FAULT_POINT(cfg.injector, fault::FaultSite::DispatchSpawn)
        != nullptr) {
        ++counters.spawnFailures;
        handleFailure(job, kFailureSpawn);
        return;
    }
    WorkerSpec spec;
    spec.shardIndex = job.index;
    spec.range = job.range;
    spec.attempt = job.attempts;
    spec.resume = true;
    spec.artifactPath = artifactPath(job.index);
    spec.checkpointPath = spec.artifactPath + ".ckpt";
    spec.heartbeatPath = spec.artifactPath + ".hb";
    const long pid = launcher(spec);
    if (pid < 0) {
        ++counters.spawnFailures;
        handleFailure(job, kFailureSpawn);
        return;
    }
    job.state = ShardState::Leased;
    Lease lease;
    lease.pid = pid;
    lease.deadline = monotonicSeconds() + cfg.leaseSeconds;
    leases[job.index] = lease;
    dirty = true;
}

void
Supervisor::reapAndScan()
{
    const double now = monotonicSeconds();
    for (auto it = leases.begin(); it != leases.end();) {
        ShardJob &job = book.jobs[it->first];
        Lease &lease = it->second;
        int status = 0;
        const pid_t reaped = ::waitpid(
            static_cast<pid_t>(lease.pid), &status, WNOHANG);
        if (reaped == static_cast<pid_t>(lease.pid)) {
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
                collectArtifact(job);
            else
                handleFailure(job, status);
            it = leases.erase(it);
            continue;
        }
        // Liveness: a changed heartbeat refreshes the lease -- unless
        // the heartbeat-loss fault eats the observation, in which case
        // the deadline keeps running and the lease can expire under a
        // perfectly healthy worker (exactly the failure mode a lost
        // NFS heartbeat produces).
        const std::string beat = readHeartbeat(
            artifactPath(job.index) + ".hb");
        if (!beat.empty() && beat != lease.lastBeat) {
            if (HH_FAULT_POINT(cfg.injector,
                               fault::FaultSite::DispatchHeartbeat)
                != nullptr) {
                ++counters.heartbeatLossFaults;
            } else {
                lease.lastBeat = beat;
                lease.deadline = now + cfg.leaseSeconds;
            }
        }
        if (now > lease.deadline) {
            base::warn("dispatch: shard %u lease expired; reclaiming",
                       job.index);
            (void)::kill(static_cast<pid_t>(lease.pid), SIGKILL);
            (void)::waitpid(static_cast<pid_t>(lease.pid), &status, 0);
            ++counters.leaseExpiries;
            handleFailure(job, kFailureLeaseExpired);
            it = leases.erase(it);
            continue;
        }
        ++it;
    }
}

base::Expected<shard::SweepReport>
Supervisor::runSweep()
{
    while (true) {
        reapAndScan();

        const double now = monotonicSeconds();
        for (ShardJob &job : book.jobs) {
            if (job.state != ShardState::Retrying)
                continue;
            const auto due = eligibleAt.find(job.index);
            if (due == eligibleAt.end() || now >= due->second) {
                job.state = ShardState::Pending;
                eligibleAt.erase(job.index);
                dirty = true;
            }
        }
        for (ShardJob &job : book.jobs) {
            if (leases.size() >= cfg.maxParallel)
                break;
            if (job.state == ShardState::Pending)
                launch(job);
        }

        const base::Status saved = persist();
        if (!saved.ok())
            base::warn("dispatch: ledger '%s' save failed; sweep "
                       "continues crash-unsafe",
                       cfg.ledgerPath.c_str());
        if (book.settled() && leases.empty())
            break;
        sleepSeconds(cfg.pollSeconds);
    }

    // Merge phase. A fired merge fault models a transient Busy from
    // the artifact store: drop the in-memory copies and re-collect
    // every Done artifact from disk before folding.
    if (HH_FAULT_POINT(cfg.injector, fault::FaultSite::DispatchMerge)
        != nullptr) {
        ++counters.mergeBusyRetries;
        collected.clear();
        for (const ShardJob &job : book.jobs) {
            if (job.state != ShardState::Done)
                continue;
            auto artifact = shard::loadShard(artifactPath(job.index));
            if (!artifact) {
                base::warn("dispatch: merge rescan lost shard %u",
                           job.index);
                return artifact.error();
            }
            collected[job.index] = std::move(*artifact);
        }
    }

    if (collected.empty()) {
        // Nothing survived (everything quarantined): degrade to the
        // canonical empty result with the whole campaign missing.
        shard::SweepReport report;
        report.campaignFingerprint = book.campaignFingerprint;
        report.totalTrials = book.totalTrials;
        report.result = attack::HyperHammerAttack::aggregateOutcomes({});
        if (book.totalTrials > 0)
            report.missing.push_back(
                shard::ShardRange{0, book.totalTrials});
        report.exact = book.totalTrials == 0;
        return report;
    }

    std::vector<shard::ShardResult> shards;
    shards.reserve(collected.size());
    for (auto &entry : collected)
        shards.push_back(entry.second);
    shard::MergePolicy policy;
    policy.allowPartial = true;
    return shard::mergeShards(std::move(shards), policy);
}

} // namespace hh::dispatch
