#include "dispatch/wall.h"

#include <chrono>
#include <thread>

#include <sys/stat.h>
#include <time.h>

namespace hh::dispatch {

double
monotonicSeconds()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

void
sleepSeconds(double seconds)
{
    if (seconds <= 0.0)
        return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
}

double
fileAgeSeconds(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    const double now = static_cast<double>(::time(nullptr));
    const double mtime = static_cast<double>(st.st_mtime);
    return now > mtime ? now - mtime : 0.0;
}

} // namespace hh::dispatch
