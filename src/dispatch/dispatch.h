/**
 * @file
 * The supervised-sweep data plane: shard job states, the crash-safe
 * dispatcher ledger, deterministic retry backoff and the gap manifest
 * a degraded sweep hands to `hh_sweep heal`.
 *
 * The ledger is the supervisor's durable source of truth: one record
 * per shard range with its lifecycle state and attempt count,
 * persisted through the archive layer with the same atomic-rename +
 * `.prev` rotation the campaign checkpoints use -- so `kill -9` of
 * the supervisor at any instant leaves a loadable ledger and the next
 * `hh_sweep sweep --resume` reconstructs the sweep without recomputing
 * completed work.
 *
 * Backoff is deterministic by construction: the delay before retry
 * attempt a of shard s is a pure function of (campaign fingerprint,
 * s, a) via SeedSequence(mix64(fingerprint, s)).stream(a), so two
 * dispatcher runs over the same campaign make identical retry
 * decisions (DESIGN.md section 3.2 extended to the control plane).
 */

#ifndef HYPERHAMMER_DISPATCH_DISPATCH_H
#define HYPERHAMMER_DISPATCH_DISPATCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "shard/shard.h"

namespace hh::dispatch {

/**
 * Lifecycle of one shard range under the supervisor:
 *
 *            launch           exit 0 + valid artifact
 *   Pending -------> Leased ------------------------> Done
 *      ^               | crash / lease expiry / bad artifact
 *      | backoff       v
 *      +----------- Retrying --(attempt cap reached)--> Quarantined
 */
enum class ShardState : uint8_t
{
    Pending = 0,    ///< waiting for a launch slot
    Leased,         ///< a worker owns the range under a live lease
    Done,           ///< artifact collected and validated
    Retrying,       ///< failed; waiting out deterministic backoff
    Quarantined,    ///< attempt cap hit; excluded from this sweep
};

/** Human-readable state name (ledger dumps, logs). */
const char *stateName(ShardState state);

/** One shard range's ledger record. */
struct ShardJob
{
    uint32_t index = 0;
    shard::ShardRange range;
    ShardState state = ShardState::Pending;
    /** Worker launches so far (spawn failures count: they consumed
     *  an attempt's worth of the failure budget). */
    uint32_t attempts = 0;
    /** Last failure: the worker's wait status, or a negative
     *  supervisor-assigned code (see supervisor.h). */
    int64_t lastFailure = 0;

    /** No further launches will happen for this job this sweep. */
    bool
    settled() const
    {
        return state == ShardState::Done
            || state == ShardState::Quarantined;
    }
};

/** The supervisor's durable state: campaign identity + all jobs. */
struct Ledger
{
    uint64_t campaignFingerprint = 0;
    uint64_t totalTrials = 0;
    std::vector<ShardJob> jobs;

    /** Every job is Done or Quarantined. */
    bool settled() const;
    /** Jobs currently quarantined. */
    size_t quarantined() const;
};

/**
 * Persist @p ledger crash-safely: rotate an existing file to
 * path + ".prev", then write atomically (temp + fsync + rename) under
 * snapshot::kLedgerMagic at the shared format version.
 */
[[nodiscard]] base::Status saveLedger(const std::string &path,
                                      const Ledger &ledger);

/**
 * Load the newest valid ledger: @p path first, then path + ".prev"
 * when the primary is missing, truncated, corrupt or version-stale.
 * Records are validated (state enum in range, ranges inside the
 * campaign); NotFound means neither file exists.
 */
[[nodiscard]] base::Expected<Ledger>
loadLedger(const std::string &path);

/** Exponential-backoff shape; delays are milliseconds. */
struct BackoffConfig
{
    uint64_t baseMs = 200;
    uint64_t capMs = 5'000;
};

/**
 * Delay before relaunching @p shard_index after failed attempt
 * @p attempt (1-based): min(cap, base * 2^(attempt-1)) plus seeded
 * jitter in [0, delay/2] drawn from
 * SeedSequence(mix64(fingerprint, shard_index)).stream(attempt).
 * Pure function of its arguments -- replaying a sweep replays its
 * pacing decisions.
 */
uint64_t backoffDelayMs(uint64_t campaign_fingerprint,
                        uint32_t shard_index, uint32_t attempt,
                        const BackoffConfig &cfg);

/**
 * The campaign parameters a gap manifest must carry so `hh_sweep heal`
 * can rebuild the identical campaign (fingerprint-checked on load).
 */
struct CampaignParams
{
    uint64_t trials = 0;
    uint32_t threads = 1;
    uint64_t seed = 1;
    uint64_t hostGib = 0;
    uint64_t faultSeed = 0;
    double faultIntensity = 0.0;
    uint64_t checkpointEvery = 1;
};

/**
 * The machine-readable hand-off from a degraded sweep to a heal run:
 * which campaign, which artifacts are healthy, and exactly which
 * trial ranges still need computing. Serialized as JSON so operators
 * and CI can inspect it without tooling.
 */
struct GapManifest
{
    uint64_t campaignFingerprint = 0;
    uint64_t totalTrials = 0;
    CampaignParams campaign;
    /** Healthy artifacts (loadable, terminal, exact subset tiling). */
    std::vector<std::string> artifacts;
    /** Uncovered ranges, sorted; what heal must compute. */
    std::vector<shard::ShardRange> missing;
};

/** Write @p manifest as JSON (plain rewrite; small + regenerable). */
[[nodiscard]] base::Status saveGapManifest(const std::string &path,
                                           const GapManifest &manifest);

/** Parse a gap manifest written by saveGapManifest. */
[[nodiscard]] base::Expected<GapManifest>
loadGapManifest(const std::string &path);

/**
 * Read a worker heartbeat file (snapshot::touchHeartbeat). Returns
 * the raw content -- the supervisor only compares successive reads
 * for change, so torn reads are harmless. Empty when missing/empty.
 */
std::string readHeartbeat(const std::string &path);

} // namespace hh::dispatch

#endif // HYPERHAMMER_DISPATCH_DISPATCH_H
