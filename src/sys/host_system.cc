#include "host_system.h"

#include <algorithm>

#include "base/log.h"

namespace hh::sys {

SystemConfig
SystemConfig::s1(uint64_t seed)
{
    SystemConfig cfg;
    cfg.name = "S1";
    cfg.seed = seed;
    cfg.dram.totalBytes = 16_GiB;
    cfg.dram.mapping = dram::AddressMapping::i3_10100();
    cfg.dram.seed = base::mix64(seed, 0x51);
    // Calibrated against Table 1: ~395 flips over 12 GB profiled,
    // 246/395 stable, roughly even 1->0 / 0->1 split.
    cfg.dram.fault.weakCellsPerRow = 0.00086;
    cfg.dram.fault.stableFraction = 0.36;
    cfg.dram.fault.oneToZeroFraction = 0.54;
    cfg.noise.kernelResidentPages = 40'000;
    cfg.noise.unmovableFreePages = 21'000;
    cfg.noise.pageCachePages = 120'000;
    cfg.noise.churnPagesPerTick = 0;
    return cfg;
}

SystemConfig
SystemConfig::s2(uint64_t seed)
{
    SystemConfig cfg = s1(seed);
    cfg.name = "S2";
    cfg.dram.mapping = dram::AddressMapping::xeonE3_2124();
    cfg.dram.seed = base::mix64(seed, 0x52);
    // Table 1: S2's DIMM slot shows more flips but far fewer stable
    // ones (650 total, only 40 stable).
    cfg.dram.fault.weakCellsPerRow = 0.00227;
    cfg.dram.fault.stableFraction = 0.008;
    cfg.dram.fault.oneToZeroFraction = 0.51;
    // The Xeon machine profiles the same region in 48 h rather than
    // 72 h (Table 1): a faster scan path on that host.
    cfg.dram.timing.pageScanCost = 62;
    cfg.noise.kernelResidentPages = 36'000;
    cfg.noise.unmovableFreePages = 17'000;
    return cfg;
}

SystemConfig
SystemConfig::s3(uint64_t seed)
{
    SystemConfig cfg = s1(seed);
    cfg.name = "S3";
    cfg.dram.seed = base::mix64(seed, 0x53);
    // A DevStack single-node deployment runs nova/neutron/etc. on the
    // host: far more unmovable pages, a bigger page cache, and
    // continuous background churn (Figure 3(b)).
    cfg.noise.kernelResidentPages = 150'000;
    cfg.noise.unmovableFreePages = 52'000;
    cfg.noise.pageCachePages = 400'000;
    cfg.noise.churnPagesPerTick = 40;
    return cfg;
}

SystemConfig &
SystemConfig::withMemory(uint64_t bytes)
{
    HH_ASSERT(bytes >= 64_MiB);
    const double factor = static_cast<double>(bytes)
        / static_cast<double>(dram.totalBytes);
    dram.totalBytes = bytes;
    auto scale = [factor](uint64_t &v) {
        v = static_cast<uint64_t>(static_cast<double>(v) * factor);
    };
    scale(noise.kernelResidentPages);
    scale(noise.unmovableFreePages);
    scale(noise.pageCachePages);
    return *this;
}

SystemConfig &
SystemConfig::withSeed(uint64_t new_seed)
{
    seed = new_seed;
    dram.seed = base::mix64(new_seed, 0xd5);
    return *this;
}

SystemConfig &
SystemConfig::withFaults(fault::FaultPlan plan)
{
    faults = std::move(plan);
    return *this;
}

HostSystem::HostSystem(SystemConfig config)
    : cfg(std::move(config)), rng(base::mix64(cfg.seed, 0x4057))
{
    // The injector's root seed mixes the host seed into the plan seed
    // so per-trial host clones (same plan, different host seed) draw
    // independent deterministic fault streams.
    if (!cfg.faults.empty())
        injector = std::make_unique<fault::FaultInjector>(
            cfg.faults, base::mix64(cfg.seed, cfg.faults.seed));
    dramSys = std::make_unique<dram::DramSystem>(cfg.dram, simClock);
    dramSys->setFaultInjector(injector.get());
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = cfg.dram.totalBytes / kPageSize;
    allocator = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    allocator->setFaultInjector(injector.get());
    bootHost();
}

HostSystem::~HostSystem() = default;

void
HostSystem::bootHost()
{
    // Kernel text/data/slabs: unmovable allocations that stay resident.
    // Interleave the allocations destined to stay with those destined
    // to be freed, so the frees cannot coalesce into big blocks -- this
    // is what leaves the small-order unmovable "noise" population a
    // freshly booted host exhibits (Figure 3).
    const uint64_t keep = cfg.noise.kernelResidentPages;
    const uint64_t transient = cfg.noise.unmovableFreePages;
    std::vector<Pfn> to_free;
    to_free.reserve(transient);
    residentKernelPages.reserve(keep);

    const uint64_t total = keep + transient;
    for (uint64_t i = 0; i < total; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Unmovable,
                                          mm::PageUse::KernelData);
        if (!page) {
            // An injected failure hits one allocation, not the boot:
            // skip the page and keep the footprint approximate.
            if (injector)
                continue;
            base::fatal("host boot: out of memory for kernel pages");
        }
        // Statistically interleave: transient/total of the stream.
        if (rng.below(total) < transient && to_free.size() < transient)
            to_free.push_back(*page);
        else if (residentKernelPages.size() < keep)
            residentKernelPages.push_back(*page);
        else
            to_free.push_back(*page);
    }
    rng.shuffle(to_free);
    for (Pfn pfn : to_free)
        allocator->freePages(pfn, 0);

    // Page cache: movable, stays resident (file-backed data).
    pageCachePages.reserve(cfg.noise.pageCachePages);
    for (uint64_t i = 0; i < cfg.noise.pageCachePages; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Movable,
                                          mm::PageUse::PageCache);
        if (!page) {
            if (injector)
                continue;
            base::fatal("host boot: out of memory for page cache");
        }
        pageCachePages.push_back(*page);
    }

    simClock.advance(10 * base::kSecond); // boot time
}

void
HostSystem::pageCacheChurn(uint64_t pages)
{
    // Evict random resident file pages...
    uint64_t evicted = 0;
    for (uint64_t i = 0; i < pages && !pageCachePages.empty(); ++i) {
        const size_t idx = rng.below(pageCachePages.size());
        std::swap(pageCachePages[idx], pageCachePages.back());
        allocator->freePages(pageCachePages.back(), 0);
        pageCachePages.pop_back();
        ++evicted;
    }
    // ...and fault in fresh ones.
    for (uint64_t i = 0; i < evicted; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Movable,
                                          mm::PageUse::PageCache);
        if (page)
            pageCachePages.push_back(*page);
    }
}

std::unique_ptr<vm::VirtualMachine>
HostSystem::createVm(const vm::VmConfig &vm_cfg)
{
    // Host I/O keeps running between guest lifetimes; the resulting
    // free-list shuffling is what makes each attack attempt an
    // independent trial rather than a deterministic replay. The
    // periodic vmstat worker also drains per-CPU pagesets, letting
    // parked pages coalesce back into high-order blocks.
    allocator->drainPcp();
    pageCacheChurn(cfg.noise.pageCachePages / 16 + 64);

    // Readahead and other large transient buffers briefly occupy some
    // high-order blocks, so the blocks a guest receives vary between
    // spawns even when little else changed.
    std::vector<Pfn> transient_blocks;
    const uint64_t holdback = rng.below(48);
    for (uint64_t i = 0; i < holdback; ++i) {
        auto block = allocator->allocPages(9, mm::MigrateType::Movable,
                                           mm::PageUse::PageCache);
        if (!block)
            break;
        transient_blocks.push_back(*block);
    }

    auto machine = std::make_unique<vm::VirtualMachine>(
        *dramSys, *allocator, vm_cfg, nextVmId++, injector.get());

    for (Pfn block : transient_blocks)
        allocator->freePages(block, 9);
    // Spawning a pinned, THP-backed VM costs a fixed boot plus the
    // pre-allocation, pinning and zeroing of all guest memory; with a
    // 13 GB guest this dominates an attack attempt (Table 3's ~4 min
    // per attempt, which respawns the VM every time).
    const uint64_t guest_bytes =
        vm_cfg.bootMemBytes + vm_cfg.virtioMemPlugged;
    constexpr uint64_t kPrepNsPerByte = 15; // prealloc+pin+zero
    simClock.advance(20 * base::kSecond + guest_bytes * kPrepNsPerByte);
    return machine;
}

uint64_t
HostSystem::noisePages() const
{
    const mm::PageTypeInfo info = allocator->pageTypeInfo();
    return info.pagesBelowOrder(mm::MigrateType::Unmovable, 9)
        + allocator->pcpCount();
}

void
HostSystem::noiseTick()
{
    const uint64_t churn = cfg.noise.churnPagesPerTick;
    if (churn == 0)
        return;
    // Host services allocate fresh unmovable pages...
    for (uint64_t i = 0; i < churn; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Unmovable,
                                          mm::PageUse::KernelData);
        if (page)
            residentKernelPages.push_back(*page);
    }
    // ...and release roughly as many old ones, at random positions so
    // the frees stay fragmented.
    for (uint64_t i = 0; i < churn && !residentKernelPages.empty();
         ++i) {
        const size_t idx = rng.below(residentKernelPages.size());
        std::swap(residentKernelPages[idx], residentKernelPages.back());
        allocator->freePages(residentKernelPages.back(), 0);
        residentKernelPages.pop_back();
    }
    simClock.advance(base::kMillisecond);
}

uint64_t
HostSystem::countFramesByUse(mm::PageUse use, uint16_t owner) const
{
    uint64_t count = 0;
    for (Pfn pfn = 0; pfn < allocator->totalPages(); ++pfn) {
        const mm::PageFrame &frame = allocator->frame(pfn);
        if (frame.free || frame.use != use)
            continue;
        if (owner != 0 && frame.owner != owner)
            continue;
        ++count;
    }
    return count;
}

} // namespace hh::sys
