#include "host_system.h"

#include <algorithm>

#include "base/log.h"
#include "snapshot/snapshot_format.h"

namespace hh::sys {

SystemConfig
SystemConfig::s1(uint64_t seed)
{
    SystemConfig cfg;
    cfg.name = "S1";
    cfg.seed = seed;
    cfg.dram.totalBytes = 16_GiB;
    cfg.dram.mapping = dram::AddressMapping::i3_10100();
    cfg.dram.seed = base::mix64(seed, 0x51);
    // Calibrated against Table 1: ~395 flips over 12 GB profiled,
    // 246/395 stable, roughly even 1->0 / 0->1 split.
    cfg.dram.fault.weakCellsPerRow = 0.00086;
    cfg.dram.fault.stableFraction = 0.36;
    cfg.dram.fault.oneToZeroFraction = 0.54;
    cfg.noise.kernelResidentPages = 40'000;
    cfg.noise.unmovableFreePages = 21'000;
    cfg.noise.pageCachePages = 120'000;
    cfg.noise.churnPagesPerTick = 0;
    return cfg;
}

SystemConfig
SystemConfig::s2(uint64_t seed)
{
    SystemConfig cfg = s1(seed);
    cfg.name = "S2";
    cfg.dram.mapping = dram::AddressMapping::xeonE3_2124();
    cfg.dram.seed = base::mix64(seed, 0x52);
    // Table 1: S2's DIMM slot shows more flips but far fewer stable
    // ones (650 total, only 40 stable).
    cfg.dram.fault.weakCellsPerRow = 0.00227;
    cfg.dram.fault.stableFraction = 0.008;
    cfg.dram.fault.oneToZeroFraction = 0.51;
    // The Xeon machine profiles the same region in 48 h rather than
    // 72 h (Table 1): a faster scan path on that host.
    cfg.dram.timing.pageScanCost = 62;
    cfg.noise.kernelResidentPages = 36'000;
    cfg.noise.unmovableFreePages = 17'000;
    return cfg;
}

SystemConfig
SystemConfig::s3(uint64_t seed)
{
    SystemConfig cfg = s1(seed);
    cfg.name = "S3";
    cfg.dram.seed = base::mix64(seed, 0x53);
    // A DevStack single-node deployment runs nova/neutron/etc. on the
    // host: far more unmovable pages, a bigger page cache, and
    // continuous background churn (Figure 3(b)).
    cfg.noise.kernelResidentPages = 150'000;
    cfg.noise.unmovableFreePages = 52'000;
    cfg.noise.pageCachePages = 400'000;
    cfg.noise.churnPagesPerTick = 40;
    return cfg;
}

SystemConfig &
SystemConfig::withMemory(uint64_t bytes)
{
    HH_ASSERT(bytes >= 64_MiB);
    const double factor = static_cast<double>(bytes)
        / static_cast<double>(dram.totalBytes);
    dram.totalBytes = bytes;
    auto scale = [factor](uint64_t &v) {
        v = static_cast<uint64_t>(static_cast<double>(v) * factor);
    };
    scale(noise.kernelResidentPages);
    scale(noise.unmovableFreePages);
    scale(noise.pageCachePages);
    return *this;
}

SystemConfig &
SystemConfig::withSeed(uint64_t new_seed)
{
    seed = new_seed;
    dram.seed = base::mix64(new_seed, 0xd5);
    return *this;
}

SystemConfig &
SystemConfig::withFaults(fault::FaultPlan plan)
{
    faults = std::move(plan);
    return *this;
}

HostSystem::HostSystem(SystemConfig config)
    : cfg(std::move(config)), rng(base::mix64(cfg.seed, 0x4057))
{
    // The injector's root seed mixes the host seed into the plan seed
    // so per-trial host clones (same plan, different host seed) draw
    // independent deterministic fault streams.
    if (!cfg.faults.empty())
        injector = std::make_unique<fault::FaultInjector>(
            cfg.faults, base::mix64(cfg.seed, cfg.faults.seed));
    dramSys = std::make_unique<dram::DramSystem>(cfg.dram, simClock);
    dramSys->setFaultInjector(injector.get());
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = cfg.dram.totalBytes / kPageSize;
    buddy_cfg.layout = cfg.domains;
    allocator = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    allocator->setFaultInjector(injector.get());
    bootHost();
}

HostSystem::~HostSystem() = default;

HostSystem::HostSystem(TemplateTag, SystemConfig config)
    : cfg(std::move(config)), rng(base::mix64(cfg.seed, 0x4057))
{
    // No injector and no boot: the template holds only the state that
    // is invariant across trial seeds. (The host rng member is seeded
    // but never drawn from; forks replace it anyway.)
    dramSys = std::make_unique<dram::DramSystem>(cfg.dram, simClock);
    mm::BuddyConfig buddy_cfg;
    buddy_cfg.totalPages = cfg.dram.totalBytes / kPageSize;
    buddy_cfg.layout = cfg.domains;
    allocator = std::make_unique<mm::BuddyAllocator>(buddy_cfg);
    dramSys->backend().freeze();
    pristineTemplate = true;
}

HostSystem::HostSystem(CloneTag, const HostSystem &src)
    : cfg(src.cfg),
      rng(src.rng),
      nextVmId(src.nextVmId),
      pristineTemplate(src.pristineTemplate),
      residentKernelPages(src.residentKernelPages),
      pageCachePages(src.pageCachePages)
{
    simClock.advance(src.simClock.now());
    if (src.injector) {
        // Rebuild from the plan, then adopt the source's cursors so
        // the clone's fault stream continues where the original's is.
        injector = std::make_unique<fault::FaultInjector>(
            cfg.faults, base::mix64(cfg.seed, cfg.faults.seed));
        base::ArchiveWriter w;
        src.injector->saveState(w);
        base::ArchiveReader r(w.buffer());
        const base::Status st = injector->loadState(r);
        HH_ASSERT(st.ok());
    }
    dramSys = dram::DramSystem::forkFrom(*src.dramSys, simClock);
    dramSys->setFaultInjector(injector.get());
    allocator = mm::BuddyAllocator::forkFrom(*src.allocator);
    allocator->setFaultInjector(injector.get());
}

HostSystem::HostSystem(TrialTag, const HostSystem &tmpl,
                       const SystemConfig &trial_cfg)
    : cfg(trial_cfg), rng(base::mix64(cfg.seed, 0x4057))
{
    HH_ASSERT(tmpl.pristineTemplate);
    // Cheap proxies for "same config up to the seed": the trial must
    // share the template's memory geometry and dram seed, or the
    // forked fault oracle would be the wrong one.
    HH_ASSERT(tmpl.cfg.dram.totalBytes == cfg.dram.totalBytes);
    HH_ASSERT(tmpl.cfg.dram.seed == cfg.dram.seed);
    HH_ASSERT(tmpl.cfg.domains.domains.size()
              == cfg.domains.domains.size());
    if (!cfg.faults.empty())
        injector = std::make_unique<fault::FaultInjector>(
            cfg.faults, base::mix64(cfg.seed, cfg.faults.seed));
    dramSys = dram::DramSystem::forkFrom(*tmpl.dramSys, simClock);
    dramSys->setFaultInjector(injector.get());
    allocator = mm::BuddyAllocator::forkFrom(*tmpl.allocator);
    allocator->setFaultInjector(injector.get());
    bootHost();
}

std::unique_ptr<const HostSystem>
HostSystem::makeForkTemplate(SystemConfig config)
{
    return std::make_unique<HostSystem>(TemplateTag{},
                                        std::move(config));
}

std::unique_ptr<HostSystem>
HostSystem::forkTrial(const HostSystem &tmpl,
                      const SystemConfig &trial_cfg)
{
    return std::make_unique<HostSystem>(TrialTag{}, tmpl, trial_cfg);
}

std::unique_ptr<HostSystem>
HostSystem::fork() const
{
    return std::make_unique<HostSystem>(CloneTag{}, *this);
}

void
HostSystem::bootHost()
{
    // Kernel text/data/slabs: unmovable allocations that stay resident.
    // Interleave the allocations destined to stay with those destined
    // to be freed, so the frees cannot coalesce into big blocks -- this
    // is what leaves the small-order unmovable "noise" population a
    // freshly booted host exhibits (Figure 3).
    const uint64_t keep = cfg.noise.kernelResidentPages;
    const uint64_t transient = cfg.noise.unmovableFreePages;
    std::vector<Pfn> to_free;
    to_free.reserve(transient);
    residentKernelPages.reserve(keep);

    const uint64_t total = keep + transient;
    for (uint64_t i = 0; i < total; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Unmovable,
                                          mm::PageUse::KernelData);
        if (!page) {
            // An injected failure hits one allocation, not the boot:
            // skip the page and keep the footprint approximate.
            if (injector)
                continue;
            base::fatal("host boot: out of memory for kernel pages");
        }
        // Statistically interleave: transient/total of the stream.
        if (rng.below(total) < transient && to_free.size() < transient)
            to_free.push_back(*page);
        else if (residentKernelPages.size() < keep)
            residentKernelPages.push_back(*page);
        else
            to_free.push_back(*page);
    }
    rng.shuffle(to_free);
    for (Pfn pfn : to_free)
        allocator->freePages(pfn, 0);

    // Page cache: movable, stays resident (file-backed data).
    pageCachePages.reserve(cfg.noise.pageCachePages);
    for (uint64_t i = 0; i < cfg.noise.pageCachePages; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Movable,
                                          mm::PageUse::PageCache);
        if (!page) {
            if (injector)
                continue;
            base::fatal("host boot: out of memory for page cache");
        }
        pageCachePages.push_back(*page);
    }

    simClock.advance(10 * base::kSecond); // boot time
}

void
HostSystem::pageCacheChurn(uint64_t pages)
{
    // Evict random resident file pages...
    uint64_t evicted = 0;
    for (uint64_t i = 0; i < pages && !pageCachePages.empty(); ++i) {
        const size_t idx = rng.below(pageCachePages.size());
        std::swap(pageCachePages[idx], pageCachePages.back());
        allocator->freePages(pageCachePages.back(), 0);
        pageCachePages.pop_back();
        ++evicted;
    }
    // ...and fault in fresh ones.
    for (uint64_t i = 0; i < evicted; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Movable,
                                          mm::PageUse::PageCache);
        if (page)
            pageCachePages.push_back(*page);
    }
}

std::unique_ptr<vm::VirtualMachine>
HostSystem::createVm(const vm::VmConfig &vm_cfg)
{
    // Host I/O keeps running between guest lifetimes; the resulting
    // free-list shuffling is what makes each attack attempt an
    // independent trial rather than a deterministic replay. The
    // periodic vmstat worker also drains per-CPU pagesets, letting
    // parked pages coalesce back into high-order blocks.
    allocator->drainPcp();
    pageCacheChurn(cfg.noise.pageCachePages / 16 + 64);

    // Readahead and other large transient buffers briefly occupy some
    // high-order blocks, so the blocks a guest receives vary between
    // spawns even when little else changed.
    std::vector<Pfn> transient_blocks;
    const uint64_t holdback = rng.below(48);
    for (uint64_t i = 0; i < holdback; ++i) {
        auto block = allocator->allocPages(9, mm::MigrateType::Movable,
                                           mm::PageUse::PageCache);
        if (!block)
            break;
        transient_blocks.push_back(*block);
    }

    auto machine = std::make_unique<vm::VirtualMachine>(
        *dramSys, *allocator, vm_cfg, nextVmId++, injector.get());

    for (Pfn block : transient_blocks)
        allocator->freePages(block, 9);
    // Spawning a pinned, THP-backed VM costs a fixed boot plus the
    // pre-allocation, pinning and zeroing of all guest memory; with a
    // 13 GB guest this dominates an attack attempt (Table 3's ~4 min
    // per attempt, which respawns the VM every time).
    const uint64_t guest_bytes =
        vm_cfg.bootMemBytes + vm_cfg.virtioMemPlugged;
    constexpr uint64_t kPrepNsPerByte = 15; // prealloc+pin+zero
    simClock.advance(20 * base::kSecond + guest_bytes * kPrepNsPerByte);
    return machine;
}

uint64_t
HostSystem::noisePages() const
{
    const mm::PageTypeInfo info = allocator->pageTypeInfo();
    return info.pagesBelowOrder(mm::MigrateType::Unmovable, 9)
        + allocator->pcpCount();
}

void
HostSystem::noiseTick()
{
    const uint64_t churn = cfg.noise.churnPagesPerTick;
    if (churn == 0)
        return;
    // Host services allocate fresh unmovable pages...
    for (uint64_t i = 0; i < churn; ++i) {
        auto page = allocator->allocPages(0, mm::MigrateType::Unmovable,
                                          mm::PageUse::KernelData);
        if (page)
            residentKernelPages.push_back(*page);
    }
    // ...and release roughly as many old ones, at random positions so
    // the frees stay fragmented.
    for (uint64_t i = 0; i < churn && !residentKernelPages.empty();
         ++i) {
        const size_t idx = rng.below(residentKernelPages.size());
        std::swap(residentKernelPages[idx], residentKernelPages.back());
        allocator->freePages(residentKernelPages.back(), 0);
        residentKernelPages.pop_back();
    }
    simClock.advance(base::kMillisecond);
}

uint64_t
HostSystem::configFingerprint() const
{
    // Canonical encoding of everything that shapes serialized state.
    // Field order is part of the format: changing it (or adding a
    // field) invalidates old snapshots, which is the intended
    // behaviour -- see snapshot/snapshot_format.h.
    base::ArchiveWriter w;
    w.str(cfg.name);
    w.u64(cfg.seed);
    w.u64(cfg.dram.totalBytes);
    w.u64(cfg.dram.seed);
    w.u64vec(cfg.dram.mapping.bankMasks());
    w.u32(cfg.dram.mapping.rowLoBit());
    w.u32(cfg.dram.mapping.rowHiBit());
    w.f64(cfg.dram.fault.weakCellsPerRow);
    w.f64(cfg.dram.fault.oneToZeroFraction);
    w.f64(cfg.dram.fault.stableFraction);
    w.f64(cfg.dram.fault.unstableFlipProbability);
    w.u32(cfg.dram.fault.minThreshold);
    w.u32(cfg.dram.fault.maxThreshold);
    w.f64(cfg.dram.fault.distanceTwoFactor);
    w.u64(cfg.dram.timing.rowHitLatency);
    w.u64(cfg.dram.timing.rowMissLatency);
    w.u64(cfg.dram.timing.rowConflictLatency);
    w.u64(cfg.dram.timing.rowCycle);
    w.u64(cfg.dram.timing.refreshWindow);
    w.u64(cfg.dram.timing.rowPressHalfLife);
    w.u64(cfg.dram.timing.pageFillCost);
    w.u64(cfg.dram.timing.pageScanCost);
    w.boolean(cfg.dram.trr.enabled);
    w.u32(cfg.dram.trr.trackerCapacity);
    w.boolean(cfg.dram.trr.probabilisticOverflow);
    w.boolean(cfg.dram.ecc.enabled);
    w.u32(cfg.dram.ecc.correctBits);
    w.u64(cfg.noise.kernelResidentPages);
    w.u64(cfg.noise.unmovableFreePages);
    w.u64(cfg.noise.pageCachePages);
    w.u64(cfg.noise.churnPagesPerTick);
    w.u64(cfg.faults.seed);
    w.u64(cfg.faults.entries.size());
    for (const fault::FaultEntry &entry : cfg.faults.entries) {
        w.u32(static_cast<uint32_t>(entry.site));
        w.u8(static_cast<uint8_t>(entry.kind));
        w.u64(entry.firstHit);
        w.u64(entry.count);
        w.u64(entry.every);
        w.f64(entry.probability);
        w.u64(entry.param);
    }
    w.boolean(cfg.domains.crossDomainFallback);
    w.u64(cfg.domains.domains.size());
    for (const mm::DomainSpec &spec : cfg.domains.domains) {
        w.u64(spec.pages);
        w.u8(static_cast<uint8_t>(spec.cls));
        w.u64(spec.guardPages);
    }
    return w.fingerprint();
}

void
HostSystem::saveState(base::ArchiveWriter &w) const
{
    w.u64(simClock.now());
    w.boolean(injector != nullptr);
    if (injector)
        injector->saveState(w);
    dramSys->saveState(w);
    allocator->saveState(w);
    w.rngState(rng.saveState());
    w.u16(nextVmId);
    w.u64vec(residentKernelPages);
    w.u64vec(pageCachePages);
}

base::Status
HostSystem::loadState(base::ArchiveReader &r)
{
    const base::SimTime saved_now = r.u64();
    const bool has_injector = r.boolean();
    if (!r.ok())
        return r.status();
    if (has_injector != (injector != nullptr)) {
        base::warn("host snapshot: fault-injector presence mismatch");
        return base::ErrorCode::InvalidArgument;
    }
    if (injector) {
        const base::Status st = injector->loadState(r);
        if (!st.ok())
            return st;
    }
    if (const base::Status st = dramSys->loadState(r); !st.ok())
        return st;
    if (const base::Status st = allocator->loadState(r); !st.ok())
        return st;
    const std::array<uint64_t, 4> rng_state = r.rngState();
    const uint16_t next_id = r.u16();
    std::vector<Pfn> kernel_pages = r.u64vec();
    std::vector<Pfn> cache_pages = r.u64vec();
    if (!r.ok())
        return r.status();
    if (next_id == 0) {
        base::warn("host snapshot: VM id counter must be >= 1");
        return base::ErrorCode::InvalidArgument;
    }
    for (Pfn pfn : kernel_pages)
        if (pfn >= allocator->totalPages()) {
            base::warn("host snapshot: kernel page %llu out of range",
                       static_cast<unsigned long long>(pfn));
            return base::ErrorCode::InvalidArgument;
        }
    for (Pfn pfn : cache_pages)
        if (pfn >= allocator->totalPages()) {
            base::warn("host snapshot: cache page %llu out of range",
                       static_cast<unsigned long long>(pfn));
            return base::ErrorCode::InvalidArgument;
        }
    simClock.reset();
    simClock.advance(saved_now);
    rng.loadState(rng_state);
    nextVmId = next_id;
    residentKernelPages = std::move(kernel_pages);
    pageCachePages = std::move(cache_pages);
    return base::Status::success();
}

base::Status
HostSystem::saveSnapshot(const std::string &path) const
{
    base::ArchiveWriter w;
    w.u64(configFingerprint());
    saveState(w);
    return base::saveArchiveFile(path, snapshot::kHostSnapshotMagic,
                                 snapshot::kSnapshotFormatVersion,
                                 w.buffer());
}

base::Status
HostSystem::loadSnapshot(const std::string &path)
{
    auto loaded = base::loadArchiveFile(
        path, snapshot::kHostSnapshotMagic,
        snapshot::kSnapshotFormatVersion,
        snapshot::kSnapshotFormatVersion);
    if (!loaded)
        return base::Status(loaded.error());
    base::ArchiveReader r(loaded->payload);
    const uint64_t fingerprint = r.u64();
    if (!r.ok())
        return r.status();
    if (fingerprint != configFingerprint()) {
        base::warn("host snapshot '%s': config fingerprint mismatch "
                   "(file %016llx, host %016llx)",
                   path.c_str(),
                   static_cast<unsigned long long>(fingerprint),
                   static_cast<unsigned long long>(configFingerprint()));
        return base::ErrorCode::InvalidArgument;
    }
    if (const base::Status st = loadState(r); !st.ok())
        return st;
    if (!r.atEnd()) {
        base::warn("host snapshot '%s': %zu trailing bytes",
                   path.c_str(), r.remaining());
        return base::ErrorCode::InvalidArgument;
    }
    return base::Status::success();
}

std::unique_ptr<vm::VirtualMachine>
HostSystem::restoreVm(const vm::VmConfig &vm_cfg, uint16_t vm_id)
{
    return std::make_unique<vm::VirtualMachine>(
        *dramSys, *allocator, vm_cfg, vm_id, injector.get(),
        base::RestoreTag{});
}

uint64_t
HostSystem::countFramesByUse(mm::PageUse use, uint16_t owner) const
{
    uint64_t count = 0;
    for (Pfn pfn = 0; pfn < allocator->totalPages(); ++pfn) {
        const mm::PageFrame &frame = allocator->frame(pfn);
        if (frame.free || frame.use != use)
            continue;
        if (owner != 0 && frame.owner != owner)
            continue;
        ++count;
    }
    return count;
}

} // namespace hh::sys
